package executor

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// fastScale keeps the whole replay in tens of milliseconds.
const fastScale = 20 * time.Microsecond

func smallWorkload(t *testing.T, util float64, wf bool) *txn.Set {
	t.Helper()
	cfg := workload.Default(util, 7)
	cfg.N = 60
	if wf {
		cfg = cfg.WithWorkflows(4, 1)
	}
	return workload.MustGenerate(cfg)
}

func TestRunCompletesEverything(t *testing.T) {
	set := smallWorkload(t, 0.7, false)
	ex := New(sched.NewEDF(), set, Options{TimeScale: fastScale})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n, err := ex.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != set.Len() {
		t.Fatalf("completed %d of %d", n, set.Len())
	}
	for _, tx := range set.Txns {
		if !tx.Finished {
			t.Fatalf("T%d unfinished", tx.ID)
		}
		if tx.FinishTime < tx.Arrival+tx.Length-1e-6 {
			t.Fatalf("T%d finished at %v before arrival+length %v", tx.ID, tx.FinishTime, tx.Arrival+tx.Length)
		}
	}
	if !ex.Done() {
		t.Fatal("Done() false after Run returned")
	}
}

func TestPrecedenceHonoredLive(t *testing.T) {
	set := smallWorkload(t, 0.9, true)
	var mu sync.Mutex
	finished := map[txn.ID]bool{}
	var violation string
	ex := New(core.New(), set, Options{
		TimeScale: fastScale,
		OnComplete: func(tx *txn.Transaction, finish float64) {
			mu.Lock()
			defer mu.Unlock()
			for _, d := range tx.Deps {
				if !finished[d] {
					violation = tx.String()
				}
			}
			finished[tx.ID] = true
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if violation != "" {
		t.Fatalf("dependency violated for %s", violation)
	}
}

func TestStatsConsistency(t *testing.T) {
	set := smallWorkload(t, 0.8, false)
	ex := New(sched.NewSRPT(), set, Options{TimeScale: fastScale})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	donec := make(chan struct{})
	go func() {
		defer close(donec)
		if _, err := ex.Run(ctx); err != nil {
			t.Error(err)
		}
	}()
	// Poll stats while the run progresses; snapshots must be monotone and
	// internally consistent.
	prev := ex.Stats()
	for {
		select {
		case <-donec:
			final := ex.Stats()
			if final.Completed != set.Len() {
				t.Fatalf("final completed = %d", final.Completed)
			}
			if final.AvgTardiness() < 0 || final.MaxTardiness < final.AvgTardiness() {
				t.Fatalf("tardiness stats inconsistent: %+v", final)
			}
			if final.Misses > final.Completed {
				t.Fatalf("misses %d > completed %d", final.Misses, final.Completed)
			}
			return
		default:
		}
		s := ex.Stats()
		if s.Completed < prev.Completed || s.Submitted < prev.Submitted {
			t.Fatalf("stats went backwards: %+v -> %+v", prev, s)
		}
		if s.Completed > s.Submitted {
			t.Fatalf("completed %d > submitted %d", s.Completed, s.Submitted)
		}
		prev = s
		time.Sleep(time.Millisecond)
	}
}

func TestCancellation(t *testing.T) {
	cfg := workload.Default(0.8, 9)
	cfg.N = 200
	set := workload.MustGenerate(cfg)
	// A slow scale guarantees the context expires mid-run.
	ex := New(sched.NewEDF(), set, Options{TimeScale: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	n, err := ex.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if n >= set.Len() {
		t.Fatalf("run completed (%d) despite cancellation", n)
	}
	if !ex.Done() {
		t.Fatal("Done() false after cancelled Run")
	}
}

func TestAvgTardinessEmpty(t *testing.T) {
	var s Stats
	if s.AvgTardiness() != 0 {
		t.Fatal("empty stats tardiness non-zero")
	}
}

// TestStatsAllOnTime: a workload whose deadlines cannot be missed must end
// with every tardiness aggregate exactly zero — the edge /metrics and
// /api/stats both render.
func TestStatsAllOnTime(t *testing.T) {
	txns := []*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 100, Length: 1, Weight: 1},
		{ID: 1, Arrival: 1, Deadline: 100, Length: 0.5, Weight: 1},
		{ID: 2, Arrival: 2, Deadline: 100, Length: 2, Weight: 1},
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(sched.NewEDF(), set, Options{
		TimeScale: time.Millisecond,
		Clock:     NewFakeClock(time.Unix(0, 0)),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Completed != 3 || st.Submitted != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SumTardiness != 0 || st.MaxTardiness != 0 || st.Misses != 0 || st.AvgTardiness() != 0 {
		t.Fatalf("on-time run reported tardiness: %+v", st)
	}
}

func TestDefaultTimeScaleApplied(t *testing.T) {
	set := smallWorkload(t, 0.5, false)
	ex := New(sched.NewFCFS(), set, Options{})
	if ex.opts.TimeScale != 200*time.Microsecond {
		t.Fatalf("default scale = %v", ex.opts.TimeScale)
	}
}

// TestLiveMatchesSimulatorExactly: because the executor makes decisions at
// event time and only uses wall-clock sleeps for pacing, a completed run
// produces exactly the simulator's schedule and tardiness on the same
// workload.
func TestLiveMatchesSimulatorExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	cfg := workload.Default(0.8, 21)
	cfg.N = 150
	setSim := workload.MustGenerate(cfg)
	simSum := mustSim(t, setSim)

	setLive := workload.MustGenerate(cfg)
	ex := New(sched.NewSRPT(), setLive, Options{TimeScale: 20 * time.Microsecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	}
	live := ex.Stats().AvgTardiness()
	if diff := live - simSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("live avg tardiness %v != simulator's %v", live, simSum)
	}
}

func mustSim(t *testing.T, set *txn.Set) float64 {
	t.Helper()
	summary, err := sim.New(sim.Config{}).Run(set, sched.NewSRPT())
	if err != nil {
		t.Fatal(err)
	}
	return summary.AvgTardiness
}

// replayConfig is the workload every FakeClock test replays.
func replayConfig(seed uint64) workload.Config {
	cfg := workload.Default(0.9, seed)
	cfg.N = 300
	return cfg.WithWorkflows(5, 2).WithWeights()
}

// replayTranscript runs one FakeClock replay under ASETS* and renders every
// completion as "T<id>@<finish bits>" — a byte-exact transcript of the
// schedule (%x on the float keeps full precision).
func replayTranscript(t *testing.T, seed uint64) string {
	t.Helper()
	set := workload.MustGenerate(replayConfig(seed))
	var sb strings.Builder
	ex := New(core.New(), set, Options{
		TimeScale: time.Millisecond,
		Clock:     NewFakeClock(time.Unix(0, 0)),
		OnComplete: func(tx *txn.Transaction, finish float64) {
			fmt.Fprintf(&sb, "T%d@%x\n", tx.ID, finish)
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if n, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	} else if n != set.Len() {
		t.Fatalf("completed %d of %d", n, set.Len())
	}
	return sb.String()
}

// TestFakeClockDeterministic: with the Clock seam closed by a FakeClock, two
// replays of the same seeded workload produce byte-identical completion
// transcripts, and the replayed schedule matches the discrete-event
// simulator bit for bit.
func TestFakeClockDeterministic(t *testing.T) {
	first := replayTranscript(t, 33)
	if first == "" {
		t.Fatal("empty transcript")
	}
	if second := replayTranscript(t, 33); second != first {
		t.Fatalf("replays differ:\n%s\n---\n%s", first, second)
	}

	setSim := workload.MustGenerate(replayConfig(33))
	summary, err := sim.New(sim.Config{}).Run(setSim, core.New())
	if err != nil {
		t.Fatal(err)
	}
	setLive := workload.MustGenerate(replayConfig(33))
	ex := New(core.New(), setLive, Options{
		TimeScale: time.Millisecond,
		Clock:     NewFakeClock(time.Unix(0, 0)),
	})
	if _, err := ex.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if live := ex.Stats().AvgTardiness(); live != summary.AvgTardiness {
		t.Fatalf("fake-clock replay avg tardiness %v != simulator %v", live, summary.AvgTardiness)
	}
}

// TestFakeClockInstant: a FakeClock replay must not consume wall time
// proportional to the schedule (the replay spans hundreds of simulated
// seconds at a millisecond scale; real pacing would take minutes).
func TestFakeClockInstant(t *testing.T) {
	startWall := time.Now()
	replayTranscript(t, 77)
	if elapsed := time.Since(startWall); elapsed > 10*time.Second {
		t.Fatalf("fake-clock replay took %v of wall time", elapsed)
	}
}
