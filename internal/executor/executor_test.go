package executor

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// fastScale keeps the whole replay in tens of milliseconds.
const fastScale = 20 * time.Microsecond

func smallWorkload(t *testing.T, util float64, wf bool) *txn.Set {
	t.Helper()
	cfg := workload.Default(util, 7)
	cfg.N = 60
	if wf {
		cfg = cfg.WithWorkflows(4, 1)
	}
	return workload.MustGenerate(cfg)
}

func TestRunCompletesEverything(t *testing.T) {
	set := smallWorkload(t, 0.7, false)
	ex := New(sched.NewEDF(), set, Options{TimeScale: fastScale})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n, err := ex.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != set.Len() {
		t.Fatalf("completed %d of %d", n, set.Len())
	}
	for _, tx := range set.Txns {
		if !tx.Finished {
			t.Fatalf("T%d unfinished", tx.ID)
		}
		if tx.FinishTime < tx.Arrival+tx.Length-1e-6 {
			t.Fatalf("T%d finished at %v before arrival+length %v", tx.ID, tx.FinishTime, tx.Arrival+tx.Length)
		}
	}
	if !ex.Done() {
		t.Fatal("Done() false after Run returned")
	}
}

func TestPrecedenceHonoredLive(t *testing.T) {
	set := smallWorkload(t, 0.9, true)
	var mu sync.Mutex
	finished := map[txn.ID]bool{}
	var violation string
	ex := New(core.New(), set, Options{
		TimeScale: fastScale,
		OnComplete: func(tx *txn.Transaction, finish float64) {
			mu.Lock()
			defer mu.Unlock()
			for _, d := range tx.Deps {
				if !finished[d] {
					violation = tx.String()
				}
			}
			finished[tx.ID] = true
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if violation != "" {
		t.Fatalf("dependency violated for %s", violation)
	}
}

func TestStatsConsistency(t *testing.T) {
	set := smallWorkload(t, 0.8, false)
	ex := New(sched.NewSRPT(), set, Options{TimeScale: fastScale})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	donec := make(chan struct{})
	go func() {
		defer close(donec)
		if _, err := ex.Run(ctx); err != nil {
			t.Error(err)
		}
	}()
	// Poll stats while the run progresses; snapshots must be monotone and
	// internally consistent.
	prev := ex.Stats()
	for {
		select {
		case <-donec:
			final := ex.Stats()
			if final.Completed != set.Len() {
				t.Fatalf("final completed = %d", final.Completed)
			}
			if final.AvgTardiness() < 0 || final.MaxTardiness < final.AvgTardiness() {
				t.Fatalf("tardiness stats inconsistent: %+v", final)
			}
			if final.Misses > final.Completed {
				t.Fatalf("misses %d > completed %d", final.Misses, final.Completed)
			}
			return
		default:
		}
		s := ex.Stats()
		if s.Completed < prev.Completed || s.Submitted < prev.Submitted {
			t.Fatalf("stats went backwards: %+v -> %+v", prev, s)
		}
		if s.Completed > s.Submitted {
			t.Fatalf("completed %d > submitted %d", s.Completed, s.Submitted)
		}
		prev = s
		time.Sleep(time.Millisecond)
	}
}

func TestCancellation(t *testing.T) {
	cfg := workload.Default(0.8, 9)
	cfg.N = 200
	set := workload.MustGenerate(cfg)
	// A slow scale guarantees the context expires mid-run.
	ex := New(sched.NewEDF(), set, Options{TimeScale: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	n, err := ex.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if n >= set.Len() {
		t.Fatalf("run completed (%d) despite cancellation", n)
	}
	if !ex.Done() {
		t.Fatal("Done() false after cancelled Run")
	}
}

func TestAvgTardinessEmpty(t *testing.T) {
	var s Stats
	if s.AvgTardiness() != 0 {
		t.Fatal("empty stats tardiness non-zero")
	}
}

func TestDefaultTimeScaleApplied(t *testing.T) {
	set := smallWorkload(t, 0.5, false)
	ex := New(sched.NewFCFS(), set, Options{})
	if ex.opts.TimeScale != 200*time.Microsecond {
		t.Fatalf("default scale = %v", ex.opts.TimeScale)
	}
}

// TestLiveMatchesSimulatorExactly: because the executor makes decisions at
// event time and only uses wall-clock sleeps for pacing, a completed run
// produces exactly the simulator's schedule and tardiness on the same
// workload.
func TestLiveMatchesSimulatorExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	cfg := workload.Default(0.8, 21)
	cfg.N = 150
	setSim := workload.MustGenerate(cfg)
	simSum := mustSim(t, setSim)

	setLive := workload.MustGenerate(cfg)
	ex := New(sched.NewSRPT(), setLive, Options{TimeScale: 20 * time.Microsecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	}
	live := ex.Stats().AvgTardiness()
	if diff := live - simSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("live avg tardiness %v != simulator's %v", live, simSum)
	}
}

func mustSim(t *testing.T, set *txn.Set) float64 {
	t.Helper()
	summary, err := sim.Run(set, sched.NewSRPT(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return summary.AvgTardiness
}
