package executor

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestConcurrentStatsHammer drives Run while many goroutines read Stats and
// Done — the executor's published concurrency contract — and joins
// everything on shutdown. Primarily a -race target; the workload is small
// enough to finish in tens of milliseconds without the detector.
func TestConcurrentStatsHammer(t *testing.T) {
	set := smallWorkload(t, 0.8, true)
	ex := New(core.New(), set, Options{TimeScale: fastScale})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	runDone := make(chan error, 1)
	go func() {
		_, err := ex.Run(ctx)
		runDone <- err
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := ex.Stats()
				if s.Completed > s.Submitted {
					t.Errorf("completed %d > submitted %d", s.Completed, s.Submitted)
					return
				}
				_ = ex.Done()
			}
		}()
	}

	if err := <-runDone; err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
	if !ex.Done() {
		t.Fatal("Done() false after joined shutdown")
	}
}

// TestFakeClockConcurrentReads: the FakeClock itself must be safe to read
// while the executor advances it.
func TestFakeClockConcurrentReads(t *testing.T) {
	set := smallWorkload(t, 0.8, false)
	clock := NewFakeClock(time.Unix(0, 0))
	ex := New(core.New(), set, Options{TimeScale: time.Millisecond, Clock: clock})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	runDone := make(chan error, 1)
	go func() {
		_, err := ex.Run(ctx)
		runDone <- err
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last time.Time
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := clock.Now()
				if now.Before(last) {
					t.Error("fake clock went backwards")
					return
				}
				last = now
			}
		}()
	}

	if err := <-runDone; err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
}
