package executor

import (
	"context"
	"sync"
	"time"
)

// Clock is the executor's only window onto wall time: Now anchors the
// replay and Sleep paces it. The seam exists for determinism — with the
// default RealClock the executor replays a workload in scaled real time,
// while a FakeClock replays the identical schedule instantly and
// bit-for-bit reproducibly, because no host-clock read ever reaches the
// scheduling logic (the nondeterminism analyzer in internal/lint enforces
// the same property statically for the simulator packages).
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Sleep waits for d to elapse on this clock or for ctx to end,
	// returning ctx.Err() in the latter case. d is always positive.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the production Clock: time.Now and timer-based sleeps.
type RealClock struct{}

// Now implements Clock.
//
//lint:ignore nondeterminism RealClock IS the sanctioned wall-clock seam; everything else injects Clock
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	//lint:ignore nondeterminism RealClock IS the sanctioned wall-clock seam; everything else injects Clock
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// FakeClock is a deterministic Clock for tests: Sleep advances the clock's
// notion of now instantly instead of waiting, so a paced replay runs at
// full speed yet observes exactly the same sequence of instants on every
// run. The zero value starts at the zero time; that is fine, because the
// executor only ever uses differences from its start anchor.
//
// FakeClock is safe for concurrent use (the executor goroutine sleeps while
// test goroutines may read Now).
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock anchored at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it advances the fake time by d without waiting.
// Cancellation is still honoured so tests can interrupt a replay.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}
