// Package executor runs a scheduling policy over live wall-clock time: the
// online counterpart of the discrete-event simulator. A workload's arrivals
// are replayed in real time (scaled by Options.TimeScale), the configured
// scheduler decides what the single backend "database" executes, and an
// arrival can preempt the running transaction exactly as in the simulator's
// preemptive-resume model.
//
// The executor exists for two reasons. First, it demonstrates that the
// policies in this repository are implementable online — every scheduling
// decision uses only information available at decision time. Second, it
// powers the asetsweb demo server, which exposes a live dashboard of an
// ASETS*-scheduled transaction stream.
//
// Time handling: scheduling decisions and tardiness bookkeeping run on
// event time (exactly the simulator's decision points), while wall-clock
// sleeps only pace execution toward each event's scheduled instant. Timer
// overshoot therefore puts the executor briefly into catch-up mode instead
// of silently injecting extra load, and a paced run produces the same
// schedule and the same tardiness as the discrete-event simulator on the
// same workload — a property the tests assert exactly.
//
// All wall-clock access goes through the Clock seam (Options.Clock): the
// production RealClock paces against the host clock, while the FakeClock
// replays the identical schedule instantly and deterministically. No other
// wall-clock read exists in the executor, keeping the determinism policy of
// docs/DETERMINISM.md intact end to end.
package executor

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/txn"
)

// Options configures an Executor.
type Options struct {
	// TimeScale is the wall-clock duration of one simulated time unit.
	// Default 200 microseconds: a 1000-transaction Table I workload at
	// utilization 0.8 replays in a few seconds.
	TimeScale time.Duration
	// OnComplete, when non-nil, is called from the executor goroutine after
	// every completion with the transaction and its finish time in
	// simulated units.
	OnComplete func(t *txn.Transaction, finish float64)
	// Clock paces the replay. Nil selects RealClock. Injecting a FakeClock
	// makes Run instantaneous and bit-for-bit deterministic — the only
	// wall-clock access in the executor goes through this seam.
	Clock Clock
	// Sink, when non-nil, receives the typed decision-event stream from
	// the scheduler boundary. Events are stamped with the executor's event
	// time (simulated units anchored at the Clock seam), never with a raw
	// host-clock read, so a FakeClock replay emits a bit-identical stream.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the replay's counters, gauges and
	// histograms; the asetsweb /metrics endpoint exports it live.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of executor progress, safe to read
// while the executor runs.
type Stats struct {
	// Now is the current simulated time.
	Now float64
	// Submitted and Completed count transactions.
	Submitted int
	Completed int
	// Running is the ID of the executing transaction, or -1.
	Running txn.ID
	// SumTardiness and MaxTardiness aggregate finished transactions.
	SumTardiness float64
	MaxTardiness float64
	// Misses counts finished transactions that overran their deadline.
	Misses int
}

// AvgTardiness returns the running average tardiness of completed
// transactions.
func (s Stats) AvgTardiness() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.SumTardiness / float64(s.Completed)
}

// Executor replays one workload through a scheduler in real time. Create
// with New, drive with Run, observe with Stats.
type Executor struct {
	set   *txn.Set
	sched sched.Scheduler
	opts  Options

	mu    sync.Mutex
	stats Stats
	done  bool
}

// New prepares an executor. The scheduler must be freshly constructed (its
// Init is called here) and must not be shared with another executor or
// simulation.
func New(s sched.Scheduler, set *txn.Set, opts Options) *Executor {
	if opts.TimeScale <= 0 {
		opts.TimeScale = 200 * time.Microsecond
	}
	if opts.Clock == nil {
		opts.Clock = RealClock{}
	}
	set.ResetAll()
	// Decision-loop instrumentation: a no-op pass-through when neither a
	// sink nor a registry is configured.
	s = sched.Instrument(s, opts.Sink, opts.Metrics)
	s.Init(set)
	return &Executor{
		set:   set,
		sched: s,
		opts:  opts,
		stats: Stats{Running: -1},
	}
}

// Stats returns a consistent snapshot of progress.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Done reports whether Run has finished.
func (e *Executor) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done
}

// Run replays the workload to completion or until ctx is cancelled. It
// returns the number of completed transactions and an error if the context
// ended the run early or the scheduler misbehaved.
func (e *Executor) Run(ctx context.Context) (int, error) {
	order := make([]*txn.Transaction, e.set.Len())
	copy(order, e.set.Txns)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Arrival != order[j].Arrival {
			return order[i].Arrival < order[j].Arrival
		}
		return order[i].ID < order[j].ID
	})

	clock := e.opts.Clock
	start := clock.Now()
	wallAt := func(simT float64) time.Time {
		return start.Add(time.Duration(simT * float64(e.opts.TimeScale)))
	}

	var now float64 // event time, in simulated units
	nextArr := 0
	completed := 0
	n := e.set.Len()

	// deliver hands every due arrival to the scheduler.
	deliver := func(now float64) {
		for nextArr < n && order[nextArr].Arrival <= now {
			e.sched.OnArrival(now, order[nextArr])
			e.mu.Lock()
			e.stats.Submitted++
			e.mu.Unlock()
			nextArr++
		}
	}

	// sleepUntil waits for a clock instant, honouring cancellation.
	sleepUntil := func(at time.Time) error {
		d := at.Sub(clock.Now())
		if d <= 0 {
			return ctx.Err()
		}
		return clock.Sleep(ctx, d)
	}

	defer func() {
		e.mu.Lock()
		e.done = true
		e.stats.Running = -1
		e.mu.Unlock()
	}()

	for completed < n {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		t := e.sched.Next(now)
		if t == nil {
			if nextArr >= n {
				return completed, fmt.Errorf("executor: no ready transaction and no future arrivals with %d/%d complete", completed, n)
			}
			// Idle: pace to the next arrival's wall instant, then advance
			// event time to it.
			now = order[nextArr].Arrival
			if err := sleepUntil(wallAt(now)); err != nil {
				return completed, err
			}
			deliver(now)
			continue
		}
		t.Started = true
		e.mu.Lock()
		e.stats.Running = t.ID
		e.stats.Now = now
		e.mu.Unlock()

		// Run until completion or the next arrival, whichever first.
		finishSim := now + t.Remaining
		if nextArr < n && order[nextArr].Arrival < finishSim {
			boundary := order[nextArr].Arrival
			if err := sleepUntil(wallAt(boundary)); err != nil {
				return completed, err
			}
			t.Remaining -= boundary - now
			now = boundary
			e.sched.OnPreempt(now, t)
			e.mu.Lock()
			e.stats.Running = -1
			e.stats.Now = now
			e.mu.Unlock()
			deliver(now)
			continue
		}

		if err := sleepUntil(wallAt(finishSim)); err != nil {
			return completed, err
		}
		now = finishSim
		t.Remaining = 0
		t.Finished = true
		t.FinishTime = now
		completed++
		e.sched.OnCompletion(now, t)

		tard := t.Tardiness()
		e.mu.Lock()
		e.stats.Completed = completed
		e.stats.Now = now
		e.stats.Running = -1
		e.stats.SumTardiness += tard
		if tard > e.stats.MaxTardiness {
			e.stats.MaxTardiness = tard
		}
		if tard > 0 {
			e.stats.Misses++
		}
		e.mu.Unlock()
		if e.opts.OnComplete != nil {
			e.opts.OnComplete(t, now)
		}
		deliver(now)
	}
	return completed, nil
}
