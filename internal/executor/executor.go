// Package executor runs a scheduling policy over live wall-clock time: the
// online counterpart of the discrete-event simulator. A workload's arrivals
// are replayed in real time (scaled by Options.TimeScale), the configured
// scheduler decides what the single backend "database" executes, and an
// arrival can preempt the running transaction exactly as in the simulator's
// preemptive-resume model.
//
// The executor exists for two reasons. First, it demonstrates that the
// policies in this repository are implementable online — every scheduling
// decision uses only information available at decision time. Second, it
// powers the asetsweb demo server, which exposes a live dashboard of an
// ASETS*-scheduled transaction stream.
//
// Time handling: scheduling decisions and tardiness bookkeeping run on
// event time (exactly the simulator's decision points), while wall-clock
// sleeps only pace execution toward each event's scheduled instant. Timer
// overshoot therefore puts the executor briefly into catch-up mode instead
// of silently injecting extra load, and a paced run produces the same
// schedule and the same tardiness as the discrete-event simulator on the
// same workload — a property the tests assert exactly.
//
// All wall-clock access goes through the Clock seam (Options.Clock): the
// production RealClock paces against the host clock, while the FakeClock
// replays the identical schedule instantly and deterministically. No other
// wall-clock read exists in the executor, keeping the determinism policy of
// docs/DETERMINISM.md intact end to end.
//
// Faults and overload protection (docs/ROBUSTNESS.md) thread through the
// same event-time model: Options.Faults injects aborts, backend outage
// windows and flash crowds at simulated instants (so a FakeClock replay of a
// fault run is still bit-deterministic), and Options.Admit sheds arrivals
// before they reach the scheduler.
package executor

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/admit"
	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/slo"
	"repro/internal/txn"
)

// inf marks "no such future event" in boundary computations.
var inf = math.Inf(1)

// Options configures an Executor.
type Options struct {
	// TimeScale is the wall-clock duration of one simulated time unit.
	// Default 200 microseconds: a 1000-transaction Table I workload at
	// utilization 0.8 replays in a few seconds.
	TimeScale time.Duration
	// OnComplete, when non-nil, is called from the executor goroutine after
	// every completion with the transaction and its finish time in
	// simulated units.
	OnComplete func(t *txn.Transaction, finish float64)
	// Clock paces the replay. Nil selects RealClock. Injecting a FakeClock
	// makes Run instantaneous and bit-for-bit deterministic — the only
	// wall-clock access in the executor goes through this seam.
	Clock Clock
	// Sink, when non-nil, receives the typed decision-event stream from
	// the scheduler boundary. Events are stamped with the executor's event
	// time (simulated units anchored at the Clock seam), never with a raw
	// host-clock read, so a FakeClock replay emits a bit-identical stream.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the replay's counters, gauges and
	// histograms; the asetsweb /metrics endpoint exports it live.
	Metrics *obs.Registry
	// Faults, when non-nil, is the fault plan the replay executes: keyed
	// abort/restart decisions, backend stall/crash windows at simulated
	// instants, and flash-crowd arrival compression (applied to the set in
	// New, before the scheduler sees it). Invalid plans surface as an error
	// from Run.
	Faults *fault.Plan
	// Admit, when non-nil, is consulted on every arrival; rejected
	// transactions are marked Shed and never reach the scheduler. All
	// controller calls are serialized under the executor's lock, so Probe
	// may interrogate the same controller from other goroutines.
	Admit admit.Controller
	// SLO, when non-nil, attaches the deterministic SLO alert engine to the
	// replay: burn-rate rules evaluate at tumbling-window boundaries of
	// simulated time, alert fire/resolve transitions are injected into Sink
	// in stream order, and the per-class gauges land in Metrics. A FakeClock
	// replay emits a bit-identical alert stream (docs/OBSERVABILITY.md).
	SLO *slo.Config
}

// Stats is a point-in-time snapshot of executor progress, safe to read
// while the executor runs.
type Stats struct {
	// Now is the current simulated time.
	Now float64
	// Submitted and Completed count transactions the scheduler accepted and
	// finished; shed transactions are never submitted.
	Submitted int
	Completed int
	// Running is the ID of the executing transaction, or -1.
	Running txn.ID
	// SumTardiness and MaxTardiness aggregate finished transactions.
	SumTardiness float64
	MaxTardiness float64
	// Misses counts finished transactions that overran their deadline.
	Misses int
	// Shed counts arrivals the admission controller rejected.
	Shed int
	// Aborts, Restarts and Stalls count injected faults.
	Aborts   int
	Restarts int
	Stalls   int
	// ValidateFails counts commit-time validation failures — contention-
	// driven re-executions (zero without a contended workload).
	ValidateFails int
	// Held counts aborted transactions currently waiting out a backoff.
	Held int
	// Backlog is the remaining work (simulated units) over admitted
	// unfinished transactions — the quantity feasibility admission reasons
	// about, and the basis of the server's Retry-After hint.
	Backlog float64
	// Degraded reports whether the admission controller is in degradation
	// mode.
	Degraded bool
}

// AvgTardiness returns the running average tardiness of completed
// transactions.
func (s Stats) AvgTardiness() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.SumTardiness / float64(s.Completed)
}

// Executor replays one workload through a scheduler in real time. Create
// with New, drive with Run, observe with Stats.
type Executor struct {
	set   *txn.Set
	sched sched.Scheduler
	opts  Options

	inj     *fault.Injector
	rec     *fault.Recorder
	val     *contention.Validator
	crec    *contention.Recorder
	sloSink *slo.Sink
	initErr error

	mu    sync.Mutex
	ctrl  admit.Controller // guarded by mu: the run loop and Probe both call it
	stats Stats
	done  bool
}

// New prepares an executor. The scheduler must be freshly constructed (its
// Init is called here) and must not be shared with another executor or
// simulation. A fault plan's flash-crowd bursts mutate the set's arrival
// times here, before the scheduler sees the workload; an invalid plan is
// reported by Run.
func New(s sched.Scheduler, set *txn.Set, opts Options) *Executor {
	if opts.TimeScale <= 0 {
		opts.TimeScale = 200 * time.Microsecond
	}
	if opts.Clock == nil {
		opts.Clock = RealClock{}
	}
	e := &Executor{
		set:  set,
		opts: opts,
		ctrl: opts.Admit,
	}
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			e.initErr = err
		} else {
			e.inj = fault.NewInjector(opts.Faults, set.Len())
			opts.Faults.ApplyBursts(set)
		}
	}
	if opts.Admit != nil && e.initErr == nil {
		// Shedding cascades to dependents (a shed dependency can never
		// complete, so its dependents would deadlock the scheduler), which
		// requires dependencies to be delivered before their dependents.
		if err := admit.CheckArrivalOrder(set); err != nil {
			e.initErr = err
		}
	}
	set.ResetAll()
	// The SLO engine wraps the configured sink so it sees the event stream
	// exactly as emitted and injects alert transitions in stream order;
	// everything downstream of here (instrumentation, recorders) emits
	// through the wrapper. Same composition as sim.Run, so a FakeClock
	// replay carries the identical alert stream as the simulator.
	sink := opts.Sink
	if opts.SLO != nil && e.initErr == nil {
		if err := opts.SLO.Validate(); err != nil {
			e.initErr = err
		} else {
			e.sloSink = slo.NewSink(slo.NewEngine(*opts.SLO, opts.Metrics), set, sink)
			sink = e.sloSink
		}
	}
	// Decision-loop instrumentation: a no-op pass-through when neither a
	// sink nor a registry is configured.
	s = sched.Instrument(s, sink, opts.Metrics)
	s.Init(set)
	if e.inj != nil || e.ctrl != nil {
		// Route recorder events through the instrumented scheduler's staged
		// event entry so they stay in emission order with decision events
		// while sink delivery is batched.
		e.rec = fault.NewRecorder(sched.EventSink(s, sink), opts.Metrics)
	}
	// A workload with read/write sets switches on commit-time validation:
	// contention-driven aborts replace the injector's random draws
	// (docs/CONTENTION.md). Nil for plain workloads.
	e.val = contention.NewValidator(set)
	if e.val != nil {
		e.crec = contention.NewRecorder(sched.EventSink(s, sink), opts.Metrics)
	}
	e.sched = s
	e.stats = Stats{Running: -1}
	return e
}

// Stats returns a consistent snapshot of progress.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Done reports whether Run has finished.
func (e *Executor) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done
}

// Probe evaluates the admission controller against the executor's live state
// for a candidate transaction, without registering anything: the decision the
// controller *would* make if t arrived now. With no controller configured it
// always admits. The server's POST /api/submit endpoint is built on this.
func (e *Executor) Probe(t *txn.Transaction) (bool, Stats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ctrl == nil {
		return true, e.stats
	}
	return e.ctrl.Admit(t, e.admitStateLocked(e.stats.Now)), e.stats
}

// AdmissionDegraded reports whether the admission controller is currently in
// degradation mode (always false without a controller). It asks the
// controller directly, so a controller that starts out degraded is reported
// before the replay's first completion.
func (e *Executor) AdmissionDegraded() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ctrl == nil {
		return false
	}
	return e.ctrl.Degraded()
}

// admitStateLocked assembles the controller's view of the system. Callers
// hold e.mu.
func (e *Executor) admitStateLocked(now float64) admit.State {
	running := 0
	if e.stats.Running >= 0 {
		running = 1
	}
	return admit.State{
		Now:       now,
		Queued:    e.stats.Submitted - e.stats.Completed - e.stats.Held - running,
		Running:   running,
		Servers:   1,
		Backlog:   e.stats.Backlog,
		Completed: e.stats.Completed,
		Misses:    e.stats.Misses,
	}
}

// Run replays the workload to completion or until ctx is cancelled. It
// returns the number of completed transactions and an error if the context
// ended the run early or the scheduler misbehaved.
func (e *Executor) Run(ctx context.Context) (int, error) {
	if e.initErr != nil {
		return 0, fmt.Errorf("executor: %w", e.initErr)
	}
	order := make([]*txn.Transaction, e.set.Len())
	copy(order, e.set.Txns)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Arrival != order[j].Arrival {
			return order[i].Arrival < order[j].Arrival
		}
		return order[i].ID < order[j].ID
	})

	clock := e.opts.Clock
	start := clock.Now()
	wallAt := func(simT float64) time.Time {
		return start.Add(time.Duration(simT * float64(e.opts.TimeScale)))
	}

	var now float64 // event time, in simulated units
	nextArr := 0
	completed := 0
	shed := 0
	n := e.set.Len()
	stallSeen := -1

	// deliver hands every due arrival to the scheduler, consulting the
	// admission controller first when one is configured.
	deliver := func(now float64) {
		for nextArr < n && order[nextArr].Arrival <= now {
			t := order[nextArr]
			nextArr++
			e.mu.Lock()
			if e.ctrl != nil && t.Shed {
				// Marked by an earlier cascade: a dependency was shed, so
				// this transaction could never become ready.
				shed++
				e.stats.Shed = shed
				e.stats.Now = now
				e.mu.Unlock()
				e.rec.Shed(now, t, "cascade")
				continue
			}
			if e.ctrl != nil && !e.ctrl.Admit(t, e.admitStateLocked(now)) {
				admit.CascadeShed(e.set, t)
				shed++
				e.stats.Shed = shed
				e.stats.Now = now
				ctrlName := e.ctrl.Name()
				e.mu.Unlock()
				e.rec.Shed(now, t, ctrlName)
				continue
			}
			e.stats.Submitted++
			e.stats.Backlog += t.Remaining
			e.stats.Now = now
			e.mu.Unlock()
			e.sched.OnArrival(now, t)
		}
	}

	// deliverRestarts re-queues aborted transactions whose backoff expired.
	deliverRestarts := func(now float64) {
		if e.inj == nil {
			return
		}
		for _, t := range e.inj.PopDueRestarts(now) {
			e.mu.Lock()
			e.stats.Restarts++
			e.stats.Held = e.inj.Held()
			e.mu.Unlock()
			e.rec.Restart(now, t)
			e.sched.OnPreempt(now, t)
		}
	}

	// enterStall records an outage window's entry exactly once.
	enterStall := func(now float64, w fault.Window, idx int) {
		if idx == stallSeen {
			return
		}
		stallSeen = idx
		e.inj.RecordStallEntered()
		e.mu.Lock()
		e.stats.Stalls++
		e.mu.Unlock()
		e.rec.StallEntered(now, w)
	}

	// nextRestart/nextStallStart are +Inf without an injector.
	nextRestart := func() float64 {
		if e.inj == nil {
			return inf
		}
		return e.inj.NextRestart()
	}
	nextStallStart := func(now float64) float64 {
		if e.inj == nil {
			return inf
		}
		return e.inj.NextStallStart(now)
	}

	// sleepUntil waits for a clock instant, honouring cancellation. Staged
	// events are delivered first, so live readers (the ring, SSE streams)
	// see every decision up to the instant the executor pauses — the loop
	// passes through here at least once per dispatch, which bounds event
	// delivery lag to a single decision step.
	sleepUntil := func(at time.Time) error {
		if fl, ok := e.sched.(sched.ObsFlusher); ok {
			fl.FlushObs()
		}
		d := at.Sub(clock.Now())
		if d <= 0 {
			return ctx.Err()
		}
		return clock.Sleep(ctx, d)
	}

	defer func() {
		// Drain batched instrumentation buffers before the run is marked
		// done, so anything reading the registry after completion sees every
		// observation. This runs on the executor goroutine, the only emitter,
		// so it cannot race with in-flight emission.
		if fl, ok := e.sched.(sched.ObsFlusher); ok {
			fl.FlushObs()
		}
		if e.sloSink != nil {
			// Publish the final (possibly partial-window) gauge snapshot; no
			// alert decisions happen here, so the stream stays deterministic.
			e.sloSink.Engine().Finish()
		}
		e.mu.Lock()
		e.done = true
		e.stats.Running = -1
		e.mu.Unlock()
	}()

	for completed+shed < n {
		if err := ctx.Err(); err != nil {
			return completed, err
		}

		// Stalled backend: arrivals queue and backoffs expire, but nothing
		// runs until the window ends.
		if e.inj != nil {
			if w, idx, ok := e.inj.InStall(now); ok {
				enterStall(now, w, idx)
				event := w.End()
				if nextArr < n && order[nextArr].Arrival < event {
					event = order[nextArr].Arrival
				}
				if r := nextRestart(); r < event {
					event = r
				}
				if err := sleepUntil(wallAt(event)); err != nil {
					return completed, err
				}
				now = event
				deliverRestarts(now)
				deliver(now)
				continue
			}
		}

		t := e.sched.Next(now)
		if t == nil {
			// Idle: pace to the next arrival, restart expiry or outage
			// window, then advance event time to it.
			next := inf
			if nextArr < n {
				next = order[nextArr].Arrival
			}
			if r := nextRestart(); r < next {
				next = r
			}
			if ss := nextStallStart(now); ss < next {
				next = ss
			}
			if next == inf {
				return completed, fmt.Errorf("executor: no ready transaction, no future arrivals and no pending restarts with %d/%d complete", completed, n)
			}
			now = next
			if err := sleepUntil(wallAt(now)); err != nil {
				return completed, err
			}
			deliverRestarts(now)
			deliver(now)
			continue
		}
		t.Started = true
		if e.val != nil {
			// Open (or continue) the incarnation: the read snapshot is as
			// old as the incarnation's first dispatch.
			e.val.Begin(t)
		}
		e.mu.Lock()
		e.stats.Running = t.ID
		e.stats.Now = now
		e.mu.Unlock()

		// Run until completion, the next arrival, the next restart expiry
		// or the next outage window, whichever first.
		finishSim := now + t.Remaining
		boundary := finishSim
		if nextArr < n && order[nextArr].Arrival < boundary {
			boundary = order[nextArr].Arrival
		}
		if r := nextRestart(); r < boundary {
			boundary = r
		}
		if ss := nextStallStart(now); ss < boundary {
			boundary = ss
		}

		if boundary < finishSim {
			if err := sleepUntil(wallAt(boundary)); err != nil {
				return completed, err
			}
			dt := boundary - now
			t.Remaining -= dt
			now = boundary
			e.mu.Lock()
			e.stats.Running = -1
			e.stats.Now = now
			e.stats.Backlog -= dt
			e.mu.Unlock()
			// An outage window opening here preempts t; a crash window
			// additionally destroys its in-flight progress.
			if e.inj != nil {
				if w, idx, ok := e.inj.InStall(now); ok {
					enterStall(now, w, idx)
					if w.Kind == fault.Crash {
						e.inj.RecordCrashLoss(t)
						e.mu.Lock()
						e.stats.Aborts++
						e.stats.Backlog += t.Length - t.Remaining
						e.mu.Unlock()
						t.Remaining = t.Length
						if e.val != nil {
							// The in-flight incarnation died with its
							// snapshot; committed versions survive.
							e.val.Reset(t)
						}
						e.rec.Abort(now, t, "crash", now)
					}
				}
			}
			e.sched.OnPreempt(now, t)
			deliverRestarts(now)
			deliver(now)
			continue
		}

		if err := sleepUntil(wallAt(finishSim)); err != nil {
			return completed, err
		}
		consumed := t.Remaining
		now = finishSim

		// Contention-driven abort: commit-time validation failed because a
		// commit during the incarnation overwrote one of t's reads. Rewind
		// to full length and re-queue immediately — the next dispatch opens
		// a fresh incarnation.
		if e.val != nil && !e.val.CommitCheck(t) {
			e.mu.Lock()
			e.stats.ValidateFails++
			e.stats.Backlog += t.Length - consumed
			e.stats.Running = -1
			e.stats.Now = now
			e.mu.Unlock()
			t.Remaining = t.Length
			e.crec.ValidateFail(now, t)
			e.sched.OnPreempt(now, t)
			deliverRestarts(now)
			deliver(now)
			continue
		}

		// The injector may abort the attempt at its completion instant: the
		// transaction stays checked out while it waits out the backoff and
		// re-enters the scheduler via OnPreempt when it expires.
		if e.val == nil && e.inj != nil && e.inj.AbortsAttempt(t) {
			retryAt := e.inj.RecordAbort(now, t)
			e.mu.Lock()
			e.stats.Aborts++
			e.stats.Held = e.inj.Held()
			e.stats.Backlog += t.Length - consumed
			e.stats.Running = -1
			e.stats.Now = now
			e.mu.Unlock()
			t.Remaining = t.Length
			e.rec.Abort(now, t, "abort", retryAt)
			deliverRestarts(now)
			deliver(now)
			continue
		}

		t.Remaining = 0
		t.Finished = true
		t.FinishTime = now
		completed++
		e.sched.OnCompletion(now, t)

		tard := t.Tardiness()
		var degradeFlip, degradeTo bool
		e.mu.Lock()
		e.stats.Completed = completed
		e.stats.Now = now
		e.stats.Running = -1
		e.stats.Backlog -= consumed
		e.stats.SumTardiness += tard
		if tard > e.stats.MaxTardiness {
			e.stats.MaxTardiness = tard
		}
		if tard > 0 {
			e.stats.Misses++
		}
		if e.ctrl != nil {
			e.ctrl.Complete(t, tard > 0)
			if d := e.ctrl.Degraded(); d != e.stats.Degraded {
				e.stats.Degraded = d
				degradeFlip, degradeTo = true, d
			}
		}
		e.mu.Unlock()
		if degradeFlip {
			e.rec.Degrade(now, degradeTo)
		}
		if e.opts.OnComplete != nil {
			e.opts.OnComplete(t, now)
		}
		deliverRestarts(now)
		deliver(now)
	}
	return completed, nil
}
