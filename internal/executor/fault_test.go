package executor

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// faultPlan exercises aborts with backoff, a stall, a crash, and a burst.
func faultPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 0x5EED, AbortProb: 0.25, MaxRestarts: 3,
		BackoffBase: 0.5, BackoffCap: 4,
		Stalls: []fault.Window{
			{Start: 10, Duration: 3},
			{Start: 50, Duration: 2, Kind: fault.Crash},
		},
		Bursts: []fault.Burst{{At: 25, Width: 10}},
	}
}

func faultConfig(seed uint64) workload.Config {
	cfg := workload.Default(1.3, seed)
	cfg.N = 150
	return cfg.WithWorkflows(4, 1).WithWeights()
}

// faultReplayTranscript runs one FakeClock replay under the full fault plan
// and a queue-cap shedder, returning a byte-exact completion transcript and
// the final stats.
func faultReplayTranscript(t *testing.T, seed uint64) (string, Stats) {
	t.Helper()
	set := workload.MustGenerate(faultConfig(seed))
	var sb strings.Builder
	ex := New(core.New(), set, Options{
		TimeScale: time.Millisecond,
		Clock:     NewFakeClock(time.Unix(0, 0)),
		Faults:    faultPlan(),
		Admit:     admit.QueueCap{Max: 12},
		OnComplete: func(tx *txn.Transaction, finish float64) {
			fmt.Fprintf(&sb, "T%d@%x\n", tx.ID, finish)
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ex.Run(ctx); err != nil {
		t.Fatal(err)
	}
	return sb.String(), ex.Stats()
}

// TestFaultReplayDeterministic: under a FakeClock, two replays with the same
// seed, fault plan and admission controller produce byte-identical
// completion transcripts and identical fault/shed counters.
func TestFaultReplayDeterministic(t *testing.T) {
	tr1, st1 := faultReplayTranscript(t, 41)
	tr2, st2 := faultReplayTranscript(t, 41)
	if tr1 != tr2 {
		t.Fatal("same-seed fault replays produced different completion transcripts")
	}
	if st1 != st2 {
		t.Fatalf("same-seed fault replays produced different stats:\n%+v\n%+v", st1, st2)
	}
	if st1.Aborts == 0 || st1.Restarts == 0 || st1.Stalls == 0 || st1.Shed == 0 {
		t.Fatalf("fault plan injected nothing: %+v", st1)
	}
	if n := faultConfig(41).N; st1.Completed+st1.Shed != n {
		t.Fatalf("accounting broken: completed %d + shed %d != n %d", st1.Completed, st1.Shed, n)
	}
}

// TestFaultReplayMatchesSimulator: the executor's fault handling is the
// simulator's, so a FakeClock replay under the same plan and controller
// reproduces the simulator's fault counters, shed set and tardiness exactly.
func TestFaultReplayMatchesSimulator(t *testing.T) {
	setSim := workload.MustGenerate(faultConfig(41))
	summary, err := sim.New(sim.Config{
		Faults: faultPlan(),
		Admit:  admit.QueueCap{Max: 12},
	}).Run(setSim, core.New())
	if err != nil {
		t.Fatal(err)
	}
	_, st := faultReplayTranscript(t, 41)
	if st.Aborts != summary.Aborts || st.Restarts != summary.Restarts ||
		st.Stalls != summary.Stalls || st.Shed != summary.Shed {
		t.Fatalf("fault counters diverge: executor %+v vs sim aborts=%d restarts=%d stalls=%d shed=%d",
			st, summary.Aborts, summary.Restarts, summary.Stalls, summary.Shed)
	}
	if st.Completed != summary.N {
		t.Fatalf("completed %d != simulator's admitted %d", st.Completed, summary.N)
	}
	// The executor sums tardiness in completion order, metrics.Compute in ID
	// order; association differs, so allow a few ulps but nothing visible.
	if live, want := st.AvgTardiness(), summary.AvgTardiness; live-want > 1e-9 || want-live > 1e-9 {
		t.Fatalf("fault replay avg tardiness %v != simulator %v", live, want)
	}
}

// TestInvalidPlanSurfacesFromRun: a bad plan is reported by Run with an
// actionable error, not silently ignored at construction.
func TestInvalidPlanSurfacesFromRun(t *testing.T) {
	set := smallWorkload(t, 0.5, false)
	ex := New(core.New(), set, Options{
		TimeScale: fastScale,
		Faults:    &fault.Plan{AbortProb: 0.5}, // MaxRestarts == 0: invalid
	})
	if _, err := ex.Run(context.Background()); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}
