package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Cache is an extension experiment for Section II-A's caching note
// ("if caching or materialization is utilized for fragments [8], then
// transactions' lengths are adjusted accordingly"): fragments hit a
// materialized view with probability h and then cost only 20% of their
// drawn length. At a fixed offered load, caching makes the effective
// length distribution strongly bimodal — many tiny hits, few full misses —
// which, like higher Zipf skew, should pull the EDF/SRPT crossover toward
// lower utilization while ASETS* keeps tracking the lower envelope.
func Cache(opts Options) (*Result, error) {
	hits := []float64{0, 0.2, 0.4, 0.6, 0.8}
	utils := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		asetsPolicy(),
	}

	crossovers := make([]float64, len(hits))
	gains := make([]float64, len(hits))
	for hi, h := range hits {
		res, err := sweep(opts, utils, fixed(policies...), func(x float64, seed uint64) workload.Config {
			cfg := workload.Default(x, seed)
			if h > 0 {
				cfg = cfg.WithCache(h, 0.2)
			}
			return cfg
		})
		if err != nil {
			return nil, err
		}
		edf, _ := means(res.avgTardiness[0])
		srpt, _ := means(res.avgTardiness[1])
		asets, _ := means(res.avgTardiness[2])
		crossovers[hi] = Crossover(utils, edf, srpt)
		best := 0.0
		for i := range utils {
			lo := edf[i]
			if srpt[i] < lo {
				lo = srpt[i]
			}
			if lo > 0 {
				if rel := (lo - asets[i]) / lo; rel > best {
					best = rel
				}
			}
		}
		gains[hi] = best
	}

	fig := &report.Figure{
		ID:     "cache",
		Title:  "Fragment caching: EDF/SRPT crossover and ASETS* gain vs hit ratio",
		XLabel: "cache hit ratio",
		YLabel: "value",
		X:      hits,
	}
	fig.AddSeries("crossover utilization", crossovers, nil)
	fig.AddSeries("max ASETS* gain", gains, nil)
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension — Section II-A caching note) Caching skews the effective length distribution; like higher Zipf skew, it should move the EDF/SRPT crossover to lower utilization, with ASETS* still at the lower envelope throughout.",
		Observations: []string{
			fmt.Sprintf("crossover utilizations across hit ratios: %v", crossovers),
			fmt.Sprintf("max ASETS* gain at highest hit ratio: %.1f%%", 100*gains[len(hits)-1]),
		},
	}, nil
}
