package experiments

import (
	"reflect"
	"testing"
)

// TestParallelismInvisible is the harness-level determinism gate: every
// registered experiment must produce a bit-identical Result whether its
// cells run serially or across four workers. This is what lets CI run at
// GOMAXPROCS while a reviewer replays at -parallel 1 and diffs CSVs.
func TestParallelismInvisible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	// A cross-section of harness paths: the generic sweep (fig14), the
	// multiserver harness, and the Post-hook analysis path (domino).
	for _, id := range []string{"fig14", "mserver", "domino"} {
		exp, ok := Registry[id]
		if !ok {
			t.Fatalf("experiment %q not in registry", id)
		}
		t.Run(id, func(t *testing.T) {
			opts := fastOpts()
			opts.Seeds = opts.Seeds[:2]
			opts.N = 200
			opts.Validate = false

			serialOpts := opts
			serialOpts.Parallelism = 1
			serial, err := exp(serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parallelOpts := opts
			parallelOpts.Parallelism = 4
			parallel, err := exp(parallelOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: parallel result differs from serial:\nserial   %+v\nparallel %+v",
					id, serial.Figure, parallel.Figure)
			}
		})
	}
}
