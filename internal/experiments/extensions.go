package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"

	"repro/internal/core"
)

// Table1 exercises the workload generator across the parameter matrix of
// Table I and reports how faithfully the realized workload matches the
// specification: the realized utilization under SRPT (a work-conserving
// policy, so busy/makespan tracks offered load until saturation) and the
// deadline miss ratio as load grows.
func Table1(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{{Name: "SRPT", New: sched.NewSRPT}}
	res, err := sweep(opts, xs, fixed(policies...),
		func(x float64, seed uint64) workload.Config { return workload.Default(x, seed) })
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "tab1",
		Title:  "Table I workload generator: realized load versus specification",
		XLabel: "target utilization",
		YLabel: "realized value",
		X:      xs,
	}
	realized, realErr := means(res.realizedUtil[0])
	miss, missErr := means(res.missRatio[0])
	fig.AddSeries("realized utilization", realized, realErr)
	fig.AddSeries("miss ratio", miss, missErr)

	worst := 0.0
	for i, x := range xs {
		if d := realized[i] - x; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "Arrival rate = utilization / average transaction length, so realized server utilization should track the target closely below saturation.",
		Observations: []string{
			fmt.Sprintf("max |realized - target| utilization deviation: %.3f", worst),
		},
	}, nil
}

// AlphaSweep reproduces the experiment the paper describes but omits plots
// for (Section IV-C, last paragraph): varying the Zipf skew alpha of the
// transaction-length distribution at kmax=3 and locating the EDF/SRPT
// crossover. The paper reports that more skew moves the crossover to lower
// utilization.
func AlphaSweep(opts Options) (*Result, error) {
	alphas := []float64{0.0, 0.25, 0.5, 0.75, 1.0, 1.25}
	utils := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		asetsPolicy(),
	}

	crossovers := make([]float64, len(alphas))
	gains := make([]float64, len(alphas))
	for ai, alpha := range alphas {
		res, err := sweep(opts, utils, fixed(policies...), func(x float64, seed uint64) workload.Config {
			cfg := workload.Default(x, seed)
			cfg.Alpha = alpha
			return cfg
		})
		if err != nil {
			return nil, err
		}
		edf, _ := means(res.avgTardiness[0])
		srpt, _ := means(res.avgTardiness[1])
		asets, _ := means(res.avgTardiness[2])
		crossovers[ai] = Crossover(utils, edf, srpt)
		best := 0.0
		for i := range utils {
			lo := edf[i]
			if srpt[i] < lo {
				lo = srpt[i]
			}
			if lo > 0 {
				if rel := (lo - asets[i]) / lo; rel > best {
					best = rel
				}
			}
		}
		gains[ai] = best
	}

	fig := &report.Figure{
		ID:     "alpha",
		Title:  "Length-distribution skew versus EDF/SRPT crossover (kmax=3)",
		XLabel: "zipf alpha",
		YLabel: "value",
		X:      alphas,
	}
	fig.AddSeries("crossover utilization", crossovers, nil)
	fig.AddSeries("max ASETS* gain", gains, nil)
	return &Result{
		Figure:     fig,
		PaperClaim: "ASETS* outperforms both policies under every alpha; more skew moves the EDF/SRPT crossover to lower utilization.",
		Observations: []string{
			fmt.Sprintf("crossover utilizations across alphas: %v", crossovers),
		},
	}, nil
}

// AblationRule compares the two decision-rule readings of the paper — the
// Fig. 7 pseudo-code (asymmetric) and the Section III-B prose (symmetric) —
// on the general-case workload. DESIGN.md documents the discrepancy; this
// experiment quantifies it.
func AblationRule(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "ASETS*(fig7)", New: func() sched.Scheduler {
			return core.New(core.WithRule(core.RuleFig7), core.WithName("ASETS*(fig7)"))
		}},
		{Name: "ASETS*(sym)", New: func() sched.Scheduler {
			return core.New(core.WithRule(core.RuleSymmetric), core.WithName("ASETS*(sym)"))
		}},
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(x, seed).WithWorkflows(5, 1).WithWeights()
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "abl-rule",
		Title:  "Ablation: Fig. 7 rule versus Section III-B symmetric rule",
		XLabel: "utilization",
		YLabel: "avg weighted tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgWeighted[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	maxRel := 0.0
	for xi := range xs {
		a := res.avgWeighted[0][xi].Mean()
		b := res.avgWeighted[1][xi].Mean()
		if a > 0 {
			rel := (b - a) / a
			if rel < 0 {
				rel = -rel
			}
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "(ablation — no paper claim) The two readings should behave similarly; the Fig. 7 pseudo-code is taken as canonical.",
		Observations: []string{
			fmt.Sprintf("max relative difference between rules: %.1f%%", 100*maxRel),
		},
	}, nil
}

// AblationCountBalance mirrors Figures 16/17 with the count-based activation
// scheme (Section III-D sweeps 0.02 to 0.1 scheduling points^-1 and reports
// the same behaviour as time-based activation).
func AblationCountBalance(opts Options) (*Result, error) {
	xs := []float64{0.02, 0.04, 0.06, 0.08, 0.1}
	res, err := balanceSweep(opts, xs, func(rate float64) Policy {
		return Policy{Name: "ASETS*-BAL(count)", New: func() sched.Scheduler {
			return core.New(core.WithCountActivation(rate), core.WithName("ASETS*-BAL(count)"))
		}}
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "abl-count",
		Title:  "Balance-aware ASETS* with count-based activation",
		XLabel: "activation rate (count-based)",
		YLabel: "weighted tardiness",
		X:      xs,
	}
	baseMax, _ := means(res.maxWeighted[0])
	balMax, _ := means(res.maxWeighted[1])
	baseAvg, _ := means(res.avgWeighted[0])
	balAvg, _ := means(res.avgWeighted[1])
	fig.AddSeries("ASETS* max", baseMax, nil)
	fig.AddSeries("BAL max", balMax, nil)
	fig.AddSeries("ASETS* avg", baseAvg, nil)
	fig.AddSeries("BAL avg", balAvg, nil)
	return &Result{
		Figure:     fig,
		PaperClaim: "Count-based activation exhibits the same worst-case/average-case trade-off as time-based activation (Section IV-F: 'Same behavior was obtained in both cases').",
		Observations: []string{
			fmt.Sprintf("worst-case improvement at max rate: %.1f%%", pctImprove(baseMax[len(xs)-1], balMax[len(xs)-1])),
			fmt.Sprintf("average-case cost at max rate: %.1f%%", -pctImprove(baseAvg[len(xs)-1], balAvg[len(xs)-1])),
		},
	}, nil
}

// pctImprove returns how much better (positive) or worse (negative) v is
// than base, in percent of base.
func pctImprove(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - v) / base
}
