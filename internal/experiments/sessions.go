package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sessions is an extension experiment for the paper's introduction: "more
// than 20 billion dollars in revenue are lost every year due to excessive
// delays in e-commerce web pages that lead clients to quit their sessions".
// It runs a closed-loop population of interactive users (each page a
// workflow of fragments; the next page requested a think time after the
// previous rendered) and measures the page-abandonment rate — the fraction
// of pages rendered slower than the users' patience — under each policy as
// the backend load grows.
func Sessions(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	policies := []Policy{
		{Name: "FCFS", New: sched.NewFCFS},
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		{Name: "ASETS*", New: func() sched.Scheduler { return core.New() }},
	}
	const users = 40

	// Patience: three times the mean page work — a page that takes three
	// times its no-contention render time loses the user.
	zipf := rng.MustZipf(1, 50, 0.5)
	patience := 3 * zipf.Mean() * 2.5 // mean fragments per page = (1+4)/2

	abandon := make([][]float64, len(policies))
	p95 := make([][]float64, len(policies))
	for pi := range policies {
		abandon[pi] = make([]float64, len(xs))
		p95[pi] = make([]float64, len(xs))
	}
	for xi, u := range xs {
		for pi, p := range policies {
			var abSum, p95Sum float64
			for _, seed := range opts.Seeds {
				cfg := workload.DefaultSessions(users, u, seed)
				set, sessions, err := workload.GenerateSessions(cfg)
				if err != nil {
					return nil, err
				}
				res, err := sim.New(sim.Config{Patience: patience}).RunClosedLoop(set, sessions, p.New())
				if err != nil {
					return nil, err
				}
				abSum += res.AbandonRate
				p95Sum += latencyP95(res.PageLatencies)
			}
			abandon[pi][xi] = abSum / float64(len(opts.Seeds))
			p95[pi][xi] = p95Sum / float64(len(opts.Seeds))
		}
	}

	fig := &report.Figure{
		ID:     "sessions",
		Title:  fmt.Sprintf("Closed-loop sessions (%d users): page abandonment rate (patience %.0f)", users, patience),
		XLabel: "target utilization",
		YLabel: "abandon rate",
		X:      xs,
	}
	for pi, p := range policies {
		fig.AddSeries(p.Name, abandon[pi], nil)
	}
	last := len(xs) - 1
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension — motivated by the introduction) Hypothesis to probe: how much of the lost-session problem is scheduling-policy dependent? Note the patience bound is latency-based, not deadline-based, so response-time-optimal SRPT — not the tardiness-optimizing policies — is the expected winner on abandonment; the experiment quantifies what deadline-centric scheduling costs on that metric.",
		Observations: []string{
			fmt.Sprintf("abandon rate at max load: FCFS %.1f%%, EDF %.1f%%, SRPT %.1f%%, ASETS* %.1f%%",
				100*abandon[0][last], 100*abandon[1][last], 100*abandon[2][last], 100*abandon[3][last]),
			fmt.Sprintf("page p95 latency at max load: FCFS %.1f, EDF %.1f, SRPT %.1f, ASETS* %.1f",
				p95[0][last], p95[1][last], p95[2][last], p95[3][last]),
		},
	}, nil
}

// latencyP95 returns the 95th-percentile page latency over all sessions.
func latencyP95(latencies [][]float64) float64 {
	var all []float64
	for _, sess := range latencies {
		all = append(all, sess...)
	}
	if len(all) == 0 {
		return 0
	}
	sort.Float64s(all)
	idx := int(0.95 * float64(len(all)-1))
	return all[idx]
}
