// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (Section IV), plus the extensions and
// ablations indexed in DESIGN.md. Each experiment sweeps a parameter,
// simulates every policy over several seeded workloads (the paper averages
// five runs per setting), validates the resulting schedules, and returns a
// report.Figure whose series mirror the curves in the paper.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Options tunes how experiments run; the zero value is filled with defaults
// matching the paper (five seeds, 1000 transactions, full utilization grid).
type Options struct {
	// Seeds are the workload seeds to average over (paper: five runs).
	Seeds []uint64
	// N overrides the number of transactions per workload (paper: 1000).
	N int
	// Parallelism bounds concurrent simulation workers (runner.Pool.Workers):
	// 0 means GOMAXPROCS, 1 forces the serial legacy path. Results are
	// bit-identical for every value (docs/PARALLELISM.md).
	Parallelism int
	// Validate enables per-run schedule validation via the trace package.
	Validate bool
}

// DefaultSeeds are the five workload seeds used throughout, spread through
// the seed space by the golden-ratio increment.
var DefaultSeeds = []uint64{
	0x9e3779b97f4a7c15,
	0x3c6ef372fe94f82a,
	0xdaa66d2c7ddc743f,
	0x78dde6e5fd23f054,
	0x17156069fc6b6c69,
}

func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = DefaultSeeds
	}
	if o.N == 0 {
		o.N = 1000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Policy couples a display name with a scheduler factory. A fresh scheduler
// is constructed for every simulation run, so factories must not share
// mutable state between calls.
type Policy struct {
	Name string
	New  func() sched.Scheduler
}

// UtilizationGrid returns the paper's sweep 0.1, 0.2, ..., 1.0.
func UtilizationGrid() []float64 {
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i+1) / 10
	}
	return xs
}

// LowUtilizationGrid returns 0.1..0.5 (Figure 8's x-axis).
func LowUtilizationGrid() []float64 { return UtilizationGrid()[:5] }

// HighUtilizationGrid returns 0.6..1.0 (Figure 9's x-axis).
func HighUtilizationGrid() []float64 { return UtilizationGrid()[5:] }

// cell identifies one (x-value, policy, seed) simulation.
type cell struct {
	xi, pi, si int
}

// sweepResult holds per-(policy, x) statistics across seeds for every metric
// the figures consume.
type sweepResult struct {
	// indexed [policy][x]
	avgTardiness [][]*metrics.Stream
	avgWeighted  [][]*metrics.Stream
	maxWeighted  [][]*metrics.Stream
	missRatio    [][]*metrics.Stream
	avgResponse  [][]*metrics.Stream
	realizedUtil [][]*metrics.Stream
	maxTardiness [][]*metrics.Stream
}

func newSweepResult(nPolicies, nX int) *sweepResult {
	alloc := func() [][]*metrics.Stream {
		out := make([][]*metrics.Stream, nPolicies)
		for p := range out {
			out[p] = make([]*metrics.Stream, nX)
			for x := range out[p] {
				out[p][x] = &metrics.Stream{}
			}
		}
		return out
	}
	return &sweepResult{
		avgTardiness: alloc(),
		avgWeighted:  alloc(),
		maxWeighted:  alloc(),
		missRatio:    alloc(),
		avgResponse:  alloc(),
		realizedUtil: alloc(),
		maxTardiness: alloc(),
	}
}

// sweep runs every (x, policy, seed) combination through the parallel
// experiment engine (internal/runner) and aggregates the summaries. makeCfg
// maps an x-value and seed to a workload configuration; the same (x, seed)
// workload is regenerated per policy so every policy schedules an identical
// transaction set. policiesAt returns the policy list for a given x — most
// figures use a fixed list, while the balance-aware sweeps vary the
// activation rate with x; the list length and ordering must not change
// across x.
//
// Summaries are gathered and aggregated in cell order, so the figure's
// floating-point means are bit-identical for any Parallelism — the
// determinism contract of docs/PARALLELISM.md, enforced by asetsbench
// -parallel-bench in CI.
func sweep(opts Options, xs []float64, policiesAt func(x float64) []Policy, makeCfg func(x float64, seed uint64) workload.Config) (*sweepResult, error) {
	opts = opts.withDefaults()
	policyGrid := make([][]Policy, len(xs))
	for i, x := range xs {
		policyGrid[i] = policiesAt(x)
		if len(policyGrid[i]) != len(policyGrid[0]) {
			return nil, fmt.Errorf("experiments: policiesAt returned %d policies at x=%v but %d at x=%v",
				len(policyGrid[i]), x, len(policyGrid[0]), xs[0])
		}
	}
	nPolicies := len(policyGrid[0])
	res := newSweepResult(nPolicies, len(xs))

	var cells []cell
	for xi := range xs {
		for pi := 0; pi < nPolicies; pi++ {
			for si := range opts.Seeds {
				cells = append(cells, cell{xi: xi, pi: pi, si: si})
			}
		}
	}

	jobs := make([]runner.Job, len(cells))
	for i, c := range cells {
		policy := policyGrid[c.xi][c.pi]
		cfg := makeCfg(xs[c.xi], opts.Seeds[c.si])
		cfg.N = opts.N
		job := runner.Job{
			// The cell's workload seed is baked into cfg; the pool's
			// derived seed is unused.
			Gen:   func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
			New:   policy.New,
			Label: fmt.Sprintf("x=%v policy=%s seed=%d", xs[c.xi], policy.Name, opts.Seeds[c.si]),
		}
		if opts.Validate {
			rec := &trace.Recorder{}
			job.Config.Recorder = rec
			job.Post = func(set *txn.Set, _ *metrics.Summary) error {
				return rec.Validate(set)
			}
		}
		jobs[i] = job
	}
	summaries, err := runner.Pool{Workers: opts.Parallelism}.Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i, c := range cells {
		summary := summaries[i]
		res.avgTardiness[c.pi][c.xi].Add(summary.AvgTardiness)
		res.avgWeighted[c.pi][c.xi].Add(summary.AvgWeightedTardiness)
		res.maxWeighted[c.pi][c.xi].Add(summary.MaxWeightedTardiness)
		res.missRatio[c.pi][c.xi].Add(summary.MissRatio)
		res.avgResponse[c.pi][c.xi].Add(summary.AvgResponseTime)
		res.realizedUtil[c.pi][c.xi].Add(summary.Utilization)
		res.maxTardiness[c.pi][c.xi].Add(summary.MaxTardiness)
	}
	return res, nil
}

// means extracts the per-x means (and 95% CIs) of one metric row.
func means(row []*metrics.Stream) (ys, errs []float64) {
	ys = make([]float64, len(row))
	errs = make([]float64, len(row))
	for i, s := range row {
		ys[i] = s.Mean()
		errs[i] = s.CI95()
	}
	return ys, errs
}

// ratios divides numerator means by denominator means pointwise, mapping
// 0/0 to 1 (both policies achieved zero tardiness, i.e. parity).
func ratios(num, den []*metrics.Stream) []float64 {
	out := make([]float64, len(num))
	for i := range num {
		n, d := num[i].Mean(), den[i].Mean()
		switch {
		case d == 0 && n == 0:
			out[i] = 1
		case d == 0:
			out[i] = 0 // denominator policy was perfect; flag dominance
		default:
			out[i] = n / d
		}
	}
	return out
}

// Crossover returns the first x at which series b drops strictly below
// series a (e.g. where SRPT overtakes EDF), or -1 when it never does.
func Crossover(xs, a, b []float64) float64 {
	for i := range xs {
		if b[i] < a[i] {
			return xs[i]
		}
	}
	return -1
}

// Registry maps experiment IDs (DESIGN.md's per-experiment index) to their
// runners, so the CLI and tests can enumerate them.
var Registry = map[string]func(Options) (*Result, error){
	"fig8":       Fig8,
	"fig9":       Fig9,
	"fig10":      Fig10,
	"fig11":      Fig11,
	"fig12":      Fig12,
	"fig13":      Fig13,
	"fig14":      Fig14,
	"fig15":      Fig15,
	"fig16":      Fig16,
	"fig17":      Fig17,
	"tab1":       Table1,
	"alpha":      AlphaSweep,
	"abl-rule":   AblationRule,
	"abl-count":  AblationCountBalance,
	"wf-len":     WorkflowLengthSweep,
	"wf-mem":     WorkflowMembershipSweep,
	"dep-split":  DependentBreakdown,
	"abl-rep":    AblationRepScope,
	"fig15x":     Fig15Extended,
	"domino":     Domino,
	"mserver":    MultiServer,
	"sessions":   Sessions,
	"cache":      Cache,
	"structural": Structural,
	"hitratio":   HitRatio,
	"burst":      Burst,
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	//lint:ignore maprange collected IDs are sorted immediately below
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
