package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// wfSweepUtilization fixes the load for the workflow-shape sweeps; the
// paper's workflow results are presented where tardiness is non-trivial.
const wfSweepUtilization = 0.9

// WorkflowLengthSweep reproduces the Section IV-D robustness claim: "We
// varied the maximum workflow length from three to ten ... in all cases we
// found similar and even better performance", comparing ASETS* to Ready as
// the maximum chain length grows at fixed utilization.
func WorkflowLengthSweep(opts Options) (*Result, error) {
	xs := []float64{3, 4, 5, 6, 7, 8, 9, 10}
	policies := []Policy{
		{Name: "Ready", New: func() sched.Scheduler { return core.NewReady() }},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(wfSweepUtilization, seed).WithWorkflows(int(x), 1)
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "wf-len",
		Title:  fmt.Sprintf("Avg tardiness vs max workflow length (U=%g)", wfSweepUtilization),
		XLabel: "max workflow length",
		YLabel: "avg tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgTardiness[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "ASETS* outperforms Ready under all workflow lengths from three to ten (Section IV-D).",
		Observations: []string{
			fmt.Sprintf("mean improvement across lengths: %.1f%%", meanImprovement(res.avgTardiness[0], res.avgTardiness[1])),
		},
	}, nil
}

// WorkflowMembershipSweep reproduces the companion sweep: "varied the
// maximum number of workflows from one to ten" — transactions shared by up
// to x workflows, forming DAGs rather than chains.
func WorkflowMembershipSweep(opts Options) (*Result, error) {
	xs := []float64{1, 2, 3, 5, 7, 10}
	policies := []Policy{
		{Name: "Ready", New: func() sched.Scheduler { return core.NewReady() }},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(wfSweepUtilization, seed).WithWorkflows(5, int(x))
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "wf-mem",
		Title:  fmt.Sprintf("Avg tardiness vs max workflow membership (U=%g)", wfSweepUtilization),
		XLabel: "max workflows per transaction",
		YLabel: "avg tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgTardiness[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "ASETS* outperforms Ready for every maximum number of workflows from one to ten (Section IV-D).",
		Observations: []string{
			fmt.Sprintf("mean improvement across membership bounds: %.1f%%", meanImprovement(res.avgTardiness[0], res.avgTardiness[1])),
		},
	}, nil
}

// DependentBreakdown is an extension experiment motivated by this
// reproduction (see EXPERIMENTS.md): it splits tardiness between dependent
// and independent transactions, showing where the workflow-level boost
// lands. Series are computed from the same workload scheduled by Ready and
// ASETS*.
func DependentBreakdown(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := UtilizationGrid()

	runPolicy := func(mk func() sched.Scheduler) ([]float64, []float64, error) {
		dep := make([]float64, len(xs))
		indep := make([]float64, len(xs))
		for xi, u := range xs {
			var depSum, indepSum float64
			var depN, indepN int
			for _, seed := range opts.Seeds {
				cfg := workload.Default(u, seed).WithWorkflows(5, 1)
				cfg.N = opts.N
				set, err := workload.Generate(cfg)
				if err != nil {
					return nil, nil, err
				}
				if _, err := sim.New(sim.Config{}).Run(set, mk()); err != nil {
					return nil, nil, err
				}
				for _, t := range set.Txns {
					if t.Independent() {
						indepSum += t.Tardiness()
						indepN++
					} else {
						depSum += t.Tardiness()
						depN++
					}
				}
			}
			if depN > 0 {
				dep[xi] = depSum / float64(depN)
			}
			if indepN > 0 {
				indep[xi] = indepSum / float64(indepN)
			}
		}
		return dep, indep, nil
	}

	readyDep, readyIndep, err := runPolicy(func() sched.Scheduler { return core.NewReady() })
	if err != nil {
		return nil, err
	}
	asetsDep, asetsIndep, err := runPolicy(func() sched.Scheduler { return core.New() })
	if err != nil {
		return nil, err
	}

	fig := &report.Figure{
		ID:     "dep-split",
		Title:  "Tardiness split: dependent vs independent transactions",
		XLabel: "utilization",
		YLabel: "avg tardiness",
		X:      xs,
	}
	fig.AddSeries("Ready dep", readyDep, nil)
	fig.AddSeries("ASETS* dep", asetsDep, nil)
	fig.AddSeries("Ready indep", readyIndep, nil)
	fig.AddSeries("ASETS* indep", asetsIndep, nil)

	var gain float64
	var count int
	for i := range xs {
		if readyDep[i] > 0 {
			gain += (readyDep[i] - asetsDep[i]) / readyDep[i]
			count++
		}
	}
	if count > 0 {
		gain /= float64(count)
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension — no paper claim) The workflow-level boost should benefit dependent transactions, whose urgency Ready hides in the Wait queue.",
		Observations: []string{
			fmt.Sprintf("mean dependent-transaction improvement: %.1f%%", 100*gain),
		},
	}, nil
}

// meanImprovement averages (ready - asets) / ready over the sweep cells.
func meanImprovement(ready, asets []*metrics.Stream) float64 {
	var sum float64
	var n int
	for i := range ready {
		r := ready[i].Mean()
		if r <= 0 {
			continue
		}
		sum += (r - asets[i].Mean()) / r
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}
