package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Burst probes the claim the paper's introduction builds on: web user
// populations are bursty, so a scheduler must adapt. It compares EDF, SRPT
// and ASETS* on average tardiness under plain Poisson arrivals versus the
// ON/OFF modulated process (same long-run rate, overdispersed gaps) across
// the load sweep. Burstiness creates transient overload episodes inside
// nominally light loads — exactly the regime where the paper says ASETS*
// "automatically incorporates some SRPT scheduling to avoid the domino
// effect" (Section IV-C's explanation of Figure 10's low-load gains).
func Burst(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		asetsPolicy(),
	}
	run := func(b workload.Burstiness) (*sweepResult, error) {
		return sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
			cfg := workload.Default(x, seed)
			cfg.Bursts = b
			return cfg
		})
	}
	plain, err := run(workload.BurstNone)
	if err != nil {
		return nil, err
	}
	bursty, err := run(workload.BurstOnOff)
	if err != nil {
		return nil, err
	}

	fig := &report.Figure{
		ID:     "burst",
		Title:  "Bursty arrivals (ON/OFF modulation) vs Poisson: avg tardiness",
		XLabel: "utilization",
		YLabel: "avg tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, _ := means(bursty.avgTardiness[pi])
		fig.AddSeries(p.Name+" bursty", ys, nil)
	}
	for pi, p := range policies {
		ys, _ := means(plain.avgTardiness[pi])
		fig.AddSeries(p.Name+" poisson", ys, nil)
	}

	// ASETS* gain over EDF at mid-load, bursty vs plain: burstiness should
	// widen it (more transient overload for EDF's domino effect).
	gain := func(res *sweepResult, xi int) float64 {
		edf := res.avgTardiness[0][xi].Mean()
		asets := res.avgTardiness[2][xi].Mean()
		if edf == 0 {
			return 0
		}
		return (edf - asets) / edf
	}
	mid := 3 // utilization 0.4
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension — introduction's premise) Bursty arrivals create transient overload inside light average loads; the adaptive policy's advantage over EDF at low-to-mid load should widen under burstiness.",
		Observations: []string{
			fmt.Sprintf("ASETS* gain over EDF at U=0.4: %.1f%% poisson vs %.1f%% bursty",
				100*gain(plain, mid), 100*gain(bursty, mid)),
		},
	}, nil
}
