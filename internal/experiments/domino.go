package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Domino quantifies the paper's Section III-A.1 motivation: under load, EDF
// "might give high priority to a transaction with an early deadline that it
// has already missed ... As a result, both transactions will miss their
// deadlines and accumulate tardiness" — the domino effect. For each
// utilization we measure the mean share of the backlog that is already past
// saving (t + remaining > deadline) under EDF, SRPT and ASETS*. EDF's share
// grows steeply with load; ASETS* tracks the lower envelope because the
// expiry migration moves lost causes to the SRPT list.
func Domino(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		{Name: "ASETS*", New: func() sched.Scheduler { return core.New() }},
	}

	series := make([][]float64, len(policies))
	for pi := range series {
		series[pi] = make([]float64, len(xs))
	}
	for xi, u := range xs {
		for pi, p := range policies {
			var sum float64
			for _, seed := range opts.Seeds {
				cfg := workload.Default(u, seed)
				cfg.N = opts.N
				set, err := workload.Generate(cfg)
				if err != nil {
					return nil, err
				}
				rec := &trace.Recorder{}
				if _, err := sim.Run(set, p.New(), sim.Options{Recorder: rec}); err != nil {
					return nil, err
				}
				if opts.Validate {
					if err := rec.Validate(set); err != nil {
						return nil, err
					}
				}
				sum += analysis.MeanLateShare(analysis.BacklogSeries(set, rec, 200))
			}
			series[pi][xi] = sum / float64(len(opts.Seeds))
		}
	}

	fig := &report.Figure{
		ID:     "domino",
		Title:  "Domino effect: mean share of backlog already past its deadline",
		XLabel: "utilization",
		YLabel: "late share of backlog",
		X:      xs,
	}
	for pi, p := range policies {
		fig.AddSeries(p.Name, series[pi], nil)
	}
	last := len(xs) - 1
	return &Result{
		Figure:     fig,
		PaperClaim: "(motivation, Section III-A.1) EDF under overload keeps scheduling transactions whose deadlines are already lost, cascading misses; ASETS* avoids this by migrating them to the SRPT list.",
		Observations: []string{
			fmt.Sprintf("late share at U=1.0: EDF %.2f, SRPT %.2f, ASETS* %.2f",
				series[0][last], series[1][last], series[2][last]),
		},
	}, nil
}
