package experiments

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Domino quantifies the paper's Section III-A.1 motivation: under load, EDF
// "might give high priority to a transaction with an early deadline that it
// has already missed ... As a result, both transactions will miss their
// deadlines and accumulate tardiness" — the domino effect. For each
// utilization we measure the mean share of the backlog that is already past
// saving (t + remaining > deadline) under EDF, SRPT and ASETS*. EDF's share
// grows steeply with load; ASETS* tracks the lower envelope because the
// expiry migration moves lost causes to the SRPT list.
func Domino(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		{Name: "ASETS*", New: func() sched.Scheduler { return core.New() }},
	}

	// One pool job per (utilization, policy, seed); each job computes its
	// late-backlog share in the Post hook (the mutated set and recorder are
	// only alive inside the worker) into a private slot, and the slots are
	// folded in cell order so the means match the serial path bit-for-bit.
	type cell struct{ xi, pi int }
	var cells []cell
	var jobs []runner.Job
	shares := make([]float64, 0, len(xs)*len(policies)*len(opts.Seeds))
	for xi, u := range xs {
		for pi, p := range policies {
			for _, seed := range opts.Seeds {
				cfg := workload.Default(u, seed)
				cfg.N = opts.N
				rec := &trace.Recorder{}
				slot := len(shares)
				shares = append(shares, 0)
				jobs = append(jobs, runner.Job{
					Gen:    func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
					New:    p.New,
					Config: sim.Config{Recorder: rec},
					Label:  fmt.Sprintf("util=%v policy=%s seed=%d", u, p.Name, seed),
					Post: func(set *txn.Set, _ *metrics.Summary) error {
						if opts.Validate {
							if err := rec.Validate(set); err != nil {
								return err
							}
						}
						shares[slot] = analysis.MeanLateShare(analysis.BacklogSeries(set, rec, 200))
						return nil
					},
				})
				cells = append(cells, cell{xi: xi, pi: pi})
			}
		}
	}
	if _, err := (runner.Pool{Workers: opts.Parallelism}).Run(context.Background(), jobs); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	series := make([][]float64, len(policies))
	for pi := range series {
		series[pi] = make([]float64, len(xs))
	}
	for i, c := range cells {
		series[c.pi][c.xi] += shares[i]
	}
	for pi := range series {
		for xi := range series[pi] {
			series[pi][xi] /= float64(len(opts.Seeds))
		}
	}

	fig := &report.Figure{
		ID:     "domino",
		Title:  "Domino effect: mean share of backlog already past its deadline",
		XLabel: "utilization",
		YLabel: "late share of backlog",
		X:      xs,
	}
	for pi, p := range policies {
		fig.AddSeries(p.Name, series[pi], nil)
	}
	last := len(xs) - 1
	return &Result{
		Figure:     fig,
		PaperClaim: "(motivation, Section III-A.1) EDF under overload keeps scheduling transactions whose deadlines are already lost, cascading misses; ASETS* avoids this by migrating them to the SRPT list.",
		Observations: []string{
			fmt.Sprintf("late share at U=1.0: EDF %.2f, SRPT %.2f, ASETS* %.2f",
				series[0][last], series[1][last], series[2][last]),
		},
	}, nil
}
