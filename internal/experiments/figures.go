package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Result is the outcome of one reproduced experiment: the rendered figure,
// the paper's claim it should be compared against, and observations computed
// from the measured data (crossover locations, improvement percentages) that
// EXPERIMENTS.md records.
type Result struct {
	Figure       *report.Figure
	PaperClaim   string
	Observations []string
}

// fixed adapts a constant policy list to the sweep's policiesAt signature.
func fixed(policies ...Policy) func(float64) []Policy {
	return func(float64) []Policy { return policies }
}

// asetsPolicy is the default general ASETS* policy used across figures.
func asetsPolicy() Policy {
	return Policy{Name: "ASETS*", New: func() sched.Scheduler { return core.New() }}
}

// transactionLevelPolicies are the five policies of Figures 8 and 9.
func transactionLevelPolicies() []Policy {
	return []Policy{
		{Name: "FCFS", New: sched.NewFCFS},
		{Name: "LS", New: sched.NewLS},
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		asetsPolicy(),
	}
}

// transactionLevelFigure renders an average-tardiness comparison over a
// utilization range on the independent, unweighted default workload.
func transactionLevelFigure(opts Options, id, title string, xs []float64) (*Result, error) {
	res, err := sweep(opts, xs, fixed(transactionLevelPolicies()...),
		func(x float64, seed uint64) workload.Config { return workload.Default(x, seed) })
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     id,
		Title:  title,
		XLabel: "utilization",
		YLabel: "avg tardiness",
		X:      xs,
	}
	policies := transactionLevelPolicies()
	for pi, p := range policies {
		ys, errs := means(res.avgTardiness[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	// Observations: ASETS* versus the best baseline at each x.
	asets := len(policies) - 1
	worstGap, bestGain := 0.0, 0.0
	for xi := range xs {
		a := res.avgTardiness[asets][xi].Mean()
		best := res.avgTardiness[0][xi].Mean()
		for pi := 1; pi < asets; pi++ {
			if v := res.avgTardiness[pi][xi].Mean(); v < best {
				best = v
			}
		}
		if best > 0 {
			rel := (best - a) / best
			if rel > bestGain {
				bestGain = rel
			}
			if -rel > worstGap {
				worstGap = -rel
			}
		}
	}
	obs := []string{
		fmt.Sprintf("max ASETS* gain over best baseline: %.1f%%", 100*bestGain),
		fmt.Sprintf("max ASETS* deficit versus best baseline: %.1f%%", 100*worstGap),
	}
	return &Result{
		Figure:       fig,
		PaperClaim:   "ASETS* outperforms EDF and SRPT at every utilization; EDF leads at low load, SRPT overtakes it under overload.",
		Observations: obs,
	}, nil
}

// Fig8 reproduces Figure 8: average tardiness under low utilization
// (0.1-0.5) with alpha=0.5 and kmax=3 for FCFS, LS, EDF, SRPT and ASETS*.
func Fig8(opts Options) (*Result, error) {
	return transactionLevelFigure(opts, "fig8",
		"Avg Tardiness under Low System Utilization (alpha=0.5)", LowUtilizationGrid())
}

// Fig9 reproduces Figure 9: the same comparison under high utilization
// (0.6-1.0).
func Fig9(opts Options) (*Result, error) {
	return transactionLevelFigure(opts, "fig9",
		"Avg Tardiness under High System Utilization (alpha=0.5)", HighUtilizationGrid())
}

// normalizedFigure renders ASETS* average tardiness normalized to EDF and
// SRPT over the full utilization grid at the given kmax (Figures 10-13).
func normalizedFigure(opts Options, id string, kmax float64) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		cfg := workload.Default(x, seed)
		cfg.KMax = kmax
		return cfg
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     id,
		Title:  fmt.Sprintf("Normalized Average Tardiness (kmax=%g)", kmax),
		XLabel: "utilization",
		YLabel: "ASETS* tardiness / baseline",
		X:      xs,
	}
	fig.AddSeries("ASETS*/EDF", ratios(res.avgTardiness[2], res.avgTardiness[0]), nil)
	fig.AddSeries("ASETS*/SRPT", ratios(res.avgTardiness[2], res.avgTardiness[1]), nil)

	edf, _ := means(res.avgTardiness[0])
	srpt, _ := means(res.avgTardiness[1])
	cross := Crossover(xs, edf, srpt)
	obs := []string{fmt.Sprintf("EDF/SRPT crossover at utilization %g", cross)}
	return &Result{
		Figure:       fig,
		PaperClaim:   "Both ratios stay at or below 1 across the sweep, with the largest improvement near the EDF/SRPT crossover; the crossover moves right as kmax grows.",
		Observations: obs,
	}, nil
}

// Fig10 reproduces Figure 10 (kmax=3).
func Fig10(opts Options) (*Result, error) { return normalizedFigure(opts, "fig10", 3) }

// Fig11 reproduces Figure 11 (kmax=1).
func Fig11(opts Options) (*Result, error) { return normalizedFigure(opts, "fig11", 1) }

// Fig12 reproduces Figure 12 (kmax=2).
func Fig12(opts Options) (*Result, error) { return normalizedFigure(opts, "fig12", 2) }

// Fig13 reproduces Figure 13 (kmax=4).
func Fig13(opts Options) (*Result, error) { return normalizedFigure(opts, "fig13", 4) }

// Fig14 reproduces Figure 14: workflow-level ASETS* versus the Ready
// baseline on chain workflows (max workflow length 5, max membership 1),
// unit weights, average tardiness over the utilization grid.
func Fig14(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "Ready", New: func() sched.Scheduler { return core.NewReady() }},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(x, seed).WithWorkflows(5, 1)
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "fig14",
		Title:  "Average Tardiness of ASETS* at Workflow Level (vs Ready)",
		XLabel: "utilization",
		YLabel: "avg tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgTardiness[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	var minImp, maxImp, sumImp float64
	minImp = 1
	count := 0
	for xi := range xs {
		ready := res.avgTardiness[0][xi].Mean()
		asets := res.avgTardiness[1][xi].Mean()
		if ready <= 0 {
			continue
		}
		imp := (ready - asets) / ready
		if imp < minImp {
			minImp = imp
		}
		if imp > maxImp {
			maxImp = imp
		}
		sumImp += imp
		count++
	}
	avgImp := 0.0
	if count > 0 {
		avgImp = sumImp / float64(count)
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "ASETS* improves average tardiness over Ready by 28-57% (44% on average).",
		Observations: []string{
			fmt.Sprintf("improvement over Ready: min %.1f%%, max %.1f%%, avg %.1f%%",
				100*minImp, 100*maxImp, 100*avgImp),
		},
	}, nil
}

// Fig15 reproduces Figure 15: the general case (workflows plus weights),
// comparing average weighted tardiness of ASETS* against EDF and HDF.
func Fig15(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "HDF", New: sched.NewHDF},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(x, seed).WithWorkflows(5, 1).WithWeights()
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "fig15",
		Title:  "Average Weighted Tardiness of ASETS*: The General Case",
		XLabel: "utilization",
		YLabel: "avg weighted tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgWeighted[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	bestGain := 0.0
	for xi := range xs {
		best := res.avgWeighted[0][xi].Mean()
		if v := res.avgWeighted[1][xi].Mean(); v < best {
			best = v
		}
		if best > 0 {
			if rel := (best - res.avgWeighted[2][xi].Mean()) / best; rel > bestGain {
				bestGain = rel
			}
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "EDF handles low utilization better, HDF is best under overload, and ASETS* outperforms both across the sweep.",
		Observations: []string{
			fmt.Sprintf("max ASETS* gain over best of EDF/HDF: %.1f%%", 100*bestGain),
		},
	}, nil
}

// balanceRates is the paper's time-based activation-rate sweep.
func balanceRates() []float64 { return []float64{0.002, 0.004, 0.006, 0.008, 0.01} }

// balanceUtilization fixes the load for the balance-aware experiments; the
// trade-off only materializes when tardiness is non-trivial, so the sweep
// runs near saturation.
const balanceUtilization = 0.9

// balanceSweep runs plain ASETS* against balance-aware ASETS* with the
// activation rate on the x-axis, over the general-case workload.
func balanceSweep(opts Options, xs []float64, makeBalanced func(rate float64) Policy) (*sweepResult, error) {
	return sweep(opts, xs,
		func(x float64) []Policy {
			return []Policy{asetsPolicy(), makeBalanced(x)}
		},
		func(x float64, seed uint64) workload.Config {
			return workload.Default(balanceUtilization, seed).WithWorkflows(5, 1).WithWeights()
		})
}

// Fig16 reproduces Figure 16: maximum weighted tardiness (worst case) of
// balance-aware ASETS* versus plain ASETS* as the time-based activation
// rate grows.
func Fig16(opts Options) (*Result, error) {
	xs := balanceRates()
	res, err := balanceSweep(opts, xs, func(rate float64) Policy {
		return Policy{Name: "ASETS*-BAL", New: func() sched.Scheduler {
			return core.New(core.WithTimeActivation(rate), core.WithName("ASETS*-BAL"))
		}}
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "fig16",
		Title:  "Maximum Weighted Tardiness of ASETS* (balance-aware)",
		XLabel: "activation rate (time-based)",
		YLabel: "max weighted tardiness",
		X:      xs,
	}
	base, _ := means(res.maxWeighted[0])
	bal, balErr := means(res.maxWeighted[1])
	fig.AddSeries("ASETS*", base, nil)
	fig.AddSeries("ASETS*-BAL", bal, balErr)

	maxImp := 0.0
	for i := range xs {
		if base[i] > 0 {
			if imp := (base[i] - bal[i]) / base[i]; imp > maxImp {
				maxImp = imp
			}
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "Balance-aware ASETS* lowers maximum weighted tardiness, by more as the activation rate increases (up to 27% at rate 0.01, minimum 7%).",
		Observations: []string{
			fmt.Sprintf("max worst-case improvement: %.1f%%", 100*maxImp),
		},
	}, nil
}

// Fig17 reproduces Figure 17: the average weighted tardiness cost of the
// same balance-aware sweep.
func Fig17(opts Options) (*Result, error) {
	xs := balanceRates()
	res, err := balanceSweep(opts, xs, func(rate float64) Policy {
		return Policy{Name: "ASETS*-BAL", New: func() sched.Scheduler {
			return core.New(core.WithTimeActivation(rate), core.WithName("ASETS*-BAL"))
		}}
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "fig17",
		Title:  "Average Weighted Tardiness of ASETS* (balance-aware)",
		XLabel: "activation rate (time-based)",
		YLabel: "avg weighted tardiness",
		X:      xs,
	}
	base, _ := means(res.avgWeighted[0])
	bal, balErr := means(res.avgWeighted[1])
	fig.AddSeries("ASETS*", base, nil)
	fig.AddSeries("ASETS*-BAL", bal, balErr)

	maxCost := 0.0
	for i := range xs {
		if base[i] > 0 {
			if cost := (bal[i] - base[i]) / base[i]; cost > maxCost {
				maxCost = cost
			}
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "Aging costs a little average-case performance — up to about 5% at activation rate 0.01 — growing with the activation rate.",
		Observations: []string{
			fmt.Sprintf("max average-case cost: %.1f%%", 100*maxCost),
		},
	}, nil
}
