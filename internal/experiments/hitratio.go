package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// HitRatio contrasts the objective the related work optimizes (deadline hit
// ratio — Haritsa et al.'s AED [5], the MIX family [3]) with the paper's
// objective (tardiness). It runs EDF, AED, MIX and ASETS* over the load
// sweep and reports the deadline MISS ratio alongside average tardiness:
// the Section V argument is that hit-ratio-optimizing hybrids are not the
// right tool when the SLA penalty grows with the delay, and this experiment
// shows both sides of that trade.
func HitRatio(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "AED", New: func() sched.Scheduler { return sched.NewAED(0xAED) }},
		{Name: "MIX(0.5)", New: func() sched.Scheduler { return sched.NewMIX(0.5) }},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...),
		func(x float64, seed uint64) workload.Config { return workload.Default(x, seed) })
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "hitratio",
		Title:  "Miss ratio vs tardiness objectives: EDF, AED, MIX, ASETS*",
		XLabel: "utilization",
		YLabel: "deadline miss ratio",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.missRatio[pi])
		fig.AddSeries(p.Name+" miss", ys, errs)
	}
	last := len(xs) - 1
	tard := make([]float64, len(policies))
	for pi := range policies {
		tard[pi] = res.avgTardiness[pi][last].Mean()
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension, Section V) Hit-ratio hybrids like AED optimize a different objective; ASETS* should carry the lowest tardiness even where AED's miss ratio is competitive.",
		Observations: []string{
			fmt.Sprintf("avg tardiness at U=1.0: EDF %.1f, AED %.1f, MIX %.1f, ASETS* %.1f",
				tard[0], tard[1], tard[2], tard[3]),
		},
	}, nil
}
