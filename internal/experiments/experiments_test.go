package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fastOpts keeps shape tests affordable: smaller workloads and three seeds,
// with full schedule validation enabled.
func fastOpts() Options {
	return Options{
		N:        300,
		Seeds:    []uint64{11, 22, 33},
		Validate: true,
	}
}

func TestGrids(t *testing.T) {
	full := UtilizationGrid()
	if len(full) != 10 || full[0] != 0.1 || full[9] != 1.0 {
		t.Fatalf("grid = %v", full)
	}
	if lo := LowUtilizationGrid(); len(lo) != 5 || lo[4] != 0.5 {
		t.Fatalf("low grid = %v", lo)
	}
	if hi := HighUtilizationGrid(); len(hi) != 5 || hi[0] != 0.6 {
		t.Fatalf("high grid = %v", hi)
	}
}

func TestCrossoverHelper(t *testing.T) {
	xs := []float64{1, 2, 3}
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 1}
	if got := Crossover(xs, a, b); got != 3 {
		t.Fatalf("crossover = %v, want 3", got)
	}
	if got := Crossover(xs, b, a); got != 1 {
		t.Fatalf("crossover = %v, want 1", got)
	}
	if got := Crossover(xs, a, a); got != -1 {
		t.Fatalf("crossover of identical series = %v, want -1", got)
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
	for _, want := range []string{"fig8", "fig14", "fig17", "tab1", "alpha"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestSweepPolicyCountMismatch(t *testing.T) {
	_, err := sweep(fastOpts(), []float64{0.1, 0.2},
		func(x float64) []Policy {
			if x > 0.15 {
				return []Policy{{Name: "EDF", New: sched.NewEDF}}
			}
			return []Policy{{Name: "EDF", New: sched.NewEDF}, {Name: "SRPT", New: sched.NewSRPT}}
		},
		func(x float64, seed uint64) workload.Config { return workload.Default(x, seed) })
	if err == nil || !strings.Contains(err.Error(), "policies") {
		t.Fatalf("err = %v", err)
	}
}

// TestFig8Shape: at low utilization EDF beats FCFS, and ASETS* stays within
// noise of the best policy at every point.
func TestFig8Shape(t *testing.T) {
	res, err := Fig8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figure
	if fig.ID != "fig8" || len(fig.Series) != 5 || len(fig.X) != 5 {
		t.Fatalf("figure shape: %+v", fig)
	}
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Name] = s.Y
	}
	// At the top of the low range FCFS must be clearly worse than EDF.
	last := len(fig.X) - 1
	if !(series["EDF"][last] < series["FCFS"][last]) {
		t.Errorf("EDF (%v) not better than FCFS (%v) at U=0.5", series["EDF"][last], series["FCFS"][last])
	}
	// ASETS* never does much worse than the best baseline.
	for i := range fig.X {
		best := series["FCFS"][i]
		for _, name := range []string{"LS", "EDF", "SRPT"} {
			if series[name][i] < best {
				best = series[name][i]
			}
		}
		if series["ASETS*"][i] > best*1.25+0.5 {
			t.Errorf("U=%v: ASETS* %v far above best baseline %v", fig.X[i], series["ASETS*"][i], best)
		}
	}
}

// TestFig9Shape: under overload SRPT beats EDF and ASETS* tracks or beats
// SRPT.
func TestFig9Shape(t *testing.T) {
	res, err := Fig9(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range res.Figure.Series {
		series[s.Name] = s.Y
	}
	last := len(res.Figure.X) - 1 // utilization 1.0
	if !(series["SRPT"][last] < series["EDF"][last]) {
		t.Errorf("SRPT (%v) not better than EDF (%v) at U=1.0", series["SRPT"][last], series["EDF"][last])
	}
	if series["ASETS*"][last] > series["SRPT"][last]*1.15 {
		t.Errorf("ASETS* (%v) well above SRPT (%v) at U=1.0", series["ASETS*"][last], series["SRPT"][last])
	}
}

// TestFig10Shape: the normalized ratios stay at or below ~1 everywhere.
func TestFig10Shape(t *testing.T) {
	res, err := Fig10(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Figure.Series {
		for i, v := range s.Y {
			if v > 1.2 {
				t.Errorf("%s at U=%v is %v, want <= ~1", s.Name, res.Figure.X[i], v)
			}
		}
	}
	if len(res.Observations) == 0 {
		t.Error("no observations recorded")
	}
}

// TestCrossoverMovesRightWithKmax reproduces the paper's finding that looser
// deadlines (larger kmax) delay the EDF/SRPT crossover. Compares kmax=1
// against kmax=4.
func TestCrossoverMovesRightWithKmax(t *testing.T) {
	opts := fastOpts()
	xs := UtilizationGrid()
	run := func(kmax float64) float64 {
		policies := []Policy{
			{Name: "EDF", New: sched.NewEDF},
			{Name: "SRPT", New: sched.NewSRPT},
		}
		res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
			cfg := workload.Default(x, seed)
			cfg.KMax = kmax
			return cfg
		})
		if err != nil {
			t.Fatal(err)
		}
		edf, _ := means(res.avgTardiness[0])
		srpt, _ := means(res.avgTardiness[1])
		return Crossover(xs, edf, srpt)
	}
	tight := run(1)
	loose := run(4)
	if tight < 0 || loose < 0 {
		t.Skipf("no crossover observed at this scale (tight=%v loose=%v)", tight, loose)
	}
	if loose < tight {
		t.Errorf("crossover moved left with looser deadlines: kmax=1 -> %v, kmax=4 -> %v", tight, loose)
	}
}

// TestFig14Shape: workflow-aware ASETS* does not lose to Ready at high load.
func TestFig14Shape(t *testing.T) {
	res, err := Fig14(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range res.Figure.Series {
		series[s.Name] = s.Y
	}
	last := len(res.Figure.X) - 1
	if series["ASETS*"][last] > series["Ready"][last]*1.05 {
		t.Errorf("ASETS* (%v) worse than Ready (%v) at U=1.0", series["ASETS*"][last], series["Ready"][last])
	}
}

// TestFig15Shape: the general case — ASETS* at or below both EDF and HDF on
// weighted tardiness at overload.
func TestFig15Shape(t *testing.T) {
	res, err := Fig15(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range res.Figure.Series {
		series[s.Name] = s.Y
	}
	last := len(res.Figure.X) - 1
	best := series["EDF"][last]
	if series["HDF"][last] < best {
		best = series["HDF"][last]
	}
	if series["ASETS*"][last] > best*1.1 {
		t.Errorf("ASETS* (%v) above best of EDF/HDF (%v) at U=1.0", series["ASETS*"][last], best)
	}
}

// TestFig16And17TradeOff: raising the activation rate must not increase the
// worst case relative to plain ASETS* beyond noise, and the average-case
// cost stays bounded.
func TestFig16And17TradeOff(t *testing.T) {
	opts := fastOpts()
	res16, err := Fig16(opts)
	if err != nil {
		t.Fatal(err)
	}
	res17, err := Fig17(opts)
	if err != nil {
		t.Fatal(err)
	}
	base16 := res16.Figure.Series[0].Y
	bal16 := res16.Figure.Series[1].Y
	last := len(base16) - 1
	if bal16[last] > base16[last]*1.3 {
		t.Errorf("balance-aware worst case (%v) much worse than plain (%v) at max rate", bal16[last], base16[last])
	}
	base17 := res17.Figure.Series[0].Y
	bal17 := res17.Figure.Series[1].Y
	if bal17[last] > base17[last]*1.5 {
		t.Errorf("balance-aware average case (%v) wildly above plain (%v)", bal17[last], base17[last])
	}
}

// TestTable1RealizedUtilization: the generator's realized utilization tracks
// the target below saturation.
func TestTable1RealizedUtilization(t *testing.T) {
	res, err := Table1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	realized := res.Figure.Series[0].Y
	xs := res.Figure.X
	for i, x := range xs {
		if x > 0.8 {
			continue // near saturation the busy fraction saturates
		}
		if diff := realized[i] - x; diff > 0.12 || diff < -0.12 {
			t.Errorf("target %v, realized %v", x, realized[i])
		}
	}
}

// TestAblationRuleRuns exercises the decision-rule ablation end to end.
func TestAblationRuleRuns(t *testing.T) {
	res, err := AblationRule(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figure.Series) != 2 {
		t.Fatalf("series = %d", len(res.Figure.Series))
	}
}

// TestAblationCountBalanceRuns exercises the count-based balance sweep.
func TestAblationCountBalanceRuns(t *testing.T) {
	res, err := AblationCountBalance(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figure.Series) != 4 {
		t.Fatalf("series = %d", len(res.Figure.Series))
	}
}

// TestASETSSignificantlyBeatsStaticsAtCrossover uses paired comparison
// (same workloads, per-seed pairing) to check the headline claim with
// statistical teeth: at the crossover load, ASETS* improves on BOTH static
// policies with |t| > 1.96 over 20 seeds.
func TestASETSSignificantlyBeatsStaticsAtCrossover(t *testing.T) {
	const util = 0.6
	var vsEDF, vsSRPT metrics.Paired
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := workload.Default(util, seed)
		cfg.N = 400
		run := func(p Policy) float64 {
			set := workload.MustGenerate(cfg)
			sum, err := sim.New(sim.Config{}).Run(set, p.New())
			if err != nil {
				t.Fatal(err)
			}
			return sum.AvgTardiness
		}
		edf := run(Policy{Name: "EDF", New: sched.NewEDF})
		srpt := run(Policy{Name: "SRPT", New: sched.NewSRPT})
		asets := run(asetsPolicy())
		vsEDF.Add(edf, asets)
		vsSRPT.Add(srpt, asets)
	}
	if !vsEDF.Significant05() || vsEDF.MeanDiff() <= 0 {
		t.Errorf("ASETS* vs EDF not significantly better: %s", vsEDF.String())
	}
	if !vsSRPT.Significant05() || vsSRPT.MeanDiff() <= 0 {
		t.Errorf("ASETS* vs SRPT not significantly better: %s", vsSRPT.String())
	}
}

// TestEveryRegisteredExperimentRunsTiny is the integration smoke: every
// registry entry completes without error on a tiny configuration and yields
// a renderable figure.
func TestEveryRegisteredExperimentRunsTiny(t *testing.T) {
	opts := Options{N: 120, Seeds: []uint64{5}, Validate: true}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Registry[id](opts)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.Figure == nil || len(res.Figure.Series) == 0 {
				t.Fatalf("%s: empty figure", id)
			}
			if res.PaperClaim == "" {
				t.Errorf("%s: missing paper claim", id)
			}
			if out := res.Figure.Table(); out == "" {
				t.Errorf("%s: empty table", id)
			}
			if out := res.Figure.CSV(); out == "" {
				t.Errorf("%s: empty csv", id)
			}
		})
	}
}
