package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AblationRepScope compares the two readings of the representative
// transaction (Definition 9): over all remaining members (the formal text,
// default) versus excluding the current head (the reading suggested by
// Example 4, where head and representative are distinct transactions).
func AblationRepScope(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "rep=all", New: func() sched.Scheduler {
			return core.New(core.WithName("rep=all"))
		}},
		{Name: "rep=tail", New: func() sched.Scheduler {
			return core.New(core.WithHeadExcludedRep(), core.WithName("rep=tail"))
		}},
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(x, seed).WithWorkflows(5, 1).WithWeights()
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "abl-rep",
		Title:  "Ablation: representative over all members vs excluding the head",
		XLabel: "utilization",
		YLabel: "avg weighted tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgWeighted[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	maxRel := 0.0
	for xi := range xs {
		a := res.avgWeighted[0][xi].Mean()
		b := res.avgWeighted[1][xi].Mean()
		if a > 0 {
			rel := (b - a) / a
			if rel < 0 {
				rel = -rel
			}
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "(ablation — no paper claim) Example 4 treats head and representative as distinct transactions; Definition 9's formal text includes every remaining member. The readings should be close.",
		Observations: []string{
			fmt.Sprintf("max relative difference between representative scopes: %.1f%%", 100*maxRel),
		},
	}, nil
}

// Fig15Extended widens Figure 15's comparison with the related-work
// baselines the paper discusses in Section V: HVF (value only, [3]) and MIX
// (static deadline/value blend, [3]) alongside EDF, HDF and ASETS*. The
// paper argues ASETS* dominates because the blend is adaptive rather than a
// fixed system parameter; this experiment makes that argument measurable.
func Fig15Extended(opts Options) (*Result, error) {
	xs := UtilizationGrid()
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "HDF", New: sched.NewHDF},
		{Name: "HVF", New: sched.NewHVF},
		{Name: "MIX(0.5)", New: func() sched.Scheduler { return sched.NewMIX(0.5) }},
		asetsPolicy(),
	}
	res, err := sweep(opts, xs, fixed(policies...), func(x float64, seed uint64) workload.Config {
		return workload.Default(x, seed).WithWorkflows(5, 1).WithWeights()
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		ID:     "fig15x",
		Title:  "General case with related-work baselines (HVF, MIX)",
		XLabel: "utilization",
		YLabel: "avg weighted tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		ys, errs := means(res.avgWeighted[pi])
		fig.AddSeries(p.Name, ys, errs)
	}
	asets := len(policies) - 1
	wins := 0
	for xi := range xs {
		best := true
		for pi := 0; pi < asets; pi++ {
			if res.avgWeighted[pi][xi].Mean() < res.avgWeighted[asets][xi].Mean() {
				best = false
				break
			}
		}
		if best {
			wins++
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "ASETS* adapts between deadline- and value-driven behaviour, so it should dominate the static MIX blend and the value-only HVF across the sweep (Section V discussion).",
		Observations: []string{
			fmt.Sprintf("ASETS* best or tied at %d of %d utilizations", wins, len(xs)),
		},
	}, nil
}
