package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// MultiServer is an extension experiment beyond the paper's single-server
// model: the same policies scheduling a replicated backend of S identical
// servers under global preemptive scheduling, with the offered load scaled
// so each server sees utilization 0.9 (arrival rate = 0.9 * S / mean
// length). The paper's conclusion section claims ASETS* "could be applied
// in any Real-Time system with soft-deadlines"; this experiment checks the
// ordering survives on a web-farm-shaped system.
func MultiServer(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := []float64{1, 2, 4, 8}
	policies := []Policy{
		{Name: "EDF", New: sched.NewEDF},
		{Name: "SRPT", New: sched.NewSRPT},
		{Name: "ASETS*", New: func() sched.Scheduler { return core.New() }},
	}

	// One pool job per (server count, policy, seed) cell; summaries are
	// gathered in cell order so the averages below are bit-identical for
	// any Parallelism.
	type cell struct{ xi, pi, si int }
	var cells []cell
	var jobs []runner.Job
	for xi, sc := range xs {
		servers := int(sc)
		for pi, p := range policies {
			for si, seed := range opts.Seeds {
				cfg := workload.Default(0.9*float64(servers), seed)
				cfg.N = opts.N
				job := runner.Job{
					Gen:    func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
					New:    p.New,
					Config: sim.Config{Servers: servers},
					Label:  fmt.Sprintf("servers=%d policy=%s seed=%d", servers, p.Name, seed),
				}
				if opts.Validate {
					rec := &trace.Recorder{}
					job.Config.Recorder = rec
					job.Post = func(set *txn.Set, _ *metrics.Summary) error {
						return rec.ValidateN(set, servers)
					}
				}
				cells = append(cells, cell{xi: xi, pi: pi, si: si})
				jobs = append(jobs, job)
			}
		}
	}
	summaries, err := runner.Pool{Workers: opts.Parallelism}.Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	series := make([][]float64, len(policies))
	for pi := range series {
		series[pi] = make([]float64, len(xs))
	}
	for i, c := range cells {
		series[c.pi][c.xi] += summaries[i].AvgTardiness
	}
	for pi := range series {
		for xi := range series[pi] {
			series[pi][xi] /= float64(len(opts.Seeds))
		}
	}

	fig := &report.Figure{
		ID:     "mserver",
		Title:  "Replicated backend: avg tardiness vs server count (per-server load 0.9)",
		XLabel: "servers",
		YLabel: "avg tardiness",
		X:      xs,
	}
	for pi, p := range policies {
		fig.AddSeries(p.Name, series[pi], nil)
	}
	wins := 0
	for xi := range xs {
		if series[2][xi] <= series[0][xi]*1.02 && series[2][xi] <= series[1][xi]*1.02 {
			wins++
		}
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension — no paper claim) The conclusions argue ASETS* generalizes to any soft-deadline real-time system; here it should track the best policy on a replicated backend too.",
		Observations: []string{
			fmt.Sprintf("ASETS* at or below both baselines (within 2%%) at %d of %d server counts", wins, len(xs)),
		},
	}, nil
}
