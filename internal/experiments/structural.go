package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Structural decomposes workflow-level tardiness into the part no scheduler
// can avoid and the part scheduling is responsible for. For every
// transaction, deadline - arrival - criticalPath bounds the best achievable
// lateness on a single backend (a dependency chain executes serially even
// on an idle server); max(0, -that) summed over transactions is the
// structural tardiness floor. The experiment plots the floor against the
// measured tardiness of Ready and ASETS* across the load sweep — the gap
// between floor and measurement is the scheduling-addressable tardiness
// that Figure 14's improvements must come out of, which is why the
// reproduction's relative margins (EXPERIMENTS.md) are sensitive to the
// workflow generator's conflict structure.
func Structural(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	xs := UtilizationGrid()

	floor := make([]float64, len(xs))
	ready := make([]float64, len(xs))
	asets := make([]float64, len(xs))
	for xi, u := range xs {
		for _, seed := range opts.Seeds {
			cfg := workload.Default(u, seed).WithWorkflows(5, 1)
			cfg.N = opts.N
			set, err := workload.Generate(cfg)
			if err != nil {
				return nil, err
			}
			slack, err := txn.SlackAgainstCriticalPath(set)
			if err != nil {
				return nil, err
			}
			var f float64
			for _, s := range slack {
				if s < 0 {
					f += -s
				}
			}
			floor[xi] += f / float64(set.Len())

			for i, mk := range []func() sched.Scheduler{
				func() sched.Scheduler { return core.NewReady() },
				func() sched.Scheduler { return core.New() },
			} {
				sum, err := sim.New(sim.Config{}).Run(set, mk())
				if err != nil {
					return nil, err
				}
				if i == 0 {
					ready[xi] += sum.AvgTardiness
				} else {
					asets[xi] += sum.AvgTardiness
				}
			}
		}
		n := float64(len(opts.Seeds))
		floor[xi] /= n
		ready[xi] /= n
		asets[xi] /= n
	}

	fig := &report.Figure{
		ID:     "structural",
		Title:  "Structural tardiness floor vs measured tardiness (fig14 workload)",
		XLabel: "utilization",
		YLabel: "avg tardiness",
		X:      xs,
	}
	fig.AddSeries("structural floor", floor, nil)
	fig.AddSeries("Ready", ready, nil)
	fig.AddSeries("ASETS*", asets, nil)

	// Share of Ready's tardiness that is structural, at low and high load.
	shareAt := func(xi int) float64 {
		if ready[xi] == 0 {
			return 0
		}
		return floor[xi] / ready[xi]
	}
	return &Result{
		Figure:     fig,
		PaperClaim: "(extension — analysis of Figure 14's margins) The tardiness floor set by critical paths and SLAs is policy-independent; only the excess above it is addressable by scheduling.",
		Observations: []string{
			fmt.Sprintf("structural share of Ready's tardiness: %.0f%% at U=0.1, %.0f%% at U=1.0",
				100*shareAt(0), 100*shareAt(len(xs)-1)),
		},
	}, nil
}
