package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfSupport(t *testing.T) {
	z := MustZipf(1, 50, 0.5)
	src := New(1)
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		v := z.Sample(src)
		if v < 1 || v > 50 {
			t.Fatalf("sample %d outside [1, 50]", v)
		}
		counts[v]++
	}
	// Skewed toward short transactions: 1 must be the most frequent value.
	for v, c := range counts {
		if v != 1 && c > counts[1] {
			t.Fatalf("value %d more frequent (%d) than 1 (%d)", v, c, counts[1])
		}
	}
}

func TestZipfEmpiricalMatchesPMF(t *testing.T) {
	z := MustZipf(1, 10, 0.8)
	src := New(3)
	const n = 400000
	counts := make([]int, 11)
	for i := 0; i < n; i++ {
		counts[z.Sample(src)]++
	}
	for v := 1; v <= 10; v++ {
		want := z.Prob(v)
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.004 {
			t.Fatalf("P(X=%d): empirical %v vs pmf %v", v, got, want)
		}
	}
}

func TestZipfMeanMatchesEmpirical(t *testing.T) {
	z := MustZipf(1, 50, 0.5)
	src := New(5)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(z.Sample(src))
	}
	emp := sum / n
	if math.Abs(emp-z.Mean()) > 0.02*z.Mean() {
		t.Fatalf("empirical mean %v vs analytic %v", emp, z.Mean())
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z := MustZipf(1, 4, 0)
	for v := 1; v <= 4; v++ {
		if math.Abs(z.Prob(v)-0.25) > 1e-12 {
			t.Fatalf("alpha=0 P(X=%d) = %v, want 0.25", v, z.Prob(v))
		}
	}
	if math.Abs(z.Mean()-2.5) > 1e-12 {
		t.Fatalf("alpha=0 mean = %v, want 2.5", z.Mean())
	}
}

func TestZipfHigherAlphaMoreSkew(t *testing.T) {
	lo := MustZipf(1, 50, 0.2)
	hi := MustZipf(1, 50, 1.5)
	if hi.Prob(1) <= lo.Prob(1) {
		t.Fatalf("P(X=1): alpha=1.5 gives %v, alpha=0.2 gives %v; want more mass on 1 with more skew",
			hi.Prob(1), lo.Prob(1))
	}
	if hi.Mean() >= lo.Mean() {
		t.Fatalf("mean: alpha=1.5 gives %v, alpha=0.2 gives %v; want smaller mean with more skew",
			hi.Mean(), lo.Mean())
	}
}

func TestZipfSingleton(t *testing.T) {
	z := MustZipf(7, 7, 0.5)
	src := New(9)
	for i := 0; i < 100; i++ {
		if v := z.Sample(src); v != 7 {
			t.Fatalf("singleton zipf returned %d", v)
		}
	}
	if z.Mean() != 7 {
		t.Fatalf("singleton mean %v", z.Mean())
	}
}

func TestZipfInvalidParameters(t *testing.T) {
	if _, err := NewZipf(5, 4, 0.5); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewZipf(1, 10, -1); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewZipf(1, 10, math.NaN()); err == nil {
		t.Fatal("NaN alpha accepted")
	}
	if _, err := NewZipf(1, 10, math.Inf(1)); err == nil {
		t.Fatal("infinite alpha accepted")
	}
}

func TestMustZipfPanics(t *testing.T) {
	defer expectPanic(t, "MustZipf with empty range")
	MustZipf(2, 1, 0.5)
}

func TestZipfProbOutsideSupport(t *testing.T) {
	z := MustZipf(3, 6, 0.5)
	if z.Prob(2) != 0 || z.Prob(7) != 0 {
		t.Fatal("Prob outside support should be 0")
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	z := MustZipf(1, 50, 0.5)
	var sum float64
	for v := 1; v <= 50; v++ {
		sum += z.Prob(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", sum)
	}
}

func TestZipfAccessors(t *testing.T) {
	z := MustZipf(2, 9, 0.7)
	if z.Min() != 2 || z.Max() != 9 || z.Alpha() != 0.7 {
		t.Fatalf("accessors: min=%d max=%d alpha=%v", z.Min(), z.Max(), z.Alpha())
	}
}

func TestQuickZipfSampleInSupport(t *testing.T) {
	src := New(101)
	f := func(lo int8, span uint8, alphaQ uint8) bool {
		min := int(lo)
		max := min + int(span%60)
		alpha := float64(alphaQ%40) / 10 // 0.0 .. 3.9
		z, err := NewZipf(min, max, alpha)
		if err != nil {
			return false
		}
		v := z.Sample(src)
		return v >= min && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
