package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples integers from a bounded Zipf distribution on [Min, Max]:
// P(X = Min+i) is proportional to 1/(i+1)^Alpha for i = 0..Max-Min, so the
// distribution is skewed toward the low end of the range. This matches the
// paper's transaction-length model: "length is generated according to a Zipf
// distribution over the range [1-50] ... skewed toward short transactions"
// with default skew alpha = 0.5 (Table I).
//
// The support is small (tens of values), so sampling uses inverse-transform
// over a precomputed cumulative table with binary search: O(log n) per draw
// and exactly one uniform variate consumed, which keeps workload replay
// deterministic and cheap.
type Zipf struct {
	min   int
	max   int
	alpha float64
	cdf   []float64 // cdf[i] = P(X <= min+i)
	mean  float64
}

// NewZipf constructs a bounded Zipf sampler on [min, max] with skew alpha.
// alpha may be zero (uniform) but must be non-negative; min must not exceed
// max.
func NewZipf(min, max int, alpha float64) (*Zipf, error) {
	if min > max {
		return nil, fmt.Errorf("rng: zipf range [%d, %d] is empty", min, max)
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("rng: zipf alpha %v must be finite and non-negative", alpha)
	}
	n := max - min + 1
	z := &Zipf{min: min, max: max, alpha: alpha, cdf: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		w := math.Pow(float64(i+1), -alpha)
		total += w
		z.cdf[i] = total
		z.mean += w * float64(min+i)
	}
	z.mean /= total
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	// Pin the final entry to exactly 1 so a uniform draw of 1-eps can never
	// fall past the end of the table due to floating-point rounding.
	z.cdf[n-1] = 1
	return z, nil
}

// MustZipf is like NewZipf but panics on invalid parameters. It is intended
// for package-level defaults and tests where the parameters are constants.
func MustZipf(min, max int, alpha float64) *Zipf {
	z, err := NewZipf(min, max, alpha)
	if err != nil {
		panic(err)
	}
	return z
}

// Sample draws one value from the distribution using src.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	// SearchFloat64s returns the first index with cdf[i] >= u except when
	// cdf[i] == u, where it returns the index *after* the equal run; both
	// cases land inside the table because cdf ends at exactly 1 and u < 1.
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return z.min + i
}

// Mean returns the exact expected value of the distribution. The workload
// generator uses it to convert a target system utilization into a Poisson
// arrival rate (lambda = utilization / mean length).
func (z *Zipf) Mean() float64 { return z.mean }

// Min returns the smallest value in the support.
func (z *Zipf) Min() int { return z.min }

// Max returns the largest value in the support.
func (z *Zipf) Max() int { return z.max }

// Alpha returns the skew parameter.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Prob returns P(X = v), or 0 if v is outside the support. Exposed for
// distribution tests and for documentation tooling.
func (z *Zipf) Prob(v int) float64 {
	if v < z.min || v > z.max {
		return 0
	}
	i := v - z.min
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
