package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("splitmix64(seed 0) value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seed diverged at draw %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds matched %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	b := a.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split streams matched %d/100 draws", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(99)
	for i := 0; i < 100000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v outside [0, 1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	src := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += src.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64nUnbiased(t *testing.T) {
	src := New(11)
	const n, buckets = 300000, 7
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[src.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 0.05*expected {
			t.Fatalf("bucket %d count %d deviates >5%% from expected %.0f", b, c, expected)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	src := New(13)
	for i := 0; i < 10000; i++ {
		if v := src.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) returned %d", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer expectPanic(t, "Uint64n(0)")
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer expectPanic(t, "Intn(0)")
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	src := New(21)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := src.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange(3, 9) returned %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 9; v++ {
		if !seen[v] {
			t.Fatalf("IntRange(3, 9) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntRangeSingleton(t *testing.T) {
	src := New(22)
	for i := 0; i < 100; i++ {
		if v := src.IntRange(5, 5); v != 5 {
			t.Fatalf("IntRange(5, 5) returned %d", v)
		}
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer expectPanic(t, "IntRange(2, 1)")
	New(1).IntRange(2, 1)
}

func TestUniformRange(t *testing.T) {
	src := New(31)
	for i := 0; i < 10000; i++ {
		v := src.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform(-2, 3) returned %v", v)
		}
	}
}

func TestUniformPanicsOnInverted(t *testing.T) {
	defer expectPanic(t, "Uniform(1, 0)")
	New(1).Uniform(1, 0)
}

func TestExpMean(t *testing.T) {
	src := New(41)
	const n = 200000
	const rate = 0.25
	var sum float64
	for i := 0; i < n; i++ {
		v := src.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Fatalf("Exp(%v) mean = %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer expectPanic(t, "Exp(0)")
	New(1).Exp(0)
}

func TestBoolProbability(t *testing.T) {
	src := New(51)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(61)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := src.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	src := New(71)
	vals := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	src.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	src := New(81)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return src.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUniformInRange(t *testing.T) {
	src := New(91)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Avoid hi-lo overflowing to +Inf; the simulator's time values are
		// nowhere near this magnitude.
		if math.Abs(a) > 1e300 || math.Abs(b) > 1e300 {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		v := src.Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// expectPanic is used as `defer expectPanic(t, "what")`; it is itself the
// deferred function, so its direct recover() call intercepts the panic.
func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s did not panic", what)
	}
}
