// Package rng provides deterministic pseudo-random number generation and the
// distributions needed by the workload generator of the ASETS* reproduction:
// bounded Zipf transaction lengths, exponential Poisson-process inter-arrival
// gaps, and discrete/continuous uniforms for slack factors and weights.
//
// The generators are implemented from scratch (xoshiro256** seeded through
// splitmix64) rather than delegating to math/rand so that every experiment in
// the repository replays bit-identically across Go releases and platforms.
package rng

import (
	"fmt"
	"math"
)

// SplitMix64 is a tiny 64-bit generator used to expand a single user seed
// into the four words of xoshiro256** state and to derive independent
// sub-stream seeds for parallel experiment cells.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	//lint:ignore hotpath-alloc hot callers (fault.abortDraw) never let the generator escape, so it stays on the stack after inlining
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive maps (base, run) to the run-th element of the splitmix64 stream
// seeded with base: mix(base + (run+1)*gamma). Parallel harnesses use it to
// assign every run of a sweep an independent, well-mixed seed as a pure
// function of the run's index — the assignment happens at job-construction
// time and never depends on goroutine scheduling, which is the first half of
// the determinism contract in docs/PARALLELISM.md.
func Derive(base, run uint64) uint64 {
	return NewSplitMix64(base + run*0x9e3779b97f4a7c15).Next()
}

// Source is a deterministic uniform pseudo-random source based on the
// xoshiro256** algorithm by Blackman and Vigna. It is not safe for
// concurrent use; derive one Source per goroutine via Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed. Any seed (including zero) yields a
// valid, well-mixed state because the state words come from splitmix64.
func New(seed uint64) *Source {
	sm := NewSplitMix64(seed)
	src := &Source{s0: sm.Next(), s1: sm.Next(), s2: sm.Next(), s3: sm.Next()}
	// The all-zero state is the only invalid one; splitmix64 cannot produce
	// four consecutive zeros, but guard anyway for robustness.
	if src.s0|src.s1|src.s2|src.s3 == 0 {
		src.s0 = 0x9e3779b97f4a7c15
	}
	return src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new Source whose stream is statistically independent of
// the receiver's. It consumes one value from the receiver.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0. Lemire's
// multiply-shift rejection method keeps the result unbiased.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling over the top of the range to remove modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if lo > hi.
func (r *Source) IntRange(lo, hi int) int {
	if lo > hi {
		panic(fmt.Sprintf("rng: IntRange called with lo %d > hi %d", lo, hi))
	}
	return lo + r.Intn(hi-lo+1)
}

// Uniform returns a uniform float64 in [lo, hi). It panics if lo > hi.
func (r *Source) Uniform(lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("rng: Uniform called with lo %v > hi %v", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// parameter (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exp called with rate %v <= 0", rate))
	}
	// Inverse transform; 1-Float64() is in (0,1] so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Shuffle permutes the first n indices using the Fisher-Yates algorithm,
// calling swap for each exchange.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
