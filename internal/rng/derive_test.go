package rng

import "testing"

// TestDeriveGolden pins Derive's mapping forever: these values are baked
// into every recorded experiment seed, so a change here is a
// reproducibility break, not a refactor.
func TestDeriveGolden(t *testing.T) {
	cases := []struct {
		base, run uint64
		want      uint64
	}{
		{0, 0, 0xE220A8397B1DCDAF},
		{0, 1, 0x6E789E6AA1B965F4},
		{1, 0, 0x910A2DEC89025CC1},
		{42, 7, 0xCCF635EE9E9E2FA4},
		{0xDEADBEEF, 1000000, 0xA9F301D8D37D23A7},
	}
	for _, c := range cases {
		if got := Derive(c.base, c.run); got != c.want {
			t.Errorf("Derive(%d, %d) = 0x%016X, want 0x%016X", c.base, c.run, got, c.want)
		}
	}
}

// TestDeriveMatchesSplitMixStream: Derive(base, run) is by definition the
// first draw of a splitmix64 generator advanced to position base+run*gamma —
// the same stream Split uses, so pool-derived seeds and Source.Split never
// alias in surprising ways.
func TestDeriveMatchesSplitMixStream(t *testing.T) {
	const gamma = 0x9e3779b97f4a7c15
	for run := uint64(0); run < 64; run++ {
		want := NewSplitMix64(7 + run*gamma).Next()
		if got := Derive(7, run); got != want {
			t.Fatalf("Derive(7, %d) = %d, want splitmix64 %d", run, got, want)
		}
	}
}

// TestDeriveWellMixed: consecutive runs and consecutive bases give distinct,
// spread-out seeds — no collisions in a modest window.
func TestDeriveWellMixed(t *testing.T) {
	seen := make(map[uint64]string)
	for base := uint64(0); base < 16; base++ {
		for run := uint64(0); run < 256; run++ {
			s := Derive(base, run)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (base=%d run=%d) and %s both derive %d", base, run, prev, s)
			}
			seen[s] = "earlier pair"
		}
	}
}
