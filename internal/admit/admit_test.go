package admit

import (
	"strings"
	"testing"

	"repro/internal/txn"
)

func tx(weight float64, deadline float64) *txn.Transaction {
	return &txn.Transaction{Arrival: 0, Deadline: deadline, Length: 1, Remaining: 1, Weight: weight}
}

func TestParse(t *testing.T) {
	good := map[string]string{
		"":                  "none",
		"none":              "none",
		"queue:8":           "queue:8",
		"slack":             "slack",
		"slack:2.5":         "slack:2.5",
		"missratio":         "missratio:0.5,0.25",
		"missratio:0.4,0.1": "missratio:0.4,0.1",
	}
	for spec, name := range good {
		c, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if c.Name() != name {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, c.Name(), name)
		}
	}
	bad := map[string]string{
		"bogus":            "unknown controller",
		"none:1":           "takes no argument",
		"queue":            "needs a capacity",
		"queue:0":          "positive integer",
		"queue:abc":        "positive integer",
		"slack:-1":         "non-negative",
		"missratio:0.5":    "enter,exit",
		"missratio:0.2,.9": "exit < enter",
		"missratio:2,0.1":  "exit < enter",
	}
	for spec, want := range bad {
		_, err := Parse(spec)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", spec, err, want)
		}
	}
}

func TestQueueCap(t *testing.T) {
	c := QueueCap{Max: 2}
	if !c.Admit(tx(1, 10), State{Queued: 1, Running: 0}) {
		t.Fatal("below cap must admit")
	}
	if c.Admit(tx(1, 10), State{Queued: 1, Running: 1}) {
		t.Fatal("at cap must shed")
	}
	if c.Degraded() {
		t.Fatal("QueueCap never degrades")
	}
}

func TestFeasibility(t *testing.T) {
	c := Feasibility{}
	// now=0, backlog=3, length=1 -> projected finish 4.
	if !c.Admit(tx(1, 4), State{Backlog: 3, Servers: 1}) {
		t.Fatal("feasible transaction shed")
	}
	if c.Admit(tx(1, 3.9), State{Backlog: 3, Servers: 1}) {
		t.Fatal("infeasible transaction admitted")
	}
	// Tolerance relaxes the gate.
	tol := Feasibility{Tolerance: 0.5}
	if !tol.Admit(tx(1, 3.9), State{Backlog: 3, Servers: 1}) {
		t.Fatal("tolerance not applied")
	}
	// More servers drain the backlog faster.
	if !c.Admit(tx(1, 2.6), State{Backlog: 3, Servers: 2}) {
		t.Fatal("multi-server backlog division wrong")
	}
}

func TestMissRatioDegradation(t *testing.T) {
	c := NewMissRatio(0.5, 0.25)
	c.Window = 8 // small window keeps the test readable

	// Warm-up: nothing flips before Window/4 completions.
	c.Complete(tx(1, 0), true)
	if c.Degraded() {
		t.Fatal("degraded during warm-up")
	}

	// Drive the miss ratio over Enter.
	for i := 0; i < 7; i++ {
		c.Complete(tx(1, 0), true)
	}
	if !c.Degraded() {
		t.Fatal("not degraded after sustained misses")
	}
	// Degraded: low-weight arrivals shed, high-weight admitted.
	if c.Admit(tx(1, 10), State{}) {
		t.Fatal("low-weight admitted while degraded")
	}
	if !c.Admit(tx(9, 10), State{}) {
		t.Fatal("high-weight shed while degraded")
	}

	// Hysteresis: ratio between Exit and Enter keeps the mode.
	for i := 0; i < 4; i++ {
		c.Complete(tx(1, 10), false)
	}
	if !c.Degraded() {
		t.Fatal("exited degradation above Exit threshold")
	}
	// Drive the ratio below Exit.
	for i := 0; i < 7; i++ {
		c.Complete(tx(1, 10), false)
	}
	if c.Degraded() {
		t.Fatal("still degraded after recovery")
	}
	if !c.Admit(tx(1, 10), State{}) {
		t.Fatal("low-weight shed while healthy")
	}
}

func TestUnconditional(t *testing.T) {
	c := Unconditional{}
	if !c.Admit(tx(1, 0), State{Queued: 1 << 20}) {
		t.Fatal("Unconditional must always admit")
	}
}
