// Package admit is the overload-protection layer of the reproduction:
// pluggable admission controllers that the simulator, the online executor
// and the web server consult on every transaction arrival. The paper's
// schedulers only reorder work — past utilization 1.0 every policy's
// tardiness grows without bound — so the system needs a second lever: decide
// at the door which transactions to serve at all. WiSeDB frames exactly this
// as SLA-aware admission/shedding; here the controllers range from a plain
// queue cap to a feasibility test over the live backlog to a
// deadline-miss-ratio-driven degradation state machine.
//
// Controllers are deterministic pure functions of the observed State (plus
// their own internal feedback state), never of wall time or randomness, so a
// fixed-seed run sheds the identical transaction set on every replay.
// Implementations need no internal locking: the simulator is
// single-threaded and the executor serializes Admit/Complete/Degraded calls
// behind its own mutex.
package admit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/txn"
)

// State is the system snapshot an admission decision sees. The caller (sim
// or executor) maintains it; Backlog is the total remaining work over
// admitted, unfinished transactions — the quantity that diverges under
// overload.
type State struct {
	// Now is the simulated decision instant.
	Now float64
	// Queued counts admitted, unfinished transactions not currently
	// executing (including aborted ones waiting out a backoff).
	Queued int
	// Running counts transactions currently occupying a server.
	Running int
	// Servers is the backend parallelism (>= 1).
	Servers int
	// Backlog is the summed remaining work of admitted, unfinished
	// transactions, in simulated time units.
	Backlog float64
	// Completed and Misses count finished transactions and those that
	// finished past their deadline.
	Completed int
	Misses    int
}

// Controller decides, per arriving transaction, whether to serve it.
type Controller interface {
	// Name returns the controller's display/spec name.
	Name() string
	// Admit reports whether t, arriving under st, should be served; false
	// sheds the transaction.
	Admit(t *txn.Transaction, st State) bool
	// Complete feeds back one finished transaction (feedback controllers
	// track the recent miss ratio through it; stateless ones ignore it).
	Complete(t *txn.Transaction, tardy bool)
	// Degraded reports whether the controller currently operates in a
	// degradation mode (always false for stateless controllers).
	Degraded() bool
}

// Unconditional admits everything: the paper's original model.
type Unconditional struct{}

// Name implements Controller.
func (Unconditional) Name() string { return "none" }

// Admit implements Controller.
func (Unconditional) Admit(*txn.Transaction, State) bool { return true }

// Complete implements Controller.
func (Unconditional) Complete(*txn.Transaction, bool) {}

// Degraded implements Controller.
func (Unconditional) Degraded() bool { return false }

// QueueCap sheds arrivals once the admitted-but-unfinished population
// reaches Max — the classic bounded-queue load shedder.
type QueueCap struct {
	// Max is the largest admitted backlog population (queued + running).
	Max int
}

// Name implements Controller.
//
//lint:coldpath identity label, formatted at wiring time and on (rare) shed events
func (c QueueCap) Name() string { return fmt.Sprintf("queue:%d", c.Max) }

// Admit implements Controller.
func (c QueueCap) Admit(_ *txn.Transaction, st State) bool {
	return st.Queued+st.Running < c.Max
}

// Complete implements Controller.
func (QueueCap) Complete(*txn.Transaction, bool) {}

// Degraded implements Controller.
func (QueueCap) Degraded() bool { return false }

// Feasibility sheds transactions that cannot plausibly meet their deadline
// given the live backlog: a transaction is admitted only when
//
//	now + backlog/servers + length <= deadline + tolerance
//
// i.e. when, even behind the entire current backlog, it would still finish
// by its deadline (FCFS-pessimistic: priority policies will usually do
// better, so the test errs toward admitting). Tolerance relaxes the gate by
// a fixed slack, admitting transactions that would be at most that tardy.
type Feasibility struct {
	// Tolerance is the tardiness the gate accepts before shedding.
	Tolerance float64
}

// Name implements Controller.
//
//lint:coldpath identity label, formatted at wiring time and on (rare) shed events
func (c Feasibility) Name() string {
	if c.Tolerance == 0 {
		return "slack"
	}
	return fmt.Sprintf("slack:%g", c.Tolerance)
}

// Admit implements Controller.
func (c Feasibility) Admit(t *txn.Transaction, st State) bool {
	servers := st.Servers
	if servers < 1 {
		servers = 1
	}
	projected := st.Now + st.Backlog/float64(servers) + t.Remaining
	return projected <= t.Deadline+c.Tolerance
}

// Complete implements Controller.
func (Feasibility) Complete(*txn.Transaction, bool) {}

// Degraded implements Controller.
func (Feasibility) Degraded() bool { return false }

// missWindow is the sliding completion window of MissRatio.
const missWindowDefault = 64

// MissRatio is the feedback controller: it watches the deadline-miss ratio
// over the last Window completions and switches into a degradation mode when
// it crosses Enter, shedding every arrival whose weight is below WeightFloor
// (the system keeps serving its most important fragments while it sheds
// load). Hysteresis — the mode exits only when the ratio falls below Exit —
// prevents flapping at the threshold.
type MissRatio struct {
	// Enter and Exit bound the hysteresis band (Exit < Enter).
	Enter float64
	Exit  float64
	// Window is the number of recent completions the ratio is computed over.
	Window int
	// WeightFloor is the minimum weight admitted while degraded.
	WeightFloor float64

	recent   []bool // ring of recent miss flags
	next     int
	filled   int
	misses   int
	degraded bool
}

// NewMissRatio builds the controller with the given hysteresis band, using
// the default window of 64 completions and a weight floor of 5 (the upper
// half of the paper's [1, 10] weight range).
func NewMissRatio(enter, exit float64) *MissRatio {
	return &MissRatio{Enter: enter, Exit: exit, Window: missWindowDefault, WeightFloor: 5}
}

// Name implements Controller.
//
//lint:coldpath identity label, formatted at wiring time and on (rare) shed events
func (c *MissRatio) Name() string { return fmt.Sprintf("missratio:%g,%g", c.Enter, c.Exit) }

// Admit implements Controller.
func (c *MissRatio) Admit(t *txn.Transaction, _ State) bool {
	return !c.degraded || t.Weight >= c.WeightFloor
}

// Complete implements Controller: updates the sliding miss ratio and the
// degradation state machine.
func (c *MissRatio) Complete(_ *txn.Transaction, tardy bool) {
	if c.Window <= 0 {
		c.Window = missWindowDefault
	}
	if len(c.recent) < c.Window {
		//lint:ignore hotpath-alloc recent grows once to the fixed window size, then is reused in place
		c.recent = append(c.recent, tardy)
		c.filled++
	} else {
		if c.recent[c.next] {
			c.misses--
		}
		c.recent[c.next] = tardy
		c.next = (c.next + 1) % c.Window
	}
	if tardy {
		c.misses++
	}
	// The ratio only counts once the window has some history; a single
	// tardy first completion should not flip the whole system.
	if c.filled < c.Window/4 {
		return
	}
	ratio := float64(c.misses) / float64(c.filled)
	if !c.degraded && ratio > c.Enter {
		c.degraded = true
	} else if c.degraded && ratio < c.Exit {
		c.degraded = false
	}
}

// Degraded implements Controller.
func (c *MissRatio) Degraded() bool { return c.degraded }

// CascadeShed marks t and every transaction that transitively depends on it
// as shed. A shed transaction never completes, so its dependents could never
// become ready — admitting them would deadlock the scheduler; shedding the
// whole downstream closure keeps the run sound. The caller counts each
// marked transaction when its arrival is consumed.
func CascadeShed(set *txn.Set, t *txn.Transaction) {
	t.Shed = true
	//lint:ignore hotpath-alloc shedding is the overload response, not the steady state; a short-lived DFS stack per shed is acceptable
	stack := []txn.ID{t.ID}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range set.Dependents[cur] {
			d := set.ByID(dep)
			if d.Shed {
				continue
			}
			d.Shed = true
			//lint:ignore hotpath-alloc the shed DFS stack is bounded by the downstream closure and lives only for the shed
			stack = append(stack, dep)
		}
	}
}

// CheckArrivalOrder verifies that every dependency arrives strictly before
// its dependents in (arrival time, ID) delivery order — the precondition for
// cascade shedding: a transaction already handed to the scheduler cannot be
// shed retroactively when a later-arriving dependency is rejected. Workloads
// built with the default OrderArrival chain order satisfy this; OrderRandom
// ones may not.
//
//lint:coldpath precondition check, runs once before the event loop
func CheckArrivalOrder(set *txn.Set) error {
	for _, t := range set.Txns {
		for _, dep := range t.Deps {
			d := set.ByID(dep)
			if d.Arrival > t.Arrival || (d.Arrival == t.Arrival && d.ID > t.ID) {
				return fmt.Errorf("admit: transaction %d arrives before its dependency %d — admission control needs dependency-ordered arrivals (workload chain order OrderArrival)", t.ID, d.ID)
			}
		}
	}
	return nil
}

// Parse builds a controller from its CLI spec:
//
//	none                    admit everything (default)
//	queue:N                 shed once N transactions are admitted-unfinished
//	slack[:tolerance]       shed transactions that cannot meet deadline+tolerance
//	missratio[:enter,exit]  degrade on recent miss ratio (defaults 0.5, 0.25)
//
// Controllers with feedback state must be built fresh per run; Parse is
// cheap, so call it once per run rather than sharing instances.
func Parse(spec string) (Controller, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "", "none":
		if arg != "" {
			return nil, fmt.Errorf("admit: %q takes no argument", name)
		}
		return Unconditional{}, nil
	case "queue":
		if arg == "" {
			return nil, fmt.Errorf("admit: queue needs a capacity, e.g. queue:64")
		}
		max, err := strconv.Atoi(arg)
		if err != nil || max < 1 {
			return nil, fmt.Errorf("admit: queue capacity %q must be a positive integer", arg)
		}
		return QueueCap{Max: max}, nil
	case "slack":
		if arg == "" {
			return Feasibility{}, nil
		}
		tol, err := strconv.ParseFloat(arg, 64)
		if err != nil || tol < 0 {
			return nil, fmt.Errorf("admit: slack tolerance %q must be a non-negative number", arg)
		}
		return Feasibility{Tolerance: tol}, nil
	case "missratio":
		enter, exit := 0.5, 0.25
		if arg != "" {
			e, x, ok := strings.Cut(arg, ",")
			if !ok {
				return nil, fmt.Errorf("admit: missratio needs enter,exit thresholds, e.g. missratio:0.5,0.25")
			}
			var err error
			if enter, err = strconv.ParseFloat(e, 64); err != nil {
				return nil, fmt.Errorf("admit: missratio enter threshold %q must be a number", e)
			}
			if exit, err = strconv.ParseFloat(x, 64); err != nil {
				return nil, fmt.Errorf("admit: missratio exit threshold %q must be a number", x)
			}
		}
		if enter <= 0 || enter > 1 || exit < 0 || exit >= enter {
			return nil, fmt.Errorf("admit: missratio thresholds must satisfy 0 <= exit < enter <= 1 (got enter=%v exit=%v)", enter, exit)
		}
		return NewMissRatio(enter, exit), nil
	default:
		return nil, fmt.Errorf("admit: unknown controller %q (choose none, queue:N, slack[:tol], missratio[:enter,exit])", name)
	}
}
