package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// sweepJobs builds a representative sweep — policies × utilizations ×
// replications — whose seeds are baked in via Gen, mirroring how
// internal/experiments submits cells.
func sweepJobs(n int) []Job {
	policies := []func() sched.Scheduler{
		sched.NewEDF,
		sched.NewSRPT,
		func() sched.Scheduler { return core.New() },
	}
	var jobs []Job
	for _, u := range []float64{0.6, 0.9, 1.1} {
		for _, mk := range policies {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := workload.Default(u, seed).WithWorkflows(4, 1)
				cfg.N = n
				jobs = append(jobs, Job{
					Gen: func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
					New: mk,
				})
			}
		}
	}
	return jobs
}

// TestParallelBitIdenticalToSerial is the tentpole acceptance criterion: the
// same job slice gathered by Pool{Workers: 1} and Pool{Workers: 8} must be
// deeply identical, including every float64 field, because gathering is in
// job order and each job's seed and workload are independent of scheduling.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	jobs := sweepJobs(120)
	serial, err := Pool{Workers: 1}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := Pool{Workers: workers}.Run(context.Background(), sweepJobs(120))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("Workers=%d summaries diverge from serial run", workers)
		}
	}
}

// TestDerivedSeedsIndependentOfWorkers: jobs that consume the pool-derived
// seed must see the same seed regardless of worker count or run order.
func TestDerivedSeedsIndependentOfWorkers(t *testing.T) {
	mkJobs := func(seeds []uint64) []Job {
		jobs := make([]Job, len(seeds))
		for i := range jobs {
			slot := i
			jobs[i] = Job{
				Gen: func(seed uint64) (*txn.Set, error) {
					seeds[slot] = seed
					cfg := workload.Default(0.5, seed)
					cfg.N = 20
					return workload.Generate(cfg)
				},
				New: sched.NewFCFS,
			}
		}
		return jobs
	}
	const n = 16
	serialSeeds := make([]uint64, n)
	parallelSeeds := make([]uint64, n)
	serial, err := Pool{Workers: 1, BaseSeed: 42}.Run(context.Background(), mkJobs(serialSeeds))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Pool{Workers: 4, BaseSeed: 42}.Run(context.Background(), mkJobs(parallelSeeds))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialSeeds, parallelSeeds) {
		t.Fatalf("derived seeds depend on worker count:\nserial   %v\nparallel %v", serialSeeds, parallelSeeds)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("summaries diverge despite identical seeds")
	}
	seen := make(map[uint64]bool)
	for _, s := range serialSeeds {
		if seen[s] {
			t.Fatalf("derived seed %d repeats across jobs", s)
		}
		seen[s] = true
	}
}

// TestSeedOverride: an explicit Job.Seed reaches Gen instead of the derived
// seed.
func TestSeedOverride(t *testing.T) {
	want := uint64(0xABCDEF)
	var got uint64
	jobs := []Job{{
		Seed: &want,
		Gen: func(seed uint64) (*txn.Set, error) {
			got = seed
			cfg := workload.Default(0.5, seed)
			cfg.N = 10
			return workload.Generate(cfg)
		},
		New: sched.NewFCFS,
	}}
	if _, err := (Pool{BaseSeed: 1}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Gen saw seed %d, want override %d", got, want)
	}
}

// TestSetCloneIsolation: many jobs backed by the same Set run on private
// clones — the caller's set stays pristine and the runs match regeneration.
func TestSetCloneIsolation(t *testing.T) {
	cfg := workload.Default(1.0, 99).WithWorkflows(5, 1)
	cfg.N = 150
	shared := workload.MustGenerate(cfg)
	pristine := shared.Clone()

	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Set: shared, New: sched.NewEDF}
	}
	summaries, err := Pool{Workers: 4}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(summaries); i++ {
		if !reflect.DeepEqual(summaries[0], summaries[i]) {
			t.Fatalf("job %d diverged from job 0 on an identical cloned workload", i)
		}
	}
	if !reflect.DeepEqual(pristine.Txns, shared.Txns) {
		t.Fatal("running cloned jobs mutated the caller's shared Set")
	}
}

// TestPostRunsWithPrivateState: Post observes the job's own mutated set and
// summary, and validation hooks work under concurrency.
func TestPostRunsWithPrivateState(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	finished := make([]int, n)
	for i := range jobs {
		slot := i
		rec := &trace.Recorder{}
		cfg := workload.Default(0.8, uint64(i+1))
		cfg.N = 50
		jobs[i] = Job{
			Gen:    func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
			New:    sched.NewSRPT,
			Config: sim.Config{Recorder: rec},
			Post: func(set *txn.Set, summary *metrics.Summary) error {
				if err := rec.Validate(set); err != nil {
					return err
				}
				finished[slot] = summary.N
				return nil
			},
		}
	}
	if _, err := (Pool{Workers: 4}).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for i, f := range finished {
		if f != 50 {
			t.Fatalf("job %d Post saw %d finished transactions, want 50", i, f)
		}
	}
}

// TestFirstErrorWins: when multiple jobs fail, Run reports the
// lowest-indexed recorded failure, wrapped with the job's label.
func TestFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	bad := func(label string) Job {
		return Job{
			Gen:   func(uint64) (*txn.Set, error) { return nil, boom },
			New:   sched.NewFCFS,
			Label: label,
		}
	}
	good := Job{
		Gen: func(uint64) (*txn.Set, error) {
			cfg := workload.Default(0.5, 1)
			cfg.N = 10
			return workload.Generate(cfg)
		},
		New: sched.NewFCFS,
	}
	jobs := []Job{good, bad("first"), good, bad("second")}
	for _, workers := range []int{1, 4} {
		_, err := Pool{Workers: workers}.Run(context.Background(), jobs)
		if err == nil {
			t.Fatalf("Workers=%d: failing jobs returned no error", workers)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("Workers=%d: error %v does not wrap the job's error", workers, err)
		}
		if workers == 1 && !strings.Contains(err.Error(), "job 1 (first)") {
			t.Fatalf("serial error %q should name job 1 (first)", err)
		}
	}
}

// TestContextCancellation: a cancelled context aborts the run with ctx.Err.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Pool{Workers: workers}.Run(ctx, sweepJobs(50))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

// TestValidateRejectsMalformedJobs covers the job-shape invariants.
func TestValidateRejectsMalformedJobs(t *testing.T) {
	set := workload.MustGenerate(workload.Default(0.5, 1))
	gen := func(uint64) (*txn.Set, error) { return workload.Generate(workload.Default(0.5, 1)) }
	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"neither Set nor Gen", []Job{{New: sched.NewFCFS}}, "exactly one of Set and Gen"},
		{"both Set and Gen", []Job{{Set: set, Gen: gen, New: sched.NewFCFS}}, "exactly one of Set and Gen"},
		{"no scheduler", []Job{{Set: set}}, "no scheduler factory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Pool{}.Run(context.Background(), tc.jobs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestValidateRejectsSharedObservability: shared recorders, registries and
// comparable sinks across jobs are rejected up front; Discard is exempt.
func TestValidateRejectsSharedObservability(t *testing.T) {
	mk := func(cfg sim.Config) Job {
		return Job{
			Gen:    func(uint64) (*txn.Set, error) { return workload.Generate(workload.Default(0.5, 1)) },
			New:    sched.NewFCFS,
			Config: cfg,
		}
	}
	rec := &trace.Recorder{}
	reg := obs.NewRegistry()
	sink := &obs.Collector{}
	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"shared recorder", []Job{mk(sim.Config{Recorder: rec}), mk(sim.Config{Recorder: rec})}, "trace recorder"},
		{"shared registry", []Job{mk(sim.Config{Metrics: reg}), mk(sim.Config{Metrics: reg})}, "metrics registry"},
		{"shared sink", []Job{mk(sim.Config{Sink: sink}), mk(sim.Config{Sink: sink})}, "event sink"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Pool{}.Run(context.Background(), tc.jobs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}

	// Discard is stateless and freely shareable; private state passes.
	ok := []Job{
		mk(sim.Config{Sink: obs.Discard, Recorder: &trace.Recorder{}, Metrics: obs.NewRegistry()}),
		mk(sim.Config{Sink: obs.Discard, Recorder: &trace.Recorder{}, Metrics: obs.NewRegistry()}),
	}
	if _, err := (Pool{}).Run(context.Background(), ok); err != nil {
		t.Fatalf("private observability state rejected: %v", err)
	}
}

// TestMergeMetricsJobOrder: per-job registries merge into one aggregate whose
// counters equal the per-run sums, independent of worker count.
func TestMergeMetricsJobOrder(t *testing.T) {
	mkJobs := func() []Job {
		jobs := make([]Job, 6)
		for i := range jobs {
			cfg := workload.Default(0.9, uint64(i+1))
			cfg.N = 60
			jobs[i] = Job{
				Gen:    func(uint64) (*txn.Set, error) { return workload.Generate(cfg) },
				New:    sched.NewEDF,
				Config: sim.Config{Metrics: obs.NewRegistry()},
			}
		}
		return jobs
	}
	total := func(workers int) (uint64, error) {
		jobs := mkJobs()
		if _, err := (Pool{Workers: workers}).Run(context.Background(), jobs); err != nil {
			return 0, err
		}
		dst := obs.NewRegistry()
		if err := MergeMetrics(dst, jobs); err != nil {
			return 0, err
		}
		var sum uint64
		for _, c := range dst.Snapshot().Counters {
			if c.Name == sched.MetricCompletions {
				sum = c.Value
			}
		}
		return sum, nil
	}
	serial, err := total(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := total(4)
	if err != nil {
		t.Fatal(err)
	}
	if serial == 0 {
		t.Fatal("merged registry lost the completion counter")
	}
	if serial != parallel {
		t.Fatalf("merged counters depend on worker count: serial %d parallel %d", serial, parallel)
	}
	if want := uint64(6 * 60); serial != want {
		t.Fatalf("merged completions %d, want %d", serial, want)
	}
}

// TestPoolHammer runs a large batch repeatedly under the race detector
// (go test -race ./internal/runner) and checks cross-run determinism.
func TestPoolHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	var first []*metrics.Summary
	for round := 0; round < 3; round++ {
		got, err := Pool{Workers: 8, BaseSeed: 7}.Run(context.Background(), sweepJobs(80))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
			continue
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("round %d diverged from round 0", round)
		}
	}
}
