package runner

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/workload"
)

// clusterJobs builds four routed jobs — different policies and retry
// budgets, shared crash/stall schedule — each with a private sink, registry
// and (where stateful) policy instance, as the determinism contract demands.
func clusterJobs() ([]Job, []*obs.Collector) {
	policies := []cluster.Policy{
		cluster.NewRoundRobin(), cluster.LeastLoaded{}, cluster.SlackAware{}, cluster.HealthWeighted{},
	}
	jobs := make([]Job, len(policies))
	cols := make([]*obs.Collector, len(policies))
	for i, pol := range policies {
		cols[i] = &obs.Collector{}
		jobs[i] = Job{
			Gen: func(seed uint64) (*txn.Set, error) { return genWorkload(seed) },
			New: sched.NewSRPT,
			Cluster: &ClusterJob{Config: cluster.Config{
				Instances: 3,
				Policy:    pol,
				Faults: []*fault.Plan{
					nil,
					{Stalls: []fault.Window{{Start: 30, Duration: 6, Kind: fault.Crash}}},
					{Stalls: []fault.Window{{Start: 55, Duration: 4, Kind: fault.Stall}}},
				},
				Retry:            cluster.Retry{Budget: 1 + i%2, BackoffBase: 0.5, BackoffCap: 2},
				RecoveryCooldown: 1,
				Sink:             cols[i],
				Metrics:          obs.NewRegistry(),
			}},
			Label: "cluster-" + pol.Name(),
		}
	}
	return jobs, cols
}

// digest hashes the jobs' routed event streams, concatenated in job order.
func digest(t *testing.T, cols []*obs.Collector) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	for _, col := range cols {
		for _, ev := range col.Events() {
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return sha256.Sum256(buf.Bytes())
}

// TestClusterJobsSerialParallelIdentical pins the cluster tier to the
// pool's determinism contract: the routed decision streams — routing,
// ejection, failover, per-instance scheduling — of a 4-worker run are
// byte-identical to the serial run, and so are the failover results.
func TestClusterJobsSerialParallelIdentical(t *testing.T) {
	run := func(workers int) ([32]byte, []*cluster.Result) {
		jobs, cols := clusterJobs()
		sums, err := Pool{Workers: workers, BaseSeed: 0xC1A57E}.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]*cluster.Result, len(jobs))
		for i := range jobs {
			results[i] = jobs[i].Cluster.Result
			if results[i] == nil || results[i].Summary != sums[i] {
				t.Fatalf("job %d: cluster result not gathered alongside its summary", i)
			}
		}
		return digest(t, cols), results
	}
	serialDigest, serialRes := run(1)
	parallelDigest, parallelRes := run(4)
	if serialDigest != parallelDigest {
		t.Fatal("routed event streams differ between serial and 4-worker runs")
	}
	if !reflect.DeepEqual(serialRes, parallelRes) {
		t.Fatalf("cluster results differ between serial and 4-worker runs:\n%+v\n%+v", serialRes, parallelRes)
	}
	for i, res := range serialRes {
		if res.Ejections == 0 {
			t.Fatalf("job %d exercised no ejection; tighten the fixture", i)
		}
	}
}

// TestClusterJobsRejectSharedState: a stateful policy or a sink shared
// between two cluster jobs breaks run isolation and must be rejected up
// front, exactly like shared sim observability state.
func TestClusterJobsRejectSharedState(t *testing.T) {
	pol := cluster.NewRoundRobin()
	sink := &obs.Collector{}
	for _, tc := range []struct {
		name string
		mut  func(a, b *ClusterJob)
		want string
	}{
		{"policy", func(a, b *ClusterJob) { a.Config.Policy, b.Config.Policy = pol, pol }, "routing policy"},
		{"sink", func(a, b *ClusterJob) { a.Config.Sink, b.Config.Sink = sink, sink }, "event sink"},
		{"status", func(a, b *ClusterJob) {
			board := &cluster.StatusBoard{}
			a.Config.Status, b.Config.Status = board, board
		}, "status board"},
	} {
		a := &ClusterJob{Config: cluster.Config{Instances: 2}}
		b := &ClusterJob{Config: cluster.Config{Instances: 2}}
		tc.mut(a, b)
		jobs := []Job{
			{Gen: func(seed uint64) (*txn.Set, error) { return genWorkload(seed) }, New: sched.NewFCFS, Cluster: a},
			{Gen: func(seed uint64) (*txn.Set, error) { return genWorkload(seed) }, New: sched.NewFCFS, Cluster: b},
		}
		_, err := Pool{Workers: 2}.Run(context.Background(), jobs)
		if err == nil || !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
			t.Fatalf("%s: error = %v, want shared %s rejected", tc.name, err, tc.want)
		}
	}
}

// genWorkload builds a 250-transaction independent workload at utilization
// 2.4 — 0.8 per instance across the three-instance fixtures above.
func genWorkload(seed uint64) (*txn.Set, error) {
	cfg := workload.Default(2.4, seed)
	cfg.N = 250
	return workload.Generate(cfg)
}
