// Package runner is the parallel experiment engine: it fans independent
// simulation runs out across a bounded worker pool and gathers their
// summaries in job order, with results byte-identical to executing the same
// jobs serially. Every figure of the paper's evaluation is a sweep
// (policies × load points × replications) of runs that share nothing, so
// the sweep harness (internal/experiments) and the benchmark CLI
// (cmd/asetsbench) submit their cells here instead of looping in place.
//
// Determinism contract (docs/PARALLELISM.md):
//
//   - Every job owns its workload. A Job.Set is deep-copied with
//     txn.Set.Clone before running; a Job.Gen regenerates a private set
//     from the job's seed. Nothing a run mutates is visible to another run
//     or to the caller's original set.
//   - Seeds are a pure function of position: job i with Seed unset draws
//     rng.Derive(pool.BaseSeed, i), fixed at submission, never influenced
//     by goroutine scheduling.
//   - Results are gathered in job order, so downstream floating-point
//     aggregation visits summaries in the same order regardless of the
//     worker count, and Pool{Workers: 1} is bit-equal to Workers: N.
//   - Observability state is per-job: two jobs may not share a Recorder,
//     Sink or Metrics registry. Per-run registries are merged afterwards,
//     in job order, with obs.Registry.Merge.
package runner

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
)

// ClusterJob routes a job through the fault-tolerant cluster engine
// (internal/cluster) instead of the single-backend simulator: the workload
// is distributed across Config.Instances fault domains with failover. The
// determinism contract is unchanged — a cluster run is a pure function of
// its seeds, so serial and parallel pools produce byte-identical routed
// event streams.
type ClusterJob struct {
	// Config is the cluster configuration. NewScheduler may be left nil to
	// reuse the job's scheduler factory (Job.New); Sink, Metrics, Status and
	// any stateful Policy must not be shared with another job in the same
	// Run call.
	Config cluster.Config
	// Result holds the cluster run's outcome after a successful Run — the
	// failover accounting the plain metrics.Summary cannot carry.
	Result *cluster.Result
}

// Job is one independent simulation run.
type Job struct {
	// Set is the workload to run. The pool clones it before the run, so
	// the same Set may back any number of jobs and remains untouched for
	// the caller. Exactly one of Set and Gen must be non-nil.
	Set *txn.Set
	// Gen builds the job's workload from its seed (see Seed). Generation
	// happens inside the worker, so large sweeps never hold every workload
	// in memory at once.
	Gen func(seed uint64) (*txn.Set, error)
	// Seed, when non-nil, overrides the pool's derived seed for this job.
	// Leave nil to draw rng.Derive(pool.BaseSeed, jobIndex).
	Seed *uint64
	// New constructs the job's scheduler. A fresh scheduler is built per
	// run; factories must not share mutable state between calls.
	New func() sched.Scheduler
	// Config is the job's simulation configuration. Recorder, Sink and
	// Metrics must not be shared with any other job in the same Run call.
	// Ignored when Cluster is set.
	Config sim.Config
	// Cluster, when non-nil, runs the job on the cluster engine instead of
	// the single-backend simulator; see ClusterJob.
	Cluster *ClusterJob
	// Post, when non-nil, runs in the worker after a successful simulation
	// with the job's private set and summary — the seam for per-run
	// schedule validation. A Post error fails the job.
	Post func(set *txn.Set, summary *metrics.Summary) error
	// Label annotates errors from this job (falls back to the job index).
	Label string
}

// Pool executes slices of Jobs over a bounded set of worker goroutines.
// The zero value is ready to use.
type Pool struct {
	// Workers bounds concurrent simulations: 0 means runtime.GOMAXPROCS(0),
	// 1 executes the jobs serially on the calling goroutine (the legacy
	// path — bit-equal to any other worker count by construction).
	Workers int
	// BaseSeed is expanded with rng.Derive(BaseSeed, jobIndex) into the
	// per-job seeds consumed by Job.Gen.
	BaseSeed uint64
}

// Run executes jobs and returns their summaries in job order. On error the
// summaries are nil and the returned error is the failing job's, wrapped
// with its label; when several jobs fail, the lowest-indexed recorded
// failure wins. Cancelling ctx abandons not-yet-started jobs and returns
// ctx.Err().
func (p Pool) Run(ctx context.Context, jobs []Job) ([]*metrics.Summary, error) {
	if err := p.validate(jobs); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]*metrics.Summary, len(jobs))
	errs := make([]error, len(jobs))

	if workers <= 1 {
		// Serial path: run in place on the calling goroutine. Identical
		// per-job code, so the parallel path can be checked bit-for-bit
		// against it.
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if errs[i] = p.runJob(&jobs[i], i, results); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}

	// Parallel path: a shared index feeds workers; cancellation (external
	// or first-error) stops the feed. Job i's result always lands in
	// results[i], so gathering is in job order no matter which worker ran
	// it or when it finished.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if errs[i] = p.runJob(&jobs[i], i, results); errs[i] != nil {
					cancel()
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runJob executes one job into results[i].
func (p Pool) runJob(job *Job, i int, results []*metrics.Summary) error {
	set, err := p.workload(job, i)
	if err != nil {
		return p.jobErr(job, i, err)
	}
	var summary *metrics.Summary
	if job.Cluster != nil {
		ccfg := job.Cluster.Config
		if ccfg.NewScheduler == nil {
			ccfg.NewScheduler = job.New
		}
		res, err := cluster.New(ccfg).Run(set)
		if err != nil {
			return p.jobErr(job, i, err)
		}
		job.Cluster.Result = res
		summary = res.Summary
	} else if summary, err = sim.New(job.Config).Run(set, job.New()); err != nil {
		return p.jobErr(job, i, err)
	}
	if job.Post != nil {
		if err := job.Post(set, summary); err != nil {
			return p.jobErr(job, i, err)
		}
	}
	results[i] = summary
	return nil
}

// workload materializes the job's private transaction set.
func (p Pool) workload(job *Job, i int) (*txn.Set, error) {
	if job.Set != nil {
		return job.Set.Clone(), nil
	}
	seed := rng.Derive(p.BaseSeed, uint64(i))
	if job.Seed != nil {
		seed = *job.Seed
	}
	return job.Gen(seed)
}

func (p Pool) jobErr(job *Job, i int, err error) error {
	if job.Label != "" {
		return fmt.Errorf("runner: job %d (%s): %w", i, job.Label, err)
	}
	return fmt.Errorf("runner: job %d: %w", i, err)
}

// MergeMetrics folds every job's private metrics registry into dst, in job
// order — the deterministic aggregation step matching the gathering order of
// Run. Jobs without a registry are skipped.
func MergeMetrics(dst *obs.Registry, jobs []Job) error {
	for i := range jobs {
		reg := jobs[i].Config.Metrics
		if cj := jobs[i].Cluster; cj != nil {
			reg = cj.Config.Metrics
		}
		if reg != nil {
			if err := dst.Merge(reg); err != nil {
				return fmt.Errorf("runner: merging job %d: %w", i, err)
			}
		}
	}
	return nil
}

// validate rejects malformed jobs and observability state shared between
// jobs, which would race under concurrency and break the determinism
// contract even without racing.
func (p Pool) validate(jobs []Job) error {
	type obsRef struct {
		kind string
		ptr  any
	}
	seen := make(map[obsRef]int)
	claim := func(i int, kind string, ptr any) error {
		if ptr == nil {
			return nil
		}
		ref := obsRef{kind: kind, ptr: ptr}
		if j, dup := seen[ref]; dup {
			return fmt.Errorf("runner: jobs %d and %d share a %s; per-job observability state must be private (merge registries afterwards with obs.Registry.Merge)", j, i, kind)
		}
		seen[ref] = i
		return nil
	}
	for i := range jobs {
		job := &jobs[i]
		if (job.Set == nil) == (job.Gen == nil) {
			return fmt.Errorf("runner: job %d must carry exactly one of Set and Gen", i)
		}
		if job.New == nil {
			return fmt.Errorf("runner: job %d has no scheduler factory", i)
		}
		if err := claim(i, "trace recorder", ptrOrNil(job.Config.Recorder)); err != nil {
			return err
		}
		if err := claim(i, "metrics registry", ptrOrNil(job.Config.Metrics)); err != nil {
			return err
		}
		// Discard is stateless and freely shareable; non-comparable sink
		// types (obs.Tee wrappers) cannot be identity-checked, so the
		// duplicate detection is best-effort for them.
		if s := job.Config.Sink; s != nil && s != obs.Discard && reflect.TypeOf(s).Comparable() {
			if err := claim(i, "event sink", s); err != nil {
				return err
			}
		}
		if cj := job.Cluster; cj != nil {
			if err := claim(i, "metrics registry", ptrOrNil(cj.Config.Metrics)); err != nil {
				return err
			}
			if err := claim(i, "status board", ptrOrNil(cj.Config.Status)); err != nil {
				return err
			}
			if s := cj.Config.Sink; s != nil && s != obs.Discard && reflect.TypeOf(s).Comparable() {
				if err := claim(i, "event sink", s); err != nil {
					return err
				}
			}
			// Routing policies may carry state (the round-robin cursor), so a
			// pointer-typed policy shared between jobs would race; value-typed
			// policies (LeastLoaded{}) are stateless and freely shareable.
			if pol := cj.Config.Policy; pol != nil && reflect.ValueOf(pol).Kind() == reflect.Pointer {
				if err := claim(i, "routing policy", pol); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ptrOrNil converts a typed nil pointer into an untyped nil so the shared-
// state map never records absent recorders or registries.
func ptrOrNil[T any](p *T) any {
	if p == nil {
		return nil
	}
	return p
}
