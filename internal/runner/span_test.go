package runner

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// TestSpanSketchesBitIdenticalAcrossWorkers is the PR's parallel acceptance
// criterion: a sweep instrumented with per-job span builders and windowed
// quantile sketches must export byte-identical /metrics text — and identical
// span JSONL — whether gathered serially or by four workers. It exercises
// the whole chain: SpanBuilder folding, sketch observation, job-order
// registry merge (obs.Registry.Merge with the new sketch case) and the
// Prometheus summary rendering.
func TestSpanSketchesBitIdenticalAcrossWorkers(t *testing.T) {
	type cell struct {
		set *txn.Set
		mk  func() sched.Scheduler
	}
	var cells []cell
	for _, u := range []float64{0.7, 1.0} {
		for seed := uint64(1); seed <= 2; seed++ {
			cfg := workload.Default(u, seed).WithWorkflows(4, 1).WithWeights()
			cfg.N = 120
			set := workload.MustGenerate(cfg)
			cells = append(cells,
				cell{set, sched.NewEDF},
				cell{set, func() sched.Scheduler { return core.New() }})
		}
	}

	run := func(workers int) (string, string) {
		jobs := make([]Job, len(cells))
		builders := make([]*obs.SpanBuilder, len(cells))
		for i, c := range cells {
			reg := obs.NewRegistry()
			sb := obs.NewSpanBuilder(c.set, obs.SpanOptions{Metrics: reg, Window: 25})
			builders[i] = sb
			jobs[i] = Job{
				Set:    c.set,
				New:    c.mk,
				Config: sim.Config{Sink: sb, Metrics: reg},
			}
		}
		if _, err := (Pool{Workers: workers}).Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
		merged := obs.NewRegistry()
		if err := MergeMetrics(merged, jobs); err != nil {
			t.Fatal(err)
		}
		var prom strings.Builder
		if err := obs.WritePrometheus(&prom, merged); err != nil {
			t.Fatal(err)
		}
		var spans strings.Builder
		for _, sb := range builders {
			if err := obs.WriteSpans(&spans, sb.Spans()); err != nil {
				t.Fatal(err)
			}
		}
		return prom.String(), spans.String()
	}

	serialProm, serialSpans := run(1)
	if !strings.Contains(serialProm, "# TYPE asets_span_tardiness summary") {
		t.Fatalf("merged export lacks span sketches:\n%s", serialProm)
	}
	if !strings.Contains(serialProm, `asets_window_tardiness{window="`) {
		t.Fatalf("merged export lacks windowed sketches:\n%s", serialProm)
	}
	for _, workers := range []int{2, 4} {
		prom, spans := run(workers)
		if prom != serialProm {
			t.Errorf("workers=%d: merged /metrics text differs from serial", workers)
		}
		if spans != serialSpans {
			t.Errorf("workers=%d: span JSONL differs from serial", workers)
		}
	}
}
