package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge after reset = %v", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "")
	b := r.Counter("c", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	h1 := r.Histogram("h", "", 2)
	h2 := r.Histogram("h", "", 4)
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestRegistryNameTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge under a counter's name did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n, "help "+n).Add(uint64(len(n)))
		}
		r.Gauge("g_now", "").Set(3.5)
		h := r.Histogram("h_tard", "", 2)
		h.Observe(0)
		h.Observe(3)
		return r.Snapshot()
	}
	s1 := build([]string{"b_total", "a_total", "c_total"})
	s2 := build([]string{"c_total", "b_total", "a_total"})
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ by registration order:\n%+v\n%+v", s1, s2)
	}
	names := make([]string, 0, len(s1.Counters))
	for _, c := range s1.Counters {
		names = append(names, c.Name)
	}
	if !reflect.DeepEqual(names, []string{"a_total", "b_total", "c_total"}) {
		t.Fatalf("counters not sorted: %v", names)
	}
	if len(s1.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s1.Histograms)
	}
	hv := s1.Histograms[0]
	if hv.Count != 2 || hv.Sum != 3 || hv.Max != 3 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
	total := 0
	for _, b := range hv.Buckets {
		total += b.Count
	}
	if total != hv.Count {
		t.Fatalf("bucket counts %d != count %d", total, hv.Count)
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("now", "")
	h := r.Histogram("obs", "", 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 7))
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if got := r.Snapshot().Histograms[0].Count; got != 8000 {
		t.Fatalf("histogram count = %d", got)
	}
}
