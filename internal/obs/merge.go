package obs

import "fmt"

// Merge folds every metric of src into r: counters add, gauges take src's
// value (so merging run registries in job order leaves the last run's gauge,
// mirroring what a serial run over the same jobs would have left), histograms
// merge bucket-by-bucket via metrics.Histogram.Merge, and quantile sketches
// merge cell-by-cell via metrics.Sketch.Merge. Metrics absent from r are
// created with src's help text (and, for histograms and sketches, src's
// bucket base or relative accuracy).
//
// Merge is the aggregation step of the parallel experiment engine
// (docs/PARALLELISM.md): each run writes to a private registry, and the
// harness merges them in job order afterwards, which keeps the merged
// counters, bucket counts and histogram sums bit-identical to a serial run.
// src must be quiescent — merging a registry that is still being written
// concurrently would interleave half-updated histograms. r and src must be
// distinct registries.
//
// It returns an error when a name is registered with different metric types
// (or histogram bases) in the two registries.
func (r *Registry) Merge(src *Registry) error {
	if src == nil {
		return nil
	}
	if src == r {
		return fmt.Errorf("obs: cannot merge a registry into itself")
	}
	// Snapshot src's handle tables under its lock; the handles themselves
	// are updated atomically (counters, gauges) or under their own mutex
	// (histograms), so reading their values afterwards is safe.
	src.mu.Lock()
	names := make([]string, len(src.names))
	copy(names, src.names)
	counters := make(map[string]*Counter, len(src.counters))
	//lint:ignore maprange map-to-map handle copy; the merge itself walks names in registration order
	for n, c := range src.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	//lint:ignore maprange map-to-map handle copy; order-independent
	for n, g := range src.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(src.hists))
	//lint:ignore maprange map-to-map handle copy; order-independent
	for n, h := range src.hists {
		hists[n] = h
	}
	sketches := make(map[string]*Sketch, len(src.sketches))
	//lint:ignore maprange map-to-map handle copy; order-independent
	for n, s := range src.sketches {
		sketches[n] = s
	}
	help := make(map[string]string, len(src.help))
	//lint:ignore maprange map-to-map handle copy; order-independent
	for n, h := range src.help {
		help[n] = h
	}
	src.mu.Unlock()

	// names preserves src's registration order, which makes the merge — and
	// therefore any type-conflict error — deterministic.
	for _, name := range names {
		switch {
		case counters[name] != nil:
			r.mu.Lock()
			_, g := r.gauges[name]
			_, h := r.hists[name]
			_, s := r.sketches[name]
			r.mu.Unlock()
			if g || h || s {
				return fmt.Errorf("obs: merge: %q is a counter in the source but not in the destination", name)
			}
			r.Counter(name, help[name]).Add(counters[name].Value())
		case gauges[name] != nil:
			r.mu.Lock()
			_, c := r.counters[name]
			_, h := r.hists[name]
			_, s := r.sketches[name]
			r.mu.Unlock()
			if c || h || s {
				return fmt.Errorf("obs: merge: %q is a gauge in the source but not in the destination", name)
			}
			r.Gauge(name, help[name]).Set(gauges[name].Value())
		case hists[name] != nil:
			r.mu.Lock()
			_, c := r.counters[name]
			_, g := r.gauges[name]
			_, s := r.sketches[name]
			r.mu.Unlock()
			if c || g || s {
				return fmt.Errorf("obs: merge: %q is a histogram in the source but not in the destination", name)
			}
			sh := hists[name]
			sh.mu.Lock()
			base := sh.h.Base()
			dh := r.Histogram(name, help[name], base)
			if dh == sh {
				sh.mu.Unlock()
				return fmt.Errorf("obs: merge: histogram %q is shared between source and destination", name)
			}
			dh.mu.Lock()
			err := dh.h.Merge(sh.h)
			dh.mu.Unlock()
			sh.mu.Unlock()
			if err != nil {
				return fmt.Errorf("obs: merge %q: %w", name, err)
			}
		case sketches[name] != nil:
			r.mu.Lock()
			_, c := r.counters[name]
			_, g := r.gauges[name]
			_, h := r.hists[name]
			r.mu.Unlock()
			if c || g || h {
				return fmt.Errorf("obs: merge: %q is a sketch in the source but not in the destination", name)
			}
			ss := sketches[name]
			ss.mu.Lock()
			alpha := ss.s.Alpha()
			ds := r.Sketch(name, help[name], alpha)
			if ds == ss {
				ss.mu.Unlock()
				return fmt.Errorf("obs: merge: sketch %q is shared between source and destination", name)
			}
			ds.mu.Lock()
			err := ds.s.Merge(ss.s)
			ds.mu.Unlock()
			ss.mu.Unlock()
			if err != nil {
				return fmt.Errorf("obs: merge %q: %w", name, err)
			}
		}
	}
	return nil
}
