package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// parseProm extracts sample lines (name{labels} value) from exposition text.
func parseProm(t *testing.T, text string) map[string]string {
	t.Helper()
	out := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		out[line[:i]] = line[i+1:]
	}
	return out
}

func TestWritePrometheusSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("asets_completions_total", "completed transactions").Add(42)
	r.Gauge("asets_sim_now", "current simulated time").Set(12.25)
	h := r.Histogram("asets_tardiness", "tardiness of completed transactions", 2)
	h.Observe(0)
	h.Observe(0)
	h.Observe(1.5)
	h.Observe(5)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseProm(t, text)

	if samples["asets_completions_total"] != "42" {
		t.Fatalf("counter sample = %q", samples["asets_completions_total"])
	}
	if samples["asets_sim_now"] != "12.25" {
		t.Fatalf("gauge sample = %q", samples["asets_sim_now"])
	}
	if samples["asets_tardiness_count"] != "4" {
		t.Fatalf("count = %q", samples["asets_tardiness_count"])
	}
	sum, err := strconv.ParseFloat(samples["asets_tardiness_sum"], 64)
	if err != nil || sum != 6.5 {
		t.Fatalf("sum = %q (%v)", samples["asets_tardiness_sum"], err)
	}
	// Cumulative buckets: le="0" holds the two zero observations; the +Inf
	// bucket equals the total count.
	if samples[`asets_tardiness_bucket{le="0"}`] != "2" {
		t.Fatalf("zero bucket = %q", samples[`asets_tardiness_bucket{le="0"}`])
	}
	if samples[`asets_tardiness_bucket{le="+Inf"}`] != "4" {
		t.Fatalf("+Inf bucket = %q", samples[`asets_tardiness_bucket{le="+Inf"}`])
	}
	// Cumulative counts never decrease across ascending edges.
	prev := -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "asets_tardiness_bucket") {
			continue
		}
		v, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %s", text)
		}
		prev = v
	}
	for _, header := range []string{
		"# TYPE asets_completions_total counter",
		"# TYPE asets_sim_now gauge",
		"# TYPE asets_tardiness histogram",
		"# HELP asets_completions_total completed transactions",
	} {
		if !strings.Contains(text, header) {
			t.Fatalf("missing %q in:\n%s", header, text)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n, "").Inc()
		}
		var b strings.Builder
		if err := WritePrometheus(&b, r); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]string{"z_total", "a_total", "m_total"})
	b := build([]string{"m_total", "z_total", "a_total"})
	if a != b {
		t.Fatalf("output depends on registration order:\n%s\nvs\n%s", a, b)
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty registry produced %q", b.String())
	}
}
