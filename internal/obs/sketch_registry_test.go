package obs

import (
	"strings"
	"testing"
)

func TestRegistrySketchHandle(t *testing.T) {
	r := NewRegistry()
	s := r.Sketch("asets_test_sketch", "help", 0.01)
	if r.Sketch("asets_test_sketch", "help", 0.01) != s {
		t.Fatal("second registration returned a different handle")
	}
	s.Observe(0)
	s.Observe(2)
	s.Observe(4)
	snap := r.Snapshot()
	if len(snap.Sketches) != 1 {
		t.Fatalf("snapshot has %d sketches, want 1", len(snap.Sketches))
	}
	sv := snap.Sketches[0]
	if sv.Name != "asets_test_sketch" || sv.Count != 3 || sv.Sum != 6 || sv.Max != 4 {
		t.Fatalf("snapshot %+v", sv)
	}
	if len(sv.Quantiles) != 3 || sv.Quantiles[0].Q != 0.5 || sv.Quantiles[2].Q != 0.99 {
		t.Fatalf("quantiles %+v", sv.Quantiles)
	}
}

func TestRegistrySketchTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("asets_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("sketch over an existing counter name did not panic")
		}
	}()
	r.Sketch("asets_conflict", "", 0.01)
}

func TestRegistryMergeSketches(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	sa := a.Sketch("asets_m", "h", 0.01)
	sb := b.Sketch("asets_m", "h", 0.01)
	sa.Observe(1)
	sb.Observe(2)
	sb.Observe(0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sv := a.Snapshot().Sketches[0]
	if sv.Count != 3 || sv.Sum != 3 || sv.Max != 2 {
		t.Fatalf("merged sketch %+v", sv)
	}
	// Merging into a registry that lacks the sketch creates it.
	c := NewRegistry()
	if err := c.Merge(a); err != nil {
		t.Fatal(err)
	}
	if cv := c.Snapshot().Sketches[0]; cv.Count != 3 {
		t.Fatalf("created-on-merge sketch %+v", cv)
	}
}

func TestRegistryMergeSketchAlphaMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Sketch("asets_m", "h", 0.01).Observe(1)
	b.Sketch("asets_m", "h", 0.05).Observe(1)
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("alpha mismatch not rejected: %v", err)
	}
}

func TestRegistryMergeSketchTypeMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("asets_m", "h")
	b.Sketch("asets_m", "h", 0.01)
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "sketch") {
		t.Fatalf("type mismatch not rejected: %v", err)
	}
}

func TestPrometheusSketchExport(t *testing.T) {
	r := NewRegistry()
	s := r.Sketch("asets_plain", "a plain sketch", 0.01)
	for _, v := range []float64{0, 1, 2, 3, 4} {
		s.Observe(v)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP asets_plain a plain sketch",
		"# TYPE asets_plain summary",
		`asets_plain{quantile="0.5"} `,
		`asets_plain{quantile="0.95"} `,
		`asets_plain{quantile="0.99"} `,
		"asets_plain_sum 10",
		"asets_plain_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestSpliceLabel(t *testing.T) {
	if got := spliceLabel("", "quantile", "0.5"); got != `{quantile="0.5"}` {
		t.Fatalf("empty labels: %q", got)
	}
	if got := spliceLabel(`{a="b"}`, "quantile", "0.5"); got != `{a="b",quantile="0.5"}` {
		t.Fatalf("non-empty labels: %q", got)
	}
}
