package obs

import (
	"testing"
	"time"
)

func TestOverheadStats(t *testing.T) {
	ov := NewOverhead()
	ov.CountEvent()
	ov.CountEvent()
	ov.AddNanos(40)
	ov.AddNanos(2)
	ov.CountPoolHit()
	ov.CountPoolHit()
	ov.CountPoolHit()
	ov.CountPoolMiss()
	got := ov.Stats()
	want := OverheadStats{Events: 2, InstrNanos: 42, PoolHits: 3, PoolMisses: 1}
	if got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
}

// TestTimedAttributesTime drives a Timed sink with a deterministic fake
// clock that advances 1µs per reading: each event takes two readings
// (before/after fan-out), so exactly 1µs per event is attributed.
func TestTimedAttributesTime(t *testing.T) {
	col := &Collector{}
	ov := NewOverhead()
	clock := time.Unix(0, 0)
	now := func() time.Time {
		clock = clock.Add(time.Microsecond)
		return clock
	}
	timed := NewTimed(col, ov, now)
	for i := 0; i < 3; i++ {
		timed.Emit(Event{Time: float64(i), Kind: KindArrival, Txn: -1, Workflow: -1})
	}
	if n := len(col.Events()); n != 3 {
		t.Fatalf("inner sink got %d events, want 3", n)
	}
	stats := ov.Stats()
	if stats.Events != 3 {
		t.Fatalf("events counted %d, want 3", stats.Events)
	}
	if stats.InstrNanos != 3*time.Microsecond.Nanoseconds() {
		t.Fatalf("attributed %dns, want 3000ns", stats.InstrNanos)
	}
}

// TestTimedNilClock: without a clock the wrapper counts events but never
// attributes time — the FakeClock/determinism configuration.
func TestTimedNilClock(t *testing.T) {
	col := &Collector{}
	ov := NewOverhead()
	timed := NewTimed(col, ov, nil)
	ev := Event{Time: 1, Kind: KindDispatch, Txn: 0, Workflow: -1}
	timed.EmitShared(&ev)
	if n := len(col.Events()); n != 1 {
		t.Fatalf("inner sink got %d events, want 1", n)
	}
	stats := ov.Stats()
	if stats.Events != 1 || stats.InstrNanos != 0 {
		t.Fatalf("stats %+v, want 1 event and zero nanos", stats)
	}
}

func TestReadRuntimeSample(t *testing.T) {
	s := ReadRuntimeSample()
	if s.HeapBytes == 0 {
		t.Error("heap bytes gauge read as zero")
	}
	if s.Goroutines == 0 {
		t.Error("goroutine gauge read as zero")
	}
}
