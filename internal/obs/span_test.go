package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/txn"
)

// spanTestSet builds a four-transaction workload: 0 <- 1 (1 depends on 0),
// plus independent 2 and 3, with weights spanning the three classes.
func spanTestSet(t *testing.T) *txn.Set {
	t.Helper()
	set, err := txn.NewSet([]*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 10, Length: 4, Weight: 9, Remaining: 4},
		{ID: 1, Arrival: 1, Deadline: 20, Length: 3, Weight: 5, Remaining: 3, Deps: []txn.ID{0}},
		{ID: 2, Arrival: 2, Deadline: 12, Length: 2, Weight: 1, Remaining: 2},
		{ID: 3, Arrival: 3, Deadline: 30, Length: 5, Weight: 2, Remaining: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// emitAll replays events through the builder in order.
func emitAll(b *SpanBuilder, evs []Event) {
	for _, ev := range evs {
		b.Emit(ev)
	}
}

// reattr recomputes the attribution fold from the serialized segments — the
// bit-exactness oracle used across the span tests.
func reattr(sp Span) Attribution {
	var a Attribution
	for _, seg := range sp.Segments {
		d := seg.End - seg.Start
		switch seg.Kind {
		case SegQueued:
			a.Queued += d
		case SegRunning:
			a.Service += d
		case SegPreempted:
			a.Preempted += d
		case SegStalled:
			a.Stalled += d
		case SegBackoff:
			a.Backoff += d
		default:
			panic("unknown segment kind")
		}
	}
	return a
}

// checkSpanInvariants asserts the structural guarantees every closed span
// carries: segments tile [Arrival, Finish] with exact float boundary
// equality, the attribution equals the per-category fold of the segments,
// and Response is bit-identical to the category-order attribution sum.
func checkSpanInvariants(t *testing.T, sp Span) {
	t.Helper()
	if len(sp.Segments) > 0 {
		if sp.Segments[0].Start != sp.Arrival {
			t.Errorf("txn %d: first segment starts at %v, arrival %v", sp.Txn, sp.Segments[0].Start, sp.Arrival)
		}
		if last := sp.Segments[len(sp.Segments)-1]; last.End != sp.Finish {
			t.Errorf("txn %d: last segment ends at %v, finish %v", sp.Txn, last.End, sp.Finish)
		}
		for i := 1; i < len(sp.Segments); i++ {
			if sp.Segments[i].Start != sp.Segments[i-1].End {
				t.Errorf("txn %d: segment %d starts at %v, previous ends at %v",
					sp.Txn, i, sp.Segments[i].Start, sp.Segments[i-1].End)
			}
		}
		for i, seg := range sp.Segments {
			if seg.End <= seg.Start {
				t.Errorf("txn %d: segment %d is empty or inverted: %+v", sp.Txn, i, seg)
			}
		}
	}
	if got := reattr(sp); got != sp.Attr {
		t.Errorf("txn %d: attribution %+v, refold %+v", sp.Txn, sp.Attr, got)
	}
	if sum := sp.Attr.Sum(); sum != sp.Response {
		t.Errorf("txn %d: attribution sum %v != response %v", sp.Txn, sum, sp.Response)
	}
}

func TestSpanBuilderPlainLifecycle(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{})
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0.5, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 2, Kind: KindPreempt, Txn: 0, Workflow: -1},
		{Time: 3, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 5.5, Kind: KindCompletion, Txn: 0, Workflow: -1, Tardiness: 0},
	})
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := *spans[0]
	checkSpanInvariants(t, sp)
	want := []Segment{
		{SegQueued, 0, 0.5},
		{SegRunning, 0.5, 2},
		{SegPreempted, 2, 3},
		{SegRunning, 3, 5.5},
	}
	if !reflect.DeepEqual(sp.Segments, want) {
		t.Fatalf("segments %+v, want %+v", sp.Segments, want)
	}
	if !sp.Completed || sp.Shed || sp.Preempts != 1 || sp.Restarts != 0 {
		t.Fatalf("flags wrong: %+v", sp)
	}
	if sp.Attr.Queued != 0.5 || sp.Attr.Service != 4 || sp.Attr.Preempted != 1 {
		t.Fatalf("attribution %+v", sp.Attr)
	}
	if sp.Response != 5.5 || sp.Slowdown != 5.5/4 {
		t.Fatalf("response %v slowdown %v", sp.Response, sp.Slowdown)
	}
	if sp.Class != "heavy" || sp.Mode != "edf" {
		t.Fatalf("class %q mode %q", sp.Class, sp.Mode)
	}
}

func TestSpanBuilderCausalLinks(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{})
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 4, Kind: KindCompletion, Txn: 0, Workflow: -1},
		{Time: 4, Kind: KindArrival, Txn: 1, Workflow: -1, Deadline: 20},
		{Time: 4, Kind: KindDispatch, Txn: 1, Workflow: -1},
		{Time: 7, Kind: KindCompletion, Txn: 1, Workflow: -1},
	})
	spans := b.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	root, child := *spans[0], *spans[1]
	if len(root.Parents) != 0 || !reflect.DeepEqual(root.Children, []txn.ID{1}) {
		t.Fatalf("root links parents=%v children=%v", root.Parents, root.Children)
	}
	if !reflect.DeepEqual(child.Parents, []txn.ID{0}) || len(child.Children) != 0 {
		t.Fatalf("child links parents=%v children=%v", child.Parents, child.Children)
	}
	if root.Workflow != child.Workflow {
		t.Fatalf("root wf %d != child wf %d (same workflow closure)", root.Workflow, child.Workflow)
	}
	// Same-instant transitions produce no zero-length segments.
	if len(root.Segments) != 1 || root.Segments[0].Kind != SegRunning {
		t.Fatalf("root segments %+v", root.Segments)
	}
	checkSpanInvariants(t, root)
	checkSpanInvariants(t, child)
}

func TestSpanBuilderAbortBackoffRestart(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{})
	emitAll(b, []Event{
		{Time: 2, Kind: KindArrival, Txn: 2, Workflow: -1, Deadline: 12},
		{Time: 2, Kind: KindDispatch, Txn: 2, Workflow: -1},
		// Completion attempt aborts at 4; backoff until 6.
		{Time: 4, Kind: KindAbort, Txn: 2, Workflow: -1, Detail: "abort", Remaining: 2},
		{Time: 6, Kind: KindRestart, Txn: 2, Workflow: -1},
		// The scheduler re-learns about it via a preempt — not a segment
		// transition for a queued transaction.
		{Time: 6, Kind: KindPreempt, Txn: 2, Workflow: -1},
		{Time: 7, Kind: KindDispatch, Txn: 2, Workflow: -1},
		{Time: 9, Kind: KindCompletion, Txn: 2, Workflow: -1, Tardiness: 0},
	})
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := *spans[0]
	checkSpanInvariants(t, sp)
	want := []Segment{
		{SegRunning, 2, 4},
		{SegBackoff, 4, 6},
		{SegQueued, 6, 7},
		{SegRunning, 7, 9},
	}
	if !reflect.DeepEqual(sp.Segments, want) {
		t.Fatalf("segments %+v, want %+v", sp.Segments, want)
	}
	if sp.Restarts != 1 || sp.Preempts != 0 {
		t.Fatalf("restarts %d preempts %d", sp.Restarts, sp.Preempts)
	}
	if sp.Attr.Backoff != 2 || sp.Attr.Service != 4 || sp.Attr.Queued != 1 {
		t.Fatalf("attribution %+v", sp.Attr)
	}
}

func TestSpanBuilderStallAndCrash(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{})
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 2, Kind: KindArrival, Txn: 2, Workflow: -1, Deadline: 12},
		{Time: 2, Kind: KindDispatch, Txn: 2, Workflow: -1},
		// A crash window opens at 3: the stall event precedes the per-txn
		// fallout. Txn 2 loses its in-flight work (crash abort), txn 0 is
		// merely evicted by the same-instant preempt.
		{Time: 3, Kind: KindStall, Txn: -1, Workflow: -1, Remaining: 2, Detail: "crash"},
		{Time: 3, Kind: KindAbort, Txn: 2, Workflow: -1, Detail: "crash"},
		{Time: 3, Kind: KindPreempt, Txn: 2, Workflow: -1},
		{Time: 3, Kind: KindPreempt, Txn: 0, Workflow: -1},
		// Window ends at 5; both re-dispatch.
		{Time: 5, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 7, Kind: KindCompletion, Txn: 0, Workflow: -1},
		{Time: 7, Kind: KindDispatch, Txn: 2, Workflow: -1},
		{Time: 9, Kind: KindCompletion, Txn: 2, Workflow: -1, Tardiness: 1},
	})
	spans := b.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	evicted, crashed := *spans[0], *spans[1]
	checkSpanInvariants(t, evicted)
	checkSpanInvariants(t, crashed)
	wantEvicted := []Segment{
		{SegRunning, 0, 3},
		{SegStalled, 3, 5},
		{SegRunning, 5, 7},
	}
	if !reflect.DeepEqual(evicted.Segments, wantEvicted) {
		t.Fatalf("evicted segments %+v, want %+v", evicted.Segments, wantEvicted)
	}
	if evicted.Preempts != 0 {
		t.Fatalf("stall eviction counted as preemption: %+v", evicted)
	}
	wantCrashed := []Segment{
		{SegRunning, 2, 3},
		{SegStalled, 3, 7},
		{SegRunning, 7, 9},
	}
	if !reflect.DeepEqual(crashed.Segments, wantCrashed) {
		t.Fatalf("crashed segments %+v, want %+v", crashed.Segments, wantCrashed)
	}
	if crashed.Tardiness != 1 {
		t.Fatalf("tardiness %v", crashed.Tardiness)
	}
}

func TestSpanBuilderShed(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{Metrics: NewRegistry()})
	b.Emit(Event{Time: 3, Kind: KindShed, Txn: 3, Workflow: -1, Deadline: 30, Detail: "queue"})
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := *spans[0]
	if !sp.Shed || sp.Completed || len(sp.Segments) != 0 || sp.Response != 0 {
		t.Fatalf("shed span wrong: %+v", sp)
	}
	// Shed spans must not feed the SLA sketches.
	if snap := b.opts.Metrics.Snapshot(); len(snap.Sketches) != 0 {
		t.Fatalf("shed span observed into sketches: %+v", snap.Sketches)
	}
}

func TestSpanBuilderModeTracking(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{})
	wf := 0 // workflow of txns 0 and 1
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 1, Kind: KindModeSwitch, Txn: -1, Workflow: wf, Detail: "edf->hdf"},
		{Time: 4, Kind: KindCompletion, Txn: 0, Workflow: -1},
	})
	sp := *b.Spans()[0]
	if sp.Mode != "hdf" {
		t.Fatalf("mode %q, want hdf after mode switch", sp.Mode)
	}
}

func TestSpanBuilderWindowedSketches(t *testing.T) {
	set := spanTestSet(t)
	reg := NewRegistry()
	b := NewSpanBuilder(set, SpanOptions{Metrics: reg, Window: 5})
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 4, Kind: KindCompletion, Txn: 0, Workflow: -1, Tardiness: 0},
		{Time: 2, Kind: KindArrival, Txn: 2, Workflow: -1, Deadline: 12},
		{Time: 4, Kind: KindDispatch, Txn: 2, Workflow: -1},
		{Time: 13, Kind: KindCompletion, Txn: 2, Workflow: -1, Tardiness: 1},
	})
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Sketches))
	for _, s := range snap.Sketches {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{
		MetricSpanTardiness, MetricSpanResponse, MetricSpanSlowdown,
		WindowMetric("tardiness", 0, "heavy", "edf"),
		WindowMetric("tardiness", 2, "light", "edf"),
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing sketch %q in:\n%s", want, joined)
		}
	}
	// The totals sketch saw both completions.
	for _, s := range snap.Sketches {
		if s.Name == MetricSpanResponse && s.Count != 2 {
			t.Errorf("%s count %d, want 2", s.Name, s.Count)
		}
	}
	// Windowed cells land on /metrics as labeled summaries.
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `asets_window_tardiness{window="0002",class="light",mode="edf",quantile="0.95"}`) {
		t.Errorf("windowed summary sample missing from:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE asets_window_tardiness summary") {
		t.Errorf("summary TYPE header missing from:\n%s", out)
	}
	if strings.Count(out, "# TYPE asets_window_tardiness summary") != 1 {
		t.Errorf("summary TYPE header not deduplicated across windows:\n%s", out)
	}
}

func TestSpanSnapshotAndKeep(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{Keep: 1})
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 4, Kind: KindCompletion, Txn: 0, Workflow: -1},
		{Time: 4, Kind: KindArrival, Txn: 2, Workflow: -1, Deadline: 12},
		{Time: 4, Kind: KindDispatch, Txn: 2, Workflow: -1},
		{Time: 6, Kind: KindCompletion, Txn: 2, Workflow: -1},
		{Time: 6, Kind: KindArrival, Txn: 3, Workflow: -1, Deadline: 30},
		{Time: 6, Kind: KindDispatch, Txn: 3, Workflow: -1},
		{Time: 11, Kind: KindCompletion, Txn: 3, Workflow: -1},
	})
	if b.Total() != 3 {
		t.Fatalf("total %d, want 3", b.Total())
	}
	snap := b.Snapshot(0)
	if len(snap) == 0 || snap[0].Txn != 3 {
		t.Fatalf("snapshot not newest-first: %+v", snap)
	}
	if len(snap) > 2 {
		t.Fatalf("keep bound not applied: %d spans retained", len(snap))
	}
	if one := b.Snapshot(1); len(one) != 1 || one[0].Txn != 3 {
		t.Fatalf("limit 1 snapshot wrong: %+v", one)
	}
}

func TestSpanMarshalByteStable(t *testing.T) {
	set := spanTestSet(t)
	run := func() []byte {
		b := NewSpanBuilder(set, SpanOptions{})
		emitAll(b, []Event{
			{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
			{Time: 0.25, Kind: KindDispatch, Txn: 0, Workflow: -1},
			{Time: 2, Kind: KindPreempt, Txn: 0, Workflow: -1},
			{Time: 2.5, Kind: KindDispatch, Txn: 0, Workflow: -1},
			{Time: 4.75, Kind: KindCompletion, Txn: 0, Workflow: -1, Tardiness: 0},
		})
		var buf bytes.Buffer
		if err := WriteSpans(&buf, b.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, bts := run(), run()
	if !bytes.Equal(a, bts) {
		t.Fatalf("span JSONL not byte-stable:\n%s\nvs\n%s", a, bts)
	}
	line := string(a)
	if !strings.HasPrefix(line, `{"txn":0,"wf":0,"class":"heavy","mode":"edf","weight":9,`) {
		t.Fatalf("unexpected field order: %s", line)
	}
	if !strings.Contains(line, `"segments":[{"kind":"queued","start":0,"end":0.25}`) {
		t.Fatalf("segment encoding wrong: %s", line)
	}
}
