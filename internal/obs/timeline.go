package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// Timeline export: Chrome trace-event JSON (the `trace_event` format that
// chrome://tracing and Perfetto's legacy loader understand). One simulated
// time unit maps to one displayed millisecond — trace-event timestamps are
// microseconds, so ts = simTime * 1000.
//
// Layout: pid 1 is the scheduled system. tid 0 is the "scheduler decisions"
// lane, carrying every decision event as an instant marker; tids 1..S are
// server lanes carrying the execution slices as complete ("X") events.
// Single-server traces use one lane; multi-server traces are assigned lanes
// greedily so overlapping slices never share one.

// timelineEvent is one trace-event record. Field order is fixed and args
// maps marshal with sorted keys, so exports are byte-stable.
type timelineEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	ID    int            `json:"id,omitempty"`
	Bind  string         `json:"bp,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type timelineDoc struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []timelineEvent `json:"traceEvents"`
}

// simToTs converts simulated time to trace-event microseconds (1 sim unit
// displayed as 1 ms).
func simToTs(t float64) float64 { return t * 1000 }

// WriteTimeline renders the recorded execution slices and the decision
// event stream as one loadable timeline. Either input may be empty.
func WriteTimeline(w io.Writer, slices []trace.Slice, events []Event) error {
	return WriteTimelineFlows(w, slices, events, nil)
}

// WriteTimelineFlows renders the timeline and, when spans are given,
// additionally connects workflow parent→child pairs with Perfetto flow
// events: a flow starts ("s") where the parent's last execution slice ends
// and finishes ("f") where the child's first slice begins, so tardiness
// propagating through a workflow DAG is visible as arrows across server
// lanes. Spans whose endpoints have no recorded slices contribute no flows.
func WriteTimelineFlows(w io.Writer, slices []trace.Slice, events []Event, spans []*Span) error {
	ordered := make([]trace.Slice, len(slices))
	copy(ordered, slices)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].ID < ordered[j].ID
	})

	// Greedy lane assignment: a slice goes to the first lane free at its
	// start instant. The small epsilon absorbs float drift on back-to-back
	// slice boundaries.
	const laneEpsilon = 1e-9
	var laneEnds []float64
	laneOf := make([]int, len(ordered))
	for i, s := range ordered {
		lane := -1
		for l, end := range laneEnds {
			if end <= s.Start+laneEpsilon {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = s.End
		laneOf[i] = lane
	}

	doc := timelineDoc{DisplayTimeUnit: "ms"}
	doc.TraceEvents = append(doc.TraceEvents, timelineEvent{
		Name: "process_name", Phase: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "asets"},
	}, timelineEvent{
		Name: "thread_name", Phase: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "scheduler decisions"},
	})
	for l := range laneEnds {
		doc.TraceEvents = append(doc.TraceEvents, timelineEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: l + 1,
			Args: map[string]any{"name": fmt.Sprintf("server %d", l+1)},
		})
	}

	for i, s := range ordered {
		doc.TraceEvents = append(doc.TraceEvents, timelineEvent{
			Name:  fmt.Sprintf("T%d", int(s.ID)),
			Cat:   "slice",
			Phase: "X",
			Pid:   1,
			Tid:   laneOf[i] + 1,
			Ts:    simToTs(s.Start),
			Dur:   simToTs(s.Duration()),
			Args:  map[string]any{"txn": int(s.ID)},
		})
	}

	// Flow events bind to slices, so they need each transaction's first and
	// last slice with its lane.
	if len(spans) > 0 && len(ordered) > 0 {
		type endpoint struct {
			lane int
			t    float64
		}
		first := make(map[int]endpoint, len(ordered))
		last := make(map[int]endpoint, len(ordered))
		for i, s := range ordered {
			id := int(s.ID)
			if _, seen := first[id]; !seen {
				first[id] = endpoint{laneOf[i], s.Start}
			}
			if e, seen := last[id]; !seen || s.End > e.t {
				last[id] = endpoint{laneOf[i], s.End}
			}
		}
		flowID := 0
		for _, sp := range spans {
			from, ok := last[int(sp.Txn)]
			if !ok {
				continue
			}
			for _, child := range sp.Children {
				to, ok := first[int(child)]
				if !ok {
					continue
				}
				flowID++
				name := fmt.Sprintf("dep T%d->T%d", int(sp.Txn), int(child))
				args := map[string]any{"parent": int(sp.Txn), "child": int(child), "wf": sp.Workflow}
				doc.TraceEvents = append(doc.TraceEvents, timelineEvent{
					Name: name, Cat: "flow", Phase: "s", ID: flowID,
					Pid: 1, Tid: from.lane + 1, Ts: simToTs(from.t), Args: args,
				}, timelineEvent{
					Name: name, Cat: "flow", Phase: "f", ID: flowID, Bind: "e",
					Pid: 1, Tid: to.lane + 1, Ts: simToTs(to.t), Args: args,
				})
			}
		}
	}

	for _, ev := range events {
		args := map[string]any{"seq": ev.Seq}
		if ev.Txn >= 0 {
			args["txn"] = int(ev.Txn)
		}
		if ev.Workflow >= 0 {
			args["wf"] = ev.Workflow
		}
		if ev.Tardiness != 0 {
			args["tardiness"] = ev.Tardiness
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		name := ev.Kind.String()
		if ev.Txn >= 0 {
			name = fmt.Sprintf("%s T%d", name, int(ev.Txn))
		}
		doc.TraceEvents = append(doc.TraceEvents, timelineEvent{
			Name:  name,
			Cat:   "decision",
			Phase: "i",
			Scope: "t",
			Pid:   1,
			Tid:   0,
			Ts:    simToTs(ev.Time),
			Args:  args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
