package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestMergeCountersAdd(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("done", "finished").Add(3)
	src.Counter("done", "finished").Add(4)
	src.Counter("only_src", "new").Add(7)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	snap := counterValues(dst)
	if snap["done"] != 7 {
		t.Fatalf("done = %d, want 7", snap["done"])
	}
	if snap["only_src"] != 7 {
		t.Fatalf("only_src = %d, want 7 (created from source)", snap["only_src"])
	}
}

func TestMergeGaugesTakeSource(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Gauge("clock", "sim time").Set(10)
	src.Gauge("clock", "sim time").Set(25)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if v := dst.Gauge("clock", "sim time").Value(); v != 25 {
		t.Fatalf("gauge = %v, want the source's 25 (last merged run wins, like a serial run)", v)
	}
}

func TestMergeHistogramsBucketwise(t *testing.T) {
	// The merged histogram must equal a single histogram fed both streams in
	// merge order — the property the parallel engine relies on.
	dst, src := NewRegistry(), NewRegistry()
	want := NewRegistry()
	wh := want.Histogram("tard", "tardiness", 2)
	a := dst.Histogram("tard", "tardiness", 2)
	for _, v := range []float64{0, 1.5, 3, 8} {
		a.Observe(v)
		wh.Observe(v)
	}
	b := src.Histogram("tard", "tardiness", 2)
	for _, v := range []float64{0.5, 100, 0} {
		b.Observe(v)
		wh.Observe(v)
	}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	got, wantSnap := dst.Snapshot(), want.Snapshot()
	if !reflect.DeepEqual(got.Histograms, wantSnap.Histograms) {
		t.Fatalf("merged histogram differs from serially-fed histogram:\ngot  %+v\nwant %+v",
			got.Histograms, wantSnap.Histograms)
	}
}

func TestMergeOrderDeterminism(t *testing.T) {
	// Merging the same registries in the same order twice gives identical
	// snapshots; this is what makes job-order merging reproducible.
	build := func() *Registry {
		dst := NewRegistry()
		for i := 0; i < 3; i++ {
			src := NewRegistry()
			src.Counter("c", "").Add(uint64(i + 1))
			src.Gauge("g", "").Set(float64(i))
			src.Histogram("h", "", 2).Observe(float64(i) * 1.25)
			if err := dst.Merge(src); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}
	if !reflect.DeepEqual(build().Snapshot(), build().Snapshot()) {
		t.Fatal("repeated in-order merges are not deterministic")
	}
}

func TestMergeErrors(t *testing.T) {
	t.Run("self merge", func(t *testing.T) {
		r := NewRegistry()
		if err := r.Merge(r); err == nil || !strings.Contains(err.Error(), "itself") {
			t.Fatalf("got %v, want self-merge error", err)
		}
	})
	t.Run("nil source is a no-op", func(t *testing.T) {
		r := NewRegistry()
		r.Counter("c", "").Inc()
		if err := r.Merge(nil); err != nil {
			t.Fatal(err)
		}
		if counterValues(r)["c"] != 1 {
			t.Fatal("nil merge changed the destination")
		}
	})
	t.Run("type conflict", func(t *testing.T) {
		dst, src := NewRegistry(), NewRegistry()
		dst.Gauge("x", "").Set(1)
		src.Counter("x", "").Inc()
		if err := dst.Merge(src); err == nil || !strings.Contains(err.Error(), "counter in the source") {
			t.Fatalf("got %v, want type-conflict error", err)
		}
	})
	t.Run("histogram base mismatch", func(t *testing.T) {
		dst, src := NewRegistry(), NewRegistry()
		dst.Histogram("h", "", 2).Observe(1)
		src.Histogram("h", "", 10).Observe(1)
		if err := dst.Merge(src); err == nil || !strings.Contains(err.Error(), "bases") {
			t.Fatalf("got %v, want base-mismatch error", err)
		}
	})
}

func counterValues(r *Registry) map[string]uint64 {
	out := make(map[string]uint64)
	for _, c := range r.Snapshot().Counters {
		out[c.Name] = c.Value
	}
	return out
}
