package obs

import (
	"fmt"

	"repro/internal/txn"
)

// Validate checks the structural invariants of a complete decision-event
// stream (as captured by a Collector): per-transaction lifecycle ordering,
// monotone timestamps, and consistency between completions, deadline misses
// and sheds. It returns the first violation found, or nil for a well-formed
// stream. `asetssim -invariants` runs it on every traced run.
//
// The rules, per transaction:
//
//   - at most one arrival, one completion, one shed;
//   - dispatch, preempt, abort and completion require a prior arrival and
//     precede the completion (no events after a transaction finishes);
//   - every completion follows at least one dispatch (service was given);
//   - deadline_miss requires its transaction to have completed with positive
//     tardiness;
//   - restart requires a pending keyed abort (crash losses re-queue without
//     a restart event);
//   - a shed transaction never arrives, dispatches or completes;
//   - route precedes the transaction's arrival-or-shed outcome and never
//     follows its completion; failover requires a prior arrival and precedes
//     the completion (a failed-over transaction is alive on a new instance);
//
// and globally: event times never decrease. Eject and recover are
// instance-level circuit-breaker transitions with no per-transaction
// obligations.
func Validate(events []Event) error {
	type state struct {
		arrived    bool
		dispatched bool
		completed  bool
		shed       bool
		backoff    bool
		tardiness  float64
	}
	states := make(map[txn.ID]*state)
	get := func(id txn.ID) *state {
		s, ok := states[id]
		if !ok {
			s = &state{}
			states[id] = s
		}
		return s
	}
	fail := func(i int, ev Event, msg string) error {
		return fmt.Errorf("obs: invalid event stream at index %d (%s txn %d, t=%v): %s",
			i, ev.Kind, ev.Txn, ev.Time, msg)
	}
	last := 0.0
	for i, ev := range events {
		if ev.Time < last {
			return fail(i, ev, fmt.Sprintf("time went backwards (previous %v)", last))
		}
		last = ev.Time
		switch ev.Kind {
		case KindArrival:
			s := get(ev.Txn)
			switch {
			case s.arrived:
				return fail(i, ev, "duplicate arrival")
			case s.shed:
				return fail(i, ev, "arrival of a shed transaction")
			}
			s.arrived = true
		case KindDispatch:
			s := get(ev.Txn)
			switch {
			case !s.arrived:
				return fail(i, ev, "dispatch before arrival")
			case s.completed:
				return fail(i, ev, "dispatch after completion")
			case s.shed:
				return fail(i, ev, "dispatch of a shed transaction")
			}
			s.dispatched = true
		case KindPreempt:
			s := get(ev.Txn)
			switch {
			case !s.arrived:
				return fail(i, ev, "preempt before arrival")
			case s.completed:
				return fail(i, ev, "preempt after completion")
			}
		case KindCompletion:
			s := get(ev.Txn)
			switch {
			case !s.arrived:
				return fail(i, ev, "completion without a matching arrival")
			case s.completed:
				return fail(i, ev, "duplicate completion")
			case s.shed:
				return fail(i, ev, "completion of a shed transaction")
			case !s.dispatched:
				return fail(i, ev, "completion without any dispatch")
			}
			s.completed = true
			s.tardiness = ev.Tardiness
		case KindDeadlineMiss:
			s := get(ev.Txn)
			switch {
			case !s.completed:
				return fail(i, ev, "deadline_miss without completion")
			case s.tardiness <= 0:
				return fail(i, ev, "deadline_miss for an on-time completion")
			}
		case KindAbort:
			s := get(ev.Txn)
			switch {
			case !s.arrived:
				return fail(i, ev, "abort before arrival")
			case s.completed:
				return fail(i, ev, "abort after completion")
			}
			if ev.Detail != "crash" {
				s.backoff = true
			}
		case KindRestart:
			s := get(ev.Txn)
			if !s.backoff {
				return fail(i, ev, "restart without a pending abort")
			}
			s.backoff = false
		case KindShed:
			s := get(ev.Txn)
			switch {
			case s.arrived:
				return fail(i, ev, "shed after arrival")
			case s.shed:
				return fail(i, ev, "duplicate shed")
			}
			s.shed = true
		case KindRoute:
			s := get(ev.Txn)
			switch {
			case s.completed:
				return fail(i, ev, "route after completion")
			case s.shed:
				return fail(i, ev, "route of a shed transaction")
			}
		case KindFailover:
			s := get(ev.Txn)
			switch {
			case !s.arrived:
				return fail(i, ev, "failover before arrival")
			case s.completed:
				return fail(i, ev, "failover after completion")
			}
		case KindValidateFail:
			s := get(ev.Txn)
			switch {
			case !s.arrived:
				return fail(i, ev, "validate_fail before arrival")
			case s.completed:
				return fail(i, ev, "validate_fail after completion")
			case !s.dispatched:
				return fail(i, ev, "validate_fail without any dispatch")
			}
		case KindConflictDefer:
			s := get(ev.Txn)
			if s.completed {
				return fail(i, ev, "conflict_defer after completion")
			}
		case KindAging, KindModeSwitch, KindStall, KindDegradeEnter,
			KindDegradeExit, KindEject, KindRecover,
			KindAlertFire, KindAlertResolve:
			// Scheduler-, controller-, instance- or SLO-level events carry
			// no per-transaction lifecycle obligations.
		default:
			return fail(i, ev, "unknown event kind")
		}
	}
	return nil
}
