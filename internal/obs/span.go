package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"unsafe"

	"repro/internal/txn"
)

// This file builds per-transaction causal spans out of the flat decision
// event stream: a SpanBuilder is a Sink that folds
// arrival/dispatch/preempt/completion/abort/restart/stall/shed events into
// one Span per transaction, with typed segments tiling the transaction's
// lifetime, parent/child links from the workflow DAG, and a tardiness
// attribution that sums bit-exactly to the span's response time (see the
// Attribution invariant below and docs/OBSERVABILITY.md).
//
// The builder is engineered for the zero-allocation fast path: open-span
// state lives in a dense array indexed by transaction ID (no map, no per-txn
// tracking allocation), span and starter-segment storage bump-allocates from
// arenas preallocated at construction, closed spans recycle through a free
// list once the Keep bound compacts them, windowed sketch cells are interned
// by dense (window, class, mode) indices instead of per-completion formatted
// names, and sketch inserts batch through fixed inline buffers that flush
// whenever the builder drains. docs/OBSERVABILITY.md ("Overhead budgets") carries the
// enforced numbers.

// SegmentKind classifies one stretch of a transaction's lifetime.
type SegmentKind int

const (
	// SegQueued — waiting in the ready queue for its first (or a
	// post-restart) dispatch.
	SegQueued SegmentKind = iota
	// SegRunning — checked out to a server, receiving service.
	SegRunning
	// SegPreempted — set aside unfinished by a scheduling decision, waiting
	// to be re-dispatched.
	SegPreempted
	// SegStalled — waiting out a backend stall/crash outage window.
	SegStalled
	// SegBackoff — aborted, waiting for its retry instant.
	SegBackoff
)

// String returns the stable wire name of the segment kind.
func (k SegmentKind) String() string {
	switch k {
	case SegQueued:
		return "queued"
	case SegRunning:
		return "running"
	case SegPreempted:
		return "preempted"
	case SegStalled:
		return "stalled"
	case SegBackoff:
		return "backoff"
	default:
		panic(fmt.Sprintf("obs: unknown segment kind %d", int(k)))
	}
}

// Segment is one typed stretch of a span. Segments tile [Arrival, Finish]:
// each segment's End is the exact float the next segment's Start holds.
type Segment struct {
	Kind  SegmentKind
	Start float64
	End   float64
}

// Attribution breaks a completed span's response time down by cause: time
// spent waiting for first service (Queued), receiving service (Service),
// waiting after a preemption (Preempted), waiting out outage windows
// (Stalled) and waiting out abort backoffs (Backoff). Each category is the
// time-order fold of its segments' durations, so the breakdown is a pure
// function of the segment list.
type Attribution struct {
	Queued    float64
	Service   float64
	Preempted float64
	Stalled   float64
	Backoff   float64
}

// Sum adds the categories in their fixed declaration order. Span.Response is
// defined as exactly this fold, which is what makes the "attribution sums to
// response time" invariant bit-exact rather than merely approximate: float
// addition is not associative, so the definition pins one association.
func (a Attribution) Sum() float64 {
	return a.Queued + a.Service + a.Preempted + a.Stalled + a.Backoff
}

// Span is the lifecycle record of one transaction, folded from the decision
// event stream.
type Span struct {
	// Txn identifies the transaction; Workflow is its primary scheduling
	// entity (the lowest-ID workflow containing it), -1 when unknown.
	Txn      txn.ID
	Workflow int
	// Parents are the transaction's direct dependencies; Children the
	// transactions that directly depend on it (the causal DAG edges). Both
	// alias the immutable workload set's slices and must be treated as
	// read-only.
	Parents  []txn.ID
	Children []txn.ID
	// Weight is w_i; Class its weight class (light/medium/heavy); Mode the
	// scheduler mode ("edf" or "hdf") of the primary workflow at completion.
	Weight float64
	Class  string
	Mode   string
	// Arrival, Finish and Deadline are simulated-time instants; Finish is
	// the shed instant for shed spans.
	Arrival  float64
	Finish   float64
	Deadline float64
	// Response is the attribution fold (see Attribution.Sum); Tardiness the
	// completion event's tardiness; Slowdown Response over service length.
	Response  float64
	Tardiness float64
	Slowdown  float64
	// Restarts counts post-abort re-queues, Preempts scheduling
	// preemptions (crash losses count as restarts, not preemptions).
	Restarts int
	Preempts int
	// Shed marks an admission rejection; Completed a finished transaction.
	Shed      bool
	Completed bool
	Segments  []Segment
	Attr      Attribution
}

// MarshalJSON renders the span as one flat JSON object with a fixed field
// order and shortest round-trip floats, so serialized span streams are
// byte-stable across runs (the same contract as Event.MarshalJSON).
func (s Span) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 512)
	b = append(b, `{"txn":`...)
	b = strconv.AppendInt(b, int64(s.Txn), 10)
	b = append(b, `,"wf":`...)
	b = strconv.AppendInt(b, int64(s.Workflow), 10)
	b = append(b, `,"class":`...)
	b = strconv.AppendQuote(b, s.Class)
	b = append(b, `,"mode":`...)
	b = strconv.AppendQuote(b, s.Mode)
	b = append(b, `,"weight":`...)
	b = strconv.AppendFloat(b, s.Weight, 'g', -1, 64)
	b = append(b, `,"arrival":`...)
	b = strconv.AppendFloat(b, s.Arrival, 'g', -1, 64)
	b = append(b, `,"finish":`...)
	b = strconv.AppendFloat(b, s.Finish, 'g', -1, 64)
	b = append(b, `,"deadline":`...)
	b = strconv.AppendFloat(b, s.Deadline, 'g', -1, 64)
	b = append(b, `,"response":`...)
	b = strconv.AppendFloat(b, s.Response, 'g', -1, 64)
	b = append(b, `,"tardiness":`...)
	b = strconv.AppendFloat(b, s.Tardiness, 'g', -1, 64)
	b = append(b, `,"slowdown":`...)
	b = strconv.AppendFloat(b, s.Slowdown, 'g', -1, 64)
	b = append(b, `,"restarts":`...)
	b = strconv.AppendInt(b, int64(s.Restarts), 10)
	b = append(b, `,"preempts":`...)
	b = strconv.AppendInt(b, int64(s.Preempts), 10)
	b = append(b, `,"shed":`...)
	b = strconv.AppendBool(b, s.Shed)
	b = append(b, `,"completed":`...)
	b = strconv.AppendBool(b, s.Completed)
	b = append(b, `,"parents":`...)
	b = appendIDs(b, s.Parents)
	b = append(b, `,"children":`...)
	b = appendIDs(b, s.Children)
	b = append(b, `,"segments":[`...)
	for i, seg := range s.Segments {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"kind":"`...)
		b = append(b, seg.Kind.String()...)
		b = append(b, `","start":`...)
		b = strconv.AppendFloat(b, seg.Start, 'g', -1, 64)
		b = append(b, `,"end":`...)
		b = strconv.AppendFloat(b, seg.End, 'g', -1, 64)
		b = append(b, '}')
	}
	b = append(b, `],"attr":{"queued":`...)
	b = strconv.AppendFloat(b, s.Attr.Queued, 'g', -1, 64)
	b = append(b, `,"service":`...)
	b = strconv.AppendFloat(b, s.Attr.Service, 'g', -1, 64)
	b = append(b, `,"preempted":`...)
	b = strconv.AppendFloat(b, s.Attr.Preempted, 'g', -1, 64)
	b = append(b, `,"stalled":`...)
	b = strconv.AppendFloat(b, s.Attr.Stalled, 'g', -1, 64)
	b = append(b, `,"backoff":`...)
	b = strconv.AppendFloat(b, s.Attr.Backoff, 'g', -1, 64)
	b = append(b, `}}`...)
	return b, nil
}

func appendIDs(b []byte, ids []txn.ID) []byte {
	b = append(b, '[')
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return append(b, ']')
}

// WriteSpans serializes spans as JSON Lines in the given order.
func WriteSpans(w io.Writer, spans []*Span) error {
	for _, s := range spans {
		b, err := s.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Metric names of the span layer. The windowed series carry a Prometheus
// label set inside the registered name — see WindowMetric.
const (
	MetricSpanTardiness = "asets_span_tardiness"
	MetricSpanResponse  = "asets_span_response"
	MetricSpanSlowdown  = "asets_span_slowdown"
)

// WindowMetric returns the registered name of a windowed sketch cell, e.g.
// `asets_window_tardiness{window="0003",class="heavy",mode="edf"}`. The
// window index is zero-padded so registry name sorting orders cells by time.
// It is called only at cell-registration time (newCell); per-completion
// lookups go through the interned cellKey index instead.
//
// Class and mode values are escaped for the Prometheus exposition format
// (EscapeLabel): the mode name is interned from event Detail strings, which
// a replayed JSONL stream controls, so a crafted `"` or newline must not be
// able to splice extra labels or samples into /metrics output.
func WindowMetric(kind string, window int, class, mode string) string {
	return MetricName(fmt.Sprintf("asets_window_%s", kind),
		"window", fmt.Sprintf("%04d", window), "class", class, "mode", mode)
}

// classNames are the SLA weight classes of the windowed exports, indexed by
// weightClassIdx.
var classNames = [NumWeightClasses]string{"light", "medium", "heavy"}

// NumWeightClasses is the number of SLA weight classes the windowed exports
// (and the SLO engine built on them) are keyed by.
const NumWeightClasses = 3

// WeightClass buckets a transaction weight into the three SLA classes the
// windowed exports are keyed by (paper weights are integers in [1, 10]).
func WeightClass(w float64) string { return classNames[weightClassIdx(w)] }

// WeightClassIndex is WeightClass as a dense index in [0, NumWeightClasses).
func WeightClassIndex(w float64) int { return int(weightClassIdx(w)) }

// ClassName returns the name of a dense weight-class index.
func ClassName(i int) string { return classNames[i] }

// weightClassIdx is WeightClass as a dense cell index.
func weightClassIdx(w float64) int8 {
	switch {
	case w < 4:
		return 0
	case w < 8:
		return 1
	default:
		return 2
	}
}

// SpanOptions configures a SpanBuilder.
type SpanOptions struct {
	// Metrics, when non-nil, receives span observations: total sketches
	// (MetricSpan*) plus, when Window > 0, tumbling-window sketches per
	// weight class and scheduler mode (WindowMetric names).
	Metrics *Registry
	// Window is the tumbling-window width in simulated time; 0 disables
	// the windowed series.
	Window float64
	// Alpha is the sketch relative accuracy (default 0.01).
	Alpha float64
	// Keep bounds the number of retained closed spans (0 = unlimited); the
	// server sets it so long replays don't grow without bound. With a Keep
	// bound, compacted-away spans recycle through a free list, so steady
	// state allocates no new Span or Segment storage.
	Keep int
	// Overhead, when non-nil, receives span-pool hit/miss self-telemetry.
	Overhead *Overhead
}

// spanState is the in-flight state machine of one open span. States live in
// a dense array indexed by transaction ID (txn.Set guarantees dense IDs), so
// tracking an open span needs no map operation and no allocation.
type spanState struct {
	span     *Span
	curStart float64
	cur      SegmentKind
	classIdx int8
	active   bool
}

// spanBatchSize is the per-sketch insert buffer length: observations
// accumulate in a fixed inline array and flush under one sketch lock when
// the buffer fills or the builder drains.
const spanBatchSize = 64

// batch is a fixed-capacity insert buffer for one sketch. Values reach the
// sketch in exact insertion order whether they leave via a full-buffer flush
// or a drain, so running sums stay bit-identical to unbatched observation.
type batch struct {
	n   int
	buf [spanBatchSize]float64
}

// push buffers v, flushing into s when the buffer fills.
func (p *batch) push(s *Sketch, v float64) {
	p.buf[p.n] = v
	p.n++
	if p.n == spanBatchSize {
		s.ObserveBatch(p.buf[:])
		p.n = 0
	}
}

// windowCell holds the three resolved sketch handles of one
// (window, class, mode) cell — interned once, so completions never rebuild
// the formatted metric names — plus their pending insert buffers.
type windowCell struct {
	tard, resp, slow *Sketch
	bT, bR, bS       batch
	dirty            bool
}

// flush drains the cell's pending buffers into their sketches.
func (c *windowCell) flush() {
	if c.bT.n > 0 {
		c.tard.ObserveBatch(c.bT.buf[:c.bT.n])
		c.bT.n = 0
	}
	if c.bR.n > 0 {
		c.resp.ObserveBatch(c.bR.buf[:c.bR.n])
		c.bR.n = 0
	}
	if c.bS.n > 0 {
		c.slow.ObserveBatch(c.bS.buf[:c.bS.n])
		c.bS.n = 0
	}
	c.dirty = false
}

// spanArenaSpans caps the preallocated span arena. Small runs get full
// coverage (every span arena-served); large runs warm the free list within
// the first spanArenaSpans opens and recycle from there, so the arena stays
// bounded no matter how far the harness scale grows.
const spanArenaSpans = 4096

// segRegionLen is the starter segment capacity carved out of the segment
// arena per arena-served span — enough for the common queued/running/
// preempted/queued shapes; busier spans spill to a heap-grown list.
const segRegionLen = 4

// cellKey identifies one windowed sketch cell by dense indices.
type cellKey struct {
	win   int32
	class int8
	mode  int8
}

// SpanBuilder folds the decision event stream into spans. It is a Sink (and
// a SharedSink); like Ring it locks internally, so the single emitting
// goroutine can run while HTTP handlers snapshot. Events must arrive in
// stream order (the order every in-repo emitter produces).
//
// Determinism: spans are a pure fold of the event stream plus the immutable
// workload set, so a fixed-seed run yields a byte-identical span stream, and
// batch flush points are a pure function of the stream too (buffer-full and
// no-open-spans drains), so registry sums stay bit-identical as well.
type SpanBuilder struct {
	mu        sync.Mutex
	set       *txn.Set
	opts      SpanOptions
	wfOf      []int32     // txn ID -> primary workflow (-1 none); immutable after construction
	modeOf    []int8      // workflow ID -> modeNames index of its current scheduler mode
	modeNames []string    // interned mode names; [0] is the "edf" default
	states    []spanState // txn ID -> open-span state machine
	openCount int
	// spanArena/segArena are preallocated backing stores sized at
	// construction: pool misses bump-allocate a Span (and a fixed starter
	// segment region) from them before falling back to the heap, so a run's
	// spans cost two arena allocations instead of one per span plus one per
	// segment-list growth.
	spanArena []Span
	arenaN    int
	segArena  []Segment
	segN      int
	global    *windowCell // run-total sketches; nil until the first completed span
	cells     map[cellKey]*windowCell
	dirty     []*windowCell // cells with buffered observations, first-dirty order
	done      []*Span
	free      []*Span // spans recycled by Keep-compaction, ready for reuse
	total     uint64
	stallAt   float64 // time of the most recent stall window entry
	hasStall  bool
}

// NewSpanBuilder returns a builder for transactions of set. The set provides
// the causal DAG (Deps/Dependents), weights and service lengths; it must be
// the same set the run executes (the runner's per-job clone is fine — spans
// only read immutable workload fields).
func NewSpanBuilder(set *txn.Set, opts SpanOptions) *SpanBuilder {
	if opts.Alpha == 0 {
		opts.Alpha = 0.01
	}
	b := &SpanBuilder{
		set:       set,
		opts:      opts,
		wfOf:      make([]int32, set.Len()),
		states:    make([]spanState, set.Len()),
		modeNames: []string{"edf", "hdf"},
		cells:     make(map[cellKey]*windowCell),
	}
	for i := range b.wfOf {
		b.wfOf[i] = -1
	}
	arena := set.Len()
	if arena > spanArenaSpans {
		arena = spanArenaSpans
	}
	b.spanArena = make([]Span, arena)
	b.segArena = make([]Segment, segRegionLen*arena)
	// Every transaction closes its span at most once (completion or shed), so
	// the done list never outgrows this capacity: n without a Keep bound, and
	// the 2×Keep+1 compaction high-water mark with one.
	capDone := set.Len()
	if opts.Keep > 0 && 2*opts.Keep+1 < capDone {
		capDone = 2*opts.Keep + 1
	}
	b.done = make([]*Span, 0, capDone)
	// Workflow membership, computed as txn.BuildWorkflows assigns it —
	// workflow i is the dependency closure of Roots()[i], and a transaction's
	// primary workflow is the lowest-ID one containing it — but as a pruned
	// DFS straight into the dense wfOf table. BuildWorkflows materializes
	// per-workflow member slices and pending maps (O(n) allocations the
	// scheduler needs and the span layer does not); the pruning is sound
	// because dependency closures are ancestor-closed: once a node is
	// claimed, every ancestor of it is already claimed too.
	roots := set.Roots()
	b.modeOf = make([]int8, len(roots))
	stack := make([]txn.ID, 0, 64)
	for i, root := range roots {
		if b.wfOf[root] >= 0 {
			continue
		}
		wf := int32(i)
		b.wfOf[root] = wf
		stack = append(stack, root)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, d := range set.Txns[cur].Deps {
				if b.wfOf[d] < 0 {
					b.wfOf[d] = wf
					stack = append(stack, d)
				}
			}
		}
	}
	return b
}

// Emit implements Sink, for callers that hold the builder behind the plain
// interface (the fault recorder's rare outage events, tests). The enabled
// fast path reaches EmitShared directly through an Emitter.
func (b *SpanBuilder) Emit(ev Event) { b.EmitShared(&ev) }

// EmitShared implements SharedSink: the event is borrowed for the duration
// of the call and everything retained is captured by copy. It is the
// observer's event path — every scheduling decision flows through here, so
// it is a hot-path root in its own right and its allocation budget is
// enforced even if interface fan-out from the simulator's root ever fails
// to reach it.
//
//lint:hotpath
func (b *SpanBuilder) EmitShared(ev *Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.emitLocked(ev)
}

// EmitSharedBatch implements BatchSink: the whole batch is folded under one
// lock acquisition, in slice order — the same fold as event-at-a-time
// emission, so batched delivery cannot change any span.
//
//lint:hotpath
func (b *SpanBuilder) EmitSharedBatch(evs []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range evs {
		b.emitLocked(&evs[i])
	}
}

// emitLocked folds one event into the span state machines. Callers hold b.mu.
func (b *SpanBuilder) emitLocked(ev *Event) {
	switch ev.Kind {
	case KindArrival:
		b.openSpan(ev)
	case KindDispatch:
		if st := b.stateOf(ev.Txn); st != nil && st.cur != SegRunning {
			b.closeSeg(st, ev.Time)
			st.cur = SegRunning
		}
	case KindPreempt:
		// Only a running transaction can be preempted; a preempt for a
		// queued one is the scheduler re-learning about a restarted or
		// crash-lost transaction, which changes no segment.
		if st := b.stateOf(ev.Txn); st != nil && st.cur == SegRunning {
			b.closeSeg(st, ev.Time)
			if b.hasStall && b.stallAt == ev.Time {
				// The outage window opening at this exact instant is what
				// evicted the transaction.
				st.cur = SegStalled
			} else {
				st.cur = SegPreempted
				st.span.Preempts++
			}
		}
	case KindCompletion:
		if st := b.stateOf(ev.Txn); st != nil {
			b.closeSeg(st, ev.Time)
			b.finalize(st, ev)
		}
	case KindAbort:
		if st := b.stateOf(ev.Txn); st != nil && st.cur == SegRunning {
			b.closeSeg(st, ev.Time)
			if ev.Detail == "crash" {
				// In-flight work destroyed by a crash window: the wait is
				// the outage's fault, and the re-queue happens via the
				// no-op preempt that follows.
				st.cur = SegStalled
			} else {
				st.cur = SegBackoff
			}
		}
	case KindRestart:
		if st := b.stateOf(ev.Txn); st != nil && st.cur == SegBackoff {
			b.closeSeg(st, ev.Time)
			st.cur = SegQueued
			st.span.Restarts++
		}
	case KindStall:
		b.stallAt, b.hasStall = ev.Time, true
	case KindShed:
		st := b.stateOf(ev.Txn)
		if st == nil {
			b.openSpan(ev)
			if st = b.stateOf(ev.Txn); st == nil {
				break
			}
		}
		b.closeSeg(st, ev.Time)
		st.span.Shed = true
		b.finalize(st, ev)
	case KindModeSwitch:
		if i := strings.Index(ev.Detail, "->"); i >= 0 && ev.Workflow >= 0 && ev.Workflow < len(b.modeOf) {
			b.modeOf[ev.Workflow] = b.internMode(ev.Detail[i+2:])
		}
	case KindFailover:
		// The transaction lost its place on a crashed instance and is being
		// re-enqueued elsewhere (or dropped): whatever segment it was in ends
		// and it waits in the new instance's queue. It cannot be running —
		// the crash's abort event already evicted it.
		if st := b.stateOf(ev.Txn); st != nil && st.cur != SegRunning {
			b.closeSeg(st, ev.Time)
			st.cur = SegQueued
		}
	case KindValidateFail:
		// Commit-time validation failed: the run segment ends and the
		// rewound transaction waits for a fresh incarnation. Counted as a
		// restart — like an abort/restart pair, the transaction starts
		// over — but with no backoff segment (re-queue is immediate).
		if st := b.stateOf(ev.Txn); st != nil && st.cur == SegRunning {
			b.closeSeg(st, ev.Time)
			st.cur = SegQueued
			st.span.Restarts++
		}
	case KindDeadlineMiss, KindAging, KindDegradeEnter, KindDegradeExit,
		KindRoute, KindEject, KindRecover, KindConflictDefer,
		KindAlertFire, KindAlertResolve:
		// No segment transitions: misses ride the completion event's
		// tardiness, aging precedes an ordinary dispatch, degradation is a
		// controller-level state, route precedes the arrival that opens the
		// span, eject/recover are instance-level breaker transitions, a
		// conflict-deferred transaction simply stays queued, and SLO alerts
		// are window-boundary rule transitions with no transaction subject.
	default:
		panic(fmt.Sprintf("obs: span builder: unknown event kind %d", int(ev.Kind)))
	}
}

// stateOf returns the open-span state of id, nil when id is out of range or
// has no open span.
func (b *SpanBuilder) stateOf(id txn.ID) *spanState {
	if id < 0 || int(id) >= len(b.states) {
		return nil
	}
	if st := &b.states[id]; st.active {
		return st
	}
	return nil
}

// internMode maps a scheduler mode name to its dense index, growing the
// interning table on first sight of a new name. The scan is over the tiny
// interned set ("edf", "hdf" in every in-repo policy).
//
//lint:coldpath mode names are interned once per distinct name, not per event
func (b *SpanBuilder) internMode(m string) int8 {
	for i, s := range b.modeNames {
		if s == m {
			return int8(i)
		}
	}
	b.modeNames = append(b.modeNames, strings.Clone(m))
	return int8(len(b.modeNames) - 1)
}

// openSpan starts a span at ev (an arrival, or a shed of a transaction that
// never reached the scheduler), reusing a free-listed span when one is
// available. Events for IDs outside the workload set are ignored.
func (b *SpanBuilder) openSpan(ev *Event) {
	if ev.Txn < 0 || int(ev.Txn) >= len(b.states) {
		return
	}
	st := &b.states[ev.Txn]
	if st.active {
		return
	}
	var sp *Span
	if n := len(b.free); n > 0 {
		sp = b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		segs := sp.Segments[:0] // keep the warmed backing array
		*sp = Span{Segments: segs}
		if ov := b.opts.Overhead; ov != nil {
			ov.CountPoolHit()
		}
	} else if b.arenaN < len(b.spanArena) {
		// Arena-served: no heap allocation, so this counts as a pool hit in
		// the self-telemetry. The three-index slice caps the starter region,
		// so growth past it reallocates instead of clobbering the neighbor.
		sp = &b.spanArena[b.arenaN]
		b.arenaN++
		sp.Segments = b.segArena[b.segN : b.segN : b.segN+segRegionLen]
		b.segN += segRegionLen
		if ov := b.opts.Overhead; ov != nil {
			ov.CountPoolHit()
		}
	} else {
		//lint:ignore hotpath-alloc pool miss: one Span beyond the free list's and arena's reach; BENCH_scale budgets the steady-state rate
		sp = &Span{}
		if ov := b.opts.Overhead; ov != nil {
			ov.CountPoolMiss()
		}
	}
	sp.Txn = ev.Txn
	sp.Workflow = -1
	sp.Arrival = ev.Time
	sp.Deadline = ev.Deadline
	st.classIdx = 0
	if wf := b.wfOf[ev.Txn]; wf >= 0 {
		sp.Workflow = int(wf)
	}
	if t := b.set.ByID(ev.Txn); t != nil {
		sp.Weight = t.Weight
		st.classIdx = weightClassIdx(t.Weight)
		// Parents/Children alias the immutable workload DAG slices; the set
		// is read-only for the duration of a run and spans treat the links
		// as read-only too, so no defensive clone is needed.
		sp.Parents = t.Deps
		if int(ev.Txn) < len(b.set.Dependents) {
			sp.Children = b.set.Dependents[ev.Txn]
		}
	}
	sp.Class = classNames[st.classIdx]
	sp.Mode = b.modeNames[0]
	st.span = sp
	st.cur = SegQueued
	st.curStart = ev.Time
	st.active = true
	b.openCount++
}

// closeSeg ends the current segment at t, dropping zero-length segments
// (same-instant transitions like an arrival dispatched immediately).
func (b *SpanBuilder) closeSeg(st *spanState, t float64) {
	if t > st.curStart {
		//lint:ignore hotpath-alloc segments append into the span's recycled backing array; growth past warmed capacity is the span's payload
		st.span.Segments = append(st.span.Segments, Segment{Kind: st.cur, Start: st.curStart, End: t})
	}
	st.curStart = t
}

// finalize closes the span at a completion or shed event: computes the
// attribution fold, derived fields and batched sketch observations, and
// moves the span to the done list. When the builder drains (no spans left
// open — true at the end of every run), pending sketch batches flush.
func (b *SpanBuilder) finalize(st *spanState, ev *Event) {
	sp := st.span
	sp.Finish = ev.Time
	modeIdx := int8(0)
	if wf := sp.Workflow; wf >= 0 && wf < len(b.modeOf) {
		modeIdx = b.modeOf[wf]
	}
	sp.Mode = b.modeNames[modeIdx]
	// The attribution is the time-order per-category fold of segment
	// durations, and Response is the category-order sum of the attribution.
	// Both are pure functions of the segment list, so re-deriving either
	// from the serialized segments reproduces them bit for bit.
	for _, seg := range sp.Segments {
		d := seg.End - seg.Start
		switch seg.Kind {
		case SegQueued:
			sp.Attr.Queued += d
		case SegRunning:
			sp.Attr.Service += d
		case SegPreempted:
			sp.Attr.Preempted += d
		case SegStalled:
			sp.Attr.Stalled += d
		case SegBackoff:
			sp.Attr.Backoff += d
		default:
			panic(fmt.Sprintf("obs: span builder: unknown segment kind %d", int(seg.Kind)))
		}
	}
	sp.Response = sp.Attr.Sum()
	if !sp.Shed {
		sp.Completed = true
		sp.Tardiness = ev.Tardiness
		if t := b.set.ByID(sp.Txn); t != nil && t.Length > 0 {
			sp.Slowdown = sp.Response / t.Length
		}
		b.observe(sp, st.classIdx, modeIdx)
	}
	st.active = false
	st.span = nil
	b.openCount--
	//lint:ignore hotpath-alloc completed spans are retained (bounded by Keep) by design
	b.done = append(b.done, sp)
	b.total++
	if b.opts.Keep > 0 && len(b.done) > 2*b.opts.Keep {
		b.compact()
	}
	if b.openCount == 0 {
		b.flushLocked()
	}
}

// compact drops the oldest spans once the done list exceeds 2×Keep,
// recycling them into the free list and sliding the retained tail to the
// front in place. Amortized: runs once per Keep completions, and the free
// list is bounded by the spans in flight between compactions.
func (b *SpanBuilder) compact() {
	cut := len(b.done) - b.opts.Keep
	//lint:ignore hotpath-alloc free-list growth is bounded by Keep and amortized by the 2×Keep compaction trigger
	b.free = append(b.free, b.done[:cut]...)
	n := copy(b.done, b.done[cut:])
	for i := n; i < len(b.done); i++ {
		b.done[i] = nil
	}
	b.done = b.done[:n]
}

// observe feeds one completed span into the batched registry sketches. The
// cell lookup is a dense-index map access — no formatted names, no string
// hashing on the completion path.
func (b *SpanBuilder) observe(sp *Span, class, mode int8) {
	if b.opts.Metrics == nil {
		return
	}
	if b.global == nil {
		b.initGlobal()
	}
	g := b.global
	g.bT.push(g.tard, sp.Tardiness)
	g.bR.push(g.resp, sp.Response)
	g.bS.push(g.slow, sp.Slowdown)
	b.markDirty(g)
	if b.opts.Window <= 0 {
		return
	}
	key := cellKey{win: int32(sp.Finish / b.opts.Window), class: class, mode: mode}
	c := b.cells[key]
	if c == nil {
		c = b.newCell(int(key.win), classNames[class], b.modeNames[mode])
		b.cells[key] = c
	}
	c.bT.push(c.tard, sp.Tardiness)
	c.bR.push(c.resp, sp.Response)
	c.bS.push(c.slow, sp.Slowdown)
	b.markDirty(c)
}

// markDirty queues a cell for the next drain flush.
func (b *SpanBuilder) markDirty(c *windowCell) {
	if !c.dirty {
		c.dirty = true
		//lint:ignore hotpath-alloc the dirty work list grows to the cells touched per drain, then is reused via [:0]
		b.dirty = append(b.dirty, c)
	}
}

// initGlobal resolves the run-total sketch handles — lazily, at the first
// completed span, so a builder that never observes anything registers no
// metrics (the pre-batching contract).
//
//lint:coldpath run-total sketch registration happens once per run
func (b *SpanBuilder) initGlobal() {
	reg, alpha := b.opts.Metrics, b.opts.Alpha
	b.global = &windowCell{
		tard: reg.Sketch(MetricSpanTardiness, "per-span tardiness quantile sketch", alpha),
		resp: reg.Sketch(MetricSpanResponse, "per-span response time quantile sketch", alpha),
		slow: reg.Sketch(MetricSpanSlowdown, "per-span slowdown quantile sketch", alpha),
	}
}

// newCell registers the three sketches of one windowed cell. The fmt-built
// label names live only here, once per cell — completions reach their cell
// through the interned cellKey index.
//
//lint:coldpath window-cell registration happens once per (window, class, mode) cell, not per completion
func (b *SpanBuilder) newCell(win int, class, mode string) *windowCell {
	reg, alpha := b.opts.Metrics, b.opts.Alpha
	return &windowCell{
		tard: reg.Sketch(WindowMetric("tardiness", win, class, mode),
			"windowed tardiness quantile sketch", alpha),
		resp: reg.Sketch(WindowMetric("response", win, class, mode),
			"windowed response time quantile sketch", alpha),
		slow: reg.Sketch(WindowMetric("slowdown", win, class, mode),
			"windowed slowdown quantile sketch", alpha),
	}
}

// flushLocked drains every dirty cell's pending buffers into the sketches.
// Drains happen whenever no span is open — which includes the end of every
// run, since each transaction completes or is shed — so registry snapshots
// taken after a run always see every observation. Callers hold b.mu.
func (b *SpanBuilder) flushLocked() {
	for i, c := range b.dirty {
		c.flush()
		b.dirty[i] = nil
	}
	b.dirty = b.dirty[:0]
}

// Flush drains any pending batched sketch observations. The server calls it
// before serving /metrics so mid-run scrapes see up-to-the-event windowed
// percentiles; it is safe to call concurrently with emission.
func (b *SpanBuilder) Flush() {
	b.mu.Lock()
	b.flushLocked()
	b.mu.Unlock()
}

// Spans returns the retained closed spans in close order (completion or shed
// instant). The returned slice is fresh; the spans are shared and must be
// treated as read-only. With a Keep bound, further emissions may recycle
// compacted-away spans, so Spans is intended for post-run (quiescent) use —
// concurrent readers should use Snapshot, which deep-copies.
func (b *SpanBuilder) Spans() []*Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*Span(nil), b.done...)
}

// Snapshot returns up to limit closed spans, newest first, as value copies
// with deep-copied segment lists — safe to hold while emission continues and
// recycles pooled spans. The backing store of the server's /api/spans
// endpoint. limit <= 0 means every retained span.
func (b *SpanBuilder) Snapshot(limit int) []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.done)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Span, 0, limit)
	for i := 0; i < limit; i++ {
		sp := *b.done[n-1-i]
		sp.Segments = append([]Segment(nil), sp.Segments...)
		out = append(out, sp)
	}
	return out
}

// Total returns the number of spans ever closed (not just retained).
func (b *SpanBuilder) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// RetainedBytes estimates the memory the builder pins: retained and
// free-listed spans with their segment arrays, the dense per-transaction
// state table, and the window-cell index. Cold; called at scrape time.
func (b *SpanBuilder) RetainedBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	spanSize := int(unsafe.Sizeof(Span{}))
	segSize := int(unsafe.Sizeof(Segment{}))
	total := len(b.states) * int(unsafe.Sizeof(spanState{}))
	for _, sp := range b.done {
		total += spanSize + cap(sp.Segments)*segSize
	}
	for _, sp := range b.free {
		total += spanSize + cap(sp.Segments)*segSize
	}
	total += len(b.cells) * int(unsafe.Sizeof(windowCell{}))
	// Arena capacity not yet handed out (handed-out regions are already
	// counted through the done/free spans that own them).
	total += (len(b.spanArena) - b.arenaN) * spanSize
	total += (len(b.segArena) - b.segN) * segSize
	return total
}
