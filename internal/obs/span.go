package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/txn"
)

// This file builds per-transaction causal spans out of the flat decision
// event stream: a SpanBuilder is a Sink that folds
// arrival/dispatch/preempt/completion/abort/restart/stall/shed events into
// one Span per transaction, with typed segments tiling the transaction's
// lifetime, parent/child links from the workflow DAG, and a tardiness
// attribution that sums bit-exactly to the span's response time (see the
// Attribution invariant below and docs/OBSERVABILITY.md).

// SegmentKind classifies one stretch of a transaction's lifetime.
type SegmentKind int

const (
	// SegQueued — waiting in the ready queue for its first (or a
	// post-restart) dispatch.
	SegQueued SegmentKind = iota
	// SegRunning — checked out to a server, receiving service.
	SegRunning
	// SegPreempted — set aside unfinished by a scheduling decision, waiting
	// to be re-dispatched.
	SegPreempted
	// SegStalled — waiting out a backend stall/crash outage window.
	SegStalled
	// SegBackoff — aborted, waiting for its retry instant.
	SegBackoff
)

// String returns the stable wire name of the segment kind.
func (k SegmentKind) String() string {
	switch k {
	case SegQueued:
		return "queued"
	case SegRunning:
		return "running"
	case SegPreempted:
		return "preempted"
	case SegStalled:
		return "stalled"
	case SegBackoff:
		return "backoff"
	default:
		panic(fmt.Sprintf("obs: unknown segment kind %d", int(k)))
	}
}

// Segment is one typed stretch of a span. Segments tile [Arrival, Finish]:
// each segment's End is the exact float the next segment's Start holds.
type Segment struct {
	Kind  SegmentKind
	Start float64
	End   float64
}

// Attribution breaks a completed span's response time down by cause: time
// spent waiting for first service (Queued), receiving service (Service),
// waiting after a preemption (Preempted), waiting out outage windows
// (Stalled) and waiting out abort backoffs (Backoff). Each category is the
// time-order fold of its segments' durations, so the breakdown is a pure
// function of the segment list.
type Attribution struct {
	Queued    float64
	Service   float64
	Preempted float64
	Stalled   float64
	Backoff   float64
}

// Sum adds the categories in their fixed declaration order. Span.Response is
// defined as exactly this fold, which is what makes the "attribution sums to
// response time" invariant bit-exact rather than merely approximate: float
// addition is not associative, so the definition pins one association.
func (a Attribution) Sum() float64 {
	return a.Queued + a.Service + a.Preempted + a.Stalled + a.Backoff
}

// Span is the lifecycle record of one transaction, folded from the decision
// event stream.
type Span struct {
	// Txn identifies the transaction; Workflow is its primary scheduling
	// entity (the lowest-ID workflow containing it), -1 when unknown.
	Txn      txn.ID
	Workflow int
	// Parents are the transaction's direct dependencies; Children the
	// transactions that directly depend on it (the causal DAG edges).
	Parents  []txn.ID
	Children []txn.ID
	// Weight is w_i; Class its weight class (light/medium/heavy); Mode the
	// scheduler mode ("edf" or "hdf") of the primary workflow at completion.
	Weight float64
	Class  string
	Mode   string
	// Arrival, Finish and Deadline are simulated-time instants; Finish is
	// the shed instant for shed spans.
	Arrival  float64
	Finish   float64
	Deadline float64
	// Response is the attribution fold (see Attribution.Sum); Tardiness the
	// completion event's tardiness; Slowdown Response over service length.
	Response  float64
	Tardiness float64
	Slowdown  float64
	// Restarts counts post-abort re-queues, Preempts scheduling
	// preemptions (crash losses count as restarts, not preemptions).
	Restarts int
	Preempts int
	// Shed marks an admission rejection; Completed a finished transaction.
	Shed      bool
	Completed bool
	Segments  []Segment
	Attr      Attribution
}

// MarshalJSON renders the span as one flat JSON object with a fixed field
// order and shortest round-trip floats, so serialized span streams are
// byte-stable across runs (the same contract as Event.MarshalJSON).
func (s Span) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 512)
	b = append(b, `{"txn":`...)
	b = strconv.AppendInt(b, int64(s.Txn), 10)
	b = append(b, `,"wf":`...)
	b = strconv.AppendInt(b, int64(s.Workflow), 10)
	b = append(b, `,"class":`...)
	b = strconv.AppendQuote(b, s.Class)
	b = append(b, `,"mode":`...)
	b = strconv.AppendQuote(b, s.Mode)
	b = append(b, `,"weight":`...)
	b = strconv.AppendFloat(b, s.Weight, 'g', -1, 64)
	b = append(b, `,"arrival":`...)
	b = strconv.AppendFloat(b, s.Arrival, 'g', -1, 64)
	b = append(b, `,"finish":`...)
	b = strconv.AppendFloat(b, s.Finish, 'g', -1, 64)
	b = append(b, `,"deadline":`...)
	b = strconv.AppendFloat(b, s.Deadline, 'g', -1, 64)
	b = append(b, `,"response":`...)
	b = strconv.AppendFloat(b, s.Response, 'g', -1, 64)
	b = append(b, `,"tardiness":`...)
	b = strconv.AppendFloat(b, s.Tardiness, 'g', -1, 64)
	b = append(b, `,"slowdown":`...)
	b = strconv.AppendFloat(b, s.Slowdown, 'g', -1, 64)
	b = append(b, `,"restarts":`...)
	b = strconv.AppendInt(b, int64(s.Restarts), 10)
	b = append(b, `,"preempts":`...)
	b = strconv.AppendInt(b, int64(s.Preempts), 10)
	b = append(b, `,"shed":`...)
	b = strconv.AppendBool(b, s.Shed)
	b = append(b, `,"completed":`...)
	b = strconv.AppendBool(b, s.Completed)
	b = append(b, `,"parents":`...)
	b = appendIDs(b, s.Parents)
	b = append(b, `,"children":`...)
	b = appendIDs(b, s.Children)
	b = append(b, `,"segments":[`...)
	for i, seg := range s.Segments {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"kind":"`...)
		b = append(b, seg.Kind.String()...)
		b = append(b, `","start":`...)
		b = strconv.AppendFloat(b, seg.Start, 'g', -1, 64)
		b = append(b, `,"end":`...)
		b = strconv.AppendFloat(b, seg.End, 'g', -1, 64)
		b = append(b, '}')
	}
	b = append(b, `],"attr":{"queued":`...)
	b = strconv.AppendFloat(b, s.Attr.Queued, 'g', -1, 64)
	b = append(b, `,"service":`...)
	b = strconv.AppendFloat(b, s.Attr.Service, 'g', -1, 64)
	b = append(b, `,"preempted":`...)
	b = strconv.AppendFloat(b, s.Attr.Preempted, 'g', -1, 64)
	b = append(b, `,"stalled":`...)
	b = strconv.AppendFloat(b, s.Attr.Stalled, 'g', -1, 64)
	b = append(b, `,"backoff":`...)
	b = strconv.AppendFloat(b, s.Attr.Backoff, 'g', -1, 64)
	b = append(b, `}}`...)
	return b, nil
}

func appendIDs(b []byte, ids []txn.ID) []byte {
	b = append(b, '[')
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return append(b, ']')
}

// WriteSpans serializes spans as JSON Lines in the given order.
func WriteSpans(w io.Writer, spans []*Span) error {
	for _, s := range spans {
		b, err := s.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Metric names of the span layer. The windowed series carry a Prometheus
// label set inside the registered name — see WindowMetric.
const (
	MetricSpanTardiness = "asets_span_tardiness"
	MetricSpanResponse  = "asets_span_response"
	MetricSpanSlowdown  = "asets_span_slowdown"
)

// WindowMetric returns the registered name of a windowed sketch cell, e.g.
// `asets_window_tardiness{window="0003",class="heavy",mode="edf"}`. The
// window index is zero-padded so registry name sorting orders cells by time.
func WindowMetric(kind string, window int, class, mode string) string {
	//lint:ignore hotpath-alloc cell names are formatted once per completion; the registry lookup they key dominates
	return fmt.Sprintf("asets_window_%s{window=%q,class=%q,mode=%q}",
		kind, fmt.Sprintf("%04d", window), class, mode)
}

// WeightClass buckets a transaction weight into the three SLA classes the
// windowed exports are keyed by (paper weights are integers in [1, 10]).
func WeightClass(w float64) string {
	switch {
	case w < 4:
		return "light"
	case w < 8:
		return "medium"
	default:
		return "heavy"
	}
}

// SpanOptions configures a SpanBuilder.
type SpanOptions struct {
	// Metrics, when non-nil, receives span observations: total sketches
	// (MetricSpan*) plus, when Window > 0, tumbling-window sketches per
	// weight class and scheduler mode (WindowMetric names).
	Metrics *Registry
	// Window is the tumbling-window width in simulated time; 0 disables
	// the windowed series.
	Window float64
	// Alpha is the sketch relative accuracy (default 0.01).
	Alpha float64
	// Keep bounds the number of retained closed spans (0 = unlimited); the
	// server sets it so long replays don't grow without bound.
	Keep int
}

// spanState is the in-flight state machine of one open span.
type spanState struct {
	span     *Span
	cur      SegmentKind
	curStart float64
}

// SpanBuilder folds the decision event stream into spans. It is a Sink; like
// Ring it locks internally, so the single emitting goroutine can run while
// HTTP handlers snapshot. Events must arrive in stream order (the order
// every in-repo emitter produces).
//
// Determinism: spans are a pure fold of the event stream plus the immutable
// workload set, so a fixed-seed run yields a byte-identical span stream.
type SpanBuilder struct {
	mu       sync.Mutex
	set      *txn.Set
	opts     SpanOptions
	wfOf     map[txn.ID]int
	mode     map[int]string
	open     map[txn.ID]*spanState
	done     []*Span
	total    uint64
	stallAt  float64 // time of the most recent stall window entry
	hasStall bool
}

// NewSpanBuilder returns a builder for transactions of set. The set provides
// the causal DAG (Deps/Dependents), weights and service lengths; it must be
// the same set the run executes (the runner's per-job clone is fine — spans
// only read immutable workload fields).
func NewSpanBuilder(set *txn.Set, opts SpanOptions) *SpanBuilder {
	if opts.Alpha == 0 {
		opts.Alpha = 0.01
	}
	b := &SpanBuilder{
		set:  set,
		opts: opts,
		wfOf: make(map[txn.ID]int, set.Len()),
		mode: make(map[int]string),
		open: make(map[txn.ID]*spanState),
	}
	for _, wf := range txn.BuildWorkflows(set) {
		for _, id := range wf.Members {
			if _, taken := b.wfOf[id]; !taken {
				b.wfOf[id] = wf.ID
			}
		}
	}
	return b
}

// Emit implements Sink. It is the observer's event path: every scheduling
// decision flows through here, so it is a hot-path root in its own right —
// the allocation budget below is enforced even if interface fan-out from the
// simulator's root ever fails to reach it.
//
//lint:hotpath
func (b *SpanBuilder) Emit(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch ev.Kind {
	case KindArrival:
		b.openSpan(ev)
	case KindDispatch:
		if st, ok := b.open[ev.Txn]; ok && st.cur != SegRunning {
			b.closeSeg(st, ev.Time)
			st.cur = SegRunning
		}
	case KindPreempt:
		// Only a running transaction can be preempted; a preempt for a
		// queued one is the scheduler re-learning about a restarted or
		// crash-lost transaction, which changes no segment.
		if st, ok := b.open[ev.Txn]; ok && st.cur == SegRunning {
			b.closeSeg(st, ev.Time)
			if b.hasStall && b.stallAt == ev.Time {
				// The outage window opening at this exact instant is what
				// evicted the transaction.
				st.cur = SegStalled
			} else {
				st.cur = SegPreempted
				st.span.Preempts++
			}
		}
	case KindCompletion:
		if st, ok := b.open[ev.Txn]; ok {
			b.closeSeg(st, ev.Time)
			b.finalize(st, ev)
		}
	case KindAbort:
		if st, ok := b.open[ev.Txn]; ok && st.cur == SegRunning {
			b.closeSeg(st, ev.Time)
			if ev.Detail == "crash" {
				// In-flight work destroyed by a crash window: the wait is
				// the outage's fault, and the re-queue happens via the
				// no-op preempt that follows.
				st.cur = SegStalled
			} else {
				st.cur = SegBackoff
			}
		}
	case KindRestart:
		if st, ok := b.open[ev.Txn]; ok && st.cur == SegBackoff {
			b.closeSeg(st, ev.Time)
			st.cur = SegQueued
			st.span.Restarts++
		}
	case KindStall:
		b.stallAt, b.hasStall = ev.Time, true
	case KindShed:
		st, ok := b.open[ev.Txn]
		if !ok {
			b.openSpan(ev)
			st = b.open[ev.Txn]
		}
		b.closeSeg(st, ev.Time)
		st.span.Shed = true
		b.finalize(st, ev)
	case KindModeSwitch:
		if i := strings.Index(ev.Detail, "->"); i >= 0 && ev.Workflow >= 0 {
			b.mode[ev.Workflow] = ev.Detail[i+2:]
		}
	case KindDeadlineMiss, KindAging, KindDegradeEnter, KindDegradeExit:
		// No segment transitions: misses ride the completion event's
		// tardiness, aging precedes an ordinary dispatch, and degradation
		// is a controller-level state.
	default:
		panic(fmt.Sprintf("obs: span builder: unknown event kind %d", int(ev.Kind)))
	}
}

// openSpan starts a span at ev (an arrival, or a shed of a transaction that
// never reached the scheduler).
func (b *SpanBuilder) openSpan(ev Event) {
	if _, dup := b.open[ev.Txn]; dup {
		return
	}
	//lint:ignore hotpath-alloc one Span per transaction is the observer's product; BENCH_span quantifies the cost
	sp := &Span{
		Txn: ev.Txn, Workflow: -1,
		Arrival: ev.Time, Deadline: ev.Deadline,
		Class: "light", Mode: "edf",
	}
	if wf, ok := b.wfOf[ev.Txn]; ok {
		sp.Workflow = wf
	}
	if t := b.set.ByID(ev.Txn); t != nil {
		sp.Weight = t.Weight
		sp.Class = WeightClass(t.Weight)
		//lint:ignore hotpath-alloc defensive clone of the immutable dependency list, once per transaction
		sp.Parents = append([]txn.ID(nil), t.Deps...)
		if int(ev.Txn) < len(b.set.Dependents) {
			//lint:ignore hotpath-alloc defensive clone of the immutable dependents list, once per transaction
			sp.Children = append([]txn.ID(nil), b.set.Dependents[ev.Txn]...)
		}
	}
	//lint:ignore hotpath-alloc one tracking record per open transaction is the span builder's working set
	b.open[ev.Txn] = &spanState{span: sp, cur: SegQueued, curStart: ev.Time}
}

// closeSeg ends the current segment at t, dropping zero-length segments
// (same-instant transitions like an arrival dispatched immediately).
func (b *SpanBuilder) closeSeg(st *spanState, t float64) {
	if t > st.curStart {
		//lint:ignore hotpath-alloc segments accumulate per transaction by design; they are the span's payload
		st.span.Segments = append(st.span.Segments, Segment{Kind: st.cur, Start: st.curStart, End: t})
	}
	st.curStart = t
}

// finalize closes the span at a completion or shed event: computes the
// attribution fold, derived fields and sketch observations, and moves the
// span to the done list.
func (b *SpanBuilder) finalize(st *spanState, ev Event) {
	sp := st.span
	sp.Finish = ev.Time
	if m, ok := b.mode[sp.Workflow]; ok {
		sp.Mode = m
	}
	// The attribution is the time-order per-category fold of segment
	// durations, and Response is the category-order sum of the attribution.
	// Both are pure functions of the segment list, so re-deriving either
	// from the serialized segments reproduces them bit for bit.
	for _, seg := range sp.Segments {
		d := seg.End - seg.Start
		switch seg.Kind {
		case SegQueued:
			sp.Attr.Queued += d
		case SegRunning:
			sp.Attr.Service += d
		case SegPreempted:
			sp.Attr.Preempted += d
		case SegStalled:
			sp.Attr.Stalled += d
		case SegBackoff:
			sp.Attr.Backoff += d
		default:
			panic(fmt.Sprintf("obs: span builder: unknown segment kind %d", int(seg.Kind)))
		}
	}
	sp.Response = sp.Attr.Sum()
	if !sp.Shed {
		sp.Completed = true
		sp.Tardiness = ev.Tardiness
		if t := b.set.ByID(sp.Txn); t != nil && t.Length > 0 {
			sp.Slowdown = sp.Response / t.Length
		}
		b.observe(sp)
	}
	delete(b.open, sp.Txn)
	//lint:ignore hotpath-alloc completed spans are retained (bounded by Keep) by design
	b.done = append(b.done, sp)
	b.total++
	if b.opts.Keep > 0 && len(b.done) > 2*b.opts.Keep {
		//lint:ignore hotpath-alloc periodic compaction copies the retained tail, amortized by the 2×Keep trigger
		b.done = append(b.done[:0:0], b.done[len(b.done)-b.opts.Keep:]...)
	}
}

// observe feeds one completed span into the registry sketches.
func (b *SpanBuilder) observe(sp *Span) {
	reg := b.opts.Metrics
	if reg == nil {
		return
	}
	alpha := b.opts.Alpha
	reg.Sketch(MetricSpanTardiness, "per-span tardiness quantile sketch", alpha).Observe(sp.Tardiness)
	reg.Sketch(MetricSpanResponse, "per-span response time quantile sketch", alpha).Observe(sp.Response)
	reg.Sketch(MetricSpanSlowdown, "per-span slowdown quantile sketch", alpha).Observe(sp.Slowdown)
	if b.opts.Window <= 0 {
		return
	}
	win := int(sp.Finish / b.opts.Window)
	reg.Sketch(WindowMetric("tardiness", win, sp.Class, sp.Mode),
		"windowed tardiness quantile sketch", alpha).Observe(sp.Tardiness)
	reg.Sketch(WindowMetric("response", win, sp.Class, sp.Mode),
		"windowed response time quantile sketch", alpha).Observe(sp.Response)
	reg.Sketch(WindowMetric("slowdown", win, sp.Class, sp.Mode),
		"windowed slowdown quantile sketch", alpha).Observe(sp.Slowdown)
}

// Spans returns the retained closed spans in close order (completion or shed
// instant). The returned slice is fresh; the spans are shared and must be
// treated as read-only.
func (b *SpanBuilder) Spans() []*Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*Span(nil), b.done...)
}

// Snapshot returns up to limit closed spans, newest first, as value copies —
// the backing store of the server's /api/spans endpoint. limit <= 0 means
// every retained span.
func (b *SpanBuilder) Snapshot(limit int) []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.done)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Span, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, *b.done[n-1-i])
	}
	return out
}

// Total returns the number of spans ever closed (not just retained).
func (b *SpanBuilder) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}
