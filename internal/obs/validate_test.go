package obs

import (
	"strings"
	"testing"
)

func TestValidateAcceptsWellFormedStream(t *testing.T) {
	evs := []Event{
		{Time: 0, Kind: KindArrival, Txn: 0},
		{Time: 0, Kind: KindDispatch, Txn: 0},
		{Time: 1, Kind: KindStall, Txn: -1, Detail: "stall"},
		{Time: 1, Kind: KindPreempt, Txn: 0},
		{Time: 2, Kind: KindDispatch, Txn: 0},
		{Time: 3, Kind: KindAbort, Txn: 0, Detail: "abort"},
		{Time: 5, Kind: KindRestart, Txn: 0},
		{Time: 5, Kind: KindPreempt, Txn: 0},
		{Time: 6, Kind: KindDispatch, Txn: 0},
		{Time: 9, Kind: KindCompletion, Txn: 0, Tardiness: 2},
		{Time: 9, Kind: KindDeadlineMiss, Txn: 0, Tardiness: 2},
		{Time: 10, Kind: KindShed, Txn: 1, Detail: "queue"},
	}
	if err := Validate(evs); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{"completion without arrival",
			[]Event{{Time: 1, Kind: KindCompletion, Txn: 0}},
			"without a matching arrival"},
		{"completion without dispatch",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 1, Kind: KindCompletion, Txn: 0},
			},
			"without any dispatch"},
		{"dispatch after completion",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 0, Kind: KindDispatch, Txn: 0},
				{Time: 1, Kind: KindCompletion, Txn: 0},
				{Time: 2, Kind: KindDispatch, Txn: 0},
			},
			"dispatch after completion"},
		{"deadline_miss without completion",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 1, Kind: KindDeadlineMiss, Txn: 0, Tardiness: 1},
			},
			"deadline_miss without completion"},
		{"deadline_miss on time",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 0, Kind: KindDispatch, Txn: 0},
				{Time: 1, Kind: KindCompletion, Txn: 0},
				{Time: 1, Kind: KindDeadlineMiss, Txn: 0},
			},
			"on-time completion"},
		{"duplicate arrival",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 1, Kind: KindArrival, Txn: 0},
			},
			"duplicate arrival"},
		{"duplicate completion",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 0, Kind: KindDispatch, Txn: 0},
				{Time: 1, Kind: KindCompletion, Txn: 0},
				{Time: 2, Kind: KindCompletion, Txn: 0},
			},
			"duplicate completion"},
		{"restart without abort",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 1, Kind: KindRestart, Txn: 0},
			},
			"restart without a pending abort"},
		{"dispatch of shed transaction",
			[]Event{
				{Time: 0, Kind: KindShed, Txn: 0, Detail: "queue"},
				{Time: 1, Kind: KindDispatch, Txn: 0},
			},
			"before arrival"},
		{"shed after arrival",
			[]Event{
				{Time: 0, Kind: KindArrival, Txn: 0},
				{Time: 1, Kind: KindShed, Txn: 0, Detail: "queue"},
			},
			"shed after arrival"},
		{"time went backwards",
			[]Event{
				{Time: 2, Kind: KindArrival, Txn: 0},
				{Time: 1, Kind: KindArrival, Txn: 1},
			},
			"time went backwards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.evs)
			if err == nil {
				t.Fatal("violation accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
