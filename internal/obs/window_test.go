package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/txn"
)

// TestWindowMetricEscapesLabels: class and mode strings containing `"`, `}`
// or newlines must not corrupt the registered metric name — the label values
// are escaped per the Prometheus exposition rules before splicing.
func TestWindowMetricEscapesLabels(t *testing.T) {
	got := WindowMetric("tardiness", 3, `he"vy}`, "ed\nf")
	if strings.ContainsAny(got, "\n") {
		t.Fatalf("raw newline survived into metric name: %q", got)
	}
	if !strings.Contains(got, `class="he\"vy}"`) {
		t.Errorf("quote not escaped in class label: %q", got)
	}
	if !strings.Contains(got, `mode="ed\nf"`) {
		t.Errorf("newline not escaped in mode label: %q", got)
	}
	// Well-formed names are byte-identical to the historical format.
	if got := WindowMetric("response", 12, "light", "hdf"); got !=
		`asets_window_response{window="0012",class="light",mode="hdf"}` {
		t.Errorf("clean name changed: %q", got)
	}
}

// TestWindowMetricExpositionUnbroken registers a sketch under a hostile
// class name and checks the full exposition stays line-structured: every
// line is a comment or a single sample, and no label value ends a line
// early.
func TestWindowMetricExpositionUnbroken(t *testing.T) {
	reg := NewRegistry()
	sk := reg.Sketch(WindowMetric("tardiness", 0, "bad\"}\nclass", "edf"),
		"windowed tardiness", 0.01)
	sk.Observe(1.5)
	sk.Observe(3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d empty — a label value broke the exposition:\n%s", i, buf.String())
		}
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "asets_window_tardiness") {
			t.Fatalf("line %d is neither comment nor sample: %q", i, line)
		}
	}
}

// TestEscapeLabel pins the escaping rules: backslash, quote and newline get
// backslash escapes, other control bytes collapse to '_', and clean strings
// come back unchanged (same backing memory, no allocation on the fast path).
func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"light", "light"},
		{"", ""},
		{`a"b`, `a\"b`},
		{`a\b`, `a\\b`},
		{"a\nb", `a\nb`},
		{"a\tb", "a_b"},
		{"a\x00b", "a_b"},
		{"sp ace}", "sp ace}"}, // '}' and spaces are legal inside quoted values
	}
	for _, tc := range cases {
		if got := EscapeLabel(tc.in); got != tc.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// windowEvents replays one transaction's lifecycle completing at finish.
func windowEvents(b *SpanBuilder, id int, arrive, finish float64) {
	b.Emit(Event{Time: arrive, Kind: KindArrival, Txn: txn.ID(id), Workflow: -1, Deadline: finish + 100})
	b.Emit(Event{Time: arrive, Kind: KindDispatch, Txn: txn.ID(id), Workflow: -1})
	b.Emit(Event{Time: finish, Kind: KindCompletion, Txn: txn.ID(id), Workflow: -1})
}

// TestWindowEmptyWindowsAbsent: windows in which nothing completed register
// no sketch cells — gaps in the series stay gaps instead of zero-count
// noise.
func TestWindowEmptyWindowsAbsent(t *testing.T) {
	set := spanTestSet(t)
	reg := NewRegistry()
	b := NewSpanBuilder(set, SpanOptions{Metrics: reg, Window: 5})
	// Txn 0 (heavy) completes in window 0; nothing lands in windows 1–3;
	// txn 2 (light) completes in window 4.
	windowEvents(b, 0, 0, 4)
	windowEvents(b, 2, 2, 21)
	snap := reg.Snapshot()
	for _, s := range snap.Sketches {
		if !strings.HasPrefix(s.Name, "asets_window_") {
			continue
		}
		for _, empty := range []string{`window="0001"`, `window="0002"`, `window="0003"`} {
			if strings.Contains(s.Name, empty) {
				t.Errorf("empty window registered a cell: %s", s.Name)
			}
		}
	}
}

// TestWindowSingleCompletion: a one-completion window produces cells whose
// count is exactly 1 and whose quantiles all equal the single observation.
func TestWindowSingleCompletion(t *testing.T) {
	set := spanTestSet(t)
	reg := NewRegistry()
	b := NewSpanBuilder(set, SpanOptions{Metrics: reg, Window: 5})
	windowEvents(b, 0, 0, 4) // response 4, alone in window 0
	found := false
	for _, s := range reg.Snapshot().Sketches {
		if s.Name != WindowMetric("response", 0, "heavy", "edf") {
			continue
		}
		found = true
		if s.Count != 1 {
			t.Errorf("%s count %d, want 1", s.Name, s.Count)
		}
		for _, qv := range s.Quantiles {
			if qv.Value < 4*0.99 || qv.Value > 4*1.01 {
				t.Errorf("%s q%v = %v, want the single observation 4 (within sketch accuracy)",
					s.Name, qv.Q, qv.Value)
			}
		}
	}
	if !found {
		t.Fatalf("single-completion window cell missing; sketches: %+v", reg.Snapshot().Sketches)
	}
}

// TestWindowBoundaryCompletionSingleCell: a completion exactly on a window
// boundary lands in exactly one asets_window_* cell (the window it opens),
// never in both neighbours.
func TestWindowBoundaryCompletionSingleCell(t *testing.T) {
	set := spanTestSet(t)
	reg := NewRegistry()
	b := NewSpanBuilder(set, SpanOptions{Metrics: reg, Window: 5})
	windowEvents(b, 0, 0, 5) // finish exactly at the 0/1 boundary
	cells := 0
	for _, s := range reg.Snapshot().Sketches {
		if !strings.HasPrefix(s.Name, "asets_window_response{") {
			continue
		}
		cells++
		if s.Name != WindowMetric("response", 1, "heavy", "edf") {
			t.Errorf("boundary completion landed in %s, want window 0001", s.Name)
		}
		if s.Count != 1 {
			t.Errorf("%s count %d, want 1 (double count across the boundary)", s.Name, s.Count)
		}
	}
	if cells != 1 {
		t.Fatalf("boundary completion produced %d response cells, want exactly 1", cells)
	}
}
