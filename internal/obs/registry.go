package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; updates are single atomic adds, cheap enough for the
// scheduler hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float-valued metric that can go up and down (current simulated
// time, queue depth). Updates are single atomic stores.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// Histogram is a registry handle around metrics.Histogram: the same
// geometric buckets the offline analyses use, guarded by a mutex so the
// executor goroutine can observe while HTTP handlers snapshot.
type Histogram struct {
	mu sync.Mutex
	h  *metrics.Histogram // guarded by mu
}

// Observe records one non-negative observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// ObserveBatch records a batch of observations in slice order under one lock
// acquisition — the flush path of batched instrumentation buffers. The
// histogram state afterwards is bit-identical to observing each value
// individually.
func (h *Histogram) ObserveBatch(vs []float64) {
	h.mu.Lock()
	h.h.AddBatch(vs)
	h.mu.Unlock()
}

// snapshot copies the histogram state under the lock.
func (h *Histogram) snapshot() HistogramValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramValue{
		Count:   h.h.N(),
		Sum:     h.h.Sum(),
		Max:     h.h.Max(),
		Buckets: h.h.Buckets(),
	}
}

// Sketch is a registry handle around metrics.Sketch: the fixed-boundary
// quantile sketch behind the span layer's windowed percentiles, guarded by a
// mutex so the simulation goroutine can observe while HTTP handlers snapshot.
type Sketch struct {
	mu sync.Mutex
	s  *metrics.Sketch // guarded by mu
}

// Observe records one non-negative observation.
func (s *Sketch) Observe(v float64) {
	s.mu.Lock()
	s.s.Add(v)
	s.mu.Unlock()
}

// ObserveBatch records a batch of observations in slice order under one lock
// acquisition — the flush path of the span layer's insert buffers. The
// sketch state afterwards is bit-identical to observing each value
// individually.
func (s *Sketch) ObserveBatch(vs []float64) {
	s.mu.Lock()
	s.s.AddBatch(vs)
	s.mu.Unlock()
}

// sketchQuantiles are the percentiles every sketch snapshot reports — the
// SLA trio the paper's tardiness analysis and the windowed exports use.
var sketchQuantiles = []float64{0.5, 0.95, 0.99}

// snapshot copies the sketch state under the lock.
func (s *Sketch) snapshot() SketchValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := SketchValue{
		Count: s.s.N(),
		Sum:   s.s.Sum(),
		Max:   s.s.Max(),
	}
	for _, q := range sketchQuantiles {
		sv.Quantiles = append(sv.Quantiles, QuantileValue{Q: q, Value: s.s.Quantile(q)})
	}
	return sv
}

// Registry holds the named metrics of one run. Handles are created once
// (get-or-create, so independent instrumentation sites can share a metric
// by name) and updated lock-free on the hot path; Snapshot produces a
// deterministic, name-sorted view for exporters.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	sketches map[string]*Sketch    // guarded by mu
	help     map[string]string     // guarded by mu
	names    []string              // registration-complete name list, sorted lazily; guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		sketches: make(map[string]*Sketch),
		help:     make(map[string]string),
	}
}

// register records a name the first time it appears and rejects a name
// reused across metric types.
func (r *Registry) register(name, help string, taken bool) {
	if taken {
		panic(fmt.Sprintf("obs: metric name %q already registered with a different type", name))
	}
	//lint:ignore lockguard register is the locked-section helper of the four getters; every caller holds r.mu
	if _, dup := r.help[name]; !dup {
		//lint:ignore lockguard caller holds r.mu (see above)
		r.names = append(r.names, name)
	}
	//lint:ignore lockguard caller holds r.mu (see above)
	r.help[name] = help
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different metric type panics.
//
//lint:coldpath metric registration happens at wiring time; hot code holds the returned handle
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	_, g := r.gauges[name]
	_, h := r.hists[name]
	_, s := r.sketches[name]
	r.register(name, help, g || h || s)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
//
//lint:coldpath metric registration happens at wiring time; hot code holds the returned handle
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	_, c := r.counters[name]
	_, h := r.hists[name]
	_, s := r.sketches[name]
	r.register(name, help, c || h || s)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given geometric bucket base on first use.
//
//lint:coldpath metric registration happens at wiring time; hot code holds the returned handle
func (r *Registry) Histogram(name, help string, base float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, s := r.sketches[name]
	r.register(name, help, c || g || s)
	h := &Histogram{h: metrics.NewHistogram(base)}
	r.hists[name] = h
	return h
}

// Sketch returns the quantile sketch registered under name, creating it with
// the given relative accuracy alpha on first use. Name may carry a Prometheus
// label set (`asets_window_tardiness{window="0003",class="heavy"}`) — the
// exporter splits base name and labels apart, which is how the span layer
// encodes one sketch per (window, class, mode) cell.
//
//lint:coldpath sketch cells register lazily but rarely (once per window/class/mode); hot code holds the handle
func (r *Registry) Sketch(name, help string, alpha float64) *Sketch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sketches[name]; ok {
		return s
	}
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	r.register(name, help, c || g || h)
	s := &Sketch{s: metrics.NewSketch(alpha)}
	r.sketches[name] = s
	return s
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Help  string
	Value uint64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string
	Help  string
	Value float64
}

// HistogramValue is one histogram in a snapshot. Buckets are the geometric
// cells of metrics.Histogram, per-bucket (not cumulative), zero bucket
// first.
type HistogramValue struct {
	Name    string
	Help    string
	Count   int
	Sum     float64
	Max     float64
	Buckets []metrics.Bucket
}

// QuantileValue is one reported percentile of a sketch snapshot.
type QuantileValue struct {
	Q     float64
	Value float64
}

// SketchValue is one quantile sketch in a snapshot, carrying the standard
// p50/p95/p99 trio plus count/sum/max.
type SketchValue struct {
	Name      string
	Help      string
	Count     int64
	Sum       float64
	Max       float64
	Quantiles []QuantileValue
}

// Snapshot is a deterministic point-in-time view of a registry: every
// section sorted by metric name.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
	Sketches   []SketchValue
}

// Snapshot captures every metric. The result is identical for identical
// metric states regardless of registration or map order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	sort.Strings(names)
	var snap Snapshot
	for _, name := range names {
		help := r.help[name]
		if c, ok := r.counters[name]; ok {
			snap.Counters = append(snap.Counters, CounterValue{Name: name, Help: help, Value: c.Value()})
		} else if g, ok := r.gauges[name]; ok {
			snap.Gauges = append(snap.Gauges, GaugeValue{Name: name, Help: help, Value: g.Value()})
		} else if h, ok := r.hists[name]; ok {
			hv := h.snapshot()
			hv.Name, hv.Help = name, help
			snap.Histograms = append(snap.Histograms, hv)
		} else if s, ok := r.sketches[name]; ok {
			sv := s.snapshot()
			sv.Name, sv.Help = name, help
			snap.Sketches = append(snap.Sketches, sv)
		}
	}
	r.mu.Unlock()
	return snap
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
