package obs

import (
	"io"
	"log/slog"
)

// Structured-log field keys shared between log records and span/event
// attributes, so a `txn=17` in a log line greps against the same key in
// span JSONL and SSE frames.
const (
	LogKeyTxn    = "txn"    // transaction ID (int)
	LogKeyWF     = "wf"     // workflow ID (int)
	LogKeyPolicy = "policy" // scheduler name (string)
	LogKeyTime   = "t"      // simulated time (float64)
	LogKeySeed   = "seed"   // workload seed (uint64)
	LogKeyErr    = "err"    // error detail (string)
)

// NewLogger returns a text slog.Logger writing to w. With deterministic set,
// the wall-clock timestamp attribute is dropped from every record so that
// fixed-seed runs log byte-identical streams — the same contract the event
// and span exports follow (simulated time travels in the LogKeyTime field
// instead).
func NewLogger(w io.Writer, deterministic bool) *slog.Logger {
	opts := &slog.HandlerOptions{}
	if deterministic {
		opts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
