// Package obs is the unified instrumentation layer of the repository: a
// stdlib-only observability stack threaded through the simulator, the
// scheduling policies, the online executor and the web server.
//
// It has three parts:
//
//   - a metrics registry (registry.go): named counters, gauges and
//     histogram handles with atomic hot-path updates and a deterministic
//     snapshot API, exportable in Prometheus text format (prom.go);
//   - a structured decision-event stream (this file): schedulers and the
//     sim/executor emit typed Events through a Sink — a no-op Discard sink
//     for zero-overhead disabled runs, a bounded in-memory Ring for live
//     endpoints, a Collector for post-run analysis, and a JSONLWriter for
//     `asetssim -events out.jsonl`;
//   - export surfaces: Prometheus text (prom.go) and a Chrome trace-event
//     timeline loadable in Perfetto (timeline.go).
//
// Determinism: events are stamped exclusively from simulated/virtual time
// (the `now` of the scheduling decision), never from the host clock, so a
// fixed-seed run produces a byte-identical event stream on every replay.
// The package is inside the asetslint determinism scope, which enforces
// this statically.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unsafe"

	"repro/internal/txn"
)

// Kind classifies one scheduling decision event.
type Kind int

const (
	// KindArrival — a transaction was submitted to the scheduler.
	KindArrival Kind = iota
	// KindDispatch — the scheduler checked a transaction out to a server.
	KindDispatch
	// KindPreempt — a running transaction was set aside unfinished.
	KindPreempt
	// KindCompletion — a transaction finished.
	KindCompletion
	// KindDeadlineMiss — a transaction finished past its deadline
	// (emitted in addition to KindCompletion).
	KindDeadlineMiss
	// KindAging — balance-aware ASETS* activated T_old out of priority
	// order (Section III-D aging).
	KindAging
	// KindModeSwitch — an ASETS* scheduling entity migrated between the
	// EDF-List and the HDF-List (its representative expired).
	KindModeSwitch
	// KindAbort — a transaction's completion attempt aborted (fault
	// injection) or its in-flight work was lost to a backend crash; Detail
	// distinguishes "abort" from "crash".
	KindAbort
	// KindRestart — an aborted transaction re-entered the scheduler after
	// its backoff expired.
	KindRestart
	// KindStall — the backend entered a stall/crash outage window; Detail
	// carries the window kind, Remaining its duration.
	KindStall
	// KindShed — the admission controller rejected an arriving transaction;
	// Detail names the controller.
	KindShed
	// KindDegradeEnter — the admission controller crossed into degradation
	// mode.
	KindDegradeEnter
	// KindDegradeExit — the admission controller left degradation mode.
	KindDegradeExit
	// KindRoute — the cluster routing tier assigned an arriving transaction
	// to an instance; Detail carries the instance index.
	KindRoute
	// KindFailover — a transaction lost to an instance crash was re-enqueued
	// to a surviving instance (Detail "from->to") or permanently dropped
	// because its retry budget ran out (Detail "lost").
	KindFailover
	// KindEject — the cluster circuit-breaker ejected a crashed instance
	// from the routing set; Detail carries the instance index.
	KindEject
	// KindRecover — an ejected instance's circuit-breaker half-opened after
	// its outage window ended; Detail carries the instance index.
	KindRecover
	// KindValidateFail — a transaction failed commit-time read-set
	// validation and was rewound for re-execution with a new incarnation
	// (docs/CONTENTION.md); Remaining carries the rewound full length.
	KindValidateFail
	// KindConflictDefer — a conflict-aware policy skipped a queued
	// transaction predicted to conflict with busy work and stole a later
	// non-conflicting one; Txn is the deferred transaction.
	KindConflictDefer
	// KindAlertFire — an SLO burn-rate alert rule started firing at a
	// window boundary; Detail names the rule ("class/rule"), Deadline
	// carries the fast-window burn ratio at fire time (internal/slo).
	KindAlertFire
	// KindAlertResolve — a firing SLO alert rule cleared after its
	// hysteresis window; Detail names the rule, Deadline the fast-window
	// burn ratio at resolve time.
	KindAlertResolve
)

// String returns the stable wire name of the kind, used in JSONL output,
// the /events endpoint and timeline exports.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindDispatch:
		return "dispatch"
	case KindPreempt:
		return "preempt"
	case KindCompletion:
		return "completion"
	case KindDeadlineMiss:
		return "deadline_miss"
	case KindAging:
		return "aging"
	case KindModeSwitch:
		return "mode_switch"
	case KindAbort:
		return "abort"
	case KindRestart:
		return "restart"
	case KindStall:
		return "stall"
	case KindShed:
		return "shed"
	case KindDegradeEnter:
		return "degrade_enter"
	case KindDegradeExit:
		return "degrade_exit"
	case KindRoute:
		return "route"
	case KindFailover:
		return "failover"
	case KindEject:
		return "eject"
	case KindRecover:
		return "recover"
	case KindValidateFail:
		return "validate_fail"
	case KindConflictDefer:
		return "conflict_defer"
	case KindAlertFire:
		return "alert_fire"
	case KindAlertResolve:
		return "alert_resolve"
	default:
		panic(fmt.Sprintf("obs: unknown event kind %d", int(k)))
	}
}

// Event is one scheduling decision, stamped with simulated time. The zero
// value of optional fields means "not applicable": Txn and Workflow use -1
// for that instead, because 0 is a valid ID.
type Event struct {
	// Seq is a per-sink monotone sequence number, stamped by the sink
	// (Ring, Collector, JSONLWriter) on receipt. Emitters leave it zero.
	Seq uint64
	// Time is the simulated/virtual time of the decision.
	Time float64
	// Kind classifies the decision.
	Kind Kind
	// Txn is the subject transaction, or -1 when the event concerns a
	// workflow or the scheduler as a whole.
	Txn txn.ID
	// Workflow is the subject scheduling entity, or -1.
	Workflow int
	// Deadline, Remaining and Tardiness carry the kind-specific numeric
	// payload (see docs/OBSERVABILITY.md for which kinds set which).
	Deadline  float64
	Remaining float64
	Tardiness float64
	// Detail is a short free-form qualifier, e.g. "edf->hdf".
	Detail string
}

// MarshalJSON renders the event as a single flat JSON object with a fixed
// field order, so serialized streams are byte-stable across runs.
func (e Event) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 128)
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendFloat(b, e.Time, 'g', -1, 64)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","txn":`...)
	b = strconv.AppendInt(b, int64(e.Txn), 10)
	if e.Workflow >= 0 {
		b = append(b, `,"wf":`...)
		b = strconv.AppendInt(b, int64(e.Workflow), 10)
	}
	if e.Deadline != 0 {
		b = append(b, `,"deadline":`...)
		b = strconv.AppendFloat(b, e.Deadline, 'g', -1, 64)
	}
	if e.Remaining != 0 {
		b = append(b, `,"remaining":`...)
		b = strconv.AppendFloat(b, e.Remaining, 'g', -1, 64)
	}
	if e.Tardiness != 0 {
		b = append(b, `,"tardiness":`...)
		b = strconv.AppendFloat(b, e.Tardiness, 'g', -1, 64)
	}
	if e.Detail != "" {
		b = append(b, `,"detail":`...)
		b = strconv.AppendQuote(b, e.Detail)
	}
	b = append(b, '}')
	return b, nil
}

// KindFromString is the inverse of Kind.String.
func KindFromString(s string) (Kind, error) {
	for k := KindArrival; k <= KindAlertResolve; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// UnmarshalJSON is the inverse of MarshalJSON, so Go consumers of the JSONL
// stream and the /events endpoint can decode events back. Absent optional
// fields restore their "not applicable" defaults (-1 for Txn/Workflow).
func (e *Event) UnmarshalJSON(data []byte) error {
	var w struct {
		Seq       uint64  `json:"seq"`
		Time      float64 `json:"t"`
		Kind      string  `json:"kind"`
		Txn       *int64  `json:"txn"`
		Workflow  *int    `json:"wf"`
		Deadline  float64 `json:"deadline"`
		Remaining float64 `json:"remaining"`
		Tardiness float64 `json:"tardiness"`
		Detail    string  `json:"detail"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	k, err := KindFromString(w.Kind)
	if err != nil {
		return err
	}
	*e = Event{
		Seq: w.Seq, Time: w.Time, Kind: k, Txn: -1, Workflow: -1,
		Deadline: w.Deadline, Remaining: w.Remaining, Tardiness: w.Tardiness,
		Detail: w.Detail,
	}
	if w.Txn != nil {
		e.Txn = txn.ID(*w.Txn)
	}
	if w.Workflow != nil {
		e.Workflow = *w.Workflow
	}
	return nil
}

// Sink receives decision events. Implementations stamp Event.Seq; emitters
// must treat the event as sent once Emit returns. Emit must be safe for use
// from the single simulation/executor goroutine; sinks that are also read
// concurrently (Ring) do their own locking.
type Sink interface {
	Emit(Event)
}

// SharedSink is the zero-copy variant of Sink: EmitShared receives a pointer
// to an event the caller owns and will reuse for the next emission. The sink
// borrows the event only for the duration of the call — anything it retains
// must be captured by copy before returning (Ring and Collector store a copy
// in their own buffers; the SSE hub copies into each subscriber channel).
// Every in-repo sink implements it; Emitter binds EmitShared directly so the
// enabled fast path never boxes an Event into an interface argument.
type SharedSink interface {
	EmitShared(*Event)
}

// BatchSink is the batched variant of SharedSink: EmitSharedBatch receives a
// slice of events the caller owns and will overwrite for its next batch. The
// borrow contract is the same as EmitShared's — anything retained must be
// captured by copy before returning — but the sink amortizes its per-event
// synchronization (one lock acquisition per batch instead of per event).
// Events must be applied in slice order; the slice is never empty.
type BatchSink interface {
	EmitSharedBatch([]Event)
}

// discard is the no-op sink.
type discard struct{}

func (discard) Emit(Event) {}

// Discard drops every event: the zero-overhead default for uninstrumented
// runs. Instrumentation sites may also skip emission entirely when their
// sink is nil; Discard exists so call sites can hold a non-nil Sink
// unconditionally.
var Discard Sink = discard{}

// Tee fans every event out to each sink in order. Nil sinks are skipped.
func Tee(sinks ...Sink) Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil && s != Discard {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return Discard
	case 1:
		return out[0]
	}
	return tee(out)
}

type tee []Sink

func (t tee) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// Ring is a bounded in-memory event buffer: the newest Cap events are
// retained and older ones overwritten. It is safe for one writer and many
// concurrent readers — the backing store of the server's /events endpoint.
type Ring struct {
	mu   sync.Mutex
	buf  []Event // full-length (len == cap); slots [0, min(seq, cap)) are filled
	next int     // slot the next event lands in
	seq  uint64  // total events ever emitted; also the next Seq stamp
	cap  int
}

// NewRing returns a ring retaining the newest capacity events. The buffer is
// allocated at full length up front, so the emit path indexes into it and
// never appends.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic(fmt.Sprintf("obs: ring capacity %d must be positive", capacity))
	}
	return &Ring{cap: capacity, buf: make([]Event, capacity)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return r.cap }

// Emit implements Sink.
func (r *Ring) Emit(ev Event) { r.EmitShared(&ev) }

// EmitShared implements SharedSink: the borrowed event is captured by copy
// into the ring's own slot before the call returns. The Seq stamp is not
// stored — a retained event's sequence number is its emission position,
// recomputed from the ring counters by Snapshot, so the emit path does no
// per-event work beyond the copy itself.
func (r *Ring) EmitShared(ev *Event) {
	r.mu.Lock()
	r.buf[r.next] = *ev
	r.seq++
	r.next++
	if r.next == r.cap {
		r.next = 0
	}
	r.mu.Unlock()
}

// EmitSharedBatch implements BatchSink: the whole batch is captured under one
// lock acquisition, in slice order. Each contiguous chunk lands via one
// copy() — one write-barrier sweep per chunk where per-event struct
// assignments pay it per event — and Seq stamping is deferred to Snapshot,
// so the locked section is nothing but the bulk copies.
//
//lint:hotpath
func (r *Ring) EmitSharedBatch(evs []Event) {
	r.mu.Lock()
	r.seq += uint64(len(evs))
	for len(evs) > 0 {
		c := copy(r.buf[r.next:r.cap], evs)
		r.next += c
		if r.next == r.cap {
			r.next = 0
		}
		evs = evs[c:]
	}
	r.mu.Unlock()
}

// Total returns the number of events ever emitted (not just retained).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// RetainedBytes estimates the memory the ring pins for its event buffer.
func (r *Ring) RetainedBytes() int {
	return r.cap * int(unsafe.Sizeof(Event{}))
}

// Snapshot returns up to limit retained events, newest first. limit <= 0
// means everything retained. Seq stamps are applied here, to the returned
// copies: the i-th newest retained event was emission number seq-1-i, so the
// stamp is pure arithmetic and the emit path never stores it.
func (r *Ring) Snapshot(limit int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.cap
	if r.seq < uint64(r.cap) {
		n = int(r.seq)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Event, 0, limit)
	for i := 0; i < limit; i++ {
		// Newest element sits just before next (mod cap).
		idx := (r.next - 1 - i + 2*r.cap) % r.cap
		out = append(out, r.buf[idx])
		out[i].Seq = r.seq - 1 - uint64(i)
	}
	return out
}

// Collector retains every event in emission order — the input of the
// timeline exporter and of post-run analyses where the full stream matters.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) { c.EmitShared(&ev) }

// EmitShared implements SharedSink: the borrowed event is captured by copy
// into the collector's backing store, with the Seq stamp applied to the
// stored copy only.
func (c *Collector) EmitShared(ev *Event) {
	c.mu.Lock()
	//lint:ignore hotpath-alloc Collector retains the full stream by design (timeline export, post-run analysis)
	c.events = append(c.events, *ev)
	c.events[len(c.events)-1].Seq = uint64(len(c.events) - 1)
	c.mu.Unlock()
}

// EmitSharedBatch implements BatchSink: the whole batch is appended under one
// lock acquisition, in slice order.
func (c *Collector) EmitSharedBatch(evs []Event) {
	c.mu.Lock()
	for i := range evs {
		//lint:ignore hotpath-alloc Collector retains the full stream by design (timeline export, post-run analysis)
		c.events = append(c.events, evs[i])
		c.events[len(c.events)-1].Seq = uint64(len(c.events) - 1)
	}
	c.mu.Unlock()
}

// Events returns the collected stream in emission order. The returned slice
// is the collector's own backing store; callers must not emit concurrently
// with reading it.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// JSONLWriter serializes each event as one JSON line — the sink behind
// `asetssim -events out.jsonl`. Writes are buffered; call Flush before
// closing the underlying writer. The first write error sticks and is
// reported by Flush/Err; later events are dropped.
type JSONLWriter struct {
	w   *bufio.Writer
	seq uint64
	err error
}

// NewJSONLWriter returns a writer emitting one JSON object per line to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// EmitShared implements SharedSink. The encoder works on a local copy, so
// the borrowed event is never mutated.
func (j *JSONLWriter) EmitShared(ev *Event) { j.Emit(*ev) }

// Emit implements Sink.
func (j *JSONLWriter) Emit(ev Event) {
	if j.err != nil {
		return
	}
	ev.Seq = j.seq
	j.seq++
	b, err := ev.MarshalJSON()
	if err == nil {
		//lint:ignore hotpath-alloc JSONL encoding allocates by design; this sink is for offline capture, not benchmark runs
		_, err = j.w.Write(append(b, '\n'))
	}
	if err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first error seen, if any.
func (j *JSONLWriter) Flush() error {
	if err := j.w.Flush(); j.err == nil && err != nil {
		j.err = err
	}
	return j.err
}

// Err returns the first write or serialization error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// ReadJSONL parses a JSONL event stream — the inverse of JSONLWriter, and
// the entry point of the post-run report generator (cmd/asetsreport). Blank
// lines are skipped; a malformed line fails with its 1-based line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := ev.UnmarshalJSON(raw); err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading events: %w", err)
	}
	return evs, nil
}
