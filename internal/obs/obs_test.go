package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindArrival, KindDispatch, KindPreempt, KindCompletion,
		KindDeadlineMiss, KindAging, KindModeSwitch, KindAbort, KindRestart,
		KindStall, KindShed, KindDegradeEnter, KindDegradeExit,
		KindRoute, KindFailover, KindEject, KindRecover,
		KindValidateFail, KindConflictDefer}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
}

func TestKindStringUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Kind(99).String() did not panic")
		}
	}()
	_ = Kind(99).String()
}

func TestEventMarshalStableAndParsable(t *testing.T) {
	ev := Event{Seq: 3, Time: 1.5, Kind: KindCompletion, Txn: 7, Workflow: 2,
		Deadline: 4.25, Remaining: 0, Tardiness: 0.5, Detail: "x"}
	b1, err := ev.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := ev.MarshalJSON()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("marshal not stable: %s vs %s", b1, b2)
	}
	var m map[string]any
	if err := json.Unmarshal(b1, &m); err != nil {
		t.Fatalf("output not valid JSON: %v in %s", err, b1)
	}
	if m["kind"] != "completion" || m["txn"] != float64(7) || m["tardiness"] != 0.5 {
		t.Fatalf("decoded %v", m)
	}
	// Fixed field order: seq leads, t second.
	if !strings.HasPrefix(string(b1), `{"seq":3,"t":1.5,"kind":"completion"`) {
		t.Fatalf("unexpected field order: %s", b1)
	}
}

func TestEventMarshalOmitsInapplicable(t *testing.T) {
	ev := Event{Time: 2, Kind: KindModeSwitch, Txn: -1, Workflow: 4, Detail: "edf->hdf"}
	b, _ := ev.MarshalJSON()
	s := string(b)
	for _, absent := range []string{"deadline", "remaining", "tardiness"} {
		if strings.Contains(s, absent) {
			t.Fatalf("zero field %q serialized: %s", absent, s)
		}
	}
	if !strings.Contains(s, `"wf":4`) || !strings.Contains(s, `"detail":"edf->hdf"`) {
		t.Fatalf("missing payload: %s", s)
	}
}

// TestEventRoundTrip: UnmarshalJSON inverts MarshalJSON, including the -1
// "not applicable" defaults for fields the encoder omits.
func TestEventRoundTrip(t *testing.T) {
	for _, ev := range []Event{
		{Seq: 3, Time: 1.5, Kind: KindCompletion, Txn: 7, Workflow: -1, Tardiness: 0.5},
		{Seq: 9, Time: 2, Kind: KindModeSwitch, Txn: -1, Workflow: 4, Deadline: 3.25, Remaining: 1.75, Detail: "edf->hdf"},
		{Kind: KindArrival, Txn: 0, Workflow: -1},
	} {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != ev {
			t.Fatalf("round trip %s:\n got %+v\nwant %+v", b, got, ev)
		}
	}
	var got Event
	if err := json.Unmarshal([]byte(`{"seq":0,"t":1,"kind":"nope","txn":0}`), &got); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDiscardAndTee(t *testing.T) {
	Discard.Emit(Event{}) // must not panic
	if Tee() != Discard || Tee(nil, Discard) != Discard {
		t.Fatal("empty tee is not Discard")
	}
	r := NewRing(4)
	if Tee(r) != r {
		t.Fatal("single-sink tee not collapsed")
	}
	c := &Collector{}
	both := Tee(r, c)
	both.Emit(Event{Kind: KindArrival, Txn: 1, Workflow: -1})
	if r.Total() != 1 || len(c.Events()) != 1 {
		t.Fatalf("tee did not fan out: ring=%d collector=%d", r.Total(), len(c.Events()))
	}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindArrival, Txn: 0, Workflow: -1, Time: float64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("retained %d", len(snap))
	}
	for i, want := range []float64{4, 3, 2} {
		if snap[i].Time != want {
			t.Fatalf("snapshot[%d].Time = %v, want %v (%v)", i, snap[i].Time, want, snap)
		}
	}
	if snap[0].Seq != 4 {
		t.Fatalf("newest seq = %d", snap[0].Seq)
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Time != 4 {
		t.Fatalf("limited snapshot = %v", got)
	}
	if got := r.Snapshot(100); len(got) != 3 {
		t.Fatalf("oversized limit returned %d", len(got))
	}
}

func TestRingEmptySnapshot(t *testing.T) {
	r := NewRing(8)
	if got := r.Snapshot(10); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
}

func TestNewRingRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestCollectorSequencesInOrder(t *testing.T) {
	c := &Collector{}
	for i := 0; i < 4; i++ {
		c.Emit(Event{Kind: KindDispatch, Txn: 0, Workflow: -1, Time: float64(i)})
	}
	evs := c.Events()
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Time != float64(i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestJSONLWriterDeterministic(t *testing.T) {
	emitAll := func() string {
		var buf bytes.Buffer
		jw := NewJSONLWriter(&buf)
		jw.Emit(Event{Time: 0.5, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 3})
		jw.Emit(Event{Time: 0.5, Kind: KindDispatch, Txn: 0, Workflow: -1, Remaining: 1.25})
		jw.Emit(Event{Time: 1.75, Kind: KindCompletion, Txn: 0, Workflow: -1})
		if err := jw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emitAll(), emitAll()
	if a != b {
		t.Fatalf("streams differ:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		if m["seq"] != float64(i) {
			t.Fatalf("line %d seq = %v", i, m["seq"])
		}
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLWriterStickyError(t *testing.T) {
	jw := NewJSONLWriter(&failWriter{})
	for i := 0; i < 100; i++ { // overflow the bufio buffer to force a write
		jw.Emit(Event{Time: float64(i), Kind: KindArrival, Txn: 0, Workflow: -1,
			Detail: strings.Repeat("x", 100)})
	}
	if err := jw.Flush(); err == nil {
		t.Fatal("flush after failed write returned nil")
	}
	if jw.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
}

// TestReadJSONLRoundTrip: ReadJSONL is the exact inverse of JSONLWriter —
// the contract the post-run report generator (cmd/asetsreport) relies on.
func TestReadJSONLRoundTrip(t *testing.T) {
	evs := []Event{
		{Time: 1, Kind: KindArrival, Txn: 3, Workflow: -1, Deadline: 9, Remaining: 2},
		{Time: 4.5, Kind: KindCompletion, Txn: 3, Workflow: -1, Deadline: 9, Tardiness: 0.5},
		{Time: 5, Kind: KindAlertFire, Txn: -1, Workflow: -1, Deadline: 3.2, Detail: "light/burn"},
	}
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	for _, ev := range evs {
		jw.Emit(ev)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	// A blank line must be tolerated (hand-edited captures).
	buf.WriteString("\n")

	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, want %d", len(got), len(evs))
	}
	for i, ev := range evs {
		ev.Seq = uint64(i) // the writer stamps sequence numbers
		if got[i] != ev {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], ev)
		}
	}
}

func TestReadJSONLMalformedLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"seq\":0,\"t\":1,\"kind\":\"arrival\",\"txn\":0}\n{broken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v, want line 2", err)
	}
}
