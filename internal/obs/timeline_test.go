package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
	"repro/internal/txn"
)

// decodeTimeline parses an export back into its generic JSON form.
func decodeTimeline(t *testing.T, b []byte) (string, []map[string]any) {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid timeline JSON: %v", err)
	}
	return doc.DisplayTimeUnit, doc.TraceEvents
}

func sampleInputs() ([]trace.Slice, []Event) {
	slices := []trace.Slice{
		{ID: 0, Start: 0, End: 2},
		{ID: 1, Start: 2, End: 3.5},
		{ID: 0, Start: 3.5, End: 4},
	}
	events := []Event{
		{Seq: 0, Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1},
		{Seq: 1, Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Seq: 2, Time: 2, Kind: KindModeSwitch, Txn: -1, Workflow: 3, Detail: "edf->hdf"},
		{Seq: 3, Time: 4, Kind: KindCompletion, Txn: 0, Workflow: -1, Tardiness: 1.5},
	}
	return slices, events
}

func TestWriteTimelineStructure(t *testing.T) {
	slices, events := sampleInputs()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, slices, events); err != nil {
		t.Fatal(err)
	}
	unit, evs := decodeTimeline(t, buf.Bytes())
	if unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", unit)
	}
	var slicesSeen, decisionsSeen int
	for _, ev := range evs {
		switch ev["cat"] {
		case "slice":
			slicesSeen++
			if ev["ph"] != "X" || ev["tid"].(float64) < 1 {
				t.Fatalf("bad slice event %v", ev)
			}
		case "decision":
			decisionsSeen++
			if ev["ph"] != "i" || ev["tid"].(float64) != 0 {
				t.Fatalf("bad decision event %v", ev)
			}
		}
	}
	if slicesSeen != 3 || decisionsSeen != 4 {
		t.Fatalf("slices=%d decisions=%d", slicesSeen, decisionsSeen)
	}
	// 1 sim unit = 1000 trace microseconds.
	for _, ev := range evs {
		if ev["cat"] == "decision" && ev["name"] == "completion T0" {
			if ev["ts"].(float64) != 4000 {
				t.Fatalf("completion ts = %v", ev["ts"])
			}
		}
	}
}

func TestWriteTimelineSingleServerUsesOneLane(t *testing.T) {
	slices, _ := sampleInputs()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, slices, nil); err != nil {
		t.Fatal(err)
	}
	_, evs := decodeTimeline(t, buf.Bytes())
	for _, ev := range evs {
		if ev["cat"] == "slice" && ev["tid"].(float64) != 1 {
			t.Fatalf("non-overlapping slices split across lanes: %v", ev)
		}
	}
}

func TestWriteTimelineOverlapGetsDistinctLanes(t *testing.T) {
	slices := []trace.Slice{
		{ID: 0, Start: 0, End: 4},
		{ID: 1, Start: 1, End: 3}, // overlaps T0: a second server
	}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, slices, nil); err != nil {
		t.Fatal(err)
	}
	_, evs := decodeTimeline(t, buf.Bytes())
	lanes := map[float64]bool{}
	for _, ev := range evs {
		if ev["cat"] == "slice" {
			lanes[ev["tid"].(float64)] = true
		}
	}
	if len(lanes) != 2 {
		t.Fatalf("overlapping slices share lanes: %v", lanes)
	}
}

func TestWriteTimelineDeterministic(t *testing.T) {
	slices, events := sampleInputs()
	render := func() string {
		var buf bytes.Buffer
		if err := WriteTimeline(&buf, slices, events); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("timeline export not byte-stable:\n%s\nvs\n%s", a, b)
	}
}

func TestWriteTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	_, evs := decodeTimeline(t, buf.Bytes())
	// Only the process/scheduler metadata records remain.
	for _, ev := range evs {
		if ev["ph"] != "M" {
			t.Fatalf("unexpected event in empty export: %v", ev)
		}
	}
}

func TestWriteTimelineFlows(t *testing.T) {
	// T0 runs twice (finishing at 4), then its dependent T1 runs at 2..3.5?
	// No — flows need the child to start after the parent's last slice, so
	// use a dedicated layout: T0 at [0,2], T1 at [3,5].
	slices := []trace.Slice{
		{ID: 0, Start: 0, End: 2},
		{ID: 1, Start: 3, End: 5},
	}
	spans := []*Span{
		{Txn: 0, Workflow: 7, Children: []txn.ID{1}},
		{Txn: 1, Workflow: 7, Parents: []txn.ID{0}},
	}
	var buf bytes.Buffer
	if err := WriteTimelineFlows(&buf, slices, nil, spans); err != nil {
		t.Fatal(err)
	}
	_, evs := decodeTimeline(t, buf.Bytes())
	var start, finish map[string]any
	for _, ev := range evs {
		if ev["cat"] == "flow" {
			switch ev["ph"] {
			case "s":
				start = ev
			case "f":
				finish = ev
			}
		}
	}
	if start == nil || finish == nil {
		t.Fatalf("flow pair missing from export: %s", buf.Bytes())
	}
	if start["id"] != finish["id"] {
		t.Fatalf("flow ids differ: %v vs %v", start["id"], finish["id"])
	}
	if start["ts"].(float64) != 2000 || finish["ts"].(float64) != 3000 {
		t.Fatalf("flow endpoints at %v and %v, want parent end 2000 and child start 3000", start["ts"], finish["ts"])
	}
	if finish["bp"] != "e" {
		t.Fatalf("flow finish lacks bp=e: %v", finish)
	}
	if start["name"] != "dep T0->T1" || finish["name"] != "dep T0->T1" {
		t.Fatalf("flow names %v / %v", start["name"], finish["name"])
	}
}

func TestWriteTimelineWithoutSpansHasNoFlows(t *testing.T) {
	slices, events := sampleInputs()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, slices, events); err != nil {
		t.Fatal(err)
	}
	_, evs := decodeTimeline(t, buf.Bytes())
	for _, ev := range evs {
		if ev["cat"] == "flow" {
			t.Fatalf("flow event present without spans: %v", ev)
		}
	}
}
