package obs

import (
	"runtime/metrics"
	"sync/atomic"
	"time"
)

// Overhead is the observability layer's self-telemetry: a handful of atomic
// counters that measure what observing costs. The live server wires one
// through a Timed sink (events + wall-clock ns attributed to instrumentation)
// and the span builder (pool hit/miss); the totals surface on /api/stats and
// /metrics so the overhead budget is itself observable.
//
// All updates are single atomic adds, cheap enough for the event fast path.
type Overhead struct {
	events     atomic.Uint64
	nanos      atomic.Int64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
}

// NewOverhead returns a zeroed meter.
func NewOverhead() *Overhead { return &Overhead{} }

// CountEvent records one event fanned out through the instrumented path.
func (o *Overhead) CountEvent() { o.events.Add(1) }

// AddNanos attributes d nanoseconds of wall-clock time to instrumentation.
func (o *Overhead) AddNanos(d int64) { o.nanos.Add(d) }

// CountPoolHit records a span served from the free list.
func (o *Overhead) CountPoolHit() { o.poolHits.Add(1) }

// CountPoolMiss records a span that had to be freshly allocated.
func (o *Overhead) CountPoolMiss() { o.poolMisses.Add(1) }

// OverheadStats is a point-in-time copy of the meter.
type OverheadStats struct {
	// Events is the number of events fanned out through the timed path.
	Events uint64 `json:"events"`
	// InstrNanos is the wall-clock ns spent inside sink fan-out (zero under
	// a FakeClock, where instrumentation time does not advance the clock).
	InstrNanos int64 `json:"instr_ns"`
	// PoolHits / PoolMisses count span free-list reuse vs fresh allocation.
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
}

// Stats snapshots the meter.
func (o *Overhead) Stats() OverheadStats {
	return OverheadStats{
		Events:     o.events.Load(),
		InstrNanos: o.nanos.Load(),
		PoolHits:   o.poolHits.Load(),
		PoolMisses: o.poolMisses.Load(),
	}
}

// Timed wraps a sink chain, attributing to an Overhead meter every event and
// the wall-clock time the chain's fan-out consumes. The clock is injected
// (the server passes its executor Clock's Now), keeping this package inside
// the determinism lint scope: under a FakeClock the attribution is zero and
// byte-stable; under a RealClock it is honest wall time.
//
// Timed implements SharedSink, so an Emitter built over it binds EmitShared
// directly and the inner chain is devirtualized into Timed's own Emitter —
// the wrapper adds two clock reads and two atomic adds per event, nothing
// more.
type Timed struct {
	em  *Emitter
	ov  *Overhead
	now func() time.Time // nil: count events only, no time attribution
}

// NewTimed wraps sink with event counting into ov and, when now is non-nil,
// wall-clock attribution of the fan-out time.
//
//lint:coldpath sink wiring happens once at server construction
func NewTimed(sink Sink, ov *Overhead, now func() time.Time) *Timed {
	return &Timed{em: NewEmitter(sink), ov: ov, now: now}
}

// Emit implements Sink.
func (t *Timed) Emit(ev Event) { t.EmitShared(&ev) }

// EmitShared implements SharedSink.
func (t *Timed) EmitShared(ev *Event) {
	if t.now == nil {
		t.em.Emit(ev)
		t.ov.CountEvent()
		return
	}
	start := t.now()
	t.em.Emit(ev)
	t.ov.AddNanos(t.now().Sub(start).Nanoseconds())
	t.ov.CountEvent()
}

// runtimeSampleNames are the runtime/metrics series backing RuntimeSample,
// in struct field order.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/goroutines:goroutines",
}

// RuntimeSample is a snapshot of the Go runtime gauges the observability
// layer exports about itself: live heap bytes, completed GC cycles and
// goroutine count. These are host facts, not simulation state — they are
// sampled at scrape time (/metrics, /api/stats) and never feed any
// deterministic output.
type RuntimeSample struct {
	HeapBytes  uint64 `json:"heap_bytes"`
	GCCycles   uint64 `json:"gc_cycles"`
	Goroutines uint64 `json:"goroutines"`
}

// ReadRuntimeSample reads the runtime gauges via runtime/metrics. It is a
// cold scrape-time call; the two-slot sample slice is allocated per call.
func ReadRuntimeSample() RuntimeSample {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var out RuntimeSample
	if samples[0].Value.Kind() == metrics.KindUint64 {
		out.HeapBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		out.GCCycles = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		out.Goroutines = samples[2].Value.Uint64()
	}
	return out
}
