package obs

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/txn"
)

// aliasBatch returns a small event batch in a caller-owned buffer, the way
// the instrumentation layer stages events: the same backing array is reused
// for every batch, so sinks must capture by copy.
func aliasBatch(start int) []Event {
	evs := make([]Event, 4)
	for i := range evs {
		evs[i] = Event{
			Time:     float64(start + i),
			Kind:     KindArrival,
			Txn:      txn.ID(start + i),
			Workflow: -1,
			Deadline: float64(start + i + 10),
		}
	}
	return evs
}

// TestRingBatchReuseDoesNotAliasSnapshot overwrites the emitted batch buffer
// after EmitSharedBatch returns and checks the ring's retained copies do not
// move — the borrow contract that makes the zero-allocation staging buffer
// safe.
func TestRingBatchReuseDoesNotAliasSnapshot(t *testing.T) {
	r := NewRing(16)
	buf := aliasBatch(0)
	r.EmitSharedBatch(buf)
	before := r.Snapshot(0)
	for i := range buf {
		buf[i] = Event{Time: -1, Kind: KindDeadlineMiss, Txn: -1, Workflow: -1, Detail: "clobbered"}
	}
	after := r.Snapshot(0)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot changed after batch buffer reuse:\nbefore %+v\nafter  %+v", before, after)
	}
	for _, ev := range after {
		if ev.Detail == "clobbered" || ev.Time < 0 {
			t.Fatalf("ring retained an aliased event: %+v", ev)
		}
	}
}

// TestRingBatchMatchesSingleEmit feeds the same stream once event-at-a-time
// and once in uneven batches (forcing mid-batch wraps) and requires the two
// rings to retain identical contents, Seq stamps included.
func TestRingBatchMatchesSingleEmit(t *testing.T) {
	single, batched := NewRing(8), NewRing(8)
	stream := aliasBatch(0)
	stream = append(stream, aliasBatch(4)...)
	stream = append(stream, aliasBatch(8)...) // 12 events through a cap-8 ring

	for i := range stream {
		single.EmitShared(&stream[i])
	}
	for lo := 0; lo < len(stream); {
		hi := lo + 5 // uneven chunks: 5,5,2 — wraps land mid-batch
		if hi > len(stream) {
			hi = len(stream)
		}
		batched.EmitSharedBatch(stream[lo:hi])
		lo = hi
	}

	if single.Total() != batched.Total() {
		t.Fatalf("totals differ: single %d, batched %d", single.Total(), batched.Total())
	}
	if got, want := batched.Snapshot(0), single.Snapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("batched ring diverged from single-emit ring:\nbatched %+v\nsingle  %+v", got, want)
	}
}

// TestRingBatchLargerThanCapacity pushes one batch bigger than the ring and
// checks the newest events win, exactly as event-at-a-time emission would
// leave them.
func TestRingBatchLargerThanCapacity(t *testing.T) {
	r := NewRing(4)
	stream := append(aliasBatch(0), aliasBatch(4)...) // 8 events, cap 4
	r.EmitSharedBatch(stream)
	if r.Total() != 8 {
		t.Fatalf("total %d, want 8", r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap))
	}
	for i, ev := range snap { // newest first: txns 7,6,5,4 with Seq 7,6,5,4
		if want := txn.ID(7 - i); ev.Txn != want || ev.Seq != uint64(7-i) {
			t.Fatalf("snapshot[%d] = txn %d seq %d, want txn %d seq %d", i, ev.Txn, ev.Seq, want, want)
		}
	}
}

// TestCollectorBatchReuseDoesNotAlias is the Collector-side aliasing
// regression: mutating the batch buffer after emission must not reach the
// collected stream, and batched appends must stamp the same Seq values as
// single emits.
func TestCollectorBatchReuseDoesNotAlias(t *testing.T) {
	c := &Collector{}
	buf := aliasBatch(0)
	c.EmitSharedBatch(buf)
	for i := range buf {
		buf[i].Detail = "clobbered"
	}
	c.EmitSharedBatch(buf[:1])
	evs := c.Events()
	if len(evs) != 5 {
		t.Fatalf("collected %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if i < 4 && ev.Detail == "clobbered" {
			t.Fatalf("collector aliased the reused batch buffer: %+v", ev)
		}
	}
}

// countingSink implements only the plain Sink interface, so the emitter must
// fall back to its per-event loop binding for batches.
type countingSink struct {
	evs []Event
}

func (s *countingSink) Emit(ev Event) { s.evs = append(s.evs, ev) }

// TestEmitterBatchFansOutInOrder checks EmitBatch reaches every endpoint of
// a mixed fan-out — batch-native (Ring), shared (Collector via its batch
// binding) and plain Sink — in emission order.
func TestEmitterBatchFansOutInOrder(t *testing.T) {
	ring := NewRing(16)
	col := &Collector{}
	plain := &countingSink{}
	em := NewEmitter(Tee(ring, col, plain))
	if em.Sinks() != 3 {
		t.Fatalf("emitter bound %d sinks, want 3", em.Sinks())
	}

	batch := aliasBatch(0)
	em.EmitBatch(batch)
	em.EmitBatch(batch[:0]) // empty batch is a no-op, not a panic

	if got := col.Events(); len(got) != len(batch) {
		t.Fatalf("collector got %d events, want %d", len(got), len(batch))
	}
	if len(plain.evs) != len(batch) {
		t.Fatalf("plain sink got %d events, want %d", len(plain.evs), len(batch))
	}
	for i := range batch {
		if plain.evs[i].Txn != batch[i].Txn {
			t.Fatalf("plain sink out of order at %d: %+v", i, plain.evs[i])
		}
		if col.Events()[i].Txn != batch[i].Txn {
			t.Fatalf("collector out of order at %d: %+v", i, col.Events()[i])
		}
	}
	snap := ring.Snapshot(0)
	for i, ev := range snap { // newest first
		if want := batch[len(batch)-1-i].Txn; ev.Txn != want {
			t.Fatalf("ring out of order at %d: txn %d, want %d", i, ev.Txn, want)
		}
	}
}

// TestSpanSnapshotImmuneToPoolReuse takes a deep snapshot, then keeps
// emitting until Keep-compaction recycles the snapshotted span's pooled
// storage, and requires the held snapshot to stay bit-identical — the
// mutate-after-emit regression for the span arena.
func TestSpanSnapshotImmuneToPoolReuse(t *testing.T) {
	set := spanTestSet(t)
	b := NewSpanBuilder(set, SpanOptions{Keep: 1})
	emitAll(b, []Event{
		{Time: 0, Kind: KindArrival, Txn: 0, Workflow: -1, Deadline: 10},
		{Time: 0, Kind: KindDispatch, Txn: 0, Workflow: -1},
		{Time: 4, Kind: KindCompletion, Txn: 0, Workflow: -1},
	})
	snap := b.Snapshot(0)
	if len(snap) != 1 || snap[0].Txn != 0 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	held := Span{}
	held = snap[0]
	held.Segments = append([]Segment(nil), snap[0].Segments...)

	// Two more lifecycles: Keep=1 compaction recycles txn 0's span and its
	// segment storage into the free list, where txn 3 reuses it.
	emitAll(b, []Event{
		{Time: 4, Kind: KindArrival, Txn: 2, Workflow: -1, Deadline: 12},
		{Time: 4, Kind: KindDispatch, Txn: 2, Workflow: -1},
		{Time: 6, Kind: KindCompletion, Txn: 2, Workflow: -1},
		{Time: 6, Kind: KindArrival, Txn: 3, Workflow: -1, Deadline: 30},
		{Time: 6, Kind: KindDispatch, Txn: 3, Workflow: -1},
		{Time: 11, Kind: KindCompletion, Txn: 3, Workflow: -1},
	})

	if snap[0].Txn != held.Txn || snap[0].Finish != held.Finish || snap[0].Response != held.Response {
		t.Fatalf("held snapshot mutated by pool reuse: %+v, want %+v", snap[0], held)
	}
	if !reflect.DeepEqual(snap[0].Segments, held.Segments) {
		t.Fatalf("held snapshot segments mutated by pool reuse: %+v, want %+v", snap[0].Segments, held.Segments)
	}
	checkSpanInvariants(t, snap[0])
}

// TestPooledEmitHammer is the -race target for the pooled event path: one
// writer reusing a single staging buffer for every batch — exactly what the
// scheduler wrapper does — against concurrent snapshot readers on the ring,
// the collector and the span builder.
func TestPooledEmitHammer(t *testing.T) {
	txns := make([]*txn.Transaction, 256)
	for i := range txns {
		txns[i] = &txn.Transaction{
			ID: txn.ID(i), Arrival: float64(i), Deadline: float64(i + 10),
			Length: 1, Weight: 1, Remaining: 1,
		}
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(64)
	col := &Collector{}
	sb := NewSpanBuilder(set, SpanOptions{Keep: 16})
	em := NewEmitter(Tee(ring, col, sb))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ring.Snapshot(16)
				ring.Total()
				if n := len(col.Events()); n < 0 {
					panic("unreachable")
				}
				sb.Snapshot(8)
				sb.Total()
			}
		}()
	}

	var buf [3]Event // reused staging buffer, as in the scheduler wrapper
	for i := range txns {
		at := float64(i)
		id := txn.ID(i)
		buf[0] = Event{Time: at, Kind: KindArrival, Txn: id, Workflow: -1, Deadline: at + 10}
		buf[1] = Event{Time: at, Kind: KindDispatch, Txn: id, Workflow: -1}
		buf[2] = Event{Time: at + 1, Kind: KindCompletion, Txn: id, Workflow: -1}
		em.EmitBatch(buf[:])
	}
	close(stop)
	wg.Wait()

	if ring.Total() != uint64(3*len(txns)) {
		t.Fatalf("ring total %d, want %d", ring.Total(), 3*len(txns))
	}
	if got := sb.Total(); got != uint64(len(txns)) {
		t.Fatalf("span total %d, want %d", got, len(txns))
	}
}
