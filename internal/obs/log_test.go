package obs

import (
	"strings"
	"testing"
)

func TestNewLoggerDeterministicDropsTime(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, true)
	l.Info("replay started", LogKeyPolicy, "asets", LogKeyTxn, 17, LogKeyTime, 3.25)
	got := b.String()
	if strings.Contains(got, "time=") {
		t.Fatalf("deterministic logger emitted a timestamp: %q", got)
	}
	want := "level=INFO msg=\"replay started\" policy=asets txn=17 t=3.25\n"
	if got != want {
		t.Fatalf("log line %q, want %q", got, want)
	}
}

func TestNewLoggerDeterministicByteStable(t *testing.T) {
	render := func() string {
		var b strings.Builder
		l := NewLogger(&b, true)
		for i := 0; i < 5; i++ {
			l.Info("dispatch", LogKeyTxn, i, LogKeyWF, i%2, LogKeyTime, float64(i)*1.5)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("deterministic logger output not byte-stable")
	}
}

func TestNewLoggerWallClockKeepsTime(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, false)
	l.Warn("slow subscriber", LogKeyErr, "buffer full")
	got := b.String()
	if !strings.Contains(got, "time=") {
		t.Fatalf("wall-clock logger dropped the timestamp: %q", got)
	}
	if !strings.Contains(got, "err=\"buffer full\"") {
		t.Fatalf("missing structured field: %q", got)
	}
}
