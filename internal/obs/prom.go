package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Output
// is sorted by metric name, so identical metric states serialize
// identically. Floats use the shortest round-trip formatting, so a scraper
// parsing `asets_tardiness_sum` recovers the exact float the run computed.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	var b strings.Builder
	// Counters and gauges may carry a `{...}` label block inside the
	// registered name (the asets_slo_* per-class series do); HELP/TYPE
	// headers go on the base name, once per base — the snapshot is
	// name-sorted, so labeled cells of one base are adjacent.
	lastBase := ""
	for _, c := range snap.Counters {
		base, labels := splitMetricName(c.Name)
		if base != lastBase {
			writeHeader(&b, base, c.Help, "counter")
			lastBase = base
		}
		fmt.Fprintf(&b, "%s%s %d\n", base, labels, c.Value)
	}
	lastBase = ""
	for _, g := range snap.Gauges {
		base, labels := splitMetricName(g.Name)
		if base != lastBase {
			writeHeader(&b, base, g.Help, "gauge")
			lastBase = base
		}
		fmt.Fprintf(&b, "%s%s %s\n", base, labels, formatFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		writeHeader(&b, h.Name, h.Help, "histogram")
		cum := 0
		for _, bucket := range h.Buckets {
			cum += bucket.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.Name, formatFloat(bucket.Upper), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
	}
	// Sketches render as Prometheus summaries. A registered sketch name may
	// carry a label set (`asets_window_tardiness{window="0003",...}`); the
	// quantile label is spliced into it, _sum/_count keep the original
	// labels, and HELP/TYPE headers are emitted once per base metric name
	// (the snapshot is name-sorted, so labeled cells of one base are
	// adjacent).
	lastBase = ""
	for _, s := range snap.Sketches {
		base, labels := splitMetricName(s.Name)
		if base != lastBase {
			writeHeader(&b, base, s.Help, "summary")
			lastBase = base
		}
		for _, qv := range s.Quantiles {
			fmt.Fprintf(&b, "%s%s %s\n", base, spliceLabel(labels, "quantile", formatFloat(qv.Q)), formatFloat(qv.Value))
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, labels, formatFloat(s.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, s.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// EscapeLabel renders a label value safely for the Prometheus text
// exposition format: backslash, double quote and newline — the characters
// that can terminate the quoted value or the sample line — are escaped per
// the exposition-format rules, and any remaining control character is
// replaced with '_' (no scrape pipeline round-trips raw control bytes).
// Printable text, including '}' inside the quoted value, passes through
// unchanged, so well-formed names keep their exact historical spelling.
func EscapeLabel(v string) string {
	clean := true
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c < 0x20 {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; {
		case c == '\\':
			b.WriteString(`\\`)
		case c == '"':
			b.WriteString(`\"`)
		case c == '\n':
			b.WriteString(`\n`)
		case c < 0x20:
			b.WriteByte('_')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// MetricName renders `base{k1="v1",k2="v2",...}` with exposition-format
// label-value escaping — the constructor for registering labeled counters,
// gauges and sketches whose values may come from outside the repo's own
// constant tables.
func MetricName(base string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: MetricName requires key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitMetricName separates a registered metric name into its base name and
// an optional `{...}` label block (empty string when unlabeled).
func splitMetricName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// spliceLabel appends one label pair to a `{...}` block, creating the block
// when labels is empty.
func spliceLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
