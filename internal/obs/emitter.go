package obs

// Emitter is the devirtualized dispatch table of the enabled event path.
// Instrumentation wrappers construct one at wiring time from whatever Sink
// chain the run was configured with; the fast path then fans each event out
// through a flat function-pointer table instead of nested Sink interface
// calls (Tee inside Tee inside Timed), and passes the event by pointer so a
// single caller-owned scratch struct serves every emission.
//
// The flattening happens once, at construction: Tee chains are inlined,
// Discard and nil sinks are dropped, and every sink implementing SharedSink
// is bound by its EmitShared method (zero-copy borrow). Sinks that only
// implement Sink are wrapped in an adapter that passes a value copy, so
// third-party sinks keep working unchanged.
//
// Each endpoint also gets a batch binding: sinks implementing BatchSink are
// bound by EmitSharedBatch (one synchronization per batch), everything else
// by a per-event loop over its single-event binding. EmitBatch drives those,
// which is how the instrumentation layer's event staging buffer reaches the
// Ring with one lock acquisition per batch instead of per event.
type Emitter struct {
	fns  []func(*Event)
	bfns []func([]Event) // parallel to fns: the batch binding of each endpoint
}

// NewEmitter builds the flattened dispatch table for sink. A nil or Discard
// sink yields an empty table whose Emit is a no-op loop over nothing.
//
//lint:coldpath emitter construction happens once at instrumentation wiring time
func NewEmitter(sink Sink) *Emitter {
	e := &Emitter{}
	e.add(sink)
	return e
}

//lint:coldpath emitter construction happens once at instrumentation wiring time
func (e *Emitter) add(s Sink) {
	switch v := s.(type) {
	case nil:
	case discard:
	case tee:
		for _, sub := range v {
			e.add(sub)
		}
	case SharedSink:
		e.fns = append(e.fns, v.EmitShared)
		if bs, ok := v.(BatchSink); ok {
			e.bfns = append(e.bfns, bs.EmitSharedBatch)
		} else {
			e.bfns = append(e.bfns, func(evs []Event) {
				for i := range evs {
					v.EmitShared(&evs[i])
				}
			})
		}
	default:
		e.fns = append(e.fns, func(ev *Event) { v.Emit(*ev) })
		e.bfns = append(e.bfns, func(evs []Event) {
			for i := range evs {
				v.Emit(evs[i])
			}
		})
	}
}

// Emit fans the event out to every sink in wiring order. The event is only
// borrowed for the duration of the call: sinks capture what they keep by
// copy (the SharedSink contract), so the caller may overwrite the struct for
// its next emission as soon as Emit returns.
//
// Emit is an observability hot-path root: with instrumentation enabled,
// every scheduling decision of a run flows through this loop.
//
//lint:hotpath
func (e *Emitter) Emit(ev *Event) {
	for _, fn := range e.fns {
		fn(ev)
	}
}

// EmitBatch fans a batch of events out to every sink in wiring order, using
// each endpoint's batch binding. The batch is borrowed under the SharedSink
// contract: the caller may overwrite the slice as soon as EmitBatch returns.
//
//lint:hotpath
func (e *Emitter) EmitBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	for _, fn := range e.bfns {
		fn(evs)
	}
}

// Sinks returns the number of bound sink endpoints, so wiring code can tell
// an enabled pipeline from an empty one.
func (e *Emitter) Sinks() int { return len(e.fns) }
