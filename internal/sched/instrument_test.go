package sched

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/txn"
)

func instrumentSet(t *testing.T) *txn.Set {
	t.Helper()
	txns := []*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 2, Length: 1, Weight: 1},
		{ID: 1, Arrival: 0.5, Deadline: 1.2, Length: 0.4, Weight: 1},
		{ID: 2, Arrival: 1, Deadline: 1.5, Length: 2, Weight: 1}, // will miss
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	set.ResetAll()
	return set
}

func TestInstrumentNoopWhenUnconfigured(t *testing.T) {
	s := NewEDF()
	if got := Instrument(s, nil, nil); got != s {
		t.Fatalf("Instrument(nil, nil) wrapped the scheduler: %T", got)
	}
	// A Discard sink with no registry observes nothing: also zero overhead.
	if got := Instrument(s, obs.Discard, nil); got != s {
		t.Fatalf("Instrument(Discard, nil) wrapped the scheduler: %T", got)
	}
}

func TestInstrumentUnwrap(t *testing.T) {
	s := NewEDF()
	w := Instrument(s, obs.Discard, obs.NewRegistry())
	in, ok := w.(*Instrumented)
	if !ok {
		t.Fatalf("Instrument returned %T", w)
	}
	if in.Unwrap() != s {
		t.Fatal("Unwrap lost the inner scheduler")
	}
	if in.Name() != s.Name() {
		t.Fatalf("name changed: %q vs %q", in.Name(), s.Name())
	}
}

// TestInstrumentEmitsDecisionEvents drives the wrapper through the
// simulator's check-out protocol by hand and checks the event stream and
// the registry agree with what happened.
func TestInstrumentEmitsDecisionEvents(t *testing.T) {
	set := instrumentSet(t)
	col := &obs.Collector{}
	reg := obs.NewRegistry()
	s := Instrument(NewEDF(), col, reg)
	s.Init(set)

	// t0 arrives and runs until t1 arrives at 0.5 (preemption point).
	s.OnArrival(0, set.ByID(0))
	got := s.Next(0)
	if got == nil || got.ID != 0 {
		t.Fatalf("Next = %v", got)
	}
	got.Remaining -= 0.5
	s.OnArrival(0.5, set.ByID(1))
	s.OnPreempt(0.5, got)

	// t1 has the earlier deadline: runs 0.5→0.9 and completes on time.
	got = s.Next(0.5)
	if got == nil || got.ID != 1 {
		t.Fatalf("Next = %v", got)
	}
	got.Remaining = 0
	got.Finished = true
	got.FinishTime = 0.9
	s.OnCompletion(0.9, got)

	// t0 resumes and completes on time; then t2 arrives late and misses.
	got = s.Next(0.9)
	got.Remaining = 0
	got.Finished = true
	got.FinishTime = 1.4
	s.OnCompletion(1.4, got)

	s.OnArrival(1.4, set.ByID(2))
	got = s.Next(1.4)
	if got == nil || got.ID != 2 {
		t.Fatalf("Next = %v", got)
	}
	got.Remaining = 0
	got.Finished = true
	got.FinishTime = 3.4
	s.OnCompletion(3.4, got)

	// Events and histogram observations batch until the run loop drains
	// them; this test drives the wrapper by hand, so drain explicitly
	// before reading the collector or the registry.
	s.(ObsFlusher).FlushObs()

	kinds := map[obs.Kind]int{}
	for _, ev := range col.Events() {
		kinds[ev.Kind]++
	}
	want := map[obs.Kind]int{
		obs.KindArrival:      3,
		obs.KindDispatch:     4,
		obs.KindPreempt:      1,
		obs.KindCompletion:   3,
		obs.KindDeadlineMiss: 1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("%v events = %d, want %d", k, kinds[k], n)
		}
	}

	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters[MetricArrivals] != 3 || counters[MetricDispatches] != 4 ||
		counters[MetricPreemptions] != 1 || counters[MetricCompletions] != 3 ||
		counters[MetricMisses] != 1 {
		t.Fatalf("counters = %v", counters)
	}
	var tard obs.HistogramValue
	for _, h := range snap.Histograms {
		if h.Name == MetricTardiness {
			tard = h
		}
	}
	if tard.Count != 3 || tard.Sum != 1.9 { // only t2 is tardy: 3.4 - 1.5
		t.Fatalf("tardiness histogram = %+v", tard)
	}

	// Events are stamped with the decision's simulated time.
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindDeadlineMiss && (ev.Time != 3.4 || ev.Tardiness != 1.9) {
			t.Fatalf("deadline-miss event = %+v", ev)
		}
	}
}

// sinkRecorder records SetSink installations.
type sinkRecorder struct {
	Scheduler
	sink obs.Sink
}

func (s *sinkRecorder) SetSink(sink obs.Sink) { s.sink = sink }

func TestInstrumentPropagatesSink(t *testing.T) {
	rec := &sinkRecorder{Scheduler: NewEDF()}
	col := &obs.Collector{}
	reg := obs.NewRegistry()
	wrapped := Instrument(rec, col, reg)
	if rec.sink == nil {
		t.Fatal("sink not propagated to SinkSetter scheduler")
	}
	// Policy-internal events pass through the counting shim into the same
	// stream and bump their registry counters. They stage in the wrapper's
	// event buffer until a drain delivers them.
	rec.sink.Emit(obs.Event{Time: 1, Kind: obs.KindModeSwitch, Txn: -1, Workflow: 0})
	rec.sink.Emit(obs.Event{Time: 2, Kind: obs.KindAging, Txn: 0, Workflow: -1})
	wrapped.(ObsFlusher).FlushObs()
	if n := len(col.Events()); n != 2 {
		t.Fatalf("%d events reached the outer sink", n)
	}
	counters := map[string]uint64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters[MetricModeSwitch] != 1 || counters[MetricAging] != 1 {
		t.Fatalf("internal-event counters = %v", counters)
	}
}
