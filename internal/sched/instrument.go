package sched

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/txn"
)

// SinkSetter is the optional seam for policies that emit events about their
// internal decisions — ASETS* reports balance-aware aging activations and
// EDF↔HDF entity migrations through it. Instrument propagates its sink to
// any wrapped scheduler implementing this interface, so policy-internal
// events land in the same stream as the decision-loop events.
type SinkSetter interface {
	SetSink(obs.Sink)
}

// ObsFlusher is implemented by schedulers whose instrumentation buffers
// observations for batched delivery. The run loop (simulator, executor)
// calls FlushObs once after the last decision callback, so registry
// snapshots taken after a run see every observation. Mid-run snapshots see
// at most one batch of lag per series — bounded, and irrelevant to any
// deterministic output, which is always post-flush.
type ObsFlusher interface {
	FlushObs()
}

// Metric and event names of the decision-loop instrumentation; the full
// taxonomy is documented in docs/OBSERVABILITY.md.
const (
	MetricArrivals    = "asets_sched_arrivals_total"
	MetricDispatches  = "asets_sched_dispatches_total"
	MetricPreemptions = "asets_sched_preemptions_total"
	MetricCompletions = "asets_sched_completions_total"
	MetricMisses      = "asets_sched_deadline_misses_total"
	MetricAging       = "asets_sched_aging_activations_total"
	MetricModeSwitch  = "asets_sched_mode_switches_total"
	// MetricConflictDefers counts queued transactions a conflict-aware
	// policy (contention.Deferring) skipped in favour of a later
	// non-conflicting one.
	MetricConflictDefers = "asets_sched_conflict_defers_total"
	MetricTardiness      = "asets_tardiness"
	MetricResponse       = "asets_response_time"
	MetricSimNow         = "asets_sim_now"
)

// histBatchSize is the per-histogram insert buffer length: completion
// observations accumulate in a fixed inline array and flush under one
// histogram lock when the buffer fills or FlushObs drains.
const histBatchSize = 256

// evBatchSize is the event staging buffer length: emitted events accumulate
// in a fixed inline array and reach the sink chain through one
// obs.Emitter.EmitBatch call (one Ring lock acquisition per batch) when the
// buffer fills or FlushObs drains. Delivery order is exactly emission order,
// so batching is invisible to every sink fold.
const evBatchSize = 128

// histBatch is a fixed-capacity insert buffer for one registry histogram.
// Values reach the histogram in exact insertion order whether they leave via
// a full-buffer flush or FlushObs, so the running sum stays bit-identical to
// unbatched observation.
type histBatch struct {
	n   int
	buf [histBatchSize]float64
}

// push buffers v, flushing into h when the buffer fills.
func (b *histBatch) push(h *obs.Histogram, v float64) {
	b.buf[b.n] = v
	b.n++
	if b.n == histBatchSize {
		h.ObserveBatch(b.buf[:])
		b.n = 0
	}
}

// flush drains any pending values into h.
func (b *histBatch) flush(h *obs.Histogram) {
	if b.n > 0 {
		h.ObserveBatch(b.buf[:b.n])
		b.n = 0
	}
}

// Instrumented wraps any Scheduler with the unified observability layer:
// every decision-loop callback (arrival, dispatch, preemption, completion,
// deadline miss) emits a typed obs.Event and bumps registry metrics. Because
// the simulator and the executor drive every policy exclusively through the
// Scheduler interface, instrumenting here covers all policies without
// per-policy edits.
//
// The event path is built for zero steady-state allocation: emissions write
// into a fixed inline staging buffer (sinks capture by copy — the
// obs.SharedSink contract), the sink chain is devirtualized into an
// obs.Emitter function table at wiring time, batches leave through
// obs.Emitter.EmitBatch when the buffer fills or FlushObs drains, and
// histogram observations batch through fixed inline buffers drained the same
// way. The staging buffer is safe because the run loop drives the scheduler
// from one goroutine and every emission completes before the next one starts
// — including policy-internal emissions through innerSink, which happen
// inside inner callbacks, after the wrapper's own staging for that callback
// returned.
type Instrumented struct {
	inner Scheduler
	em    *obs.Emitter
	emit  bool     // em has at least one endpoint
	sink  obs.Sink // counting shim handed to SinkSetter policies and the fault recorder

	evBuf [evBatchSize]obs.Event // staged events, delivered in emission order
	evN   int

	arrivals       *obs.Counter
	dispatches     *obs.Counter
	preemptions    *obs.Counter
	completions    *obs.Counter
	misses         *obs.Counter
	aging          *obs.Counter
	modeSwitches   *obs.Counter
	conflictDefers *obs.Counter
	tardiness      *obs.Histogram
	response       *obs.Histogram
	simNow         *obs.Gauge

	// Locally accumulated registry updates: the run loop is single-goroutine,
	// so counts accumulate in plain fields and reach the shared atomic
	// counters in one Add each per FlushObs drain, instead of one atomic RMW
	// per decision. Mid-run registry reads lag by at most one drain interval
	// (the executor drains every loop iteration; deterministic outputs are
	// always post-flush).
	nArrivals       uint64
	nDispatches     uint64
	nPreemptions    uint64
	nCompletions    uint64
	nMisses         uint64
	nAging          uint64
	nModeSwitches   uint64
	nConflictDefers uint64
	nowVal          float64
	nowSet          bool

	tardBuf histBatch
	respBuf histBatch
}

// instrumentedPool recycles Instrumented wrappers between runs. The wrapper
// is the largest per-run allocation of an enabled pipeline (~16KB of inline
// staging buffers), so short benchmark and sweep runs otherwise pay its
// allocation, zeroing and GC-mark cost on every sim.Run. Entries enter the
// pool only through ReleaseObs, which drains them first, so a pooled wrapper
// is always in the post-flush state (empty buffers, zero local counts).
var instrumentedPool = sync.Pool{}

// Instrument wraps s with event emission into sink and metric updates into
// reg. Either may be nil; with both disabled (nil or obs.Discard sink, nil
// registry) s is returned unchanged, so uninstrumented runs pay zero
// overhead — nothing would observe the events or the counts. Events are
// stamped with the simulated `now` of each callback — never the host clock.
//
//lint:coldpath instrumentation wiring is per-run setup
func Instrument(s Scheduler, sink obs.Sink, reg *obs.Registry) Scheduler {
	if (sink == nil || sink == obs.Discard) && reg == nil {
		return s
	}
	if sink == nil {
		sink = obs.Discard
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	em := obs.NewEmitter(sink)
	in, _ := instrumentedPool.Get().(*Instrumented)
	if in == nil {
		in = &Instrumented{}
	}
	in.inner = s
	in.em = em
	in.emit = em.Sinks() > 0
	in.arrivals = reg.Counter(MetricArrivals, "transactions submitted to the scheduler")
	in.dispatches = reg.Counter(MetricDispatches, "transactions checked out to a server")
	in.preemptions = reg.Counter(MetricPreemptions, "transactions returned unfinished after running")
	in.completions = reg.Counter(MetricCompletions, "transactions finished")
	in.misses = reg.Counter(MetricMisses, "completions past the deadline")
	in.aging = reg.Counter(MetricAging, "balance-aware T_old activations")
	in.modeSwitches = reg.Counter(MetricModeSwitch, "EDF/HDF scheduling-entity migrations")
	in.conflictDefers = reg.Counter(MetricConflictDefers, "queued transactions deferred by conflict-aware dispatch")
	in.tardiness = reg.Histogram(MetricTardiness, "tardiness of completed transactions", 2)
	in.response = reg.Histogram(MetricResponse, "response time (finish - arrival) of completed transactions", 2)
	in.simNow = reg.Gauge(MetricSimNow, "simulated time of the latest scheduler callback")
	// Policy-internal events (aging, mode switches) flow through a counting
	// shim so they update the registry on their way into the stream. The shim
	// points at the wrapper itself, so a recycled wrapper reuses its shim.
	if in.sink == nil {
		in.sink = &innerSink{in: in}
	}
	if ss, ok := s.(SinkSetter); ok {
		ss.SetSink(in.sink)
	}
	return in
}

// ReleaseObs drains an instrumented scheduler and recycles its wrapper for a
// future Instrument call. Callers may invoke it only when the run is over
// and no reference to the wrapper, its EventSink, or a SinkSetter policy
// that could still emit survives — the simulator releases at the end of a
// successful Run, where the wrapper was created and never escapes. For any
// other scheduler it is a no-op.
//
//lint:coldpath release is per-run teardown
func ReleaseObs(s Scheduler) {
	in, ok := s.(*Instrumented)
	if !ok {
		return
	}
	in.FlushObs() // idempotent: guarantees the pooled state is post-flush
	in.inner = nil
	in.em = nil
	instrumentedPool.Put(in)
}

// Unwrap returns the wrapped scheduler, for callers that need the concrete
// policy (invariant auditing, queue-length probes).
func (in *Instrumented) Unwrap() Scheduler { return in.inner }

// Name implements Scheduler.
func (in *Instrumented) Name() string { return in.inner.Name() }

// Init implements Scheduler.
func (in *Instrumented) Init(set *txn.Set) { in.inner.Init(set) }

// FlushObs implements ObsFlusher: delivers staged events to the sink chain,
// drains the batched histogram buffers, and publishes the locally accumulated
// counter deltas, so a post-run registry snapshot or sink read sees every
// observation.
func (in *Instrumented) FlushObs() {
	if in.evN > 0 {
		in.flushEvents()
	}
	in.tardBuf.flush(in.tardiness)
	in.respBuf.flush(in.response)
	in.flushCounts()
}

// flushCounts publishes the locally accumulated counts to the shared
// registry handles: one atomic add per nonzero counter per drain.
func (in *Instrumented) flushCounts() {
	if in.nArrivals > 0 {
		in.arrivals.Add(in.nArrivals)
		in.nArrivals = 0
	}
	if in.nDispatches > 0 {
		in.dispatches.Add(in.nDispatches)
		in.nDispatches = 0
	}
	if in.nPreemptions > 0 {
		in.preemptions.Add(in.nPreemptions)
		in.nPreemptions = 0
	}
	if in.nCompletions > 0 {
		in.completions.Add(in.nCompletions)
		in.nCompletions = 0
	}
	if in.nMisses > 0 {
		in.misses.Add(in.nMisses)
		in.nMisses = 0
	}
	if in.nAging > 0 {
		in.aging.Add(in.nAging)
		in.nAging = 0
	}
	if in.nModeSwitches > 0 {
		in.modeSwitches.Add(in.nModeSwitches)
		in.nModeSwitches = 0
	}
	if in.nConflictDefers > 0 {
		in.conflictDefers.Add(in.nConflictDefers)
		in.nConflictDefers = 0
	}
	if in.nowSet {
		in.simNow.Set(in.nowVal)
		in.nowSet = false
	}
}

// flushEvents delivers the staged events through the emitter's batch path.
func (in *Instrumented) flushEvents() {
	in.em.EmitBatch(in.evBuf[:in.evN])
	in.evN = 0
}

// stage claims the next staging slot, flushing first when the buffer is
// full. Callers fill every numeric field of the returned slot in place:
// writing through the pointer spares the temporary-struct copy a composite
// literal costs, and Detail — the slot's only pointer field — is cleared
// here only when a recycled slot actually holds one, so the steady-state
// store sequence never triggers a write barrier.
//
//lint:hotpath
func (in *Instrumented) stage() *obs.Event {
	if in.evN == evBatchSize {
		in.flushEvents()
	}
	e := &in.evBuf[in.evN]
	in.evN++
	e.Seq = 0
	if e.Detail != "" {
		e.Detail = ""
	}
	return e
}

// OnArrival implements Scheduler.
func (in *Instrumented) OnArrival(now float64, t *txn.Transaction) {
	in.nArrivals++
	in.nowVal, in.nowSet = now, true
	if in.emit {
		e := in.stage()
		e.Time, e.Kind, e.Txn, e.Workflow = now, obs.KindArrival, t.ID, -1
		e.Deadline, e.Remaining, e.Tardiness = t.Deadline, t.Remaining, 0
	}
	in.inner.OnArrival(now, t)
}

// Next implements Scheduler.
func (in *Instrumented) Next(now float64) *txn.Transaction {
	t := in.inner.Next(now)
	if t != nil {
		in.nDispatches++
		in.nowVal, in.nowSet = now, true
		if in.emit {
			e := in.stage()
			e.Time, e.Kind, e.Txn, e.Workflow = now, obs.KindDispatch, t.ID, -1
			e.Deadline, e.Remaining, e.Tardiness = t.Deadline, t.Remaining, 0
		}
	}
	return t
}

// OnPreempt implements Scheduler.
func (in *Instrumented) OnPreempt(now float64, t *txn.Transaction) {
	in.nPreemptions++
	in.nowVal, in.nowSet = now, true
	if in.emit {
		e := in.stage()
		e.Time, e.Kind, e.Txn, e.Workflow = now, obs.KindPreempt, t.ID, -1
		e.Deadline, e.Remaining, e.Tardiness = t.Deadline, t.Remaining, 0
	}
	in.inner.OnPreempt(now, t)
}

// OnCompletion implements Scheduler. The transaction is already marked
// finished by the simulator/executor, so tardiness is final here.
func (in *Instrumented) OnCompletion(now float64, t *txn.Transaction) {
	tard := t.Tardiness()
	in.nCompletions++
	in.nowVal, in.nowSet = now, true
	in.tardBuf.push(in.tardiness, tard)
	in.respBuf.push(in.response, t.FinishTime-t.Arrival)
	if tard > 0 {
		in.nMisses++
	}
	if in.emit {
		e := in.stage()
		e.Time, e.Kind, e.Txn, e.Workflow = now, obs.KindCompletion, t.ID, -1
		e.Deadline, e.Remaining, e.Tardiness = t.Deadline, 0, tard
		if tard > 0 {
			e = in.stage()
			e.Time, e.Kind, e.Txn, e.Workflow = now, obs.KindDeadlineMiss, t.ID, -1
			e.Deadline, e.Remaining, e.Tardiness = t.Deadline, 0, tard
		}
	}
	in.inner.OnCompletion(now, t)
}

// innerSink stages policy-internal events into the wrapper's event buffer
// while counting them in the registry, keeping them in stream order with the
// decision-loop events: policies emit from inside scheduler callbacks on the
// run-loop goroutine, after any wrapper staging for the same callback has
// returned. The fault recorder shares this entry (see EventSink), so outage
// and shedding events stay ordered with everything else too.
type innerSink struct {
	in *Instrumented
}

// Emit implements obs.Sink.
func (s *innerSink) Emit(ev obs.Event) {
	switch ev.Kind {
	case obs.KindAging:
		s.in.nAging++
	case obs.KindModeSwitch:
		s.in.nModeSwitches++
	case obs.KindConflictDefer:
		s.in.nConflictDefers++
	case obs.KindArrival, obs.KindDispatch, obs.KindPreempt,
		obs.KindCompletion, obs.KindDeadlineMiss:
		// Decision-loop kinds are counted by the wrapper itself.
	case obs.KindAbort, obs.KindRestart, obs.KindStall, obs.KindShed,
		obs.KindDegradeEnter, obs.KindDegradeExit,
		obs.KindRoute, obs.KindFailover, obs.KindEject, obs.KindRecover,
		obs.KindValidateFail, obs.KindAlertFire, obs.KindAlertResolve:
		// Fault-, cluster-, contention- and SLO-layer kinds are counted by
		// their recorders/engines at their emission site (the
		// sim/executor/cluster event loop); pass them through unchanged.
	default:
		panic("sched: innerSink received unknown event kind")
	}
	if s.in.emit {
		if s.in.evN == evBatchSize {
			s.in.flushEvents()
		}
		s.in.evBuf[s.in.evN] = ev
		s.in.evN++
	}
}

// EventSink returns the ordered event entry point of an instrumented
// scheduler: a sink that stages into the same buffer as the decision-loop
// callbacks, so out-of-band emitters (the fault recorder) interleave with
// scheduler events in true emission order even while delivery is batched.
// For any other scheduler it returns fallback unchanged.
func EventSink(s Scheduler, fallback obs.Sink) obs.Sink {
	if in, ok := s.(*Instrumented); ok {
		return in.sink
	}
	return fallback
}

var _ Scheduler = (*Instrumented)(nil)
var _ ObsFlusher = (*Instrumented)(nil)
