package sched

import (
	"repro/internal/obs"
	"repro/internal/txn"
)

// SinkSetter is the optional seam for policies that emit events about their
// internal decisions — ASETS* reports balance-aware aging activations and
// EDF↔HDF entity migrations through it. Instrument propagates its sink to
// any wrapped scheduler implementing this interface, so policy-internal
// events land in the same stream as the decision-loop events.
type SinkSetter interface {
	SetSink(obs.Sink)
}

// Metric and event names of the decision-loop instrumentation; the full
// taxonomy is documented in docs/OBSERVABILITY.md.
const (
	MetricArrivals    = "asets_sched_arrivals_total"
	MetricDispatches  = "asets_sched_dispatches_total"
	MetricPreemptions = "asets_sched_preemptions_total"
	MetricCompletions = "asets_sched_completions_total"
	MetricMisses      = "asets_sched_deadline_misses_total"
	MetricAging       = "asets_sched_aging_activations_total"
	MetricModeSwitch  = "asets_sched_mode_switches_total"
	MetricTardiness   = "asets_tardiness"
	MetricResponse    = "asets_response_time"
	MetricSimNow      = "asets_sim_now"
)

// Instrumented wraps any Scheduler with the unified observability layer:
// every decision-loop callback (arrival, dispatch, preemption, completion,
// deadline miss) emits a typed obs.Event and bumps registry metrics. Because
// the simulator and the executor drive every policy exclusively through the
// Scheduler interface, instrumenting here covers all policies without
// per-policy edits.
type Instrumented struct {
	inner Scheduler
	sink  obs.Sink

	arrivals    *obs.Counter
	dispatches  *obs.Counter
	preemptions *obs.Counter
	completions *obs.Counter
	misses      *obs.Counter
	tardiness   *obs.Histogram
	response    *obs.Histogram
	simNow      *obs.Gauge
}

// Instrument wraps s with event emission into sink and metric updates into
// reg. Either may be nil; with both disabled (nil or obs.Discard sink, nil
// registry) s is returned unchanged, so uninstrumented runs pay zero
// overhead — nothing would observe the events or the counts. Events are
// stamped with the simulated `now` of each callback — never the host clock.
//
//lint:coldpath instrumentation wiring is per-run setup
func Instrument(s Scheduler, sink obs.Sink, reg *obs.Registry) Scheduler {
	if (sink == nil || sink == obs.Discard) && reg == nil {
		return s
	}
	if sink == nil {
		sink = obs.Discard
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	in := &Instrumented{
		inner:       s,
		arrivals:    reg.Counter(MetricArrivals, "transactions submitted to the scheduler"),
		dispatches:  reg.Counter(MetricDispatches, "transactions checked out to a server"),
		preemptions: reg.Counter(MetricPreemptions, "transactions returned unfinished after running"),
		completions: reg.Counter(MetricCompletions, "transactions finished"),
		misses:      reg.Counter(MetricMisses, "completions past the deadline"),
		tardiness:   reg.Histogram(MetricTardiness, "tardiness of completed transactions", 2),
		response:    reg.Histogram(MetricResponse, "response time (finish - arrival) of completed transactions", 2),
		simNow:      reg.Gauge(MetricSimNow, "simulated time of the latest scheduler callback"),
	}
	// Policy-internal events (aging, mode switches) flow through a counting
	// shim so they update the registry on their way into the stream.
	in.sink = innerSink{
		out:          sink,
		aging:        reg.Counter(MetricAging, "balance-aware T_old activations"),
		modeSwitches: reg.Counter(MetricModeSwitch, "EDF/HDF scheduling-entity migrations"),
	}
	if ss, ok := s.(SinkSetter); ok {
		ss.SetSink(in.sink)
	}
	return in
}

// Unwrap returns the wrapped scheduler, for callers that need the concrete
// policy (invariant auditing, queue-length probes).
func (in *Instrumented) Unwrap() Scheduler { return in.inner }

// Name implements Scheduler.
func (in *Instrumented) Name() string { return in.inner.Name() }

// Init implements Scheduler.
func (in *Instrumented) Init(set *txn.Set) { in.inner.Init(set) }

// OnArrival implements Scheduler.
func (in *Instrumented) OnArrival(now float64, t *txn.Transaction) {
	in.arrivals.Inc()
	in.simNow.Set(now)
	in.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindArrival, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining,
	})
	in.inner.OnArrival(now, t)
}

// Next implements Scheduler.
func (in *Instrumented) Next(now float64) *txn.Transaction {
	t := in.inner.Next(now)
	if t != nil {
		in.dispatches.Inc()
		in.simNow.Set(now)
		in.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindDispatch, Txn: t.ID, Workflow: -1,
			Deadline: t.Deadline, Remaining: t.Remaining,
		})
	}
	return t
}

// OnPreempt implements Scheduler.
func (in *Instrumented) OnPreempt(now float64, t *txn.Transaction) {
	in.preemptions.Inc()
	in.simNow.Set(now)
	in.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindPreempt, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining,
	})
	in.inner.OnPreempt(now, t)
}

// OnCompletion implements Scheduler. The transaction is already marked
// finished by the simulator/executor, so tardiness is final here.
func (in *Instrumented) OnCompletion(now float64, t *txn.Transaction) {
	tard := t.Tardiness()
	in.completions.Inc()
	in.simNow.Set(now)
	in.tardiness.Observe(tard)
	in.response.Observe(t.FinishTime - t.Arrival)
	in.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindCompletion, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Tardiness: tard,
	})
	if tard > 0 {
		in.misses.Inc()
		in.sink.Emit(obs.Event{
			Time: now, Kind: obs.KindDeadlineMiss, Txn: t.ID, Workflow: -1,
			Deadline: t.Deadline, Tardiness: tard,
		})
	}
	in.inner.OnCompletion(now, t)
}

// innerSink forwards policy-internal events to the real sink while counting
// them in the registry.
type innerSink struct {
	out          obs.Sink
	aging        *obs.Counter
	modeSwitches *obs.Counter
}

// Emit implements obs.Sink.
func (s innerSink) Emit(ev obs.Event) {
	switch ev.Kind {
	case obs.KindAging:
		s.aging.Inc()
	case obs.KindModeSwitch:
		s.modeSwitches.Inc()
	case obs.KindArrival, obs.KindDispatch, obs.KindPreempt,
		obs.KindCompletion, obs.KindDeadlineMiss:
		// Decision-loop kinds are counted by the wrapper itself.
	case obs.KindAbort, obs.KindRestart, obs.KindStall, obs.KindShed,
		obs.KindDegradeEnter, obs.KindDegradeExit:
		// Fault-layer kinds are counted by fault.Recorder at their emission
		// site (the sim/executor event loop); pass them through unchanged.
	default:
		panic("sched: innerSink received unknown event kind")
	}
	s.out.Emit(ev)
}

var _ Scheduler = (*Instrumented)(nil)
