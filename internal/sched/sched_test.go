package sched

import (
	"testing"

	"repro/internal/txn"
)

func mk(id int, arrival, deadline, length float64, deps ...txn.ID) *txn.Transaction {
	return &txn.Transaction{
		ID:       txn.ID(id),
		Arrival:  arrival,
		Deadline: deadline,
		Length:   length,
		Weight:   1,
		Deps:     deps,
	}
}

func mustSet(t *testing.T, txns ...*txn.Transaction) *txn.Set {
	t.Helper()
	for _, tx := range txns {
		tx.Reset()
	}
	s, err := txn.NewSet(txns)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestReadyTrackerIndependent(t *testing.T) {
	s := mustSet(t, mk(0, 0, 10, 1), mk(1, 0, 10, 1))
	rt := NewReadyTracker(s)
	if rt.Ready(s.ByID(0)) {
		t.Fatal("unarrived transaction reported ready")
	}
	if !rt.Arrive(s.ByID(0)) {
		t.Fatal("independent transaction not ready on arrival")
	}
	if !rt.Ready(s.ByID(0)) {
		t.Fatal("Ready disagrees with Arrive")
	}
}

func TestReadyTrackerDependencyChain(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 1),
		mk(1, 0, 10, 1, 0),
		mk(2, 0, 10, 1, 1),
	)
	rt := NewReadyTracker(s)
	for i := 0; i < 3; i++ {
		rt.Arrive(s.ByID(txn.ID(i)))
	}
	if rt.Ready(s.ByID(1)) || rt.Ready(s.ByID(2)) {
		t.Fatal("dependent transactions ready before dependency completion")
	}
	newly := rt.Complete(s.ByID(0))
	if len(newly) != 1 || newly[0].ID != 1 {
		t.Fatalf("newly ready after T0 = %v, want [T1]", newly)
	}
	if rt.Ready(s.ByID(2)) {
		t.Fatal("T2 ready before T1 finished")
	}
	newly = rt.Complete(s.ByID(1))
	if len(newly) != 1 || newly[0].ID != 2 {
		t.Fatalf("newly ready after T1 = %v, want [T2]", newly)
	}
}

func TestReadyTrackerLateArrival(t *testing.T) {
	// Dependency finishes before the dependent arrives: the dependent must
	// become ready at arrival, not at the (earlier) completion.
	s := mustSet(t, mk(0, 0, 10, 1), mk(1, 5, 15, 1, 0))
	rt := NewReadyTracker(s)
	rt.Arrive(s.ByID(0))
	if newly := rt.Complete(s.ByID(0)); len(newly) != 0 {
		t.Fatalf("unarrived dependent surfaced at completion: %v", newly)
	}
	if !rt.Arrive(s.ByID(1)) {
		t.Fatal("dependent with finished deps not ready on arrival")
	}
}

func TestReadyTrackerMultipleDeps(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 1),
		mk(1, 0, 10, 1),
		mk(2, 0, 10, 1, 0, 1),
	)
	rt := NewReadyTracker(s)
	for i := 0; i < 3; i++ {
		rt.Arrive(s.ByID(txn.ID(i)))
	}
	if newly := rt.Complete(s.ByID(0)); len(newly) != 0 {
		t.Fatal("T2 surfaced with one of two deps outstanding")
	}
	if newly := rt.Complete(s.ByID(1)); len(newly) != 1 || newly[0].ID != 2 {
		t.Fatal("T2 did not surface when its last dep finished")
	}
}

func TestReadyTrackerFinished(t *testing.T) {
	s := mustSet(t, mk(0, 0, 10, 1))
	rt := NewReadyTracker(s)
	rt.Arrive(s.ByID(0))
	rt.Complete(s.ByID(0))
	if rt.Ready(s.ByID(0)) {
		t.Fatal("finished transaction reported ready")
	}
	if !rt.Finished(s.ByID(0)) || !rt.Arrived(s.ByID(0)) {
		t.Fatal("state accessors disagree")
	}
}
