package sched

import (
	"testing"

	"repro/internal/txn"
)

// edfLess mirrors NewEDF's comparator for backend tests.
func edfLess(a, b *txn.Transaction) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.ID < b.ID
}

func TestBackendsProduceIdenticalSchedules(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 30, 5),
			mk(1, 0, 10, 5),
			mk(2, 0, 20, 5),
			mk(3, 0, 20, 2), // deadline tie with 2, broken by ID
			mk(4, 0, 5, 1),
		)
	}
	heapOrder := drive(t, NewPriorityPolicyWithBackend("EDF-heap", edfLess, BackendHeap), build())
	treapOrder := drive(t, NewPriorityPolicyWithBackend("EDF-treap", edfLess, BackendTreap), build())
	for i := range heapOrder {
		if heapOrder[i] != treapOrder[i] {
			t.Fatalf("backends diverge: heap %v vs treap %v", heapOrder, treapOrder)
		}
	}
}

func TestTreapBackendPopEmpty(t *testing.T) {
	set := mustSet(t, mk(0, 5, 10, 1))
	s := NewPriorityPolicyWithBackend("EDF-treap", edfLess, BackendTreap)
	s.Init(set)
	if s.Next(0) != nil {
		t.Fatal("empty treap backend returned a transaction")
	}
}

func TestTreapBackendPreemptReinsert(t *testing.T) {
	set := mustSet(t, mk(0, 0, 100, 10), mk(1, 0, 50, 2))
	s := NewPriorityPolicyWithBackend("EDF-treap", edfLess, BackendTreap)
	s.Init(set)
	s.OnArrival(0, set.ByID(0))
	first := s.Next(0)
	if first.ID != 1 && first.ID != 0 {
		t.Fatalf("unexpected first %v", first)
	}
	// Only T0 has arrived, so it must be first despite the later deadline.
	if first.ID != 0 {
		t.Fatalf("first = T%d, want T0", first.ID)
	}
	first.Remaining -= 4
	s.OnPreempt(4, first)
	s.OnArrival(4, set.ByID(1))
	second := s.Next(4)
	if second.ID != 1 {
		t.Fatalf("second = T%d, want T1 (earlier deadline)", second.ID)
	}
}

func TestBackendNilComparatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil comparator accepted")
		}
	}()
	NewPriorityPolicyWithBackend("X", nil, BackendTreap)
}
