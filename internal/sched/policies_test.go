package sched

import (
	"testing"

	"repro/internal/txn"
)

// drive simulates the check-out protocol by hand over a static ready pool:
// it arrives all transactions at t=0 and returns the completion order when
// each chosen transaction runs to completion (no preemption).
func drive(t *testing.T, s Scheduler, set *txn.Set) []txn.ID {
	t.Helper()
	set.ResetAll()
	s.Init(set)
	now := 0.0
	for _, tx := range set.Txns {
		s.OnArrival(now, tx)
	}
	var order []txn.ID
	for len(order) < set.Len() {
		tx := s.Next(now)
		if tx == nil {
			t.Fatalf("%s: Next returned nil with %d remaining", s.Name(), set.Len()-len(order))
		}
		now += tx.Remaining
		tx.Remaining = 0
		tx.Finished = true
		tx.FinishTime = now
		order = append(order, tx.ID)
		s.OnCompletion(now, tx)
	}
	return order
}

func wantOrder(t *testing.T, s Scheduler, set *txn.Set, want ...txn.ID) {
	t.Helper()
	got := drive(t, s, set)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: order = %v, want %v", s.Name(), got, want)
		}
	}
}

func TestFCFSOrder(t *testing.T) {
	set := mustSet(t,
		mk(0, 3, 100, 5),
		mk(1, 1, 100, 5),
		mk(2, 2, 100, 5),
	)
	wantOrder(t, NewFCFS(), set, 1, 2, 0)
}

func TestEDFOrder(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 30, 5),
		mk(1, 0, 10, 5),
		mk(2, 0, 20, 5),
	)
	wantOrder(t, NewEDF(), set, 1, 2, 0)
}

func TestSRPTOrder(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 100, 7),
		mk(1, 0, 100, 2),
		mk(2, 0, 100, 4),
	)
	wantOrder(t, NewSRPT(), set, 1, 2, 0)
}

func TestLSOrder(t *testing.T) {
	// Slack = d - r at a common instant: T0: 30-5=25, T1: 12-10=2, T2: 20-4=16.
	set := mustSet(t,
		mk(0, 0, 30, 5),
		mk(1, 0, 12, 10),
		mk(2, 0, 20, 4),
	)
	wantOrder(t, NewLS(), set, 1, 2, 0)
}

func TestHDFOrder(t *testing.T) {
	a := mk(0, 0, 100, 10) // density 0.1
	b := mk(1, 0, 100, 2)  // density 0.5
	c := mk(2, 0, 100, 4)  // density 2.0
	c.Weight = 8
	set := mustSet(t, a, b, c)
	wantOrder(t, NewHDF(), set, 2, 1, 0)
}

func TestHDFReducesToSRPTUnderUnitWeights(t *testing.T) {
	set1 := mustSet(t, mk(0, 0, 100, 7), mk(1, 0, 100, 2), mk(2, 0, 100, 4))
	set2 := mustSet(t, mk(0, 0, 100, 7), mk(1, 0, 100, 2), mk(2, 0, 100, 4))
	hdf := drive(t, NewHDF(), set1)
	srpt := drive(t, NewSRPT(), set2)
	for i := range hdf {
		if hdf[i] != srpt[i] {
			t.Fatalf("HDF %v != SRPT %v under unit weights", hdf, srpt)
		}
	}
}

func TestHVFOrder(t *testing.T) {
	a := mk(0, 0, 1, 5)
	b := mk(1, 0, 100, 5)
	b.Weight = 10
	c := mk(2, 0, 50, 5)
	c.Weight = 5
	set := mustSet(t, a, b, c)
	wantOrder(t, NewHVF(), set, 1, 2, 0)
}

func TestMIXExtremes(t *testing.T) {
	mkset := func() *txn.Set {
		a := mk(0, 0, 10, 5) // earliest deadline, low weight
		b := mk(1, 0, 90, 5)
		b.Weight = 10 // highest value, late deadline
		return mustSet(t, a, b)
	}
	wantOrder(t, NewMIX(1), mkset(), 0, 1) // beta=1: pure EDF
	wantOrder(t, NewMIX(0), mkset(), 1, 0) // beta=0: pure HVF
}

func TestMIXRejectsBadBeta(t *testing.T) {
	for _, beta := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMIX(%v) did not panic", beta)
				}
			}()
			NewMIX(beta)
		}()
	}
}

func TestPriorityPolicyHonorsDependencies(t *testing.T) {
	// T1 has the earliest deadline but depends on T0; EDF must not emit it
	// before T0 completes.
	set := mustSet(t,
		mk(0, 0, 50, 5),
		mk(1, 0, 10, 5, 0),
		mk(2, 0, 20, 5),
	)
	wantOrder(t, NewEDF(), set, 2, 0, 1)
}

func TestPriorityPolicyPreemptReinsert(t *testing.T) {
	set := mustSet(t, mk(0, 0, 100, 10), mk(1, 0, 100, 2))
	s := NewSRPT()
	s.Init(set)
	s.OnArrival(0, set.ByID(0))
	first := s.Next(0)
	if first.ID != 0 {
		t.Fatalf("first = %v", first)
	}
	// T0 runs 3 units, then T1 arrives and preempts.
	first.Remaining -= 3
	s.OnPreempt(3, first)
	s.OnArrival(3, set.ByID(1))
	second := s.Next(3)
	if second.ID != 1 {
		t.Fatalf("SRPT chose %v over the shorter arrival", second)
	}
	// After T1 completes, the partially-run T0 resumes with 7 remaining.
	second.Remaining = 0
	second.Finished = true
	second.FinishTime = 5
	s.OnCompletion(5, second)
	third := s.Next(5)
	if third.ID != 0 || third.Remaining != 7 {
		t.Fatalf("resume = %v (remaining %v)", third, third.Remaining)
	}
}

func TestNextOnEmptyReturnsNil(t *testing.T) {
	set := mustSet(t, mk(0, 5, 10, 1))
	s := NewEDF()
	s.Init(set)
	if s.Next(0) != nil {
		t.Fatal("Next before any arrival returned a transaction")
	}
}

func TestNewPriorityPolicyNilComparatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil comparator accepted")
		}
	}()
	NewPriorityPolicy("X", nil)
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Scheduler{
		"FCFS": NewFCFS(),
		"EDF":  NewEDF(),
		"SRPT": NewSRPT(),
		"LS":   NewLS(),
		"HDF":  NewHDF(),
		"HVF":  NewHVF(),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
	}
	if NewMIX(0.25).Name() != "MIX(0.25)" {
		t.Errorf("MIX name = %q", NewMIX(0.25).Name())
	}
}

// TestExample1Figure2 reproduces the paper's Example 1 (Figure 2): a
// two-transaction scenario where EDF beats SRPT, and another where SRPT
// beats EDF, computed by running each policy and comparing total tardiness.
func TestExample1Figure2(t *testing.T) {
	tardiness := func(s Scheduler, set *txn.Set) float64 {
		drive(t, s, set)
		var sum float64
		for _, tx := range set.Txns {
			sum += tx.Tardiness()
		}
		return sum
	}

	// Case (a): T1 long with imminent deadline, T2 short with distant
	// deadline and enough slack to wait. EDF (T1 first) keeps both on time
	// where SRPT (T2 first) makes T1 tardy.
	caseA := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 10, 10), // T1: needs to start immediately
			mk(1, 0, 13, 3),  // T2: can wait for T1
		)
	}
	edfA := tardiness(NewEDF(), caseA())
	srptA := tardiness(NewSRPT(), caseA())
	if !(edfA < srptA) {
		t.Fatalf("case (a): EDF %v should beat SRPT %v", edfA, srptA)
	}

	// Case (b): T1's deadline has effectively passed (cannot be met), T2 is
	// short and could still make it. EDF runs the lost cause first and
	// both miss; SRPT saves T2.
	caseB := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 1, 10), // T1: hopeless deadline
			mk(1, 0, 4, 3),  // T2: feasible if run now
		)
	}
	edfB := tardiness(NewEDF(), caseB())
	srptB := tardiness(NewSRPT(), caseB())
	if !(srptB < edfB) {
		t.Fatalf("case (b): SRPT %v should beat EDF %v", srptB, edfB)
	}
}
