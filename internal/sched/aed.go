package sched

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/txn"
)

// aed implements Adaptive Earliest Deadline from Haritsa, Livny and Carey
// (RTSS '91) — reference [5] of the paper, discussed in Section V as a
// feedback-driven hybrid. Ready transactions are ordered by a random key;
// the first HITcapacity of them form the HIT group, scheduled by EDF, and
// the remainder are served in random-key order. HITcapacity adapts by
// feedback: after each HIT-group completion the capacity is re-estimated as
// 1.05 * HitRatio(HIT) * |observed group|, so under overload the EDF-
// scheduled population shrinks toward the transactions that can still make
// their deadlines.
//
// AED targets deadline *hit ratio*, not tardiness — including it lets the
// experiments show why the paper's tardiness objective needs a different
// hybrid (ASETS*).
type aed struct {
	rt  *ReadyTracker
	set *txn.Set
	src *rng.Source

	key     []float64 // random priority key per transaction
	inHIT   []bool    // group membership at checkout time
	ready   []txn.ID  // ready transactions sorted by key
	cap     int       // HIT group capacity
	hitObs  float64   // EWMA of HIT-group deadline hits
	hitSeen bool
}

// NewAED constructs the Adaptive Earliest Deadline comparator. seed drives
// the random keys (the original assigns them uniformly at arrival).
func NewAED(seed uint64) Scheduler {
	return &aed{src: rng.New(seed)}
}

func (a *aed) Name() string { return "AED" }

//lint:coldpath per-run setup: keys and group state are built before the event loop
func (a *aed) Init(set *txn.Set) {
	a.set = set
	a.rt = NewReadyTracker(set)
	a.key = make([]float64, set.Len())
	a.inHIT = make([]bool, set.Len())
	for i := range a.key {
		a.key[i] = a.src.Float64()
	}
	a.ready = a.ready[:0]
	// Initial capacity: optimistic (everything in the HIT group), as in the
	// original description; feedback shrinks it under overload.
	a.cap = set.Len()
	a.hitObs = 1
	a.hitSeen = false
}

// insert keeps the ready list sorted by key (ties by ID).
func (a *aed) insert(id txn.ID) {
	//lint:ignore hotpath-alloc the sort.Search closure does not escape its call
	i := sort.Search(len(a.ready), func(i int) bool {
		ki, kj := a.key[a.ready[i]], a.key[id]
		if ki != kj {
			return ki > kj
		}
		return a.ready[i] > id
	})
	//lint:ignore hotpath-alloc ready grows to the peak ready population during warm-up, then reuses capacity
	a.ready = append(a.ready, 0)
	copy(a.ready[i+1:], a.ready[i:])
	a.ready[i] = id
}

func (a *aed) remove(id txn.ID) {
	for i, r := range a.ready {
		if r == id {
			//lint:ignore hotpath-alloc removal splice shrinks within existing capacity; append never grows here
			a.ready = append(a.ready[:i], a.ready[i+1:]...)
			return
		}
	}
}

func (a *aed) OnArrival(now float64, t *txn.Transaction) {
	if a.rt.Arrive(t) {
		a.insert(t.ID)
	}
}

func (a *aed) Next(now float64) *txn.Transaction {
	if len(a.ready) == 0 {
		return nil
	}
	hit := a.cap
	if hit > len(a.ready) {
		hit = len(a.ready)
	}
	var chosen txn.ID
	if hit > 0 {
		// HIT group: earliest deadline among the hit lowest-key entries.
		chosen = a.ready[0]
		for _, id := range a.ready[:hit] {
			if a.set.ByID(id).Deadline < a.set.ByID(chosen).Deadline {
				chosen = id
			}
		}
		a.inHIT[chosen] = true
	} else {
		// Degenerate capacity: pure random-key order.
		chosen = a.ready[0]
		a.inHIT[chosen] = false
	}
	a.remove(chosen)
	return a.set.ByID(chosen)
}

func (a *aed) OnPreempt(now float64, t *txn.Transaction) {
	a.insert(t.ID)
}

func (a *aed) OnCompletion(now float64, t *txn.Transaction) {
	if a.inHIT[t.ID] {
		hitVal := 0.0
		if now <= t.Deadline {
			hitVal = 1
		}
		// EWMA feedback with the original's 1.05 expansion headroom.
		if !a.hitSeen {
			a.hitObs = hitVal
			a.hitSeen = true
		} else {
			a.hitObs = 0.9*a.hitObs + 0.1*hitVal
		}
		next := int(1.05 * a.hitObs * float64(a.set.Len()))
		if next < 1 {
			next = 1
		}
		a.cap = next
	}
	for _, r := range a.rt.Complete(t) {
		a.insert(r.ID)
	}
}
