package sched

import (
	"fmt"

	"repro/internal/txn"
)

// Less orders two transactions by scheduling priority: it returns true when
// a should run before b. Comparators must be total and time-invariant for
// waiting transactions (a waiting transaction's Remaining does not change,
// so keys such as deadline, remaining time, density, and d-r are all
// stable); the check-out protocol re-inserts preempted transactions, which
// refreshes any key that depends on Remaining.
type Less func(a, b *txn.Transaction) bool

// priorityPolicy is the shared machinery behind every single-queue baseline:
// a ready queue ordered by a policy comparator plus a ReadyTracker for
// precedence constraints. Transactions whose dependency lists are not yet
// drained wait invisibly, exactly like the paper's Wait queue.
type priorityPolicy struct {
	name    string
	less    Less
	backend Backend
	rt      *ReadyTracker
	queue   readyQueue
}

// NewPriorityPolicy builds a preemptive priority scheduler with the given
// display name and comparator. All baseline constructors delegate here; the
// function is exported so downstream users can plug in custom priorities.
func NewPriorityPolicy(name string, less Less) Scheduler {
	if less == nil {
		panic("sched: NewPriorityPolicy called with nil comparator")
	}
	return &priorityPolicy{name: name, less: less}
}

func (p *priorityPolicy) Name() string { return p.name }

//lint:coldpath per-run setup: the ready queue is built before the event loop
func (p *priorityPolicy) Init(set *txn.Set) {
	p.rt = NewReadyTracker(set)
	switch p.backend {
	case BackendHeap:
		p.queue = newHeapQueue(set, p.less)
	case BackendTreap:
		p.queue = newTreapQueue(set, p.less)
	default:
		panic(fmt.Sprintf("sched: unknown ready-queue backend %d", p.backend))
	}
}

func (p *priorityPolicy) OnArrival(now float64, t *txn.Transaction) {
	if p.rt.Arrive(t) {
		p.queue.Push(t)
	}
}

func (p *priorityPolicy) Next(now float64) *txn.Transaction {
	return p.queue.Pop()
}

func (p *priorityPolicy) OnPreempt(now float64, t *txn.Transaction) {
	p.queue.Push(t)
}

func (p *priorityPolicy) OnCompletion(now float64, t *txn.Transaction) {
	for _, r := range p.rt.Complete(t) {
		p.queue.Push(r)
	}
}

// tieBreak orders equal-priority transactions deterministically by ID so
// that runs replay identically.
func tieBreak(a, b *txn.Transaction) bool { return a.ID < b.ID }

// NewFCFS returns First-Come-First-Served: transactions run in arrival
// order. Because an arriving transaction always has a later arrival time
// than the one running, FCFS never preempts even under the preemptive
// simulator.
func NewFCFS() Scheduler {
	return NewPriorityPolicy("FCFS", func(a, b *txn.Transaction) bool {
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return tieBreak(a, b)
	})
}

// NewEDF returns Earliest-Deadline-First: priority p_i = 1/d_i (Section
// II-C), i.e. the transaction with the earliest deadline runs first.
func NewEDF() Scheduler {
	return NewPriorityPolicy("EDF", func(a, b *txn.Transaction) bool {
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		return tieBreak(a, b)
	})
}

// NewSRPT returns Shortest-Remaining-Processing-Time: the transaction with
// the least remaining work runs first — optimal for response time and hence
// for tardiness once every deadline is already missed [11].
func NewSRPT() Scheduler {
	return NewPriorityPolicy("SRPT", func(a, b *txn.Transaction) bool {
		if a.Remaining != b.Remaining {
			return a.Remaining < b.Remaining
		}
		return tieBreak(a, b)
	})
}

// NewLS returns Least-Slack: priority p_i = 1/s_i [1]. For co-resident
// transactions slack ordering equals ordering by d_i - r_i because the
// current time cancels, which is the stable key used here.
func NewLS() Scheduler {
	return NewPriorityPolicy("LS", func(a, b *txn.Transaction) bool {
		sa, sb := a.Deadline-a.Remaining, b.Deadline-b.Remaining
		if sa != sb {
			return sa < sb
		}
		return tieBreak(a, b)
	})
}

// NewHDF returns Highest-Density-First: priority p_i = w_i/r_i, optimal for
// weighted flow time under overload [2]. With unit weights HDF reduces
// exactly to SRPT.
func NewHDF() Scheduler {
	return NewPriorityPolicy("HDF", func(a, b *txn.Transaction) bool {
		da, db := a.Weight/a.Remaining, b.Weight/b.Remaining
		if da != db {
			return da > db
		}
		return tieBreak(a, b)
	})
}

// NewHVF returns Highest-Value-First, the value-only policy studied in the
// related work [3]: the heaviest transaction runs first regardless of
// deadline or length.
func NewHVF() Scheduler {
	return NewPriorityPolicy("HVF", func(a, b *txn.Transaction) bool {
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		return tieBreak(a, b)
	})
}

// NewMIX returns the static hybrid of [3]: a linear combination of absolute
// deadline and value, prioritizing small beta*d_i - (1-beta)*w_i. Unlike
// ASETS*, the blend is a fixed system parameter — the contrast the paper
// draws in Section V. beta must lie in [0, 1]: beta=1 degenerates to EDF and
// beta=0 to HVF.
func NewMIX(beta float64) Scheduler {
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("sched: NewMIX beta %v outside [0, 1]", beta))
	}
	name := fmt.Sprintf("MIX(%.2f)", beta)
	return NewPriorityPolicy(name, func(a, b *txn.Transaction) bool {
		ka := beta*a.Deadline - (1-beta)*a.Weight
		kb := beta*b.Deadline - (1-beta)*b.Weight
		if ka != kb {
			return ka < kb
		}
		return tieBreak(a, b)
	})
}
