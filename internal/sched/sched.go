// Package sched defines the scheduling interface of the simulated
// web-database system together with the baseline policies the paper
// evaluates ASETS* against: FCFS, EDF, SRPT, Least Slack, HDF, and the
// related-work comparators HVF and MIX. The ASETS* family itself — the
// paper's contribution — lives in internal/core.
//
// All policies are priority-driven and preemptive-resume: the simulator
// consults the scheduler at every arrival and completion event (the only
// decision points ASETS* needs, per Section III-A.2) and runs whichever
// transaction the scheduler hands out until the next event.
package sched

import (
	"repro/internal/txn"
)

// Scheduler is the contract between the simulator and a scheduling policy.
//
// The simulator follows a strict check-out protocol: Next removes the chosen
// transaction from the scheduler's queues; before the next call to Next, the
// simulator always hands the transaction back — via OnPreempt if an arrival
// interrupted it (with Remaining already decremented) or via OnCompletion if
// it finished. This keeps every queue's keys consistent without schedulers
// having to track execution progress themselves.
type Scheduler interface {
	// Name returns the display name used in tables and figures.
	Name() string
	// Init prepares per-workload state. It must be called exactly once,
	// before any event callbacks, with transactions in their reset state.
	Init(set *txn.Set)
	// OnArrival notifies the scheduler that t has been submitted.
	OnArrival(now float64, t *txn.Transaction)
	// Next checks out the transaction to execute, or nil when no ready
	// transaction is pending.
	Next(now float64) *txn.Transaction
	// OnPreempt returns a checked-out, unfinished transaction to the
	// scheduler after it ran for some time (t.Remaining was updated).
	OnPreempt(now float64, t *txn.Transaction)
	// OnCompletion notifies the scheduler that the checked-out transaction
	// finished at time now.
	OnCompletion(now float64, t *txn.Transaction)
}

// ReadyTracker maintains the readiness state of every transaction: a
// transaction is ready when it has arrived, all transactions in its
// dependency list have finished, and it has not itself finished. Policies
// embed a ReadyTracker so that precedence constraints are enforced uniformly
// (the paper assumes dependency information is available to the scheduler).
type ReadyTracker struct {
	set        *txn.Set
	unfinished []int // outstanding direct dependencies per transaction
	arrived    []bool
	finished   []bool
}

// NewReadyTracker builds a tracker for set with every transaction unarrived
// and unfinished.
func NewReadyTracker(set *txn.Set) *ReadyTracker {
	rt := &ReadyTracker{
		set:        set,
		unfinished: make([]int, set.Len()),
		arrived:    make([]bool, set.Len()),
		finished:   make([]bool, set.Len()),
	}
	for _, t := range set.Txns {
		rt.unfinished[t.ID] = len(t.Deps)
	}
	return rt
}

// Arrive records the arrival of t and reports whether it is immediately
// ready (its dependency list is already drained).
func (rt *ReadyTracker) Arrive(t *txn.Transaction) bool {
	rt.arrived[t.ID] = true
	return rt.unfinished[t.ID] == 0
}

// Complete records the completion of t and returns the transactions that
// became ready as a result: dependents whose last outstanding dependency was
// t and that have already arrived.
func (rt *ReadyTracker) Complete(t *txn.Transaction) []*txn.Transaction {
	rt.finished[t.ID] = true
	newly := make([]*txn.Transaction, 0, len(rt.set.Dependents[t.ID]))
	for _, depID := range rt.set.Dependents[t.ID] {
		rt.unfinished[depID]--
		if rt.unfinished[depID] == 0 && rt.arrived[depID] && !rt.finished[depID] {
			newly = append(newly, rt.set.ByID(depID))
		}
	}
	return newly
}

// Ready reports whether t can execute right now.
func (rt *ReadyTracker) Ready(t *txn.Transaction) bool {
	return rt.arrived[t.ID] && !rt.finished[t.ID] && rt.unfinished[t.ID] == 0
}

// Arrived reports whether t has been submitted.
func (rt *ReadyTracker) Arrived(t *txn.Transaction) bool { return rt.arrived[t.ID] }

// Finished reports whether t has completed.
func (rt *ReadyTracker) Finished(t *txn.Transaction) bool { return rt.finished[t.ID] }
