package sched

import (
	"repro/internal/pq"
	"repro/internal/txn"
)

// Backend selects the data structure behind a priority policy's ready
// queue. The paper notes ASETS* "can use the standard balanced binary
// search tree as the priority queue, which requires only a time of
// O(log N)"; both substrates meet that bound, and an ablation benchmark
// (BenchmarkBackendHeapVsTreap) compares their constants.
type Backend int

const (
	// BackendHeap uses the indexed binary heap (default; lower constants).
	BackendHeap Backend = iota
	// BackendTreap uses the treap ordered map — the literal balanced-BST
	// reading of the paper.
	BackendTreap
)

// readyQueue is the minimal priority-queue surface a priority policy needs.
type readyQueue interface {
	// Push enqueues a ready transaction.
	Push(t *txn.Transaction)
	// Pop removes and returns the highest-priority transaction, or nil.
	Pop() *txn.Transaction
	// Len returns the number of queued transactions.
	Len() int
}

// heapQueue adapts pq.Heap to readyQueue, reusing one pq.Item per
// transaction across push/pop cycles.
type heapQueue struct {
	heap  *pq.Heap[*txn.Transaction]
	items []*pq.Item[*txn.Transaction]
}

func newHeapQueue(set *txn.Set, less Less) *heapQueue {
	q := &heapQueue{
		heap:  pq.NewHeap[*txn.Transaction](less),
		items: make([]*pq.Item[*txn.Transaction], set.Len()),
	}
	for _, t := range set.Txns {
		q.items[t.ID] = pq.NewItem(t)
	}
	return q
}

func (q *heapQueue) Push(t *txn.Transaction) { q.heap.Push(q.items[t.ID]) }

func (q *heapQueue) Pop() *txn.Transaction {
	it := q.heap.Pop()
	if it == nil {
		return nil
	}
	return it.Value
}

func (q *heapQueue) Len() int { return q.heap.Len() }

// treapQueue adapts pq.Treap to readyQueue. The treap's key is the
// transaction itself ordered by the policy comparator; duplicate priorities
// are fine because the comparator is a total order (policies tie-break by
// ID).
type treapQueue struct {
	treap *pq.Treap[*txn.Transaction, struct{}]
	nodes []*pq.TreapNode[*txn.Transaction, struct{}]
}

// treapSeed keeps treap shapes deterministic across runs; any constant
// works since determinism, not adversarial balance, is the goal.
const treapSeed = 0x5eed5eed5eed5eed

func newTreapQueue(set *txn.Set, less Less) *treapQueue {
	return &treapQueue{
		treap: pq.NewTreap[*txn.Transaction, struct{}](less, treapSeed),
		nodes: make([]*pq.TreapNode[*txn.Transaction, struct{}], set.Len()),
	}
}

func (q *treapQueue) Push(t *txn.Transaction) {
	q.nodes[t.ID] = q.treap.Insert(t, struct{}{})
}

func (q *treapQueue) Pop() *txn.Transaction {
	n := q.treap.Min()
	if n == nil {
		return nil
	}
	q.treap.Delete(n)
	t := n.Key
	q.nodes[t.ID] = nil
	return t
}

func (q *treapQueue) Len() int { return q.treap.Len() }

// NewPriorityPolicyWithBackend is NewPriorityPolicy with an explicit queue
// substrate. BackendHeap and BackendTreap produce identical schedules for
// any total-order comparator; only the constants differ.
func NewPriorityPolicyWithBackend(name string, less Less, backend Backend) Scheduler {
	if less == nil {
		panic("sched: NewPriorityPolicyWithBackend called with nil comparator")
	}
	return &priorityPolicy{name: name, less: less, backend: backend}
}
