package sched

import (
	"testing"

	"repro/internal/txn"
)

func TestAEDName(t *testing.T) {
	if NewAED(1).Name() != "AED" {
		t.Fatal("name")
	}
}

func TestAEDSchedulesEverything(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 30, 5),
		mk(1, 0, 10, 5),
		mk(2, 0, 20, 5),
		mk(3, 0, 5, 2),
	)
	order := drive(t, NewAED(7), set)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	seen := map[txn.ID]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate %d in %v", id, order)
		}
		seen[id] = true
	}
}

func TestAEDFullCapacityIsEDF(t *testing.T) {
	// With the initial optimistic capacity covering every transaction and
	// all deadlines met (no shrink feedback), AED degenerates to EDF.
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 100, 5),
			mk(1, 0, 20, 5),
			mk(2, 0, 50, 5),
		)
	}
	aedOrder := drive(t, NewAED(3), build())
	edfOrder := drive(t, NewEDF(), build())
	for i := range aedOrder {
		if aedOrder[i] != edfOrder[i] {
			t.Fatalf("AED %v != EDF %v on feasible workload", aedOrder, edfOrder)
		}
	}
}

func TestAEDHonorsDependencies(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 50, 5),
		mk(1, 0, 10, 5, 0),
	)
	order := drive(t, NewAED(9), set)
	if order[0] != 0 {
		t.Fatalf("dependent scheduled first: %v", order)
	}
}

func TestAEDDeterministicPerSeed(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t, mk(0, 0, 1, 9), mk(1, 0, 2, 8), mk(2, 0, 3, 7))
	}
	a := drive(t, NewAED(42), build())
	b := drive(t, NewAED(42), build())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AED not deterministic for equal seeds")
		}
	}
}

func TestAEDCapacityShrinksUnderOverload(t *testing.T) {
	// Hopeless deadlines: every HIT completion is a miss, so the feedback
	// must shrink the capacity toward 1.
	set := mustSet(t,
		mk(0, 0, 0.1, 9),
		mk(1, 0, 0.1, 8),
		mk(2, 0, 0.1, 7),
		mk(3, 0, 0.1, 6),
		mk(4, 0, 0.1, 5),
	)
	s := NewAED(11).(*aed)
	drive(t, s, set)
	if s.cap >= set.Len() {
		t.Fatalf("capacity %d did not shrink under total overload", s.cap)
	}
}
