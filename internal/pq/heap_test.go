package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func intHeap() *Heap[int] {
	return NewHeap[int](func(a, b int) bool { return a < b })
}

func TestHeapEmpty(t *testing.T) {
	h := intHeap()
	if h.Len() != 0 {
		t.Fatalf("empty heap Len = %d", h.Len())
	}
	if h.Peek() != nil {
		t.Fatal("empty heap Peek != nil")
	}
	if h.Pop() != nil {
		t.Fatal("empty heap Pop != nil")
	}
}

func TestHeapPushPopSorted(t *testing.T) {
	h := intHeap()
	vals := []int{5, 3, 8, 1, 9, 2, 7, 2, 5}
	for _, v := range vals {
		h.Push(NewItem(v))
	}
	if !h.Verify() {
		t.Fatal("heap invariant broken after pushes")
	}
	sort.Ints(vals)
	for i, want := range vals {
		it := h.Pop()
		if it == nil || it.Value != want {
			t.Fatalf("pop %d = %v, want %d", i, it, want)
		}
		if it.InHeap() {
			t.Fatal("popped item still reports InHeap")
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty after popping all: %d", h.Len())
	}
}

func TestHeapRemoveMiddle(t *testing.T) {
	h := intHeap()
	items := make([]*Item[int], 0, 10)
	for _, v := range []int{4, 9, 1, 7, 3, 8, 2, 6, 5, 0} {
		it := NewItem(v)
		items = append(items, it)
		h.Push(it)
	}
	// Remove the items holding 7 and 0.
	for _, it := range items {
		if it.Value == 7 || it.Value == 0 {
			h.Remove(it)
		}
	}
	if !h.Verify() {
		t.Fatal("heap invariant broken after removals")
	}
	want := []int{1, 2, 3, 4, 5, 6, 8, 9}
	for _, w := range want {
		if got := h.Pop().Value; got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
}

func TestHeapFixAfterMutation(t *testing.T) {
	type job struct{ key int }
	h := NewHeap[*job](func(a, b *job) bool { return a.key < b.key })
	a, b, c := &job{5}, &job{10}, &job{15}
	ia, ib, ic := NewItem(a), NewItem(b), NewItem(c)
	h.Push(ia)
	h.Push(ib)
	h.Push(ic)
	// Make c the smallest in place and fix.
	c.key = 1
	h.Fix(ic)
	if h.Peek() != ic {
		t.Fatal("Fix did not float decreased key to the top")
	}
	// Make it the largest again.
	c.key = 100
	h.Fix(ic)
	if h.Peek() != ia {
		t.Fatal("Fix did not sink increased key")
	}
	if !h.Verify() {
		t.Fatal("heap invariant broken after Fix")
	}
	_ = b
}

func TestHeapPushDuplicatePanics(t *testing.T) {
	h := intHeap()
	it := NewItem(1)
	h.Push(it)
	defer expectPanic(t, "double Push")
	h.Push(it)
}

func TestHeapRemoveForeignPanics(t *testing.T) {
	h1, h2 := intHeap(), intHeap()
	it := NewItem(1)
	h1.Push(it)
	defer expectPanic(t, "Remove from wrong heap")
	h2.Remove(it)
}

func TestHeapFixUnqueuedPanics(t *testing.T) {
	h := intHeap()
	defer expectPanic(t, "Fix of unqueued item")
	h.Fix(NewItem(1))
}

func TestHeapNilLessPanics(t *testing.T) {
	defer expectPanic(t, "NewHeap(nil)")
	NewHeap[int](nil)
}

func TestHeapOwnerTracking(t *testing.T) {
	h := intHeap()
	it := NewItem(42)
	if it.Owner() != nil {
		t.Fatal("fresh item has an owner")
	}
	h.Push(it)
	if it.Owner() != h {
		t.Fatal("pushed item does not report its heap")
	}
	h.Remove(it)
	if it.Owner() != nil {
		t.Fatal("removed item still reports an owner")
	}
}

// TestHeapRandomOperations drives the heap against a reference model
// (a plain slice kept sorted) through thousands of random operations.
func TestHeapRandomOperations(t *testing.T) {
	src := rng.New(2024)
	h := intHeap()
	var live []*Item[int]
	for step := 0; step < 20000; step++ {
		switch op := src.Intn(10); {
		case op < 5 || len(live) == 0: // push
			it := NewItem(src.Intn(1000))
			h.Push(it)
			live = append(live, it)
		case op < 7: // pop minimum
			want := live[0]
			for _, it := range live {
				if it.Value < want.Value {
					want = it
				}
			}
			got := h.Pop()
			if got.Value != want.Value {
				t.Fatalf("step %d: pop = %d, want %d", step, got.Value, want.Value)
			}
			live = removeItem(live, got)
		case op < 9: // remove arbitrary
			victim := live[src.Intn(len(live))]
			h.Remove(victim)
			live = removeItem(live, victim)
		default: // mutate + fix
			it := live[src.Intn(len(live))]
			it.Value = src.Intn(1000)
			h.Fix(it)
		}
		if step%1000 == 0 && !h.Verify() {
			t.Fatalf("step %d: heap invariant broken", step)
		}
	}
	if h.Len() != len(live) {
		t.Fatalf("length mismatch: heap %d, model %d", h.Len(), len(live))
	}
}

func removeItem(s []*Item[int], it *Item[int]) []*Item[int] {
	for i, v := range s {
		if v == it {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// TestQuickHeapSortsAnything: pushing any int slice and popping yields the
// sorted slice.
func TestQuickHeapSortsAnything(t *testing.T) {
	f := func(vals []int) bool {
		h := intHeap()
		for _, v := range vals {
			h.Push(NewItem(v))
		}
		out := make([]int, 0, len(vals))
		for h.Len() > 0 {
			out = append(out, h.Pop().Value)
		}
		if !sort.IntsAreSorted(out) {
			return false
		}
		want := append([]int(nil), vals...)
		sort.Ints(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s did not panic", what)
	}
}
