// Package pq provides the priority-queue substrates used by the schedulers:
// a generic indexed binary heap supporting O(log n) update and removal of
// arbitrary elements, and a treap-based ordered map (the "standard balanced
// binary search tree" the paper cites for its O(log N) priority lists).
package pq

// Item is the element stored in a Heap. Embedding bookkeeping in the item
// (rather than returning opaque handles) lets schedulers move transactions
// and workflows between the EDF and SRPT/HDF lists without map lookups.
type Item[T any] struct {
	Value T
	index int // position in the heap slice, -1 when not enqueued
	owner *Heap[T]
}

// NewItem wraps v for insertion into a Heap.
func NewItem[T any](v T) *Item[T] {
	return &Item[T]{Value: v, index: -1}
}

// InHeap reports whether the item is currently enqueued in any heap.
func (it *Item[T]) InHeap() bool { return it.index >= 0 }

// Owner returns the heap the item currently belongs to, or nil.
func (it *Item[T]) Owner() *Heap[T] { return it.owner }

// Heap is an indexed binary min-heap ordered by a user-supplied less
// function. The zero value is not usable; construct with NewHeap.
type Heap[T any] struct {
	items []*Item[T]
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less (a min-heap with respect to
// less; pass an inverted comparison for max-heap behaviour).
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	if less == nil {
		panic("pq: NewHeap called with nil less function")
	}
	return &Heap[T]{less: less}
}

// Len returns the number of enqueued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts it into the heap. It panics if the item is already enqueued
// (in this heap or another), because silently double-inserting a transaction
// is always a scheduler bug.
func (h *Heap[T]) Push(it *Item[T]) {
	if it.index >= 0 {
		panic("pq: Push of item that is already in a heap")
	}
	it.index = len(h.items)
	it.owner = h
	//lint:ignore hotpath-alloc the heap slice reaches the peak population during warm-up and is reused across push/pop cycles
	h.items = append(h.items, it)
	h.up(it.index)
}

// Peek returns the minimum item without removing it, or nil if empty.
func (h *Heap[T]) Peek() *Item[T] {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// Pop removes and returns the minimum item, or nil if the heap is empty.
func (h *Heap[T]) Pop() *Item[T] {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	h.Remove(top)
	return top
}

// Remove deletes it from the heap in O(log n). It panics if the item is not
// currently in this heap.
func (h *Heap[T]) Remove(it *Item[T]) {
	if it.owner != h || it.index < 0 {
		panic("pq: Remove of item that is not in this heap")
	}
	i := it.index
	last := len(h.items) - 1
	if i != last {
		h.items[i] = h.items[last]
		h.items[i].index = i
	}
	h.items = h.items[:last]
	it.index = -1
	it.owner = nil
	if i != last {
		if !h.down(i) {
			h.up(i)
		}
	}
}

// Fix re-establishes the heap invariant after the priority of it changed in
// place (e.g. a preempted transaction's remaining time shrank). It panics if
// the item is not in this heap.
func (h *Heap[T]) Fix(it *Item[T]) {
	if it.owner != h || it.index < 0 {
		panic("pq: Fix of item that is not in this heap")
	}
	if !h.down(it.index) {
		h.up(it.index)
	}
}

// Items returns the underlying slice in heap order (not sorted order). The
// slice must not be mutated; it is exposed for iteration by invariant
// checkers and tests.
func (h *Heap[T]) Items() []*Item[T] { return h.items }

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i].Value, h.items[parent].Value) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i0 int) bool {
	i := i0
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right].Value, h.items[left].Value) {
			smallest = right
		}
		if !h.less(h.items[smallest].Value, h.items[i].Value) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return i > i0
}

func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

// Verify checks the heap invariant for every node and reports whether it
// holds. It is O(n) and intended for tests and the trace validator only.
func (h *Heap[T]) Verify() bool {
	for i := 1; i < len(h.items); i++ {
		parent := (i - 1) / 2
		if h.less(h.items[i].Value, h.items[parent].Value) {
			return false
		}
		if h.items[i].index != i || h.items[i].owner != h {
			return false
		}
	}
	if len(h.items) > 0 && (h.items[0].index != 0 || h.items[0].owner != h) {
		return false
	}
	return true
}
