package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func intTreap() *Treap[int, string] {
	return NewTreap[int, string](func(a, b int) bool { return a < b }, 42)
}

func TestTreapEmpty(t *testing.T) {
	tr := intTreap()
	if tr.Len() != 0 || tr.Min() != nil || tr.Max() != nil {
		t.Fatal("empty treap misbehaves")
	}
}

func TestTreapInsertAscend(t *testing.T) {
	tr := intTreap()
	vals := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, v := range vals {
		tr.Insert(v, "")
	}
	if !tr.Verify() {
		t.Fatal("treap invariants broken after inserts")
	}
	var got []int
	tr.Ascend(func(n *TreapNode[int, string]) bool {
		got = append(got, n.Key)
		return true
	})
	if !sort.IntsAreSorted(got) || len(got) != len(vals) {
		t.Fatalf("Ascend order = %v", got)
	}
	if tr.Min().Key != 0 || tr.Max().Key != 9 {
		t.Fatalf("min/max = %d/%d", tr.Min().Key, tr.Max().Key)
	}
}

func TestTreapDuplicateKeys(t *testing.T) {
	tr := intTreap()
	n1 := tr.Insert(5, "a")
	n2 := tr.Insert(5, "b")
	n3 := tr.Insert(5, "c")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d after three duplicate inserts", tr.Len())
	}
	tr.Delete(n2)
	if tr.Len() != 2 || !tr.Verify() {
		t.Fatal("delete of duplicate broke treap")
	}
	tr.Delete(n1)
	tr.Delete(n3)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestTreapDeleteByHandle(t *testing.T) {
	tr := intTreap()
	nodes := map[int]*TreapNode[int, string]{}
	for _, v := range []int{4, 8, 15, 16, 23, 42} {
		nodes[v] = tr.Insert(v, "")
	}
	tr.Delete(nodes[15])
	tr.Delete(nodes[4])
	if !tr.Verify() {
		t.Fatal("treap invariants broken after handle deletes")
	}
	var got []int
	tr.Ascend(func(n *TreapNode[int, string]) bool {
		got = append(got, n.Key)
		return true
	})
	want := []int{8, 16, 23, 42}
	if len(got) != len(want) {
		t.Fatalf("remaining keys %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remaining keys %v, want %v", got, want)
		}
	}
}

func TestTreapDoubleDeletePanics(t *testing.T) {
	tr := intTreap()
	n := tr.Insert(1, "")
	tr.Delete(n)
	defer expectPanic(t, "double Delete")
	tr.Delete(n)
}

func TestTreapNilLessPanics(t *testing.T) {
	defer expectPanic(t, "NewTreap(nil)")
	NewTreap[int, int](nil, 1)
}

func TestTreapAscendEarlyStop(t *testing.T) {
	tr := intTreap()
	for i := 0; i < 10; i++ {
		tr.Insert(i, "")
	}
	count := 0
	tr.Ascend(func(n *TreapNode[int, string]) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop visited %d nodes", count)
	}
}

func TestTreapDeterministicShape(t *testing.T) {
	build := func() []int {
		tr := intTreap()
		for i := 0; i < 100; i++ {
			tr.Insert(i*7%100, "")
		}
		var keys []int
		tr.Ascend(func(n *TreapNode[int, string]) bool {
			keys = append(keys, n.Key)
			return true
		})
		return keys
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("treap behaviour is not deterministic across builds")
		}
	}
}

// TestTreapRandomOperations drives the treap against a reference multiset.
func TestTreapRandomOperations(t *testing.T) {
	src := rng.New(7)
	tr := intTreap()
	var live []*TreapNode[int, string]
	for step := 0; step < 20000; step++ {
		if src.Intn(3) != 0 || len(live) == 0 {
			live = append(live, tr.Insert(src.Intn(500), ""))
		} else {
			i := src.Intn(len(live))
			tr.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%2000 == 0 {
			if !tr.Verify() {
				t.Fatalf("step %d: treap invariants broken", step)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len %d vs model %d", step, tr.Len(), len(live))
			}
			if len(live) > 0 {
				min := live[0].Key
				for _, n := range live {
					if n.Key < min {
						min = n.Key
					}
				}
				if tr.Min().Key != min {
					t.Fatalf("step %d: Min %d vs model %d", step, tr.Min().Key, min)
				}
			}
		}
	}
}

// TestQuickTreapAscendSorted: inserting any int slice yields a sorted Ascend.
func TestQuickTreapAscendSorted(t *testing.T) {
	f := func(vals []int, seed uint64) bool {
		tr := NewTreap[int, struct{}](func(a, b int) bool { return a < b }, seed)
		for _, v := range vals {
			tr.Insert(v, struct{}{})
		}
		var got []int
		tr.Ascend(func(n *TreapNode[int, struct{}]) bool {
			got = append(got, n.Key)
			return true
		})
		if len(got) != len(vals) {
			return false
		}
		return sort.IntsAreSorted(got) && tr.Verify()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
