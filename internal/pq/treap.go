package pq

import "repro/internal/rng"

// Treap is an ordered map implemented as a randomized balanced binary search
// tree. The paper notes that ASETS* "can use the standard balanced binary
// search tree as the priority queue, which requires only a time of O(log N)";
// this type is that substrate. Keys are ordered by a user-supplied less
// function and duplicate keys are permitted (each Insert creates a distinct
// node), which matters because distinct transactions frequently share a
// deadline or a remaining processing time.
//
// Node priorities come from a deterministic splitmix64 stream seeded at
// construction, so tree shape — and therefore iteration cost — is
// reproducible run to run.
type Treap[K, V any] struct {
	root *TreapNode[K, V]
	less func(a, b K) bool
	rnd  *rng.SplitMix64
	size int
}

// TreapNode is a node handle returned by Insert; it can be passed to Delete
// for O(log n) removal without a search, mirroring the indexed heap.
type TreapNode[K, V any] struct {
	Key      K
	Value    V
	prio     uint64
	left     *TreapNode[K, V]
	right    *TreapNode[K, V]
	parent   *TreapNode[K, V]
	enqueued bool
}

// NewTreap returns an empty treap ordered by less, with node priorities
// drawn deterministically from seed.
func NewTreap[K, V any](less func(a, b K) bool, seed uint64) *Treap[K, V] {
	if less == nil {
		panic("pq: NewTreap called with nil less function")
	}
	return &Treap[K, V]{less: less, rnd: rng.NewSplitMix64(seed)}
}

// Len returns the number of nodes in the treap.
func (t *Treap[K, V]) Len() int { return t.size }

// Insert adds a key/value pair and returns its node handle.
func (t *Treap[K, V]) Insert(key K, value V) *TreapNode[K, V] {
	//lint:ignore hotpath-alloc a treap allocates one node per insert by design; the indexed heap is the zero-alloc backend
	n := &TreapNode[K, V]{Key: key, Value: value, prio: t.rnd.Next(), enqueued: true}
	t.root = t.insert(t.root, n)
	t.root.parent = nil
	t.size++
	return n
}

func (t *Treap[K, V]) insert(root, n *TreapNode[K, V]) *TreapNode[K, V] {
	if root == nil {
		return n
	}
	if t.less(n.Key, root.Key) {
		root.left = t.insert(root.left, n)
		root.left.parent = root
		if root.left.prio < root.prio {
			root = t.rotateRight(root)
		}
	} else {
		root.right = t.insert(root.right, n)
		root.right.parent = root
		if root.right.prio < root.prio {
			root = t.rotateLeft(root)
		}
	}
	return root
}

func (t *Treap[K, V]) rotateRight(y *TreapNode[K, V]) *TreapNode[K, V] {
	x := y.left
	y.left = x.right
	if x.right != nil {
		x.right.parent = y
	}
	x.right = y
	x.parent = y.parent
	y.parent = x
	return x
}

func (t *Treap[K, V]) rotateLeft(x *TreapNode[K, V]) *TreapNode[K, V] {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.left = x
	y.parent = x.parent
	x.parent = y
	return y
}

// Min returns the node with the smallest key, or nil if the treap is empty.
func (t *Treap[K, V]) Min() *TreapNode[K, V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// Max returns the node with the largest key, or nil if the treap is empty.
func (t *Treap[K, V]) Max() *TreapNode[K, V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// Delete removes the node n from the treap. It panics if n has already been
// removed, to surface double-free scheduler bugs immediately.
func (t *Treap[K, V]) Delete(n *TreapNode[K, V]) {
	if !n.enqueued {
		panic("pq: Delete of treap node that is not enqueued")
	}
	// Rotate n down until it is a leaf, then unlink it from its parent.
	for n.left != nil || n.right != nil {
		var up *TreapNode[K, V]
		if n.right == nil || (n.left != nil && n.left.prio < n.right.prio) {
			up = t.rotateRight(n)
		} else {
			up = t.rotateLeft(n)
		}
		if up.parent == nil {
			t.root = up
		} else if up.parent.left == n {
			up.parent.left = up
		} else {
			up.parent.right = up
		}
	}
	if n.parent == nil {
		t.root = nil
	} else if n.parent.left == n {
		n.parent.left = nil
	} else {
		n.parent.right = nil
	}
	n.parent = nil
	n.enqueued = false
	t.size--
}

// Ascend calls fn for every node in ascending key order, stopping early if
// fn returns false.
func (t *Treap[K, V]) Ascend(fn func(n *TreapNode[K, V]) bool) {
	ascend(t.root, fn)
}

func ascend[K, V any](n *TreapNode[K, V], fn func(*TreapNode[K, V]) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n) {
		return false
	}
	return ascend(n.right, fn)
}

// Verify checks the BST-order and heap-priority invariants over the whole
// tree plus parent pointers, and that the node count matches Len. O(n);
// tests only.
func (t *Treap[K, V]) Verify() bool {
	count := 0
	ok := t.verify(t.root, nil, &count)
	return ok && count == t.size
}

func (t *Treap[K, V]) verify(n, parent *TreapNode[K, V], count *int) bool {
	if n == nil {
		return true
	}
	*count++
	if n.parent != parent || !n.enqueued {
		return false
	}
	if n.left != nil && (t.less(n.Key, n.left.Key) || n.left.prio < n.prio) {
		return false
	}
	if n.right != nil && (t.less(n.right.Key, n.Key) || n.right.prio < n.prio) {
		return false
	}
	return t.verify(n.left, n, count) && t.verify(n.right, n, count)
}
