package txn

import (
	"reflect"
	"testing"
)

// cloneFixture builds a small workflow workload with non-trivial Deps,
// Dependents and read/write-set structure, the shapes Clone must deep-copy.
func cloneFixture(t *testing.T) *Set {
	t.Helper()
	txns := []*Transaction{
		{ID: 0, Arrival: 0, Deadline: 10, Length: 2, Weight: 1, Reads: []Key{1, 3}, Writes: []Key{2}},
		{ID: 1, Arrival: 1, Deadline: 12, Length: 3, Weight: 2, Deps: []ID{0}, Reads: []Key{2}},
		{ID: 2, Arrival: 2, Deadline: 15, Length: 1, Weight: 1, Deps: []ID{0, 1}},
		{ID: 3, Arrival: 3, Deadline: 20, Length: 4, Weight: 5},
	}
	set, err := NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCloneDeepEqual: a clone is structurally identical to its source,
// including dependency and reverse-dependency edges and runtime state.
func TestCloneDeepEqual(t *testing.T) {
	set := cloneFixture(t)
	// Give the runtime fields non-zero values so the struct copy is covered.
	set.Txns[1].Remaining = 1.5
	set.Txns[1].Finished = true
	set.Txns[1].FinishTime = 7

	clone := set.Clone()
	if !reflect.DeepEqual(set, clone) {
		t.Fatalf("clone differs from source:\nsrc   %+v\nclone %+v", set, clone)
	}
}

// TestCloneMutationIsolation: no write through the clone — transaction
// fields, Deps entries, Dependents entries — may reach the original, and
// vice versa.
func TestCloneMutationIsolation(t *testing.T) {
	set := cloneFixture(t)
	pristine := set.Clone() // reference copy for comparison
	clone := set.Clone()

	clone.Txns[0].Remaining = 99
	clone.Txns[0].FinishTime = 42
	clone.Txns[0].Reads[0] = 7
	clone.Txns[0].Writes = append(clone.Txns[0].Writes, 9)
	clone.Txns[1].Deps[0] = 3
	clone.Txns[2].Deps = append(clone.Txns[2].Deps, 3)
	clone.Dependents[0][0] = 3
	clone.Txns = append(clone.Txns, &Transaction{ID: 4, Deadline: 1, Length: 1})

	if !reflect.DeepEqual(set, pristine) {
		t.Fatalf("mutating the clone changed the original:\nwant %+v\ngot  %+v", pristine, set)
	}

	// And the reverse direction: the clone is not a view of the original.
	fresh := set.Clone()
	set.Txns[3].Remaining = -1
	set.Txns[1].Deps[0] = 2
	set.Dependents[0][0] = 2
	if fresh.Txns[3].Remaining == -1 || fresh.Txns[1].Deps[0] == 2 || fresh.Dependents[0][0] == 2 {
		t.Fatal("mutating the original leaked into an existing clone")
	}
}

// TestCloneSharesNoSlices: Deps and Dependents backing arrays must be
// distinct allocations whenever non-empty.
func TestCloneSharesNoSlices(t *testing.T) {
	set := cloneFixture(t)
	clone := set.Clone()
	for i, src := range set.Txns {
		if len(src.Deps) > 0 && &src.Deps[0] == &clone.Txns[i].Deps[0] {
			t.Fatalf("txn %d: clone shares the Deps backing array", i)
		}
		if len(src.Reads) > 0 && &src.Reads[0] == &clone.Txns[i].Reads[0] {
			t.Fatalf("txn %d: clone shares the Reads backing array", i)
		}
		if len(src.Writes) > 0 && &src.Writes[0] == &clone.Txns[i].Writes[0] {
			t.Fatalf("txn %d: clone shares the Writes backing array", i)
		}
		if src == clone.Txns[i] {
			t.Fatalf("txn %d: clone shares the Transaction pointer", i)
		}
	}
	for i := range set.Dependents {
		if len(set.Dependents[i]) > 0 && &set.Dependents[i][0] == &clone.Dependents[i][0] {
			t.Fatalf("Dependents[%d]: clone shares the backing array", i)
		}
	}
}

// TestClonePreservesNilness: nil Deps stay nil (not empty non-nil slices),
// so encodings and DeepEqual comparisons of clones match the source.
func TestClonePreservesNilness(t *testing.T) {
	set := cloneFixture(t)
	clone := set.Clone()
	for i, src := range set.Txns {
		if (src.Deps == nil) != (clone.Txns[i].Deps == nil) {
			t.Fatalf("txn %d: Deps nil-ness changed: src nil=%v clone nil=%v",
				i, src.Deps == nil, clone.Txns[i].Deps == nil)
		}
		if (src.Reads == nil) != (clone.Txns[i].Reads == nil) ||
			(src.Writes == nil) != (clone.Txns[i].Writes == nil) {
			t.Fatalf("txn %d: key-set nil-ness changed (plain workloads must stay keyless after Clone)", i)
		}
	}
}

// TestCloneWorkflowsIndependent: workflows derived from a clone have the
// same structure as the source's — Clone preserves everything BuildWorkflows
// reads — while finishing a clone's member only drains the clone's workflow.
func TestCloneWorkflowsIndependent(t *testing.T) {
	set := cloneFixture(t)
	clone := set.Clone()
	src := BuildWorkflows(set)
	dup := BuildWorkflows(clone)
	if len(src) != len(dup) {
		t.Fatalf("clone yields %d workflows, source %d", len(dup), len(src))
	}
	for i := range src {
		if src[i].Root != dup[i].Root || !reflect.DeepEqual(src[i].Members, dup[i].Members) {
			t.Fatalf("workflow %d differs: src %+v clone %+v", i, src[i], dup[i])
		}
	}
	// Workflows capture their set's transactions: completing one through the
	// clone's workflow must not affect the source's pending members.
	before := src[0].Pending()
	clone.Txns[0].Finished = true
	dup[0].Complete(0)
	if dup[0].Pending() != before-1 {
		t.Fatalf("clone workflow pending %d after Complete, want %d", dup[0].Pending(), before-1)
	}
	if src[0].Pending() != before {
		t.Fatal("completing a member via the clone's workflow drained the source's workflow")
	}
}
