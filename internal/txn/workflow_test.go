package txn

import (
	"testing"
)

// chainSet builds T0 -> T1 -> T2 (T2 depends on T1 depends on T0) plus an
// independent T3, mirroring a small page workload.
func chainSet(t *testing.T) *Set {
	t.Helper()
	t0 := mk(0, 0, 30, 10)
	t1 := mk(1, 0, 12, 2, 0)
	t2 := mk(2, 0, 50, 5, 1)
	t3 := mk(3, 0, 40, 8)
	t0.Weight, t1.Weight, t2.Weight, t3.Weight = 1, 9, 2, 4
	return mustSet(t, t0, t1, t2, t3)
}

func TestBuildWorkflows(t *testing.T) {
	s := chainSet(t)
	wfs := BuildWorkflows(s)
	if len(wfs) != 2 {
		t.Fatalf("built %d workflows, want 2 (roots T2 and T3)", len(wfs))
	}
	// Workflow of root T2 contains the whole chain.
	wf := wfs[0]
	if wf.Root != 2 || len(wf.Members) != 3 {
		t.Fatalf("workflow 0 = %v", wf)
	}
	// Workflow of root T3 is a singleton.
	if wfs[1].Root != 3 || len(wfs[1].Members) != 1 {
		t.Fatalf("workflow 1 = %v", wfs[1])
	}
}

func TestSharedMembership(t *testing.T) {
	// Diamond: two roots (2 and 3) sharing the leaf 0.
	s := mustSet(t,
		mk(0, 0, 10, 1),
		mk(1, 0, 10, 1, 0),
		mk(2, 0, 10, 1, 1),
		mk(3, 0, 10, 1, 0),
	)
	wfs := BuildWorkflows(s)
	if len(wfs) != 2 {
		t.Fatalf("want 2 workflows, got %d", len(wfs))
	}
	inBoth := 0
	for _, wf := range wfs {
		if wf.Contains(0) {
			inBoth++
		}
	}
	if inBoth != 2 {
		t.Fatal("transaction 0 must belong to both workflows (Section II-A)")
	}
}

func TestRepresentativeDefinition9(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0] // chain 0 -> 1 -> 2
	rep := wf.Representative()
	if rep.Deadline != 12 {
		t.Fatalf("rep deadline = %v, want min(30, 12, 50) = 12", rep.Deadline)
	}
	if rep.Remaining != 2 {
		t.Fatalf("rep remaining = %v, want min(10, 2, 5) = 2", rep.Remaining)
	}
	if rep.Weight != 9 {
		t.Fatalf("rep weight = %v, want max(1, 9, 2) = 9", rep.Weight)
	}
}

func TestRepresentativeTracksCompletion(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0]
	s.ByID(1).Finished = true
	if !wf.Complete(1) {
		t.Fatal("Complete(1) returned false for pending member")
	}
	rep := wf.Representative()
	if rep.Deadline != 30 || rep.Remaining != 5 || rep.Weight != 2 {
		t.Fatalf("rep after completing T1 = %+v", rep)
	}
	if wf.Complete(1) {
		t.Fatal("Complete of already-removed member returned true")
	}
}

func TestRepresentativePanicsWhenDone(t *testing.T) {
	s := mustSet(t, mk(0, 0, 10, 1))
	wf := BuildWorkflows(s)[0]
	wf.Complete(0)
	if !wf.Done() {
		t.Fatal("workflow not done after completing its only member")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Representative of done workflow did not panic")
		}
	}()
	wf.Representative()
}

func TestRepresentativeSlackAndMembership(t *testing.T) {
	rep := Representative{Deadline: 20, Remaining: 6, Weight: 2}
	if rep.Slack(10) != 4 {
		t.Fatalf("slack = %v", rep.Slack(10))
	}
	if !rep.CanMeetDeadline(14) {
		t.Fatal("boundary case t + r == d must qualify for the EDF list")
	}
	if rep.CanMeetDeadline(15) {
		t.Fatal("t + r > d must not qualify")
	}
	if rep.Density() != 2.0/6.0 {
		t.Fatalf("density = %v", rep.Density())
	}
}

func TestHeadChain(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0]
	ready := func(tx *Transaction) bool { return tx.Independent() && !tx.Finished }
	head := wf.Head(ready)
	if head == nil || head.ID != 0 {
		t.Fatalf("head = %v, want T0", head)
	}
}

func TestHeadNoneReady(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0]
	if head := wf.Head(func(*Transaction) bool { return false }); head != nil {
		t.Fatalf("head = %v, want nil when nothing ready", head)
	}
}

func TestHeadPrefersEarliestDeadline(t *testing.T) {
	// DAG: root 2 depends on 0 and 1; both leaves ready.
	l0 := mk(0, 0, 40, 5)
	l1 := mk(1, 0, 10, 5)
	r := mk(2, 0, 50, 5, 0, 1)
	s := mustSet(t, l0, l1, r)
	wf := BuildWorkflows(s)[0]
	head := wf.Head(func(tx *Transaction) bool { return tx.Independent() })
	if head.ID != 1 {
		t.Fatalf("head = T%d, want T1 (earliest deadline among ready members)", head.ID)
	}
}

func TestHeadTieBreaks(t *testing.T) {
	// Equal deadlines: higher density wins; equal density: lower ID.
	a := mk(0, 0, 10, 5)
	b := mk(1, 0, 10, 5)
	b.Weight = 3 // higher density
	r := mk(2, 0, 99, 1, 0, 1)
	s := mustSet(t, a, b, r)
	wf := BuildWorkflows(s)[0]
	head := wf.Head(func(tx *Transaction) bool { return tx.Independent() })
	if head.ID != 1 {
		t.Fatalf("head = T%d, want T1 (higher density)", head.ID)
	}

	b.Weight = 1
	head = wf.Head(func(tx *Transaction) bool { return tx.Independent() })
	if head.ID != 0 {
		t.Fatalf("head = T%d, want T0 (lowest ID tie-break)", head.ID)
	}
}

func TestSingletonWorkflows(t *testing.T) {
	s := chainSet(t)
	wfs := SingletonWorkflows(s)
	if len(wfs) != s.Len() {
		t.Fatalf("%d singleton workflows for %d transactions", len(wfs), s.Len())
	}
	for i, wf := range wfs {
		if wf.Root != ID(i) || len(wf.Members) != 1 || wf.Pending() != 1 {
			t.Fatalf("singleton %d = %v", i, wf)
		}
		rep := wf.Representative()
		tx := s.ByID(ID(i))
		if rep.Deadline != tx.Deadline || rep.Remaining != tx.Remaining || rep.Weight != tx.Weight {
			t.Fatalf("singleton rep %d does not equal its transaction", i)
		}
	}
}

func TestWorkflowReset(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0]
	wf.Complete(0)
	wf.Complete(1)
	wf.Reset(s)
	if wf.Pending() != 3 {
		t.Fatalf("pending after reset = %d", wf.Pending())
	}
}

func TestPendingIDsSorted(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0]
	ids := wf.PendingIDs()
	want := []ID{0, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("PendingIDs = %v", ids)
		}
	}
}

func TestWorkflowString(t *testing.T) {
	s := chainSet(t)
	wf := BuildWorkflows(s)[0]
	if got := wf.String(); got == "" {
		t.Fatal("empty String()")
	}
}
