package txn

import (
	"testing"
)

func TestCriticalPathChain(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 100, 4),
		mk(1, 0, 100, 2, 0),
		mk(2, 0, 100, 3, 1),
	)
	cp, err := CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 6, 9}
	for i := range want {
		if cp[i] != want[i] {
			t.Fatalf("cp = %v, want %v", cp, want)
		}
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// 3 depends on 1 (path 4+2=6) and 2 (path 4+5=9): cp[3] = 9+1 = 10.
	s := mustSet(t,
		mk(0, 0, 100, 4),
		mk(1, 0, 100, 2, 0),
		mk(2, 0, 100, 5, 0),
		mk(3, 0, 100, 1, 1, 2),
	)
	cp, err := CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if cp[3] != 10 {
		t.Fatalf("cp[3] = %v, want 10", cp[3])
	}
}

func TestWorkflowCriticalPath(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 100, 4),
		mk(1, 0, 100, 2, 0),
		mk(2, 0, 100, 3, 1),
	)
	wfs := BuildWorkflows(s)
	if got := WorkflowCriticalPath(s, wfs[0]); got != 9 {
		t.Fatalf("workflow cp = %v, want 9", got)
	}
}

func TestSlackAgainstCriticalPath(t *testing.T) {
	// T1's chain needs 6 units but its deadline allows only 5 from arrival:
	// structurally infeasible by 1.
	s := mustSet(t,
		mk(0, 0, 100, 4),
		mk(1, 0, 5, 2, 0),
	)
	slack, err := SlackAgainstCriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if slack[1] != -1 {
		t.Fatalf("slack[1] = %v, want -1 (infeasible SLA)", slack[1])
	}
	if slack[0] != 96 {
		t.Fatalf("slack[0] = %v, want 96", slack[0])
	}
}

func TestCriticalPathLowerBoundsFinishTimes(t *testing.T) {
	// Any legal schedule must finish each transaction no earlier than
	// arrival anchor + critical path when all ancestors share the arrival.
	s := mustSet(t,
		mk(0, 2, 100, 4),
		mk(1, 2, 100, 2, 0),
		mk(2, 2, 100, 3, 1),
	)
	cp, err := CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the only possible order by hand: 0 at 2-6, 1 at 6-8, 2 at 8-11.
	finish := []float64{6, 8, 11}
	for i, f := range finish {
		if f < s.ByID(ID(i)).Arrival+cp[i]-1e-9 {
			t.Fatalf("finish %v below structural bound %v", f, s.ByID(ID(i)).Arrival+cp[i])
		}
	}
}
