package txn

import "fmt"

// CriticalPath computes, for every transaction, the total service time of
// the longest dependency chain ending at that transaction (inclusive). This
// is the structural lower bound on the transaction's response time measured
// from the moment its whole ancestor closure is available: no scheduler can
// render a fragment faster than its critical path on a single backend.
//
// The returned slice is indexed by transaction ID.
func CriticalPath(s *Set) ([]float64, error) {
	order, err := s.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	cp := make([]float64, s.Len())
	for _, id := range order {
		t := s.ByID(id)
		longest := 0.0
		for _, d := range t.Deps {
			if cp[d] > longest {
				longest = cp[d]
			}
		}
		cp[id] = longest + t.Length
	}
	return cp, nil
}

// WorkflowCriticalPath returns the critical path of one workflow: the
// maximum CriticalPath value over its members (the root's value for a
// chain). It panics on inconsistent input, which indicates workflow and set
// were built from different workloads.
func WorkflowCriticalPath(s *Set, wf *Workflow) float64 {
	cp, err := CriticalPath(s)
	if err != nil {
		panic(fmt.Sprintf("txn: critical path on invalid set: %v", err))
	}
	longest := 0.0
	for _, id := range wf.Members {
		if int(id) >= len(cp) {
			panic(fmt.Sprintf("txn: workflow member %d outside set of %d", id, len(cp)))
		}
		if cp[id] > longest {
			longest = cp[id]
		}
	}
	return longest
}

// EarliestFinishTimes returns, per transaction, the earliest instant it
// could possibly finish on an idle system with unlimited servers:
// EFT(t) = max(arrival(t), max over deps EFT(dep)) + length(t). This
// accounts for arrival staggering — an ancestor that arrives (and can
// finish) long before its dependent does not serialize after it — so the
// value is a true lower bound on the finish time under ANY scheduler and
// any server count.
func EarliestFinishTimes(s *Set) ([]float64, error) {
	order, err := s.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	eft := make([]float64, s.Len())
	for _, id := range order {
		t := s.ByID(id)
		start := t.Arrival
		for _, d := range t.Deps {
			if eft[d] > start {
				start = eft[d]
			}
		}
		eft[id] = start + t.Length
	}
	return eft, nil
}

// SlackAgainstCriticalPath returns, per transaction, the deadline slack
// remaining after accounting for the structural earliest finish time:
// deadline - EFT. A negative value marks a transaction whose SLA is
// infeasible even on an idle backend — tardiness no policy can avoid, the
// quantity that separates scheduling losses from workload design losses in
// EXPERIMENTS.md's Figure 14 discussion.
func SlackAgainstCriticalPath(s *Set) ([]float64, error) {
	eft, err := EarliestFinishTimes(s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, s.Len())
	for _, t := range s.Txns {
		out[t.ID] = t.Deadline - eft[t.ID]
	}
	return out, nil
}
