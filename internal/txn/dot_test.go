package txn

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 2),
		mk(1, 0, 5, 1, 0),
		mk(2, 0, 20, 3),
	)
	var b strings.Builder
	if err := WriteDOT(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph workload",
		"t0 [label=\"T0",
		"t0 -> t1;",
		"cluster_wf0",
		"root T1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Singleton workflow (T2) must not get a cluster.
	if strings.Contains(out, "root T2") {
		t.Error("singleton workflow rendered as cluster")
	}
}

func TestWriteDOTEmpty(t *testing.T) {
	s := mustSet(t)
	var b strings.Builder
	if err := WriteDOT(&b, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph") {
		t.Error("empty set produced no graph skeleton")
	}
}
