package txn

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the dependency graph of s in Graphviz DOT format: one
// node per transaction (labelled with id, length, deadline and weight), one
// edge per direct dependency, and one dashed cluster per workflow. It is a
// documentation and debugging aid — `workloadgen | dot -Tsvg` gives a
// picture of exactly what the scheduler saw.
func WriteDOT(w io.Writer, s *Set) error {
	var b strings.Builder
	b.WriteString("digraph workload {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")

	for _, t := range s.Txns {
		fmt.Fprintf(&b, "  t%d [label=\"T%d\\nl=%g d=%.1f w=%g\"];\n",
			t.ID, t.ID, t.Length, t.Deadline, t.Weight)
	}
	for _, t := range s.Txns {
		for _, d := range t.Deps {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", d, t.ID)
		}
	}
	for _, wf := range BuildWorkflows(s) {
		if len(wf.Members) < 2 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_wf%d {\n    label=\"workflow %d (root T%d)\";\n    style=dashed;\n", wf.ID, wf.ID, wf.Root)
		for _, id := range wf.Members {
			fmt.Fprintf(&b, "    t%d;\n", id)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
