package txn

import "testing"

func TestEarliestFinishTimesStaggeredArrivals(t *testing.T) {
	// Ancestor arrives at 0 (len 4, EFT 4); dependent arrives at 10 (len 2):
	// chain does NOT serialize after the dependent's arrival — EFT is 12,
	// not 10 + 4 + 2.
	s := mustSet(t,
		mk(0, 0, 100, 4),
		mk(1, 10, 100, 2, 0),
	)
	eft, err := EarliestFinishTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	if eft[0] != 4 || eft[1] != 12 {
		t.Fatalf("eft = %v, want [4 12]", eft)
	}
}

func TestEarliestFinishTimesBlockedByLateAncestor(t *testing.T) {
	// Dependent arrives at 0 but its ancestor only at 10: EFT respects the
	// ancestor's arrival.
	s := mustSet(t,
		mk(0, 10, 100, 4),
		mk(1, 0, 100, 2, 0),
	)
	eft, err := EarliestFinishTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	if eft[1] != 16 {
		t.Fatalf("eft[1] = %v, want 16 (ancestor finishes 14, then 2)", eft[1])
	}
}

// TestEFTLowerBoundsSimulatedFinishes: for generated workloads under any
// policy, every finish time must be at or above the structural bound.
func TestEFTLowerBoundsSimulatedFinishes(t *testing.T) {
	// Built in the sim package's tests would cause an import cycle here;
	// instead verify the invariant on hand-run schedules in criticalpath
	// tests and on simulated workloads in the experiments suite. Here,
	// check consistency: EFT >= arrival + length always.
	s := mustSet(t,
		mk(0, 3, 100, 4),
		mk(1, 1, 100, 2, 0),
		mk(2, 0, 100, 5),
	)
	eft, err := EarliestFinishTimes(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range s.Txns {
		if eft[tx.ID] < tx.Arrival+tx.Length {
			t.Fatalf("eft[%d] = %v below arrival+length %v", tx.ID, eft[tx.ID], tx.Arrival+tx.Length)
		}
	}
}
