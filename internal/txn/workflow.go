package txn

import (
	"fmt"
	"math"
	"sort"
)

// Workflow is the scheduling entity of the workflow-level ASETS* policy: the
// dependency closure of one root transaction (Section II-A). A transaction
// may belong to several workflows when dependency DAGs share nodes; each
// workflow tracks which of its members are still pending and exposes the
// paper's two distinguished transactions:
//
//   - the head transaction (Definition 8): a pending member that is ready to
//     execute (arrived, empty effective dependency list), and
//   - the representative transaction (Definition 9): a virtual transaction
//     carrying the minimum deadline, minimum remaining processing time and
//     maximum weight over the pending members.
type Workflow struct {
	// ID is the workflow identifier (the dense index over roots).
	ID int
	// Root is the transaction that defines the workflow.
	Root ID
	// Members lists all transactions in the closure, sorted by ID.
	Members []ID

	pending map[ID]*Transaction
}

// Representative captures Definition 9's virtual transaction for one
// workflow at one instant.
type Representative struct {
	// Deadline is the earliest deadline among pending members.
	Deadline float64
	// Remaining is the minimum remaining processing time among pending
	// members.
	Remaining float64
	// Weight is the maximum weight among pending members.
	Weight float64
}

// Slack returns the representative's slack at time now, analogous to
// Definition 2 applied to the virtual transaction.
func (r Representative) Slack(now float64) float64 {
	return r.Deadline - (now + r.Remaining)
}

// CanMeetDeadline reports whether the workflow belongs in the EDF-List:
// t + r_rep <= d_rep (Section III-B).
func (r Representative) CanMeetDeadline(now float64) bool {
	return now+r.Remaining <= r.Deadline
}

// Density returns the representative's HDF priority w_rep / r_rep.
func (r Representative) Density() float64 {
	if r.Remaining <= 0 {
		panic(fmt.Sprintf("txn: representative density with remaining %v", r.Remaining))
	}
	return r.Weight / r.Remaining
}

// BuildWorkflows derives the workflow set from the dependency lists of s:
// one workflow per root, containing the root's dependency closure. Workflows
// are returned sorted by root ID and initialized with all members pending.
//
//lint:coldpath workflow construction is per-run setup (scheduler Init)
func BuildWorkflows(s *Set) []*Workflow {
	roots := s.Roots()
	wfs := make([]*Workflow, 0, len(roots))
	for i, root := range roots {
		members := s.Closure(root)
		wf := &Workflow{
			ID:      i,
			Root:    root,
			Members: members,
			pending: make(map[ID]*Transaction, len(members)),
		}
		for _, id := range members {
			wf.pending[id] = s.ByID(id)
		}
		wfs = append(wfs, wf)
	}
	return wfs
}

// SingletonWorkflows wraps every transaction of s in its own one-member
// workflow, ignoring dependency structure for grouping purposes (readiness
// still honours dependencies — that is the scheduler's job). This grouping
// realizes the paper's "Ready" baseline of Section III-B: dependent
// transactions wait invisibly and surface as independent scheduling entities
// once their dependency lists drain. On an independent workload it coincides
// with BuildWorkflows, so transaction-level ASETS* (Section III-A) is the
// same engine run over singleton entities.
//
//lint:coldpath workflow construction is per-run setup (scheduler Init)
func SingletonWorkflows(s *Set) []*Workflow {
	wfs := make([]*Workflow, s.Len())
	for i, t := range s.Txns {
		wfs[i] = &Workflow{
			ID:      i,
			Root:    t.ID,
			Members: []ID{t.ID},
			pending: map[ID]*Transaction{t.ID: t},
		}
	}
	return wfs
}

// Pending returns the number of members not yet finished.
func (w *Workflow) Pending() int { return len(w.pending) }

// Done reports whether every member transaction has finished.
func (w *Workflow) Done() bool { return len(w.pending) == 0 }

// Contains reports whether id is still pending in this workflow.
func (w *Workflow) Contains(id ID) bool {
	_, ok := w.pending[id]
	return ok
}

// Complete removes a finished member. It returns true when the transaction
// was a pending member of this workflow.
func (w *Workflow) Complete(id ID) bool {
	if _, ok := w.pending[id]; !ok {
		return false
	}
	delete(w.pending, id)
	return true
}

// Representative recomputes Definition 9 over the pending members. It panics
// on an empty workflow: a done workflow must leave the scheduler's lists
// before the representative is consulted.
func (w *Workflow) Representative() Representative {
	return w.RepresentativeExcluding(-1)
}

// RepresentativeExcluding computes the representative over the pending
// members excluding the transaction with the given ID (pass a negative ID
// to exclude nothing). This implements the alternative reading of the
// paper's Example 4, where the head and representative of a two-transaction
// workflow are distinct transactions; DESIGN.md discusses the ambiguity and
// core's WithHeadExcludedRep option ablates it. When the excluded
// transaction is the only pending member it represents itself, so singleton
// workflows keep Definition 6/7 semantics under either reading.
func (w *Workflow) RepresentativeExcluding(exclude ID) Representative {
	if len(w.pending) == 0 {
		panic(fmt.Sprintf("txn: Representative of completed workflow %d", w.ID))
	}
	rep := Representative{
		Deadline:  math.Inf(1),
		Remaining: math.Inf(1),
		Weight:    math.Inf(-1),
	}
	found := false
	//lint:ignore maprange per-field min/max reduction is commutative; iteration order cannot change the result
	for _, t := range w.pending {
		if t.ID == exclude {
			continue
		}
		found = true
		if t.Deadline < rep.Deadline {
			rep.Deadline = t.Deadline
		}
		if t.Remaining < rep.Remaining {
			rep.Remaining = t.Remaining
		}
		if t.Weight > rep.Weight {
			rep.Weight = t.Weight
		}
	}
	if !found {
		return w.RepresentativeExcluding(-1)
	}
	return rep
}

// Head selects Definition 8's head transaction at time now: a pending member
// that has arrived and whose dependencies (restricted to unfinished
// transactions anywhere in the set) are all complete. The paper's chain
// workflows have a unique head; in DAGs with shared members several members
// can be ready simultaneously, in which case the earliest-deadline ready
// member is returned (ties broken by highest density, then lowest ID) — the
// generalization documented in DESIGN.md. Head returns nil when no member is
// currently ready (e.g. the next member has not arrived yet).
//
// ready reports whether a given transaction is ready to execute; the
// scheduler supplies it because readiness depends on global completion
// state, not only on this workflow's members.
func (w *Workflow) Head(ready func(*Transaction) bool) *Transaction {
	var best *Transaction
	//lint:ignore maprange headBefore is a strict total order with an ID tie-break, so the min is iteration-order independent
	for _, t := range w.pending {
		if !ready(t) {
			continue
		}
		if best == nil || headBefore(t, best) {
			best = t
		}
	}
	return best
}

// headBefore orders candidate heads: earliest deadline first, then highest
// density, then lowest ID for full determinism.
func headBefore(a, b *Transaction) bool {
	//lint:ignore floatcmp comparator tie-break: exact equality only decides which key breaks the tie, both orders are valid schedules
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	da, db := a.Weight/a.Remaining, b.Weight/b.Remaining
	if da != db {
		return da > db
	}
	return a.ID < b.ID
}

// PendingIDs returns the pending member IDs sorted ascending (for tests and
// deterministic rendering).
func (w *Workflow) PendingIDs() []ID {
	out := make([]ID, 0, len(w.pending))
	//lint:ignore maprange collected IDs are sorted immediately below
	for id := range w.pending {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset restores all members to pending (used when replaying a workload).
func (w *Workflow) Reset(s *Set) {
	w.pending = make(map[ID]*Transaction, len(w.Members))
	for _, id := range w.Members {
		w.pending[id] = s.ByID(id)
	}
}

// String renders a compact workflow summary.
func (w *Workflow) String() string {
	return fmt.Sprintf("K%d{root=T%d members=%v pending=%d}", w.ID, w.Root, w.Members, len(w.pending))
}
