package txn

import (
	"strings"
	"testing"
	"testing/quick"
)

// mk builds a minimal valid transaction for tests.
func mk(id int, arrival, deadline, length float64, deps ...ID) *Transaction {
	return &Transaction{
		ID:       ID(id),
		Arrival:  arrival,
		Deadline: deadline,
		Length:   length,
		Weight:   1,
		Deps:     deps,
	}
}

func mustSet(t *testing.T, txns ...*Transaction) *Set {
	t.Helper()
	for _, tx := range txns {
		tx.Remaining = tx.Length
	}
	s, err := NewSet(txns)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestSlack(t *testing.T) {
	tx := mk(0, 0, 20, 5)
	tx.Remaining = 5
	if got := tx.Slack(10); got != 5 {
		t.Fatalf("Slack(10) = %v, want 5", got)
	}
	if got := tx.Slack(16); got != -1 {
		t.Fatalf("Slack(16) = %v, want -1", got)
	}
}

func TestCanMeetDeadlineBoundary(t *testing.T) {
	tx := mk(0, 0, 10, 4)
	tx.Remaining = 4
	if !tx.CanMeetDeadline(6) {
		t.Fatal("t + r == d must still qualify for the EDF list (Definition 6 uses <=)")
	}
	if tx.CanMeetDeadline(6.0001) {
		t.Fatal("t + r > d must not qualify")
	}
}

func TestTardiness(t *testing.T) {
	tx := mk(0, 0, 10, 4)
	tx.Finished = true
	tx.FinishTime = 9
	if tx.Tardiness() != 0 {
		t.Fatal("on-time transaction has non-zero tardiness")
	}
	tx.FinishTime = 10
	if tx.Tardiness() != 0 {
		t.Fatal("finishing exactly at the deadline is not tardy (Definition 3)")
	}
	tx.FinishTime = 13.5
	if tx.Tardiness() != 3.5 {
		t.Fatalf("tardiness = %v, want 3.5", tx.Tardiness())
	}
	tx.Finished = false
	if tx.Tardiness() != 0 {
		t.Fatal("unfinished transaction must report zero tardiness")
	}
}

func TestDensity(t *testing.T) {
	tx := mk(0, 0, 10, 4)
	tx.Weight = 8
	tx.Remaining = 2
	if tx.Density() != 4 {
		t.Fatalf("density = %v, want 4", tx.Density())
	}
}

func TestDensityPanicsWhenDone(t *testing.T) {
	tx := mk(0, 0, 10, 4)
	tx.Remaining = 0
	defer func() {
		if recover() == nil {
			t.Fatal("Density with zero remaining did not panic")
		}
	}()
	tx.Density()
}

func TestReset(t *testing.T) {
	tx := mk(0, 0, 10, 4)
	tx.Remaining = 0.5
	tx.Started = true
	tx.Finished = true
	tx.FinishTime = 99
	tx.Reset()
	if tx.Remaining != 4 || tx.Started || tx.Finished || tx.FinishTime != 0 {
		t.Fatalf("Reset left state: %+v", tx)
	}
}

func TestStringMentionsID(t *testing.T) {
	tx := mk(3, 1, 2, 1)
	if !strings.Contains(tx.String(), "T3") {
		t.Fatalf("String() = %q", tx.String())
	}
}

func TestValidateRejectsBadWorkloads(t *testing.T) {
	cases := []struct {
		name string
		txns []*Transaction
	}{
		{"nil slot", []*Transaction{nil}},
		{"sparse ids", []*Transaction{mk(1, 0, 1, 1)}},
		{"zero length", []*Transaction{mk(0, 0, 1, 0)}},
		{"negative arrival", []*Transaction{mk(0, -1, 1, 1)}},
		{"deadline before arrival", []*Transaction{mk(0, 5, 4, 1)}},
		{"unknown dep", []*Transaction{mk(0, 0, 1, 1, 7)}},
		{"self dep", []*Transaction{mk(0, 0, 1, 1, 0)}},
		{"duplicate dep", []*Transaction{mk(0, 0, 2, 1), mk(1, 0, 2, 1, 0, 0)}},
		{"cycle", []*Transaction{mk(0, 0, 2, 1, 1), mk(1, 0, 2, 1, 0)}},
		{"zero weight", func() []*Transaction {
			tx := mk(0, 0, 1, 1)
			tx.Weight = 0
			return []*Transaction{tx}
		}()},
	}
	for _, c := range cases {
		if _, err := NewSet(c.txns); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDependentsIndex(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 1),
		mk(1, 0, 10, 1, 0),
		mk(2, 0, 10, 1, 0),
		mk(3, 0, 10, 1, 1, 2),
	)
	if got := s.Dependents[0]; len(got) != 2 {
		t.Fatalf("dependents of 0 = %v", got)
	}
	if got := s.Dependents[3]; len(got) != 0 {
		t.Fatalf("dependents of 3 = %v", got)
	}
}

func TestTopologicalOrder(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 1, 2), // 0 depends on 2
		mk(1, 0, 10, 1, 0),
		mk(2, 0, 10, 1),
	)
	order, err := s.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[ID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[2] < pos[0] && pos[0] < pos[1]) {
		t.Fatalf("topological order %v violates dependencies", order)
	}
}

func TestRoots(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 1),
		mk(1, 0, 10, 1, 0),
		mk(2, 0, 10, 1, 1),
		mk(3, 0, 10, 1), // independent singleton: also a root
	)
	roots := s.Roots()
	if len(roots) != 2 || roots[0] != 2 || roots[1] != 3 {
		t.Fatalf("roots = %v, want [2 3]", roots)
	}
}

func TestClosure(t *testing.T) {
	s := mustSet(t,
		mk(0, 0, 10, 1),
		mk(1, 0, 10, 1, 0),
		mk(2, 0, 10, 1, 1, 4),
		mk(3, 0, 10, 1),
		mk(4, 0, 10, 1),
	)
	got := s.Closure(2)
	want := []ID{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("closure(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure(2) = %v, want %v", got, want)
		}
	}
	if c := s.Closure(3); len(c) != 1 || c[0] != 3 {
		t.Fatalf("closure(3) = %v", c)
	}
}

func TestResetAll(t *testing.T) {
	s := mustSet(t, mk(0, 0, 10, 3), mk(1, 0, 10, 4))
	s.ByID(0).Finished = true
	s.ByID(1).Remaining = 1
	s.ResetAll()
	for _, tx := range s.Txns {
		if tx.Finished || tx.Remaining != tx.Length {
			t.Fatalf("ResetAll left %+v", tx)
		}
	}
}

// TestQuickSlackIdentity: slack decreases one-for-one with time for any
// transaction state.
func TestQuickSlackIdentity(t *testing.T) {
	f := func(d, r, t1, dt uint16) bool {
		tx := &Transaction{Deadline: float64(d), Remaining: float64(r)}
		now := float64(t1)
		delta := float64(dt)
		return tx.Slack(now)-tx.Slack(now+delta) == delta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickClosureContainsSelfAndDeps: for random chain workloads, every
// closure contains the root and all direct dependencies of every member.
func TestQuickClosureContainsSelfAndDeps(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%7) + 2
		txns := make([]*Transaction, n)
		for i := 0; i < n; i++ {
			var deps []ID
			if i > 0 {
				deps = []ID{ID(i - 1)}
			}
			txns[i] = mk(i, 0, 10, 1, deps...)
		}
		s, err := NewSet(txns)
		if err != nil {
			return false
		}
		closure := s.Closure(ID(n - 1))
		return len(closure) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
