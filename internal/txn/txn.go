// Package txn defines the transaction and workflow model of the paper
// "Adaptive Scheduling of Web Transactions" (ICDE 2009): web transactions
// with arrival times, soft deadlines, processing lengths, weights and
// dependency lists (Definition 1), slack (Definition 2), and workflows —
// dependency-closed sets of transactions rooted at transactions that appear
// in no dependency list (Section II-A).
package txn

import (
	"fmt"
	"sort"
)

// ID identifies a transaction within one workload. IDs are dense indices
// assigned by the workload generator, which lets schedulers use slices
// instead of maps for per-transaction bookkeeping.
type ID int

// Key identifies one row of the abstract keyspace a contended workload
// draws its read/write sets from (docs/CONTENTION.md). Keys are dense
// indices in [0, Keyspace.Keys), which lets the validation engine keep a
// flat version array instead of a map.
type Key int

// Transaction models one web transaction T_i (Definition 1 of the paper).
// The scheduling-time fields (Remaining, Started, Finished, FinishTime) are
// mutated by the simulator; everything else is immutable workload data.
type Transaction struct {
	// ID is the dense workload-local identifier of the transaction.
	ID ID
	// Arrival is a_i, the time the transaction is submitted to the system.
	Arrival float64
	// Deadline is d_i, the soft deadline derived from the fragment's SLA.
	Deadline float64
	// Length is l_i (also called r_i at submission), the total processing
	// time the transaction needs on the backend database.
	Length float64
	// Weight is w_i, the importance of the transaction's fragment. Unit
	// weights reduce weighted tardiness to plain tardiness.
	Weight float64
	// Deps is l_i, the direct dependency list: IDs of transactions whose
	// output this transaction consumes. Empty means independent.
	Deps []ID
	// Reads and Writes are the transaction's data-access sets over the
	// workload's keyspace: the rows it reads and the rows it writes. Both
	// are sorted ascending and duplicate-free (Validate enforces this so
	// conflict tests can merge-scan in O(len)). Nil on the paper's
	// contention-free workloads; populated by contention.Keyspace.Assign.
	// A transaction may read keys it also writes (read-your-own-writes is
	// not a conflict with itself).
	Reads []Key
	// Writes is the write set; see Reads.
	Writes []Key

	// Remaining is the processing time still needed; the simulator
	// decrements it as the transaction runs (preemptive-resume).
	Remaining float64
	// Started reports whether the transaction has received any service.
	Started bool
	// Finished reports whether the transaction has completed.
	Finished bool
	// FinishTime is f_i, valid only once Finished is true.
	FinishTime float64
	// Shed reports that the admission controller rejected the transaction
	// at arrival: it never entered the scheduler and is excluded from the
	// tardiness aggregates (which cover admitted transactions only).
	Shed bool
}

// Slack returns s_i = d_i - (now + Remaining) (Definition 2): the extra time
// the transaction can wait and still meet its deadline if executed without
// further interruption.
func (t *Transaction) Slack(now float64) float64 {
	return t.Deadline - (now + t.Remaining)
}

// CanMeetDeadline reports whether the transaction would still meet its
// deadline if it started executing now (Definition 6 membership test for the
// EDF-List).
func (t *Transaction) CanMeetDeadline(now float64) bool {
	return now+t.Remaining <= t.Deadline
}

// Tardiness returns t_i given a finish time (Definition 3): zero when the
// transaction finished by its deadline, otherwise the overrun.
func (t *Transaction) Tardiness() float64 {
	if !t.Finished || t.FinishTime <= t.Deadline {
		return 0
	}
	return t.FinishTime - t.Deadline
}

// Density returns w_i / r_i, the HDF priority. It panics on a non-positive
// remaining time because a finished transaction has no meaningful density.
func (t *Transaction) Density() float64 {
	if t.Remaining <= 0 {
		panic(fmt.Sprintf("txn: Density of transaction %d with remaining %v", t.ID, t.Remaining))
	}
	return t.Weight / t.Remaining
}

// Independent reports whether the transaction has an empty dependency list.
func (t *Transaction) Independent() bool { return len(t.Deps) == 0 }

// Reset restores the scheduling-time state so a workload can be replayed
// under another policy.
func (t *Transaction) Reset() {
	t.Remaining = t.Length
	t.Started = false
	t.Finished = false
	t.FinishTime = 0
	t.Shed = false
}

// String renders a compact human-readable summary for traces and examples.
func (t *Transaction) String() string {
	return fmt.Sprintf("T%d{a=%.2f d=%.2f l=%.2f w=%.1f deps=%v}",
		t.ID, t.Arrival, t.Deadline, t.Length, t.Weight, t.Deps)
}

// Set is an immutable-by-convention collection of transactions indexed by ID
// (Txns[i].ID == i always holds after Validate).
type Set struct {
	Txns []*Transaction
	// Dependents[i] lists the IDs of transactions that directly depend on
	// transaction i (the reverse edges of Deps). Built by Validate.
	Dependents [][]ID
}

// NewSet wraps txns into a Set, building reverse dependency edges and
// validating the workload invariants.
func NewSet(txns []*Transaction) (*Set, error) {
	s := &Set{Txns: txns}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the structural invariants a workload must satisfy: dense
// IDs, positive lengths, non-negative arrivals, deadlines no earlier than
// arrival, valid dependency references, and an acyclic dependency graph. It
// also (re)builds the reverse-edge index.
func (s *Set) Validate() error {
	n := len(s.Txns)
	for i, t := range s.Txns {
		if t == nil {
			return fmt.Errorf("txn: set slot %d is nil", i)
		}
		if int(t.ID) != i {
			return fmt.Errorf("txn: transaction at slot %d has ID %d (IDs must be dense)", i, t.ID)
		}
		if t.Length <= 0 {
			return fmt.Errorf("txn: transaction %d has non-positive length %v", t.ID, t.Length)
		}
		if t.Arrival < 0 {
			return fmt.Errorf("txn: transaction %d has negative arrival %v", t.ID, t.Arrival)
		}
		if t.Deadline < t.Arrival {
			return fmt.Errorf("txn: transaction %d has deadline %v before arrival %v", t.ID, t.Deadline, t.Arrival)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("txn: transaction %d has non-positive weight %v", t.ID, t.Weight)
		}
		seen := make(map[ID]bool, len(t.Deps))
		for _, d := range t.Deps {
			if d < 0 || int(d) >= n {
				return fmt.Errorf("txn: transaction %d depends on unknown transaction %d", t.ID, d)
			}
			if d == t.ID {
				return fmt.Errorf("txn: transaction %d depends on itself", t.ID)
			}
			if seen[d] {
				return fmt.Errorf("txn: transaction %d lists dependency %d twice", t.ID, d)
			}
			seen[d] = true
		}
		if err := validKeySet(t.ID, "read", t.Reads); err != nil {
			return err
		}
		if err := validKeySet(t.ID, "write", t.Writes); err != nil {
			return err
		}
	}
	s.Dependents = make([][]ID, n)
	for _, t := range s.Txns {
		for _, d := range t.Deps {
			s.Dependents[d] = append(s.Dependents[d], t.ID)
		}
	}
	if _, err := s.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// validKeySet checks one access set: non-negative keys, sorted ascending,
// no duplicates. The sorted/dedup invariant is what lets conflict tests
// merge-scan two sets in O(len) without allocating.
func validKeySet(id ID, kind string, keys []Key) error {
	for i, k := range keys {
		if k < 0 {
			return fmt.Errorf("txn: transaction %d has negative %s key %d", id, kind, k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("txn: transaction %d %s set is not sorted and duplicate-free at index %d", id, kind, i)
		}
	}
	return nil
}

// Len returns the number of transactions in the set.
func (s *Set) Len() int { return len(s.Txns) }

// ByID returns the transaction with the given ID.
func (s *Set) ByID(id ID) *Transaction { return s.Txns[id] }

// ResetAll restores every transaction's scheduling-time state.
func (s *Set) ResetAll() {
	for _, t := range s.Txns {
		t.Reset()
	}
}

// Clone returns a deep copy of the set: every transaction (including its
// scheduling-time state and dependency list) and the reverse-edge index are
// copied, so mutating the clone — running it through a simulator, shedding,
// fault injection, arrival rewrites — never touches the original. Workflows
// are derived structures (BuildWorkflows constructs them from a set), so a
// clone's workflows are built from the clone and share nothing either.
//
// Clone exists for the parallel experiment engine (internal/runner): each
// concurrent run owns a private copy of the workload while the original
// remains reusable. The copy preserves the exact float64 bits and slice
// nil-ness of the original, so a clone-then-run is byte-identical to an
// original-run (see docs/PARALLELISM.md).
func (s *Set) Clone() *Set {
	c := &Set{Txns: make([]*Transaction, len(s.Txns))}
	for i, t := range s.Txns {
		ct := *t
		if t.Deps != nil {
			ct.Deps = make([]ID, len(t.Deps))
			copy(ct.Deps, t.Deps)
		}
		if t.Reads != nil {
			ct.Reads = make([]Key, len(t.Reads))
			copy(ct.Reads, t.Reads)
		}
		if t.Writes != nil {
			ct.Writes = make([]Key, len(t.Writes))
			copy(ct.Writes, t.Writes)
		}
		c.Txns[i] = &ct
	}
	if s.Dependents != nil {
		c.Dependents = make([][]ID, len(s.Dependents))
		for i, deps := range s.Dependents {
			if deps != nil {
				c.Dependents[i] = make([]ID, len(deps))
				copy(c.Dependents[i], deps)
			}
		}
	}
	return c
}

// TopologicalOrder returns the transaction IDs in an order where every
// transaction appears after all of its dependencies, or an error if the
// dependency graph has a cycle (which would deadlock any scheduler).
func (s *Set) TopologicalOrder() ([]ID, error) {
	n := len(s.Txns)
	indeg := make([]int, n)
	for _, t := range s.Txns {
		indeg[t.ID] = len(t.Deps)
	}
	queue := make([]ID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, ID(i))
		}
	}
	order := make([]ID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, dep := range dependentsOf(s, id) {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("txn: dependency graph contains a cycle (%d of %d transactions orderable)", len(order), n)
	}
	return order, nil
}

func dependentsOf(s *Set, id ID) []ID {
	if s.Dependents == nil {
		// Validate not run yet; compute on the fly (only hit from Validate
		// itself, which builds Dependents before calling TopologicalOrder).
		var out []ID
		for _, t := range s.Txns {
			for _, d := range t.Deps {
				if d == id {
					out = append(out, t.ID)
				}
			}
		}
		return out
	}
	return s.Dependents[id]
}

// Roots returns the IDs of transactions that appear in no dependency list:
// each one defines a workflow (Section II-A: "a workflow is defined for
// every transaction that does not appear in any dependency list").
func (s *Set) Roots() []ID {
	isDep := make([]bool, len(s.Txns))
	for _, t := range s.Txns {
		for _, d := range t.Deps {
			isDep[d] = true
		}
	}
	var roots []ID
	for i, used := range isDep {
		if !used {
			roots = append(roots, ID(i))
		}
	}
	return roots
}

// Closure returns the dependency closure of id: the transaction itself plus
// everything it transitively depends on, sorted by ID.
func (s *Set) Closure(id ID) []ID {
	seen := map[ID]bool{id: true}
	stack := []ID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range s.Txns[cur].Deps {
			if !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	out := make([]ID, 0, len(seen))
	//lint:ignore maprange collected IDs are sorted immediately below
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
