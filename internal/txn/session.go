package txn

// Session describes one simulated user in a closed-loop run: a sequence of
// page requests, each materialized by a workflow of transactions. The user
// requests page j+1 only after page j has fully rendered, following an
// exponential think time — the interactive-session model of the paper's
// introduction, where slow pages directly delay (and frustrate) the user.
type Session struct {
	// Pages lists, per page, the IDs of the transactions that materialize
	// it. All transactions of a page are submitted together when the page
	// is requested; their deadlines are interpreted relative to the request
	// instant (the generator stores relative deadlines; see Workload
	// construction in ClosedLoop).
	Pages [][]ID
	// ThinkTimes holds the think time preceding each page request: page 0
	// is requested at ThinkTimes[0] after the session starts, page j at
	// ThinkTimes[j] after page j-1 rendered.
	ThinkTimes []float64
}
