package metrics

import (
	"fmt"
	"math"
)

// Stream accumulates scalar observations with Welford's online algorithm,
// giving numerically stable mean and variance without storing samples. The
// experiment harness uses one Stream per (figure, policy, x-value) cell to
// average the five seeded runs the paper prescribes.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns a normal-approximation 95% confidence half-width around the
// mean. With the paper's five runs per cell this is a rough but useful
// stability indicator for EXPERIMENTS.md.
func (s *Stream) CI95() float64 { return 1.96 * s.StdErr() }

// String renders "mean ± ci95 (n)".
func (s *Stream) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Merge folds other into s, as if every observation of other had been added
// to s (Chan et al. parallel variance combination). Used when experiment
// cells are computed by parallel workers.
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}
