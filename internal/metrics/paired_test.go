package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPairedBasics(t *testing.T) {
	var p Paired
	p.Add(10, 8)
	p.Add(12, 9)
	p.Add(8, 7)
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
	if p.MeanA() != 10 || p.MeanB() != 8 {
		t.Fatalf("means %v %v", p.MeanA(), p.MeanB())
	}
	if p.MeanDiff() != 2 {
		t.Fatalf("diff %v", p.MeanDiff())
	}
	if math.Abs(p.RelativeImprovement()-0.2) > 1e-12 {
		t.Fatalf("improvement %v", p.RelativeImprovement())
	}
}

func TestPairedRemovesWorkloadVariance(t *testing.T) {
	// A and B differ by a tiny constant on wildly varying workloads: an
	// unpaired comparison drowns, the paired one detects it.
	src := rng.New(7)
	var p Paired
	for i := 0; i < 50; i++ {
		base := src.Uniform(0, 1000)
		p.Add(base+1, base) // A consistently 1 worse
	}
	if !p.Significant05() {
		t.Fatalf("constant +1 difference not significant: %s", p.String())
	}
	if math.Abs(p.MeanDiff()-1) > 1e-9 {
		t.Fatalf("mean diff %v", p.MeanDiff())
	}
}

func TestPairedNoDifference(t *testing.T) {
	var p Paired
	for i := 0; i < 10; i++ {
		p.Add(float64(i), float64(i))
	}
	if p.Significant05() {
		t.Fatal("identical series flagged significant")
	}
	if p.TStatistic() != 0 {
		t.Fatalf("t = %v", p.TStatistic())
	}
}

func TestPairedDegenerate(t *testing.T) {
	var p Paired
	if p.TStatistic() != 0 || p.Significant05() {
		t.Fatal("empty paired misbehaves")
	}
	p.Add(1, 2)
	if p.TStatistic() != 0 {
		t.Fatal("single pair should have t=0")
	}
	// Zero variance, non-zero mean: infinite t.
	var q Paired
	q.Add(3, 1)
	q.Add(3, 1)
	if !math.IsInf(q.TStatistic(), 1) || !q.Significant05() {
		t.Fatalf("constant diff t = %v", q.TStatistic())
	}
	var zero Paired
	zero.Add(0, 0)
	if zero.RelativeImprovement() != 0 {
		t.Fatal("zero baseline improvement should be 0")
	}
}

func TestPairedString(t *testing.T) {
	var p Paired
	p.Add(2, 1)
	p.Add(3, 1)
	if p.String() == "" {
		t.Fatal("empty String")
	}
}
