package metrics

import (
	"reflect"
	"testing"
)

// TestHistogramMergeEqualsSerialFeed: h.Merge(other) must leave h exactly as
// if it had observed other's stream after its own — counts, zero bucket,
// sum, max and every geometric bucket.
func TestHistogramMergeEqualsSerialFeed(t *testing.T) {
	a, b, want := NewHistogram(2), NewHistogram(2), NewHistogram(2)
	for _, v := range []float64{0, 0.5, 1, 2.5, 7, 300} {
		a.Add(v)
		want.Add(v)
	}
	for _, v := range []float64{0, 4, 9000, 0.1} {
		b.Add(v)
		want.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != want.N() || a.Sum() != want.Sum() || a.Max() != want.Max() {
		t.Fatalf("merged N/Sum/Max = %d/%v/%v, want %d/%v/%v",
			a.N(), a.Sum(), a.Max(), want.N(), want.Sum(), want.Max())
	}
	if !reflect.DeepEqual(a.Buckets(), want.Buckets()) {
		t.Fatalf("merged buckets differ:\ngot  %+v\nwant %+v", a.Buckets(), want.Buckets())
	}
}

// TestHistogramMergeGrowsBuckets: merging a histogram with more buckets than
// the destination extends the destination.
func TestHistogramMergeGrowsBuckets(t *testing.T) {
	a, b := NewHistogram(2), NewHistogram(2)
	a.Add(1)
	b.Add(1 << 20)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 2 || a.Max() != 1<<20 {
		t.Fatalf("after growth merge: N=%d Max=%v", a.N(), a.Max())
	}
}

// TestHistogramMergeLeavesSourceUntouched: Merge reads but never writes the
// other histogram.
func TestHistogramMergeLeavesSourceUntouched(t *testing.T) {
	a, b := NewHistogram(2), NewHistogram(2)
	a.Add(3)
	b.Add(5)
	before := b.Buckets()
	n, sum := b.N(), b.Sum()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.N() != n || b.Sum() != sum || !reflect.DeepEqual(b.Buckets(), before) {
		t.Fatal("Merge mutated its argument")
	}
}

func TestHistogramMergeBaseMismatch(t *testing.T) {
	a, b := NewHistogram(2), NewHistogram(10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bases should error")
	}
}
