package metrics

import (
	"fmt"
	"math"
)

// Sketch is a deterministic, mergeable quantile sketch with fixed geometric
// bucket boundaries (the DDSketch family): bucket i covers values in
// (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), so every quantile
// estimate is the upper edge of a bucket and carries a relative error bounded
// by alpha. Because the boundaries are a pure function of alpha — never of
// the data — two sketches built from the same observations in any order hold
// identical bucket counts, and sketches from disjoint runs merge exactly
// (counts add cell by cell). That fixed-boundary property is what lets the
// parallel experiment engine keep windowed percentiles bit-identical between
// serial and multi-worker runs (docs/PARALLELISM.md).
//
// Like Histogram, a dedicated zero bucket carries the "met the deadline"
// mass point of tardiness distributions, and the running Sum accumulates in
// observation order (merge adds the other sketch's sum, so merging in job
// order reproduces a serial run's sum bit for bit; see Merge).
type Sketch struct {
	alpha    float64
	gamma    float64
	logGamma float64
	zero     int64
	lo       int // bucket index of buckets[0]; meaningful when len(buckets) > 0
	buckets  []int64
	n        int64
	sum      float64
	max      float64
}

// sketchIndexBound clamps bucket indices: with alpha = 0.01 the bound covers
// values from roughly 1e-17 to 1e+17. Observations beyond it collapse into
// the edge buckets (Max still records the exact extreme).
const sketchIndexBound = 4096

// NewSketch returns a sketch with relative accuracy alpha (0 < alpha < 1;
// 0.01 gives 1% relative error, the conventional default).
//
//lint:coldpath sketch construction happens at metric-registration time
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) || math.IsNaN(alpha) {
		panic(fmt.Sprintf("metrics: sketch alpha %v must be in (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{alpha: alpha, gamma: gamma, logGamma: math.Log(gamma)}
}

// Add records one observation. Negative and NaN values panic: tardiness,
// response times and slowdowns are non-negative by construction, so anything
// else is a caller bug worth surfacing immediately.
func (s *Sketch) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("metrics: sketch observation %v must be non-negative", v))
	}
	s.n++
	s.sum += v
	if v > s.max {
		s.max = v
	}
	if v == 0 {
		s.zero++
		return
	}
	idx := s.index(v)
	if idx < s.lo || idx >= s.lo+len(s.buckets) {
		s.extend(idx)
	}
	s.buckets[idx-s.lo]++
}

// AddBatch records every observation in vs, in slice order. It is exactly
// equivalent to calling Add on each value — the running sum is the same
// left-fold — and exists as the flush target for batched observers.
func (s *Sketch) AddBatch(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// index maps a positive value to its bucket: the smallest i with
// gamma^i >= v, clamped to the indexable range.
func (s *Sketch) index(v float64) int {
	idx := int(math.Ceil(math.Log(v) / s.logGamma))
	if idx < -sketchIndexBound {
		idx = -sketchIndexBound
	}
	if idx > sketchIndexBound {
		idx = sketchIndexBound
	}
	return idx
}

// extend reshapes the dense backing array so bucket idx is addressable:
// seeding on first use, padding downward, or growing upward. This is
// warm-up-only work — once the array covers the data's dynamic range, Add
// never calls it again, which is what keeps the steady-state observation
// path allocation-free.
//
//lint:coldpath bucket-range extension runs only until the array covers [lo, hi]; steady-state Add never reaches it
func (s *Sketch) extend(idx int) {
	if len(s.buckets) == 0 {
		s.lo = idx
		s.buckets = append(s.buckets, 0)
		return
	}
	if idx < s.lo {
		pad := make([]int64, s.lo-idx)
		s.buckets = append(pad, s.buckets...)
		s.lo = idx
	}
	for idx >= s.lo+len(s.buckets) {
		s.buckets = append(s.buckets, 0)
	}
}

// Merge folds other into s: zero and bucket counts add cell by cell, the
// running sum accumulates as s.sum + other.sum, and the maximum is the larger
// of the two. Counts, cells, max — and therefore every quantile — are exact
// under any merge grouping; the float sum is a left-fold, so it is
// bit-reproducible for a fixed set of partials folded in a fixed order (the
// runner merges per-job sketches in job order on both its serial and parallel
// paths, which is why worker count never changes the merged sum). It returns
// an error when the relative accuracies differ, because the bucket boundaries
// would not align. other is not modified.
func (s *Sketch) Merge(other *Sketch) error {
	if s.alpha != other.alpha {
		return fmt.Errorf("metrics: cannot merge sketches with alpha %v and %v", s.alpha, other.alpha)
	}
	s.n += other.n
	s.zero += other.zero
	s.sum += other.sum
	if other.max > s.max {
		s.max = other.max
	}
	for i, c := range other.buckets {
		if c != 0 {
			idx := other.lo + i
			if idx < s.lo || idx >= s.lo+len(s.buckets) {
				s.extend(idx)
			}
			s.buckets[idx-s.lo] += c
		}
	}
	return nil
}

// Reset clears the sketch's counts, sum and maximum while keeping the bucket
// array (and its covered index range) allocated, so a tumbling-window
// observer can reuse one sketch per window without re-extending: after the
// first few windows warm the array, the steady-state observe path never
// allocates again.
func (s *Sketch) Reset() {
	s.zero = 0
	s.n = 0
	s.sum = 0
	s.max = 0
	for i := range s.buckets {
		s.buckets[i] = 0
	}
}

// N returns the number of observations.
func (s *Sketch) N() int64 { return s.n }

// Sum returns the exact running sum of all observations, accumulated in
// observation (or merge) order.
func (s *Sketch) Sum() float64 { return s.sum }

// Max returns the largest observation.
func (s *Sketch) Max() float64 { return s.max }

// Alpha returns the relative accuracy the sketch was constructed with.
func (s *Sketch) Alpha() float64 { return s.alpha }

// ZeroCount returns the number of exactly-zero observations.
func (s *Sketch) ZeroCount() int64 { return s.zero }

// Quantile returns the upper bucket edge holding the q-quantile (0 < q <= 1):
// an upper estimate within relative error alpha of the true quantile (zero
// for the zero bucket). The estimate is a pure function of the bucket counts
// — identical counts give a bit-identical answer regardless of the order the
// observations arrived or the sketches were merged in.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.n)))
	acc := s.zero
	if acc >= target {
		return 0
	}
	for i, c := range s.buckets {
		acc += c
		if acc >= target {
			if s.lo+i >= sketchIndexBound {
				// Observations clamped into the top bucket may exceed its
				// nominal edge; the exact maximum is the honest bound.
				return s.max
			}
			edge := math.Pow(s.gamma, float64(s.lo+i))
			if edge > s.max {
				// The top bucket's edge can overshoot the data; the true
				// quantile never exceeds the exact maximum.
				return s.max
			}
			return edge
		}
	}
	return s.max
}

// SketchCell is one occupied bucket for exporters: Upper is the bucket's
// upper edge (0 for the zero bucket) and Count the per-cell occupancy.
type SketchCell struct {
	Upper float64
	Count int64
}

// Cells returns the occupied buckets in ascending upper-edge order, zero
// bucket first (when occupied). Counts are per-cell, not cumulative.
func (s *Sketch) Cells() []SketchCell {
	out := make([]SketchCell, 0, len(s.buckets)+1)
	if s.zero > 0 {
		out = append(out, SketchCell{Upper: 0, Count: s.zero})
	}
	for i, c := range s.buckets {
		if c > 0 {
			out = append(out, SketchCell{Upper: math.Pow(s.gamma, float64(s.lo+i)), Count: c})
		}
	}
	return out
}
