package metrics

import (
	"fmt"
	"math"
)

// Paired accumulates paired observations of two policies measured on
// identical workloads (same seed, same transactions) — the right way to
// compare schedulers, because pairing removes the workload-to-workload
// variance that dominates independent comparisons. It reports the mean
// difference, its confidence interval, and a paired t statistic.
type Paired struct {
	a, b  Stream
	diffs Stream
}

// Add records one paired observation: metric value under policy A and under
// policy B on the same workload.
func (p *Paired) Add(a, b float64) {
	p.a.Add(a)
	p.b.Add(b)
	p.diffs.Add(a - b)
}

// N returns the number of pairs.
func (p *Paired) N() int { return p.diffs.N() }

// MeanA and MeanB return the per-policy means.
func (p *Paired) MeanA() float64 { return p.a.Mean() }
func (p *Paired) MeanB() float64 { return p.b.Mean() }

// MeanDiff returns the mean of A-B: positive means A is larger (worse, for
// tardiness metrics).
func (p *Paired) MeanDiff() float64 { return p.diffs.Mean() }

// RelativeImprovement returns (meanA - meanB) / meanA: the fraction by
// which B improves on A. Zero when A's mean is zero.
func (p *Paired) RelativeImprovement() float64 {
	if p.a.Mean() == 0 {
		return 0
	}
	return p.diffs.Mean() / p.a.Mean()
}

// TStatistic returns the paired t statistic meanDiff / (sd/sqrt(n)). It is
// zero when fewer than two pairs or zero variance with zero mean.
func (p *Paired) TStatistic() float64 {
	if p.diffs.N() < 2 {
		return 0
	}
	se := p.diffs.StdErr()
	if se == 0 {
		if p.diffs.Mean() == 0 {
			return 0
		}
		return math.Inf(sign(p.diffs.Mean()))
	}
	return p.diffs.Mean() / se
}

// Significant05 reports whether the mean difference is significant at the
// 5% level using the normal approximation (|t| > 1.96). With the paper's
// five seeds this is conservative guidance, not a formal test; the
// experiment tables carry the full CIs.
func (p *Paired) Significant05() bool {
	t := p.TStatistic()
	return !math.IsNaN(t) && math.Abs(t) > 1.96
}

// CI95 returns the 95% half-width on the mean difference.
func (p *Paired) CI95() float64 { return p.diffs.CI95() }

// String renders a one-line summary.
func (p *Paired) String() string {
	return fmt.Sprintf("A=%.4f B=%.4f diff=%.4f±%.4f (t=%.2f, n=%d)",
		p.MeanA(), p.MeanB(), p.MeanDiff(), p.CI95(), p.TStatistic(), p.N())
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}
