package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("zero-value stream misbehaves")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic dataset is 4; the unbiased sample
	// variance is 4 * 8/7.
	if got, want := s.Variance(), 4.0*8/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamSingleObservation(t *testing.T) {
	var s Stream
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatalf("singleton stream: %+v", s)
	}
}

func TestStreamCI95ShrinksWithN(t *testing.T) {
	src := rng.New(17)
	var small, large Stream
	for i := 0; i < 10; i++ {
		small.Add(src.Float64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestStreamMergeMatchesSequential(t *testing.T) {
	src := rng.New(23)
	var all, a, b Stream
	for i := 0; i < 500; i++ {
		v := src.Uniform(-10, 10)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestStreamMergeEmptyCases(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	var c Stream
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestStreamString(t *testing.T) {
	var s Stream
	s.Add(1)
	s.Add(2)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestQuickStreamMeanBounds: the mean of any sample lies within [min, max].
func TestQuickStreamMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Stream
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			s.Add(v)
		}
		if s.N() > 0 {
			ok = s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Variance() >= 0
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
