package metrics

import (
	"math"
	"reflect"
	"testing"
)

// batchValues is a deterministic mix of the cases that matter for bucketing:
// zeros (the deadline-met mass point), exact powers of two (bucket
// boundaries), sub-unit values and irregular magnitudes spanning decades.
func batchValues() []float64 {
	vs := []float64{0, 1, 2, 4, 8, 0.25, 0.5, 3.7, 42, 1e-6, 1e6, 1024, 1023.999}
	x := 0.3
	for i := 0; i < 200; i++ {
		x = math.Mod(x*997.1+3.14159, 5000)
		vs = append(vs, x)
		if i%17 == 0 {
			vs = append(vs, 0)
		}
	}
	return vs
}

// TestHistogramAddBatchMatchesSequential: AddBatch is documented as the same
// left-fold as per-value Add — counts, buckets and the running sum must be
// bit-identical, not merely close.
func TestHistogramAddBatchMatchesSequential(t *testing.T) {
	vs := batchValues()
	for _, base := range []float64{2, math.E} {
		one, batch := NewHistogram(base), NewHistogram(base)
		for _, v := range vs {
			one.Add(v)
		}
		batch.AddBatch(vs)
		if one.N() != batch.N() || one.Max() != batch.Max() {
			t.Fatalf("base %v: n/max diverge: %d/%v vs %d/%v", base, one.N(), one.Max(), batch.N(), batch.Max())
		}
		if math.Float64bits(one.Sum()) != math.Float64bits(batch.Sum()) {
			t.Fatalf("base %v: sums not bit-identical: %x vs %x", base,
				math.Float64bits(one.Sum()), math.Float64bits(batch.Sum()))
		}
		if !reflect.DeepEqual(one.Buckets(), batch.Buckets()) {
			t.Fatalf("base %v: bucket layouts diverge", base)
		}
	}
}

// TestHistogramPow2Buckets pins the exponent-extraction fast path to the
// documented layout: bucket i covers [2^i, 2^(i+1)), exact at boundaries,
// with sub-unit values absorbed by the first bucket.
func TestHistogramPow2Buckets(t *testing.T) {
	h := NewHistogram(2)
	cases := []struct {
		v    float64
		want int // geometric bucket index (excluding the zero bucket)
	}{
		{1, 0}, {1.5, 0}, {2, 1}, {3.999, 1}, {4, 2}, {8, 3}, {1024, 10},
		{0.5, 0}, {0.001, 0}, // sub-unit clamps to the first bucket
	}
	for _, c := range cases {
		h = NewHistogram(2)
		h.Add(c.v)
		buckets := h.Buckets()[1:] // strip the zero bucket
		if len(buckets) != c.want+1 || buckets[c.want].Count != 1 {
			t.Errorf("Add(%v): bucket layout %+v, want single count in bucket %d", c.v, buckets, c.want)
		}
		if want := math.Pow(2, float64(c.want+1)); buckets[c.want].Upper != want {
			t.Errorf("Add(%v): bucket upper %v, want %v", c.v, buckets[c.want].Upper, want)
		}
	}
}

// TestSketchAddBatchMatchesSequential mirrors the histogram bit-identity
// requirement for the quantile sketch, whose batched inserts back the
// windowed per-cell flush.
func TestSketchAddBatchMatchesSequential(t *testing.T) {
	vs := batchValues()
	one, batch := NewSketch(0.01), NewSketch(0.01)
	for _, v := range vs {
		one.Add(v)
	}
	batch.AddBatch(vs)
	if one.N() != batch.N() || one.Max() != batch.Max() {
		t.Fatalf("n/max diverge: %d/%v vs %d/%v", one.N(), one.Max(), batch.N(), batch.Max())
	}
	if math.Float64bits(one.Sum()) != math.Float64bits(batch.Sum()) {
		t.Fatalf("sums not bit-identical: %x vs %x",
			math.Float64bits(one.Sum()), math.Float64bits(batch.Sum()))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if a, b := one.Quantile(q), batch.Quantile(q); a != b {
			t.Fatalf("q%.2f diverges: %v vs %v", q, a, b)
		}
	}
}
