package metrics

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func TestSketchBasics(t *testing.T) {
	s := NewSketch(0.01)
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	s.Add(0)
	s.Add(0)
	s.Add(10)
	if s.N() != 3 || s.ZeroCount() != 2 || s.Max() != 10 || s.Sum() != 10 {
		t.Fatalf("n=%d zero=%d max=%v sum=%v", s.N(), s.ZeroCount(), s.Max(), s.Sum())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("p50 = %v, want 0 (zero bucket)", got)
	}
	p99 := s.Quantile(0.99)
	if math.Abs(p99-10) > 10*0.011 {
		t.Fatalf("p99 = %v, want ~10 within 1%%", p99)
	}
}

func TestSketchRelativeAccuracy(t *testing.T) {
	const alpha = 0.01
	s := NewSketch(alpha)
	// 1..10000 uniformly: the true q-quantile of the multiset is known.
	for i := 1; i <= 10000; i++ {
		s.Add(float64(i))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		got := s.Quantile(q)
		want := math.Ceil(q * 10000)
		if rel := math.Abs(got-want) / want; rel > 2*alpha {
			t.Errorf("q=%v: got %v want %v (rel err %v)", q, got, want, rel)
		}
		if got > s.Max() {
			t.Errorf("q=%v: estimate %v exceeds max %v", q, got, s.Max())
		}
	}
}

func TestSketchOrderIndependentCounts(t *testing.T) {
	r := rng.New(7)
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = r.Float64() * 100
	}
	fwd, rev := NewSketch(0.02), NewSketch(0.02)
	for _, v := range vals {
		fwd.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Add(vals[i])
	}
	if !reflect.DeepEqual(fwd.Cells(), rev.Cells()) {
		t.Fatal("bucket counts depend on insertion order")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if fwd.Quantile(q) != rev.Quantile(q) {
			t.Fatalf("q=%v differs across insertion orders", q)
		}
	}
}

// TestSketchMergeAssociativity: counts, cells, max and quantiles must be
// bit-identical under any merge grouping — the property the parallel runner's
// job-order aggregation rests on. (The running Sum is a float left-fold and
// is only guaranteed for a fixed merge order, like Histogram.)
func TestSketchMergeAssociativity(t *testing.T) {
	build := func(seed uint64, n int) *Sketch {
		s := NewSketch(0.01)
		r := rng.New(seed)
		for i := 0; i < n; i++ {
			v := r.Float64() * 50
			if v < 5 {
				v = 0
			}
			s.Add(v)
		}
		return s
	}
	mk := func() (a, b, c *Sketch) { return build(1, 300), build(2, 200), build(3, 100) }

	// (a ⊕ b) ⊕ c
	a1, b1, c1 := mk()
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	if err := a1.Merge(c1); err != nil {
		t.Fatal(err)
	}
	// a ⊕ (b ⊕ c)
	a2, b2, c2 := mk()
	if err := b2.Merge(c2); err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b2); err != nil {
		t.Fatal(err)
	}

	if a1.N() != a2.N() || a1.ZeroCount() != a2.ZeroCount() || a1.Max() != a2.Max() {
		t.Fatalf("aggregates differ: n %d/%d zero %d/%d max %v/%v",
			a1.N(), a2.N(), a1.ZeroCount(), a2.ZeroCount(), a1.Max(), a2.Max())
	}
	if !reflect.DeepEqual(a1.Cells(), a2.Cells()) {
		t.Fatal("cells differ across merge groupings")
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if a1.Quantile(q) != a2.Quantile(q) {
			t.Fatalf("q=%v differs across merge groupings", q)
		}
	}
}

// TestSketchMergeMatchesDirect: folding per-part sketches in part order must
// reproduce a single-sketch pass exactly for counts, cells and max, and the
// merge fold itself must be a pure function of the partials and fold order —
// the structure the runner relies on (serial and parallel paths both merge
// per-job partials in job order, so they agree bit for bit).
func TestSketchMergeMatchesDirect(t *testing.T) {
	r := rng.New(42)
	parts := [][]float64{make([]float64, 100), make([]float64, 150), make([]float64, 50)}
	direct := NewSketch(0.01)
	partials := make([]*Sketch, len(parts))
	for i := range parts {
		partials[i] = NewSketch(0.01)
		for j := range parts[i] {
			parts[i][j] = r.Float64() * 200
			partials[i].Add(parts[i][j])
			direct.Add(parts[i][j])
		}
	}
	fold := func() *Sketch {
		m := NewSketch(0.01)
		for _, p := range partials {
			if err := m.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	merged, again := fold(), fold()
	if merged.N() != direct.N() || merged.Max() != direct.Max() {
		t.Fatalf("merged n=%d max=%v, direct n=%d max=%v",
			merged.N(), merged.Max(), direct.N(), direct.Max())
	}
	if !reflect.DeepEqual(merged.Cells(), direct.Cells()) {
		t.Fatal("merged cells differ from direct cells")
	}
	// The merge-order sum is a different float fold than the single-pass sum
	// (addition is not associative) but must agree to rounding and reproduce
	// bit-identically across identical folds.
	if rel := math.Abs(merged.Sum()-direct.Sum()) / direct.Sum(); rel > 1e-12 {
		t.Fatalf("merged sum %v vs direct %v (rel %v)", merged.Sum(), direct.Sum(), rel)
	}
	if merged.Sum() != again.Sum() || merged.N() != again.N() {
		t.Fatal("identical folds disagree")
	}
	if !reflect.DeepEqual(merged.Cells(), again.Cells()) {
		t.Fatal("identical folds produce different cells")
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a, b := NewSketch(0.01), NewSketch(0.02)
	if err := a.Merge(b); err == nil {
		t.Fatal("alpha mismatch accepted")
	}
}

func TestSketchPanics(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSketch(%v) did not panic", alpha)
				}
			}()
			NewSketch(alpha)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Add did not panic")
			}
		}()
		NewSketch(0.01).Add(-1)
	}()
}

func TestSketchExtremeValuesClamp(t *testing.T) {
	s := NewSketch(0.01)
	s.Add(1e300)
	s.Add(1e-300)
	if s.N() != 2 || s.Max() != 1e300 {
		t.Fatalf("n=%d max=%v", s.N(), s.Max())
	}
	// The top quantile must report the exact maximum, not an overshooting
	// clamped bucket edge.
	if got := s.Quantile(1); got != 1e300 {
		t.Fatalf("p100 = %v, want exact max", got)
	}
}
