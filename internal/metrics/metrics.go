// Package metrics computes the performance measures of the paper's
// evaluation: per-transaction tardiness (Definition 3), average tardiness
// (Definition 4), average weighted tardiness (Definition 5), and the maximum
// weighted tardiness used to characterize worst-case performance in the
// balance-aware experiments (Section IV-F) — plus supporting measures
// (deadline miss ratio, response time, realized utilization) used by the
// tests and the extended benchmarks.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/txn"
)

// Summary aggregates one simulation run over a complete workload. When an
// admission controller shed transactions, every tardiness/response aggregate
// covers the admitted (completed) transactions only; Shed counts the rest.
type Summary struct {
	// N is the number of admitted (completed) transactions.
	N int
	// Shed is the number of transactions the admission controller rejected;
	// zero for runs without overload protection.
	Shed int
	// Aborts, Restarts and Stalls count injected faults (zero without a
	// fault plan); the sim fills them in after Compute.
	Aborts   int
	Restarts int
	Stalls   int
	// ValidateFails counts commit-time validation failures — contention-
	// driven re-executions (zero without a keyspace, docs/CONTENTION.md);
	// the run loops fill it in after Compute.
	ValidateFails int
	// AvgTardiness is (1/N) * sum t_i (Definition 4).
	AvgTardiness float64
	// AvgWeightedTardiness is (1/N) * sum t_i*w_i (Definition 5).
	AvgWeightedTardiness float64
	// MaxTardiness is max_i t_i.
	MaxTardiness float64
	// MaxWeightedTardiness is max_i t_i*w_i — the worst-case metric of
	// Figure 16.
	MaxWeightedTardiness float64
	// MissRatio is the fraction of transactions that missed their deadline.
	MissRatio float64
	// AvgResponseTime is the mean of f_i - a_i.
	AvgResponseTime float64
	// AvgStretch is the mean of (f_i - a_i) / l_i, a slowdown measure.
	AvgStretch float64
	// TotalWork is the sum of transaction lengths.
	TotalWork float64
	// Makespan is the time the last transaction finished.
	Makespan float64
	// BusyTime is the total time the backend served transactions.
	BusyTime float64
	// Utilization is BusyTime / Makespan, the realized load.
	Utilization float64
	// TardinessP50/P95/P99 are tardiness percentiles across transactions.
	TardinessP50 float64
	TardinessP95 float64
	TardinessP99 float64
}

// Compute derives a Summary from a finished workload. busyTime is the total
// service time the simulator performed (equal to TotalWork for a
// work-conserving schedule that completes everything). Transactions marked
// Shed are excluded from every aggregate and counted in Summary.Shed; any
// other unfinished transaction is an error, because a partial run has no
// meaningful tardiness.
//
//lint:coldpath end-of-run aggregation, runs once after the event loop drains
func Compute(set *txn.Set, busyTime float64) (*Summary, error) {
	if set.Len() == 0 {
		return &Summary{}, nil
	}
	s := &Summary{BusyTime: busyTime}
	tard := make([]float64, 0, set.Len())
	misses := 0
	for _, t := range set.Txns {
		if t.Shed {
			s.Shed++
			continue
		}
		if !t.Finished {
			return nil, fmt.Errorf("metrics: transaction %d is unfinished", t.ID)
		}
		s.N++
		ti := t.Tardiness()
		tard = append(tard, ti)
		s.AvgTardiness += ti
		s.AvgWeightedTardiness += ti * t.Weight
		if ti > s.MaxTardiness {
			s.MaxTardiness = ti
		}
		if wt := ti * t.Weight; wt > s.MaxWeightedTardiness {
			s.MaxWeightedTardiness = wt
		}
		if ti > 0 {
			misses++
		}
		resp := t.FinishTime - t.Arrival
		s.AvgResponseTime += resp
		s.AvgStretch += resp / t.Length
		s.TotalWork += t.Length
		if t.FinishTime > s.Makespan {
			s.Makespan = t.FinishTime
		}
	}
	if s.N == 0 {
		// Everything was shed; there are no completions to average.
		return s, nil
	}
	fn := float64(s.N)
	s.AvgTardiness /= fn
	s.AvgWeightedTardiness /= fn
	s.AvgResponseTime /= fn
	s.AvgStretch /= fn
	s.MissRatio = float64(misses) / fn
	if s.Makespan > 0 {
		s.Utilization = busyTime / s.Makespan
	}
	sort.Float64s(tard)
	s.TardinessP50 = percentile(tard, 0.50)
	s.TardinessP95 = percentile(tard, 0.95)
	s.TardinessP99 = percentile(tard, 0.99)
	return s, nil
}

// percentile returns the p-quantile (0 <= p <= 1) of sorted values using
// linear interpolation between closest ranks.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the headline numbers on one line for CLI output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d avgTard=%.3f avgWTard=%.3f maxWTard=%.3f miss=%.1f%% resp=%.3f util=%.3f",
		s.N, s.AvgTardiness, s.AvgWeightedTardiness, s.MaxWeightedTardiness,
		100*s.MissRatio, s.AvgResponseTime, s.Utilization)
}
