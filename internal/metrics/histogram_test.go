package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(2)
	for _, v := range []float64{0, 0, 1.5, 3, 10, 100} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-114.5/6) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v", h.Max())
	}
	if math.Abs(h.ZeroFraction()-2.0/6) > 1e-12 {
		t.Fatalf("zero fraction = %v", h.ZeroFraction())
	}
}

// TestHistogramSumAndBuckets covers the exporter surface: Sum accumulates
// observations in insertion order (so exporters can compare it bitwise
// against an equally-ordered external sum) and Buckets returns the zero
// bucket followed by the geometric edges.
func TestHistogramSumAndBuckets(t *testing.T) {
	h := NewHistogram(2)
	vals := []float64{0, 0.5, 1.5, 3, 10}
	var sum float64
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
	b := h.Buckets()
	if len(b) == 0 || b[0].Upper != 0 || b[0].Count != 1 {
		t.Fatalf("zero bucket = %+v", b)
	}
	total := 0
	for i, bk := range b {
		if i > 0 && bk.Upper != math.Pow(2, float64(i)) {
			t.Fatalf("bucket %d upper = %v", i, bk.Upper)
		}
		total += bk.Count
	}
	if total != len(vals) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(vals))
	}
	if NewHistogram(2).Sum() != 0 {
		t.Fatal("empty histogram Sum non-zero")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(2)
	// 50 zeros, 50 values of 8 (bucket [8,16)).
	for i := 0; i < 50; i++ {
		h.Add(0)
	}
	for i := 0; i < 50; i++ {
		h.Add(8)
	}
	if q := h.Quantile(0.4); q != 0 {
		t.Fatalf("q40 = %v, want 0", q)
	}
	q90 := h.Quantile(0.9)
	if q90 < 8 || q90 > 16 {
		t.Fatalf("q90 = %v, want within (8, 16]", q90)
	}
	if h.Quantile(1.0) < 8 {
		t.Fatalf("q100 = %v", h.Quantile(1.0))
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty quantile non-zero")
	}
}

func TestHistogramSubUnitValues(t *testing.T) {
	h := NewHistogram(2)
	h.Add(0.001)
	h.Add(0.5)
	if h.N() != 2 || h.ZeroFraction() != 0 {
		t.Fatalf("sub-unit handling: %+v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, base := range []float64{1, 0.5, math.NaN()} {
		func() {
			defer func() { recover() }()
			NewHistogram(base)
			t.Errorf("base %v accepted", base)
		}()
	}
	h := NewHistogram(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative observation accepted")
		}
	}()
	h.Add(-1)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(2)
	h.Add(0)
	h.Add(5)
	out := h.String()
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "=0") {
		t.Fatalf("render: %q", out)
	}
}

// TestQuickHistogramQuantileMonotone: quantiles are monotone in q and
// bounded by the observation range for any data.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(2)
		for _, v := range vals {
			h.Add(float64(v))
		}
		prev := -1.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
