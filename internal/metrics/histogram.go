package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates non-negative observations (tardiness, response
// times) into geometric buckets: bucket i covers [base^i, base^(i+1)), with
// a dedicated zero bucket because "met the deadline" is the interesting mass
// point of every tardiness distribution. The geometric layout keeps
// resolution proportional to magnitude across the 4-5 decades a saturated
// run produces.
type Histogram struct {
	base    float64
	logBase float64 // precomputed math.Log(base); the index divisor
	pow2    bool    // base == 2: index via exponent extraction, no Log calls
	zero    int
	buckets []int
	n       int
	sum     float64
	max     float64
}

// NewHistogram returns a histogram with the given bucket growth factor
// (must exceed 1; 2 gives powers of two).
//
//lint:coldpath histogram construction happens at metric-registration time
func NewHistogram(base float64) *Histogram {
	if base <= 1 || math.IsNaN(base) || math.IsInf(base, 0) {
		panic(fmt.Sprintf("metrics: histogram base %v must be > 1", base))
	}
	return &Histogram{base: base, logBase: math.Log(base), pow2: base == 2}
}

// Add records one observation. Negative values panic: tardiness and
// response times are non-negative by construction, so a negative value is a
// caller bug worth surfacing immediately.
func (h *Histogram) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("metrics: histogram observation %v must be non-negative", v))
	}
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v == 0 {
		h.zero++
		return
	}
	var idx int
	if h.pow2 {
		// floor(log2(v)) extracted from the float representation: Frexp
		// yields v = frac × 2^exp with frac in [0.5, 1), so the floor is
		// exactly exp-1 — no transcendental call on the observation path,
		// and exact at bucket boundaries where Log would round.
		_, exp := math.Frexp(v)
		idx = exp - 1
	} else {
		idx = int(math.Floor(math.Log(v) / h.logBase))
	}
	if idx < 0 {
		idx = 0 // sub-unit values share the first bucket
	}
	if len(h.buckets) <= idx {
		h.extend(idx)
	}
	h.buckets[idx]++
}

// AddBatch records every observation in vs, in slice order — exactly
// equivalent to calling Add on each value (same left-fold sum), provided as
// the flush target for batched observers. The aggregate state rides in
// locals across the loop and is stored back once, which is what the batch
// saves over per-value Add beyond call overhead.
func (h *Histogram) AddBatch(vs []float64) {
	n, zero := h.n, h.zero
	sum, max := h.sum, h.max
	pow2, logBase := h.pow2, h.logBase
	buckets := h.buckets
	for _, v := range vs {
		if v < 0 || math.IsNaN(v) {
			panic(fmt.Sprintf("metrics: histogram observation %v must be non-negative", v))
		}
		n++
		sum += v
		if v > max {
			max = v
		}
		if v == 0 {
			zero++
			continue
		}
		var idx int
		if pow2 {
			_, exp := math.Frexp(v)
			idx = exp - 1
		} else {
			idx = int(math.Floor(math.Log(v) / logBase))
		}
		if idx < 0 {
			idx = 0
		}
		if len(buckets) <= idx {
			h.extend(idx)
			buckets = h.buckets
		}
		buckets[idx]++
	}
	h.n, h.zero = n, zero
	h.sum, h.max = sum, max
}

// extend grows the bucket array until idx is addressable. Warm-up-only:
// buckets reach ~log_base(max) entries, then stay fixed, keeping the
// steady-state observation path allocation-free.
//
//lint:coldpath bucket growth runs only during warm-up; steady-state Add never reaches it
func (h *Histogram) extend(idx int) {
	for len(h.buckets) <= idx {
		h.buckets = append(h.buckets, 0)
	}
}

// Merge folds other into h: counts and bucket occupancies add, the running
// sum accumulates (h.sum + other.sum, in that order — merging registries in
// a fixed order therefore yields bit-identical sums), and the maximum is the
// larger of the two. It returns an error when the bucket bases differ,
// because the geometric layouts would not align. other is not modified.
func (h *Histogram) Merge(other *Histogram) error {
	if h.base != other.base {
		return fmt.Errorf("metrics: cannot merge histograms with bases %v and %v", h.base, other.base)
	}
	h.n += other.n
	h.zero += other.zero
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for len(h.buckets) < len(other.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	return nil
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Mean returns the running mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Base returns the bucket growth factor the histogram was constructed with.
func (h *Histogram) Base() float64 { return h.base }

// Sum returns the exact running sum of all observations, accumulated in
// observation order — exporters that must agree bit-for-bit with an
// independently kept running sum rely on this.
func (h *Histogram) Sum() float64 { return h.sum }

// Bucket is one histogram cell for exporters. The zero bucket (exactly-zero
// observations) has Upper == 0; bucket i of the geometric layout has
// Upper == base^(i+1) and covers observations in [base^i, base^(i+1)) —
// except the first, which also absorbs sub-unit values.
type Bucket struct {
	Upper float64
	Count int
}

// Buckets returns every cell in ascending upper-edge order, zero bucket
// first, including empty cells up to the highest occupied one. The counts
// are per-bucket, not cumulative.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.buckets)+1)
	out = append(out, Bucket{Upper: 0, Count: h.zero})
	for i, c := range h.buckets {
		out = append(out, Bucket{Upper: math.Pow(h.base, float64(i+1)), Count: c})
	}
	return out
}

// ZeroFraction returns the share of exactly-zero observations (transactions
// that met their deadline, for a tardiness histogram).
func (h *Histogram) ZeroFraction() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.zero) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using the
// bucket upper edges: the true quantile lies within one bucket width below.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(h.n)))
	acc := h.zero
	if acc >= target {
		return 0
	}
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			return math.Pow(h.base, float64(i+1))
		}
	}
	return h.max
}

// String renders an ASCII bar view, one row per non-empty bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3f max=%.3f zero=%.1f%%\n", h.n, h.Mean(), h.max, 100*h.ZeroFraction())
	if h.zero > 0 {
		fmt.Fprintf(&b, "%12s %6d %s\n", "=0", h.zero, bar(h.zero, h.n))
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := math.Pow(h.base, float64(i))
		hi := math.Pow(h.base, float64(i+1))
		fmt.Fprintf(&b, "%5.1f-%-6.1f %6d %s\n", lo, hi, c, bar(c, h.n))
	}
	return b.String()
}

func bar(count, total int) string {
	if total == 0 {
		return ""
	}
	width := count * 40 / total
	return strings.Repeat("#", width)
}
