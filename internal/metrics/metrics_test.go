package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/txn"
)

func finished(id int, arrival, deadline, length, weight, finish float64) *txn.Transaction {
	return &txn.Transaction{
		ID:         txn.ID(id),
		Arrival:    arrival,
		Deadline:   deadline,
		Length:     length,
		Weight:     weight,
		Finished:   true,
		FinishTime: finish,
	}
}

func set(t *testing.T, txns ...*txn.Transaction) *txn.Set {
	t.Helper()
	s, err := txn.NewSet(txns)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestComputeDefinitions(t *testing.T) {
	// T0: on time. T1: 4 tardy, weight 3. T2: 2 tardy, weight 1.
	s := set(t,
		finished(0, 0, 10, 5, 2, 8),
		finished(1, 0, 10, 5, 3, 14),
		finished(2, 1, 10, 4, 1, 12),
	)
	sum, err := Compute(s, 14)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.AvgTardiness, (0.0+4+2)/3; got != want {
		t.Errorf("AvgTardiness = %v, want %v (Definition 4)", got, want)
	}
	if got, want := sum.AvgWeightedTardiness, (0.0*2+4*3+2*1)/3; got != want {
		t.Errorf("AvgWeightedTardiness = %v, want %v (Definition 5)", got, want)
	}
	if sum.MaxTardiness != 4 {
		t.Errorf("MaxTardiness = %v", sum.MaxTardiness)
	}
	if sum.MaxWeightedTardiness != 12 {
		t.Errorf("MaxWeightedTardiness = %v, want 12 (4*3)", sum.MaxWeightedTardiness)
	}
	if got, want := sum.MissRatio, 2.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("MissRatio = %v, want %v", got, want)
	}
	if got, want := sum.AvgResponseTime, (8.0+14+11)/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgResponseTime = %v, want %v", got, want)
	}
	if sum.Makespan != 14 {
		t.Errorf("Makespan = %v", sum.Makespan)
	}
	if sum.TotalWork != 14 {
		t.Errorf("TotalWork = %v", sum.TotalWork)
	}
	if sum.Utilization != 1 {
		t.Errorf("Utilization = %v", sum.Utilization)
	}
}

func TestComputeStretch(t *testing.T) {
	s := set(t, finished(0, 0, 100, 4, 1, 8)) // response 8 over length 4
	sum, err := Compute(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AvgStretch != 2 {
		t.Errorf("AvgStretch = %v, want 2", sum.AvgStretch)
	}
}

func TestComputeRejectsUnfinished(t *testing.T) {
	u := finished(0, 0, 10, 5, 1, 8)
	u.Finished = false
	s := set(t, u)
	if _, err := Compute(s, 0); err == nil || !strings.Contains(err.Error(), "unfinished") {
		t.Fatalf("err = %v", err)
	}
}

func TestComputeEmpty(t *testing.T) {
	s := set(t)
	sum, err := Compute(s, 0)
	if err != nil || sum.N != 0 {
		t.Fatalf("sum=%+v err=%v", sum, err)
	}
}

func TestPercentiles(t *testing.T) {
	// 100 transactions with tardiness 1..100 (deadline 0 offsets).
	txns := make([]*txn.Transaction, 100)
	for i := range txns {
		txns[i] = finished(i, 0, 1, 1, 1, float64(i+2)) // tardiness i+1
	}
	s := set(t, txns...)
	sum, err := Compute(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.TardinessP50-50.5) > 0.01 {
		t.Errorf("P50 = %v, want ~50.5", sum.TardinessP50)
	}
	if sum.TardinessP99 < 99 || sum.TardinessP99 > 100 {
		t.Errorf("P99 = %v", sum.TardinessP99)
	}
	if sum.TardinessP95 < 95 || sum.TardinessP95 > 96.1 {
		t.Errorf("P95 = %v", sum.TardinessP95)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
	if percentile([]float64{7}, 0.99) != 7 {
		t.Error("singleton percentile")
	}
	if got := percentile([]float64{1, 3}, 0.5); got != 2 {
		t.Errorf("interpolated percentile = %v, want 2", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := set(t, finished(0, 0, 10, 5, 1, 8))
	sum, _ := Compute(s, 5)
	if !strings.Contains(sum.String(), "n=1") {
		t.Errorf("String() = %q", sum.String())
	}
}
