package sim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// obsWorkload exercises workflows and weights so ASETS* produces the full
// event taxonomy, including EDF→HDF migrations.
func obsWorkload(t *testing.T) *workload.Config {
	t.Helper()
	cfg := workload.Default(0.95, 17).WithWorkflows(4, 1).WithWeights()
	cfg.N = 250
	return &cfg
}

// TestEventStreamDeterministic is the acceptance criterion for the JSONL
// sink: two fixed-seed runs serialize byte-identically.
func TestEventStreamDeterministic(t *testing.T) {
	cfg := obsWorkload(t)
	run := func() []byte {
		set := workload.MustGenerate(*cfg)
		var buf bytes.Buffer
		jw := obs.NewJSONLWriter(&buf)
		if _, err := New(Config{Sink: jw}).Run(set, core.New()); err != nil {
			t.Fatal(err)
		}
		if err := jw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("fixed-seed event streams are not byte-identical")
	}
}

// TestMetricsAgreeWithSummary pins the registry's end-of-run totals against
// the independent metrics.Summary computation for the same run.
func TestMetricsAgreeWithSummary(t *testing.T) {
	cfg := obsWorkload(t)
	set := workload.MustGenerate(*cfg)
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	summary, err := New(Config{Sink: col, Metrics: reg}).Run(set, core.New())
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	n := uint64(summary.N)
	if counters[sched.MetricArrivals] != n || counters[sched.MetricCompletions] != n {
		t.Fatalf("arrivals/completions = %d/%d, want %d", counters[sched.MetricArrivals], counters[sched.MetricCompletions], n)
	}
	wantMisses := uint64(math.Round(summary.MissRatio * float64(summary.N)))
	if counters[sched.MetricMisses] != wantMisses {
		t.Fatalf("misses = %d, want %d", counters[sched.MetricMisses], wantMisses)
	}

	var tard obs.HistogramValue
	for _, h := range snap.Histograms {
		if h.Name == sched.MetricTardiness {
			tard = h
		}
	}
	if tard.Count != summary.N {
		t.Fatalf("tardiness count = %d, want %d", tard.Count, summary.N)
	}
	// Summary averages over ID order, the histogram accumulates in
	// completion order: identical values, possibly different rounding in
	// the last bits.
	if avg := tard.Sum / float64(tard.Count); math.Abs(avg-summary.AvgTardiness) > 1e-9 {
		t.Fatalf("avg tardiness %v vs summary %v", avg, summary.AvgTardiness)
	}
	if tard.Max != summary.MaxTardiness {
		t.Fatalf("max tardiness %v vs summary %v", tard.Max, summary.MaxTardiness)
	}

	// Event-stream consistency: dispatches = completions + preemptions
	// (every check-out ends in exactly one of the two), and the event
	// counts match the counters.
	if counters[sched.MetricDispatches] != counters[sched.MetricCompletions]+counters[sched.MetricPreemptions] {
		t.Fatalf("dispatches %d != completions %d + preemptions %d",
			counters[sched.MetricDispatches], counters[sched.MetricCompletions], counters[sched.MetricPreemptions])
	}
	kinds := map[obs.Kind]uint64{}
	for _, ev := range col.Events() {
		kinds[ev.Kind]++
	}
	if kinds[obs.KindDispatch] != counters[sched.MetricDispatches] ||
		kinds[obs.KindDeadlineMiss] != counters[sched.MetricMisses] {
		t.Fatalf("event counts %v disagree with counters %v", kinds, counters)
	}
}

// TestModeSwitchEventsReachSink: a saturated ASETS* run must migrate some
// entities from EDF to HDF, and those policy-internal events must surface
// in the unified stream.
func TestModeSwitchEventsReachSink(t *testing.T) {
	cfg := workload.Default(1.3, 23).WithWorkflows(4, 1).WithWeights()
	cfg.N = 300
	set := workload.MustGenerate(cfg)
	col := &obs.Collector{}
	reg := obs.NewRegistry()
	if _, err := New(Config{Sink: col, Metrics: reg}).Run(set, core.New()); err != nil {
		t.Fatal(err)
	}
	var switches uint64
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindModeSwitch {
			switches++
			if ev.Workflow < 0 || ev.Detail != "edf->hdf" {
				t.Fatalf("malformed mode-switch event %+v", ev)
			}
		}
	}
	if switches == 0 {
		t.Fatal("overloaded run produced no EDF→HDF migrations")
	}
	counters := map[string]uint64{}
	for _, c := range reg.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters[sched.MetricModeSwitch] != switches {
		t.Fatalf("mode-switch counter %d != events %d", counters[sched.MetricModeSwitch], switches)
	}
}

// TestAgingEventsEmitted: balance-aware time activation produces aging
// events tagged with the activated transaction.
func TestAgingEventsEmitted(t *testing.T) {
	cfg := workload.Default(1.1, 5)
	cfg.N = 300
	set := workload.MustGenerate(cfg)
	col := &obs.Collector{}
	s := core.New(core.WithTimeActivation(0.05))
	if _, err := New(Config{Sink: col}).Run(set, s); err != nil {
		t.Fatal(err)
	}
	aging := 0
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindAging {
			aging++
			if ev.Txn < 0 || ev.Detail != "t_old" {
				t.Fatalf("malformed aging event %+v", ev)
			}
		}
	}
	if aging == 0 {
		t.Fatal("balance-aware run produced no aging events")
	}
}

// TestInstrumentedRunMatchesBare: instrumentation must not change the
// schedule — the summary with a sink attached equals the uninstrumented one.
func TestInstrumentedRunMatchesBare(t *testing.T) {
	cfg := obsWorkload(t)
	set1 := workload.MustGenerate(*cfg)
	set2 := workload.MustGenerate(*cfg)
	bare, err := New(Config{}).Run(set1, core.New())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{Sink: &obs.Collector{}, Metrics: obs.NewRegistry()}).Run(set2, core.New())
	if err != nil {
		t.Fatal(err)
	}
	if *bare != *inst {
		t.Fatalf("instrumentation changed the schedule:\nbare %+v\ninst %+v", bare, inst)
	}
}
