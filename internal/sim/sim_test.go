package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/txn"
)

func mk(id int, arrival, deadline, length float64, deps ...txn.ID) *txn.Transaction {
	return &txn.Transaction{
		ID:       txn.ID(id),
		Arrival:  arrival,
		Deadline: deadline,
		Length:   length,
		Weight:   1,
		Deps:     deps,
	}
}

func mustSet(t *testing.T, txns ...*txn.Transaction) *txn.Set {
	t.Helper()
	s, err := txn.NewSet(txns)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestRunSingleTransaction(t *testing.T) {
	set := mustSet(t, mk(0, 2, 10, 5))
	sum, err := New(Config{}).Run(set, sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	tx := set.ByID(0)
	if !tx.Finished || tx.FinishTime != 7 {
		t.Fatalf("finish = %v, want 7 (arrival 2 + length 5)", tx.FinishTime)
	}
	if sum.AvgTardiness != 0 || sum.BusyTime != 5 || sum.Makespan != 7 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestRunIdlePeriods(t *testing.T) {
	// Two transactions separated by an idle gap.
	set := mustSet(t, mk(0, 0, 10, 2), mk(1, 10, 20, 3))
	rec := &trace.Recorder{}
	if _, err := New(Config{Recorder: rec}).Run(set, sched.NewFCFS()); err != nil {
		t.Fatal(err)
	}
	if set.ByID(0).FinishTime != 2 || set.ByID(1).FinishTime != 13 {
		t.Fatalf("finishes = %v, %v", set.ByID(0).FinishTime, set.ByID(1).FinishTime)
	}
	if err := rec.Validate(set); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptionUnderSRPT(t *testing.T) {
	// T0 (length 10) starts; T1 (length 2) arrives at t=4 and preempts.
	set := mustSet(t, mk(0, 0, 100, 10), mk(1, 4, 100, 2))
	rec := &trace.Recorder{}
	if _, err := New(Config{Recorder: rec}).Run(set, sched.NewSRPT()); err != nil {
		t.Fatal(err)
	}
	if set.ByID(1).FinishTime != 6 {
		t.Fatalf("short arrival finished at %v, want 6 (preempted the long one)", set.ByID(1).FinishTime)
	}
	if set.ByID(0).FinishTime != 12 {
		t.Fatalf("long transaction finished at %v, want 12", set.ByID(0).FinishTime)
	}
	if got := rec.Preemptions(set); got != 1 {
		t.Fatalf("preemptions = %d, want 1", got)
	}
	if err := rec.Validate(set); err != nil {
		t.Fatal(err)
	}
}

func TestNoPreemptionUnderFCFS(t *testing.T) {
	set := mustSet(t, mk(0, 0, 100, 10), mk(1, 4, 100, 2))
	rec := &trace.Recorder{}
	if _, err := New(Config{Recorder: rec}).Run(set, sched.NewFCFS()); err != nil {
		t.Fatal(err)
	}
	if got := rec.Preemptions(set); got != 0 {
		t.Fatalf("FCFS preempted %d times", got)
	}
	if set.ByID(0).FinishTime != 10 || set.ByID(1).FinishTime != 12 {
		t.Fatalf("finishes = %v, %v", set.ByID(0).FinishTime, set.ByID(1).FinishTime)
	}
}

func TestArrivalExactlyAtCompletion(t *testing.T) {
	// T1 arrives exactly when T0 completes; no preemption slice, no idling.
	set := mustSet(t, mk(0, 0, 100, 5), mk(1, 5, 100, 3))
	rec := &trace.Recorder{}
	if _, err := New(Config{Recorder: rec}).Run(set, sched.NewSRPT()); err != nil {
		t.Fatal(err)
	}
	if set.ByID(1).FinishTime != 8 {
		t.Fatalf("T1 finished at %v, want 8", set.ByID(1).FinishTime)
	}
}

func TestSimultaneousArrivals(t *testing.T) {
	set := mustSet(t, mk(0, 1, 100, 4), mk(1, 1, 50, 4), mk(2, 1, 10, 4))
	if _, err := New(Config{}).Run(set, sched.NewEDF()); err != nil {
		t.Fatal(err)
	}
	if set.ByID(2).FinishTime != 5 || set.ByID(1).FinishTime != 9 || set.ByID(0).FinishTime != 13 {
		t.Fatalf("EDF order wrong: %v %v %v",
			set.ByID(2).FinishTime, set.ByID(1).FinishTime, set.ByID(0).FinishTime)
	}
}

func TestDependenciesAcrossArrivals(t *testing.T) {
	// Dependent arrives before its dependency: must wait for both arrival
	// and completion of the dependency.
	set := mustSet(t, mk(0, 8, 100, 2), mk(1, 0, 100, 3, 0))
	rec := &trace.Recorder{}
	if _, err := New(Config{Recorder: rec}).Run(set, core.New()); err != nil {
		t.Fatal(err)
	}
	if set.ByID(1).FinishTime != 13 {
		t.Fatalf("dependent finished at %v, want 13 (dep arrives 8, runs 2, then 3)", set.ByID(1).FinishTime)
	}
	if err := rec.Validate(set); err != nil {
		t.Fatal(err)
	}
}

func TestBusyTimeEqualsTotalWork(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 30, 7),
		mk(1, 3, 9, 2),
		mk(2, 5, 40, 4),
	)
	sum, err := New(Config{}).Run(set, core.New())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.BusyTime-13) > 1e-9 {
		t.Fatalf("busy time = %v, want 13 (total work)", sum.BusyTime)
	}
}

// livelockScheduler always returns nil from Next even though work is
// pending; with no future arrivals, Run must detect the deadlock.
type livelockScheduler struct{}

func (l *livelockScheduler) Name() string                                 { return "livelock" }
func (l *livelockScheduler) Init(*txn.Set)                                {}
func (l *livelockScheduler) OnArrival(float64, *txn.Transaction)          {}
func (l *livelockScheduler) Next(float64) *txn.Transaction                { return nil }
func (l *livelockScheduler) OnPreempt(float64, *txn.Transaction)          {}
func (l *livelockScheduler) OnCompletion(now float64, t *txn.Transaction) {}

func TestDeadlockDetected(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 5))
	_, err := New(Config{}).Run(set, &livelockScheduler{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock detection", err)
	}
}

// earlyScheduler returns a transaction before its arrival to exercise the
// simulator's sanity checks.
type earlyScheduler struct{ tx *txn.Transaction }

func (e *earlyScheduler) Name() string                        { return "early" }
func (e *earlyScheduler) Init(s *txn.Set)                     { e.tx = s.ByID(0) }
func (e *earlyScheduler) OnArrival(float64, *txn.Transaction) {}
func (e *earlyScheduler) Next(float64) *txn.Transaction       { return e.tx }
func (e *earlyScheduler) OnPreempt(float64, *txn.Transaction) {}
func (e *earlyScheduler) OnCompletion(float64, *txn.Transaction) {
}

func TestSchedulerReturningUnarrivedRejected(t *testing.T) {
	set := mustSet(t, mk(0, 5, 10, 1))
	_, err := New(Config{}).Run(set, &earlyScheduler{})
	if err == nil || !strings.Contains(err.Error(), "before its arrival") {
		t.Fatalf("err = %v, want arrival violation", err)
	}
}

func TestReplayAcrossPolicies(t *testing.T) {
	// The same Set must be reusable: ResetAll inside Run restores state.
	set := mustSet(t, mk(0, 0, 5, 4), mk(1, 1, 4, 2))
	s1, err := New(Config{}).Run(set, sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{}).Run(set, sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if s1.AvgTardiness != s2.AvgTardiness || s1.Makespan != s2.Makespan {
		t.Fatalf("replay differs: %+v vs %+v", s1, s2)
	}
}

func TestMustRunPanicsOnError(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on scheduler error")
		}
	}()
	New(Config{}).MustRun(set, &livelockScheduler{})
}

func TestRunEmptySet(t *testing.T) {
	set := mustSet(t)
	sum, err := New(Config{}).Run(set, sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}
