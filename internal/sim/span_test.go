package sim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// checkSimSpans asserts, for every span of a real run, the tentpole
// invariant: segments tile [Arrival, Finish] with exact float boundary
// equality, and the attribution breakdown sums bit-exactly to the response
// time (Response is the fixed category-order fold — see obs.Attribution).
func checkSimSpans(t *testing.T, spans []*obs.Span, wantCompleted int) {
	t.Helper()
	completed := 0
	for _, sp := range spans {
		if sp.Shed {
			continue
		}
		if !sp.Completed {
			t.Fatalf("txn %d: closed span neither shed nor completed", sp.Txn)
		}
		completed++
		if len(sp.Segments) == 0 {
			t.Fatalf("txn %d: completed span has no segments", sp.Txn)
		}
		if sp.Segments[0].Start != sp.Arrival {
			t.Errorf("txn %d: first segment starts %v, arrival %v", sp.Txn, sp.Segments[0].Start, sp.Arrival)
		}
		if last := sp.Segments[len(sp.Segments)-1].End; last != sp.Finish {
			t.Errorf("txn %d: last segment ends %v, finish %v", sp.Txn, last, sp.Finish)
		}
		var attr obs.Attribution
		for i, seg := range sp.Segments {
			if i > 0 && seg.Start != sp.Segments[i-1].End {
				t.Errorf("txn %d: segment %d gap: starts %v after end %v",
					sp.Txn, i, seg.Start, sp.Segments[i-1].End)
			}
			d := seg.End - seg.Start
			switch seg.Kind {
			case obs.SegQueued:
				attr.Queued += d
			case obs.SegRunning:
				attr.Service += d
			case obs.SegPreempted:
				attr.Preempted += d
			case obs.SegStalled:
				attr.Stalled += d
			case obs.SegBackoff:
				attr.Backoff += d
			default:
				t.Fatalf("txn %d: unknown segment kind %v", sp.Txn, seg.Kind)
			}
		}
		if attr != sp.Attr {
			t.Errorf("txn %d: attribution %+v, segment refold %+v", sp.Txn, sp.Attr, attr)
		}
		if sum := sp.Attr.Sum(); sum != sp.Response {
			t.Errorf("txn %d: attribution sum %v != response %v (bit-exactness violated)",
				sp.Txn, sum, sp.Response)
		}
	}
	if wantCompleted >= 0 && completed != wantCompleted {
		t.Fatalf("completed spans %d, want %d", completed, wantCompleted)
	}
}

// TestSpansAcrossPolicies folds every policy's event stream into spans and
// checks the attribution invariant plus obs.Validate on the raw stream.
func TestSpansAcrossPolicies(t *testing.T) {
	cfg := workload.Default(0.95, 17).WithWorkflows(4, 1).WithWeights()
	cfg.N = 200
	for _, p := range []sched.Scheduler{
		sched.NewFCFS(), sched.NewEDF(), sched.NewSRPT(), sched.NewLS(),
		sched.NewHDF(), core.New(), core.NewReady(),
	} {
		set := workload.MustGenerate(cfg)
		col := &obs.Collector{}
		sb := obs.NewSpanBuilder(set, obs.SpanOptions{})
		sum, err := New(Config{Sink: obs.Tee(col, sb)}).Run(set, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := obs.Validate(col.Events()); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		spans := sb.Spans()
		if len(spans) != sum.N {
			t.Fatalf("%s: %d spans for %d transactions", p.Name(), len(spans), sum.N)
		}
		checkSimSpans(t, spans, sum.N)
	}
}

// TestSpansUnderFaults drives the full fault taxonomy (aborts, backoff
// restarts, stall and crash windows, bursts) through the span builder: the
// attribution invariant must survive every lifecycle the simulator can
// produce, and the stream must stay Validate-clean.
func TestSpansUnderFaults(t *testing.T) {
	cfg := workload.Default(0.9, 0xBEEF).WithWorkflows(4, 1).WithWeights()
	cfg.N = 200
	for _, p := range []sched.Scheduler{sched.NewEDF(), core.New()} {
		set := workload.MustGenerate(cfg)
		col := &obs.Collector{}
		sb := obs.NewSpanBuilder(set, obs.SpanOptions{})
		sum, err := New(Config{Sink: obs.Tee(col, sb), Faults: hammerPlan()}).Run(set, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := obs.Validate(col.Events()); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		spans := sb.Spans()
		checkSimSpans(t, spans, sum.N)
		var restarts, stalled int
		for _, sp := range spans {
			restarts += sp.Restarts
			if sp.Attr.Stalled > 0 {
				stalled++
			}
		}
		if sum.Restarts > 0 && restarts != sum.Restarts {
			t.Errorf("%s: span restarts %d, summary %d", p.Name(), restarts, sum.Restarts)
		}
		if stalled == 0 {
			t.Errorf("%s: no span attributes time to the stall windows", p.Name())
		}
	}
}

// TestSpanStreamDeterministic: two fixed-seed runs produce byte-identical
// span JSONL — the span analogue of TestEventStreamDeterministic.
func TestSpanStreamDeterministic(t *testing.T) {
	cfg := workload.Default(0.9, 0xBEEF).WithWorkflows(4, 1).WithWeights()
	cfg.N = 150
	run := func() string {
		set := workload.MustGenerate(cfg)
		sb := obs.NewSpanBuilder(set, obs.SpanOptions{})
		if _, err := New(Config{Sink: sb, Faults: hammerPlan()}).Run(set, core.New()); err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := obs.WriteSpans(&buf, sb.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("fixed-seed span streams are not byte-identical")
	}
}
