// Package sim implements the RTDBMS discrete-event simulator the paper's
// evaluation runs on (Section IV-A built it in C++; this is the Go
// reproduction). The model is a backend database executing transactions
// under preemptive-resume scheduling — one server in the paper's
// experiments, optionally several identical servers as an extension (a
// replicated web-database backend). The scheduler is consulted only at the
// two event types ASETS* needs — transaction arrival and transaction
// completion — and the chosen transactions run until the next such event.
//
// The entry point is one configuration type and one constructor:
//
//	summary, err := sim.New(sim.Config{Servers: 2}).Run(set, scheduler)
//
// The same Sim also drives closed-loop session workloads
// (Sim.RunClosedLoop), so every run mode shares one validated
// configuration.
//
// Optional layers extend the paper's fault-free model: a deterministic
// fault injector (Config.Faults) contributes abort/restart, backend
// stall/crash and flash-crowd events, and an admission controller
// (Config.Admit) may shed arrivals before they reach the scheduler (see
// docs/ROBUSTNESS.md). A workload whose transactions carry read/write sets
// (docs/CONTENTION.md) automatically enables commit-time validation:
// aborts become contention-driven — a transaction whose reads were
// overwritten while it ran is rewound and re-executed — replacing the
// injector's random abort draws. All layers are driven purely by simulated
// time and seeded draws, so a fixed seed replays bit-identically; with none
// configured the event loop is byte-for-byte the paper's original model.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/admit"
	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/slo"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Config configures a Sim. The zero value is a valid single-server,
// uninstrumented, fault-free run.
type Config struct {
	// Recorder, when non-nil, receives every execution slice for later
	// validation or visualization (open-loop runs only).
	Recorder *trace.Recorder
	// Servers is the number of identical backend servers (default 1, the
	// paper's model). With S servers the scheduler's S highest-priority
	// transactions run concurrently under global preemptive scheduling.
	// Closed-loop runs support a single server only.
	Servers int
	// MaxSteps bounds the number of scheduling decisions as a safety net
	// against a buggy scheduler that spins without progress. Zero selects a
	// generous default proportional to the workload size (and to the fault
	// plan's restart budget).
	MaxSteps int
	// Sink, when non-nil, receives the typed decision-event stream
	// (arrivals, dispatches, preemptions, completions, deadline misses,
	// plus policy-internal aging and mode-switch events and — with faults
	// or admission control — abort/restart/stall/shed/degrade events)
	// stamped with simulated time. Nil disables event emission entirely.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the run's counters and histograms
	// (see docs/OBSERVABILITY.md for the metric taxonomy). Concurrent runs
	// must each use a private registry and merge afterwards with
	// obs.Registry.Merge (docs/PARALLELISM.md).
	Metrics *obs.Registry
	// Faults, when non-nil, is the validated fault plan the run executes: a
	// fresh fault.Injector is built per run, so the same plan subjects
	// every policy to the identical fault schedule. The plan's flash-crowd
	// bursts mutate the set's arrival times in place (idempotently).
	// Open-loop runs only.
	Faults *fault.Plan
	// Admit, when non-nil, is consulted on every arrival; rejected
	// transactions are marked Shed, never reach the scheduler, and are
	// excluded from the summary's tardiness aggregates. Feedback
	// controllers carry state — build a fresh one per run. Open-loop runs
	// only.
	Admit admit.Controller
	// Patience is the closed-loop page-abandonment bound: a page whose
	// render latency exceeds it counts as abandoned (0 disables the
	// bound). Only RunClosedLoop consults it.
	Patience float64
	// SLO, when non-nil, evaluates the run against per-class objectives:
	// the event stream is folded through an slo.Engine whose
	// alert_fire/alert_resolve transitions are injected into Sink in
	// stream order at tumbling-window boundaries, and whose gauges
	// register in Metrics (docs/OBSERVABILITY.md, "SLOs and alerting").
	// Requires a Sink or a Metrics registry to be observable. Open-loop
	// runs only.
	SLO *slo.Config
}

// servers validates and defaults the server count. The validation runs on
// the raw configured value, before defaulting, so Servers: -1 is rejected on
// the same path for every run mode (a regression here once let negative
// counts reach the event loop only because zero happened to default first).
//
//lint:coldpath config validation runs once before the event loop
func (c Config) servers() (int, error) {
	if c.Servers < 0 {
		return 0, fmt.Errorf("sim: servers %d must be positive", c.Servers)
	}
	if c.Servers == 0 {
		return 1, nil
	}
	return c.Servers, nil
}

// Sim is a reusable simulation engine bound to one Config. It holds no
// per-run state: the same Sim may execute many workloads sequentially, and
// distinct Sims run concurrently as long as they do not share a Config's
// Recorder, Sink or Metrics (see docs/PARALLELISM.md for the isolation
// contract the parallel runner enforces).
type Sim struct {
	cfg Config

	sloState *slo.State // captured after the last Run when cfg.SLO is set
}

// New returns a Sim bound to cfg. Configuration errors (negative server
// counts, invalid fault plans) surface on the first Run, where they can be
// reported per workload.
func New(cfg Config) *Sim {
	return &Sim{cfg: cfg}
}

// SLOState returns the per-class SLO evaluation of the most recent Run, or
// nil when Config.SLO is unset (or before the first Run). The state is the
// engine's final snapshot: alert counts, burn ratios and error-budget
// remainders per class (docs/OBSERVABILITY.md, "SLOs and alerting").
func (e *Sim) SLOState() *slo.State { return e.sloState }

// completionEpsilon absorbs float64 error when a slice boundary lands
// numerically on a completion instant.
const completionEpsilon = 1e-9

// Run simulates set to completion under scheduler s and returns the
// performance summary. The transactions in set are reset first, so a
// workload can be replayed under many policies.
//
// Run enforces the check-out protocol documented on sched.Scheduler: every
// transaction obtained from Next is returned through OnPreempt or
// OnCompletion before the next Next call burst, and arrivals are delivered
// only while no transaction is checked out. An aborted transaction is the
// one exception: it stays checked out while it waits out its backoff and is
// returned through OnPreempt (with its remaining time reset) when the
// backoff expires.
//
// Run is the decision loop ROADMAP item 2 wants allocation-free; the
// hotpath marker makes asetslint enforce that transitively over everything
// Run reaches, including every scheduling policy behind the Scheduler
// interface and every Sink behind the observer.
//
//lint:hotpath
func (e *Sim) Run(set *txn.Set, s sched.Scheduler) (*metrics.Summary, error) {
	cfg := e.cfg
	n := set.Len()
	servers, err := cfg.servers()
	if err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			//lint:ignore hotpath-alloc cold error exit during pre-loop setup
			return nil, fmt.Errorf("sim: %w", err)
		}
		inj = fault.NewInjector(cfg.Faults, n)
		cfg.Faults.ApplyBursts(set)
	}
	ctrl := cfg.Admit
	if ctrl != nil {
		// Shedding cascades to dependents (a shed dependency can never
		// complete, so its dependents would deadlock the scheduler), which
		// requires dependencies to be delivered before their dependents.
		if err := admit.CheckArrivalOrder(set); err != nil {
			//lint:ignore hotpath-alloc cold error exit during pre-loop setup
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	set.ResetAll()
	// The SLO engine wraps the configured sink so it sees the event stream
	// exactly as emitted and injects alert transitions in stream order;
	// everything downstream of here (instrumentation, recorders) emits
	// through the wrapper.
	sink := cfg.Sink
	var sloSink *slo.Sink
	if cfg.SLO != nil {
		if err := cfg.SLO.Validate(); err != nil {
			//lint:ignore hotpath-alloc cold error exit during pre-loop setup
			return nil, fmt.Errorf("sim: %w", err)
		}
		sloSink = slo.NewSink(slo.NewEngine(*cfg.SLO, cfg.Metrics), set, sink)
		sink = sloSink
	}
	// The instrumentation wrapper covers every policy at the decision-loop
	// boundary; with neither a sink nor a registry it is a no-op returning
	// s itself, so uninstrumented runs pay nothing.
	s = sched.Instrument(s, sink, cfg.Metrics)
	s.Init(set)
	var rec *fault.Recorder
	if inj != nil || ctrl != nil {
		// The recorder emits through the instrumented scheduler's staged
		// event entry, so its outage/shedding events stay interleaved with
		// the decision-loop events in true emission order even though
		// delivery to the sinks is batched.
		rec = fault.NewRecorder(sched.EventSink(s, sink), cfg.Metrics)
	}
	// A workload with read/write sets switches on the contention model:
	// commit-time validation with re-execution replaces the injector's
	// random abort draws (docs/CONTENTION.md). NewValidator returns nil for
	// plain workloads, keeping them on the exact pre-contention path.
	val := contention.NewValidator(set)
	var crec *contention.Recorder
	if val != nil {
		crec = contention.NewRecorder(sched.EventSink(s, sink), cfg.Metrics)
	}

	// Arrival order: by time, ties by ID for determinism.
	order := make([]*txn.Transaction, n)
	copy(order, set.Txns)
	//lint:ignore hotpath-alloc pre-loop setup: the arrival order is sorted once per run
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Arrival != order[j].Arrival {
			return order[i].Arrival < order[j].Arrival
		}
		return order[i].ID < order[j].ID
	})

	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		// Every iteration either completes a transaction, consumes an
		// arrival, or idles toward one; 8n+64 leaves ample slack. Aborts
		// re-execute transactions and stall windows add boundary events, so
		// a fault plan scales the budget up.
		maxSteps = 8*n + 64
		if inj != nil {
			maxSteps = maxSteps*(1+cfg.Faults.MaxRestarts) + 16*len(cfg.Faults.Stalls)
		}
		if val != nil {
			// Every validation failure re-executes a transaction from
			// scratch; the structural bound is one failure per other
			// transaction's commit inside the open window (quadratic only
			// under total overlap).
			maxSteps = 2*maxSteps + 2*n*n
		}
	}

	var (
		now      float64
		nextArr  int
		done     int
		shed     int
		misses   int
		admitted int
		backlog  float64 // remaining work over admitted unfinished transactions
		busy     float64
		steps    int
		running  []*txn.Transaction
		degraded bool
		// stallSeen marks the outage windows whose entry was recorded, so
		// the stall event fires exactly once per window hit.
		stallSeen = -1
	)
	//lint:ignore hotpath-alloc closure is allocated once per run, before the event loop
	heldOut := func() int {
		if inj == nil {
			return 0
		}
		return inj.Held()
	}
	//lint:ignore hotpath-alloc closure is allocated once per run, before the event loop
	deliver := func(upTo float64) {
		for nextArr < n && order[nextArr].Arrival <= upTo {
			t := order[nextArr]
			nextArr++
			if ctrl != nil {
				// Marked by an earlier cascade: a dependency was shed, so
				// this transaction could never become ready.
				if t.Shed {
					shed++
					rec.Shed(upTo, t, "cascade")
					continue
				}
				st := admit.State{
					Now: upTo, Queued: admitted - done - heldOut(), Servers: servers,
					Backlog: backlog, Completed: done, Misses: misses,
				}
				if !ctrl.Admit(t, st) {
					admit.CascadeShed(set, t)
					shed++
					rec.Shed(upTo, t, ctrl.Name())
					continue
				}
			}
			admitted++
			backlog += t.Remaining
			s.OnArrival(upTo, t)
		}
	}
	//lint:ignore hotpath-alloc closure is allocated once per run, before the event loop
	deliverRestarts := func(upTo float64) {
		if inj == nil {
			return
		}
		for _, t := range inj.PopDueRestarts(upTo) {
			rec.Restart(upTo, t)
			s.OnPreempt(upTo, t)
		}
	}
	// enterStall records the outage window's entry event exactly once.
	//lint:ignore hotpath-alloc closure is allocated once per run, before the event loop
	enterStall := func(w fault.Window, idx int) {
		if idx != stallSeen {
			stallSeen = idx
			inj.RecordStallEntered()
			rec.StallEntered(now, w)
		}
	}

	for done+shed < n {
		steps++
		if steps > maxSteps {
			//lint:ignore hotpath-alloc cold error exit: livelock detection aborts the run
			return nil, fmt.Errorf("sim: exceeded %d scheduling steps with %d/%d transactions complete (scheduler livelock?)", maxSteps, done, n)
		}

		// Stalled backend: time passes, arrivals queue and backoffs expire,
		// but nothing is dispatched or makes progress until the window ends
		// (running is always empty here — the window's opening preempted
		// everything back to the scheduler).
		if inj != nil {
			if w, idx, ok := inj.InStall(now); ok {
				enterStall(w, idx)
				event := w.End()
				if nextArr < n && order[nextArr].Arrival < event {
					event = order[nextArr].Arrival
				}
				if r := inj.NextRestart(); r < event {
					event = r
				}
				now = event
				deliverRestarts(now)
				deliver(now)
				continue
			}
		}

		// Fill the free servers.
		for len(running) < servers {
			t := s.Next(now)
			if t == nil {
				break
			}
			if t.Finished {
				//lint:ignore hotpath-alloc cold error exit: scheduler contract violation aborts the run
				return nil, fmt.Errorf("sim: scheduler returned finished transaction %d", t.ID)
			}
			if t.Arrival > now {
				//lint:ignore hotpath-alloc cold error exit: scheduler contract violation aborts the run
				return nil, fmt.Errorf("sim: scheduler returned transaction %d before its arrival (%v > %v)", t.ID, t.Arrival, now)
			}
			for _, other := range running {
				if other == t {
					//lint:ignore hotpath-alloc cold error exit: scheduler contract violation aborts the run
					return nil, fmt.Errorf("sim: scheduler returned transaction %d to two servers", t.ID)
				}
			}
			t.Started = true
			if val != nil {
				// Open (or continue) the incarnation: the read snapshot is
				// as old as the incarnation's first dispatch.
				val.Begin(t)
			}
			running = append(running, t)
		}

		if len(running) == 0 {
			// Idle until the next arrival, restart expiry or outage window.
			next := math.Inf(1)
			if nextArr < n {
				next = order[nextArr].Arrival
			}
			if inj != nil {
				if r := inj.NextRestart(); r < next {
					next = r
				}
				if ss := inj.NextStallStart(now); ss < next {
					next = ss
				}
			}
			if math.IsInf(next, 1) {
				//lint:ignore hotpath-alloc cold error exit: deadlock detection aborts the run
				return nil, fmt.Errorf("sim: no ready transaction and no future arrivals with %d/%d complete (dependency deadlock?)", done, n)
			}
			now = next
			deliverRestarts(now)
			deliver(now)
			continue
		}

		// Next event: earliest completion among running, next arrival,
		// earliest restart expiry, or the next outage window opening.
		event := now + running[0].Remaining
		for _, t := range running[1:] {
			if f := now + t.Remaining; f < event {
				event = f
			}
		}
		if nextArr < n && order[nextArr].Arrival < event {
			event = order[nextArr].Arrival
		}
		if inj != nil {
			if r := inj.NextRestart(); r < event {
				event = r
			}
			if ss := inj.NextStallStart(now); ss < event {
				event = ss
			}
		}

		// Advance all servers to the event.
		dt := event - now
		for _, t := range running {
			if cfg.Recorder != nil && dt > 0 {
				cfg.Recorder.Record(t.ID, now, event)
			}
			t.Remaining -= dt
			busy += dt
			backlog -= dt
		}
		now = event

		// Complete finished transactions — unless the injector aborts the
		// attempt, in which case the transaction restarts from scratch
		// after its backoff; return the rest to the scheduler so the next
		// fill re-decides with fresh state.
		still := running[:0]
		for _, t := range running {
			if t.Remaining > completionEpsilon {
				still = append(still, t)
				continue
			}
			if val != nil {
				if !val.CommitCheck(t) {
					// Contention-driven abort: the read snapshot was
					// invalidated by a commit during the incarnation. Rewind
					// to full length and re-queue immediately — the next
					// dispatch opens a fresh incarnation.
					backlog += t.Length - t.Remaining
					t.Remaining = t.Length
					crec.ValidateFail(now, t)
					s.OnPreempt(now, t)
					continue
				}
			} else if inj != nil && inj.AbortsAttempt(t) {
				backlog += t.Length - t.Remaining
				t.Remaining = t.Length
				retryAt := inj.RecordAbort(now, t)
				rec.Abort(now, t, "abort", retryAt)
				continue
			}
			backlog -= t.Remaining
			t.Remaining = 0
			t.Finished = true
			t.FinishTime = now
			done++
			s.OnCompletion(now, t)
			if tardy := t.Tardiness() > 0; true {
				if tardy {
					misses++
				}
				if ctrl != nil {
					ctrl.Complete(t, tardy)
					if d := ctrl.Degraded(); d != degraded {
						degraded = d
						rec.Degrade(now, d)
					}
				}
			}
		}

		// An outage window opening at this instant preempts the survivors;
		// a crash window additionally destroys their in-flight work.
		if inj != nil {
			if w, idx, ok := inj.InStall(now); ok {
				enterStall(w, idx)
				if w.Kind == fault.Crash {
					for _, t := range still {
						backlog += t.Length - t.Remaining
						t.Remaining = t.Length
						if val != nil {
							// The in-flight incarnation died with its
							// snapshot; committed versions survive.
							val.Reset(t)
						}
						inj.RecordCrashLoss(t)
						rec.Abort(now, t, "crash", now)
					}
				}
			}
		}
		for _, t := range still {
			s.OnPreempt(now, t)
		}
		running = running[:0]
		deliverRestarts(now)
		deliver(now)
	}

	// Drain batched instrumentation buffers before any reader can snapshot
	// the registry — callers observe the post-run state, never a partial
	// batch.
	if fl, ok := s.(sched.ObsFlusher); ok {
		fl.FlushObs()
	}
	if sloSink != nil {
		// Final gauge publication; the open partial window is never
		// evaluated (the slo package's determinism contract).
		sloSink.Engine().Finish()
		st := sloSink.Engine().State()
		e.sloState = &st
	}
	summary, err := metrics.Compute(set, busy)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		summary.Aborts = inj.Aborts()
		summary.Restarts = inj.Restarts()
		summary.Stalls = inj.StallsEntered()
	}
	if val != nil {
		summary.ValidateFails = val.Fails()
	}
	// The run is over and nothing retains the instrumentation wrapper (the
	// caller owns the sink and the registry, not the wrapper), so recycle it
	// for the next run. Error paths above skip this and simply let the
	// wrapper be collected.
	sched.ReleaseObs(s)
	return summary, nil
}

// MustRun is Run but panics on error; for examples and benchmarks where a
// failure indicates a bug rather than a recoverable condition.
func (e *Sim) MustRun(set *txn.Set, s sched.Scheduler) *metrics.Summary {
	summary, err := e.Run(set, s)
	if err != nil {
		panic(err)
	}
	return summary
}
