// Package sim implements the RTDBMS discrete-event simulator the paper's
// evaluation runs on (Section IV-A built it in C++; this is the Go
// reproduction). The model is a backend database executing transactions
// under preemptive-resume scheduling — one server in the paper's
// experiments, optionally several identical servers as an extension (a
// replicated web-database backend). The scheduler is consulted only at the
// two event types ASETS* needs — transaction arrival and transaction
// completion — and the chosen transactions run until the next such event.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Options configures one simulation run.
type Options struct {
	// Recorder, when non-nil, receives every execution slice for later
	// validation or visualization.
	Recorder *trace.Recorder
	// Servers is the number of identical backend servers (default 1, the
	// paper's model). With S servers the scheduler's S highest-priority
	// transactions run concurrently under global preemptive scheduling.
	Servers int
	// MaxSteps bounds the number of scheduling decisions as a safety net
	// against a buggy scheduler that spins without progress. Zero selects a
	// generous default proportional to the workload size.
	MaxSteps int
	// Sink, when non-nil, receives the typed decision-event stream
	// (arrivals, dispatches, preemptions, completions, deadline misses,
	// plus policy-internal aging and mode-switch events) stamped with
	// simulated time. Nil disables event emission entirely.
	Sink obs.Sink
	// Metrics, when non-nil, accumulates the run's counters and histograms
	// (see docs/OBSERVABILITY.md for the metric taxonomy).
	Metrics *obs.Registry
}

// completionEpsilon absorbs float64 error when a slice boundary lands
// numerically on a completion instant.
const completionEpsilon = 1e-9

// Run simulates set to completion under scheduler s and returns the
// performance summary. The transactions in set are reset first, so a
// workload can be replayed under many policies.
//
// Run enforces the check-out protocol documented on sched.Scheduler: every
// transaction obtained from Next is returned through OnPreempt or
// OnCompletion before the next Next call burst, and arrivals are delivered
// only while no transaction is checked out.
func Run(set *txn.Set, s sched.Scheduler, opts Options) (*metrics.Summary, error) {
	n := set.Len()
	servers := opts.Servers
	if servers == 0 {
		servers = 1
	}
	if servers < 1 {
		return nil, fmt.Errorf("sim: servers %d must be positive", opts.Servers)
	}
	set.ResetAll()
	// The instrumentation wrapper covers every policy at the decision-loop
	// boundary; with neither a sink nor a registry it is a no-op returning
	// s itself, so uninstrumented runs pay nothing.
	s = sched.Instrument(s, opts.Sink, opts.Metrics)
	s.Init(set)

	// Arrival order: by time, ties by ID for determinism.
	order := make([]*txn.Transaction, n)
	copy(order, set.Txns)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Arrival != order[j].Arrival {
			return order[i].Arrival < order[j].Arrival
		}
		return order[i].ID < order[j].ID
	})

	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		// Every iteration either completes a transaction, consumes an
		// arrival, or idles toward one; 8n+64 leaves ample slack.
		maxSteps = 8*n + 64
	}

	var (
		now     float64
		nextArr int
		done    int
		busy    float64
		steps   int
		running []*txn.Transaction
	)
	deliver := func(upTo float64) {
		for nextArr < n && order[nextArr].Arrival <= upTo {
			s.OnArrival(upTo, order[nextArr])
			nextArr++
		}
	}

	for done < n {
		steps++
		if steps > maxSteps {
			return nil, fmt.Errorf("sim: exceeded %d scheduling steps with %d/%d transactions complete (scheduler livelock?)", maxSteps, done, n)
		}

		// Fill the free servers.
		for len(running) < servers {
			t := s.Next(now)
			if t == nil {
				break
			}
			if t.Finished {
				return nil, fmt.Errorf("sim: scheduler returned finished transaction %d", t.ID)
			}
			if t.Arrival > now {
				return nil, fmt.Errorf("sim: scheduler returned transaction %d before its arrival (%v > %v)", t.ID, t.Arrival, now)
			}
			for _, other := range running {
				if other == t {
					return nil, fmt.Errorf("sim: scheduler returned transaction %d to two servers", t.ID)
				}
			}
			t.Started = true
			running = append(running, t)
		}

		if len(running) == 0 {
			if nextArr >= n {
				return nil, fmt.Errorf("sim: no ready transaction and no future arrivals with %d/%d complete (dependency deadlock?)", done, n)
			}
			// Idle until the next arrival.
			now = order[nextArr].Arrival
			deliver(now)
			continue
		}

		// Next event: earliest completion among running, or next arrival.
		event := now + running[0].Remaining
		for _, t := range running[1:] {
			if f := now + t.Remaining; f < event {
				event = f
			}
		}
		if nextArr < n && order[nextArr].Arrival < event {
			event = order[nextArr].Arrival
		}

		// Advance all servers to the event.
		dt := event - now
		for _, t := range running {
			if opts.Recorder != nil && dt > 0 {
				opts.Recorder.Record(t.ID, now, event)
			}
			t.Remaining -= dt
			busy += dt
		}
		now = event

		// Complete finished transactions; return the rest to the scheduler
		// so the next fill re-decides with fresh state.
		still := running[:0]
		for _, t := range running {
			if t.Remaining <= completionEpsilon {
				t.Remaining = 0
				t.Finished = true
				t.FinishTime = now
				done++
				s.OnCompletion(now, t)
			} else {
				still = append(still, t)
			}
		}
		for _, t := range still {
			s.OnPreempt(now, t)
		}
		running = running[:0]
		deliver(now)
	}

	return metrics.Compute(set, busy)
}

// MustRun is Run but panics on error; for examples and benchmarks where a
// failure indicates a bug rather than a recoverable condition.
func MustRun(set *txn.Set, s sched.Scheduler, opts Options) *metrics.Summary {
	summary, err := Run(set, s, opts)
	if err != nil {
		panic(err)
	}
	return summary
}
