package sim

import (
	"bytes"
	"testing"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// hammerPlan exercises every fault mechanism at once.
func hammerPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 0xFA117, AbortProb: 0.25, MaxRestarts: 3,
		BackoffBase: 0.5, BackoffCap: 4,
		Stalls: []fault.Window{
			{Start: 8, Duration: 3},
			{Start: 40, Duration: 2, Kind: fault.Crash},
		},
		Bursts: []fault.Burst{{At: 20, Width: 8}},
	}
}

func goldenPolicies() []sched.Scheduler {
	return []sched.Scheduler{
		sched.NewFCFS(), sched.NewEDF(), sched.NewSRPT(), sched.NewLS(),
		sched.NewHDF(), core.New(), core.NewReady(),
	}
}

// TestZeroPlanBitIdentical is the satellite acceptance criterion: a fault
// plan with zero fault rates (and an always-admit controller) must reproduce
// the exact golden schedules of the plain simulator — the fault layer is
// bit-for-bit invisible when it injects nothing.
func TestZeroPlanBitIdentical(t *testing.T) {
	cfg := workload.Default(0.85, 0xA5E75).WithWorkflows(4, 1).WithWeights()
	cfg.N = 200
	for _, p := range goldenPolicies() {
		set := workload.MustGenerate(cfg)
		rec := &trace.Recorder{}
		zero := &fault.Plan{Seed: 99} // non-nil, injects nothing
		if !zero.Zero() {
			t.Fatal("test plan is not zero")
		}
		if _, err := New(Config{Recorder: rec, Faults: zero, Admit: admit.Unconditional{}}).Run(set, p); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if got, want := scheduleDigest(rec), goldenDigests[p.Name()]; got != want {
			t.Errorf("%s: zero-plan digest %#x != golden %#x — the fault layer leaks into fault-free runs", p.Name(), got, want)
		}
	}
}

// faultStream runs one faulty, shedding simulation and returns the
// serialized decision-event stream plus the run summary.
func faultStream(t *testing.T, s sched.Scheduler) ([]byte, *metricsSummary) {
	t.Helper()
	cfg := workload.Default(1.3, 0xBEEF).WithWorkflows(4, 1).WithWeights()
	cfg.N = 150
	set := workload.MustGenerate(cfg)
	var buf bytes.Buffer
	sum, err := New(Config{
		Sink:   obs.NewJSONLWriter(&buf),
		Faults: hammerPlan(),
		Admit:  admit.QueueCap{Max: 12},
	}).Run(set, s)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), &metricsSummary{sum.N, sum.Shed, sum.Aborts, sum.Restarts, sum.Stalls, sum.AvgWeightedTardiness}
}

type metricsSummary struct {
	n, shed, aborts, restarts, stalls int
	awt                               float64
}

// TestFaultRunsByteIdentical is the tentpole determinism criterion: two runs
// with the same seed, plan and controller produce byte-identical event
// streams and identical summaries.
func TestFaultRunsByteIdentical(t *testing.T) {
	b1, s1 := faultStream(t, core.New())
	b2, s2 := faultStream(t, core.New())
	if !bytes.Equal(b1, b2) {
		t.Fatal("same-seed fault runs produced different event streams")
	}
	if *s1 != *s2 {
		t.Fatalf("same-seed fault runs produced different summaries: %+v vs %+v", s1, s2)
	}
	if s1.aborts == 0 || s1.restarts == 0 || s1.stalls == 0 || s1.shed == 0 {
		t.Fatalf("hammer plan injected nothing: %+v", s1)
	}
}

// TestFaultScheduleIdenticalAcrossPolicies pins the order-independent keying
// design: whether transaction i aborts on its k-th attempt is a pure
// function of (seed, i, k), so every policy experiences the same abort
// counts — the fault schedule never depends on execution order.
func TestFaultScheduleIdenticalAcrossPolicies(t *testing.T) {
	cfg := workload.Default(1.1, 0xC0DE).WithWeights()
	cfg.N = 120
	plan := &fault.Plan{Seed: 5, AbortProb: 0.3, MaxRestarts: 2, BackoffBase: 0.25}
	var wantAborts, wantRestarts = -1, -1
	for _, p := range goldenPolicies() {
		set := workload.MustGenerate(cfg)
		sum, err := New(Config{Faults: plan}).Run(set, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if wantAborts < 0 {
			wantAborts, wantRestarts = sum.Aborts, sum.Restarts
			if wantAborts == 0 {
				t.Fatal("plan injected no aborts")
			}
			continue
		}
		if sum.Aborts != wantAborts || sum.Restarts != wantRestarts {
			t.Errorf("%s: aborts/restarts %d/%d differ from first policy's %d/%d — fault schedule depends on policy",
				p.Name(), sum.Aborts, sum.Restarts, wantAborts, wantRestarts)
		}
	}
}

// TestSheddingImprovesOverload is the overload acceptance criterion: past
// saturation (util > 1), feasibility shedding must strictly lower the
// admitted-transaction weighted tardiness versus admitting everything.
func TestSheddingImprovesOverload(t *testing.T) {
	cfg := workload.Default(1.5, 0xD00D).WithWeights()
	cfg.N = 200
	open, err := New(Config{}).Run(workload.MustGenerate(cfg), core.New())
	if err != nil {
		t.Fatal(err)
	}
	gated, err := New(Config{Admit: admit.Feasibility{}}).Run(workload.MustGenerate(cfg), core.New())
	if err != nil {
		t.Fatal(err)
	}
	if gated.Shed == 0 {
		t.Fatal("feasibility gate shed nothing at util 1.5")
	}
	if gated.N+gated.Shed != open.N {
		t.Fatalf("accounting: admitted %d + shed %d != %d", gated.N, gated.Shed, open.N)
	}
	if gated.AvgWeightedTardiness >= open.AvgWeightedTardiness {
		t.Fatalf("shedding did not improve admitted weighted tardiness: gated %v >= open %v",
			gated.AvgWeightedTardiness, open.AvgWeightedTardiness)
	}
}

// singleTxnSet builds a one-transaction workload with exact arithmetic so
// stall/crash semantics can be asserted to the unit, not statistically.
func singleTxnSet(t *testing.T) *txn.Set {
	t.Helper()
	set, err := txn.NewSet([]*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 20, Length: 10, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestStallExtendsMakespan pins the exact outage semantics on a hand-built
// scenario: one transaction (arrival 0, length 10) hit by the window [4, 6).
// A stall pauses it with progress preserved — finish 12, busy time still 10.
// A crash in the same window destroys the 4 units of progress — the rerun
// makes busy time 14 and the finish 16, with exactly one abort and no
// backoff restart (crash loss re-queues immediately).
func TestStallExtendsMakespan(t *testing.T) {
	base, err := New(Config{}).Run(singleTxnSet(t), sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != 10 || base.BusyTime != 10 {
		t.Fatalf("fault-free baseline: makespan %v busy %v, want 10/10", base.Makespan, base.BusyTime)
	}

	stalled, err := New(Config{
		Faults: &fault.Plan{Stalls: []fault.Window{{Start: 4, Duration: 2}}},
	}).Run(singleTxnSet(t), sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if stalled.Stalls != 1 {
		t.Fatalf("stall window not entered: %+v", stalled)
	}
	if stalled.Makespan != 12 {
		t.Fatalf("stall makespan %v, want 12 (10 of work + 2 of outage)", stalled.Makespan)
	}
	if stalled.BusyTime != 10 {
		t.Fatalf("a pure stall must preserve progress: busy %v, want 10", stalled.BusyTime)
	}

	crashed, err := New(Config{
		Faults: &fault.Plan{Stalls: []fault.Window{{Start: 4, Duration: 2, Kind: fault.Crash}}},
	}).Run(singleTxnSet(t), sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Aborts != 1 || crashed.Restarts != 0 {
		t.Fatalf("crash should count one abort and no backoff restart: %+v", crashed)
	}
	if crashed.BusyTime != 14 {
		t.Fatalf("crash busy time %v, want 14 (4 lost + 10 rerun)", crashed.BusyTime)
	}
	if crashed.Makespan != 16 {
		t.Fatalf("crash makespan %v, want 16 (resume at 6 + full rerun)", crashed.Makespan)
	}
}

// TestBurstCompressesArrivals: a flash crowd moves every arrival inside the
// window to its start. The arrivals must actually move, and — everything
// arriving no later than before under a work-conserving policy — the last
// completion cannot move later.
func TestBurstCompressesArrivals(t *testing.T) {
	cfg := workload.Default(0.8, 0x1234)
	cfg.N = 100
	base, err := New(Config{}).Run(workload.MustGenerate(cfg), sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	set := workload.MustGenerate(cfg)
	burst, err := New(Config{
		Faults: &fault.Plan{Bursts: []fault.Burst{{At: 0, Width: base.Makespan}}},
	}).Run(set, sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, tx := range set.Txns {
		if tx.Arrival == 0 {
			moved++
		}
	}
	if moved != cfg.N {
		t.Fatalf("burst spanning the whole run moved only %d/%d arrivals to t=0", moved, cfg.N)
	}
	if burst.Makespan > base.Makespan {
		t.Fatalf("earlier arrivals cannot finish later under work-conserving EDF: %v > %v", burst.Makespan, base.Makespan)
	}
}

// TestInvalidPlanRejected: sim.Run surfaces plan validation errors instead
// of running a half-configured injector.
func TestInvalidPlanRejected(t *testing.T) {
	cfg := workload.Default(0.5, 1)
	cfg.N = 10
	_, err := New(Config{
		Faults: &fault.Plan{AbortProb: 2},
	}).Run(workload.MustGenerate(cfg), sched.NewFCFS())
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
}

// TestCrashDestroysOnlyInProgressWork pins the single-backend crash
// semantics the cluster tier's instance-wide loss deliberately extends: a
// crash window destroys the in-flight transaction's progress but leaves
// queued work untouched, *including* partial progress a preempted
// transaction accumulated earlier.
//
// Scenario (one server, SRPT): T0 (arrival 0, length 10) runs [0,1) and is
// preempted by T1 (arrival 1, length 4), which runs [1,4)+. The crash window
// [4,6) catches T1 in flight — it alone loses its 3 units of progress —
// while T0 sits queued with its 1 unit preserved. After the window: T1
// reruns [6,10), T0 resumes [10,19). If the crash also wiped queued work,
// T0 would finish at 20 instead.
func TestCrashDestroysOnlyInProgressWork(t *testing.T) {
	set, err := txn.NewSet([]*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 50, Length: 10, Weight: 1},
		{ID: 1, Arrival: 1, Deadline: 50, Length: 4, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	sum, err := New(Config{
		Faults: &fault.Plan{Stalls: []fault.Window{{Start: 4, Duration: 2, Kind: fault.Crash}}},
		Sink:   col,
	}).Run(set, sched.NewSRPT())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Aborts != 1 || sum.Restarts != 0 {
		t.Fatalf("exactly the in-flight transaction aborts: aborts=%d restarts=%d", sum.Aborts, sum.Restarts)
	}
	if f := set.Txns[1].FinishTime; f != 10 {
		t.Fatalf("crashed T1 finish %v, want 10 (full rerun after the window)", f)
	}
	if f := set.Txns[0].FinishTime; f != 19 {
		t.Fatalf("queued T0 finish %v, want 19 (1 unit of pre-crash progress preserved)", f)
	}
	if sum.BusyTime != 17 {
		t.Fatalf("busy time %v, want 17 (14 of work + 3 lost to the crash)", sum.BusyTime)
	}
	// The event stream agrees: one crash abort, for T1 only.
	var aborts []obs.Event
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindAbort {
			aborts = append(aborts, ev)
		}
	}
	if len(aborts) != 1 || aborts[0].Txn != 1 || aborts[0].Detail != "crash" || aborts[0].Time != 4 {
		t.Fatalf("abort events = %+v, want one crash abort of txn 1 at t=4", aborts)
	}
}
