package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/workload"
)

// tinySessions builds one user with two single-transaction pages.
func tinySessions(t *testing.T) (*txn.Set, []txn.Session) {
	t.Helper()
	a := &txn.Transaction{ID: 0, Arrival: 0, Deadline: 10, Length: 4, Weight: 1}
	b := &txn.Transaction{ID: 1, Arrival: 0, Deadline: 6, Length: 2, Weight: 1}
	set, err := txn.NewSet([]*txn.Transaction{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sessions := []txn.Session{{
		Pages:      [][]txn.ID{{0}, {1}},
		ThinkTimes: []float64{1, 3},
	}}
	return set, sessions
}

func TestClosedLoopTiming(t *testing.T) {
	set, sessions := tinySessions(t)
	res, err := New(Config{Patience: 0}).RunClosedLoop(set, sessions, sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 requested at t=1, runs 1-5 (latency 4); think 3 -> page 1 at
	// t=8, runs 8-10 (latency 2).
	if got := res.PageLatencies[0][0]; got != 4 {
		t.Fatalf("page 0 latency %v, want 4", got)
	}
	if got := res.PageLatencies[0][1]; got != 2 {
		t.Fatalf("page 1 latency %v, want 2", got)
	}
	if res.Summary.AvgTardiness != 0 {
		t.Fatalf("tardiness %v, want 0 (deadlines 10 and 6 relative)", res.Summary.AvgTardiness)
	}
	if res.AbandonRate != 0 {
		t.Fatalf("abandon rate %v", res.AbandonRate)
	}
}

func TestClosedLoopRelativeDeadlines(t *testing.T) {
	// Page 1's relative deadline of 1 < its length 2: always tardy by 1.
	a := &txn.Transaction{ID: 0, Arrival: 0, Deadline: 10, Length: 4, Weight: 1}
	b := &txn.Transaction{ID: 1, Arrival: 0, Deadline: 1, Length: 2, Weight: 1}
	set, err := txn.NewSet([]*txn.Transaction{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sessions := []txn.Session{{Pages: [][]txn.ID{{0}, {1}}, ThinkTimes: []float64{0, 0}}}
	res, err := New(Config{Patience: 0}).RunClosedLoop(set, sessions, sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	// b requested at 4 (page 0 done) + think 0, finishes at 6, absolute
	// deadline 4+1=5 => tardy 1.
	if got := res.Summary.AvgTardiness; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("avg tardiness %v, want 0.5 (one of two tardy by 1)", got)
	}
	// The deferred restore puts the relative deadline back.
	if set.ByID(1).Deadline != 1 || set.ByID(1).Arrival != 0 {
		t.Fatalf("relative fields not restored: %+v", set.ByID(1))
	}
}

func TestClosedLoopAbandonment(t *testing.T) {
	set, sessions := tinySessions(t)
	res, err := New(Config{Patience: 3}).RunClosedLoop(set, sessions, sched.NewFCFS()) // patience 3
	if err != nil {
		t.Fatal(err)
	}
	// Latencies 4 and 2: one of two pages abandoned.
	if res.AbandonRate != 0.5 {
		t.Fatalf("abandon rate %v, want 0.5", res.AbandonRate)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	set, sessions := tinySessions(t)
	bad := []txn.Session{{Pages: [][]txn.ID{{0}}, ThinkTimes: []float64{1}}} // misses txn 1
	if _, err := New(Config{Patience: 0}).RunClosedLoop(set, bad, sched.NewFCFS()); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Fatalf("err = %v", err)
	}
	dup := []txn.Session{{Pages: [][]txn.ID{{0}, {0, 1}}, ThinkTimes: []float64{1, 1}}}
	if _, err := New(Config{Patience: 0}).RunClosedLoop(set, dup, sched.NewFCFS()); err == nil || !strings.Contains(err.Error(), "two pages") {
		t.Fatalf("err = %v", err)
	}
	short := []txn.Session{{Pages: [][]txn.ID{{0}, {1}}, ThinkTimes: []float64{1}}}
	if _, err := New(Config{Patience: 0}).RunClosedLoop(set, short, sched.NewFCFS()); err == nil || !strings.Contains(err.Error(), "think times") {
		t.Fatalf("err = %v", err)
	}
	_ = sessions
}

func TestClosedLoopGeneratedWorkload(t *testing.T) {
	cfg := workload.DefaultSessions(8, 0.9, 5)
	set, sessions, err := workload.GenerateSessions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []sched.Scheduler{sched.NewEDF(), sched.NewSRPT(), core.New()} {
		res, err := New(Config{Patience: 0}).RunClosedLoop(set, sessions, policy)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if res.Summary.N != set.Len() {
			t.Fatalf("%s: %d of %d complete", policy.Name(), res.Summary.N, set.Len())
		}
		// Every page latency is at least its total service demand.
		for si, sess := range sessions {
			for pi, page := range sess.Pages {
				var work float64
				for _, id := range page {
					work += set.ByID(id).Length
				}
				if res.PageLatencies[si][pi] < work-1e-6 {
					t.Fatalf("%s: session %d page %d latency %v below work %v",
						policy.Name(), si, pi, res.PageLatencies[si][pi], work)
				}
			}
		}
	}
}

func TestClosedLoopReplayDeterministic(t *testing.T) {
	cfg := workload.DefaultSessions(5, 0.8, 9)
	set, sessions, err := workload.GenerateSessions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		res, err := New(Config{Patience: 0}).RunClosedLoop(set, sessions, core.New())
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.AvgTardiness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("closed-loop replay diverged: %v vs %v", a, b)
	}
}

func TestClosedLoopMoreUsersMoreLoad(t *testing.T) {
	tard := func(users int) float64 {
		cfg := workload.DefaultSessions(users, 0.9, 11)
		cfg.MeanThink = 50 // fixed think: load scales with users
		set, sessions, err := workload.GenerateSessions(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(Config{Patience: 0}).RunClosedLoop(set, sessions, core.New())
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.AvgTardiness
	}
	if few, many := tard(3), tard(30); many <= few {
		t.Fatalf("30 users (%v) should be tardier than 3 (%v)", many, few)
	}
}
