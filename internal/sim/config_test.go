package sim

import (
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestServersValidatedBeforeDefaulting is the regression test for the bug
// where Run validated cfg.Servers only after the zero value had been
// defaulted to one, so a negative count silently ran on a single server.
func TestServersValidatedBeforeDefaulting(t *testing.T) {
	cfg := workload.Default(0.5, 1)
	cfg.N = 10

	for _, servers := range []int{-1, -3} {
		if _, err := New(Config{Servers: servers}).Run(workload.MustGenerate(cfg), sched.NewFCFS()); err == nil {
			t.Fatalf("Servers: %d accepted; want validation error", servers)
		}
	}

	// The zero value still means one server.
	one, err := New(Config{Servers: 1}).Run(workload.MustGenerate(cfg), sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	zero, err := New(Config{}).Run(workload.MustGenerate(cfg), sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, zero) {
		t.Fatalf("Servers: 0 should default to one server:\nzero %+v\none  %+v", zero, one)
	}
}
