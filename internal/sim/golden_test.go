package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scheduleDigest hashes a schedule's exact slice sequence. Any change to a
// policy's decisions, the simulator's event ordering, or the workload
// generator's stream consumption changes the digest.
func scheduleDigest(rec *trace.Recorder) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, s := range rec.Slices {
		binary.LittleEndian.PutUint64(buf[:], uint64(s.ID))
		h.Write(buf[:])
		put(s.Start)
		put(s.End)
	}
	return h.Sum64()
}

// goldenDigests pins the exact schedules of a fixed workload under each
// policy. These values are a regression tripwire, not a specification: when
// a deliberate behaviour change lands (e.g. a tie-break fix), rerun with
// -run TestGoldenSchedules -v and update the constants alongside a note in
// the commit explaining why the schedule legitimately moved.
var goldenDigests = map[string]uint64{
	"FCFS":   0x0273ffc0cb1ed5fd,
	"EDF":    0x4db3ab99c3314aa5,
	"SRPT":   0xcf2710d87c6b811d,
	"LS":     0x31ff1aa4a1ad64ce,
	"HDF":    0x4633300c79289b61,
	"ASETS*": 0x151ed3fde4232f1a,
	"Ready":  0x17569cb8c5432287,
}

func TestGoldenSchedules(t *testing.T) {
	cfg := workload.Default(0.85, 0xA5E75).WithWorkflows(4, 1).WithWeights()
	cfg.N = 200
	policies := []sched.Scheduler{
		sched.NewFCFS(),
		sched.NewEDF(),
		sched.NewSRPT(),
		sched.NewLS(),
		sched.NewHDF(),
		core.New(),
		core.NewReady(),
	}
	for _, p := range policies {
		set := workload.MustGenerate(cfg)
		rec := &trace.Recorder{}
		if _, err := New(Config{Recorder: rec}).Run(set, p); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got := scheduleDigest(rec)
		want, ok := goldenDigests[p.Name()]
		if !ok {
			t.Fatalf("%s: no golden digest registered (got %#x)", p.Name(), got)
		}
		if got != want {
			t.Errorf("%s: schedule digest %#x, golden %#x — policy behaviour changed", p.Name(), got, want)
		}
	}
}

// TestDigestSensitivity guards the digest itself: permuting two slices or
// nudging a boundary must change the hash.
func TestDigestSensitivity(t *testing.T) {
	base := &trace.Recorder{Slices: []trace.Slice{{ID: 0, Start: 0, End: 1}, {ID: 1, Start: 1, End: 3}}}
	swapped := &trace.Recorder{Slices: []trace.Slice{{ID: 1, Start: 1, End: 3}, {ID: 0, Start: 0, End: 1}}}
	nudged := &trace.Recorder{Slices: []trace.Slice{{ID: 0, Start: 0, End: 1.0000001}, {ID: 1, Start: 1, End: 3}}}
	d := scheduleDigest(base)
	if d == scheduleDigest(swapped) {
		t.Fatal("digest insensitive to slice order")
	}
	if d == scheduleDigest(nudged) {
		t.Fatal("digest insensitive to boundary change")
	}
}
