package sim

import (
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestDeprecatedWrappersMatchConfigAPI pins the compatibility contract of the
// deprecated package-level entry points: Run, MustRun and RunClosedLoop must
// produce results identical to the sim.New(Config).Run path they delegate to,
// so callers can migrate in either direction without behavior drift.
func TestDeprecatedWrappersMatchConfigAPI(t *testing.T) {
	cfg := workload.Default(0.9, 7)
	cfg.N = 200

	oldSum, err := Run(workload.MustGenerate(cfg), sched.NewEDF(), Options{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	newSum, err := New(Config{Servers: 2}).Run(workload.MustGenerate(cfg), sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldSum, newSum) {
		t.Fatalf("deprecated Run diverged from New(Config).Run:\nold %+v\nnew %+v", oldSum, newSum)
	}

	mustSum := MustRun(workload.MustGenerate(cfg), sched.NewEDF(), Options{Servers: 2})
	if !reflect.DeepEqual(mustSum, newSum) {
		t.Fatalf("deprecated MustRun diverged from New(Config).Run:\nold %+v\nnew %+v", mustSum, newSum)
	}
}

func TestDeprecatedRunClosedLoopMatchesConfigAPI(t *testing.T) {
	gen := func() (*ClosedLoopResult, *ClosedLoopResult) {
		scfg := workload.DefaultSessions(8, 0.8, 11)
		set1, sessions1, err := workload.GenerateSessions(scfg)
		if err != nil {
			t.Fatal(err)
		}
		set2, sessions2, err := workload.GenerateSessions(scfg)
		if err != nil {
			t.Fatal(err)
		}
		const patience = 25
		oldRes, err := RunClosedLoop(set1, sessions1, sched.NewSRPT(), patience)
		if err != nil {
			t.Fatal(err)
		}
		newRes, err := New(Config{Patience: patience}).RunClosedLoop(set2, sessions2, sched.NewSRPT())
		if err != nil {
			t.Fatal(err)
		}
		return oldRes, newRes
	}
	oldRes, newRes := gen()
	if !reflect.DeepEqual(oldRes, newRes) {
		t.Fatalf("deprecated RunClosedLoop diverged from New(Config).RunClosedLoop:\nold %+v\nnew %+v", oldRes, newRes)
	}
}

// TestServersValidatedBeforeDefaulting is the regression test for the bug
// where Run validated opts.Servers only after the zero value had been
// defaulted to one, so a negative count silently ran on a single server.
func TestServersValidatedBeforeDefaulting(t *testing.T) {
	cfg := workload.Default(0.5, 1)
	cfg.N = 10

	if _, err := New(Config{Servers: -1}).Run(workload.MustGenerate(cfg), sched.NewFCFS()); err == nil {
		t.Fatal("Servers: -1 accepted; want validation error")
	}
	if _, err := Run(workload.MustGenerate(cfg), sched.NewFCFS(), Options{Servers: -3}); err == nil {
		t.Fatal("deprecated Run accepted Servers: -3; want validation error")
	}

	// The zero value still means one server.
	one, err := New(Config{Servers: 1}).Run(workload.MustGenerate(cfg), sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	zero, err := New(Config{}).Run(workload.MustGenerate(cfg), sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, zero) {
		t.Fatalf("Servers: 0 should default to one server:\nzero %+v\none  %+v", zero, one)
	}
}
