package sim

import (
	"bytes"
	"hash/fnv"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// goldenSpanDigest pins the byte-exact span JSONL of the fig-14-style golden
// workload (same seed and shape as TestGoldenSchedules) under ASETS* with
// the full fault taxonomy active. Like goldenDigests, this is a regression
// tripwire: a deliberate change to the span encoding, segment folding or
// event ordering must update the constant with an explanation.
const goldenSpanDigest uint64 = 0x32566971b0987866

func spanJSONL(t *testing.T) []byte {
	t.Helper()
	cfg := workload.Default(0.85, 0xA5E75).WithWorkflows(4, 1).WithWeights()
	cfg.N = 200
	set := workload.MustGenerate(cfg)
	sb := obs.NewSpanBuilder(set, obs.SpanOptions{})
	if _, err := New(Config{Sink: sb, Faults: hammerPlan()}).Run(set, core.New()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteSpans(&buf, sb.Spans()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenSpanJSONL is the tentpole's byte-stability acceptance test: the
// serialized span stream of the seeded golden run hashes to a pinned value,
// and every completed span satisfies the bit-exact attribution invariant.
func TestGoldenSpanJSONL(t *testing.T) {
	out := spanJSONL(t)
	if len(out) == 0 {
		t.Fatal("no spans serialized")
	}
	h := fnv.New64a()
	h.Write(out)
	if got := h.Sum64(); got != goldenSpanDigest {
		t.Errorf("span JSONL digest %#x, golden %#x — span encoding or folding changed", got, goldenSpanDigest)
	}
	if again := spanJSONL(t); !bytes.Equal(out, again) {
		t.Fatal("span JSONL not byte-stable across runs")
	}
}
