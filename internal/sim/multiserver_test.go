package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTwoServersRunConcurrently(t *testing.T) {
	// Two equal transactions at t=0 on two servers finish together at 5.
	set := mustSet(t, mk(0, 0, 100, 5), mk(1, 0, 100, 5))
	rec := &trace.Recorder{}
	sum, err := New(Config{Servers: 2, Recorder: rec}).Run(set, sched.NewSRPT())
	if err != nil {
		t.Fatal(err)
	}
	if set.ByID(0).FinishTime != 5 || set.ByID(1).FinishTime != 5 {
		t.Fatalf("finishes %v %v, want both 5", set.ByID(0).FinishTime, set.ByID(1).FinishTime)
	}
	if sum.Makespan != 5 || math.Abs(sum.BusyTime-10) > 1e-9 {
		t.Fatalf("makespan %v busy %v", sum.Makespan, sum.BusyTime)
	}
	if err := rec.ValidateN(set, 2); err != nil {
		t.Fatal(err)
	}
	// The same trace must fail single-server validation (true overlap).
	if err := rec.Validate(set); err == nil {
		t.Fatal("overlapping two-server trace passed single-server validation")
	}
}

func TestServersDefaultAndInvalid(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 1))
	if _, err := New(Config{Servers: -1}).Run(set, sched.NewFCFS()); err == nil {
		t.Fatal("negative servers accepted")
	}
	if _, err := New(Config{}).Run(set, sched.NewFCFS()); err != nil {
		t.Fatal(err)
	}
}

func TestMoreServersThanWork(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 2), mk(1, 0, 10, 3))
	sum, err := New(Config{Servers: 8}).Run(set, sched.NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Makespan != 3 {
		t.Fatalf("makespan %v, want 3 (fully parallel)", sum.Makespan)
	}
}

func TestMultiServerPrecedence(t *testing.T) {
	// A chain cannot parallelize: T1 waits for T0 even with free servers.
	set := mustSet(t, mk(0, 0, 10, 4), mk(1, 0, 20, 2, 0))
	rec := &trace.Recorder{}
	if _, err := New(Config{Servers: 4, Recorder: rec}).Run(set, core.New()); err != nil {
		t.Fatal(err)
	}
	if set.ByID(1).FinishTime != 6 {
		t.Fatalf("dependent finished at %v, want 6", set.ByID(1).FinishTime)
	}
	if err := rec.ValidateN(set, 4); err != nil {
		t.Fatal(err)
	}
}

func TestMultiServerNoDuplicateDispatch(t *testing.T) {
	// The ASETS* checkout must prevent the same head from reaching two
	// servers even when its workflow stays enqueued via other members: a
	// DAG whose two leaves are ready simultaneously is fine, but a single
	// ready head must never double-dispatch. Run a stressy workload and
	// rely on the simulator's double-dispatch check plus trace validation.
	cfg := workload.Default(1.8, 5).WithWorkflows(5, 2).WithWeights()
	cfg.N = 400
	cfg.Order = workload.OrderRandom
	set := workload.MustGenerate(cfg)
	rec := &trace.Recorder{}
	if _, err := New(Config{Servers: 3, Recorder: rec}).Run(set, core.New()); err != nil {
		t.Fatal(err)
	}
	if err := rec.ValidateN(set, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMultiServerAllPoliciesValid(t *testing.T) {
	cfg := workload.Default(2.5, 9) // offered load 2.5 over 3 servers
	cfg.N = 300
	policies := []sched.Scheduler{
		sched.NewFCFS(), sched.NewEDF(), sched.NewSRPT(), sched.NewLS(),
		sched.NewHDF(), core.New(), core.NewReady(),
	}
	for _, p := range policies {
		set := workload.MustGenerate(cfg)
		rec := &trace.Recorder{}
		sum, err := New(Config{Servers: 3, Recorder: rec}).Run(set, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := rec.ValidateN(set, 3); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if sum.BusyTime <= sum.Makespan {
			t.Fatalf("%s: busy %v should exceed makespan %v with 3 busy servers", p.Name(), sum.BusyTime, sum.Makespan)
		}
	}
}

func TestMultiServerReducesTardiness(t *testing.T) {
	// Same offered work, more servers: tardiness must drop sharply.
	cfg := workload.Default(0.9, 13)
	cfg.N = 500
	one := New(Config{Servers: 1}).MustRun(workload.MustGenerate(cfg), core.New())
	two := New(Config{Servers: 2}).MustRun(workload.MustGenerate(cfg), core.New())
	if two.AvgTardiness >= one.AvgTardiness {
		t.Fatalf("2 servers (%v) not better than 1 (%v)", two.AvgTardiness, one.AvgTardiness)
	}
}
