package sim

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/txn"
)

// ClosedLoopResult aggregates a closed-loop run.
type ClosedLoopResult struct {
	// Summary holds the standard per-transaction metrics.
	Summary *metrics.Summary
	// PageLatencies holds, per session and page, the time from request to
	// full render.
	PageLatencies [][]float64
	// AbandonRate is the fraction of pages whose render latency exceeded
	// the page's patience bound (see RunClosedLoop's patience parameter).
	AbandonRate float64
}

// RunClosedLoop simulates sessions against a single backend under the given
// policy. Transactions exist up front (the scheduler sees a fixed universe)
// but their arrival times are determined during simulation: all
// transactions of a page arrive when the page is requested, which happens a
// think time after the previous page of the same session finished.
//
// The set's Arrival fields are ignored as absolute times; each
// transaction's Deadline must be stored RELATIVE to its page request (the
// closed-loop generator in the workload package does this). Config.Patience
// is the page-level abandonment bound: a page whose render latency exceeds
// it counts as abandoned (the session still continues — the paper's
// lost-revenue framing needs the rate, and cancelling in-flight work would
// change the offered load mid-run).
//
// The closed-loop model is single-server and fault-free: a Config carrying
// Servers > 1, Faults, Admit or a Recorder is rejected. Sink and Metrics
// work as in Run — the decision loop is instrumented at the scheduler
// boundary.
func (e *Sim) RunClosedLoop(set *txn.Set, sessions []txn.Session, s sched.Scheduler) (*ClosedLoopResult, error) {
	cfg := e.cfg
	patience := cfg.Patience
	servers, err := cfg.servers()
	if err != nil {
		return nil, err
	}
	if servers != 1 {
		return nil, fmt.Errorf("sim: closed loop supports a single server, not %d", servers)
	}
	if cfg.Faults != nil || cfg.Admit != nil {
		return nil, fmt.Errorf("sim: closed loop does not support fault injection or admission control")
	}
	if cfg.Recorder != nil {
		return nil, fmt.Errorf("sim: closed loop does not record execution slices")
	}
	n := set.Len()
	if err := validateSessions(set, sessions); err != nil {
		return nil, err
	}
	set.ResetAll()
	s = sched.Instrument(s, cfg.Sink, cfg.Metrics)
	s.Init(set)

	// Arrival and Deadline are rewritten from relative to absolute as pages
	// are issued; restore the originals afterwards so the set can be
	// replayed under another policy.
	origArrival := make([]float64, n)
	origDeadline := make([]float64, n)
	for i, t := range set.Txns {
		origArrival[i] = t.Arrival
		origDeadline[i] = t.Deadline
	}
	defer func() {
		for i, t := range set.Txns {
			t.Arrival = origArrival[i]
			t.Deadline = origDeadline[i]
		}
	}()

	type pageState struct {
		session   int
		index     int
		requested float64
		remaining int // unfinished transactions
	}
	pageOf := make([]*pageState, n) // transaction -> its page
	nextPage := make([]int, len(sessions))

	// Pending page-request events, ordered by time.
	type request struct {
		at      float64
		session int
	}
	var requests []request
	for si, sess := range sessions {
		if len(sess.Pages) > 0 {
			requests = append(requests, request{at: sess.ThinkTimes[0], session: si})
		}
	}
	sortRequests := func() {
		sort.Slice(requests, func(i, j int) bool {
			if requests[i].at != requests[j].at {
				return requests[i].at < requests[j].at
			}
			return requests[i].session < requests[j].session
		})
	}
	sortRequests()

	latencies := make([][]float64, len(sessions))
	for si, sess := range sessions {
		latencies[si] = make([]float64, len(sess.Pages))
	}

	var (
		now     float64
		done    int
		busy    float64
		steps   int
		running *txn.Transaction
	)
	maxSteps := 16*n + 64

	// issue submits the next page of a session at time at.
	issue := func(at float64, si int) {
		sess := sessions[si]
		pi := nextPage[si]
		nextPage[si]++
		ps := &pageState{session: si, index: pi, requested: at, remaining: len(sess.Pages[pi])}
		for _, id := range sess.Pages[pi] {
			t := set.ByID(id)
			t.Arrival = at
			t.Deadline = at + t.Deadline // stored relative; now absolute
			pageOf[id] = ps
			s.OnArrival(at, t)
		}
	}
	deliver := func(upTo float64) {
		for len(requests) > 0 && requests[0].at <= upTo {
			issue(requests[0].at, requests[0].session)
			requests = requests[1:]
		}
	}

	for done < n {
		steps++
		if steps > maxSteps {
			return nil, fmt.Errorf("sim: closed loop exceeded %d steps with %d/%d complete", maxSteps, done, n)
		}
		if running == nil {
			running = s.Next(now)
		}
		if running == nil {
			if len(requests) == 0 {
				return nil, fmt.Errorf("sim: closed loop idle with %d/%d complete and no pending requests", done, n)
			}
			now = requests[0].at
			deliver(now)
			continue
		}
		t := running
		finish := now + t.Remaining
		if len(requests) > 0 && requests[0].at < finish {
			at := requests[0].at
			t.Remaining -= at - now
			now = at
			running = nil
			s.OnPreempt(now, t)
			deliver(now)
			continue
		}
		busy += t.Remaining
		now = finish
		t.Remaining = 0
		t.Finished = true
		t.FinishTime = now
		done++
		running = nil
		s.OnCompletion(now, t)

		// Page bookkeeping: when the last transaction of a page finishes,
		// record the latency and schedule the session's next request.
		ps := pageOf[t.ID]
		ps.remaining--
		if ps.remaining == 0 {
			lat := now - ps.requested
			latencies[ps.session][ps.index] = lat
			sess := sessions[ps.session]
			if next := ps.index + 1; next < len(sess.Pages) {
				requests = append(requests, request{at: now + sess.ThinkTimes[next], session: ps.session})
				sortRequests()
			}
		}
		deliver(now)
	}

	if fl, ok := s.(sched.ObsFlusher); ok {
		fl.FlushObs()
	}
	summary, err := metrics.Compute(set, busy)
	if err != nil {
		return nil, err
	}
	abandoned, pages := 0, 0
	for _, sess := range latencies {
		for _, lat := range sess {
			pages++
			if patience > 0 && lat > patience {
				abandoned++
			}
		}
	}
	res := &ClosedLoopResult{Summary: summary, PageLatencies: latencies}
	if pages > 0 {
		res.AbandonRate = float64(abandoned) / float64(pages)
	}
	return res, nil
}

// validateSessions checks that the sessions partition the transaction set.
func validateSessions(set *txn.Set, sessions []txn.Session) error {
	seen := make([]bool, set.Len())
	count := 0
	for si, sess := range sessions {
		if len(sess.ThinkTimes) != len(sess.Pages) {
			return fmt.Errorf("sim: session %d has %d pages but %d think times", si, len(sess.Pages), len(sess.ThinkTimes))
		}
		for pi, page := range sess.Pages {
			if len(page) == 0 {
				return fmt.Errorf("sim: session %d page %d is empty", si, pi)
			}
			for _, id := range page {
				if id < 0 || int(id) >= set.Len() {
					return fmt.Errorf("sim: session %d references unknown transaction %d", si, id)
				}
				if seen[id] {
					return fmt.Errorf("sim: transaction %d appears in two pages", id)
				}
				seen[id] = true
				count++
			}
		}
	}
	if count != set.Len() {
		return fmt.Errorf("sim: sessions cover %d of %d transactions", count, set.Len())
	}
	return nil
}
