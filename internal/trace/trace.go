// Package trace records and validates execution schedules produced by the
// simulator. A trace is the sequence of contiguous execution slices the
// single backend server performed; the validator checks the invariants any
// legal preemptive-resume schedule must satisfy, independent of policy:
//
//   - slices never overlap and never run backwards in time,
//   - no transaction executes before its arrival,
//   - no transaction executes before all its dependencies have finished,
//   - every transaction receives exactly its length of service, and
//   - the recorded finish time equals the end of its last slice.
//
// Experiments run with validation enabled in tests, so every figure in
// EXPERIMENTS.md is backed by schedules that were mechanically checked.
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/txn"
)

// Slice is one contiguous stretch of service given to a transaction.
type Slice struct {
	ID    txn.ID
	Start float64
	End   float64
}

// Duration returns the service time of the slice.
func (s Slice) Duration() float64 { return s.End - s.Start }

// Recorder accumulates execution slices during a simulation run. The zero
// value is ready to use. Adjacent slices of the same transaction are merged
// so traces stay compact under frequent no-op "preemptions" (an arrival that
// does not change the running transaction).
type Recorder struct {
	Slices []Slice
}

// Record appends a slice, merging it with the previous one when contiguous.
// Contiguity is judged within the package tolerance: event times accumulate
// float64 error, so an exact == test would let drifted-but-adjacent slices
// fragment the trace.
func (r *Recorder) Record(id txn.ID, start, end float64) {
	if n := len(r.Slices); n > 0 {
		last := &r.Slices[n-1]
		if last.ID == id && math.Abs(start-last.End) <= tolerance {
			last.End = end
			return
		}
	}
	//lint:ignore hotpath-alloc the trace is the product: one slice per contiguous execution, merged when adjacent
	r.Slices = append(r.Slices, Slice{ID: id, Start: start, End: end})
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() { r.Slices = r.Slices[:0] }

// tolerance absorbs float64 accumulation error across many small slices.
const tolerance = 1e-6

// Validate checks the schedule invariants against the workload for the
// paper's single-server model. The set must be in its post-run state
// (Finished and FinishTime populated). For multi-server schedules use
// ValidateN.
func (r *Recorder) Validate(set *txn.Set) error {
	return r.ValidateN(set, 1)
}

// ValidateN checks the schedule invariants for a run on `servers` identical
// servers: at most `servers` slices may overlap at any instant, a
// transaction never overlaps itself, and all single-server invariants
// (arrival, precedence, exact service, finish times) hold.
func (r *Recorder) ValidateN(set *txn.Set, servers int) error {
	if servers < 1 {
		return fmt.Errorf("trace: servers %d must be positive", servers)
	}
	if err := r.checkConcurrency(servers); err != nil {
		return err
	}
	return r.validateCommon(set)
}

// checkConcurrency sweeps slice boundaries and verifies the number of
// concurrently executing slices never exceeds the server count, and that no
// transaction runs on two servers at once.
func (r *Recorder) checkConcurrency(servers int) error {
	type boundary struct {
		at    float64
		delta int
		id    txn.ID
	}
	events := make([]boundary, 0, 2*len(r.Slices))
	for i, s := range r.Slices {
		if s.End <= s.Start {
			return fmt.Errorf("trace: slice %d (%v) runs backwards or is empty", i, s)
		}
		events = append(events,
			boundary{at: s.Start, delta: +1, id: s.ID},
			boundary{at: s.End, delta: -1, id: s.ID})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Ends before starts at the same instant: back-to-back slices on
		// one server are legal.
		return events[i].delta < events[j].delta
	})
	depth := 0
	active := map[txn.ID]int{}
	for _, ev := range events {
		depth += ev.delta
		active[ev.id] += ev.delta
		if depth > servers {
			return fmt.Errorf("trace: %d overlapping slices at time %v exceed %d servers", depth, ev.at, servers)
		}
		if active[ev.id] > 1 {
			return fmt.Errorf("trace: transaction %d executes on two servers at time %v", ev.id, ev.at)
		}
	}
	return nil
}

// validateCommon checks the per-transaction invariants shared by the single
// and multi-server cases.
func (r *Recorder) validateCommon(set *txn.Set) error {
	service := make([]float64, set.Len())
	lastEnd := make([]float64, set.Len())
	finishOf := make([]float64, set.Len())
	for i := range finishOf {
		finishOf[i] = math.Inf(1)
	}

	for i, s := range r.Slices {
		if s.End <= s.Start {
			return fmt.Errorf("trace: slice %d (%v) runs backwards or is empty", i, s)
		}
		t := set.ByID(s.ID)
		if s.Start < t.Arrival-tolerance {
			return fmt.Errorf("trace: transaction %d executed at %v before its arrival %v", s.ID, s.Start, t.Arrival)
		}
		service[s.ID] += s.Duration()
		if s.End > lastEnd[s.ID] {
			lastEnd[s.ID] = s.End
		}
	}

	for _, t := range set.Txns {
		if !t.Finished {
			return fmt.Errorf("trace: transaction %d never finished", t.ID)
		}
		if math.Abs(service[t.ID]-t.Length) > tolerance {
			return fmt.Errorf("trace: transaction %d received %v service, length is %v", t.ID, service[t.ID], t.Length)
		}
		if math.Abs(lastEnd[t.ID]-t.FinishTime) > tolerance {
			return fmt.Errorf("trace: transaction %d last slice ends at %v, finish time recorded as %v", t.ID, lastEnd[t.ID], t.FinishTime)
		}
		finishOf[t.ID] = t.FinishTime
	}

	// Precedence: no slice of a dependent may start before every direct
	// dependency's finish time.
	for _, s := range r.Slices {
		t := set.ByID(s.ID)
		for _, d := range t.Deps {
			if s.Start < finishOf[d]-tolerance {
				return fmt.Errorf("trace: transaction %d started at %v before dependency %d finished at %v",
					s.ID, s.Start, d, finishOf[d])
			}
		}
	}
	return nil
}

// BusyTime returns the total service time in the trace.
func (r *Recorder) BusyTime() float64 {
	var total float64
	for _, s := range r.Slices {
		total += s.Duration()
	}
	return total
}

// Preemptions counts slice boundaries where a transaction was set aside
// unfinished: transitions between different transactions where the earlier
// one reappears later in the trace.
func (r *Recorder) Preemptions(set *txn.Set) int {
	finish := make([]float64, set.Len())
	for _, t := range set.Txns {
		finish[t.ID] = t.FinishTime
	}
	count := 0
	for i := 0; i+1 < len(r.Slices); i++ {
		cur, next := r.Slices[i], r.Slices[i+1]
		if cur.ID != next.ID && cur.End < finish[cur.ID]-tolerance {
			count++
		}
	}
	return count
}

// PerTxnService returns total service per transaction ID, for tests.
func (r *Recorder) PerTxnService(n int) []float64 {
	service := make([]float64, n)
	for _, s := range r.Slices {
		service[s.ID] += s.Duration()
	}
	return service
}

// SortedByStart returns a copy of the slices ordered by start time. The
// recorder already appends in time order during simulation; this helper is
// for defensive consumers and tests.
func (r *Recorder) SortedByStart() []Slice {
	out := make([]Slice, len(r.Slices))
	copy(out, r.Slices)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
