package trace

import (
	"strings"
	"testing"

	"repro/internal/txn"
)

func mk(id int, arrival, deadline, length float64, deps ...txn.ID) *txn.Transaction {
	return &txn.Transaction{
		ID:       txn.ID(id),
		Arrival:  arrival,
		Deadline: deadline,
		Length:   length,
		Weight:   1,
		Deps:     deps,
	}
}

func finishedSet(t *testing.T, txns ...*txn.Transaction) *txn.Set {
	t.Helper()
	s, err := txn.NewSet(txns)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func finish(tx *txn.Transaction, at float64) *txn.Transaction {
	tx.Finished = true
	tx.FinishTime = at
	return tx
}

func TestRecorderMergesContiguousSlices(t *testing.T) {
	r := &Recorder{}
	r.Record(0, 0, 2)
	r.Record(0, 2, 5)
	r.Record(1, 5, 6)
	r.Record(0, 6, 7)
	if len(r.Slices) != 3 {
		t.Fatalf("slices = %v, want the first two merged", r.Slices)
	}
	if r.Slices[0] != (Slice{0, 0, 5}) {
		t.Fatalf("merged slice = %v", r.Slices[0])
	}
}

// TestRecorderMergesWithinTolerance: simulated event times accumulate
// float64 error, so resume points drift a few ULPs off the previous slice's
// end. Such slices must still merge; gaps beyond the package tolerance must
// not.
func TestRecorderMergesWithinTolerance(t *testing.T) {
	// 0.1+0.2 != 0.3 exactly — the classic drift an == test fragments on.
	r := &Recorder{}
	r.Record(0, 0, 0.1+0.2)
	r.Record(0, 0.3, 0.5)
	if len(r.Slices) != 1 {
		t.Fatalf("drifted-adjacent slices did not merge: %v", r.Slices)
	}
	if r.Slices[0].Start != 0 || r.Slices[0].End != 0.5 {
		t.Fatalf("merged slice = %v", r.Slices[0])
	}

	// Accumulated sums drift too: after many small increments the resume
	// point differs from the analytic end by more than one ULP.
	r = &Recorder{}
	sum := 0.0
	for i := 0; i < 1000; i++ {
		sum += 0.001
	}
	if sum == 1.0 {
		t.Fatal("test premise broken: 1000*0.001 summed exactly")
	}
	r.Record(0, 0, sum)
	r.Record(0, 1.0, 1.5)
	if len(r.Slices) != 1 {
		t.Fatalf("accumulated-drift slices did not merge: %v", r.Slices)
	}

	// A real preemption gap (here 0.01 ≫ tolerance) must stay two slices.
	r = &Recorder{}
	r.Record(0, 0, 1)
	r.Record(0, 1.01, 2)
	if len(r.Slices) != 2 {
		t.Fatalf("gapped slices merged: %v", r.Slices)
	}
}

func TestRecorderReset(t *testing.T) {
	r := &Recorder{}
	r.Record(0, 0, 1)
	r.Reset()
	if len(r.Slices) != 0 {
		t.Fatal("Reset did not clear slices")
	}
}

func TestValidateAcceptsLegalSchedule(t *testing.T) {
	set := finishedSet(t,
		finish(mk(0, 0, 10, 5), 5),
		finish(mk(1, 1, 20, 3), 8),
	)
	r := &Recorder{}
	r.Record(0, 0, 5)
	r.Record(1, 5, 8)
	if err := r.Validate(set); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	set := finishedSet(t,
		finish(mk(0, 0, 10, 5), 5),
		finish(mk(1, 0, 20, 3), 7),
	)
	r := &Recorder{}
	r.Record(0, 0, 5)
	r.Record(1, 4, 7) // overlaps the first slice
	if err := r.Validate(set); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("err = %v, want overlap", err)
	}
}

func TestValidateRejectsExecutionBeforeArrival(t *testing.T) {
	set := finishedSet(t, finish(mk(0, 3, 10, 5), 8))
	r := &Recorder{}
	r.Record(0, 2, 7) // starts before arrival 3
	if err := r.Validate(set); err == nil || !strings.Contains(err.Error(), "arrival") {
		t.Fatalf("err = %v, want arrival violation", err)
	}
}

func TestValidateRejectsWrongService(t *testing.T) {
	set := finishedSet(t, finish(mk(0, 0, 10, 5), 4))
	r := &Recorder{}
	r.Record(0, 0, 4) // only 4 of 5 units
	if err := r.Validate(set); err == nil || !strings.Contains(err.Error(), "service") {
		t.Fatalf("err = %v, want service mismatch", err)
	}
}

func TestValidateRejectsFinishTimeMismatch(t *testing.T) {
	set := finishedSet(t, finish(mk(0, 0, 10, 5), 9))
	r := &Recorder{}
	r.Record(0, 0, 5) // last slice ends at 5, finish recorded as 9
	if err := r.Validate(set); err == nil || !strings.Contains(err.Error(), "finish time") {
		t.Fatalf("err = %v, want finish mismatch", err)
	}
}

func TestValidateRejectsPrecedenceViolation(t *testing.T) {
	// T1 depends on T0 but runs first.
	set := finishedSet(t,
		finish(mk(0, 0, 10, 5), 8),
		finish(mk(1, 0, 20, 3, 0), 3),
	)
	r := &Recorder{}
	r.Record(1, 0, 3) // dependent runs before its dependency
	r.Record(0, 3, 8)
	if err := r.Validate(set); err == nil || !strings.Contains(err.Error(), "dependency") {
		t.Fatalf("err = %v, want precedence violation", err)
	}
}

func TestValidateRejectsUnfinished(t *testing.T) {
	set := finishedSet(t, mk(0, 0, 10, 5))
	r := &Recorder{}
	r.Record(0, 0, 5)
	if err := r.Validate(set); err == nil || !strings.Contains(err.Error(), "never finished") {
		t.Fatalf("err = %v, want unfinished detection", err)
	}
}

func TestValidateRejectsEmptySlice(t *testing.T) {
	set := finishedSet(t, finish(mk(0, 0, 10, 5), 5))
	r := &Recorder{}
	r.Slices = []Slice{{0, 3, 3}} // zero-duration inserted by hand
	if err := r.Validate(set); err == nil {
		t.Fatal("zero-duration slice accepted")
	}
}

func TestValidatePreemptiveResume(t *testing.T) {
	// Legal preemptive schedule: T0 runs 0-4, T1 runs 4-6, T0 resumes 6-12.
	set := finishedSet(t,
		finish(mk(0, 0, 100, 10), 12),
		finish(mk(1, 4, 100, 2), 6),
	)
	r := &Recorder{}
	r.Record(0, 0, 4)
	r.Record(1, 4, 6)
	r.Record(0, 6, 12)
	if err := r.Validate(set); err != nil {
		t.Fatal(err)
	}
	if got := r.Preemptions(set); got != 1 {
		t.Fatalf("preemptions = %d", got)
	}
	if got := r.BusyTime(); got != 12 {
		t.Fatalf("busy = %v", got)
	}
	svc := r.PerTxnService(2)
	if svc[0] != 10 || svc[1] != 2 {
		t.Fatalf("service = %v", svc)
	}
}

func TestSortedByStart(t *testing.T) {
	r := &Recorder{}
	r.Slices = []Slice{{0, 5, 6}, {1, 0, 2}, {2, 3, 4}}
	sorted := r.SortedByStart()
	if sorted[0].Start != 0 || sorted[1].Start != 3 || sorted[2].Start != 5 {
		t.Fatalf("sorted = %v", sorted)
	}
	// Original untouched.
	if r.Slices[0].Start != 5 {
		t.Fatal("SortedByStart mutated the recorder")
	}
}
