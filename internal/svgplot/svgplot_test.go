package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/report"
)

func sample() *report.Figure {
	f := &report.Figure{
		ID:     "fig10",
		Title:  "Normalized <tardiness> & more",
		XLabel: "utilization",
		YLabel: "ratio",
		X:      []float64{0.1, 0.5, 1.0},
	}
	f.AddSeries("ASETS*/EDF", []float64{1, 0.7, 0.4}, nil)
	f.AddSeries("ASETS*/SRPT", []float64{0.4, 0.6, 0.95}, nil)
	return f
}

func render(t *testing.T, fig *report.Figure, opts Options) string {
	t.Helper()
	var b strings.Builder
	if err := Render(&b, fig, opts); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRenderWellFormedXML(t *testing.T) {
	out := render(t, sample(), Options{})
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("output is not well-formed XML: %v", err)
		}
	}
}

func TestRenderContainsParts(t *testing.T) {
	out := render(t, sample(), Options{})
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"ASETS*/EDF", "ASETS*/SRPT", "utilization", "ratio",
		"&lt;tardiness&gt; &amp; more", // escaping
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestRenderCustomSize(t *testing.T) {
	out := render(t, sample(), Options{Width: 320, Height: 200})
	if !strings.Contains(out, `width="320"`) || !strings.Contains(out, `height="200"`) {
		t.Error("custom size not honoured")
	}
}

func TestRenderLogY(t *testing.T) {
	f := &report.Figure{ID: "f", XLabel: "x", YLabel: "y", X: []float64{1, 2, 3}}
	f.AddSeries("s", []float64{0, 10, 1000}, nil) // zero must be clamped
	out := render(t, f, Options{LogY: true})
	if !strings.Contains(out, "<polyline") {
		t.Error("log-scale render lost the series")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	f := &report.Figure{ID: "f", XLabel: "x", YLabel: "y", X: []float64{1, 2}}
	f.AddSeries("s", []float64{5, 5}, nil)
	out := render(t, f, Options{})
	if !strings.Contains(out, "<polyline") {
		t.Error("flat series render failed")
	}
}

func TestRenderEmptyFigureFails(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, &report.Figure{ID: "e"}, Options{}); err == nil {
		t.Error("empty figure accepted")
	}
}

func TestCompactFormatting(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		50000:   "50k",
		123:     "123",
		4.2:     "4.2",
		0.05:    "0.050",
	}
	for in, want := range cases {
		if got := compact(in); got != want {
			t.Errorf("compact(%v) = %q, want %q", in, got, want)
		}
	}
}
