// Package svgplot renders report.Figure values as standalone SVG line
// charts using only the standard library. The output is intentionally
// plain — axes, ticks, gridlines, one polyline per series, a legend — but
// it turns `asetsbench -svg out/` into figures that can sit next to the
// paper's originals for visual comparison.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/report"
)

// palette holds the series colors (colorblind-safe Okabe-Ito subset).
var palette = []string{
	"#0072B2", // blue
	"#D55E00", // vermillion
	"#009E73", // green
	"#CC79A7", // purple
	"#E69F00", // orange
	"#56B4E9", // sky
	"#F0E442", // yellow
	"#000000", // black
}

// Options tunes the rendering; zero values select sensible defaults.
type Options struct {
	// Width and Height of the SVG canvas in pixels (default 720x480).
	Width  int
	Height int
	// LogY switches the y-axis to log10 scale (zero/negative values are
	// clamped to the smallest positive value in the data).
	LogY bool
}

// Render writes fig as a complete SVG document to w.
func Render(w io.Writer, fig *report.Figure, opts Options) error {
	if opts.Width <= 0 {
		opts.Width = 720
	}
	if opts.Height <= 0 {
		opts.Height = 480
	}
	if len(fig.X) == 0 || len(fig.Series) == 0 {
		return fmt.Errorf("svgplot: figure %q has no data", fig.ID)
	}

	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := float64(opts.Width - marginL - marginR)
	plotH := float64(opts.Height - marginT - marginB)

	xmin, xmax := minMax(fig.X)
	var ys []float64
	for _, s := range fig.Series {
		ys = append(ys, s.Y...)
	}
	ymin, ymax := minMax(ys)

	transformY := func(v float64) float64 { return v }
	if opts.LogY {
		floor := smallestPositive(ys)
		if floor == 0 {
			floor = 1e-6
		}
		transformY = func(v float64) float64 {
			if v < floor {
				v = floor
			}
			return math.Log10(v)
		}
		ymin, ymax = transformY(ymin), transformY(ymax)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Breathing room on the y-axis.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 {
		return float64(marginT) + (1-(transformY(y)-ymin)/(ymax-ymin))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s — %s</text>`+"\n",
		marginL, escape(fig.ID), escape(fig.Title))

	// Plot frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// X ticks at each data point (the sweeps have at most ~10 points).
	for _, x := range fig.X {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			px(x), float64(marginT), px(x), float64(marginT)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%g</text>`+"\n",
			px(x), float64(marginT)+plotH+16, x)
	}
	// Y ticks: five evenly spaced (in transformed space).
	for i := 0; i <= 4; i++ {
		ty := ymin + (ymax-ymin)*float64(i)/4
		yPix := float64(marginT) + (1-(ty-ymin)/(ymax-ymin))*plotH
		label := ty
		if opts.LogY {
			label = math.Pow(10, ty)
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n",
			marginL, yPix, float64(marginL)+plotW, yPix)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, yPix+4, compact(label))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, opts.Height-10, escape(fig.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, escape(fig.YLabel))

	// Series polylines + point markers.
	for si, s := range fig.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, y := range s.Y {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(fig.X[i]), py(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, y := range s.Y {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(fig.X[i]), py(y), color)
		}
	}

	// Legend (top-right inside the frame).
	for si, s := range fig.Series {
		color := palette[si%len(palette)]
		lx := float64(marginL) + plotW - 150
		ly := float64(marginT) + 16 + float64(si)*18
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
			lx, ly-4, lx+22, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+28, ly, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func minMax(vals []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

func smallestPositive(vals []float64) float64 {
	best := 0.0
	for _, v := range vals {
		if v > 0 && (best == 0 || v < best) {
			best = v
		}
	}
	return best
}

func compact(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
