package contention

import (
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/txn"
)

// DefaultWindow is the default probe depth of a Deferring wrapper: how many
// queue positions past a predicted-conflicting head the wrapper searches
// for a non-conflicting transaction to steal.
const DefaultWindow = 8

// Deferring wraps any scheduling policy with conflict-aware dispatch (the
// "CA-" policy family, docs/CONTENTION.md): when the wrapped policy's
// chosen head is predicted to conflict with a busy transaction — one
// checked out on a server, or one preempted mid-incarnation whose read
// snapshot is still open — the wrapper probes up to Window further
// candidates in the policy's own preference order and steals the first
// non-conflicting one, returning the skipped candidates to the policy
// untouched. Predicted conflict is read/write overlap in either direction:
// dispatching the candidate could invalidate the busy transaction's open
// reads, or the busy transaction's eventual commit could invalidate the
// candidate's.
//
// The wrapper is work-conserving: when every probed candidate conflicts it
// dispatches the policy's original head anyway, so a CA- policy never
// idles a server the base policy would have used. Deferral decisions are a
// pure function of the wrapped policy's deterministic order and the busy
// sets, so CA- runs replay bit-identically.
//
// Deferral pays off when parallel servers (or preemption interleavings)
// would open conflicting incarnations concurrently; at hot-spot extremes
// where nearly every pair conflicts, the work-conserving fallback keeps it
// from doing worse than the base policy by much, but it cannot win there —
// see docs/CONTENTION.md for the measured operating envelope.
type Deferring struct {
	inner  sched.Scheduler
	window int
	name   string
	sink   obs.Sink

	// out holds the transactions currently checked out through Next and
	// not yet returned via OnPreempt/OnCompletion (the check-out protocol
	// guarantees every one comes back before the next Next).
	out []*txn.Transaction
	// openTxns holds queued transactions with partial progress: their
	// incarnation began at an earlier dispatch and its read snapshot stays
	// open until they complete or are rewound (validation failure, crash).
	// openMark[id] mirrors membership for O(1) tests.
	openTxns []*txn.Transaction
	openMark []bool
	// cand is the probe scratch buffer (capacity window+1).
	cand []*txn.Transaction
}

// NewDeferring wraps inner with conflict-aware dispatch. A non-positive
// window selects DefaultWindow.
//
//lint:coldpath policy construction is per-run setup
func NewDeferring(inner sched.Scheduler, window int) *Deferring {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Deferring{
		inner:  inner,
		window: window,
		name:   "CA-" + inner.Name(),
		cand:   make([]*txn.Transaction, 0, window+1),
	}
}

// Unwrap returns the wrapped policy, for invariant audits and tests.
func (d *Deferring) Unwrap() sched.Scheduler { return d.inner }

// Name implements sched.Scheduler.
func (d *Deferring) Name() string { return d.name }

// Init implements sched.Scheduler.
//
//lint:coldpath per-run setup: busy-set buffers are built before the event loop
func (d *Deferring) Init(set *txn.Set) {
	n := set.Len()
	if cap(d.out) < n {
		d.out = make([]*txn.Transaction, 0, n)
		d.openTxns = make([]*txn.Transaction, 0, n)
	}
	d.out = d.out[:0]
	d.openTxns = d.openTxns[:0]
	d.openMark = make([]bool, n)
	d.cand = d.cand[:0]
	d.inner.Init(set)
}

// SetSink implements sched.SinkSetter: conflict_defer events join the
// instrumented stream, and the sink propagates to the wrapped policy so
// its internal events (ASETS* aging, mode switches) keep flowing.
func (d *Deferring) SetSink(s obs.Sink) {
	d.sink = s
	if ss, ok := d.inner.(sched.SinkSetter); ok {
		ss.SetSink(s)
	}
}

// OnArrival implements sched.Scheduler.
func (d *Deferring) OnArrival(now float64, t *txn.Transaction) {
	d.inner.OnArrival(now, t)
}

// Next implements sched.Scheduler.
func (d *Deferring) Next(now float64) *txn.Transaction {
	head := d.inner.Next(now)
	if head == nil {
		return nil
	}
	if !d.conflictsBusy(head) {
		d.checkout(head)
		return head
	}
	// The head is predicted to conflict: probe deeper in the policy's own
	// order for a non-conflicting steal.
	cand := d.cand[:0]
	cand = append(cand, head)
	var pick *txn.Transaction
	for len(cand) <= d.window {
		c := d.inner.Next(now)
		if c == nil {
			break
		}
		if !d.conflictsBusy(c) {
			pick = c
			break
		}
		cand = append(cand, c)
	}
	d.cand = cand
	if pick == nil {
		// Every candidate in the window conflicts. Stay work-conserving:
		// dispatch the original head and return the rest untouched.
		pick = cand[0]
		cand = cand[1:]
	} else if d.sink != nil {
		// An actual steal: record each candidate the pick jumped past.
		for _, c := range cand {
			d.sink.Emit(obs.Event{
				Time: now, Kind: obs.KindConflictDefer, Txn: c.ID, Workflow: -1,
				Deadline: c.Deadline, Remaining: c.Remaining,
			})
		}
	}
	// Hand the deferred candidates back in probe order. Their keys and
	// remaining work are unchanged, so deterministic policies restore them
	// to their exact queue positions.
	for _, c := range cand {
		d.inner.OnPreempt(now, c)
	}
	d.checkout(pick)
	return pick
}

// OnPreempt implements sched.Scheduler.
func (d *Deferring) OnPreempt(now float64, t *txn.Transaction) {
	d.release(t)
	// A preempted transaction with partial progress still holds its read
	// snapshot (the incarnation spans preemptions); one rewound to full
	// length (validation failure, crash loss) lost it. The strict < holds
	// exactly when progress was made: rewinds restore Remaining = Length
	// bit-for-bit.
	if t.Remaining < t.Length {
		d.markOpen(t)
	} else {
		d.unmarkOpen(t)
	}
	d.inner.OnPreempt(now, t)
}

// OnCompletion implements sched.Scheduler.
func (d *Deferring) OnCompletion(now float64, t *txn.Transaction) {
	d.release(t)
	d.unmarkOpen(t)
	d.inner.OnCompletion(now, t)
}

// checkout records t as running.
func (d *Deferring) checkout(t *txn.Transaction) {
	//lint:ignore hotpath-alloc out is presized to the workload length at Init
	d.out = append(d.out, t)
}

// release removes t from the checked-out set.
func (d *Deferring) release(t *txn.Transaction) {
	for i, o := range d.out {
		if o.ID == t.ID {
			last := len(d.out) - 1
			d.out[i] = d.out[last]
			d.out[last] = nil
			d.out = d.out[:last]
			return
		}
	}
}

func (d *Deferring) markOpen(t *txn.Transaction) {
	if !d.openMark[t.ID] {
		d.openMark[t.ID] = true
		//lint:ignore hotpath-alloc openTxns is presized to the workload length at Init
		d.openTxns = append(d.openTxns, t)
	}
}

func (d *Deferring) unmarkOpen(t *txn.Transaction) {
	if !d.openMark[t.ID] {
		return
	}
	d.openMark[t.ID] = false
	for i, o := range d.openTxns {
		if o.ID == t.ID {
			last := len(d.openTxns) - 1
			d.openTxns[i] = d.openTxns[last]
			d.openTxns[last] = nil
			d.openTxns = d.openTxns[:last]
			return
		}
	}
}

// conflictsBusy reports whether dispatching c is predicted to produce a
// validation failure: c overlaps a busy transaction in a way where either
// side's commit invalidates the other's open reads. Write-write overlap
// alone is not predicted to fail — only read sets are validated.
func (d *Deferring) conflictsBusy(c *txn.Transaction) bool {
	for _, o := range d.out {
		if o.ID != c.ID && conflicts(c, o) {
			return true
		}
	}
	for _, o := range d.openTxns {
		if o.ID != c.ID && conflicts(c, o) {
			return true
		}
	}
	return false
}

// conflicts reports read/write overlap between a and b in either
// direction.
func conflicts(a, b *txn.Transaction) bool {
	return overlap(a.Writes, b.Reads) || overlap(a.Reads, b.Writes)
}

// overlap merge-scans two sorted key sets for a common element.
func overlap(a, b []txn.Key) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			return true
		}
	}
	return false
}

var _ sched.Scheduler = (*Deferring)(nil)
var _ sched.SinkSetter = (*Deferring)(nil)
