package contention

import (
	"repro/internal/obs"
	"repro/internal/txn"
)

// Metric names of the contention layer; the taxonomy is documented in
// docs/CONTENTION.md and docs/OBSERVABILITY.md.
const (
	// MetricValidateFails counts commit-time validation failures (each one
	// forces a re-execution from scratch).
	MetricValidateFails = "asets_contention_validate_fails_total"
)

// Recorder fans validation decisions into the unified instrumentation
// layer: one typed obs.Event per validation failure plus the matching
// registry count. Either output may be absent — a nil sink drops events, a
// nil registry drops counts — mirroring fault.Recorder, whose stream these
// events interleave with.
type Recorder struct {
	sink  obs.Sink
	fails *obs.Counter
}

// NewRecorder wires a recorder to sink and reg (either may be nil).
//
//lint:coldpath recorder wiring is per-run setup
func NewRecorder(sink obs.Sink, reg *obs.Registry) *Recorder {
	if sink == nil {
		sink = obs.Discard
	}
	r := &Recorder{sink: sink}
	if reg != nil {
		r.fails = reg.Counter(MetricValidateFails, "commit-time validation failures forcing re-execution")
	}
	return r
}

// ValidateFail records a validation failure of t at now. Remaining carries
// the full length the re-executed incarnation must serve (the rewind
// happens at the call site, so t.Remaining itself may not be rewound yet).
func (r *Recorder) ValidateFail(now float64, t *txn.Transaction) {
	if r.fails != nil {
		r.fails.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindValidateFail, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Length,
	})
}
