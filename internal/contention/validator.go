package contention

import (
	"repro/internal/txn"
)

// Validator is the commit-time validation engine: a single-version variant
// of the Block-STM read/validate/re-execute loop. Every dispatch opens an
// incarnation stamped with the current commit sequence number; at
// completion, CommitCheck re-reads the version of every key in the
// transaction's read set and fails the incarnation if any was written by a
// commit after the incarnation began. A failed incarnation is the
// contention-driven replacement for the fault injector's random abort draw:
// the run loop rewinds the transaction to its full length and re-queues it,
// and the next dispatch opens a fresh incarnation.
//
// Commit order is the run loop's completion order, which is deterministic,
// so the whole validate/re-execute schedule is a pure function of the seed.
// Termination is structural: an incarnation fails only if some *other*
// transaction committed during its window, and every transaction commits
// exactly once, so a workload of n transactions sees at most n-1 failures
// per transaction (quadratic worst case, reached only under total overlap).
type Validator struct {
	// lastWrite[k] is the commit sequence number of the last committed
	// write to key k (0 = never written).
	lastWrite []uint64
	// begin[id] is the commit sequence number observed when transaction
	// id's current incarnation was dispatched; valid while open[id].
	begin []uint64
	open  []bool
	// seq counts commits that wrote at least one key.
	seq   uint64
	fails int
}

// NewValidator builds a validator sized for set. It returns nil when no
// transaction carries key sets — the caller's nil check is the "contention
// model off" switch, keeping plain workloads on the exact pre-contention
// code path.
//
//lint:coldpath validator construction is per-run setup
func NewValidator(set *txn.Set) *Validator {
	if !HasKeys(set) {
		return nil
	}
	maxKey := txn.Key(-1)
	for _, t := range set.Txns {
		for _, k := range t.Reads {
			if k > maxKey {
				maxKey = k
			}
		}
		for _, k := range t.Writes {
			if k > maxKey {
				maxKey = k
			}
		}
	}
	return &Validator{
		lastWrite: make([]uint64, int(maxKey)+1),
		begin:     make([]uint64, set.Len()),
		open:      make([]bool, set.Len()),
	}
}

// Begin opens an incarnation of t at the current commit sequence. It is
// idempotent while the incarnation stays open, so the run loops call it at
// every dispatch: re-dispatch after a preemption continues the same
// incarnation (the snapshot is as old as the first dispatch), while the
// first dispatch after a validation failure or crash rewind opens a fresh
// one.
func (v *Validator) Begin(t *txn.Transaction) {
	if !v.open[t.ID] {
		v.open[t.ID] = true
		v.begin[t.ID] = v.seq
	}
}

// CommitCheck validates t's open incarnation at completion time. On
// success it commits: the incarnation closes and t's writes are stamped
// with a fresh commit sequence number. On failure — some key in t's read
// set was written by a commit after the incarnation began — it closes the
// incarnation, counts the failure, and returns false; the caller must
// rewind t and re-queue it for a fresh incarnation.
func (v *Validator) CommitCheck(t *txn.Transaction) bool {
	for _, k := range t.Reads {
		if v.lastWrite[k] > v.begin[t.ID] {
			v.open[t.ID] = false
			v.fails++
			return false
		}
	}
	v.open[t.ID] = false
	if len(t.Writes) > 0 {
		v.seq++
		for _, k := range t.Writes {
			v.lastWrite[k] = v.seq
		}
	}
	return true
}

// Reset abandons t's open incarnation without committing, for rewinds that
// bypass the commit path: crash losses and cluster failovers. The next
// dispatch opens a fresh incarnation. Committed versions survive — in the
// cluster model the version table is the durable database, the incarnation
// the in-flight attempt.
func (v *Validator) Reset(t *txn.Transaction) {
	v.open[t.ID] = false
}

// Fails returns the number of validation failures so far.
func (v *Validator) Fails() int { return v.fails }
