package contention

import (
	"testing"

	"repro/internal/txn"
)

// validatorFixture builds a hand-keyed set: reader 0 reads key 5, writer 1
// writes key 5, bystander 2 touches key 9 only.
func validatorFixture(t *testing.T) *txn.Set {
	t.Helper()
	txns := []*txn.Transaction{
		{ID: 0, Deadline: 10, Length: 1, Weight: 1, Reads: []txn.Key{5}},
		{ID: 1, Deadline: 10, Length: 1, Weight: 1, Reads: []txn.Key{2}, Writes: []txn.Key{5}},
		{ID: 2, Deadline: 10, Length: 1, Weight: 1, Reads: []txn.Key{9}, Writes: []txn.Key{9}},
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNewValidatorNilOnKeylessSet(t *testing.T) {
	set, err := txn.NewSet([]*txn.Transaction{{ID: 0, Deadline: 1, Length: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v := NewValidator(set); v != nil {
		t.Fatal("keyless set got a validator; plain workloads must stay on the pre-contention path")
	}
}

// TestValidatorInvalidation is the core Block-STM loop: a reader whose
// incarnation spans a conflicting commit fails validation once, then
// succeeds on re-execution.
func TestValidatorInvalidation(t *testing.T) {
	set := validatorFixture(t)
	v := NewValidator(set)
	reader, writer := set.Txns[0], set.Txns[1]

	v.Begin(reader)
	v.Begin(writer)
	if !v.CommitCheck(writer) {
		t.Fatal("writer with no prior commits failed validation")
	}
	if v.CommitCheck(reader) {
		t.Fatal("reader survived validation across a conflicting commit")
	}
	if v.Fails() != 1 {
		t.Fatalf("Fails() = %d, want 1", v.Fails())
	}
	// Re-execution: the fresh incarnation begins after the write, sees it.
	v.Begin(reader)
	if !v.CommitCheck(reader) {
		t.Fatal("re-executed reader failed validation with no new commits")
	}
	if v.Fails() != 1 {
		t.Fatalf("Fails() = %d after clean commit, want 1", v.Fails())
	}
}

// TestValidatorBeginIdempotent: Begin at re-dispatch after a preemption must
// not refresh the snapshot — the incarnation is as old as its first dispatch.
func TestValidatorBeginIdempotent(t *testing.T) {
	set := validatorFixture(t)
	v := NewValidator(set)
	reader, writer := set.Txns[0], set.Txns[1]

	v.Begin(reader)
	v.Begin(writer)
	if !v.CommitCheck(writer) {
		t.Fatal("writer failed")
	}
	v.Begin(reader) // preemption re-dispatch: a no-op while open
	if v.CommitCheck(reader) {
		t.Fatal("re-dispatch Begin refreshed the snapshot and hid the conflict")
	}
}

// TestValidatorDisjointCommits: transactions with no read/write overlap
// never invalidate each other regardless of interleaving.
func TestValidatorDisjointCommits(t *testing.T) {
	set := validatorFixture(t)
	v := NewValidator(set)
	reader, bystander := set.Txns[0], set.Txns[2]

	v.Begin(reader)
	v.Begin(bystander)
	if !v.CommitCheck(bystander) {
		t.Fatal("bystander failed")
	}
	if !v.CommitCheck(reader) {
		t.Fatal("commit to a disjoint key invalidated the reader")
	}
	if v.Fails() != 0 {
		t.Fatalf("Fails() = %d, want 0", v.Fails())
	}
}

// TestValidatorReset: a crash rewind abandons the incarnation without
// committing, but committed versions survive — the next incarnation
// snapshots the post-crash state and validates cleanly.
func TestValidatorReset(t *testing.T) {
	set := validatorFixture(t)
	v := NewValidator(set)
	reader, writer := set.Txns[0], set.Txns[1]

	v.Begin(reader)
	v.Begin(writer)
	if !v.CommitCheck(writer) {
		t.Fatal("writer failed")
	}
	v.Reset(reader) // crash loss: incarnation dies, no failure counted
	if v.Fails() != 0 {
		t.Fatalf("Reset counted a validation failure: Fails() = %d", v.Fails())
	}
	v.Begin(reader)
	if !v.CommitCheck(reader) {
		t.Fatal("post-crash incarnation saw a stale snapshot")
	}
}

// TestValidatorReadOnlyCommit: read-only commits do not advance the version
// clock, so concurrent readers never invalidate each other.
func TestValidatorReadOnlyCommit(t *testing.T) {
	txns := []*txn.Transaction{
		{ID: 0, Deadline: 10, Length: 1, Weight: 1, Reads: []txn.Key{3}},
		{ID: 1, Deadline: 10, Length: 1, Weight: 1, Reads: []txn.Key{3}},
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(set)
	v.Begin(set.Txns[0])
	v.Begin(set.Txns[1])
	if !v.CommitCheck(set.Txns[0]) || !v.CommitCheck(set.Txns[1]) {
		t.Fatal("overlapping read-only transactions invalidated each other")
	}
}
