// Package contention adds a data-contention model to the paper's otherwise
// conflict-free transactions (ROADMAP item 3, docs/CONTENTION.md):
// transactions carry read/write sets drawn over an abstract keyspace with
// Zipf-skewed hot keys, a validation engine detects read-set invalidation at
// commit time and forces deterministic re-execution with a new incarnation
// (the Block-STM read/validate/re-execute loop), and a conflict-deferring
// scheduler combinator steals non-conflicting work past a
// predicted-conflicting queue head so validation failures are avoided
// rather than merely retried.
//
// Everything is seed-deterministic: key sets are a pure function of
// (Keyspace, transaction ID), the validator's version counters advance only
// on commits, and the deferrer probes its wrapped policy in a fixed order —
// so identical seeds produce byte-identical validate/abort schedules on any
// worker count (docs/PARALLELISM.md).
package contention

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/txn"
)

// Keyspace describes the abstract database a contended workload draws its
// read/write sets from. The zero value means "no contention model": Assign
// on a zero Keyspace is rejected by Validate, and transactions without key
// sets never validate-fail.
type Keyspace struct {
	// Keys is the number of rows in the keyspace. Smaller keyspaces are
	// hotter: with Zipf skew the collision probability between two
	// transactions rises steeply as Keys shrinks (the contention knee in
	// BENCH_contention.json sweeps Keys downward).
	Keys int
	// Alpha is the Zipf skew of key popularity: 0 is uniform, larger
	// concentrates accesses on a few hot rows. Typical OLTP-like skew is
	// 0.8–1.1.
	Alpha float64
	// Reads is the read-set size drawn for every transaction (distinct
	// keys; reads may additionally overlap the transaction's own writes).
	Reads int
	// Writes is the write-set size drawn for read-write transactions.
	Writes int
	// ReadOnlyProb is the probability a transaction is read-only (empty
	// write set). Read-only transactions can validate-fail but never
	// invalidate others.
	ReadOnlyProb float64
	// Seed isolates the key-draw stream from the arrival/length stream of
	// the workload generator. Zero is a valid seed; workload.Spec derives
	// one from the workload seed when left unset.
	Seed uint64
}

// Validate checks the keyspace parameters.
func (ks *Keyspace) Validate() error {
	if ks.Keys <= 0 {
		return fmt.Errorf("contention: keyspace needs a positive key count, got %d", ks.Keys)
	}
	if ks.Alpha < 0 {
		return fmt.Errorf("contention: negative zipf alpha %v", ks.Alpha)
	}
	if ks.Reads < 0 || ks.Writes < 0 {
		return fmt.Errorf("contention: negative set size (reads %d, writes %d)", ks.Reads, ks.Writes)
	}
	if ks.Reads == 0 && ks.Writes == 0 {
		return fmt.Errorf("contention: keyspace with empty read and write sets models no contention")
	}
	if ks.Reads > ks.Keys || ks.Writes > ks.Keys {
		return fmt.Errorf("contention: set sizes (reads %d, writes %d) exceed keyspace size %d", ks.Reads, ks.Writes, ks.Keys)
	}
	if ks.ReadOnlyProb < 0 || ks.ReadOnlyProb > 1 {
		return fmt.Errorf("contention: read-only probability %v outside [0, 1]", ks.ReadOnlyProb)
	}
	return nil
}

// Assign draws a read set and a write set for every transaction in set.
// The draw is a pure function of (Keyspace, transaction ID): each
// transaction samples from its own rng.Derive(ks.Seed, ID) stream, so
// regenerating a workload, cloning it, or assigning the same keyspace on
// another instance yields bit-identical key sets regardless of assignment
// order. Sets are sorted and duplicate-free (txn.Set.Validate's invariant);
// reads may overlap the transaction's own writes.
//
//lint:coldpath key assignment is workload construction, before any event loop
func Assign(set *txn.Set, ks Keyspace) error {
	if err := ks.Validate(); err != nil {
		return err
	}
	zipf, err := rng.NewZipf(0, ks.Keys-1, ks.Alpha)
	if err != nil {
		return err
	}
	for _, t := range set.Txns {
		src := rng.New(rng.Derive(ks.Seed, uint64(t.ID)))
		readOnly := src.Float64() < ks.ReadOnlyProb
		nw := ks.Writes
		if readOnly {
			nw = 0
		}
		t.Writes = drawDistinct(src, zipf, nw)
		t.Reads = drawDistinct(src, zipf, ks.Reads)
	}
	return set.Validate()
}

// drawDistinct samples n distinct keys by rejection and returns them sorted.
// Rejection terminates because Validate caps n at the keyspace size; with
// the recommended n << Keys the expected number of redraws is tiny.
func drawDistinct(src *rng.Source, zipf *rng.Zipf, n int) []txn.Key {
	if n == 0 {
		return nil
	}
	keys := make([]txn.Key, 0, n)
	for len(keys) < n {
		k := txn.Key(zipf.Sample(src))
		dup := false
		for _, have := range keys {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	// Insertion sort: n is a handful of keys.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// HasKeys reports whether any transaction in set carries a read or write
// set — the switch that turns on commit-time validation in the run loops.
func HasKeys(set *txn.Set) bool {
	for _, t := range set.Txns {
		if len(t.Reads) > 0 || len(t.Writes) > 0 {
			return true
		}
	}
	return false
}
