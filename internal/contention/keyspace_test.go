package contention

import (
	"reflect"
	"testing"

	"repro/internal/txn"
)

// keyspaceFixture builds a small independent set with no key assignments.
func keyspaceFixture(t *testing.T, n int) *txn.Set {
	t.Helper()
	txns := make([]*txn.Transaction, n)
	for i := range txns {
		txns[i] = &txn.Transaction{
			ID: txn.ID(i), Arrival: float64(i), Deadline: float64(i + 10),
			Length: 2, Weight: 1,
		}
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestKeyspaceValidateRejects(t *testing.T) {
	cases := map[string]Keyspace{
		"zero value":         {},
		"no keys":            {Keys: 0, Reads: 2, Writes: 1},
		"negative alpha":     {Keys: 8, Alpha: -1, Reads: 2, Writes: 1},
		"negative reads":     {Keys: 8, Reads: -1, Writes: 1},
		"negative writes":    {Keys: 8, Reads: 2, Writes: -1},
		"empty sets":         {Keys: 8, Reads: 0, Writes: 0},
		"reads over keys":    {Keys: 4, Reads: 5, Writes: 1},
		"writes over keys":   {Keys: 4, Reads: 1, Writes: 5},
		"readonly prob low":  {Keys: 8, Reads: 2, Writes: 1, ReadOnlyProb: -0.1},
		"readonly prob high": {Keys: 8, Reads: 2, Writes: 1, ReadOnlyProb: 1.1},
	}
	for name, ks := range cases {
		if err := ks.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, ks)
		}
	}
	ok := Keyspace{Keys: 64, Alpha: 0.9, Reads: 4, Writes: 2, ReadOnlyProb: 0.3}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid keyspace rejected: %v", err)
	}
}

// TestAssignShape: every transaction gets the configured set sizes, sorted,
// duplicate-free, in range — the invariants txn.Set.Validate enforces.
func TestAssignShape(t *testing.T) {
	set := keyspaceFixture(t, 50)
	ks := Keyspace{Keys: 32, Alpha: 0.9, Reads: 4, Writes: 2, Seed: 7}
	if err := Assign(set, ks); err != nil {
		t.Fatal(err)
	}
	for _, tx := range set.Txns {
		if len(tx.Reads) != ks.Reads || len(tx.Writes) != ks.Writes {
			t.Fatalf("txn %d: drew %d reads, %d writes; want %d, %d",
				tx.ID, len(tx.Reads), len(tx.Writes), ks.Reads, ks.Writes)
		}
		for _, keys := range [][]txn.Key{tx.Reads, tx.Writes} {
			for i, k := range keys {
				if k < 0 || int(k) >= ks.Keys {
					t.Fatalf("txn %d: key %d outside [0, %d)", tx.ID, k, ks.Keys)
				}
				if i > 0 && keys[i-1] >= k {
					t.Fatalf("txn %d: key set %v not sorted and distinct", tx.ID, keys)
				}
			}
		}
	}
	if !HasKeys(set) {
		t.Fatal("HasKeys false after Assign")
	}
}

// TestAssignDeterministic: the draw is a pure function of (Keyspace, ID) —
// assigning the same keyspace to a clone, or assigning twice, yields
// bit-identical sets.
func TestAssignDeterministic(t *testing.T) {
	ks := Keyspace{Keys: 64, Alpha: 0.9, Reads: 4, Writes: 2, ReadOnlyProb: 0.5, Seed: 11}
	a := keyspaceFixture(t, 40)
	b := a.Clone()
	if err := Assign(a, ks); err != nil {
		t.Fatal(err)
	}
	if err := Assign(b, ks); err != nil {
		t.Fatal(err)
	}
	for i := range a.Txns {
		if !reflect.DeepEqual(a.Txns[i].Reads, b.Txns[i].Reads) ||
			!reflect.DeepEqual(a.Txns[i].Writes, b.Txns[i].Writes) {
			t.Fatalf("txn %d: same keyspace drew different sets:\n%v/%v\n%v/%v",
				i, a.Txns[i].Reads, a.Txns[i].Writes, b.Txns[i].Reads, b.Txns[i].Writes)
		}
	}
	// A different stream seed must move at least one set.
	c := keyspaceFixture(t, 40)
	ks.Seed = 12
	if err := Assign(c, ks); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Txns {
		if !reflect.DeepEqual(a.Txns[i].Reads, c.Txns[i].Reads) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing Keyspace.Seed left every read set unchanged")
	}
}

// TestAssignReadOnly: ReadOnlyProb 1 produces only read-only transactions
// (nil write sets), ReadOnlyProb 0 none.
func TestAssignReadOnly(t *testing.T) {
	set := keyspaceFixture(t, 30)
	if err := Assign(set, Keyspace{Keys: 16, Reads: 2, Writes: 2, ReadOnlyProb: 1}); err != nil {
		t.Fatal(err)
	}
	for _, tx := range set.Txns {
		if tx.Writes != nil {
			t.Fatalf("txn %d: read-only workload drew writes %v", tx.ID, tx.Writes)
		}
	}
	set = keyspaceFixture(t, 30)
	if err := Assign(set, Keyspace{Keys: 16, Reads: 2, Writes: 2, ReadOnlyProb: 0}); err != nil {
		t.Fatal(err)
	}
	for _, tx := range set.Txns {
		if len(tx.Writes) != 2 {
			t.Fatalf("txn %d: write set %v, want 2 keys", tx.ID, tx.Writes)
		}
	}
}

func TestAssignRejectsInvalidKeyspace(t *testing.T) {
	set := keyspaceFixture(t, 4)
	if err := Assign(set, Keyspace{}); err == nil {
		t.Fatal("Assign accepted the zero keyspace")
	}
	if HasKeys(set) {
		t.Fatal("failed Assign left key sets behind")
	}
}

func TestHasKeysFalseOnPlainWorkload(t *testing.T) {
	if HasKeys(keyspaceFixture(t, 4)) {
		t.Fatal("HasKeys true on a keyless set")
	}
}
