package contention

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/txn"
)

// queueSched is a transparent FIFO inner policy for exercising the wrapper:
// Next pops the front, OnPreempt re-appends (so deferred candidates land at
// the back in probe order), OnCompletion drops.
type queueSched struct {
	q []*txn.Transaction
}

func (s *queueSched) Name() string      { return "FIFO" }
func (s *queueSched) Init(set *txn.Set) { s.q = s.q[:0] }
func (s *queueSched) OnArrival(now float64, t *txn.Transaction) {
	s.q = append(s.q, t)
}
func (s *queueSched) Next(now float64) *txn.Transaction {
	if len(s.q) == 0 {
		return nil
	}
	t := s.q[0]
	s.q = s.q[1:]
	return t
}
func (s *queueSched) OnPreempt(now float64, t *txn.Transaction)    { s.q = append(s.q, t) }
func (s *queueSched) OnCompletion(now float64, t *txn.Transaction) {}

// deferFixture: t0 writes key 1; t1 reads key 1 (conflicts with t0);
// t2 touches key 7 only (conflicts with nobody); t3 reads key 1 too.
func deferFixture(t *testing.T) *txn.Set {
	t.Helper()
	txns := []*txn.Transaction{
		{ID: 0, Deadline: 10, Length: 2, Weight: 1, Reads: []txn.Key{0}, Writes: []txn.Key{1}},
		{ID: 1, Deadline: 10, Length: 2, Weight: 1, Reads: []txn.Key{1}},
		{ID: 2, Deadline: 10, Length: 2, Weight: 1, Reads: []txn.Key{7}, Writes: []txn.Key{7}},
		{ID: 3, Deadline: 10, Length: 2, Weight: 1, Reads: []txn.Key{1}, Writes: []txn.Key{2}},
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestDeferringSteal: with the conflicting head's writer checked out, the
// wrapper skips past it to the first non-conflicting candidate, emits one
// conflict_defer event per skipped transaction, and returns the skipped
// ones to the inner policy.
func TestDeferringSteal(t *testing.T) {
	set := deferFixture(t)
	inner := &queueSched{}
	d := NewDeferring(inner, 4)
	col := &obs.Collector{}
	d.SetSink(col)
	d.Init(set)
	for _, tx := range set.Txns {
		d.OnArrival(0, tx)
	}

	if got := d.Next(0); got != set.Txns[0] {
		t.Fatalf("first Next = %v, want t0 (empty busy set defers nothing)", got)
	}
	// t0 (writes key 1) is busy; FIFO head t1 reads key 1 → conflict; t2 is
	// clean and must be stolen past it.
	if got := d.Next(0); got != set.Txns[2] {
		t.Fatalf("second Next = %v, want the non-conflicting t2", got)
	}
	defers := 0
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindConflictDefer {
			defers++
			if ev.Txn != 1 {
				t.Fatalf("conflict_defer for txn %d, want the deferred t1", ev.Txn)
			}
		}
	}
	if defers != 1 {
		t.Fatalf("%d conflict_defer events, want 1", defers)
	}
	// The deferred t1 went back to the inner queue, not lost.
	if len(inner.q) != 2 || inner.q[0] != set.Txns[3] || inner.q[1] != set.Txns[1] {
		t.Fatalf("inner queue after steal = %v", inner.q)
	}
}

// TestDeferringWorkConserving: when every probed candidate conflicts with
// the busy set, the wrapper dispatches the original head anyway and emits
// no defer events.
func TestDeferringWorkConserving(t *testing.T) {
	set := deferFixture(t)
	inner := &queueSched{}
	d := NewDeferring(inner, 4)
	col := &obs.Collector{}
	d.SetSink(col)
	d.Init(set)
	// Only the writer and the two conflicting readers arrive.
	d.OnArrival(0, set.Txns[0])
	d.OnArrival(0, set.Txns[1])
	d.OnArrival(0, set.Txns[3])

	if got := d.Next(0); got != set.Txns[0] {
		t.Fatalf("first Next = %v, want t0", got)
	}
	if got := d.Next(0); got != set.Txns[1] {
		t.Fatalf("all-conflicting Next = %v, want the original head t1", got)
	}
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindConflictDefer {
			t.Fatal("work-conserving fallback emitted a conflict_defer event")
		}
	}
	// t3 was probed and returned; it must still be dispatchable.
	if got := d.Next(0); got != set.Txns[3] {
		t.Fatalf("third Next = %v, want the returned t3", got)
	}
}

// TestDeferringOpenIncarnations: a preempted transaction with partial
// progress keeps its read snapshot open, so conflicting work is deferred
// around it even though no server holds it; a rewind to full length closes
// it.
func TestDeferringOpenIncarnations(t *testing.T) {
	set := deferFixture(t)
	inner := &queueSched{}
	d := NewDeferring(inner, 4)
	d.Init(set)
	d.OnArrival(0, set.Txns[0])
	d.OnArrival(0, set.Txns[1])
	d.OnArrival(0, set.Txns[2])

	if got := d.Next(0); got != set.Txns[0] {
		t.Fatalf("Next = %v, want t0", got)
	}
	// t0 is preempted mid-incarnation: still busy for conflict purposes.
	set.Txns[0].Remaining = 1
	d.OnPreempt(1, set.Txns[0])
	if got := d.Next(1); got != set.Txns[2] {
		t.Fatalf("Next past an open incarnation = %v, want t2", got)
	}
	d.OnCompletion(2, set.Txns[2])
	// Validation failure rewinds t0 to full length: its snapshot is gone,
	// t1 no longer conflicts with anything open.
	if got := d.Next(2); got != set.Txns[0] {
		t.Fatalf("Next = %v, want the re-queued t0", got)
	}
	set.Txns[0].Remaining = set.Txns[0].Length
	d.OnPreempt(2, set.Txns[0])
	if got := d.Next(2); got != set.Txns[1] {
		t.Fatalf("Next after rewind = %v, want t1 (no open snapshot left)", got)
	}
}

func TestDeferringNameAndUnwrap(t *testing.T) {
	inner := &queueSched{}
	d := NewDeferring(inner, 0)
	if d.Name() != "CA-FIFO" {
		t.Fatalf("Name() = %q", d.Name())
	}
	if d.Unwrap() != inner {
		t.Fatal("Unwrap lost the inner policy")
	}
	if d.window != DefaultWindow {
		t.Fatalf("window = %d, want DefaultWindow on non-positive input", d.window)
	}
}
