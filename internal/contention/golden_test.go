// Golden determinism tests for the contention model: identical seeds must
// produce byte-identical decision-event streams — validation failures and
// conflict deferrals included — for every policy, on any worker count.
// These live in an external test package because they drive the full
// sim/workload stack, which imports contention.
package contention_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// goldenServers matches the contention benchmark's parallel-dispatch regime.
const goldenServers = 4

// goldenSpec is a hot contended workload: small keyspace, strong skew, load
// for four servers.
func goldenSpec(n int, seed uint64) workload.Spec {
	return workload.NewSpec(0.85*goldenServers, seed).WithN(n).
		WithContention(contention.Keyspace{Keys: 256, Alpha: 0.9, Reads: 4, Writes: 2})
}

// goldenRun executes one contended run and returns its JSON-encoded event
// stream.
func goldenRun(t *testing.T, seed uint64, newSched func() sched.Scheduler) []byte {
	t.Helper()
	set, err := goldenSpec(200, seed).Build()
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	if _, err := sim.New(sim.Config{Servers: goldenServers, Sink: col}).Run(set, newSched()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, ev := range col.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestGoldenSchedules: for every policy — contention-blind and
// conflict-aware — two runs from the same seed replay bit-identically, and
// the stream carries the contention events the policy is expected to emit.
func TestGoldenSchedules(t *testing.T) {
	policies := []struct {
		name       string
		wantDefers bool
		newSched   func() sched.Scheduler
	}{
		{"asets", false, func() sched.Scheduler { return core.New() }},
		{"asets-ca", true, func() sched.Scheduler { return contention.NewDeferring(core.New(), 0) }},
		{"edf-ca", true, func() sched.Scheduler { return contention.NewDeferring(sched.NewEDF(), 0) }},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			a := goldenRun(t, 42, pol.newSched)
			b := goldenRun(t, 42, pol.newSched)
			if !bytes.Equal(a, b) {
				t.Fatal("fixed-seed event streams differ between runs")
			}
			c := goldenRun(t, 43, pol.newSched)
			if bytes.Equal(a, c) {
				t.Fatal("different seeds produced identical event streams")
			}
			fails := bytes.Count(a, []byte(obs.KindValidateFail.String()))
			if fails == 0 {
				t.Fatal("hot contended run produced no validate_fail events")
			}
			defers := bytes.Count(a, []byte(obs.KindConflictDefer.String()))
			if pol.wantDefers && defers == 0 {
				t.Fatal("conflict-aware run produced no conflict_defer events")
			}
			if !pol.wantDefers && defers != 0 {
				t.Fatalf("blind policy emitted %d conflict_defer events", defers)
			}
		})
	}
}

// TestGoldenValidateFailAccounting: the summary's ValidateFails equals the
// validate_fail events in the stream, and each failed transaction still
// completes exactly once.
func TestGoldenValidateFailAccounting(t *testing.T) {
	set, err := goldenSpec(200, 7).Build()
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	sum, err := sim.New(sim.Config{Servers: goldenServers, Sink: col}).Run(set, core.New())
	if err != nil {
		t.Fatal(err)
	}
	fails, completions := 0, 0
	for _, ev := range col.Events() {
		switch ev.Kind {
		case obs.KindValidateFail:
			fails++
		case obs.KindCompletion:
			completions++
		}
	}
	if fails != sum.ValidateFails {
		t.Fatalf("stream has %d validate_fail events, summary says %d", fails, sum.ValidateFails)
	}
	if fails == 0 {
		t.Fatal("hot contended run produced no validation failures")
	}
	if completions != set.Len() {
		t.Fatalf("%d completions for %d transactions: re-execution lost or duplicated work", completions, set.Len())
	}
	for _, tx := range set.Txns {
		if !tx.Finished {
			t.Fatalf("txn %d never finished", tx.ID)
		}
	}
}

// TestContentionHammer races contended conflict-aware runs across pool
// workers (the -race target of scripts/check.sh and CI) and checks the
// serial/parallel bit-exactness contract on the full event streams.
func TestContentionHammer(t *testing.T) {
	jobs := func() ([]runner.Job, []*obs.Collector) {
		var js []runner.Job
		var cols []*obs.Collector
		for s := uint64(0); s < 3; s++ {
			for _, newSched := range []func() sched.Scheduler{
				func() sched.Scheduler { return core.New() },
				func() sched.Scheduler { return contention.NewDeferring(core.New(), 0) },
			} {
				seed := 42 + s
				col := &obs.Collector{}
				cols = append(cols, col)
				js = append(js, runner.Job{
					Gen: func(sd uint64) (*txn.Set, error) {
						return goldenSpec(120, sd).Build()
					},
					Seed:   &seed,
					New:    newSched,
					Config: sim.Config{Servers: goldenServers, Sink: col, Metrics: obs.NewRegistry()},
					Label:  fmt.Sprintf("hammer-seed%d", seed),
				})
			}
		}
		return js, cols
	}
	digest := func(workers int) []byte {
		js, cols := jobs()
		if _, err := (runner.Pool{Workers: workers}).Run(context.Background(), js); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, col := range cols {
			for _, ev := range col.Events() {
				b, err := json.Marshal(ev)
				if err != nil {
					t.Fatal(err)
				}
				buf.Write(b)
				buf.WriteByte('\n')
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(digest(1), digest(4)) {
		t.Fatal("serial and 4-worker contended runs produced different event streams")
	}
}
