// Package report renders experiment results as aligned text tables, CSV for
// external plotting, and quick ASCII line charts for eyeballing the shape of
// each reproduced figure directly in a terminal.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve of an experiment figure: y-values sampled at
// the shared x-values of the owning Figure.
type Series struct {
	Name string
	Y    []float64
	// Err holds optional 95% confidence half-widths, parallel to Y.
	Err []float64
}

// Figure is the result of one reproduced experiment: a set of series over a
// common x-axis, plus the labels needed to render it.
type Figure struct {
	ID     string // e.g. "fig10"
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// AddSeries appends a curve; the length must match the x-axis.
func (f *Figure) AddSeries(name string, y, errs []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("report: series %q has %d points, figure %s has %d x-values", name, len(y), f.ID, len(f.X)))
	}
	f.Series = append(f.Series, Series{Name: name, Y: y, Err: errs})
}

// Table renders the figure as an aligned text table: one row per x-value,
// one column per series.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(f.X))
	for i, x := range f.X {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			cell := trimFloat(s.Y[i])
			if s.Err != nil && s.Err[i] > 0 {
				cell += fmt.Sprintf("±%s", trimFloat(s.Err[i]))
			}
			row = append(row, cell)
		}
		rows[i] = row
	}
	b.WriteString(renderAligned(headers, rows))
	return b.String()
}

// CSV renders the figure as RFC-4180-style comma-separated values with a
// header row (series names never contain commas or quotes in this repo, but
// fields are quoted defensively when needed).
func (f *Figure) CSV() string {
	var b strings.Builder
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	b.WriteString(csvRow(cols))
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%g", s.Y[i]))
		}
		b.WriteString(csvRow(row))
	}
	return b.String()
}

func csvRow(fields []string) string {
	out := make([]string, len(fields))
	for i, field := range fields {
		if strings.ContainsAny(field, ",\"\n") {
			field = "\"" + strings.ReplaceAll(field, "\"", "\"\"") + "\""
		}
		out[i] = field
	}
	return strings.Join(out, ",") + "\n"
}

// Chart renders a crude ASCII line chart of the figure: one mark per series
// per x-value on a height x width grid. It is deliberately simple — its job
// is letting a reader confirm "SRPT crosses EDF around utilization 0.6 and
// ASETS* tracks the lower envelope" without leaving the terminal.
func (f *Figure) Chart(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	if len(f.X) == 0 || len(f.Series) == 0 {
		return "(empty figure)\n"
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Y {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte("*o+x#@%&")
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i, v := range s.Y {
			col := 0
			if len(f.X) > 1 {
				col = i * (width - 1) / (len(f.X) - 1)
			}
			rowf := (v - ymin) / (ymax - ymin)
			row := height - 1 - int(rowf*float64(height-1)+0.5)
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "y: %s  [%s .. %s]\n", f.YLabel, trimFloat(ymin), trimFloat(ymax))
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "+-%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "x: %s  [%s .. %s]   ", f.XLabel, trimFloat(f.X[0]), trimFloat(f.X[len(f.X)-1]))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%c=%s ", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

// trimFloat formats a float compactly: integers without decimals, otherwise
// four significant decimals with trailing zeros trimmed.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// renderAligned lays out rows under headers with two-space gutters.
func renderAligned(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
