package report

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/txn"
	"repro/internal/workload"
)

// runStream simulates an overloaded weighted workload with the SLO engine on
// and returns the collected event stream plus the set.
func runStream(t *testing.T, seed uint64) ([]obs.Event, *txn.Set) {
	t.Helper()
	cfg := workload.Default(1.4, seed).WithWeights()
	cfg.N = 250
	set := workload.MustGenerate(cfg)
	col := &obs.Collector{}
	sc := &slo.Config{Spec: slo.DefaultSpec(), Window: 50}
	if _, err := sim.New(sim.Config{Sink: col, SLO: sc}).Run(set, sched.NewEDF()); err != nil {
		t.Fatal(err)
	}
	return col.Events(), set
}

func TestRunReportSections(t *testing.T) {
	evs, set := runStream(t, 0x9E10)
	spec := slo.DefaultSpec()
	rep := GenerateRun(evs, RunOptions{Set: set, Spec: &spec, Title: "EDF overload"})
	out := rep.Render()

	for _, want := range []string{
		"# EDF overload",
		"## Per-class percentiles",
		"## Error-budget spend",
		"## Alert timeline",
		"## Worst offenders",
		"| light |",
		"| medium |",
		"| heavy |",
		"FIRE",
		"Still firing at stream end:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// 250 transactions all complete; the three class rows must sum to 250.
	if !strings.Contains(out, "250 completed") {
		t.Error("completion count not reported")
	}
}

func TestRunReportWithoutSetCollapsesToOneClass(t *testing.T) {
	evs, _ := runStream(t, 0x9E11)
	out := GenerateRun(evs, RunOptions{}).Render()
	if !strings.Contains(out, "| all |") {
		t.Error("set-less report should bucket everything under 'all'")
	}
	for _, absent := range []string{"| light |", "## Error-budget spend"} {
		if strings.Contains(out, absent) {
			t.Errorf("set-less report should not contain %q", absent)
		}
	}
}

func TestRunReportEmptyStream(t *testing.T) {
	out := GenerateRun(nil, RunOptions{}).Render()
	for _, want := range []string{
		"0 arrived, 0 completed",
		"No SLO alerts in the stream",
		"No transaction missed its deadline.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty report missing %q", want)
		}
	}
}

func TestRunReportOffenderBound(t *testing.T) {
	evs, set := runStream(t, 0x9E12)
	out := GenerateRun(evs, RunOptions{Set: set, Offenders: 3}).Render()
	tail := out[strings.Index(out, "## Worst offenders"):]
	rows := strings.Count(tail, "\n| ") - 1 // minus the header row
	if rows != 3 {
		t.Fatalf("offender table has %d rows, want 3\n%s", rows, tail)
	}
}

// TestRunReportDeterministic: the same stream renders byte-identically, and
// two independent replays of the same seed produce the same report.
func TestRunReportDeterministic(t *testing.T) {
	evs, set := runStream(t, 0x9E13)
	spec := slo.DefaultSpec()
	a := GenerateRun(evs, RunOptions{Set: set, Spec: &spec}).Render()
	b := GenerateRun(evs, RunOptions{Set: set, Spec: &spec}).Render()
	if a != b {
		t.Fatal("re-rendering the same stream changed the report")
	}
	evs2, set2 := runStream(t, 0x9E13)
	c := GenerateRun(evs2, RunOptions{Set: set2, Spec: &spec}).Render()
	if a != c {
		t.Fatal("replaying the same seed changed the report")
	}
}

// TestRunReportSerialParallelStable: reports rendered from the serial and
// 4-worker runner streams of the same jobs are identical — the report-level
// face of the byte-identical stream contract (docs/PARALLELISM.md).
func TestRunReportSerialParallelStable(t *testing.T) {
	render := func(workers int) []string {
		jobs := make([]runner.Job, 2)
		cols := make([]*obs.Collector, 2)
		for i := range jobs {
			seed := uint64(100 + i)
			col := &obs.Collector{}
			cols[i] = col
			jobs[i] = runner.Job{
				Gen: func(sd uint64) (*txn.Set, error) {
					cfg := workload.Default(1.4, sd).WithWeights()
					cfg.N = 200
					return workload.Spec{Config: cfg}.Build()
				},
				Seed: &seed,
				New:  sched.NewEDF,
				Config: sim.Config{
					Sink: col,
					SLO:  &slo.Config{Spec: slo.DefaultSpec(), Window: 50},
				},
			}
		}
		if _, err := (runner.Pool{Workers: workers}).Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
		outs := make([]string, len(jobs))
		for i := range jobs {
			spec := slo.DefaultSpec()
			outs[i] = GenerateRun(cols[i].Events(), RunOptions{Spec: &spec}).Render()
		}
		return outs
	}
	serial, parallel := render(1), render(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("job %d report differs between serial and 4-worker runs", i)
		}
	}
	if !strings.Contains(serial[0], "FIRE") {
		t.Fatal("overloaded report carries no alert; tighten the fixture")
	}
}
