package report

import (
	"strings"
	"testing"
)

func sample() *Figure {
	f := &Figure{
		ID:     "figX",
		Title:  "Sample",
		XLabel: "utilization",
		YLabel: "tardiness",
		X:      []float64{0.1, 0.2, 0.3},
	}
	f.AddSeries("EDF", []float64{1, 2, 4}, nil)
	f.AddSeries("SRPT", []float64{2, 2.5, 3}, []float64{0.1, 0.2, 0.3})
	return f
}

func TestTableContainsEverything(t *testing.T) {
	out := sample().Table()
	for _, want := range []string{"figX", "Sample", "utilization", "EDF", "SRPT", "0.1", "0.3", "2.5", "±0.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + separator + 3 data rows + title line.
	if len(lines) != 6 {
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := sample().Table()
	lines := strings.Split(out, "\n")
	header, sep := lines[1], lines[2]
	if len(header) == 0 || len(sep) == 0 {
		t.Fatal("missing header or separator")
	}
	if len(sep) < len("utilization") {
		t.Error("separator shorter than first column header")
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "utilization,EDF,SRPT" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.1,1,2" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestCSVQuoting(t *testing.T) {
	f := &Figure{ID: "q", XLabel: "x,com\"ma", X: []float64{1}}
	f.AddSeries("plain", []float64{2}, nil)
	out := f.CSV()
	if !strings.Contains(out, `"x,com""ma"`) {
		t.Errorf("quoting failed: %q", out)
	}
}

func TestAddSeriesLengthMismatchPanics(t *testing.T) {
	f := &Figure{ID: "f", X: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series accepted")
		}
	}()
	f.AddSeries("bad", []float64{1}, nil)
}

func TestChartRenders(t *testing.T) {
	out := sample().Chart(40, 10)
	if !strings.Contains(out, "figX") || !strings.Contains(out, "*=EDF") || !strings.Contains(out, "o=SRPT") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart has no marks")
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := &Figure{ID: "e", X: nil}
	if out := empty.Chart(40, 10); !strings.Contains(out, "empty") {
		t.Errorf("empty chart = %q", out)
	}
	flat := &Figure{ID: "flat", X: []float64{1, 2}}
	flat.AddSeries("s", []float64{5, 5}, nil)
	if out := flat.Chart(40, 10); out == "" {
		t.Error("flat chart empty")
	}
	tiny := sample().Chart(1, 1) // clamped to minimums
	if tiny == "" {
		t.Error("tiny chart empty")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.5:     "3.5",
		0.12345: "0.1235", // four decimals (rounded), trimmed
		-2:      "-2",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSinglePointChart(t *testing.T) {
	f := &Figure{ID: "one", X: []float64{5}}
	f.AddSeries("s", []float64{1}, nil)
	if out := f.Chart(30, 6); out == "" {
		t.Error("single-point chart empty")
	}
}
