// Run reports: the post-run explainer. A decision-event stream (asetssim
// -events JSONL, a collector snapshot, or the server's /events ring) is
// folded into a markdown document — per-class percentile tables, the alert
// timeline, error-budget spend and the worst-offender transactions — with no
// access to simulator internals.
//
// Determinism: the report is a pure function of the event stream plus the
// optional workload set and SLO spec. Byte-identical streams render
// byte-identical reports — the property the golden tests pin, and what makes
// the report a trustworthy artifact of the serial-vs-parallel equivalence
// contract (docs/PARALLELISM.md).

package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/txn"
)

// RunOptions configures run-report generation.
type RunOptions struct {
	// Set, when non-nil, attaches the replayed workload so transactions are
	// grouped into weight classes; without it every transaction lands in a
	// single "all" class.
	Set *txn.Set
	// Spec, when non-nil, prices the error budget: each class's deadline
	// misses are charged against its miss-ratio target.
	Spec *slo.Spec
	// Offenders bounds the worst-offender table; 0 selects 10.
	Offenders int
	// Title overrides the report heading; empty selects "Run report".
	Title string
}

// classStats accumulates one class's completions.
type classStats struct {
	name      string
	completed int
	misses    int
	tardiness []float64
	response  []float64
	maxTard   float64
}

// alertEntry is one fire/resolve transition in the timeline.
type alertEntry struct {
	time   float64
	kind   obs.Kind
	detail string
	ratio  float64
}

// offender is one row of the worst-offender table.
type offender struct {
	id       txn.ID
	deadline float64
	finish   float64
	tard     float64
}

// RunReport is the folded run, ready to render.
type RunReport struct {
	opts RunOptions

	events      int
	start, end  float64
	arrivals    int
	completions int
	misses      int
	sheds       int
	aborts      int
	failovers   int

	classes []*classStats
	alerts  []alertEntry
	active  map[string]bool // alert detail -> firing at stream end
	worst   []offender
}

// GenerateRun folds a time-ordered event stream into a RunReport.
func GenerateRun(evs []obs.Event, opts RunOptions) *RunReport {
	if opts.Offenders <= 0 {
		opts.Offenders = 10
	}
	r := &RunReport{opts: opts, active: map[string]bool{}}
	if opts.Set != nil {
		for i := 0; i < obs.NumWeightClasses; i++ {
			r.classes = append(r.classes, &classStats{name: obs.ClassName(i)})
		}
	} else {
		r.classes = []*classStats{{name: "all"}}
	}

	arrival := map[txn.ID]float64{}
	r.events = len(evs)
	if len(evs) > 0 {
		r.start, r.end = evs[0].Time, evs[len(evs)-1].Time
	}
	for _, ev := range evs {
		switch ev.Kind {
		case obs.KindArrival:
			r.arrivals++
			arrival[ev.Txn] = ev.Time
		case obs.KindCompletion:
			r.completions++
			cs := r.classFor(ev.Txn)
			cs.completed++
			cs.tardiness = append(cs.tardiness, ev.Tardiness)
			if ev.Tardiness > cs.maxTard {
				cs.maxTard = ev.Tardiness
			}
			if at, ok := arrival[ev.Txn]; ok {
				cs.response = append(cs.response, ev.Time-at)
			}
			if ev.Tardiness > 0 {
				cs.misses++
				r.misses++
				r.worst = append(r.worst, offender{
					id: ev.Txn, deadline: ev.Deadline, finish: ev.Time, tard: ev.Tardiness,
				})
			}
		case obs.KindShed:
			r.sheds++
		case obs.KindAbort:
			r.aborts++
		case obs.KindFailover:
			r.failovers++
		case obs.KindAlertFire, obs.KindAlertResolve:
			r.alerts = append(r.alerts, alertEntry{time: ev.Time, kind: ev.Kind, detail: ev.Detail, ratio: ev.Deadline})
			r.active[ev.Detail] = ev.Kind == obs.KindAlertFire
		case obs.KindDispatch, obs.KindPreempt, obs.KindDeadlineMiss,
			obs.KindRestart, obs.KindAging, obs.KindModeSwitch, obs.KindStall,
			obs.KindDegradeEnter, obs.KindDegradeExit, obs.KindEject,
			obs.KindRecover, obs.KindRoute, obs.KindValidateFail,
			obs.KindConflictDefer:
			// Intermediate scheduling transitions; the report summarizes
			// outcomes, not the decision trace.
		}
	}

	// Worst offenders: by tardiness descending, ties by ID for determinism.
	sort.SliceStable(r.worst, func(i, j int) bool {
		if r.worst[i].tard != r.worst[j].tard {
			return r.worst[i].tard > r.worst[j].tard
		}
		return r.worst[i].id < r.worst[j].id
	})
	if len(r.worst) > opts.Offenders {
		r.worst = r.worst[:opts.Offenders]
	}
	return r
}

// classFor maps a transaction to its stats bucket.
func (r *RunReport) classFor(id txn.ID) *classStats {
	if r.opts.Set == nil {
		return r.classes[0]
	}
	if int(id) >= 0 && int(id) < r.opts.Set.Len() {
		return r.classes[obs.WeightClassIndex(r.opts.Set.Txns[id].Weight)]
	}
	return r.classes[len(r.classes)-1]
}

// runPercentile returns the exact nearest-rank p-quantile of sorted, or 0
// for an empty slice.
func runPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Render produces the markdown report.
func (r *RunReport) Render() string {
	var b strings.Builder
	title := r.opts.Title
	if title == "" {
		title = "Run report"
	}
	fmt.Fprintf(&b, "# %s\n\n", title)
	fmt.Fprintf(&b, "- events: %d spanning t=%s .. t=%s\n", r.events, runF(r.start), runF(r.end))
	fmt.Fprintf(&b, "- transactions: %d arrived, %d completed, %d missed their deadline\n",
		r.arrivals, r.completions, r.misses)
	if r.sheds > 0 || r.aborts > 0 || r.failovers > 0 {
		fmt.Fprintf(&b, "- robustness: %d shed, %d aborts, %d failovers\n", r.sheds, r.aborts, r.failovers)
	}
	b.WriteString("\n")

	r.renderClasses(&b)
	r.renderBudget(&b)
	r.renderAlerts(&b)
	r.renderOffenders(&b)
	return b.String()
}

func (r *RunReport) renderClasses(b *strings.Builder) {
	b.WriteString("## Per-class percentiles\n\n")
	b.WriteString("| class | n | miss% | tard p50 | tard p95 | tard p99 | tard max | resp p50 | resp p95 | resp p99 |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, cs := range r.classes {
		sort.Float64s(cs.tardiness)
		sort.Float64s(cs.response)
		missPct := 0.0
		if cs.completed > 0 {
			missPct = 100 * float64(cs.misses) / float64(cs.completed)
		}
		fmt.Fprintf(b, "| %s | %d | %.1f | %s | %s | %s | %s | %s | %s | %s |\n",
			cs.name, cs.completed, missPct,
			runF(runPercentile(cs.tardiness, 0.50)),
			runF(runPercentile(cs.tardiness, 0.95)),
			runF(runPercentile(cs.tardiness, 0.99)),
			runF(cs.maxTard),
			runF(runPercentile(cs.response, 0.50)),
			runF(runPercentile(cs.response, 0.95)),
			runF(runPercentile(cs.response, 0.99)))
	}
	b.WriteString("\n")
}

// renderBudget prices each class's misses against its miss-ratio target.
func (r *RunReport) renderBudget(b *strings.Builder) {
	if r.opts.Spec == nil || r.opts.Set == nil {
		return
	}
	b.WriteString("## Error-budget spend\n\n")
	b.WriteString("| class | target miss% | allowed misses | misses | budget used |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for i, cs := range r.classes {
		tgt := r.opts.Spec.Classes[i]
		if tgt.MissRatio <= 0 {
			fmt.Fprintf(b, "| %s | - | - | %d | no objective |\n", cs.name, cs.misses)
			continue
		}
		allowed := tgt.MissRatio * float64(cs.completed)
		used := "0%"
		if allowed > 0 {
			used = fmt.Sprintf("%.0f%%", 100*float64(cs.misses)/allowed)
		} else if cs.misses > 0 {
			used = "inf"
		}
		fmt.Fprintf(b, "| %s | %.1f | %.1f | %d | %s |\n",
			cs.name, 100*tgt.MissRatio, allowed, cs.misses, used)
	}
	b.WriteString("\n")
}

func (r *RunReport) renderAlerts(b *strings.Builder) {
	b.WriteString("## Alert timeline\n\n")
	if len(r.alerts) == 0 {
		b.WriteString("No SLO alerts in the stream (engine off, or no objective breached).\n\n")
		return
	}
	b.WriteString("| t | transition | rule | burn ratio |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, a := range r.alerts {
		verb := "FIRE"
		if a.kind == obs.KindAlertResolve {
			verb = "resolve"
		}
		fmt.Fprintf(b, "| %s | %s | %s | %.2f |\n", runF(a.time), verb, a.detail, a.ratio)
	}
	// Alerts still firing at stream end, in deterministic (sorted) order.
	var open []string
	//lint:ignore maprange collected details are sorted immediately below
	for detail, firing := range r.active {
		if firing {
			open = append(open, detail)
		}
	}
	sort.Strings(open)
	if len(open) > 0 {
		fmt.Fprintf(b, "\nStill firing at stream end: %s\n", strings.Join(open, ", "))
	}
	b.WriteString("\n")
}

func (r *RunReport) renderOffenders(b *strings.Builder) {
	b.WriteString("## Worst offenders\n\n")
	if len(r.worst) == 0 {
		b.WriteString("No transaction missed its deadline.\n")
		return
	}
	b.WriteString("| txn | deadline | finish | tardiness |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, o := range r.worst {
		fmt.Fprintf(b, "| %d | %s | %s | %s |\n", o.id, runF(o.deadline), runF(o.finish), runF(o.tard))
	}
}

// runF renders a float with fixed precision so reports are byte-stable.
func runF(v float64) string {
	return fmt.Sprintf("%.3f", v)
}
