package slo

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// testConfig is a small, fast geometry: 10-unit windows, 2-window fast burn,
// 4-window slow burn, threshold 2, resolve after 2 healthy windows.
func testConfig(spec Spec) Config {
	return Config{
		Spec: spec, Window: 10, FastWindows: 2, SlowWindows: 4,
		Threshold: 2, ResolveHold: 2,
	}
}

func burnOnly(target float64) Spec {
	var s Spec
	for i := range s.Classes {
		s.Classes[i].MissRatio = target
	}
	return s
}

// alerts filters the collected stream down to alert transitions.
func alerts(col *obs.Collector) []obs.Event {
	var out []obs.Event
	for _, ev := range col.Events() {
		if ev.Kind == obs.KindAlertFire || ev.Kind == obs.KindAlertResolve {
			out = append(out, ev)
		}
	}
	return out
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		check   func(Spec) bool
	}{
		{"default", false, func(s Spec) bool { return s.Classes[0].MissRatio == 0.05 }},
		{"miss=0.1", false, func(s Spec) bool {
			return s.Classes[0].MissRatio == 0.1 && s.Classes[2].MissRatio == 0.1
		}},
		{"heavy:miss=0.01", false, func(s Spec) bool {
			return s.Classes[2].MissRatio == 0.01 && s.Classes[0].MissRatio == 0
		}},
		{"miss=0.1;heavy:miss=0.01,p95=5", false, func(s Spec) bool {
			return s.Classes[0].MissRatio == 0.1 && s.Classes[2].MissRatio == 0.01 &&
				s.Classes[2].TardinessP95 == 5
		}},
		{"*:p99=200,queue=50", false, func(s Spec) bool {
			return s.Classes[1].ResponseP99 == 200 && s.Classes[1].QueueBound == 50
		}},
		{"", true, nil},
		{"miss", true, nil},
		{"miss=0", true, nil},
		{"miss=1.5", true, nil},
		{"bogus=1", true, nil},
		{"giant:miss=0.1", true, nil},
		{"miss=abc", true, nil},
		{";", true, nil},
	}
	for _, tc := range cases {
		spec, err := ParseSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", tc.in, spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if !tc.check(spec) {
			t.Errorf("ParseSpec(%q): unexpected spec %+v", tc.in, spec)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(burnOnly(0.1))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Spec: burnOnly(0.1), Window: -1},
		{Spec: burnOnly(0.1), FastWindows: 5, SlowWindows: 3},
		{Spec: burnOnly(0.1), FastWindows: 4, SlowWindows: 4},
		{Spec: burnOnly(0.1), Threshold: 0.5},
		{Spec: burnOnly(0.1), ResolveHold: -1},
		{}, // no rule enabled
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// TestBurnFireResolve drives the burn rule through a full fire/resolve
// cycle: hot windows burn the budget at 5x target, then healthy windows
// clear it after the hysteresis hold.
func TestBurnFireResolve(t *testing.T) {
	col := &obs.Collector{}
	eng := NewEngine(testConfig(burnOnly(0.1)), nil)
	eng.Bind(col)

	// Three hot windows: 10 completions each, half of them missing.
	// Window miss ratio 0.5 => burn 5 >= threshold 2 on both windows.
	tick := 0.0
	for w := 0; w < 3; w++ {
		for i := 0; i < 10; i++ {
			eng.Advance(tick)
			eng.Arrive(0)
			tard := 0.0
			if i%2 == 0 {
				tard = 3
			}
			eng.Complete(0, tard, 5)
			tick++
		}
	}
	eng.Advance(tick) // t=30: close window 2
	got := alerts(col)
	if len(got) != 1 || got[0].Kind != obs.KindAlertFire {
		t.Fatalf("want one alert_fire after hot windows, got %+v", got)
	}
	if got[0].Detail != "light/burn" {
		t.Fatalf("alert detail = %q, want light/burn", got[0].Detail)
	}
	if got[0].Time != 10 {
		// Both windows of the fast burn are covered by the first closed
		// window early in the run, so the alert fires at the first
		// boundary — the lead-time property the bench gate checks.
		t.Fatalf("alert fired at t=%v, want 10", got[0].Time)
	}
	if st := eng.State(); st.ActiveAlerts != 1 || !st.Burning {
		t.Fatalf("state after fire = %+v", st)
	}

	// Healthy windows: completions with no misses until the fast window
	// drains and the resolve hold elapses.
	for w := 0; w < 5; w++ {
		for i := 0; i < 10; i++ {
			eng.Advance(tick)
			eng.Arrive(0)
			eng.Complete(0, 0, 5)
			tick++
		}
	}
	eng.Advance(tick)
	got = alerts(col)
	if len(got) != 2 || got[1].Kind != obs.KindAlertResolve {
		t.Fatalf("want fire then resolve, got %+v", got)
	}
	if got[1].Time <= got[0].Time {
		t.Fatalf("resolve at t=%v does not follow fire at t=%v", got[1].Time, got[0].Time)
	}
	st := eng.State()
	if st.ActiveAlerts != 0 || st.Fires != 1 || st.Resolves != 1 {
		t.Fatalf("state after resolve = %+v", st)
	}
}

// TestCeilingRule exercises the p95-tardiness ceiling: it fires only after
// FastWindows consecutive breached windows, so a single bad window pages
// nobody.
func TestCeilingRule(t *testing.T) {
	var spec Spec
	spec.Classes[0].TardinessP95 = 5
	col := &obs.Collector{}
	eng := NewEngine(testConfig(spec), nil)
	eng.Bind(col)

	bad := func(start float64) {
		for i := 0; i < 8; i++ {
			eng.Advance(start + float64(i))
			eng.Arrive(0)
			eng.Complete(0, 20, 25) // p95 tardiness 20 > ceiling 5
		}
	}
	good := func(start float64) {
		for i := 0; i < 8; i++ {
			eng.Advance(start + float64(i))
			eng.Arrive(0)
			eng.Complete(0, 0, 5)
		}
	}

	bad(0)
	good(10)
	eng.Advance(30)
	if got := alerts(col); len(got) != 0 {
		t.Fatalf("one bad window must not fire, got %+v", got)
	}
	bad(30)
	bad(40)
	eng.Advance(50)
	got := alerts(col)
	if len(got) != 1 || got[0].Kind != obs.KindAlertFire || got[0].Detail != "light/p95_tardiness" {
		t.Fatalf("want p95_tardiness fire after two bad windows, got %+v", got)
	}
}

// TestQueueRule exercises queue-boundedness: backlog above the bound at
// consecutive window boundaries fires; draining resolves.
func TestQueueRule(t *testing.T) {
	var spec Spec
	spec.Classes[2].QueueBound = 3
	col := &obs.Collector{}
	eng := NewEngine(testConfig(spec), nil)
	eng.Bind(col)

	for i := 0; i < 8; i++ {
		eng.Advance(float64(i))
		eng.Arrive(2)
	}
	eng.Advance(30) // boundaries at 10, 20, 30 all see backlog 8 > 3
	got := alerts(col)
	if len(got) != 1 || got[0].Detail != "heavy/queue" {
		t.Fatalf("want heavy/queue fire, got %+v", got)
	}
	for i := 0; i < 8; i++ {
		eng.Complete(2, 0, 1)
	}
	eng.Advance(60)
	got = alerts(col)
	if len(got) != 2 || got[1].Kind != obs.KindAlertResolve {
		t.Fatalf("want queue resolve after drain, got %+v", got)
	}
}

// TestInstanceEngine checks the fleet labeling: detail prefixes and inst
// gauge labels keep per-instance engines distinct in one registry.
func TestInstanceEngine(t *testing.T) {
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	cfg := testConfig(burnOnly(0.1))
	cfg.Instance = "3"
	eng := NewEngine(cfg, reg)
	eng.Bind(col)
	for i := 0; i < 10; i++ {
		eng.Advance(float64(i))
		eng.Arrive(1)
		eng.Complete(1, 1, 2) // every completion misses
	}
	eng.Advance(10)
	got := alerts(col)
	if len(got) != 1 || got[0].Detail != "3:medium/burn" {
		t.Fatalf("want instance-prefixed detail, got %+v", got)
	}
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `asets_slo_burn_ratio{class="medium",inst="3"}`) {
		t.Fatalf("missing inst-labeled burn gauge in:\n%s", out)
	}
	if strings.Contains(out, "# TYPE asets_slo_burn_ratio{") {
		t.Fatalf("labeled gauge leaked its label block into a TYPE header:\n%s", out)
	}
}

// TestStatePartialWindow: the open partial window is never evaluated, so a
// run shorter than one window produces no alerts and no closed windows.
func TestStatePartialWindow(t *testing.T) {
	col := &obs.Collector{}
	eng := NewEngine(testConfig(burnOnly(0.1)), nil)
	eng.Bind(col)
	for i := 0; i < 5; i++ {
		eng.Advance(float64(i))
		eng.Arrive(0)
		eng.Complete(0, 2, 3)
	}
	eng.Finish()
	if got := alerts(col); len(got) != 0 {
		t.Fatalf("partial window fired alerts: %+v", got)
	}
	if st := eng.State(); st.Windows != 0 {
		t.Fatalf("windows = %d, want 0", st.Windows)
	}
}
