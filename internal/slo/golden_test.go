package slo_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/txn"
	"repro/internal/workload"
)

// goldenConfig is the SLO geometry the determinism tests pin down.
func goldenConfig() *slo.Config {
	return &slo.Config{Spec: slo.DefaultSpec(), Window: 50}
}

// goldenPolicies are the schedulers whose alert streams must replay
// byte-identically.
var goldenPolicies = []struct {
	Name string
	New  func() sched.Scheduler
}{
	{"asets", func() sched.Scheduler { return core.New() }},
	{"edf", sched.NewEDF},
}

// goldenStream runs one overloaded fixed-seed workload under a policy with
// the SLO engine wired in and renders the full event stream as JSONL bytes.
func goldenStream(t *testing.T, newSched func() sched.Scheduler, seed uint64) []byte {
	t.Helper()
	cfg := workload.Default(1.4, seed) // past saturation: the budget burns
	cfg.N = 300
	cfg = cfg.WithWeights()
	set, err := workload.Spec{Config: cfg}.Build()
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	_, err = sim.New(sim.Config{Sink: col, SLO: goldenConfig()}).Run(set, newSched())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, ev := range col.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestGoldenAlertStreamPerPolicy: a fixed seed yields a byte-identical
// event stream — alert transitions included — on every replay, per policy.
func TestGoldenAlertStreamPerPolicy(t *testing.T) {
	for _, pol := range goldenPolicies {
		a := goldenStream(t, pol.New, 7)
		b := goldenStream(t, pol.New, 7)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: replay changed the stream", pol.Name)
		}
		if !bytes.Contains(a, []byte(`"kind":"alert_fire"`)) {
			t.Errorf("%s: overloaded run fired no alert:\n%.2000s", pol.Name, a)
		}
	}
}

// TestSerialParallelAlertStreams: the runner's serial and 4-worker paths
// must produce byte-identical streams including alerts (satellite of the
// BENCH_slo gate, kept here so plain `go test` exercises it).
func TestSerialParallelAlertStreams(t *testing.T) {
	run := func(workers int) []byte {
		jobs := make([]runner.Job, 0, len(goldenPolicies)*2)
		cols := make([]*obs.Collector, 0, cap(jobs))
		for _, pol := range goldenPolicies {
			for s := 0; s < 2; s++ {
				seed := uint64(100 + s)
				col := &obs.Collector{}
				cols = append(cols, col)
				jobs = append(jobs, runner.Job{
					Gen: func(sd uint64) (*txn.Set, error) {
						cfg := workload.Default(1.4, sd)
						cfg.N = 200
						cfg = cfg.WithWeights()
						return workload.Spec{Config: cfg}.Build()
					},
					Seed:   &seed,
					New:    pol.New,
					Config: sim.Config{Sink: col, Metrics: obs.NewRegistry(), SLO: goldenConfig()},
					Label:  pol.Name,
				})
			}
		}
		if _, err := (runner.Pool{Workers: workers}).Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, col := range cols {
			for _, ev := range col.Events() {
				b, err := json.Marshal(ev)
				if err != nil {
					t.Fatal(err)
				}
				buf.Write(b)
				buf.WriteByte('\n')
			}
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("serial and 4-worker streams differ")
	}
	if !bytes.Contains(serial, []byte(`"kind":"alert_fire"`)) {
		t.Fatal("no alert in the overloaded streams")
	}
}

// TestSLOHammer races per-instance engines of a shared registry against
// concurrent Prometheus scrapes — the fleet wiring, minus the HTTP layer.
// Each engine runs on its own goroutine (the engine contract); only the
// registry handles are shared.
func TestSLOHammer(t *testing.T) {
	reg := obs.NewRegistry()
	const instances = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := obs.WritePrometheus(&sb, reg); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var engines sync.WaitGroup
	for i := 0; i < instances; i++ {
		cfg := *goldenConfig()
		cfg.Instance = string(rune('0' + i))
		e := slo.NewEngine(cfg, reg)
		e.Bind(obs.NewRing(64))
		engines.Add(1)
		go func() {
			defer engines.Done()
			tick := 0.0
			for r := 0; r < 5000; r++ {
				e.Advance(tick)
				e.Arrive(r % slo.NumClasses)
				e.Complete(r%slo.NumClasses, float64(r%3), float64(r%7))
				tick += 0.5
			}
			e.Finish()
		}()
	}
	engines.Wait()
	close(stop)
	wg.Wait()
}
