// Package slo is the deterministic SLO and alerting layer: declarative
// per-class objectives (target deadline-miss ratio, tardiness/response
// quantile ceilings, queue boundedness) evaluated from simulated time over
// the same tumbling windows as the span layer's sketch series, with
// multi-window burn-rate alert rules whose fire/resolve transitions ride
// the decision-event stream as obs.KindAlertFire/KindAlertResolve events.
//
// Determinism contract: the engine observes only simulated timestamps and
// evaluates rules only at tumbling-window boundaries, so a fixed-seed run
// produces a byte-identical alert stream on every replay, serial or
// parallel (docs/OBSERVABILITY.md, "SLOs and alerting"). The per-event
// observation path is allocation-free; all rule evaluation, gauge
// publication and alert emission happen at window boundaries, off the hot
// path.
package slo

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// NumClasses is the number of SLA weight classes, matching the span layer's
// light/medium/heavy bucketing (obs.WeightClass).
const NumClasses = obs.NumWeightClasses

// Target is the objective of one weight class. A zero (or negative) field
// disables that rule for the class.
type Target struct {
	// MissRatio is the target deadline-miss ratio: the error-budget rate.
	// At most this fraction of the class's completions may miss their
	// deadline. It feeds the multi-window burn-rate rule.
	MissRatio float64
	// TardinessP95 bounds the per-window p95 tardiness.
	TardinessP95 float64
	// ResponseP99 bounds the per-window p99 response time.
	ResponseP99 float64
	// QueueBound bounds the class backlog (arrived but not yet finished),
	// sampled at window boundaries.
	QueueBound float64
}

// enabled reports whether any rule of the target is active.
func (t Target) enabled() bool {
	return t.MissRatio > 0 || t.TardinessP95 > 0 || t.ResponseP99 > 0 || t.QueueBound > 0
}

// Spec is a full per-class SLO declaration, indexed by weight class.
type Spec struct {
	Classes [NumClasses]Target
}

// DefaultSpec is the stock objective: a 5% deadline-miss budget for every
// class, no quantile or queue ceilings. `-slo default` selects it.
func DefaultSpec() Spec {
	var s Spec
	for i := range s.Classes {
		s.Classes[i].MissRatio = 0.05
	}
	return s
}

// ParseSpec parses the `-slo` flag grammar:
//
//	spec   := "default" | clause (";" clause)*
//	clause := [class ":"] item ("," item)*
//	class  := "light" | "medium" | "heavy" | "*"
//	item   := key "=" value
//	key    := "miss" | "p95" | "p99" | "queue"
//
// A clause without a class (or with class "*") applies to every class;
// later clauses override earlier ones per field. "miss" is the target
// deadline-miss ratio in (0, 1); "p95" the window p95 tardiness ceiling;
// "p99" the window p99 response-time ceiling; "queue" the class backlog
// bound — all positive.
func ParseSpec(s string) (Spec, error) {
	if strings.TrimSpace(s) == "default" {
		return DefaultSpec(), nil
	}
	var spec Spec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return Spec{}, fmt.Errorf("slo: empty clause in spec %q", s)
		}
		lo, hi := 0, NumClasses
		if i := strings.IndexByte(clause, ':'); i >= 0 {
			switch name := strings.TrimSpace(clause[:i]); name {
			case "*":
			case "light":
				lo, hi = 0, 1
			case "medium":
				lo, hi = 1, 2
			case "heavy":
				lo, hi = 2, 3
			default:
				return Spec{}, fmt.Errorf("slo: unknown class %q (want light, medium, heavy or *)", name)
			}
			clause = clause[i+1:]
		}
		for _, item := range strings.Split(clause, ",") {
			item = strings.TrimSpace(item)
			eq := strings.IndexByte(item, '=')
			if eq < 0 {
				return Spec{}, fmt.Errorf("slo: item %q is not key=value", item)
			}
			key := strings.TrimSpace(item[:eq])
			v, err := strconv.ParseFloat(strings.TrimSpace(item[eq+1:]), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("slo: item %q: %v", item, err)
			}
			if v <= 0 {
				return Spec{}, fmt.Errorf("slo: item %q: value must be positive", item)
			}
			for c := lo; c < hi; c++ {
				switch key {
				case "miss":
					if v >= 1 {
						return Spec{}, fmt.Errorf("slo: miss ratio %v must be in (0, 1)", v)
					}
					spec.Classes[c].MissRatio = v
				case "p95":
					spec.Classes[c].TardinessP95 = v
				case "p99":
					spec.Classes[c].ResponseP99 = v
				case "queue":
					spec.Classes[c].QueueBound = v
				default:
					return Spec{}, fmt.Errorf("slo: unknown key %q (want miss, p95, p99 or queue)", key)
				}
			}
		}
	}
	enabled := false
	for _, t := range spec.Classes {
		if t.enabled() {
			enabled = true
		}
	}
	if !enabled {
		return Spec{}, fmt.Errorf("slo: spec %q enables no rule", s)
	}
	return spec, nil
}

// Config configures an Engine: the objectives plus the window geometry and
// burn-rate thresholds of the alert rules.
type Config struct {
	// Spec holds the per-class objectives.
	Spec Spec
	// Window is the tumbling-window width in simulated time units. It
	// should match the span layer's windowed-sketch width so both series
	// describe the same intervals (default 100).
	Window float64
	// FastWindows and SlowWindows are the burn-rate windows, in whole
	// tumbling windows (defaults 2 and 12). A burn alert fires when the
	// miss-ratio burn over both exceeds Threshold; ceiling rules fire
	// after FastWindows consecutive breached windows.
	FastWindows int
	SlowWindows int
	// Threshold is the burn ratio (observed miss ratio over target) at
	// which the burn rule fires (default 2: the budget is being spent at
	// twice the sustainable rate).
	Threshold float64
	// ResolveHold is the fire/resolve hysteresis: a firing rule resolves
	// only after this many consecutive healthy windows (default 2).
	ResolveHold int
	// Alpha is the relative accuracy of the per-window quantile sketches
	// (default 0.01).
	Alpha float64
	// Instance optionally names the fault domain the engine watches; it
	// prefixes alert Detail strings ("0:heavy/burn") and adds an
	// inst label to the exported gauges, so per-instance engines of a
	// fleet share one registry without colliding.
	Instance string
}

// withDefaults fills unset geometry fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.FastWindows == 0 {
		c.FastWindows = 2
	}
	if c.SlowWindows == 0 {
		c.SlowWindows = 12
	}
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	if c.ResolveHold == 0 {
		c.ResolveHold = 2
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.01
	}
	return c
}

// Validate reports the first configuration error. Explicit negative (or
// otherwise out-of-range) values are rejected before defaulting, so a typo
// like `-slo-window -5` cannot silently become the default.
//
//lint:coldpath configuration validation runs once at wiring time, before the event loop
func (c Config) Validate() error {
	if c.Window < 0 {
		return fmt.Errorf("slo: window %v must be positive", c.Window)
	}
	if c.FastWindows < 0 || c.SlowWindows < 0 {
		return fmt.Errorf("slo: burn windows (%d fast, %d slow) must be positive window counts", c.FastWindows, c.SlowWindows)
	}
	if c.Threshold < 0 || (c.Threshold > 0 && c.Threshold < 1) {
		return fmt.Errorf("slo: burn threshold %v must be at least 1", c.Threshold)
	}
	if c.ResolveHold < 0 {
		return fmt.Errorf("slo: resolve hold %d must be at least 1 window", c.ResolveHold)
	}
	c = c.withDefaults()
	if c.SlowWindows <= c.FastWindows {
		return fmt.Errorf("slo: slow burn window %d must exceed the fast window %d", c.SlowWindows, c.FastWindows)
	}
	enabled := false
	for _, t := range c.Spec.Classes {
		if t.enabled() {
			enabled = true
		}
	}
	if !enabled {
		return fmt.Errorf("slo: spec enables no rule")
	}
	return nil
}
