package slo

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/workload"
)

// buildSet returns a tiny workload whose weights are forced to one class so
// the tests control classification exactly.
func buildSet(t *testing.T, n int, weight float64) *txn.Set {
	t.Helper()
	cfg := workload.Default(0.9, 1)
	cfg.N = n
	set, err := workload.Spec{Config: cfg}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range set.Txns {
		tx.Weight = weight
	}
	return set
}

func TestSinkInjectsAlertsInStreamOrder(t *testing.T) {
	set := buildSet(t, 4, 1) // all light
	col := &obs.Collector{}
	eng := NewEngine(testConfig(burnOnly(0.1)), nil)
	s := NewSink(eng, set, col)

	// One batch spanning a window boundary: completions before t=10 all
	// miss, so the boundary at t=10 fires the burn alert, which must land
	// between the pre-boundary and post-boundary events.
	batch := []obs.Event{
		{Time: 1, Kind: obs.KindArrival, Txn: 0, Workflow: -1},
		{Time: 2, Kind: obs.KindArrival, Txn: 1, Workflow: -1},
		{Time: 3, Kind: obs.KindDispatch, Txn: 0, Workflow: -1},
		{Time: 5, Kind: obs.KindCompletion, Txn: 0, Workflow: -1, Tardiness: 2},
		{Time: 6, Kind: obs.KindDispatch, Txn: 1, Workflow: -1},
		{Time: 9, Kind: obs.KindCompletion, Txn: 1, Workflow: -1, Tardiness: 1},
		{Time: 12, Kind: obs.KindArrival, Txn: 2, Workflow: -1},
		{Time: 13, Kind: obs.KindDispatch, Txn: 2, Workflow: -1},
		{Time: 14, Kind: obs.KindCompletion, Txn: 2, Workflow: -1},
	}
	s.EmitSharedBatch(batch)
	evs := col.Events()
	fireIdx := -1
	for i, ev := range evs {
		if ev.Kind == obs.KindAlertFire {
			fireIdx = i
		}
	}
	if fireIdx < 0 {
		t.Fatalf("no alert_fire in stream: %+v", evs)
	}
	fire := evs[fireIdx]
	if fire.Time != 10 || fire.Detail != "light/burn" {
		t.Fatalf("fire = %+v, want t=10 light/burn", fire)
	}
	if evs[fireIdx-1].Time > fire.Time || evs[fireIdx+1].Time < fire.Time {
		t.Fatalf("alert out of time order: %+v", evs[fireIdx-1:fireIdx+2])
	}
	// The stream including the injected alert must satisfy the lifecycle
	// validator (alerts carry no per-transaction obligations).
	if err := obs.Validate(evs); err != nil {
		t.Fatalf("stream with alerts fails validation: %v", err)
	}
}

// TestSinkBatchMatchesSingle: folding a stream event-at-a-time and as one
// batch must produce byte-identical downstream streams, alerts included.
func TestSinkBatchMatchesSingle(t *testing.T) {
	mk := func() []obs.Event {
		var evs []obs.Event
		tick := 0.0
		for w := 0; w < 6; w++ {
			for i := 0; i < 4; i++ {
				id := txn.ID(w*4 + i)
				evs = append(evs,
					obs.Event{Time: tick, Kind: obs.KindArrival, Txn: id, Workflow: -1},
					obs.Event{Time: tick + 1, Kind: obs.KindDispatch, Txn: id, Workflow: -1},
					obs.Event{Time: tick + 2, Kind: obs.KindCompletion, Txn: id, Workflow: -1, Tardiness: float64(w % 2)},
				)
				tick += 2.5
			}
		}
		return evs
	}
	render := func(batched bool) []byte {
		set := buildSet(t, 24, 9) // all heavy
		col := &obs.Collector{}
		eng := NewEngine(testConfig(burnOnly(0.1)), nil)
		s := NewSink(eng, set, col)
		evs := mk()
		if batched {
			s.EmitSharedBatch(evs)
		} else {
			for i := range evs {
				s.EmitShared(&evs[i])
			}
		}
		var buf bytes.Buffer
		for _, ev := range col.Events() {
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	single := render(false)
	batched := render(true)
	if !bytes.Equal(single, batched) {
		t.Fatalf("batched delivery changed the stream:\nsingle:\n%s\nbatched:\n%s", single, batched)
	}
	if !bytes.Contains(single, []byte("alert_fire")) {
		t.Fatalf("expected at least one alert in the stream:\n%s", single)
	}
}

// TestSinkIgnoresForeignTxns: events outside the workload set (live
// submissions) are forwarded but not evaluated.
func TestSinkIgnoresForeignTxns(t *testing.T) {
	set := buildSet(t, 2, 1)
	col := &obs.Collector{}
	eng := NewEngine(testConfig(burnOnly(0.1)), nil)
	s := NewSink(eng, set, col)
	s.Emit(obs.Event{Time: 1, Kind: obs.KindArrival, Txn: 99, Workflow: -1})
	s.Emit(obs.Event{Time: 2, Kind: obs.KindCompletion, Txn: 99, Workflow: -1, Tardiness: 5})
	if got := len(col.Events()); got != 2 {
		t.Fatalf("foreign events not forwarded: %d", got)
	}
	if st := eng.State(); len(st.Classes) > 0 && st.Classes[0].Completed != 0 {
		t.Fatalf("foreign completion was counted: %+v", st)
	}
}
