package slo

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Metric names of the SLO layer. The per-class series carry a Prometheus
// label set inside the registered name (obs.MetricName).
const (
	// MetricBurnRatio is the fast-window burn ratio per class: observed
	// deadline-miss ratio over the target. 1 = spending the error budget
	// exactly at the sustainable rate.
	MetricBurnRatio = "asets_slo_burn_ratio"
	// MetricAlertsActive counts the currently firing alert rules.
	MetricAlertsActive = "asets_slo_alerts_active"
	// MetricBudgetRemaining is the fraction of the run's error budget left
	// per class (may go negative when the budget is overspent).
	MetricBudgetRemaining = "asets_slo_error_budget_remaining"
	// MetricAlertFires / MetricAlertResolves count rule transitions.
	MetricAlertFires    = "asets_slo_alert_fires_total"
	MetricAlertResolves = "asets_slo_alert_resolves_total"
)

// ruleKind enumerates the per-class alert rules.
type ruleKind int8

const (
	ruleBurn ruleKind = iota
	ruleTardiness
	ruleResponse
	ruleQueue
)

// ruleNames are the stable wire names used in alert event Detail strings.
var ruleNames = [...]string{"burn", "p95_tardiness", "p99_response", "queue"}

// rule is the state machine of one (class, objective) alert.
type rule struct {
	class  int8
	kind   ruleKind
	limit  float64 // target ratio / ceiling / bound
	detail string  // interned "class/rule" (or "inst:class/rule")
	firing bool
	breach int // consecutive breached windows (ceiling rules, pre-fire)
	calm   int // consecutive healthy windows (resolve hysteresis)
	fires  int
	clears int
}

// winCount is one tumbling window's completion tally for a class.
type winCount struct {
	done uint64
	miss uint64
}

// classState is the windowed observation state of one weight class.
type classState struct {
	cur       winCount   // the open window
	hist      []winCount // closed-window ring, len = SlowWindows
	backlog   int        // arrived but not yet finished
	totalDone uint64
	totalMiss uint64
	// Per-window quantile sketches; nil unless a ceiling rule needs them.
	// Reset (not reallocated) at each boundary, so the steady-state
	// observation path stays allocation-free once warmed.
	tard *metrics.Sketch
	resp *metrics.Sketch
	// Burn ratios as of the last closed window.
	fastBurn float64
	slowBurn float64
}

// Engine evaluates a Spec over the decision stream of one run (or one fleet
// instance). It is driven from a single goroutine — the sim/cluster event
// loop or the executor's replay goroutine; only the exported gauges it
// publishes are safe for concurrent readers.
type Engine struct {
	cfg     Config
	out     *obs.Emitter
	win     int64   // index of the open window
	next    float64 // simulated time of the next boundary
	active  int
	burning bool // any class's fast burn at or above Threshold
	classes [NumClasses]classState
	rules   []rule

	gBurn   [NumClasses]*obs.Gauge
	gBudget [NumClasses]*obs.Gauge
	gActive *obs.Gauge
	cFires  *obs.Counter
	cClears *obs.Counter

	ev obs.Event // scratch for alert emission
}

// NewEngine builds an engine for cfg (defaulted via withDefaults; call
// Config.Validate first for user-supplied configs — NewEngine panics on an
// invalid one). Gauges register in reg when it is non-nil. Alert events go
// nowhere until Bind is called.
//
//lint:coldpath engine construction happens once at run wiring time
func NewEngine(cfg Config, reg *obs.Registry) *Engine {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	e := &Engine{cfg: cfg, out: obs.NewEmitter(nil), next: cfg.Window}
	for ci := range e.classes {
		c := &e.classes[ci]
		c.hist = make([]winCount, cfg.SlowWindows)
		t := cfg.Spec.Classes[ci]
		if t.TardinessP95 > 0 {
			c.tard = metrics.NewSketch(cfg.Alpha)
		}
		if t.ResponseP99 > 0 {
			c.resp = metrics.NewSketch(cfg.Alpha)
		}
		addRule := func(k ruleKind, limit float64) {
			e.rules = append(e.rules, rule{
				class:  int8(ci),
				kind:   k,
				limit:  limit,
				detail: e.detailFor(ci, k),
			})
		}
		if t.MissRatio > 0 {
			addRule(ruleBurn, t.MissRatio)
		}
		if t.TardinessP95 > 0 {
			addRule(ruleTardiness, t.TardinessP95)
		}
		if t.ResponseP99 > 0 {
			addRule(ruleResponse, t.ResponseP99)
		}
		if t.QueueBound > 0 {
			addRule(ruleQueue, t.QueueBound)
		}
	}
	if reg != nil {
		e.register(reg)
	}
	e.ev = obs.Event{Txn: -1, Workflow: -1}
	return e
}

// detailFor interns the Detail string of one (class, rule) alert.
func (e *Engine) detailFor(class int, k ruleKind) string {
	d := obs.ClassName(class) + "/" + ruleNames[k]
	if e.cfg.Instance != "" {
		d = e.cfg.Instance + ":" + d
	}
	return d
}

// register creates the engine's exported metric handles.
//
//lint:coldpath metric registration happens once at run wiring time
func (e *Engine) register(reg *obs.Registry) {
	label := func(base string, class int) string {
		if e.cfg.Instance != "" {
			return obs.MetricName(base, "class", obs.ClassName(class), "inst", e.cfg.Instance)
		}
		return obs.MetricName(base, "class", obs.ClassName(class))
	}
	for ci := range e.classes {
		if !e.cfg.Spec.Classes[ci].enabled() {
			continue
		}
		e.gBurn[ci] = reg.Gauge(label(MetricBurnRatio, ci),
			"Fast-window deadline-miss burn ratio (observed/target) per class.")
		e.gBudget[ci] = reg.Gauge(label(MetricBudgetRemaining, ci),
			"Fraction of the run's deadline-miss error budget remaining per class.")
		e.gBudget[ci].Set(1)
	}
	active := MetricAlertsActive
	fires := MetricAlertFires
	clears := MetricAlertResolves
	if e.cfg.Instance != "" {
		active = obs.MetricName(active, "inst", e.cfg.Instance)
		fires = obs.MetricName(fires, "inst", e.cfg.Instance)
		clears = obs.MetricName(clears, "inst", e.cfg.Instance)
	}
	e.gActive = reg.Gauge(active, "Currently firing SLO alert rules.")
	e.cFires = reg.Counter(fires, "SLO alert rule fire transitions.")
	e.cClears = reg.Counter(clears, "SLO alert rule resolve transitions.")
}

// Bind routes the engine's alert events into sink (flattened once, like any
// instrumentation wiring). Call before the first Advance.
//
//lint:coldpath sink binding happens once at run wiring time
func (e *Engine) Bind(sink obs.Sink) {
	e.out = obs.NewEmitter(sink)
}

// Arrive records a transaction entering the system (class from
// obs.WeightClassIndex).
//
//lint:hotpath
func (e *Engine) Arrive(class int) {
	e.classes[class].backlog++
}

// Drop records a transaction leaving the system without completing (a
// crash-lost drop, not a completion).
//
//lint:hotpath
func (e *Engine) Drop(class int) {
	e.classes[class].backlog--
}

// Complete records a completion: tardiness and response time are the
// completion event's payload, already computed from simulated time.
//
//lint:hotpath
func (e *Engine) Complete(class int, tardiness, response float64) {
	c := &e.classes[class]
	c.backlog--
	c.cur.done++
	c.totalDone++
	if tardiness > 0 {
		c.cur.miss++
		c.totalMiss++
	}
	if c.tard != nil {
		c.tard.Add(tardiness)
	}
	if c.resp != nil {
		c.resp.Add(response)
	}
}

// Advance moves simulated time to now, closing every tumbling window whose
// boundary was crossed and emitting alert transitions through the bound
// sink. The common case — no boundary crossed — is a single comparison;
// boundary evaluation is window-rate work, off the hot path.
//
//lint:hotpath
func (e *Engine) Advance(now float64) {
	if now < e.next {
		return
	}
	e.boundaries(now)
}

// boundaries closes every window with boundary at or before now, in order.
//
//lint:coldpath window-boundary evaluation runs once per tumbling window, not per event
func (e *Engine) boundaries(now float64) {
	for now >= e.next {
		e.closeWindow(e.next)
		e.win++
		e.next += e.cfg.Window
	}
	e.publish()
}

// closeWindow pushes the open window into the history ring, recomputes burn
// ratios, evaluates every rule, and resets the window accumulators. at is
// the boundary's simulated time, which stamps any alert transition.
func (e *Engine) closeWindow(at float64) {
	for ci := range e.classes {
		c := &e.classes[ci]
		c.hist[int(e.win)%len(c.hist)] = c.cur
		if t := e.cfg.Spec.Classes[ci]; t.MissRatio > 0 {
			c.fastBurn = e.burnOver(c, e.cfg.FastWindows, t.MissRatio)
			c.slowBurn = e.burnOver(c, e.cfg.SlowWindows, t.MissRatio)
		}
	}
	for i := range e.rules {
		e.evalRule(&e.rules[i], at)
	}
	e.burning = false
	for ci := range e.classes {
		c := &e.classes[ci]
		if e.cfg.Spec.Classes[ci].MissRatio > 0 && c.fastBurn >= e.cfg.Threshold {
			e.burning = true
		}
		c.cur = winCount{}
		if c.tard != nil {
			c.tard.Reset()
		}
		if c.resp != nil {
			c.resp.Reset()
		}
	}
}

// burnOver returns the class's miss-ratio burn over the last k closed
// windows: observed miss ratio divided by the target. Windows that never
// happened (run shorter than k windows) contribute nothing; zero
// completions means zero burn.
func (e *Engine) burnOver(c *classState, k int, target float64) float64 {
	closed := e.win + 1 // windows closed including the one at index e.win
	if int64(k) > closed {
		k = int(closed)
	}
	var done, miss uint64
	for i := 0; i < k; i++ {
		w := c.hist[int((e.win-int64(i))%int64(len(c.hist)))]
		done += w.done
		miss += w.miss
	}
	if done == 0 {
		return 0
	}
	return float64(miss) / float64(done) / target
}

// evalRule advances one rule's fire/resolve state machine at a boundary.
func (e *Engine) evalRule(r *rule, at float64) {
	c := &e.classes[r.class]
	var ratio float64
	switch r.kind {
	case ruleBurn:
		ratio = c.fastBurn
	case ruleTardiness:
		ratio = c.tard.Quantile(0.95) / r.limit
	case ruleResponse:
		ratio = c.resp.Quantile(0.99) / r.limit
	case ruleQueue:
		ratio = float64(c.backlog) / r.limit
	}
	if !r.firing {
		breached := false
		if r.kind == ruleBurn {
			// Multi-window burn rule: both the fast and the slow window
			// must burn past the threshold, so a brief spike (fast only)
			// or a long slow bleed (slow only) does not page.
			breached = c.fastBurn >= e.cfg.Threshold && c.slowBurn >= e.cfg.Threshold
			if breached {
				e.fire(r, at, ratio)
			}
			return
		}
		// Ceiling rules: FastWindows consecutive breached windows.
		breached = ratio > 1
		if breached {
			r.breach++
			if r.breach >= e.cfg.FastWindows {
				e.fire(r, at, ratio)
			}
		} else {
			r.breach = 0
		}
		return
	}
	healthy := ratio <= 1
	if healthy {
		r.calm++
		if r.calm >= e.cfg.ResolveHold {
			e.resolve(r, at, ratio)
		}
	} else {
		r.calm = 0
	}
}

// fire transitions a rule to firing and emits the alert_fire event.
func (e *Engine) fire(r *rule, at, ratio float64) {
	r.firing = true
	r.breach = 0
	r.calm = 0
	r.fires++
	e.active++
	if e.cFires != nil {
		e.cFires.Inc()
	}
	e.emit(obs.KindAlertFire, at, ratio, r.detail)
}

// resolve transitions a rule back to healthy and emits alert_resolve.
func (e *Engine) resolve(r *rule, at, ratio float64) {
	r.firing = false
	r.calm = 0
	r.clears++
	e.active--
	if e.cClears != nil {
		e.cClears.Inc()
	}
	e.emit(obs.KindAlertResolve, at, ratio, r.detail)
}

// emit sends one alert transition through the bound sink. The Deadline
// field carries the rule's ratio at transition time (there is no deadline
// to carry: alerts have no transaction subject).
func (e *Engine) emit(kind obs.Kind, at, ratio float64, detail string) {
	e.ev.Time = at
	e.ev.Kind = kind
	e.ev.Deadline = ratio
	e.ev.Detail = detail
	e.out.Emit(&e.ev)
}

// publish refreshes the exported gauges from the last closed window.
func (e *Engine) publish() {
	for ci := range e.classes {
		c := &e.classes[ci]
		if e.gBurn[ci] != nil {
			e.gBurn[ci].Set(c.fastBurn)
		}
		if e.gBudget[ci] != nil {
			e.gBudget[ci].Set(budgetRemaining(c, e.cfg.Spec.Classes[ci].MissRatio))
		}
	}
	if e.gActive != nil {
		e.gActive.Set(float64(e.active))
	}
}

// budgetRemaining is the fraction of the class's error budget left:
// 1 - misses/(target*completions). 1 before any completion; negative once
// the budget is overspent.
func budgetRemaining(c *classState, target float64) float64 {
	if target <= 0 || c.totalDone == 0 {
		return 1
	}
	return 1 - float64(c.totalMiss)/(target*float64(c.totalDone))
}

// Finish closes out the run: it publishes final gauge values. The open
// partial window is deliberately not evaluated — rules only ever see
// complete windows, which is what keeps serial and parallel replays
// byte-identical.
func (e *Engine) Finish() {
	e.publish()
}

// ClassHealth is one class's SLO state as of the last closed window.
type ClassHealth struct {
	Class           string  `json:"class"`
	FastBurn        float64 `json:"fast_burn"`
	SlowBurn        float64 `json:"slow_burn"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Completed       uint64  `json:"completed"`
	Misses          uint64  `json:"misses"`
	Backlog         int     `json:"backlog"`
}

// State is an engine snapshot for health rollups. It must be taken on the
// engine's own goroutine (the event loop); boards that serve it to HTTP
// readers copy it under their own lock.
type State struct {
	// Windows is the number of closed tumbling windows.
	Windows int64 `json:"windows"`
	// ActiveAlerts counts currently firing rules; Fires/Resolves are
	// lifetime transition totals.
	ActiveAlerts int `json:"active_alerts"`
	Fires        int `json:"fires"`
	Resolves     int `json:"resolves"`
	// Burning reports whether any class's fast-window burn ratio is at or
	// above the configured threshold — the fleet /healthz degradation
	// signal.
	Burning bool `json:"burning"`
	// FastBurn is the worst fast-window burn across classes;
	// BudgetRemaining the smallest remaining budget fraction.
	FastBurn        float64       `json:"fast_burn"`
	BudgetRemaining float64       `json:"budget_remaining"`
	Classes         []ClassHealth `json:"classes,omitempty"`
}

// State returns the engine's health snapshot.
//
//lint:coldpath end-of-run (and per-scrape) snapshot, off the decision loop
func (e *Engine) State() State {
	st := State{
		Windows:         e.win,
		ActiveAlerts:    e.active,
		Burning:         e.burning,
		BudgetRemaining: 1,
	}
	for i := range e.rules {
		st.Fires += e.rules[i].fires
		st.Resolves += e.rules[i].clears
	}
	st.Classes = make([]ClassHealth, 0, len(e.classes))
	for ci := range e.classes {
		t := e.cfg.Spec.Classes[ci]
		if !t.enabled() {
			continue
		}
		c := &e.classes[ci]
		rem := budgetRemaining(c, t.MissRatio)
		st.Classes = append(st.Classes, ClassHealth{
			Class:           obs.ClassName(ci),
			FastBurn:        c.fastBurn,
			SlowBurn:        c.slowBurn,
			BudgetRemaining: rem,
			Completed:       c.totalDone,
			Misses:          c.totalMiss,
			Backlog:         c.backlog,
		})
		if c.fastBurn > st.FastBurn {
			st.FastBurn = c.fastBurn
		}
		if rem < st.BudgetRemaining {
			st.BudgetRemaining = rem
		}
	}
	return st
}

// Threshold returns the configured burn threshold (for rollup consumers).
func (e *Engine) Threshold() float64 { return e.cfg.Threshold }

// String renders a one-line summary, for logs and tests.
func (e *Engine) String() string {
	st := e.State()
	return fmt.Sprintf("slo: %d windows, %d active alerts (%d fires, %d resolves), worst burn %.3g",
		st.Windows, st.ActiveAlerts, st.Fires, st.Resolves, st.FastBurn)
}
