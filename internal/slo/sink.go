package slo

import (
	"repro/internal/obs"
	"repro/internal/txn"
)

// Sink folds the decision-event stream of one run into an Engine while
// forwarding every event downstream unchanged. Window boundaries are
// detected from event timestamps (simulated time), and any alert
// transitions are injected into the downstream stream *before* the first
// event of the new window — so the merged stream stays time-ordered and a
// fixed-seed run yields a byte-identical stream including alerts.
//
// The sink implements the full obs sink contract (Sink, SharedSink,
// BatchSink); its per-event fold is allocation-free, so wrapping a run's
// sink chain with it keeps the PR 7 observability budgets intact.
type Sink struct {
	eng     *Engine
	em      *obs.Emitter
	classOf []int8
	arrival []float64
}

// NewSink wraps down with SLO evaluation for the transactions of set. The
// engine's alert output is bound to down as well, so alerts ride exactly
// the sinks the run's events do. Events whose Txn is outside set (e.g.
// live-submitted transactions) are forwarded but not evaluated, matching
// the span layer's behaviour.
//
//lint:coldpath sink construction happens once at run wiring time
func NewSink(eng *Engine, set *txn.Set, down obs.Sink) *Sink {
	s := &Sink{
		eng:     eng,
		em:      obs.NewEmitter(down),
		classOf: make([]int8, len(set.Txns)),
		arrival: make([]float64, len(set.Txns)),
	}
	for i := range set.Txns {
		s.classOf[i] = int8(obs.WeightClassIndex(set.Txns[i].Weight))
	}
	eng.Bind(down)
	return s
}

// Engine returns the wrapped engine, for post-run state reads.
func (s *Sink) Engine() *Engine { return s.eng }

// fold routes one event into the engine's observation counters.
//
//lint:hotpath
func (s *Sink) fold(ev *obs.Event) {
	id := ev.Txn
	if id < 0 || int(id) >= len(s.classOf) {
		return
	}
	switch ev.Kind {
	case obs.KindArrival:
		s.arrival[id] = ev.Time
		s.eng.Arrive(int(s.classOf[id]))
	case obs.KindCompletion:
		s.eng.Complete(int(s.classOf[id]), ev.Tardiness, ev.Time-s.arrival[id])
	case obs.KindFailover:
		if ev.Detail == "lost" {
			s.eng.Drop(int(s.classOf[id]))
		}
	case obs.KindDispatch, obs.KindPreempt, obs.KindDeadlineMiss, obs.KindShed,
		obs.KindAbort, obs.KindRestart, obs.KindAging, obs.KindModeSwitch,
		obs.KindStall, obs.KindDegradeEnter, obs.KindDegradeExit, obs.KindEject,
		obs.KindRecover, obs.KindRoute, obs.KindValidateFail,
		obs.KindConflictDefer, obs.KindAlertFire, obs.KindAlertResolve:
		// No SLO-relevant lifecycle edge: sheds never arrived (admission
		// rejects at arrival), misses are counted from completion tardiness,
		// and the rest are scheduler- or controller-level transitions.
	}
}

// Emit implements obs.Sink.
func (s *Sink) Emit(ev obs.Event) { s.EmitShared(&ev) }

// EmitShared implements obs.SharedSink: boundary evaluation (and alert
// emission) happens before the event is folded and forwarded, keeping the
// downstream stream time-ordered.
//
//lint:hotpath
func (s *Sink) EmitShared(ev *obs.Event) {
	s.eng.Advance(ev.Time)
	s.fold(ev)
	s.em.Emit(ev)
}

// EmitSharedBatch implements obs.BatchSink. When an event inside the batch
// crosses a window boundary, the already-folded prefix is flushed
// downstream first, then the boundary's alerts, then the rest — the exact
// interleaving event-at-a-time emission would produce, so batched delivery
// cannot change the stream.
//
//lint:hotpath
func (s *Sink) EmitSharedBatch(evs []obs.Event) {
	start := 0
	for i := range evs {
		if evs[i].Time >= s.eng.next {
			if i > start {
				s.em.EmitBatch(evs[start:i])
				start = i
			}
			s.eng.boundaries(evs[i].Time)
		}
		s.fold(&evs[i])
	}
	s.em.EmitBatch(evs[start:])
}
