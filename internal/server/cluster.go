package server

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/txn"
)

// ClusterServer hosts a live fault-tolerant fleet replay (cluster.Fleet)
// behind the same observable surface as the single-backend Server: routed
// decision events on /events and /events/stream, failover counters on
// /metrics, fleet state on /api/stats — plus the per-instance circuit-breaker
// detail on /healthz that a single backend has no use for. It is an
// http.Handler; Start launches the replay exactly once.
type ClusterServer struct {
	set       *txn.Set
	fleet     *cluster.Fleet
	route     string
	schedName string
	instances int
	timeScale time.Duration

	reg  *obs.Registry
	ring *obs.Ring
	sse  *sseHub
	mux  *http.ServeMux

	mu      sync.Mutex
	started bool  // guarded by mu
	runErr  error // guarded by mu
	done    chan struct{}
}

// NewCluster prepares a live replay of set across cfg.Instances fault
// domains. The server tees its event ring and SSE hub into cfg.Sink (a
// caller's own sink keeps working alongside) and backs /metrics with
// cfg.Metrics, creating a registry when the caller brought none.
func NewCluster(cfg cluster.Config, set *txn.Set, opts cluster.FleetOptions) *ClusterServer {
	s := &ClusterServer{
		set:       set,
		route:     "rr", // the engine's default when cfg.Policy is nil
		instances: cfg.Instances,
		timeScale: opts.TimeScale,
		mux:       http.NewServeMux(),
		done:      make(chan struct{}),
	}
	if cfg.Policy != nil {
		s.route = cfg.Policy.Name()
	}
	if cfg.NewScheduler != nil {
		s.schedName = cfg.NewScheduler().Name()
	}
	if s.timeScale <= 0 {
		s.timeScale = 200 * time.Microsecond // NewFleet's default
	}
	s.reg = cfg.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
		cfg.Metrics = s.reg
	}
	s.ring = obs.NewRing(eventRing)
	s.sse = newSSEHub(s.reg)
	cfg.Sink = obs.Tee(cfg.Sink, s.ring, s.sse)
	s.reg.Gauge("asets_workload_transactions", "transactions in the replayed workload").Set(float64(set.Len()))
	s.fleet = cluster.NewFleet(cfg, set, opts)

	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/fleet", s.handleFleet)
	s.mux.HandleFunc("POST /api/submit", s.handleSubmit)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /events/stream", s.handleEventStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Registry exposes the fleet's metrics registry, so embedding programs can
// add their own instruments to the same /metrics page.
func (s *ClusterServer) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *ClusterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Start launches the fleet replay in a background goroutine. Like Server, a
// ClusterServer is single-use: a second Start returns ErrAlreadyStarted.
func (s *ClusterServer) Start(ctx context.Context) (<-chan struct{}, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, ErrAlreadyStarted
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		_, err := s.fleet.Run(ctx)
		s.mu.Lock()
		s.runErr = err
		s.mu.Unlock()
	}()
	return s.done, nil
}

// Err returns the replay error, if any, once the run has ended.
func (s *ClusterServer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Wait blocks until the replay started by Start has finished (returning its
// error) or until ctx ends (returning ctx.Err()).
func (s *ClusterServer) Wait(ctx context.Context) error {
	select {
	case <-s.done:
		return s.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result returns the fleet's outcome once the replay is done; (nil, nil)
// before that.
func (s *ClusterServer) Result() (*cluster.Result, error) { return s.fleet.Result() }

// clusterStatsPayload is the cluster /api/stats response document; the
// embedded FleetStatus flattens into it.
type clusterStatsPayload struct {
	Route     string `json:"route"`
	Scheduler string `json:"scheduler"`
	N         int    `json:"n"`
	Healthy   int    `json:"healthy"`
	cluster.FleetStatus
}

func (s *ClusterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	fs := s.fleet.Status()
	writeJSON(w, clusterStatsPayload{
		Route:       s.route,
		Scheduler:   s.schedName,
		N:           s.set.Len(),
		Healthy:     fs.Healthy(),
		FleetStatus: fs,
	})
}

// handleFleet serves GET /api/fleet: the aggregate SLO rollup of the fleet —
// per-instance burn ratios, error-budget remainders and alert counts next to
// each fault domain's circuit-breaker state. Enabled is false when the run
// carries no SLO configuration (docs/OBSERVABILITY.md, "SLOs and alerting").
func (s *ClusterServer) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.fleet.Health())
}

// clusterHealthPayload is the cluster /healthz response document: the
// circuit-breaker state of every fault domain, plus the fleet SLO rollup's
// degradation verdict when SLOs are configured.
type clusterHealthPayload struct {
	Status    string                   `json:"status"` // "ok" | "degraded"
	Healthy   int                      `json:"healthy"`
	Burning   bool                     `json:"burning,omitempty"`
	Instances []cluster.InstanceStatus `json:"instances"`
}

// handleHealth serves GET /healthz with per-instance detail. The whole-fleet
// view is 503 "degraded" when no instance accepts work, or — with SLOs
// configured — when any instance is burning its fast error-budget window
// (cluster.FleetHealth.Degraded); ?instance=N narrows to one fault domain,
// 503 when that instance is ejected — the probe a per-instance load balancer
// check would use.
func (s *ClusterServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	fs := s.fleet.Status()
	if raw := r.URL.Query().Get("instance"); raw != "" {
		idx, err := strconv.Atoi(raw)
		if err != nil || idx < 0 || idx >= len(fs.Instances) {
			http.Error(w, "healthz: instance must be in [0, "+strconv.Itoa(len(fs.Instances))+")", http.StatusBadRequest)
			return
		}
		is := fs.Instances[idx]
		if is.State == "ejected" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSONBody(w, is)
		return
	}
	p := clusterHealthPayload{Status: "ok", Healthy: fs.Healthy(), Instances: fs.Instances}
	if p.Instances == nil {
		// Before the first engine publish the board is empty; report the
		// configured width so probes never mistake "not started" for "down".
		p.Instances = []cluster.InstanceStatus{}
		p.Healthy = s.instances
	}
	if fh := s.fleet.Health(); fh.Enabled && fh.Degraded {
		p.Burning = true
	}
	if p.Healthy == 0 || p.Burning {
		p.Status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSONBody(w, p)
}

// clusterSubmitDecision is the cluster POST /api/submit response document: a
// health-gated placement preview. The engine's routing policy owns real
// placement; the preview reports whether any fault domain would accept the
// work right now and which healthy instance carries the least backlog.
type clusterSubmitDecision struct {
	Admitted bool    `json:"admitted"`
	Instance int     `json:"instance"` // -1 when rejected
	Healthy  int     `json:"healthy"`
	Now      float64 `json:"now"`
}

func (s *ClusterServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	fs := s.fleet.Status()
	resp := clusterSubmitDecision{Instance: -1, Healthy: fs.Healthy(), Now: fs.Now}
	if fs.Instances == nil {
		resp.Healthy = s.instances
		resp.Instance = 0
	}
	best := math.Inf(1)
	for _, is := range fs.Instances {
		if is.State == "ejected" {
			continue
		}
		if load := is.Backlog + float64(is.Queued); load < best {
			best, resp.Instance = load, is.Index
		}
	}
	if resp.Healthy == 0 {
		// Every fault domain is ejected; retry after a cooldown's worth of
		// wall-clock time (at least 1s so the header is meaningful).
		secs := math.Ceil(s.timeScale.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(secs)))
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, resp)
		return
	}
	resp.Admitted = true
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, resp)
}

func (s *ClusterServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, s.reg); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *ClusterServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r, 100, eventRing)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, eventsPayload{Total: s.ring.Total(), Events: s.ring.Snapshot(limit)})
}

func (s *ClusterServer) handleEventStream(w http.ResponseWriter, r *http.Request) {
	streamEvents(w, r, s.sse, s.done)
}
