package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/fault"
	"repro/internal/txn"
	"repro/internal/workload"
)

// testPlan exercises every fault mechanism: keyed aborts with backoff, a
// stall window, a crash window, and a flash crowd.
func testPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 11, AbortProb: 0.3, MaxRestarts: 2,
		BackoffBase: 0.5, BackoffCap: 4,
		Stalls: []fault.Window{
			{Start: 5, Duration: 2},
			{Start: 20, Duration: 1, Kind: fault.Crash},
		},
		Bursts: []fault.Burst{{At: 10, Width: 5}},
	}
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestSubmitGate pins the POST /api/submit contract against a feasibility
// controller on an idle executor (now=0, backlog=0): a transaction that fits
// its deadline answers 202, one that cannot answers 429 with a Retry-After
// hint, and malformed requests are client errors.
func TestSubmitGate(t *testing.T) {
	cfg := workload.Default(0.5, 3)
	cfg.N = 10
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		TimeScale: time.Millisecond,
		Admit:     admit.Feasibility{},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/submit", `{"length": 1, "deadline": 5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("feasible submit: status %d", resp.StatusCode)
	}
	var d submitDecision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if !d.Admitted || d.Controller != "slack" {
		t.Fatalf("decision = %+v", d)
	}

	resp = postJSON(t, ts.URL+"/api/submit", `{"length": 2, "deadline": 1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("infeasible submit: status %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q not a positive integer of seconds", ra)
	}
	d = submitDecision{}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Admitted || d.RetryAfterSeconds < 1 {
		t.Fatalf("shed decision = %+v", d)
	}

	for body, want := range map[string]int{
		`{"length": 0, "deadline": 1}`:                 http.StatusBadRequest,
		`{"length": 1, "deadline": -2}`:                http.StatusBadRequest,
		`{"length": 1, "deadline": 1, "weight": -1}`:   http.StatusBadRequest,
		`{"length": 1, "deadline": 1, "surprise": 42}`: http.StatusBadRequest,
		`not json`: http.StatusBadRequest,
	} {
		if resp := postJSON(t, ts.URL+"/api/submit", body); resp.StatusCode != want {
			t.Errorf("submit %q: status %d, want %d", body, resp.StatusCode, want)
		}
	}

	// Body-size limit: a megabyte of padding must be rejected, not read.
	huge := `{"length": 1, "deadline": 1, "pad": "` + strings.Repeat("x", 1<<20) + `"}`
	resp, err := http.Post(ts.URL+"/api/submit", "application/json", bytes.NewReader([]byte(huge)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want 413", resp.StatusCode)
	}
}

// TestSubmitWithoutController: with no admission controller configured the
// gate admits everything (the paper's original open door).
func TestSubmitWithoutController(t *testing.T) {
	_, ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/submit", `{"length": 1e6, "deadline": 0}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
}

// TestHealthzDegraded: /healthz flips to 503 "degraded" while the admission
// controller is in degradation mode.
func TestHealthzDegraded(t *testing.T) {
	ctrl := admit.NewMissRatio(0.5, 0.25)
	ctrl.Window = 4
	for i := 0; i < 4; i++ { // drive it degraded before the replay starts
		ctrl.Complete(&txn.Transaction{Weight: 1}, true)
	}
	cfg := workload.Default(0.5, 3)
	cfg.N = 10
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		TimeScale: time.Millisecond,
		Admit:     ctrl,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded healthz body %q", body)
	}
}

// TestFaultReplayThroughServer replays an overloaded workload with the full
// fault plan and a queue-cap shedder under a FakeClock, then checks the
// bookkeeping closes: every transaction either completed or was shed, the
// fault counters surface on /api/stats and /metrics, and shed counts match.
func TestFaultReplayThroughServer(t *testing.T) {
	cfg := workload.Default(1.4, 7).WithWeights()
	cfg.N = 120
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
		Faults:    testPlan(),
		Admit:     admit.QueueCap{Max: 10},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	runToCompletion(t, s)

	var st statsPayload
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Completed+st.Shed != st.N {
		t.Fatalf("accounting broken: completed %d + shed %d != n %d", st.Completed, st.Shed, st.N)
	}
	if st.Submitted != st.Completed {
		t.Fatalf("submitted %d != completed %d after full replay", st.Submitted, st.Completed)
	}
	if st.Shed == 0 {
		t.Fatal("queue cap 10 at util 1.4 shed nothing")
	}
	if st.Aborts == 0 || st.Restarts == 0 || st.Stalls == 0 {
		t.Fatalf("fault plan injected nothing: %+v", st)
	}
	if st.Admit != "queue:10" {
		t.Fatalf("admit name %q", st.Admit)
	}

	body, _ := getBody(t, ts.URL+"/metrics")
	samples := promSamples(t, body)
	for metric, want := range map[string]int{
		fault.MetricShed:     st.Shed,
		fault.MetricAborts:   st.Aborts,
		fault.MetricRestarts: st.Restarts,
		fault.MetricStalls:   st.Stalls,
	} {
		if got := samples[metric]; got != strconv.Itoa(want) {
			t.Errorf("%s = %q, want %d", metric, got, want)
		}
	}
}

// TestFaultHammer is the -race target for the fault/admission path: many
// goroutines hammer every endpoint — including the POST /api/submit gate,
// which shares the admission controller with the replay goroutine — while a
// faulty, shedding replay runs.
func TestFaultHammer(t *testing.T) {
	cfg := workload.Default(1.2, 9).WithWeights()
	cfg.N = 150
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		TimeScale: 20 * time.Microsecond,
		Faults:    testPlan(),
		Admit:     admit.Feasibility{Tolerance: 1},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := mustStart(t, s, ctx)

	gets := []string{"/", "/api/stats", "/api/recent?limit=5", "/healthz", "/metrics", "/events?limit=10"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// /healthz may legitimately answer 503 while degraded.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(gets[i%len(gets)])
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/api/submit", "application/json",
					strings.NewReader(`{"length": 1, "deadline": 3}`))
				if err != nil {
					t.Errorf("POST /api/submit: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("POST /api/submit: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.statsNow()
	if !st.Done || st.Completed+st.Shed != st.N {
		t.Fatalf("post-hammer stats inconsistent: %+v", st)
	}
}
