package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/workload"
)

// testClusterServer builds a four-instance fleet replay with two mid-run
// instance crashes (fault domains 1 and 2) so a live run exercises ejection,
// failover and circuit-breaker recovery while HTTP clients watch.
func testClusterServer(t *testing.T) (*ClusterServer, *httptest.Server) {
	t.Helper()
	cfg := workload.Default(3.2, 0xFEE7) // 0.8 per instance across 4 domains
	cfg.N = 400
	set := workload.MustGenerate(cfg)
	ccfg := cluster.Config{
		Instances:    4,
		Policy:       cluster.HealthWeighted{},
		NewScheduler: sched.NewSRPT,
		Faults: []*fault.Plan{
			nil,
			{Stalls: []fault.Window{{Start: 300, Duration: 40, Kind: fault.Crash}}},
			{Stalls: []fault.Window{{Start: 700, Duration: 30, Kind: fault.Crash}}},
			nil,
		},
		Retry:            cluster.Retry{Budget: 2, BackoffBase: 0.5, BackoffCap: 4},
		RecoveryCooldown: 5,
	}
	s := NewCluster(ccfg, set, cluster.FleetOptions{TimeScale: 200 * time.Microsecond})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestClusterStatsBeforeStart(t *testing.T) {
	s, ts := testClusterServer(t)
	var st clusterStatsPayload
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Route != "weighted" || st.Scheduler != "SRPT" || st.N != 400 || st.Done {
		t.Fatalf("initial cluster stats = %+v", st)
	}
	// The board is unpublished before Start; health must still report the
	// configured fleet width, not an outage.
	var hp clusterHealthPayload
	getJSON(t, ts.URL+"/healthz", &hp)
	if hp.Status != "ok" || hp.Healthy != 4 {
		t.Fatalf("pre-start /healthz = %+v", hp)
	}
	if s.fleet.Done() {
		t.Fatal("fleet done before start")
	}
}

func TestClusterHealthInstanceValidation(t *testing.T) {
	_, ts := testClusterServer(t)
	for _, q := range []string{"?instance=-1", "?instance=99", "?instance=x"} {
		resp, err := http.Get(ts.URL + "/healthz" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /healthz%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestClusterHammerConcurrentSubmitCrashRecovery is the cluster tier's -race
// target: many goroutines hammer reads and submits against the live fleet
// while fault domains 1 and 2 crash mid-replay, lose their queues, and the
// router fails the work over and later re-admits the recovered instances.
func TestClusterHammerConcurrentSubmitCrashRecovery(t *testing.T) {
	s, ts := testClusterServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := s.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(ctx); err != ErrAlreadyStarted {
		t.Fatalf("second Start = %v, want ErrAlreadyStarted", err)
	}

	// Readers: whole-fleet and per-instance health may legally answer 503
	// while a fault domain is ejected; everything else must stay 200.
	paths := []struct {
		path     string
		allow503 bool
	}{
		{"/api/stats", false},
		{"/metrics", false},
		{"/events?limit=10", false},
		{"/healthz", true},
		{"/healthz?instance=1", true},
		{"/healthz?instance=2", true},
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(p struct {
			path     string
			allow503 bool
		}) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + p.path)
				if err != nil {
					t.Errorf("GET %s: %v", p.path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && !(p.allow503 && resp.StatusCode == http.StatusServiceUnavailable) {
					t.Errorf("GET %s: status %d", p.path, resp.StatusCode)
					return
				}
			}
		}(paths[i%len(paths)])
	}
	// Submitters: the placement preview must always answer — 202 while any
	// instance is healthy, 503 with Retry-After only during a full outage.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/api/submit", "application/json", bytes.NewReader(nil))
				if err != nil {
					t.Errorf("POST /api/submit: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("POST /api/submit: 503 without Retry-After")
						return
					}
				default:
					t.Errorf("POST /api/submit: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := s.Result()
	if err != nil || res == nil {
		t.Fatalf("Result after Wait = %v, %v", res, err)
	}
	if res.Ejections < 2 || res.Recoveries < 2 {
		t.Fatalf("hammer run exercised %d ejections / %d recoveries, want both crashes ejected and recovered", res.Ejections, res.Recoveries)
	}
	if res.Failovers == 0 {
		t.Fatal("hammer run exercised no failover; tighten the fixture")
	}

	// Post-run surfaces must agree with the engine's result.
	var st clusterStatsPayload
	getJSON(t, ts.URL+"/api/stats", &st)
	if !st.Done || st.Routes != res.Routes || st.Failovers != res.Failovers || st.Lost != res.Lost {
		t.Fatalf("final stats %+v disagree with result %+v", st, res)
	}
	if st.Healthy != 4 {
		t.Fatalf("all crash windows closed; healthy = %d, want 4", st.Healthy)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final /healthz status %d", resp.StatusCode)
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{cluster.MetricFailovers, cluster.MetricEjections, cluster.MetricRecoveries, cluster.MetricRouted} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}
