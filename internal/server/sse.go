package server

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// spanRing bounds the closed spans retained for /api/spans.
const spanRing = 1024

// spanWindow is the tumbling-window width (simulated time units) of the
// server's windowed percentile sketches on /metrics.
const spanWindow = 100.0

// sseBuffer is the per-subscriber event buffer. A subscriber that falls
// behind a full buffer has events dropped (never blocking the executor);
// drops are counted in asets_sse_dropped_total.
const sseBuffer = 256

// sseHub is a Sink that broadcasts every decision event to the connected
// /events/stream subscribers. Sends never block: the executor goroutine
// stays real-time even with stuck clients.
type sseHub struct {
	mu      sync.Mutex
	subs    map[chan obs.Event]struct{} // guarded by mu
	seq     uint64                      // guarded by mu
	dropped *obs.Counter                // handle set once at construction; the counter itself is atomic
}

func newSSEHub(reg *obs.Registry) *sseHub {
	h := &sseHub{subs: make(map[chan obs.Event]struct{})}
	if reg != nil {
		h.dropped = reg.Counter("asets_sse_dropped_total", "events dropped on slow /events/stream subscribers")
	}
	return h
}

// EmitShared implements obs.SharedSink: the event is borrowed for the call,
// so the hub copies it into a value before stamping and fanning out (channel
// sends copy again, so no subscriber ever sees the caller's scratch struct).
func (h *sseHub) EmitShared(ev *obs.Event) { h.Emit(*ev) }

// Emit implements obs.Sink.
func (h *sseHub) Emit(ev obs.Event) {
	h.mu.Lock()
	ev.Seq = h.seq
	h.seq++
	//lint:ignore maprange subscriber fan-out order is irrelevant: every subscriber gets every event
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			if h.dropped != nil {
				h.dropped.Inc()
			}
		}
	}
	h.mu.Unlock()
}

func (h *sseHub) subscribe() chan obs.Event {
	ch := make(chan obs.Event, sseBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *sseHub) unsubscribe(ch chan obs.Event) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// handleEventStream serves GET /events/stream: a Server-Sent Events feed of
// the live decision stream, one `event: decision` frame per obs.Event with
// the byte-stable JSON encoding as its data. The stream ends when the client
// disconnects or when the replay finishes (after the buffer drains).
func (s *Server) handleEventStream(w http.ResponseWriter, r *http.Request) {
	streamEvents(w, r, s.sse, s.done)
}

// streamEvents is the SSE loop shared by the single-backend Server and the
// ClusterServer: subscribe to hub, relay until the client disconnects or
// done closes (then drain and send a terminal `event: done` frame).
func streamEvents(w http.ResponseWriter, r *http.Request, hub *sseHub, done <-chan struct{}) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := hub.subscribe()
	defer hub.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": asets decision stream\n\n")
	fl.Flush()

	write := func(ev obs.Event) bool {
		b, err := ev.MarshalJSON()
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: decision\ndata: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !write(ev) {
				return
			}
		case <-done:
			// Replay over: flush anything still buffered, then end the
			// stream so clients see EOF instead of an idle hang.
			for {
				select {
				case ev := <-ch:
					if !write(ev) {
						return
					}
				default:
					fmt.Fprint(w, "event: done\ndata: {}\n\n")
					fl.Flush()
					return
				}
			}
		}
	}
}

// spansPayload is the /api/spans response document.
type spansPayload struct {
	Total uint64     `json:"total"`
	Spans []obs.Span `json:"spans"` // newest first
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r, 50, spanRing)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, spansPayload{Total: s.spans.Total(), Spans: s.spans.Snapshot(limit)})
}
