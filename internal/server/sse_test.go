package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// readSSE consumes one /events/stream response to EOF, returning the decoded
// decision events and whether the terminal done frame arrived.
func readSSE(t *testing.T, body io.Reader) (events []obs.Event, sawDone bool) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "decision":
				var ev obs.Event
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Errorf("undecodable SSE data %q: %v", line, err)
					continue
				}
				events = append(events, ev)
			case "done":
				sawDone = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Errorf("SSE read: %v", err)
	}
	return events, sawDone
}

// TestSSEStreamDeliversDecisions subscribes before the replay starts and
// checks the live feed carries a well-formed decision stream end to end.
func TestSSEStreamDeliversDecisions(t *testing.T) {
	s, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	resp, err := http.Get(ts.URL + "/events/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	mustStart(t, s, ctx)
	events, sawDone := readSSE(t, resp.Body)
	if !sawDone {
		t.Fatal("stream did not end with a done frame")
	}
	if len(events) == 0 {
		t.Fatal("no decision events streamed")
	}
	var completions int
	for _, ev := range events {
		if ev.Kind == obs.KindCompletion {
			completions++
		}
	}
	if completions == 0 {
		t.Fatalf("no completions among %d streamed events", len(events))
	}
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSpansEndpoint checks /api/spans after a full replay: every admitted
// transaction has a span, spans arrive newest-first, and each satisfies the
// attribution invariant.
func TestSpansEndpoint(t *testing.T) {
	s, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mustStart(t, s, ctx)
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	var payload struct {
		Total uint64 `json:"total"`
		Spans []struct {
			Txn      int     `json:"txn"`
			Finish   float64 `json:"finish"`
			Response float64 `json:"response"`
			Attr     struct {
				Queued    float64 `json:"queued"`
				Service   float64 `json:"service"`
				Preempted float64 `json:"preempted"`
				Stalled   float64 `json:"stalled"`
				Backoff   float64 `json:"backoff"`
			} `json:"attr"`
			Completed bool `json:"completed"`
		} `json:"spans"`
	}
	getJSON(t, ts.URL+"/api/spans?limit=1000", &payload)
	if int(payload.Total) != s.set.Len() {
		t.Fatalf("span total %d, workload %d", payload.Total, s.set.Len())
	}
	if len(payload.Spans) != s.set.Len() {
		t.Fatalf("got %d spans, want %d", len(payload.Spans), s.set.Len())
	}
	for i, sp := range payload.Spans {
		if !sp.Completed {
			t.Fatalf("span %d not completed: %+v", i, sp)
		}
		if sum := sp.Attr.Queued + sp.Attr.Service + sp.Attr.Preempted + sp.Attr.Stalled + sp.Attr.Backoff; sum != sp.Response {
			t.Fatalf("txn %d: attribution sum %v != response %v", sp.Txn, sum, sp.Response)
		}
		if i > 0 && sp.Finish > payload.Spans[i-1].Finish {
			t.Fatalf("spans not newest-first at index %d", i)
		}
	}

	// The windowed sketches landed on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "# TYPE asets_span_tardiness summary") {
		t.Fatal("span sketch missing from /metrics")
	}
	if !strings.Contains(string(b), `asets_window_tardiness{window="`) {
		t.Fatal("windowed sketch missing from /metrics")
	}

	// Limit validation matches the other endpoints.
	bad, err := http.Get(ts.URL + "/api/spans?limit=zero")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", bad.StatusCode)
	}
}

// TestHammerSSEStream is the -race target for the SSE hub: many subscribers
// connect, read and disconnect (some early) while the replay broadcasts and
// other goroutines scrape /api/spans.
func TestHammerSSEStream(t *testing.T) {
	s, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := mustStart(t, s, ctx)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/events/stream")
			if err != nil {
				t.Errorf("stream %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if i%2 == 0 {
				// Half the subscribers read to EOF; the rest disconnect
				// early, exercising unsubscribe-under-broadcast.
				readSSE(t, resp.Body)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/api/spans?limit=20")
				if err != nil {
					t.Errorf("spans scrape: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
