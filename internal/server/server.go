// Package server exposes a live ASETS*-scheduled transaction stream over
// HTTP: the kind of web-database front end the paper targets, reduced to
// its observable essentials. A workload replays through the online executor
// while the server reports progress — current queue state, tardiness so
// far, recent completions — as JSON APIs and a self-refreshing HTML
// dashboard.
//
// Endpoints:
//
//	GET  /              HTML dashboard (auto-refreshing)
//	GET  /api/stats     executor statistics snapshot (JSON)
//	GET  /api/recent    most recent completions, newest first (JSON)
//	GET  /api/workload  the full workload being replayed (JSON)
//	POST /api/submit    admission gate: would this transaction be served now?
//	GET  /metrics       live metrics, Prometheus text exposition format
//	                    (including the span layer's windowed percentile
//	                    sketches)
//	GET  /events        recent scheduler decision events, newest first (JSON)
//	GET  /events/stream live decision events as Server-Sent Events
//	GET  /api/spans     per-transaction causal spans, newest first (JSON)
//	GET  /healthz       liveness probe; 503 "degraded" while the admission
//	                    controller is in degradation mode
//
// POST /api/submit is an honest admission gate rather than a mutation: the
// replayed workload is fixed at construction (schedulers use dense
// transaction IDs), so the endpoint evaluates the configured admission
// controller against the executor's live state and answers 202 (would be
// admitted) or 429 with a Retry-After hint derived from the live backlog
// (would be shed). docs/ROBUSTNESS.md covers the design.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/workload"
)

// completionRing keeps the last N completions for /api/recent.
const completionRing = 256

// eventRing keeps the last N scheduler decision events for /events.
const eventRing = 1024

// Completion is one finished transaction as reported by /api/recent.
type Completion struct {
	ID        txn.ID  `json:"id"`
	Finish    float64 `json:"finish"`
	Deadline  float64 `json:"deadline"`
	Tardiness float64 `json:"tardiness"`
	Weight    float64 `json:"weight"`
}

// Server hosts the dashboard for one executor run. Create with New, mount
// anywhere via http.Handler, and call Start to begin the replay.
type Server struct {
	set       *txn.Set
	cfg       *workload.Config
	policy    string
	admitName string
	timeScale time.Duration
	exec      *executor.Executor
	mux       *http.ServeMux
	reg       *obs.Registry
	ring      *obs.Ring
	spans     *obs.SpanBuilder
	sse       *sseHub
	ov        *obs.Overhead
	g         obsGauges

	mu     sync.Mutex
	recent []Completion // ring buffer, next points at the oldest slot; guarded by mu
	next   int          // guarded by mu
	total  int          // guarded by mu

	started bool  // guarded by mu
	runErr  error // guarded by mu
	done    chan struct{}
}

// New builds a server that will replay set under the given scheduler. cfg
// is optional provenance served by /api/workload.
func New(policy sched.Scheduler, set *txn.Set, cfg *workload.Config, opts executor.Options) *Server {
	s := &Server{
		set:       set,
		cfg:       cfg,
		policy:    policy.Name(),
		admitName: "none",
		timeScale: opts.TimeScale,
		mux:       http.NewServeMux(),
		done:      make(chan struct{}),
	}
	if opts.Admit != nil {
		s.admitName = opts.Admit.Name()
	}
	if s.timeScale <= 0 {
		s.timeScale = 200 * time.Microsecond // executor.New's default
	}
	userComplete := opts.OnComplete
	opts.OnComplete = func(t *txn.Transaction, finish float64) {
		s.record(t, finish)
		if userComplete != nil {
			userComplete(t, finish)
		}
	}

	// Observability: the server always instruments its executor — the
	// registry backs /metrics, the event ring backs /events. A caller's own
	// registry and sink keep working alongside.
	s.reg = opts.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
		opts.Metrics = s.reg
	}
	s.ov = obs.NewOverhead()
	s.ring = obs.NewRing(eventRing)
	s.spans = obs.NewSpanBuilder(set, obs.SpanOptions{
		Metrics: s.reg, Window: spanWindow, Keep: spanRing, Overhead: s.ov,
	})
	s.sse = newSSEHub(s.reg)
	// The sink chain is wrapped in a Timed meter so the cost of observing —
	// events fanned out, wall-clock ns inside the fan-out — is itself
	// exported (/api/stats "obs" block, asets_obs_* gauges). The clock is
	// the executor's own, so a FakeClock replay stays deterministic: time
	// attribution is simply zero there.
	clk := opts.Clock
	if clk == nil {
		clk = executor.RealClock{}
	}
	opts.Sink = obs.NewTimed(obs.Tee(opts.Sink, s.ring, s.spans, s.sse), s.ov, clk.Now)
	s.reg.Gauge("asets_workload_transactions", "transactions in the replayed workload").Set(float64(set.Len()))
	s.g = newObsGauges(s.reg)

	s.exec = executor.New(policy, set, opts)

	s.mux.HandleFunc("GET /", s.handleDashboard)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/recent", s.handleRecent)
	s.mux.HandleFunc("GET /api/workload", s.handleWorkload)
	s.mux.HandleFunc("POST /api/submit", s.handleSubmit)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /events/stream", s.handleEventStream)
	s.mux.HandleFunc("GET /api/spans", s.handleSpans)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Registry exposes the server's metrics registry, so embedding programs can
// add their own instruments to the same /metrics page.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ErrAlreadyStarted is returned by Start when the replay was already
// launched: a Server replays its workload exactly once.
var ErrAlreadyStarted = errors.New("server: replay already started (a Server is single-use; build a new one to replay again)")

// Start launches the replay in a background goroutine. The returned channel
// closes when the replay finishes or ctx is cancelled. A Server is
// single-use: a second Start returns ErrAlreadyStarted without touching the
// running replay (restarting would re-enter the executor over a consumed
// workload and corrupt the scheduler's state).
func (s *Server) Start(ctx context.Context) (<-chan struct{}, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, ErrAlreadyStarted
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		_, err := s.exec.Run(ctx)
		s.mu.Lock()
		s.runErr = err
		s.mu.Unlock()
	}()
	return s.done, nil
}

// Err returns the replay error, if any, once the run has ended.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Wait joins the replay goroutine: it blocks until the replay started by
// Start has finished (returning its error) or until ctx ends (returning
// ctx.Err()). Callers that cancel the Start context should still Wait so
// the goroutine is joined before teardown.
func (s *Server) Wait(ctx context.Context) error {
	select {
	case <-s.done:
		return s.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) record(t *txn.Transaction, finish float64) {
	c := Completion{
		ID:        t.ID,
		Finish:    finish,
		Deadline:  t.Deadline,
		Tardiness: t.Tardiness(),
		Weight:    t.Weight,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.recent) < completionRing {
		s.recent = append(s.recent, c)
	} else {
		s.recent[s.next] = c
		s.next = (s.next + 1) % completionRing
	}
	s.total++
}

// recentSnapshot returns up to limit completions, newest first.
func (s *Server) recentSnapshot(limit int) []Completion {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.recent)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Completion, 0, limit)
	for i := 0; i < limit; i++ {
		// Newest element sits just before next (mod n).
		idx := (s.next - 1 - i + 2*n) % n
		out = append(out, s.recent[idx])
	}
	return out
}

// statsPayload is the /api/stats response document.
type statsPayload struct {
	Policy       string  `json:"policy"`
	Admit        string  `json:"admit"`
	N            int     `json:"n"`
	Now          float64 `json:"now"`
	Submitted    int     `json:"submitted"`
	Completed    int     `json:"completed"`
	Running      int     `json:"running"` // -1 when idle
	AvgTardiness float64 `json:"avg_tardiness"`
	MaxTardiness float64 `json:"max_tardiness"`
	Misses       int     `json:"misses"`
	Shed         int     `json:"shed"`
	Aborts       int     `json:"aborts"`
	Restarts     int     `json:"restarts"`
	Stalls       int     `json:"stalls"`
	Backlog      float64 `json:"backlog"`
	Degraded     bool    `json:"degraded"`
	Done         bool    `json:"done"`
	// Obs is the observability layer's self-telemetry: what watching the
	// run costs (events, instrumentation ns, pool behaviour, retained
	// bytes) plus Go runtime gauges sampled at request time.
	Obs obsPayload `json:"obs"`
}

// obsPayload is the self-telemetry block of /api/stats.
type obsPayload struct {
	obs.OverheadStats
	// RetainedBytes is the memory pinned by the event ring and the span
	// builder (spans, free list, state tables).
	RetainedBytes int `json:"retained_bytes"`
	// Spans is the number of spans closed so far.
	Spans uint64 `json:"spans"`
	// Runtime holds host-process gauges via runtime/metrics; these are
	// facts about the Go process, never simulation state.
	Runtime obs.RuntimeSample `json:"runtime"`
}

// obsGauges are the /metrics exports of the self-telemetry block, published
// at scrape time (handleMetrics) from the same sources as /api/stats.
type obsGauges struct {
	events, nanos, poolHits, poolMisses, retained *obs.Gauge
	heap, gc, goroutines                          *obs.Gauge
}

func newObsGauges(reg *obs.Registry) obsGauges {
	return obsGauges{
		events:     reg.Gauge("asets_obs_events", "events fanned out through the instrumented sink path"),
		nanos:      reg.Gauge("asets_obs_instr_ns", "wall-clock nanoseconds attributed to instrumentation fan-out"),
		poolHits:   reg.Gauge("asets_obs_pool_hits", "span free-list reuses"),
		poolMisses: reg.Gauge("asets_obs_pool_misses", "span pool misses (fresh span allocations)"),
		retained:   reg.Gauge("asets_obs_retained_bytes", "bytes retained by the event ring and span builder"),
		heap:       reg.Gauge("asets_runtime_heap_bytes", "live heap bytes (runtime/metrics)"),
		gc:         reg.Gauge("asets_runtime_gc_cycles", "completed GC cycles (runtime/metrics)"),
		goroutines: reg.Gauge("asets_runtime_goroutines", "goroutine count (runtime/metrics)"),
	}
}

func (s *Server) obsNow() obsPayload {
	return obsPayload{
		OverheadStats: s.ov.Stats(),
		RetainedBytes: s.ring.RetainedBytes() + s.spans.RetainedBytes(),
		Spans:         s.spans.Total(),
		Runtime:       obs.ReadRuntimeSample(),
	}
}

// publishObs copies the self-telemetry into the registry gauges so /metrics
// carries the same numbers as /api/stats.
func (s *Server) publishObs() {
	o := s.obsNow()
	s.g.events.Set(float64(o.Events))
	s.g.nanos.Set(float64(o.InstrNanos))
	s.g.poolHits.Set(float64(o.PoolHits))
	s.g.poolMisses.Set(float64(o.PoolMisses))
	s.g.retained.Set(float64(o.RetainedBytes))
	s.g.heap.Set(float64(o.Runtime.HeapBytes))
	s.g.gc.Set(float64(o.Runtime.GCCycles))
	s.g.goroutines.Set(float64(o.Runtime.Goroutines))
}

func (s *Server) statsNow() statsPayload {
	st := s.exec.Stats()
	return statsPayload{
		Policy:       s.policy,
		Admit:        s.admitName,
		N:            s.set.Len(),
		Now:          st.Now,
		Submitted:    st.Submitted,
		Completed:    st.Completed,
		Running:      int(st.Running),
		AvgTardiness: st.AvgTardiness(),
		MaxTardiness: st.MaxTardiness,
		Misses:       st.Misses,
		Shed:         st.Shed,
		Aborts:       st.Aborts,
		Restarts:     st.Restarts,
		Stalls:       st.Stalls,
		Backlog:      st.Backlog,
		Degraded:     st.Degraded,
		Done:         s.exec.Done(),
		Obs:          s.obsNow(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.statsNow())
}

// parseLimit validates a ?limit= query parameter: malformed or
// non-positive values yield an error (the caller answers 400), absent
// values yield def, and oversized values clamp to max.
func parseLimit(r *http.Request, def, max int) (int, error) {
	q := r.URL.Query().Get("limit")
	if q == "" {
		return def, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("limit %q must be a positive integer", q)
	}
	if v > max {
		v = max
	}
	return v, nil
}

func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r, 50, completionRing)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, s.recentSnapshot(limit))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Drain batched span observations so the scrape sees up-to-the-event
	// windowed percentiles, then refresh the self-telemetry gauges.
	s.spans.Flush()
	s.publishObs()
	// Render into a buffer first: WritePrometheus writing straight to w
	// would commit a 200 on its first byte, making the error branch a
	// superfluous WriteHeader when a scrape is cut off mid-body.
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, s.reg); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// eventsPayload is the /events response document.
type eventsPayload struct {
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"` // newest first
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r, 100, eventRing)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, eventsPayload{Total: s.ring.Total(), Events: s.ring.Snapshot(limit)})
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := workload.WriteJSON(w, s.set, s.cfg); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.exec.AdmissionDegraded() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
		return
	}
	fmt.Fprintln(w, "ok")
}

// submitBodyLimit caps POST /api/submit request bodies: the document is a
// three-field JSON object, so anything past a few KiB is abuse.
const submitBodyLimit = 4 << 10

// submitRequest is the POST /api/submit request document. Deadline is an
// offset from the executor's current simulated time.
type submitRequest struct {
	Length   float64 `json:"length"`
	Deadline float64 `json:"deadline"`
	Weight   float64 `json:"weight"` // default 1
}

// submitDecision is the POST /api/submit response document.
type submitDecision struct {
	Admitted   bool    `json:"admitted"`
	Controller string  `json:"controller"`
	Now        float64 `json:"now"`
	Backlog    float64 `json:"backlog"`
	Degraded   bool    `json:"degraded"`
	// RetryAfterSeconds mirrors the Retry-After header on shed answers: the
	// wall-clock time the live backlog needs to drain at the configured
	// TimeScale.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, submitBodyLimit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "submit: "+err.Error(), status)
		return
	}
	if req.Weight == 0 {
		req.Weight = 1
	}
	switch {
	case req.Length <= 0:
		http.Error(w, fmt.Sprintf("submit: length %v must be positive", req.Length), http.StatusBadRequest)
		return
	case req.Deadline < 0:
		http.Error(w, fmt.Sprintf("submit: deadline offset %v must be non-negative", req.Deadline), http.StatusBadRequest)
		return
	case req.Weight <= 0:
		http.Error(w, fmt.Sprintf("submit: weight %v must be positive", req.Weight), http.StatusBadRequest)
		return
	}
	st := s.exec.Stats()
	cand := &txn.Transaction{
		ID: -1, Arrival: st.Now, Deadline: st.Now + req.Deadline,
		Length: req.Length, Remaining: req.Length, Weight: req.Weight,
	}
	admitted, live := s.exec.Probe(cand)
	w.Header().Set("Content-Type", "application/json")
	resp := submitDecision{
		Admitted:   admitted,
		Controller: s.admitName,
		Now:        live.Now,
		Backlog:    live.Backlog,
		Degraded:   live.Degraded,
	}
	if !admitted {
		// Retry once the live backlog has drained (at least 1s so the
		// header is meaningful to coarse-grained clients).
		secs := math.Ceil(live.Backlog * s.timeScale.Seconds())
		if secs < 1 {
			secs = 1
		}
		resp.RetryAfterSeconds = secs
		w.Header().Set("Retry-After", strconv.Itoa(int(secs)))
		w.WriteHeader(http.StatusTooManyRequests)
		writeJSONBody(w, resp)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, resp)
}

var dashboardTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><title>ASETS* live scheduler</title>
<meta http-equiv="refresh" content="1">
<style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin-top: 1em; }
td, th { border: 1px solid #999; padding: 2px 8px; text-align: right; }
th { background: #eee; }
.tardy { color: #b00; }
</style></head><body>
<h2>{{.Stats.Policy}} — live web-transaction scheduling</h2>
<p>simulated time {{printf "%.1f" .Stats.Now}} |
submitted {{.Stats.Submitted}}/{{.Stats.N}} |
completed {{.Stats.Completed}} |
misses {{.Stats.Misses}} |
avg tardiness {{printf "%.3f" .Stats.AvgTardiness}} |
max {{printf "%.2f" .Stats.MaxTardiness}}
{{if .Stats.Shed}}| shed {{.Stats.Shed}}{{end}}
{{if .Stats.Aborts}}| aborts {{.Stats.Aborts}}{{end}}
{{if .Stats.Degraded}}| <b class="tardy">degraded</b>{{end}}
{{if .Stats.Done}}| <b>done</b>{{end}}</p>
<table>
<tr><th>txn</th><th>finish</th><th>deadline</th><th>tardiness</th><th>weight</th></tr>
{{range .Recent}}
<tr><td>T{{.ID}}</td><td>{{printf "%.2f" .Finish}}</td><td>{{printf "%.2f" .Deadline}}</td>
<td{{if gt .Tardiness 0.0}} class="tardy"{{end}}>{{printf "%.2f" .Tardiness}}</td>
<td>{{.Weight}}</td></tr>
{{end}}
</table>
</body></html>`))

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := struct {
		Stats  statsPayload
		Recent []Completion
	}{s.statsNow(), s.recentSnapshot(20)}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers, for handlers that set a
// non-200 status (headers must precede WriteHeader).
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
