package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/txn"
	"repro/internal/workload"
)

// fakeClockServer replays the standard test workload instantly under a
// FakeClock, so metric/stat comparisons see a finished run without real
// sleeping.
func fakeClockServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := workload.Default(0.9, 5).WithWorkflows(4, 1).WithWeights()
	cfg.N = 80
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func runToCompletion(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	select {
	case <-mustStart(t, s, ctx):
	case <-ctx.Done():
		t.Fatal("replay did not finish in time")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLimitParamValidation pins the ?limit= contract shared by /api/recent
// and /events: malformed and non-positive values are a client error,
// oversized values clamp instead of failing.
func TestLimitParamValidation(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/api/recent", "/events"} {
		for _, tc := range []struct {
			query string
			want  int
		}{
			{"", http.StatusOK},
			{"?limit=1", http.StatusOK},
			{"?limit=999999", http.StatusOK}, // clamped, not rejected
			{"?limit=0", http.StatusBadRequest},
			{"?limit=-3", http.StatusBadRequest},
			{"?limit=bogus", http.StatusBadRequest},
			{"?limit=1.5", http.StatusBadRequest},
		} {
			resp, err := http.Get(ts.URL + path + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("GET %s%s: status %d, want %d", path, tc.query, resp.StatusCode, tc.want)
			}
		}
	}
}

// TestEventsEndpoint: after a full replay, /events serves the most recent
// decisions newest-first with the limit honored and the total preserved.
func TestEventsEndpoint(t *testing.T) {
	s, ts := fakeClockServer(t)
	runToCompletion(t, s)

	var payload eventsPayload
	getJSON(t, ts.URL+"/events", &payload)
	if payload.Total == 0 {
		t.Fatal("replay produced no events")
	}
	if len(payload.Events) == 0 || len(payload.Events) > 100 {
		t.Fatalf("default limit returned %d events", len(payload.Events))
	}
	for i := 1; i < len(payload.Events); i++ {
		if payload.Events[i].Seq >= payload.Events[i-1].Seq {
			t.Fatalf("events not newest-first at %d: %+v", i, payload.Events)
		}
	}

	var small eventsPayload
	getJSON(t, ts.URL+"/events?limit=5", &small)
	if len(small.Events) != 5 {
		t.Fatalf("limit=5 returned %d events", len(small.Events))
	}
	if small.Total != payload.Total {
		t.Fatalf("total changed between reads: %d vs %d", small.Total, payload.Total)
	}
}

// promSamples parses a Prometheus text page into sample-name → value
// strings; names keep their label set (`asets_tardiness_bucket{le="1"}`).
func promSamples(t *testing.T, body string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		out[line[:i]] = line[i+1:]
	}
	return out
}

func getBody(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// TestMetricsMatchesStats is the exact-agreement acceptance criterion: the
// end-of-run /metrics page must reproduce the executor's Stats aggregates —
// the tardiness sum bit-for-bit, because both accumulate in completion
// order and the exposition format round-trips float64 exactly.
func TestMetricsMatchesStats(t *testing.T) {
	s, ts := fakeClockServer(t)
	runToCompletion(t, s)

	body, ctype := getBody(t, ts.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("content type %q", ctype)
	}
	samples := promSamples(t, body)
	st := s.statsNow()

	wantInt := func(name string, want int) {
		t.Helper()
		got, ok := samples[name]
		if !ok {
			t.Fatalf("metric %s missing from /metrics", name)
		}
		if got != strconv.Itoa(want) {
			t.Errorf("%s = %s, want %d", name, got, want)
		}
	}
	wantInt("asets_sched_arrivals_total", st.Submitted)
	wantInt("asets_sched_completions_total", st.Completed)
	wantInt("asets_sched_deadline_misses_total", st.Misses)
	wantInt("asets_tardiness_count", st.Completed)
	wantInt("asets_workload_transactions", s.set.Len())

	sum, err := strconv.ParseFloat(samples["asets_tardiness_sum"], 64)
	if err != nil {
		t.Fatal(err)
	}
	exact := s.exec.Stats().SumTardiness
	if sum != exact {
		t.Errorf("asets_tardiness_sum = %v, want exactly %v", sum, exact)
	}
	if avg := st.AvgTardiness; avg != 0 {
		if got := sum / float64(st.Completed); got != avg {
			t.Errorf("avg from /metrics %v != /api/stats avg_tardiness %v", got, avg)
		}
	}
}

// onTimeServer replays a hand-built workload whose deadlines are generous
// enough that nothing can be tardy.
func onTimeServer(t *testing.T) *Server {
	t.Helper()
	txns := []*txn.Transaction{
		{ID: 0, Arrival: 0, Deadline: 100, Length: 1, Weight: 1},
		{ID: 1, Arrival: 1, Deadline: 100, Length: 0.5, Weight: 1},
		{ID: 2, Arrival: 2, Deadline: 100, Length: 2, Weight: 1},
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	return New(core.New(), set, nil, executor.Options{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
	})
}

// TestStatsNowEdgeCases: before any completion the averages must read zero
// (not NaN), and an all-on-time run must report zero tardiness and misses
// on both /api/stats and /metrics.
func TestStatsNowEdgeCases(t *testing.T) {
	s := onTimeServer(t)
	st := s.statsNow()
	if st.Completed != 0 || st.AvgTardiness != 0 || st.MaxTardiness != 0 || st.Misses != 0 {
		t.Fatalf("pre-run stats = %+v", st)
	}

	runToCompletion(t, s)
	st = s.statsNow()
	if st.Completed != 3 || !st.Done {
		t.Fatalf("final stats = %+v", st)
	}
	if st.AvgTardiness != 0 || st.MaxTardiness != 0 || st.Misses != 0 {
		t.Fatalf("all-on-time run reported tardiness: %+v", st)
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := getBody(t, ts.URL+"/metrics")
	samples := promSamples(t, body)
	for name, want := range map[string]string{
		"asets_sched_deadline_misses_total": "0",
		"asets_tardiness_sum":               "0",
		"asets_tardiness_count":             "3",
	} {
		if samples[name] != want {
			t.Errorf("%s = %q, want %q", name, samples[name], want)
		}
	}
}

// TestRegistryAccessor: embedding programs can extend the same /metrics page.
func TestRegistryAccessor(t *testing.T) {
	s, ts := testServer(t)
	if s.Registry() == nil {
		t.Fatal("nil registry")
	}
	s.Registry().Counter("asets_custom_total", "caller-added counter").Add(7)
	body, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "asets_custom_total 7") {
		t.Fatalf("caller metric missing:\n%s", body)
	}
}
