package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/workload"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := workload.Default(0.7, 5).WithWorkflows(4, 1).WithWeights()
	cfg.N = 80
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{TimeScale: 20 * time.Microsecond})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func mustStart(t *testing.T, s *Server, ctx context.Context) <-chan struct{} {
	t.Helper()
	done, err := s.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestStatsBeforeStart(t *testing.T) {
	_, ts := testServer(t)
	var st statsPayload
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Policy != "ASETS*" || st.N != 80 || st.Completed != 0 || st.Done {
		t.Fatalf("initial stats = %+v", st)
	}
}

func TestFullRunThroughHTTP(t *testing.T) {
	s, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	select {
	case <-mustStart(t, s, ctx):
	case <-ctx.Done():
		t.Fatal("run did not finish in time")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	var st statsPayload
	getJSON(t, ts.URL+"/api/stats", &st)
	if !st.Done || st.Completed != 80 || st.Submitted != 80 {
		t.Fatalf("final stats = %+v", st)
	}
	if st.AvgTardiness < 0 || st.MaxTardiness < st.AvgTardiness {
		t.Fatalf("tardiness inconsistent: %+v", st)
	}

	var recent []Completion
	getJSON(t, ts.URL+"/api/recent?limit=10", &recent)
	if len(recent) != 10 {
		t.Fatalf("recent = %d entries", len(recent))
	}
	// Newest first: finish times non-increasing.
	for i := 1; i < len(recent); i++ {
		if recent[i].Finish > recent[i-1].Finish {
			t.Fatalf("recent not newest-first: %v", recent)
		}
	}
}

func TestStartSingleUse(t *testing.T) {
	s, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c1 := mustStart(t, s, ctx)
	if _, err := s.Start(ctx); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("second Start = %v, want ErrAlreadyStarted", err)
	}
	<-c1
	// Still rejected after the replay finished: the workload is consumed.
	if _, err := s.Start(ctx); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("post-completion Start = %v, want ErrAlreadyStarted", err)
	}
}

func TestRecentBadLimit(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/recent?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestWorkloadDownloadRoundTrips(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	set, cfg, err := workload.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 80 || cfg == nil || cfg.N != 80 {
		t.Fatalf("downloaded workload: len=%d cfg=%+v", set.Len(), cfg)
	}
}

func TestDashboardHTML(t *testing.T) {
	s, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	<-mustStart(t, s, ctx)

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{"ASETS*", "avg tardiness", "<table>", "done"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestNotFound(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestRecentRingWraps(t *testing.T) {
	// More completions than the ring holds: snapshot still returns newest
	// first without duplicates.
	cfg := workload.Default(0.5, 11)
	cfg.N = completionRing + 40
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, nil, executor.Options{TimeScale: 5 * time.Microsecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	<-mustStart(t, s, ctx)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	recent := s.recentSnapshot(0)
	if len(recent) != completionRing {
		t.Fatalf("ring holds %d", len(recent))
	}
	seen := map[int]bool{}
	for _, c := range recent {
		if seen[int(c.ID)] {
			t.Fatalf("duplicate completion %d in ring", c.ID)
		}
		seen[int(c.ID)] = true
	}
}
