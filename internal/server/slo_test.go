package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/sched"
	"repro/internal/slo"
	"repro/internal/workload"
)

// sloServerConfig is the SLO configuration both server fixtures share: the
// default 5% miss-ratio objective over 50-unit tumbling windows.
func sloServerConfig() *slo.Config {
	return &slo.Config{Spec: slo.DefaultSpec(), Window: 20}
}

// TestServerSLOAlertsLive replays an overloaded workload under a FakeClock
// with the SLO engine attached through executor.Options and checks the alert
// transitions reach every observable surface the server composes: the event
// ring (/events), the span builder's input stream, and /metrics.
func TestServerSLOAlertsLive(t *testing.T) {
	cfg := workload.Default(1.4, 11).WithWeights()
	cfg.N = 120
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
		SLO:       sloServerConfig(),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	runToCompletion(t, s)

	events, _ := getBody(t, ts.URL+"/events?limit="+strconv.Itoa(eventRing))
	if !strings.Contains(events, `"kind": "alert_fire"`) {
		t.Fatal("no alert_fire event in the server's event ring")
	}

	metrics, _ := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`asets_slo_burn_ratio{class="light"}`,
		`asets_slo_error_budget_remaining{class="light"}`,
		"asets_slo_alert_fires_total",
		"asets_slo_alerts_active",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServerSLOInvalidConfigSurfacesFromRun pins where a bad SLO spec lands:
// New must not panic, and the error surfaces from the replay exactly like an
// invalid fault plan.
func TestServerSLOInvalidConfigSurfacesFromRun(t *testing.T) {
	cfg := workload.Default(0.7, 3)
	cfg.N = 10
	set := workload.MustGenerate(cfg)
	s := New(core.New(), set, &cfg, executor.Options{
		Clock: executor.NewFakeClock(time.Unix(0, 0)),
		SLO:   &slo.Config{Spec: slo.DefaultSpec(), Window: -1},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	select {
	case <-mustStart(t, s, ctx):
	case <-ctx.Done():
		t.Fatal("replay did not finish in time")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("invalid SLO window surfaced as %v", err)
	}
}

// testSLOClusterServer builds a two-instance fleet that burns every class's
// error budget (1.4 utilization per instance), with per-instance SLO engines
// attached and an instant FakeClock replay.
func testSLOClusterServer(t *testing.T) (*ClusterServer, *httptest.Server) {
	t.Helper()
	cfg := workload.Default(2.8, 0x51FE)
	cfg.N = 150
	cfg = cfg.WithWeights()
	set := workload.MustGenerate(cfg)
	ccfg := cluster.Config{
		Instances:    2,
		NewScheduler: sched.NewEDF,
		SLO:          sloServerConfig(),
	}
	s := NewCluster(ccfg, set, cluster.FleetOptions{
		TimeScale: time.Millisecond,
		Clock:     executor.NewFakeClock(time.Unix(0, 0)),
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestClusterFleetEndpoint checks GET /api/fleet end to end: disabled (with
// no SLO config) it reports Enabled false; on an overloaded SLO-configured
// fleet it serves the aggregate rollup with per-instance detail, and the
// aggregate /healthz degrades to 503 while the fleet burns.
func TestClusterFleetEndpoint(t *testing.T) {
	// No SLO configuration: the endpoint answers 200 with Enabled false.
	_, plain := testClusterServer(t)
	var off cluster.FleetHealth
	getJSON(t, plain.URL+"/api/fleet", &off)
	if off.Enabled || len(off.Instances) != 0 {
		t.Fatalf("fleet health without SLO config = %+v", off)
	}

	s, ts := testSLOClusterServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := s.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("fleet replay did not finish in time")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	var fh cluster.FleetHealth
	getJSON(t, ts.URL+"/api/fleet", &fh)
	if !fh.Enabled || !fh.Done {
		t.Fatalf("fleet health not enabled/done: %+v", fh)
	}
	if len(fh.Instances) != 2 {
		t.Fatalf("fleet health carries %d instances, want 2", len(fh.Instances))
	}
	if fh.Fires == 0 || fh.WorstBurn <= 0 {
		t.Fatalf("overloaded fleet reports no burn: %+v", fh)
	}
	for i, ih := range fh.Instances {
		if ih.Index != i || len(ih.SLO.Classes) == 0 {
			t.Fatalf("instance health %d malformed: %+v", i, ih)
		}
	}

	// Sustained overload: the run ends with fast windows still burning, so
	// the aggregate probe must be degraded even though every instance's
	// circuit breaker is closed.
	if !fh.Degraded {
		t.Fatalf("overloaded fleet not degraded at run end: %+v", fh)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("burning fleet /healthz status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"burning": true`) {
		t.Fatalf("burning fleet /healthz body %s", body)
	}

	metrics, _ := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`asets_slo_burn_ratio{class="light",inst="0"}`,
		`asets_slo_burn_ratio{class="light",inst="1"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	events, _ := getBody(t, ts.URL+"/events?limit="+strconv.Itoa(eventRing))
	if !strings.Contains(events, `"kind": "alert_fire"`) {
		t.Fatal("no alert_fire event in the cluster server's event ring")
	}
}
