package server

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestHammerConcurrentRequests drives every endpoint from many goroutines
// while the replay runs, then joins everything. It exists mainly as a
// -race target for the executor/stats/ring-buffer locking; the workload is
// small and the time scale fast so it stays quick without the detector.
func TestHammerConcurrentRequests(t *testing.T) {
	s, ts := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := mustStart(t, s, ctx)

	paths := []string{"/", "/api/stats", "/api/recent?limit=5", "/healthz", "/metrics", "/events?limit=10", "/api/spans?limit=10"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("GET %s: read: %v", path, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(paths[i%len(paths)])
	}
	wg.Wait()

	if err := s.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.statsNow()
	if !st.Done || st.Completed != st.Submitted {
		t.Fatalf("post-hammer stats inconsistent: %+v", st)
	}
}

// TestWaitJoinsCancelledReplay: cancelling the Start context must leave the
// replay goroutine joinable — Wait (with a live context) returns the
// replay's cancellation error rather than hanging or leaking.
func TestWaitJoinsCancelledReplay(t *testing.T) {
	s, _ := testServer(t)
	runCtx, cancel := context.WithCancel(context.Background())
	mustStart(t, s, runCtx)
	cancel()

	joinCtx, joinCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer joinCancel()
	err := s.Wait(joinCtx)
	if joinCtx.Err() != nil {
		t.Fatal("replay goroutine not joined after cancellation")
	}
	if err == nil {
		t.Fatal("cancelled replay reported nil error")
	}
}

// TestWaitHonorsItsOwnContext: Wait must not block past its context even if
// the replay never started.
func TestWaitHonorsItsOwnContext(t *testing.T) {
	s, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
}
