// Package fault is the deterministic fault-injection layer of the
// reproduction: transaction abort-and-restart with capped exponential
// backoff, backend stall and crash windows with preemptive-resume recovery,
// and flash-crowd arrival bursts. The paper's evaluation (Section IV) pushes
// the system past saturation but assumes a fault-free backend; this package
// supplies the faults so the overload-protection layer (internal/admit) has
// something real to protect against.
//
// Determinism is the design constraint everything here bends around: a
// fixed-seed fault plan must subject *every* scheduling policy to the
// identical fault schedule, so that A/B comparisons across policies isolate
// the policy. Abort decisions are therefore keyed per (transaction, attempt)
// — a pure function of the plan seed, never of the order in which the run
// reaches completions — and stall/crash/burst windows are fixed instants in
// simulated time. Two runs with the same seed and plan produce byte-identical
// decision-event streams; a zero plan is bit-for-bit invisible (the golden
// tests in internal/sim pin both properties).
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/rng"
	"repro/internal/txn"
)

// WindowKind classifies a backend outage window.
type WindowKind int

const (
	// Stall pauses the backend: no transaction makes progress during the
	// window, but in-flight work is preserved (preemptive-resume recovery).
	Stall WindowKind = iota
	// Crash additionally destroys in-flight work: transactions running when
	// the window opens lose all accumulated progress and restart from
	// scratch once the backend returns.
	Crash
)

// String returns the stable wire name used in plan files and events.
func (k WindowKind) String() string {
	switch k {
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	default:
		panic(fmt.Sprintf("fault: unknown window kind %d", int(k)))
	}
}

// windowKindFromString is the inverse of WindowKind.String.
func windowKindFromString(s string) (WindowKind, error) {
	switch s {
	case "stall", "":
		return Stall, nil
	case "crash":
		return Crash, nil
	default:
		return 0, fmt.Errorf("fault: unknown window kind %q (use \"stall\" or \"crash\")", s)
	}
}

// Window is one backend outage: the backend serves nothing during
// [Start, Start+Duration).
type Window struct {
	// Start is the simulated instant the outage begins.
	Start float64 `json:"start"`
	// Duration is the outage length in simulated time units.
	Duration float64 `json:"duration"`
	// Kind selects stall (pause) or crash (pause + lose in-flight work).
	Kind WindowKind `json:"-"`
}

// End returns the first instant the backend serves again.
func (w Window) End() float64 { return w.Start + w.Duration }

// windowJSON is the wire form of Window (kind as a string).
type windowJSON struct {
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	Kind     string  `json:"kind,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (w Window) MarshalJSON() ([]byte, error) {
	return json.Marshal(windowJSON{Start: w.Start, Duration: w.Duration, Kind: w.Kind.String()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (w *Window) UnmarshalJSON(data []byte) error {
	var wire windowJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	kind, err := windowKindFromString(wire.Kind)
	if err != nil {
		return err
	}
	*w = Window{Start: wire.Start, Duration: wire.Duration, Kind: kind}
	return nil
}

// Burst is one flash-crowd window: every transaction whose arrival falls in
// [At, At+Width) arrives at At instead — the whole window's population hits
// the system at one instant, the "bursty and unpredictable behavior of web
// user populations" the paper's introduction motivates adaptivity with.
// Deadlines are untouched, so the burst only ever tightens the workload.
type Burst struct {
	// At is the instant the crowd lands.
	At float64 `json:"at"`
	// Width is the arrival span compressed into At.
	Width float64 `json:"width"`
}

// Plan is one declarative, seed-deterministic fault schedule. The zero value
// injects nothing and is bit-for-bit equivalent to running without a plan.
type Plan struct {
	// Seed keys the per-(transaction, attempt) abort draws. Independent of
	// the workload seed, so the same workload can replay under many fault
	// schedules.
	Seed uint64 `json:"seed"`
	// AbortProb is the probability that a transaction's k-th completion
	// attempt aborts and restarts (0 disables aborts).
	AbortProb float64 `json:"abort_prob"`
	// MaxRestarts caps the aborts a single transaction can suffer; after
	// that many restarts its next attempt always commits. Zero with a
	// positive AbortProb is rejected by Validate (it would silently disable
	// aborts).
	MaxRestarts int `json:"max_restarts"`
	// BackoffBase is the delay before the first restart; each further
	// restart doubles it. Zero restarts immediately.
	BackoffBase float64 `json:"backoff_base"`
	// BackoffCap bounds the exponential backoff (0 = uncapped).
	BackoffCap float64 `json:"backoff_cap"`
	// Stalls are the backend outage windows, in any order; Validate sorts
	// them and rejects overlaps.
	Stalls []Window `json:"stalls,omitempty"`
	// Bursts are the flash-crowd arrival windows.
	Bursts []Burst `json:"bursts,omitempty"`
}

// Zero reports whether the plan injects nothing at all.
func (p *Plan) Zero() bool {
	return p == nil || (p.AbortProb == 0 && len(p.Stalls) == 0 && len(p.Bursts) == 0)
}

// Validate checks the plan and normalizes it (stall windows sorted by
// start). Every rejection names the offending field and value, so CLI users
// get an actionable message instead of a mid-run panic.
//
//lint:coldpath plan validation runs once at configuration time, before the event loop
func (p *Plan) Validate() error {
	if p.AbortProb < 0 || p.AbortProb > 1 {
		return fmt.Errorf("fault: abort_prob %v must be in [0, 1]", p.AbortProb)
	}
	if p.MaxRestarts < 0 {
		return fmt.Errorf("fault: max_restarts %d must be non-negative", p.MaxRestarts)
	}
	if p.AbortProb > 0 && p.MaxRestarts == 0 {
		return fmt.Errorf("fault: abort_prob %v needs max_restarts >= 1 (0 would silently disable aborts)", p.AbortProb)
	}
	if p.BackoffBase < 0 {
		return fmt.Errorf("fault: backoff_base %v must be non-negative", p.BackoffBase)
	}
	if p.BackoffCap < 0 {
		return fmt.Errorf("fault: backoff_cap %v must be non-negative (0 = uncapped)", p.BackoffCap)
	}
	if p.BackoffCap > 0 && p.BackoffCap < p.BackoffBase {
		return fmt.Errorf("fault: backoff_cap %v is below backoff_base %v", p.BackoffCap, p.BackoffBase)
	}
	for i, w := range p.Stalls {
		if w.Start < 0 {
			return fmt.Errorf("fault: stall %d starts at %v (must be non-negative)", i, w.Start)
		}
		if w.Duration <= 0 {
			return fmt.Errorf("fault: stall %d has non-positive duration %v", i, w.Duration)
		}
	}
	sort.SliceStable(p.Stalls, func(i, j int) bool { return p.Stalls[i].Start < p.Stalls[j].Start })
	for i := 1; i < len(p.Stalls); i++ {
		if p.Stalls[i].Start < p.Stalls[i-1].End() {
			return fmt.Errorf("fault: stall windows %d and %d overlap ([%v,%v) and [%v,%v))",
				i-1, i, p.Stalls[i-1].Start, p.Stalls[i-1].End(), p.Stalls[i].Start, p.Stalls[i].End())
		}
	}
	for i, b := range p.Bursts {
		if b.At < 0 {
			return fmt.Errorf("fault: burst %d at %v (must be non-negative)", i, b.At)
		}
		if b.Width <= 0 {
			return fmt.Errorf("fault: burst %d has non-positive width %v", i, b.Width)
		}
	}
	return nil
}

// Parse reads and validates a JSON plan.
func Parse(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and validates a JSON plan file.
func Load(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault: opening plan: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("fault: plan %s: %w", path, err)
	}
	return p, nil
}

// ApplyBursts compresses arrivals into the plan's flash-crowd instants,
// mutating the set in place, and returns how many transactions moved. The
// transform is idempotent (a moved arrival sits exactly at the window start,
// inside the window, and maps to itself), so replaying the same set under
// several policies sees one identical workload.
func (p *Plan) ApplyBursts(set *txn.Set) int {
	if p == nil || len(p.Bursts) == 0 {
		return 0
	}
	moved := 0
	for _, t := range set.Txns {
		for _, b := range p.Bursts {
			if t.Arrival > b.At && t.Arrival < b.At+b.Width {
				t.Arrival = b.At
				moved++
				break
			}
		}
	}
	return moved
}

// Backoff returns the restart delay after a transaction's k-th abort
// (k >= 1): BackoffBase doubled per prior abort, bounded by BackoffCap.
func (p *Plan) Backoff(k int) float64 {
	if p.BackoffBase == 0 || k < 1 {
		return 0
	}
	d := p.BackoffBase * math.Pow(2, float64(k-1))
	if p.BackoffCap > 0 && d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}

// abortDraw is the keyed Bernoulli source: a pure function of (seed, id,
// attempt), so the decision "transaction i aborts on its k-th attempt" is
// identical under every policy and every event ordering.
func (p *Plan) abortDraw(id txn.ID, attempt int) float64 {
	sm := rng.NewSplitMix64(p.Seed ^
		(uint64(id)+1)*0x9e3779b97f4a7c15 ^
		(uint64(attempt)+1)*0xd1342543de82ef95)
	return float64(sm.Next()>>11) / (1 << 53)
}

// held is one aborted transaction waiting out its backoff.
type held struct {
	at float64 // restart instant
	t  *txn.Transaction
}

// Injector executes one Plan over one run: it owns the per-transaction
// attempt counts, the backoff queue of aborted transactions, and the stall
// window cursor. Build a fresh Injector per run (sim.Run and executor.New do
// this from Options); the Plan itself is immutable and reusable.
type Injector struct {
	plan     *Plan
	attempts []int
	pending  []held // sorted by (at, id)
	stallIdx int    // first window with End() > the latest queried instant
	aborts   int
	restarts int
	stalls   int
}

// NewInjector prepares an injector for a workload of n transactions.
//
//lint:coldpath injector construction is per-run setup
func NewInjector(p *Plan, n int) *Injector {
	return &Injector{plan: p, attempts: make([]int, n)}
}

// Plan returns the immutable plan behind this injector.
func (in *Injector) Plan() *Plan { return in.plan }

// Aborts returns the aborts injected so far (including crash losses).
func (in *Injector) Aborts() int { return in.aborts }

// Restarts returns the restarts delivered so far.
func (in *Injector) Restarts() int { return in.restarts }

// StallsEntered returns the outage windows entered so far.
func (in *Injector) StallsEntered() int { return in.stalls }

// Held returns the number of aborted transactions waiting out a backoff.
func (in *Injector) Held() int { return len(in.pending) }

// Attempts returns the abort count of one transaction.
func (in *Injector) Attempts(id txn.ID) int { return in.attempts[id] }

// AbortsAttempt decides whether t's current completion attempt aborts. It
// does not mutate state; call RecordAbort to commit the abort.
func (in *Injector) AbortsAttempt(t *txn.Transaction) bool {
	if in.plan.AbortProb == 0 || in.attempts[t.ID] >= in.plan.MaxRestarts {
		return false
	}
	return in.plan.abortDraw(t.ID, in.attempts[t.ID]) < in.plan.AbortProb
}

// RecordAbort commits an abort of t at time now: the attempt count rises and
// t is held until its backoff expires. It returns the restart instant.
func (in *Injector) RecordAbort(now float64, t *txn.Transaction) float64 {
	in.attempts[t.ID]++
	in.aborts++
	at := now + in.plan.Backoff(in.attempts[t.ID])
	in.hold(at, t)
	return at
}

// RecordCrashLoss commits a crash loss of t: in-flight work is gone but no
// backoff applies — the transaction re-queues immediately (it cannot run
// before the window ends anyway). Crash losses do not consume restart
// attempts: they are the backend's fault, not the transaction's.
func (in *Injector) RecordCrashLoss(t *txn.Transaction) {
	in.aborts++
}

// hold inserts t into the pending queue, keeping (at, id) order so restart
// delivery is deterministic even when backoffs coincide.
func (in *Injector) hold(at float64, t *txn.Transaction) {
	//lint:ignore hotpath-alloc holds happen only on aborts (rare by construction) and the sort.Search closure does not escape
	i := sort.Search(len(in.pending), func(i int) bool {
		if in.pending[i].at != at {
			return in.pending[i].at > at
		}
		return in.pending[i].t.ID > t.ID
	})
	//lint:ignore hotpath-alloc pending grows only while aborted transactions back off, bounded by the restart budget
	in.pending = append(in.pending, held{})
	copy(in.pending[i+1:], in.pending[i:])
	in.pending[i] = held{at: at, t: t}
}

// NextRestart returns the earliest pending restart instant, or +Inf.
func (in *Injector) NextRestart() float64 {
	if len(in.pending) == 0 {
		return math.Inf(1)
	}
	return in.pending[0].at
}

// PopDueRestarts removes and returns the transactions whose backoff expired
// by now, in (restart time, ID) order.
func (in *Injector) PopDueRestarts(now float64) []*txn.Transaction {
	k := 0
	for k < len(in.pending) && in.pending[k].at <= now {
		k++
	}
	if k == 0 {
		return nil
	}
	out := make([]*txn.Transaction, k)
	for i := 0; i < k; i++ {
		out[i] = in.pending[i].t
	}
	in.pending = in.pending[:copy(in.pending, in.pending[k:])]
	in.restarts += k
	return out
}

// DrainHeld removes and returns every transaction waiting out a backoff, in
// (restart time, ID) order, without counting them as restarts. This is the
// instance-wide loss seam of the cluster tier: a single-backend crash window
// destroys only in-flight work (queued and backing-off transactions keep
// their place), but when a whole *instance* crashes its backoff queue dies
// with it — the cluster router drains it here and fails the transactions
// over to surviving instances instead of restarting them in place.
func (in *Injector) DrainHeld() []*txn.Transaction {
	if len(in.pending) == 0 {
		return nil
	}
	out := make([]*txn.Transaction, len(in.pending))
	for i := range in.pending {
		out[i] = in.pending[i].t
	}
	in.pending = in.pending[:0]
	return out
}

// advanceStallIdx moves the window cursor past windows fully behind now.
func (in *Injector) advanceStallIdx(now float64) {
	for in.stallIdx < len(in.plan.Stalls) && in.plan.Stalls[in.stallIdx].End() <= now {
		in.stallIdx++
	}
}

// InStall reports whether the backend is inside an outage window at now,
// returning the window and its index (for once-per-window bookkeeping on the
// caller's side) when so.
func (in *Injector) InStall(now float64) (Window, int, bool) {
	in.advanceStallIdx(now)
	if in.stallIdx < len(in.plan.Stalls) {
		w := in.plan.Stalls[in.stallIdx]
		if w.Start <= now && now < w.End() {
			return w, in.stallIdx, true
		}
	}
	return Window{}, -1, false
}

// NextStallStart returns the start of the first outage window strictly after
// now, or +Inf.
func (in *Injector) NextStallStart(now float64) float64 {
	in.advanceStallIdx(now)
	for i := in.stallIdx; i < len(in.plan.Stalls); i++ {
		if in.plan.Stalls[i].Start > now {
			return in.plan.Stalls[i].Start
		}
	}
	return math.Inf(1)
}

// RecordStallEntered counts an outage window the run actually hit.
func (in *Injector) RecordStallEntered() { in.stalls++ }
