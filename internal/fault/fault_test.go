package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/txn"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"abort prob above one", Plan{AbortProb: 1.5, MaxRestarts: 1}, "abort_prob"},
		{"abort prob negative", Plan{AbortProb: -0.1, MaxRestarts: 1}, "abort_prob"},
		{"negative restarts", Plan{MaxRestarts: -1}, "max_restarts"},
		{"prob without restarts", Plan{AbortProb: 0.5}, "max_restarts >= 1"},
		{"negative base", Plan{BackoffBase: -1}, "backoff_base"},
		{"negative cap", Plan{BackoffCap: -1}, "backoff_cap"},
		{"cap below base", Plan{BackoffBase: 4, BackoffCap: 2}, "below backoff_base"},
		{"negative stall start", Plan{Stalls: []Window{{Start: -1, Duration: 1}}}, "stall 0"},
		{"zero stall duration", Plan{Stalls: []Window{{Start: 1, Duration: 0}}}, "duration"},
		{"overlapping stalls", Plan{Stalls: []Window{{Start: 0, Duration: 5}, {Start: 3, Duration: 1}}}, "overlap"},
		{"negative burst", Plan{Bursts: []Burst{{At: -1, Width: 1}}}, "burst 0"},
		{"zero burst width", Plan{Bursts: []Burst{{At: 1, Width: 0}}}, "width"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateSortsStalls(t *testing.T) {
	p := Plan{Stalls: []Window{{Start: 10, Duration: 1}, {Start: 2, Duration: 1}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Stalls[0].Start != 2 || p.Stalls[1].Start != 10 {
		t.Fatalf("stalls not sorted: %+v", p.Stalls)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse(strings.NewReader(`{
		"seed": 7, "abort_prob": 0.2, "max_restarts": 3,
		"backoff_base": 0.5, "backoff_cap": 2,
		"stalls": [{"start": 5, "duration": 1, "kind": "crash"}, {"start": 1, "duration": 1}],
		"bursts": [{"at": 3, "width": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.AbortProb != 0.2 || len(p.Stalls) != 2 || len(p.Bursts) != 1 {
		t.Fatalf("unexpected plan %+v", p)
	}
	if p.Stalls[0].Kind != Stall || p.Stalls[1].Kind != Crash {
		t.Fatalf("kinds wrong after sort: %+v", p.Stalls)
	}
	if _, err := Parse(strings.NewReader(`{"sedd": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse(strings.NewReader(`{"stalls":[{"start":1,"duration":1,"kind":"melt"}]}`)); err == nil {
		t.Fatal("unknown window kind accepted")
	}
}

func TestZero(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Zero() {
		t.Fatal("nil plan should be zero")
	}
	if !(&Plan{Seed: 9}).Zero() {
		t.Fatal("seed-only plan should be zero")
	}
	if (&Plan{AbortProb: 0.1, MaxRestarts: 1}).Zero() {
		t.Fatal("aborting plan should not be zero")
	}
}

func TestBackoff(t *testing.T) {
	p := Plan{BackoffBase: 1, BackoffCap: 5}
	for k, want := range map[int]float64{0: 0, 1: 1, 2: 2, 3: 4, 4: 5, 10: 5} {
		if got := p.Backoff(k); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", k, got, want)
		}
	}
	uncapped := Plan{BackoffBase: 1}
	if got := uncapped.Backoff(6); got != 32 {
		t.Errorf("uncapped Backoff(6) = %v, want 32", got)
	}
}

func TestAbortDrawDeterministic(t *testing.T) {
	p := Plan{Seed: 42}
	for id := txn.ID(0); id < 50; id++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := p.abortDraw(id, attempt)
			b := p.abortDraw(id, attempt)
			if a != b {
				t.Fatalf("draw (%d,%d) not stable: %v vs %v", id, attempt, a, b)
			}
			if a < 0 || a >= 1 {
				t.Fatalf("draw (%d,%d) = %v out of [0,1)", id, attempt, a)
			}
		}
	}
	// Different keys must draw differently (not a constant function).
	if p.abortDraw(0, 0) == p.abortDraw(1, 0) && p.abortDraw(0, 0) == p.abortDraw(2, 0) {
		t.Fatal("draws look constant across transaction IDs")
	}
}

func testSet(t *testing.T, arrivals ...float64) *txn.Set {
	t.Helper()
	txns := make([]*txn.Transaction, len(arrivals))
	for i, a := range arrivals {
		txns[i] = &txn.Transaction{ID: txn.ID(i), Arrival: a, Deadline: a + 10, Length: 1, Weight: 1}
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestApplyBursts(t *testing.T) {
	p := &Plan{Bursts: []Burst{{At: 2, Width: 3}}}
	set := testSet(t, 1, 2, 3, 4.5, 5, 6)
	moved := p.ApplyBursts(set)
	if moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	want := []float64{1, 2, 2, 2, 5, 6}
	for i, w := range want {
		if got := set.Txns[i].Arrival; got != w {
			t.Errorf("txn %d arrival = %v, want %v", i, got, w)
		}
	}
	// Idempotent: a second application moves nothing further.
	if again := p.ApplyBursts(set); again != 0 {
		t.Fatalf("second ApplyBursts moved %d", again)
	}
}

func TestInjectorAbortLifecycle(t *testing.T) {
	p := &Plan{Seed: 1, AbortProb: 1, MaxRestarts: 2, BackoffBase: 0.5, BackoffCap: 10}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	set := testSet(t, 0)
	in := NewInjector(p, set.Len())
	tr := set.Txns[0]

	if !in.AbortsAttempt(tr) {
		t.Fatal("prob=1 attempt 0 should abort")
	}
	at := in.RecordAbort(1.0, tr)
	if at != 1.5 {
		t.Fatalf("first restart at %v, want 1.5", at)
	}
	if in.Held() != 1 || in.NextRestart() != 1.5 {
		t.Fatalf("held=%d next=%v", in.Held(), in.NextRestart())
	}
	if got := in.PopDueRestarts(1.4); got != nil {
		t.Fatalf("popped early: %v", got)
	}
	got := in.PopDueRestarts(1.5)
	if len(got) != 1 || got[0] != tr {
		t.Fatalf("PopDueRestarts = %v", got)
	}
	if in.Held() != 0 || !math.IsInf(in.NextRestart(), 1) {
		t.Fatal("restart queue not drained")
	}

	// Second abort doubles the backoff.
	if !in.AbortsAttempt(tr) {
		t.Fatal("attempt 1 should abort")
	}
	if at := in.RecordAbort(3.0, tr); at != 4.0 {
		t.Fatalf("second restart at %v, want 4.0", at)
	}
	in.PopDueRestarts(4.0)

	// MaxRestarts reached: the next attempt must commit.
	if in.AbortsAttempt(tr) {
		t.Fatal("attempt after MaxRestarts should commit")
	}
	if in.Aborts() != 2 || in.Restarts() != 2 || in.Attempts(tr.ID) != 2 {
		t.Fatalf("counters: aborts=%d restarts=%d attempts=%d", in.Aborts(), in.Restarts(), in.Attempts(tr.ID))
	}
}

func TestInjectorRestartOrdering(t *testing.T) {
	p := &Plan{AbortProb: 1, MaxRestarts: 1}
	set := testSet(t, 0, 0, 0)
	in := NewInjector(p, set.Len())
	// Same restart instant (zero backoff): delivery must be ID-ordered
	// regardless of abort order.
	in.RecordAbort(2, set.Txns[2])
	in.RecordAbort(2, set.Txns[0])
	in.RecordAbort(2, set.Txns[1])
	got := in.PopDueRestarts(2)
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("restart order = %v", got)
	}
}

func TestInjectorStallWindows(t *testing.T) {
	p := &Plan{Stalls: []Window{{Start: 2, Duration: 1}, {Start: 5, Duration: 2, Kind: Crash}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p, 0)
	if _, _, ok := in.InStall(1.9); ok {
		t.Fatal("in stall before window")
	}
	if got := in.NextStallStart(0); got != 2 {
		t.Fatalf("NextStallStart(0) = %v, want 2", got)
	}
	w, idx, ok := in.InStall(2)
	if !ok || idx != 0 || w.Kind != Stall || w.End() != 3 {
		t.Fatalf("InStall(2) = %+v %d %v", w, idx, ok)
	}
	if _, _, ok := in.InStall(3); ok {
		t.Fatal("window end is exclusive")
	}
	if got := in.NextStallStart(3); got != 5 {
		t.Fatalf("NextStallStart(3) = %v, want 5", got)
	}
	w, idx, ok = in.InStall(6.5)
	if !ok || idx != 1 || w.Kind != Crash {
		t.Fatalf("InStall(6.5) = %+v %d %v", w, idx, ok)
	}
	if got := in.NextStallStart(7); !math.IsInf(got, 1) {
		t.Fatalf("NextStallStart(7) = %v, want +Inf", got)
	}
}

func TestWindowKindJSONRoundTrip(t *testing.T) {
	for _, k := range []WindowKind{Stall, Crash} {
		w := Window{Start: 1, Duration: 2, Kind: k}
		b, err := w.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Window
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != w {
			t.Fatalf("round trip %v -> %s -> %v", w, b, back)
		}
	}
}

// TestInjectorDrainHeld pins the instance-wide loss seam: draining the
// backoff queue returns every held transaction in (restart time, ID) order,
// empties the queue, and counts no restarts — the cluster router fails the
// drained transactions over instead of restarting them in place.
func TestInjectorDrainHeld(t *testing.T) {
	p := &Plan{AbortProb: 1, MaxRestarts: 1, BackoffBase: 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	set := testSet(t, 0, 0, 0)
	in := NewInjector(p, set.Len())
	// Restart instants: txn 1 at 3, txn 2 at 2, txn 0 at 3 — drain order
	// must be (at, id): txn 2, txn 0, txn 1.
	in.RecordAbort(2, set.Txns[1])
	in.RecordAbort(1, set.Txns[2])
	in.RecordAbort(2, set.Txns[0])
	got := in.DrainHeld()
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 0 || got[2].ID != 1 {
		t.Fatalf("DrainHeld order = %v, want txns 2, 0, 1", got)
	}
	if in.Held() != 0 || !math.IsInf(in.NextRestart(), 1) {
		t.Fatalf("queue not emptied: held=%d next=%v", in.Held(), in.NextRestart())
	}
	if in.Restarts() != 0 {
		t.Fatalf("drain counted %d restarts, want 0 (failover, not restart)", in.Restarts())
	}
	if in.PopDueRestarts(100) != nil {
		t.Fatal("drained transactions must not restart later")
	}
	if in.DrainHeld() != nil {
		t.Fatal("second drain should return nil")
	}
}
