package fault

import (
	"repro/internal/obs"
	"repro/internal/txn"
)

// Metric names of the fault-injection and overload-protection layer; the
// taxonomy is documented in docs/ROBUSTNESS.md and docs/OBSERVABILITY.md.
const (
	MetricAborts   = "asets_fault_aborts_total"
	MetricRestarts = "asets_fault_restarts_total"
	MetricStalls   = "asets_fault_stalls_total"
	MetricShed     = "asets_admit_shed_total"
	MetricDegraded = "asets_admit_degraded"
)

// Recorder fans fault and admission decisions into the unified
// instrumentation layer: one typed obs.Event per decision plus the matching
// registry update. Either output may be absent — a nil sink drops events, a
// nil registry drops counts — so uninstrumented fault runs pay almost
// nothing. Events are stamped with simulated time only, exactly like the
// scheduler decision stream they interleave with.
type Recorder struct {
	sink     obs.Sink
	aborts   *obs.Counter
	restarts *obs.Counter
	stalls   *obs.Counter
	sheds    *obs.Counter
	degraded *obs.Gauge
}

// NewRecorder wires a recorder to sink and reg (either may be nil).
//
//lint:coldpath recorder wiring is per-run setup
func NewRecorder(sink obs.Sink, reg *obs.Registry) *Recorder {
	if sink == nil {
		sink = obs.Discard
	}
	r := &Recorder{sink: sink}
	if reg != nil {
		r.aborts = reg.Counter(MetricAborts, "transaction aborts (including crash losses)")
		r.restarts = reg.Counter(MetricRestarts, "aborted transactions re-queued after backoff")
		r.stalls = reg.Counter(MetricStalls, "backend stall/crash windows entered")
		r.sheds = reg.Counter(MetricShed, "transactions shed by the admission controller")
		r.degraded = reg.Gauge(MetricDegraded, "1 while the admission controller is in degradation mode")
	}
	return r
}

// Abort records an abort of t at now. detail distinguishes the injector's
// keyed aborts ("abort") from crash losses ("crash"); retryAt carries the
// restart instant for keyed aborts (crash losses re-queue immediately).
func (r *Recorder) Abort(now float64, t *txn.Transaction, detail string, retryAt float64) {
	if r.aborts != nil {
		r.aborts.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindAbort, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: retryAt - now, Detail: detail,
	})
}

// Restart records t re-entering the scheduler after its backoff expired.
func (r *Recorder) Restart(now float64, t *txn.Transaction) {
	if r.restarts != nil {
		r.restarts.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindRestart, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining,
	})
}

// StallEntered records the backend entering an outage window.
func (r *Recorder) StallEntered(now float64, w Window) {
	if r.stalls != nil {
		r.stalls.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindStall, Txn: -1, Workflow: -1,
		Remaining: w.Duration, Detail: w.Kind.String(),
	})
}

// Shed records the admission controller rejecting t at arrival.
func (r *Recorder) Shed(now float64, t *txn.Transaction, controller string) {
	if r.sheds != nil {
		r.sheds.Inc()
	}
	r.sink.Emit(obs.Event{
		Time: now, Kind: obs.KindShed, Txn: t.ID, Workflow: -1,
		Deadline: t.Deadline, Remaining: t.Remaining, Detail: controller,
	})
}

// Degrade records the admission controller crossing into (on=true) or out of
// (on=false) degradation mode.
func (r *Recorder) Degrade(now float64, on bool) {
	kind := obs.KindDegradeExit
	v := 0.0
	if on {
		kind = obs.KindDegradeEnter
		v = 1
	}
	if r.degraded != nil {
		r.degraded.Set(v)
	}
	r.sink.Emit(obs.Event{Time: now, Kind: kind, Txn: -1, Workflow: -1})
}
