// Package analysis post-processes simulation traces into the diagnostics a
// scheduling researcher reaches for when a figure looks off: busy/idle
// period structure, per-class tardiness breakdowns (dependent versus
// independent transactions, weight classes), wait-time decompositions
// (dependency wait versus queueing wait), and an ASCII Gantt view of small
// schedules.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/txn"
)

// Period is a contiguous busy or idle stretch of the backend server.
type Period struct {
	Start float64
	End   float64
	Busy  bool
}

// Duration returns the period's length.
func (p Period) Duration() float64 { return p.End - p.Start }

// Periods reconstructs the alternating busy/idle structure of a schedule
// from its execution slices (which the simulator records in time order).
func Periods(rec *trace.Recorder) []Period {
	slices := rec.SortedByStart()
	if len(slices) == 0 {
		return nil
	}
	var out []Period
	cur := Period{Start: slices[0].Start, End: slices[0].End, Busy: true}
	for _, s := range slices[1:] {
		if s.Start > cur.End {
			out = append(out, cur)
			out = append(out, Period{Start: cur.End, End: s.Start, Busy: false})
			cur = Period{Start: s.Start, End: s.End, Busy: true}
			continue
		}
		if s.End > cur.End {
			cur.End = s.End
		}
	}
	out = append(out, cur)
	return out
}

// ClassStats aggregates tardiness over one transaction class.
type ClassStats struct {
	Class        string
	N            int
	AvgTardiness float64
	MaxTardiness float64
	MissRatio    float64
}

// ByDependency splits the finished workload into independent and dependent
// transaction classes — the split that exposes where the workflow-level
// boost of ASETS* lands (see EXPERIMENTS.md).
func ByDependency(set *txn.Set) []ClassStats {
	classify := func(t *txn.Transaction) string {
		if t.Independent() {
			return "independent"
		}
		return "dependent"
	}
	return byClass(set, classify)
}

// ByWeight buckets transactions by integer weight.
func ByWeight(set *txn.Set) []ClassStats {
	return byClass(set, func(t *txn.Transaction) string {
		return fmt.Sprintf("w=%g", t.Weight)
	})
}

func byClass(set *txn.Set, classify func(*txn.Transaction) string) []ClassStats {
	agg := map[string]*ClassStats{}
	for _, t := range set.Txns {
		c := classify(t)
		st, ok := agg[c]
		if !ok {
			st = &ClassStats{Class: c}
			agg[c] = st
		}
		st.N++
		tard := t.Tardiness()
		st.AvgTardiness += tard
		if tard > st.MaxTardiness {
			st.MaxTardiness = tard
		}
		if tard > 0 {
			st.MissRatio++
		}
	}
	out := make([]ClassStats, 0, len(agg))
	//lint:ignore maprange per-class rows are sorted by class immediately below
	for _, st := range agg {
		if st.N > 0 {
			st.AvgTardiness /= float64(st.N)
			st.MissRatio /= float64(st.N)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// WaitBreakdown decomposes one transaction's time in system into dependency
// wait (arrival until its last dependency finished), queueing wait (ready
// but not executing), and service.
type WaitBreakdown struct {
	ID       txn.ID
	DepWait  float64
	Queueing float64
	Service  float64
}

// Waits computes the breakdown for every transaction from a validated trace.
func Waits(set *txn.Set, rec *trace.Recorder) []WaitBreakdown {
	service := rec.PerTxnService(set.Len())
	out := make([]WaitBreakdown, set.Len())
	for _, t := range set.Txns {
		ready := t.Arrival
		for _, d := range t.Deps {
			if f := set.ByID(d).FinishTime; f > ready {
				ready = f
			}
		}
		w := WaitBreakdown{ID: t.ID, Service: service[t.ID]}
		w.DepWait = ready - t.Arrival
		w.Queueing = (t.FinishTime - ready) - w.Service
		if w.Queueing < 0 {
			w.Queueing = 0 // float64 slack on adjacent events
		}
		out[t.ID] = w
	}
	return out
}

// SummarizeWaits averages the per-transaction breakdowns.
func SummarizeWaits(waits []WaitBreakdown) (depWait, queueing, service float64) {
	if len(waits) == 0 {
		return 0, 0, 0
	}
	for _, w := range waits {
		depWait += w.DepWait
		queueing += w.Queueing
		service += w.Service
	}
	n := float64(len(waits))
	return depWait / n, queueing / n, service / n
}

// Gantt renders an ASCII Gantt chart of a small schedule: one row per
// transaction, one column per time unit (scaled to width). Intended for
// traces of at most a few dozen transactions — examples and debugging, not
// the 1000-transaction experiment runs.
func Gantt(set *txn.Set, rec *trace.Recorder, width int) string {
	if set.Len() == 0 || len(rec.Slices) == 0 {
		return "(empty schedule)\n"
	}
	if width < 20 {
		width = 20
	}
	var makespan float64
	for _, s := range rec.Slices {
		if s.End > makespan {
			makespan = s.End
		}
	}
	scale := float64(width) / makespan

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.1f (one column = %.2f time units)\n", makespan, makespan/float64(width))
	for _, t := range set.Txns {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range rec.Slices {
			if s.ID != t.ID {
				continue
			}
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		// Mark arrival and deadline.
		if a := int(t.Arrival * scale); a < width && row[a] == '.' {
			row[a] = 'a'
		}
		if d := int(t.Deadline * scale); d < width {
			if row[d] == '.' || row[d] == 'a' {
				row[d] = 'd'
			} else {
				row[d] = 'D' // deadline inside an execution slice
			}
		}
		status := "on time"
		if tard := t.Tardiness(); tard > 0 {
			status = fmt.Sprintf("tardy %.1f", tard)
		}
		fmt.Fprintf(&b, "T%-4d |%s| %s\n", t.ID, row, status)
	}
	b.WriteString("legend: # running, a arrival, d deadline, D deadline during run\n")
	return b.String()
}
