package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

func TestBacklogSeriesSmall(t *testing.T) {
	// T0 runs 0-4 (deadline 10, never late); T1 arrives 1, waits until 4,
	// runs 4-6 with deadline 3 => late from early on.
	set, rec := runTraced(t, sched.NewFCFS(),
		mk(0, 0, 10, 4),
		mk(1, 1, 3, 2),
	)
	series := BacklogSeries(set, rec, 13) // samples every 0.5 units
	if len(series) != 13 {
		t.Fatalf("series length %d", len(series))
	}
	// At t=0 only T0 is present.
	if series[0].Backlog != 1 || series[0].Late != 0 {
		t.Fatalf("t=0 sample: %+v", series[0])
	}
	// At t=2 both present; T1 is late (2 + 2 > 3).
	at2 := series[4] // 6.0 * 4/12 = 2.0
	if at2.Backlog != 2 || at2.Late != 1 {
		t.Fatalf("t=2 sample: %+v", at2)
	}
	// Final sample: everything finished.
	last := series[len(series)-1]
	if last.Backlog != 0 || last.Late != 0 {
		t.Fatalf("final sample: %+v", last)
	}
}

func TestBacklogRemainingAccountsService(t *testing.T) {
	// A transaction that has received service is late only by its true
	// remaining work: T0 len 4, d=5; at t=4 (about to finish) it is not
	// late (4 + 0.?? <= 5).
	set, rec := runTraced(t, sched.NewFCFS(), mk(0, 0, 5, 4))
	series := BacklogSeries(set, rec, 9) // every 0.5 of makespan 4
	for _, p := range series {
		if p.Late != 0 {
			t.Fatalf("on-time transaction sampled late: %+v", p)
		}
	}
}

func TestBacklogDegenerate(t *testing.T) {
	set, rec := runTraced(t, sched.NewFCFS(), mk(0, 0, 5, 4))
	if s := BacklogSeries(set, rec, 1); s != nil {
		t.Fatal("samples<2 should return nil")
	}
	empty, err := txn.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := BacklogSeries(empty, &trace.Recorder{}, 5); s != nil {
		t.Fatal("empty set should return nil")
	}
}

func TestPeakAndLateShare(t *testing.T) {
	series := []BacklogPoint{
		{Time: 0, Backlog: 2, Late: 0},
		{Time: 1, Backlog: 5, Late: 2},
		{Time: 2, Backlog: 3, Late: 3},
		{Time: 3, Backlog: 0, Late: 0},
	}
	b, l := PeakBacklog(series)
	if b != 5 || l != 3 {
		t.Fatalf("peak = %d/%d", b, l)
	}
	want := (0.0 + 2.0/5 + 1.0) / 3
	if got := MeanLateShare(series); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("late share = %v, want %v", got, want)
	}
	if MeanLateShare(nil) != 0 {
		t.Fatal("empty late share")
	}
}

// TestDominoEffectVisible reproduces the paper's Section III-A.1 argument
// quantitatively: under overload, EDF keeps prioritizing transactions whose
// deadlines are already lost, so its backlog carries a higher late share
// than ASETS*, which migrates them to the SRPT list.
func TestDominoEffectVisible(t *testing.T) {
	cfg := workload.Default(1.0, 99)
	cfg.N = 500
	run := func(s sched.Scheduler) float64 {
		set := workload.MustGenerate(cfg)
		rec := &trace.Recorder{}
		if _, err := sim.New(sim.Config{Recorder: rec}).Run(set, s); err != nil {
			t.Fatal(err)
		}
		return MeanLateShare(BacklogSeries(set, rec, 200))
	}
	edf := run(sched.NewEDF())
	asets := run(core.New())
	if asets >= edf {
		t.Fatalf("late share: ASETS* %v should be below EDF %v under overload", asets, edf)
	}
}
