package analysis

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/txn"
)

// BacklogPoint samples the system state at one instant.
type BacklogPoint struct {
	// Time of the sample.
	Time float64
	// Backlog is the number of arrived, unfinished transactions.
	Backlog int
	// Late is the number of arrived, unfinished transactions that have
	// already passed the point of meeting their deadline even if started
	// immediately (t + r > d) — the population EDF's domino effect feeds
	// on (Section III-A.1).
	Late int
}

// BacklogSeries reconstructs the backlog and late-set sizes over time from
// a finished workload and its trace, sampled at `samples` evenly spaced
// instants across the schedule. No simulator instrumentation is needed:
// arrivals and finish times determine the backlog, and per-transaction
// service prefixes determine how much work remained at each sample.
func BacklogSeries(set *txn.Set, rec *trace.Recorder, samples int) []BacklogPoint {
	if samples < 2 || set.Len() == 0 {
		return nil
	}
	var makespan float64
	for _, t := range set.Txns {
		if t.FinishTime > makespan {
			makespan = t.FinishTime
		}
	}
	if makespan == 0 {
		return nil
	}

	// Per-transaction slices sorted by start, for remaining-work queries.
	perTxn := make([][]trace.Slice, set.Len())
	for _, s := range rec.Slices {
		perTxn[s.ID] = append(perTxn[s.ID], s)
	}
	for _, ss := range perTxn {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	}
	remainingAt := func(id txn.ID, at float64) float64 {
		rem := set.ByID(id).Length
		for _, s := range perTxn[id] {
			if s.End <= at {
				rem -= s.Duration()
			} else if s.Start < at {
				rem -= at - s.Start
			} else {
				break
			}
		}
		if rem < 0 {
			rem = 0
		}
		return rem
	}

	out := make([]BacklogPoint, 0, samples)
	for i := 0; i < samples; i++ {
		at := makespan * float64(i) / float64(samples-1)
		p := BacklogPoint{Time: at}
		for _, t := range set.Txns {
			if t.Arrival > at || t.FinishTime <= at {
				continue
			}
			p.Backlog++
			if at+remainingAt(t.ID, at) > t.Deadline {
				p.Late++
			}
		}
		out = append(out, p)
	}
	return out
}

// PeakBacklog returns the maximum backlog and late-set sizes over a series.
func PeakBacklog(series []BacklogPoint) (backlog, late int) {
	for _, p := range series {
		if p.Backlog > backlog {
			backlog = p.Backlog
		}
		if p.Late > late {
			late = p.Late
		}
	}
	return backlog, late
}

// MeanLateShare returns the average fraction of the backlog that is already
// late, over samples with non-empty backlog. A policy prone to the domino
// effect drags a persistently high late share; ASETS* bounds it by shifting
// late transactions to the SRPT/HDF list.
func MeanLateShare(series []BacklogPoint) float64 {
	var sum float64
	n := 0
	for _, p := range series {
		if p.Backlog == 0 {
			continue
		}
		sum += float64(p.Late) / float64(p.Backlog)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
