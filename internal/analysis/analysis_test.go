package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

func mk(id int, arrival, deadline, length float64, deps ...txn.ID) *txn.Transaction {
	return &txn.Transaction{
		ID:       txn.ID(id),
		Arrival:  arrival,
		Deadline: deadline,
		Length:   length,
		Weight:   1,
		Deps:     deps,
	}
}

func runTraced(t *testing.T, s sched.Scheduler, txns ...*txn.Transaction) (*txn.Set, *trace.Recorder) {
	t.Helper()
	set, err := txn.NewSet(txns)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	if _, err := sim.New(sim.Config{Recorder: rec}).Run(set, s); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(set); err != nil {
		t.Fatal(err)
	}
	return set, rec
}

func TestPeriodsBusyIdle(t *testing.T) {
	set, rec := runTraced(t, sched.NewFCFS(),
		mk(0, 0, 100, 2),
		mk(1, 10, 100, 3),
	)
	_ = set
	periods := Periods(rec)
	if len(periods) != 3 {
		t.Fatalf("periods = %v, want busy/idle/busy", periods)
	}
	if !periods[0].Busy || periods[1].Busy || !periods[2].Busy {
		t.Fatalf("period pattern wrong: %v", periods)
	}
	if periods[1].Duration() != 8 {
		t.Fatalf("idle gap = %v, want 8", periods[1].Duration())
	}
}

func TestPeriodsEmpty(t *testing.T) {
	if p := Periods(&trace.Recorder{}); p != nil {
		t.Fatalf("empty trace periods = %v", p)
	}
}

func TestByDependency(t *testing.T) {
	set, _ := runTraced(t, core.New(),
		mk(0, 0, 1, 5),
		mk(1, 0, 1, 5, 0),
		mk(2, 0, 100, 5),
	)
	classes := ByDependency(set)
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	var dep, indep ClassStats
	for _, c := range classes {
		if c.Class == "dependent" {
			dep = c
		} else {
			indep = c
		}
	}
	if dep.N != 1 || indep.N != 2 {
		t.Fatalf("counts: dep %d indep %d", dep.N, indep.N)
	}
	if dep.AvgTardiness <= 0 {
		t.Fatal("dependent behind a tardy producer must be tardy")
	}
}

func TestByWeight(t *testing.T) {
	a := mk(0, 0, 100, 1)
	b := mk(1, 0, 100, 1)
	b.Weight = 5
	set, _ := runTraced(t, sched.NewHDF(), a, b)
	classes := ByWeight(set)
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestWaitsDecomposition(t *testing.T) {
	// T0: runs 0-4. T1 depends on T0, arrives at 0: dep wait 4, then runs
	// 4-6 with no queueing. T2 arrives at 0 (indep, short deadline loses to
	// FCFS): queueing only.
	set, rec := runTraced(t, sched.NewFCFS(),
		mk(0, 0, 100, 4),
		mk(1, 0, 100, 2, 0),
		mk(2, 1, 100, 3),
	)
	waits := Waits(set, rec)
	w1 := waits[1]
	if math.Abs(w1.DepWait-4) > 1e-9 || math.Abs(w1.Queueing) > 1e-9 || w1.Service != 2 {
		t.Fatalf("T1 breakdown = %+v", w1)
	}
	w2 := waits[2]
	if w2.DepWait != 0 || math.Abs(w2.Queueing-5) > 1e-9 || w2.Service != 3 {
		t.Fatalf("T2 breakdown = %+v (finish %v)", w2, set.ByID(2).FinishTime)
	}
	dep, q, svc := SummarizeWaits(waits)
	if dep <= 0 || q <= 0 || svc <= 0 {
		t.Fatalf("summary = %v %v %v", dep, q, svc)
	}
}

func TestSummarizeWaitsEmpty(t *testing.T) {
	d, q, s := SummarizeWaits(nil)
	if d != 0 || q != 0 || s != 0 {
		t.Fatal("empty summarize non-zero")
	}
}

func TestGanttRenders(t *testing.T) {
	set, rec := runTraced(t, sched.NewEDF(),
		mk(0, 0, 10, 4),
		mk(1, 1, 4, 2),
	)
	out := Gantt(set, rec, 40)
	for _, want := range []string{"T0", "T1", "#", "legend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	set, _ := txn.NewSet(nil)
	if out := Gantt(set, &trace.Recorder{}, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty gantt = %q", out)
	}
}

// TestWaitsConservation: dep wait + queueing + service equals response time
// for every transaction on a generated workload.
func TestWaitsConservation(t *testing.T) {
	cfg := workload.Default(0.8, 3).WithWorkflows(5, 1)
	cfg.N = 300
	set := workload.MustGenerate(cfg)
	rec := &trace.Recorder{}
	if _, err := sim.New(sim.Config{Recorder: rec}).Run(set, core.New()); err != nil {
		t.Fatal(err)
	}
	for _, w := range Waits(set, rec) {
		tx := set.ByID(w.ID)
		resp := tx.FinishTime - tx.Arrival
		if math.Abs(w.DepWait+w.Queueing+w.Service-resp) > 1e-6 {
			t.Fatalf("T%d: %v + %v + %v != response %v", w.ID, w.DepWait, w.Queueing, w.Service, resp)
		}
	}
}
