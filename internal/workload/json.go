package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/txn"
)

// fileFormat is the on-disk JSON schema for generated workloads. Keeping an
// explicit version lets the loader reject files written by incompatible
// future revisions instead of silently misreading them.
type fileFormat struct {
	Version      int               `json:"version"`
	Config       *Config           `json:"config,omitempty"`
	Transactions []fileTransaction `json:"transactions"`
}

type fileTransaction struct {
	ID       int      `json:"id"`
	Arrival  float64  `json:"arrival"`
	Deadline float64  `json:"deadline"`
	Length   float64  `json:"length"`
	Weight   float64  `json:"weight"`
	Deps     []txn.ID `json:"deps,omitempty"`
}

// formatVersion is bumped on incompatible schema changes.
const formatVersion = 1

// WriteJSON serializes a workload (and, optionally, the configuration that
// generated it) to w. The output replays identically through ReadJSON on
// any platform.
func WriteJSON(w io.Writer, set *txn.Set, cfg *Config) error {
	ff := fileFormat{Version: formatVersion, Config: cfg}
	ff.Transactions = make([]fileTransaction, set.Len())
	for i, t := range set.Txns {
		ff.Transactions[i] = fileTransaction{
			ID:       int(t.ID),
			Arrival:  t.Arrival,
			Deadline: t.Deadline,
			Length:   t.Length,
			Weight:   t.Weight,
			Deps:     t.Deps,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// ReadJSON loads a workload written by WriteJSON, re-validating every
// structural invariant (dense IDs, acyclic dependencies, positive lengths).
// The embedded config, when present, is returned for provenance.
func ReadJSON(r io.Reader) (*txn.Set, *Config, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, nil, fmt.Errorf("workload: decoding: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, nil, fmt.Errorf("workload: unsupported file version %d (want %d)", ff.Version, formatVersion)
	}
	txns := make([]*txn.Transaction, len(ff.Transactions))
	for i, ft := range ff.Transactions {
		txns[i] = &txn.Transaction{
			ID:       txn.ID(ft.ID),
			Arrival:  ft.Arrival,
			Deadline: ft.Deadline,
			Length:   ft.Length,
			Weight:   ft.Weight,
			Deps:     ft.Deps,
		}
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		return nil, nil, err
	}
	return set, ff.Config, nil
}
