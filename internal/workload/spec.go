package workload

import (
	"repro/internal/contention"
	"repro/internal/rng"
	"repro/internal/txn"
)

// contentionSeedStream separates the derived key-draw seed from the
// workload's arrival/length stream when a Spec leaves Keyspace.Seed unset.
const contentionSeedStream = 0xc0_17e4d

// Spec is the single validated entry point for building workloads: plain
// Table-I sets, workflow-shaped sets, and contended sets with read/write
// key assignments all construct through one Build call. It replaces the
// accreted pattern of chaining Config builders into Generate and then
// hand-assigning extras, and is the construction surface the root facade
// re-exports.
//
//	set, err := workload.NewSpec(0.9, 42).
//		WithWorkflows(5, 2).
//		WithContention(contention.Keyspace{Keys: 64, Alpha: 0.9, Reads: 4, Writes: 2}).
//		Build()
type Spec struct {
	// Config carries the Table-I generator parameters; Spec's builder
	// methods mirror Config's so call chains never drop out of Spec.
	Config
	// Contention, when non-nil, draws Zipf-skewed read/write sets over the
	// keyspace for every generated transaction, switching the run loops to
	// commit-time validation (docs/CONTENTION.md).
	Contention *contention.Keyspace
}

// NewSpec returns the Table-I default workload specification at the given
// target utilization: independent, unweighted, uncontended.
func NewSpec(utilization float64, seed uint64) Spec {
	return Spec{Config: Default(utilization, seed)}
}

// WithN returns a copy generating n transactions.
func (s Spec) WithN(n int) Spec {
	s.N = n
	return s
}

// WithWeights returns a copy with weights drawn from [1, 10] (Table I).
func (s Spec) WithWeights() Spec {
	s.Config = s.Config.WithWeights()
	return s
}

// WithWorkflows returns a copy generating dependency chains with the given
// maximum length and per-transaction membership bound.
func (s Spec) WithWorkflows(maxLen, maxMembership int) Spec {
	s.Config = s.Config.WithWorkflows(maxLen, maxMembership)
	return s
}

// WithCache returns a copy where each transaction is a cache hit with the
// given probability, costing speedup times its drawn length.
func (s Spec) WithCache(hitRatio, speedup float64) Spec {
	s.Config = s.Config.WithCache(hitRatio, speedup)
	return s
}

// WithContention returns a copy drawing read/write sets over ks. A zero
// ks.Seed derives the key-draw seed from the workload seed, so one seed
// still pins the whole workload.
func (s Spec) WithContention(ks contention.Keyspace) Spec {
	s.Contention = &ks
	return s
}

// Validate reports the first invalid parameter across the generator and
// contention layers.
func (s Spec) Validate() error {
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if s.Contention != nil {
		if err := s.Contention.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Build generates the validated transaction set: Table-I generation first,
// then key assignment when contention is configured.
func (s Spec) Build() (*txn.Set, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	set, err := Generate(s.Config)
	if err != nil {
		return nil, err
	}
	if s.Contention != nil {
		ks := *s.Contention
		if ks.Seed == 0 {
			ks.Seed = rng.Derive(s.Seed, contentionSeedStream)
		}
		if err := contention.Assign(set, ks); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// MustBuild is Build but panics on error, for benchmarks and examples with
// constant specifications.
func (s Spec) MustBuild() *txn.Set {
	set, err := s.Build()
	if err != nil {
		panic(err)
	}
	return set
}
