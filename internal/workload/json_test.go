package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	cfg := Default(0.8, 99).WithWorkflows(4, 2).WithWeights()
	cfg.N = 150
	set := MustGenerate(cfg)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, set, &cfg); err != nil {
		t.Fatal(err)
	}
	got, gotCfg, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg == nil || gotCfg.Seed != 99 || gotCfg.N != 150 {
		t.Fatalf("config round-trip: %+v", gotCfg)
	}
	if got.Len() != set.Len() {
		t.Fatalf("len %d vs %d", got.Len(), set.Len())
	}
	for i := range set.Txns {
		a, b := set.Txns[i], got.Txns[i]
		if a.Arrival != b.Arrival || a.Deadline != b.Deadline ||
			a.Length != b.Length || a.Weight != b.Weight || len(a.Deps) != len(b.Deps) {
			t.Fatalf("transaction %d differs after round-trip", i)
		}
	}
}

func TestJSONWithoutConfig(t *testing.T) {
	set := MustGenerate(Default(0.5, 1))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, set, nil); err != nil {
		t.Fatal(err)
	}
	_, cfg, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != nil {
		t.Fatalf("config = %+v, want nil", cfg)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONRejectsWrongVersion(t *testing.T) {
	in := `{"version": 99, "transactions": []}`
	if _, _, err := ReadJSON(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadJSONRevalidates(t *testing.T) {
	// A structurally broken workload (cycle) must be rejected on load.
	in := `{"version": 1, "transactions": [
		{"id": 0, "arrival": 0, "deadline": 5, "length": 1, "weight": 1, "deps": [1]},
		{"id": 1, "arrival": 0, "deadline": 5, "length": 1, "weight": 1, "deps": [0]}
	]}`
	if _, _, err := ReadJSON(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}
