// Package workload generates the synthetic transaction workloads of the
// paper's evaluation (Table I and Section IV-A):
//
//   - 1000 transactions per run, lengths drawn from a Zipf(alpha=0.5)
//     distribution over [1, 50] time units, skewed toward short transactions;
//   - Poisson arrivals with rate = SystemUtilization / AvgTransactionLength;
//   - deadlines d_i = a_i + l_i + k_i*l_i with the slack factor k_i uniform
//     on [0, kmax] (default kmax = 3);
//   - integer weights uniform on [1, 10] (unit weights for the unweighted
//     experiments);
//   - workflows built as dependency chains whose length is uniform on
//     [1, MaxWorkflowLength], with each transaction joining up to
//     MaxMembership chains (Section IV-A "Workflows").
//
// The paper does not disclose how workflow members are selected, how the
// precedence order within a workflow relates to arrival order, or whether a
// page's transactions are submitted together (as Section II-B's application
// scenario describes) or individually. Those three degrees of freedom are
// exposed as ChainMembers, ChainOrder and ChainArrivals so experiments can
// state exactly which reading they use; DESIGN.md records the defaults and
// the sensitivity study behind them.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/txn"
)

// ChainMembers selects how workflow members are drawn from the transaction
// population.
type ChainMembers int

const (
	// MembersConsecutive forms chains over consecutive transactions in
	// arrival order — fragments of one page are requested close together.
	MembersConsecutive ChainMembers = iota
	// MembersUniform samples members uniformly from the whole workload.
	MembersUniform
)

// ChainOrder selects the precedence direction within a chain.
type ChainOrder int

const (
	// OrderArrival directs edges from earlier-arriving to later-arriving
	// members (producers are requested before consumers).
	OrderArrival ChainOrder = iota
	// OrderRandom shuffles the precedence order, maximizing the
	// deadline-versus-precedence conflicts of Section II-B.
	OrderRandom
)

// Burstiness selects the arrival process shape.
type Burstiness int

const (
	// BurstNone uses a plain Poisson process (Table I).
	BurstNone Burstiness = iota
	// BurstOnOff modulates the Poisson rate with a two-state ON/OFF Markov
	// process: ON periods arrive at three times the base rate, OFF periods
	// at one fifth of it, with mean state holding times of 50 time units.
	// The long-run average rate is preserved, so the target utilization
	// still holds; only the variance grows — the "bursty and unpredictable
	// behavior of web user populations" the paper's introduction motivates
	// adaptivity with.
	BurstOnOff
)

// ON/OFF modulation parameters (exported only through behaviour; the
// stationary mix keeps the average rate at the Poisson baseline).
const (
	burstOnFactor  = 3.0
	burstOffFactor = 0.2
	burstHold      = 50.0
)

// burstStationaryShare is the ON-state probability p solving
// p*on + (1-p)*off = 1 for equal holding times... with equal mean holding
// times the time shares are 1/2 each, so the rate scale is normalized by
// (on+off)/2 instead.
const burstNorm = (burstOnFactor + burstOffFactor) / 2

// ChainArrivals selects how arrival times relate to chains.
type ChainArrivals int

const (
	// ArrivalsPerTxn assigns every transaction its own Poisson arrival
	// (the literal Table I reading).
	ArrivalsPerTxn ChainArrivals = iota
	// ArrivalsBatch submits all members of a chain at the chain's Poisson
	// arrival instant, like a dynamic web page requesting all its fragments
	// when the user logs on (Section II-B).
	ArrivalsBatch
)

// Config holds every generator parameter of Table I plus the workflow-shape
// parameters of Section IV-A. The zero value is not valid; start from
// Default and override.
type Config struct {
	// N is the number of transactions (paper: 1000).
	N int
	// LengthMin and LengthMax bound the Zipf length range (paper: [1, 50]).
	LengthMin int
	LengthMax int
	// Alpha is the Zipf skew of the length distribution (paper default 0.5).
	Alpha float64
	// Utilization is the target system utilization in (0, ...]; the Poisson
	// arrival rate is Utilization / mean length (paper sweeps 0.1 to 1.0).
	Utilization float64
	// KMax bounds the uniform slack factor k_i in [0, KMax] (paper default 3).
	KMax float64
	// WeightMin and WeightMax bound the integer weights (paper: [1, 10];
	// set both to 1 for unweighted experiments).
	WeightMin int
	WeightMax int
	// MaxWorkflowLength bounds chain length; values <= 1 generate an
	// independent workload (no precedence constraints).
	MaxWorkflowLength int
	// MaxMembership bounds how many workflows a transaction may belong to
	// (paper varies 1 to 10). Ignored when MaxWorkflowLength <= 1.
	MaxMembership int
	// Members, Order and Arrivals select the workflow-shape reading; see the
	// type docs. The zero values are the defaults used by the experiments.
	Members  ChainMembers
	Order    ChainOrder
	Arrivals ChainArrivals
	// Bursts selects the arrival process: plain Poisson (default) or the
	// ON/OFF modulated process described on Burstiness.
	Bursts Burstiness
	// CacheHitRatio models fragment caching/materialization (Section II-A
	// cites WebView materialization [8]: "transactions' lengths are
	// adjusted accordingly"): each transaction is a cache hit with this
	// probability, shrinking its length by CacheSpeedup. Zero disables
	// caching (the default; Table I has no cache).
	CacheHitRatio float64
	// CacheSpeedup is the length multiplier applied to cache hits
	// (default 0.2 when caching is enabled, i.e. hits cost 20% of a miss).
	CacheSpeedup float64
	// Seed drives all randomness; equal configs with equal seeds generate
	// identical workloads on any platform.
	Seed uint64
}

// Default returns Table I's default configuration: an independent,
// unweighted workload at the given utilization.
func Default(utilization float64, seed uint64) Config {
	return Config{
		N:                 1000,
		LengthMin:         1,
		LengthMax:         50,
		Alpha:             0.5,
		Utilization:       utilization,
		KMax:              3.0,
		WeightMin:         1,
		WeightMax:         1,
		MaxWorkflowLength: 1,
		MaxMembership:     1,
		Seed:              seed,
	}
}

// WithWeights returns a copy with weights drawn from [1, 10] (Table I).
func (c Config) WithWeights() Config {
	c.WeightMin, c.WeightMax = 1, 10
	return c
}

// WithWorkflows returns a copy generating dependency chains with the given
// maximum length and per-transaction membership bound.
func (c Config) WithWorkflows(maxLen, maxMembership int) Config {
	c.MaxWorkflowLength = maxLen
	c.MaxMembership = maxMembership
	return c
}

// WithCache returns a copy where each transaction is a cache hit with the
// given probability, costing speedup times its drawn length (fragment
// materialization per Section II-A's caching note).
func (c Config) WithCache(hitRatio, speedup float64) Config {
	c.CacheHitRatio = hitRatio
	c.CacheSpeedup = speedup
	return c
}

// Validate reports the first invalid parameter, if any.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("workload: N %d must be positive", c.N)
	case c.LengthMin <= 0 || c.LengthMax < c.LengthMin:
		return fmt.Errorf("workload: length range [%d, %d] invalid", c.LengthMin, c.LengthMax)
	case c.Alpha < 0:
		return fmt.Errorf("workload: alpha %v must be non-negative", c.Alpha)
	case c.Utilization <= 0:
		return fmt.Errorf("workload: utilization %v must be positive", c.Utilization)
	case c.KMax < 0:
		return fmt.Errorf("workload: kmax %v must be non-negative", c.KMax)
	case c.WeightMin <= 0 || c.WeightMax < c.WeightMin:
		return fmt.Errorf("workload: weight range [%d, %d] invalid", c.WeightMin, c.WeightMax)
	case c.MaxWorkflowLength < 0:
		return fmt.Errorf("workload: max workflow length %d must be non-negative", c.MaxWorkflowLength)
	case c.MaxWorkflowLength > 1 && c.MaxMembership < 1:
		return fmt.Errorf("workload: max membership %d must be at least 1 when workflows are enabled", c.MaxMembership)
	case c.CacheHitRatio < 0 || c.CacheHitRatio > 1:
		return fmt.Errorf("workload: cache hit ratio %v outside [0, 1]", c.CacheHitRatio)
	case c.CacheHitRatio > 0 && (c.CacheSpeedup <= 0 || c.CacheSpeedup > 1):
		return fmt.Errorf("workload: cache speedup %v outside (0, 1]", c.CacheSpeedup)
	}
	return nil
}

// Generate produces a validated transaction set from the configuration.
func Generate(cfg Config) (*txn.Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	zipf, err := rng.NewZipf(cfg.LengthMin, cfg.LengthMax, cfg.Alpha)
	if err != nil {
		return nil, err
	}

	// Lengths first, so the arrival rate can use the realized mean length
	// exactly as the paper prescribes (rate = utilization / avg length).
	lengths := make([]float64, cfg.N)
	var totalLen float64
	for i := range lengths {
		lengths[i] = float64(zipf.Sample(src))
		if cfg.CacheHitRatio > 0 && src.Bool(cfg.CacheHitRatio) {
			// Cache hit: the fragment is served from materialized state.
			lengths[i] *= cfg.CacheSpeedup
		}
		totalLen += lengths[i]
	}

	txns := make([]*txn.Transaction, cfg.N)
	for i := 0; i < cfg.N; i++ {
		k := src.Uniform(0, cfg.KMax)
		weight := float64(src.IntRange(cfg.WeightMin, cfg.WeightMax))
		l := lengths[i]
		txns[i] = &txn.Transaction{
			ID:     txn.ID(i),
			Length: l,
			Weight: weight,
			// Deadline is finalized once the arrival time is known; the
			// field temporarily holds the relative deadline l + k*l.
			Deadline: l + k*l,
		}
	}

	if cfg.MaxWorkflowLength > 1 {
		chains := formChains(cfg, src, txns)
		assignArrivals(cfg, src, txns, chains, totalLen)
		orderChains(cfg, src, txns, chains)
	} else {
		assignArrivals(cfg, src, txns, nil, totalLen)
	}

	return txn.NewSet(txns)
}

// MustGenerate is Generate but panics on error, for benchmarks and examples
// with constant configurations.
func MustGenerate(cfg Config) *txn.Set {
	set, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return set
}

// formChains groups transaction indices into chains. Each transaction draws
// a membership capacity uniform on [1, MaxMembership] and each chain a
// target length uniform on [1, MaxWorkflowLength] (Section IV-A); edges are
// added later by orderChains.
func formChains(cfg Config, src *rng.Source, txns []*txn.Transaction) [][]int {
	n := len(txns)
	capacity := make([]int, n)
	for i := range capacity {
		capacity[i] = src.IntRange(1, cfg.MaxMembership)
	}
	memberships := make([]int, n)
	var chains [][]int

	switch cfg.Members {
	case MembersUniform:
		pool := make([]int, n)
		for i := range pool {
			pool[i] = i
		}
		for len(pool) > 0 {
			length := src.IntRange(1, cfg.MaxWorkflowLength)
			if length > len(pool) {
				length = len(pool)
			}
			chain := make([]int, 0, length)
			for j := 0; j < length; j++ {
				k := src.Intn(len(pool))
				chain = append(chain, pool[k])
				memberships[pool[k]]++
				if memberships[pool[k]] >= capacity[pool[k]] {
					pool[k] = pool[len(pool)-1]
					pool = pool[:len(pool)-1]
				}
			}
			chains = append(chains, chain)
		}
	case MembersConsecutive:
		// Each chain claims fresh transactions from the cursor onward and —
		// when MaxMembership allows — weaves back through a trailing window
		// of recently claimed transactions with spare capacity, so
		// neighbouring chains share members (Section II-A: "a transaction
		// can belong to more than one workflow").
		window := 2 * cfg.MaxWorkflowLength
		cursor := 0
		for cursor < n {
			length := src.IntRange(1, cfg.MaxWorkflowLength)
			chain := make([]int, 0, length)
			start := cursor
			if cfg.MaxMembership > 1 && cursor-window > 0 {
				start = cursor - window
			} else if cfg.MaxMembership > 1 {
				start = 0
			}
			for i := start; i < n && len(chain) < length; i++ {
				if memberships[i] >= capacity[i] {
					continue
				}
				if memberships[i] > 0 && !src.Bool(0.5) {
					// Already in some chain: join this one only half the
					// time, keeping overlap moderate.
					continue
				}
				chain = append(chain, i)
				memberships[i]++
			}
			if len(chain) == 0 {
				break
			}
			chains = append(chains, chain)
			for cursor < n && memberships[cursor] > 0 {
				cursor++
			}
		}
	default:
		panic(fmt.Sprintf("workload: unknown chain-membership mode %d", cfg.Members))
	}
	return chains
}

// assignArrivals sets arrival times (and finalizes deadlines). With
// ArrivalsPerTxn every transaction gets its own Poisson arrival at rate
// utilization/avgLength (Table I). With ArrivalsBatch the chains arrive as
// units at rate utilization*numChains/totalWork, preserving offered load; a
// transaction shared between chains keeps its earliest submission.
func assignArrivals(cfg Config, src *rng.Source, txns []*txn.Transaction, chains [][]int, totalLen float64) {
	if cfg.Arrivals == ArrivalsBatch && len(chains) > 0 {
		rate := cfg.Utilization * float64(len(chains)) / totalLen
		arrived := make([]bool, len(txns))
		var now float64
		for _, chain := range chains {
			now += src.Exp(rate)
			for _, i := range chain {
				if arrived[i] {
					continue
				}
				arrived[i] = true
				txns[i].Arrival = now
				txns[i].Deadline += now
			}
		}
		return
	}
	rate := cfg.Utilization * float64(len(txns)) / totalLen
	gaps := newGapSource(cfg.Bursts, rate, src)
	var now float64
	for _, t := range txns {
		now += gaps.next()
		t.Arrival = now
		t.Deadline += now
	}
}

// gapSource draws inter-arrival gaps: exponential for Poisson, or
// exponential at a rate modulated by a two-state ON/OFF Markov chain whose
// long-run average equals the base rate.
type gapSource struct {
	src      *rng.Source
	base     float64
	bursty   bool
	on       bool
	stateEnd float64 // remaining time in the current state
}

func newGapSource(b Burstiness, rate float64, src *rng.Source) *gapSource {
	g := &gapSource{src: src, base: rate, bursty: b == BurstOnOff}
	if g.bursty {
		g.on = src.Bool(0.5)
		g.stateEnd = src.Exp(1 / burstHold)
	}
	return g
}

func (g *gapSource) next() float64 {
	if !g.bursty {
		return g.src.Exp(g.base)
	}
	// Walk through modulation states until a gap completes. The arrival
	// intensity in each state is base * factor / norm so the stationary
	// average stays at base.
	var elapsed float64
	for {
		factor := burstOffFactor
		if g.on {
			factor = burstOnFactor
		}
		rate := g.base * factor / burstNorm
		gap := g.src.Exp(rate)
		if gap <= g.stateEnd {
			g.stateEnd -= gap
			return elapsed + gap
		}
		// State flips before the arrival lands; credit the time spent and
		// redraw in the new state (memorylessness makes this exact).
		elapsed += g.stateEnd
		g.on = !g.on
		g.stateEnd = g.src.Exp(1 / burstHold)
	}
}

// orderChains fixes the precedence direction within every chain and
// materializes the dependency edges. Under OrderArrival edges run from
// earlier to later arrivals; under OrderRandom the order is shuffled, which
// maximizes deadline-versus-precedence conflicts. Overlapping chains under
// MaxMembership > 1 could combine into cycles, so every edge passes a
// reachability guard first.
func orderChains(cfg Config, src *rng.Source, txns []*txn.Transaction, chains [][]int) {
	for _, chain := range chains {
		switch cfg.Order {
		case OrderRandom:
			src.Shuffle(len(chain), func(i, j int) { chain[i], chain[j] = chain[j], chain[i] })
		case OrderArrival:
			sort.Slice(chain, func(a, b int) bool {
				if txns[chain[a]].Arrival != txns[chain[b]].Arrival {
					return txns[chain[a]].Arrival < txns[chain[b]].Arrival
				}
				return chain[a] < chain[b]
			})
		default:
			panic(fmt.Sprintf("workload: unknown chain-order mode %d", cfg.Order))
		}
		for j := 1; j < len(chain); j++ {
			if !wouldCycle(txns, chain[j-1], chain[j]) {
				addDep(txns[chain[j]], txn.ID(chain[j-1]))
			}
		}
	}
}

// wouldCycle reports whether adding the edge pred -> succ (succ depends on
// pred) would close a dependency cycle, i.e. whether pred already depends
// transitively on succ. Within a single chain this cannot happen (a chain is
// a simple path over distinct transactions), but overlapping chains under
// MaxMembership > 1 can combine into cycles without this guard.
func wouldCycle(txns []*txn.Transaction, pred, succ int) bool {
	if pred == succ {
		return true
	}
	seen := map[txn.ID]bool{}
	stack := []txn.ID{txn.ID(pred)}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn.ID(succ) {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, txns[cur].Deps...)
	}
	return false
}

// addDep appends dep to t.Deps unless already present.
func addDep(t *txn.Transaction, dep txn.ID) {
	for _, d := range t.Deps {
		if d == dep {
			return
		}
	}
	t.Deps = append(t.Deps, dep)
	sort.Slice(t.Deps, func(i, j int) bool { return t.Deps[i] < t.Deps[j] })
}
