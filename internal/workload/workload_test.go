package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/txn"
)

func TestDefaultMatchesTableI(t *testing.T) {
	cfg := Default(0.5, 1)
	if cfg.N != 1000 || cfg.LengthMin != 1 || cfg.LengthMax != 50 ||
		cfg.Alpha != 0.5 || cfg.KMax != 3.0 || cfg.WeightMin != 1 || cfg.WeightMax != 1 {
		t.Fatalf("Default diverges from Table I: %+v", cfg)
	}
}

func TestValidateRejections(t *testing.T) {
	base := Default(0.5, 1)
	cases := []func(*Config){
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.LengthMin = 0 },
		func(c *Config) { c.LengthMax = 0 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.Utilization = 0 },
		func(c *Config) { c.KMax = -0.5 },
		func(c *Config) { c.WeightMin = 0 },
		func(c *Config) { c.WeightMax = 0 },
		func(c *Config) { c.MaxWorkflowLength = -1 },
		func(c *Config) { c.MaxWorkflowLength = 5; c.MaxMembership = 0 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default(0.7, 42).WithWorkflows(5, 2).WithWeights()
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Txns {
		x, y := a.Txns[i], b.Txns[i]
		if x.Arrival != y.Arrival || x.Deadline != y.Deadline ||
			x.Length != y.Length || x.Weight != y.Weight || len(x.Deps) != len(y.Deps) {
			t.Fatalf("transaction %d differs between equal-seed generations", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Default(0.7, 1))
	b := MustGenerate(Default(0.7, 2))
	same := 0
	for i := range a.Txns {
		if a.Txns[i].Arrival == b.Txns[i].Arrival {
			same++
		}
	}
	if same > a.Len()/10 {
		t.Fatalf("%d/%d arrivals identical across seeds", same, a.Len())
	}
}

func TestLengthsWithinRange(t *testing.T) {
	set := MustGenerate(Default(0.5, 7))
	for _, tx := range set.Txns {
		if tx.Length < 1 || tx.Length > 50 {
			t.Fatalf("length %v outside [1, 50]", tx.Length)
		}
		if tx.Length != math.Trunc(tx.Length) {
			t.Fatalf("length %v is not integral", tx.Length)
		}
	}
}

func TestDeadlineFormula(t *testing.T) {
	// d = a + l + k*l with k in [0, kmax]  =>  (d - a)/l - 1 in [0, kmax].
	cfg := Default(0.5, 11)
	cfg.KMax = 2.5
	set := MustGenerate(cfg)
	for _, tx := range set.Txns {
		k := (tx.Deadline-tx.Arrival)/tx.Length - 1
		if k < -1e-9 || k > 2.5+1e-9 {
			t.Fatalf("implied k = %v outside [0, 2.5]", k)
		}
	}
}

func TestWeightsRange(t *testing.T) {
	set := MustGenerate(Default(0.5, 13).WithWeights())
	seen := map[float64]bool{}
	for _, tx := range set.Txns {
		if tx.Weight < 1 || tx.Weight > 10 || tx.Weight != math.Trunc(tx.Weight) {
			t.Fatalf("weight %v outside integer [1, 10]", tx.Weight)
		}
		seen[tx.Weight] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct weights in 1000 draws", len(seen))
	}
}

func TestUnweightedDefault(t *testing.T) {
	set := MustGenerate(Default(0.5, 17))
	for _, tx := range set.Txns {
		if tx.Weight != 1 {
			t.Fatalf("unweighted config produced weight %v", tx.Weight)
		}
	}
}

func TestArrivalRateMatchesUtilization(t *testing.T) {
	// Offered load = total work / arrival horizon should approximate the
	// target utilization.
	for _, u := range []float64{0.3, 0.8} {
		cfg := Default(u, 19)
		cfg.N = 5000
		set := MustGenerate(cfg)
		var work float64
		for _, tx := range set.Txns {
			work += tx.Length
		}
		horizon := set.Txns[set.Len()-1].Arrival
		offered := work / horizon
		if math.Abs(offered-u) > 0.08*u+0.02 {
			t.Fatalf("target %v, offered %v", u, offered)
		}
	}
}

func TestArrivalsMonotonic(t *testing.T) {
	set := MustGenerate(Default(0.5, 23))
	for i := 1; i < set.Len(); i++ {
		if set.Txns[i].Arrival < set.Txns[i-1].Arrival {
			t.Fatal("per-transaction arrivals are not monotone in ID order")
		}
	}
}

func TestIndependentWorkloadHasNoDeps(t *testing.T) {
	set := MustGenerate(Default(0.5, 29))
	for _, tx := range set.Txns {
		if len(tx.Deps) != 0 {
			t.Fatalf("independent workload has dependency: %v", tx)
		}
	}
}

func TestWorkflowChainBounds(t *testing.T) {
	set := MustGenerate(Default(0.5, 31).WithWorkflows(5, 1))
	wfs := txn.BuildWorkflows(set)
	if len(wfs) == 0 {
		t.Fatal("no workflows built")
	}
	covered := map[txn.ID]bool{}
	for _, wf := range wfs {
		if len(wf.Members) > 5 {
			t.Fatalf("workflow %v exceeds max length 5", wf)
		}
		for _, id := range wf.Members {
			covered[id] = true
		}
	}
	if len(covered) != set.Len() {
		t.Fatalf("workflows cover %d of %d transactions", len(covered), set.Len())
	}
	// With MaxMembership=1 the workflows partition the transactions.
	total := 0
	for _, wf := range wfs {
		total += len(wf.Members)
	}
	if total != set.Len() {
		t.Fatalf("membership=1 workflows overlap: %d member slots for %d transactions", total, set.Len())
	}
}

func TestWorkflowMembershipBound(t *testing.T) {
	set := MustGenerate(Default(0.5, 37).WithWorkflows(5, 3))
	wfs := txn.BuildWorkflows(set)
	count := map[txn.ID]int{}
	for _, wf := range wfs {
		for _, id := range wf.Members {
			count[id]++
		}
	}
	exceeding := 0
	for _, c := range count {
		// A transaction may appear in more derived workflows than its chain
		// capacity when chains overlap (a shared prefix is in the closure of
		// several roots); chain capacity bounds direct memberships, which we
		// verify via chains below. Sanity-bound the derived count loosely.
		if c > 20 {
			exceeding++
		}
	}
	if exceeding > 0 {
		t.Fatalf("%d transactions appear in an implausible number of workflows", exceeding)
	}
}

func TestWorkflowAcyclicAndValid(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		for _, mm := range []int{1, 3, 10} {
			cfg := Default(0.6, seed).WithWorkflows(7, mm)
			cfg.N = 300
			set, err := Generate(cfg)
			if err != nil {
				t.Fatalf("seed %d mm %d: %v", seed, mm, err)
			}
			if _, err := set.TopologicalOrder(); err != nil {
				t.Fatalf("seed %d mm %d: %v", seed, mm, err)
			}
		}
	}
}

func TestOrderArrivalEdgesForward(t *testing.T) {
	cfg := Default(0.5, 41).WithWorkflows(5, 1)
	cfg.Order = OrderArrival
	set := MustGenerate(cfg)
	for _, tx := range set.Txns {
		for _, d := range tx.Deps {
			if set.ByID(d).Arrival > tx.Arrival {
				t.Fatalf("OrderArrival produced backward edge %d -> %d", d, tx.ID)
			}
		}
	}
}

func TestBatchArrivalsShareSubmissionTime(t *testing.T) {
	cfg := Default(0.5, 43).WithWorkflows(5, 1)
	cfg.Arrivals = ArrivalsBatch
	set := MustGenerate(cfg)
	wfs := txn.BuildWorkflows(set)
	for _, wf := range wfs {
		first := set.ByID(wf.Members[0]).Arrival
		for _, id := range wf.Members {
			if set.ByID(id).Arrival != first {
				t.Fatalf("batch workflow %v has mixed arrivals", wf)
			}
		}
	}
}

func TestBatchArrivalsPreserveLoad(t *testing.T) {
	cfg := Default(0.7, 47).WithWorkflows(5, 1)
	cfg.Arrivals = ArrivalsBatch
	cfg.N = 5000
	set := MustGenerate(cfg)
	var work, last float64
	for _, tx := range set.Txns {
		work += tx.Length
		if tx.Arrival > last {
			last = tx.Arrival
		}
	}
	offered := work / last
	if math.Abs(offered-0.7) > 0.1 {
		t.Fatalf("batch offered load %v, want ~0.7", offered)
	}
}

func TestUniformMembersCoverEveryone(t *testing.T) {
	cfg := Default(0.5, 53).WithWorkflows(5, 1)
	cfg.Members = MembersUniform
	set := MustGenerate(cfg)
	wfs := txn.BuildWorkflows(set)
	covered := map[txn.ID]bool{}
	for _, wf := range wfs {
		for _, id := range wf.Members {
			covered[id] = true
		}
	}
	if len(covered) != set.Len() {
		t.Fatalf("uniform members cover %d of %d", len(covered), set.Len())
	}
}

func TestMustGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic")
		}
	}()
	MustGenerate(Config{})
}

// TestQuickGenerateAlwaysValid: any sane parameter combination produces a
// workload that passes Set validation (Generate returns it validated) and
// respects the length bounds.
func TestQuickGenerateAlwaysValid(t *testing.T) {
	f := func(seed uint64, utilQ, kmaxQ, alphaQ uint8, wfLen, mm uint8) bool {
		cfg := Default(float64(utilQ%10+1)/10, seed)
		cfg.N = 100
		cfg.KMax = float64(kmaxQ % 5)
		cfg.Alpha = float64(alphaQ%30) / 10
		cfg.MaxWorkflowLength = int(wfLen%10) + 1
		cfg.MaxMembership = int(mm%3) + 1
		set, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, tx := range set.Txns {
			if tx.Length < 1 || tx.Length > 50 || tx.Deadline < tx.Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
