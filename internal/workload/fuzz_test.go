package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON hardens the workload loader against malformed input: it must
// either return a valid, fully-validated set or an error — never panic, and
// never accept a structurally broken workload.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real workload file and a few manual corpus entries.
	cfg := Default(0.6, 1)
	cfg.N = 20
	set := MustGenerate(cfg.WithWorkflows(3, 1))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, set, &cfg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"transactions":[]}`)
	f.Add(`{"version":1,"transactions":[{"id":0,"arrival":0,"deadline":1,"length":1,"weight":1}]}`)
	f.Add(`{"version":99}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"transactions":[{"id":0,"arrival":-5,"deadline":1,"length":1,"weight":1}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		got, _, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy every Set invariant.
		if err := got.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid workload: %v", err)
		}
		// And must round-trip.
		var out bytes.Buffer
		if err := WriteJSON(&out, got, nil); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		again, _, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round-trip changed length: %d vs %d", again.Len(), got.Len())
		}
	})
}
