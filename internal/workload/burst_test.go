package workload

import (
	"math"
	"testing"
)

func TestBurstyPreservesAverageRate(t *testing.T) {
	// The ON/OFF modulation must keep the long-run offered load at the
	// target: compare arrival horizons with and without bursts on a large
	// sample.
	horizon := func(b Burstiness) float64 {
		cfg := Default(0.8, 5)
		cfg.N = 30000
		cfg.Bursts = b
		set := MustGenerate(cfg)
		return set.Txns[set.Len()-1].Arrival
	}
	plain := horizon(BurstNone)
	bursty := horizon(BurstOnOff)
	if rel := math.Abs(bursty-plain) / plain; rel > 0.06 {
		t.Fatalf("bursty horizon %v deviates %.1f%% from plain %v", bursty, 100*rel, plain)
	}
}

func TestBurstyIncreasesGapVariance(t *testing.T) {
	gaps := func(b Burstiness) (mean, variance float64) {
		cfg := Default(0.8, 7)
		cfg.N = 30000
		cfg.Bursts = b
		set := MustGenerate(cfg)
		var sum, sum2 float64
		n := 0
		prev := 0.0
		for _, tx := range set.Txns {
			g := tx.Arrival - prev
			prev = tx.Arrival
			sum += g
			sum2 += g * g
			n++
		}
		mean = sum / float64(n)
		variance = sum2/float64(n) - mean*mean
		return mean, variance
	}
	mPlain, vPlain := gaps(BurstNone)
	mBurst, vBurst := gaps(BurstOnOff)
	// Exponential gaps: variance = mean^2; modulated gaps must be
	// overdispersed relative to that.
	if vBurst <= vPlain*1.2 {
		t.Fatalf("bursty gap variance %v not above plain %v", vBurst, vPlain)
	}
	if math.Abs(mBurst-mPlain)/mPlain > 0.1 {
		t.Fatalf("bursty mean gap %v far from plain %v", mBurst, mPlain)
	}
}

func TestBurstyDeterministic(t *testing.T) {
	cfg := Default(0.8, 11)
	cfg.N = 500
	cfg.Bursts = BurstOnOff
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i := range a.Txns {
		if a.Txns[i].Arrival != b.Txns[i].Arrival {
			t.Fatal("bursty generation not deterministic")
		}
	}
}
