package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/txn"
)

// SessionConfig parameterizes the closed-loop session workload of the
// paper's introduction: interactive users requesting dynamic pages, each
// page materialized by a workflow of fragment transactions, with the next
// page requested a think time after the previous one rendered.
type SessionConfig struct {
	// Users is the number of concurrent sessions.
	Users int
	// MaxPages bounds pages per session (uniform on [1, MaxPages]).
	MaxPages int
	// MaxFragments bounds transactions per page (uniform on [1,
	// MaxFragments]); a page's fragments form a dependency chain like the
	// Section II-B portfolio page.
	MaxFragments int
	// LengthMin/LengthMax/Alpha parameterize the Zipf length distribution
	// (Table I values apply).
	LengthMin int
	LengthMax int
	Alpha     float64
	// KMax bounds the slack factor of the per-fragment relative deadline
	// d = l + k*l (relative to the page request instant).
	KMax float64
	// WeightMin/WeightMax bound integer fragment weights.
	WeightMin int
	WeightMax int
	// MeanThink is the mean exponential think time between a rendered page
	// and the session's next request.
	MeanThink float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultSessions returns a session workload shaped like Table I: Zipf(0.5)
// fragment lengths on [1, 50], kmax 3, up to 4-fragment pages, and a mean
// think time that puts the backend near the given utilization for the
// given user population (think = users * meanPageWork / utilization -
// meanPageWork, clamped to be positive).
func DefaultSessions(users int, utilization float64, seed uint64) SessionConfig {
	cfg := SessionConfig{
		Users:        users,
		MaxPages:     8,
		MaxFragments: 4,
		LengthMin:    1,
		LengthMax:    50,
		Alpha:        0.5,
		KMax:         3,
		WeightMin:    1,
		WeightMax:    1,
		Seed:         seed,
	}
	// Closed-loop utilization: each user cycles page-work + think; the
	// backend sees roughly users * work / (work + think) offered load.
	zipf := rng.MustZipf(cfg.LengthMin, cfg.LengthMax, cfg.Alpha)
	meanPageWork := zipf.Mean() * float64(cfg.MaxFragments+1) / 2
	think := float64(users)*meanPageWork/utilization - meanPageWork
	if think < meanPageWork/10 {
		think = meanPageWork / 10
	}
	cfg.MeanThink = think
	return cfg
}

// Validate reports the first invalid parameter.
func (c SessionConfig) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("workload: users %d must be positive", c.Users)
	case c.MaxPages <= 0:
		return fmt.Errorf("workload: max pages %d must be positive", c.MaxPages)
	case c.MaxFragments <= 0:
		return fmt.Errorf("workload: max fragments %d must be positive", c.MaxFragments)
	case c.LengthMin <= 0 || c.LengthMax < c.LengthMin:
		return fmt.Errorf("workload: length range [%d, %d] invalid", c.LengthMin, c.LengthMax)
	case c.Alpha < 0:
		return fmt.Errorf("workload: alpha %v must be non-negative", c.Alpha)
	case c.KMax < 0:
		return fmt.Errorf("workload: kmax %v must be non-negative", c.KMax)
	case c.WeightMin <= 0 || c.WeightMax < c.WeightMin:
		return fmt.Errorf("workload: weight range [%d, %d] invalid", c.WeightMin, c.WeightMax)
	case c.MeanThink <= 0:
		return fmt.Errorf("workload: mean think %v must be positive", c.MeanThink)
	}
	return nil
}

// GenerateSessions builds the transaction set and session structure for a
// closed-loop run. Transactions carry RELATIVE deadlines (d = l + k*l,
// interpreted from the page-request instant by sim.RunClosedLoop) and
// Arrival 0; within a page, fragments form a dependency chain in draw order
// with the precedence-versus-deadline conflicts arising naturally from the
// independent slack factors.
func GenerateSessions(cfg SessionConfig) (*txn.Set, []txn.Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	src := rng.New(cfg.Seed)
	zipf, err := rng.NewZipf(cfg.LengthMin, cfg.LengthMax, cfg.Alpha)
	if err != nil {
		return nil, nil, err
	}

	var txns []*txn.Transaction
	sessions := make([]txn.Session, cfg.Users)
	id := 0
	for u := 0; u < cfg.Users; u++ {
		pages := src.IntRange(1, cfg.MaxPages)
		sess := txn.Session{
			Pages:      make([][]txn.ID, pages),
			ThinkTimes: make([]float64, pages),
		}
		for p := 0; p < pages; p++ {
			sess.ThinkTimes[p] = src.Exp(1 / cfg.MeanThink)
			frags := src.IntRange(1, cfg.MaxFragments)
			page := make([]txn.ID, frags)
			for f := 0; f < frags; f++ {
				l := float64(zipf.Sample(src))
				k := src.Uniform(0, cfg.KMax)
				t := &txn.Transaction{
					ID:       txn.ID(id),
					Arrival:  0,
					Deadline: l + k*l, // relative to the page request
					Length:   l,
					Weight:   float64(src.IntRange(cfg.WeightMin, cfg.WeightMax)),
				}
				if f > 0 {
					t.Deps = []txn.ID{page[f-1]}
				}
				page[f] = t.ID
				txns = append(txns, t)
				id++
			}
			sess.Pages[p] = page
		}
		sessions[u] = sess
	}
	set, err := txn.NewSet(txns)
	if err != nil {
		return nil, nil, err
	}
	return set, sessions, nil
}
