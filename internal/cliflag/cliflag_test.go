package cliflag

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// parseRobustness registers the shared flags on a fresh FlagSet, parses args
// and runs Load — the exact startup sequence of the CLIs.
func parseRobustness(t *testing.T, args ...string) (*Robustness, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	r := AddRobustness(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return r, r.Load()
}

func writePlan(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRobustnessErrors is the table of bad flag values every CLI must turn
// into an exit-2 usage error via Fatal.
func TestRobustnessErrors(t *testing.T) {
	cases := []struct {
		name string
		args func(t *testing.T) []string
		want string
	}{
		{
			name: "missing fault plan file",
			args: func(t *testing.T) []string { return []string{"-faults", "/nonexistent/plan.json"} },
			want: "no such file",
		},
		{
			name: "malformed fault plan JSON",
			args: func(t *testing.T) []string { return []string{"-faults", writePlan(t, "{not json")} },
			want: "invalid character",
		},
		{
			name: "invalid fault plan",
			args: func(t *testing.T) []string { return []string{"-faults", writePlan(t, `{"abort_prob": 2}`)} },
			want: "abort",
		},
		{
			name: "unknown admission controller",
			args: func(t *testing.T) []string { return []string{"-admit", "bogus"} },
			want: "bogus",
		},
		{
			name: "bad queue capacity",
			args: func(t *testing.T) []string { return []string{"-admit", "queue:0"} },
			want: "queue",
		},
		{
			name: "bad missratio thresholds",
			args: func(t *testing.T) []string { return []string{"-admit", "missratio:0.1"} },
			want: "missratio",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseRobustness(t, tc.args(t)...)
			if err == nil {
				t.Fatalf("args accepted; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestRobustnessDefaultsInactive(t *testing.T) {
	r, err := parseRobustness(t)
	if err != nil {
		t.Fatal(err)
	}
	if r.Active() {
		t.Fatal("defaults should be inactive")
	}
	if r.Plan() != nil {
		t.Fatal("no -faults should mean a nil plan")
	}
	if r.Controller() != nil {
		t.Fatal("admit=none should mean a nil controller")
	}
}

func TestControllerIsFreshPerCall(t *testing.T) {
	// missratio carries feedback state, so Parse hands out a pointer — each
	// run must get a distinct instance.
	r, err := parseRobustness(t, "-admit", "missratio:0.5,0.25")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Active() {
		t.Fatal("missratio should be active")
	}
	a, b := r.Controller(), r.Controller()
	if a == nil || b == nil {
		t.Fatal("missratio produced a nil controller")
	}
	if a == b {
		t.Fatal("controllers carry feedback state and must not be shared between runs")
	}
}

func TestRobustnessLoadsValidPlan(t *testing.T) {
	path := writePlan(t, `{"seed": 7, "abort_prob": 0.1, "max_restarts": 2}`)
	r, err := parseRobustness(t, "-faults", path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan() == nil {
		t.Fatal("valid plan not retained")
	}
	if !r.Active() {
		t.Fatal("a loaded plan should be active")
	}
}

func TestAddSeedDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	seed := AddSeed(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *seed != 1 {
		t.Fatalf("default seed %d, want 1", *seed)
	}
	if err := fs.Parse([]string{"-seed", "99"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 99 {
		t.Fatalf("parsed seed %d, want 99", *seed)
	}
}

// parseCluster mirrors parseRobustness for the fleet flag bundle.
func parseCluster(t *testing.T, args ...string) (*Cluster, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	c := AddCluster(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return c, c.Load()
}

// TestClusterErrors is the table of bad fleet flag values every CLI must
// turn into an exit-2 usage error via Fatal.
func TestClusterErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero instances", []string{"-instances", "0"}, "instances"},
		{"negative instances", []string{"-instances", "-3"}, "instances"},
		{"unknown route", []string{"-route", "bogus"}, "bogus"},
		{"negative retry budget", []string{"-retry-budget", "-1"}, "retry budget"},
		{"negative retry backoff", []string{"-retry-backoff", "-0.5"}, "backoff_base"},
		{"negative backoff cap", []string{"-retry-backoff-cap", "-1"}, "backoff_cap"},
		{"cap below base", []string{"-retry-backoff", "4", "-retry-backoff-cap", "1"}, "backoff_cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseCluster(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v accepted; want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestClusterDefaultsSingleBackend(t *testing.T) {
	c, err := parseCluster(t)
	if err != nil {
		t.Fatal(err)
	}
	if c.Active() {
		t.Fatal("one instance should not activate the fleet path")
	}
	if got := c.Policy().Name(); got != "rr" {
		t.Fatalf("default policy %q, want rr", got)
	}
	if c.Retry() != cluster.DefaultRetry {
		t.Fatalf("default retry %+v, want %+v", c.Retry(), cluster.DefaultRetry)
	}
}

func TestClusterPolicyIsFreshPerCall(t *testing.T) {
	c, err := parseCluster(t, "-instances", "4", "-route", "rr")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Active() {
		t.Fatal("four instances should activate the fleet path")
	}
	if a, b := c.Policy(), c.Policy(); a == b {
		t.Fatal("round-robin policies carry cursor state and must not be shared between runs")
	}
}

// TestFatalExitsTwo pins the flag-error convention: one line on stderr
// naming the program, process exit status 2.
func TestFatalExitsTwo(t *testing.T) {
	var buf bytes.Buffer
	var code int
	oldExit, oldStderr := exit, stderr
	exit = func(c int) { code = c }
	stderr = &buf
	defer func() { exit, stderr = oldExit, oldStderr }()

	_, err := parseRobustness(t, "-admit", "bogus")
	if err == nil {
		t.Fatal("bogus spec accepted")
	}
	Fatal("asetssim", err)
	if code != 2 {
		t.Fatalf("Fatal exited %d, want 2", code)
	}
	if !strings.HasPrefix(buf.String(), "asetssim: ") {
		t.Fatalf("Fatal output %q should name the program", buf.String())
	}
}

// parseSLO registers the SLO flags on a fresh FlagSet, parses args and runs
// Load — the exact startup sequence of the CLIs.
func parseSLO(t *testing.T, args ...string) (*SLO, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	s := AddSLO(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return s, s.Load()
}

// TestSLOErrors is the table of bad SLO flag values every CLI must turn into
// an exit-2 usage error via Fatal.
func TestSLOErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "unknown class",
			args: []string{"-slo", "bogus:miss=0.1"},
			want: "bogus",
		},
		{
			name: "unknown objective key",
			args: []string{"-slo", "light:latency=1"},
			want: "latency",
		},
		{
			name: "miss ratio above one",
			args: []string{"-slo", "light:miss=1.5"},
			want: "miss",
		},
		{
			name: "negative window",
			args: []string{"-slo", "default", "-slo-window", "-10"},
			want: "window",
		},
		{
			name: "fast lookback not below slow",
			args: []string{"-slo", "default", "-slo-burn-fast", "12", "-slo-burn-slow", "12"},
			want: "fast",
		},
		{
			name: "empty clause",
			args: []string{"-slo", "light:miss=0.1;;heavy:p95=4"},
			want: "empty",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseSLO(t, tc.args...)
			if err == nil {
				t.Fatalf("args accepted; want error containing %q", tc.want)
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSLODefaultsInactive(t *testing.T) {
	s, err := parseSLO(t)
	if err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Fatal("defaults should be inactive")
	}
	if s.Config() != nil {
		t.Fatal("no -slo should mean a nil config")
	}
}

func TestSLOConfigAssembly(t *testing.T) {
	s, err := parseSLO(t, "-slo", "light:miss=0.02;heavy:p95=8,queue=32",
		"-slo-window", "25", "-slo-burn-fast", "3", "-slo-burn-slow", "9")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Active() {
		t.Fatal("-slo given but inactive")
	}
	cfg := s.Config()
	if cfg == nil {
		t.Fatal("nil config after Load")
	}
	if cfg.Window != 25 || cfg.FastWindows != 3 || cfg.SlowWindows != 9 {
		t.Fatalf("window geometry not carried: %+v", cfg)
	}
	light := cfg.Spec.Classes[0]
	if light.MissRatio != 0.02 {
		t.Fatalf("light miss ratio = %v, want 0.02", light.MissRatio)
	}
	if cfg.Spec.Classes[2].TardinessP95 != 8 || cfg.Spec.Classes[2].QueueBound != 32 {
		t.Fatalf("heavy clause not carried: %+v", cfg.Spec.Classes[2])
	}
	// Each call hands out a fresh copy: engines must not share Config state.
	if s.Config() == cfg {
		t.Fatal("Config must return a fresh copy per call")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSLODefaultSpecKeyword(t *testing.T) {
	s, err := parseSLO(t, "-slo", "default")
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg == nil {
		t.Fatal("nil config for -slo default")
	}
	for i, c := range cfg.Spec.Classes {
		if c.MissRatio != 0.05 {
			t.Fatalf("class %d miss ratio = %v, want the 0.05 default", i, c.MissRatio)
		}
	}
}
