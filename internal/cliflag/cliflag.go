// Package cliflag centralizes the command-line flags the asets CLIs share.
// asetssim, asetsweb and asetsbench each accept the robustness pair
// (-faults, -admit) and a workload -seed; before this package each binary
// re-implemented the registration, validation and fresh-controller logic,
// and the copies had already drifted in their error messages. A CLI
// registers the flags with Add*, parses, then calls Robustness.Load — a bad
// value is a crisp exit-2 usage error (Fatal) before any work starts.
package cliflag

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/admit"
	"repro/internal/cluster"
	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/slo"
)

// Robustness bundles the fault-injection/admission flag pair of a run. The
// loaded plan is immutable and may be shared across runs (each simulation
// builds its own injector from it); controllers carry feedback state, so
// Controller parses a fresh one per call.
type Robustness struct {
	// FaultPath is the -faults value: a fault.Plan JSON file, empty for none.
	FaultPath string
	// AdmitSpec is the -admit value, e.g. "none", "queue:8", "slack:2".
	AdmitSpec string

	plan *fault.Plan
}

// AddRobustness registers -faults and -admit on fs and returns the
// destination. Call Load after fs.Parse.
func AddRobustness(fs *flag.FlagSet) *Robustness {
	r := &Robustness{}
	fs.StringVar(&r.FaultPath, "faults", "", "fault plan JSON file (docs/ROBUSTNESS.md)")
	fs.StringVar(&r.AdmitSpec, "admit", "none", "admission controller: none, queue:N, slack[:tol], missratio[:enter,exit]")
	return r
}

// Load validates both flags — loading the fault plan and parsing the
// admission spec — so a typo is a startup error rather than a mid-run
// failure. It must be called (once, after parsing) before Plan or
// Controller.
func (r *Robustness) Load() error {
	if r.FaultPath != "" {
		plan, err := fault.Load(r.FaultPath)
		if err != nil {
			return err
		}
		r.plan = plan
	}
	if _, err := admit.Parse(r.AdmitSpec); err != nil {
		return err
	}
	return nil
}

// Plan returns the loaded fault plan, or nil when -faults was not given.
func (r *Robustness) Plan() *fault.Plan { return r.plan }

// Controller returns a fresh admission controller parsed from the spec, or
// nil when admission is unconditional. Each run must get its own controller:
// they carry feedback state.
func (r *Robustness) Controller() admit.Controller {
	ctrl, err := admit.Parse(r.AdmitSpec)
	if err != nil {
		// Load validated the spec; reaching here means Load was skipped.
		panic(fmt.Sprintf("cliflag: Controller before Load: %v", err))
	}
	if _, isNone := ctrl.(admit.Unconditional); isNone {
		return nil
	}
	return ctrl
}

// Active reports whether either robustness mechanism is configured.
func (r *Robustness) Active() bool { return r.plan != nil || r.AdmitSpec != "none" }

// Cluster bundles the fault-tolerant fleet flags shared by asetsweb and
// asetsbench: the instance count, the routing policy spec and the failover
// retry budget (docs/ROBUSTNESS.md, "Cluster fault tolerance").
type Cluster struct {
	// Instances is the -instances value: the fleet size (1 = the classic
	// single-backend path).
	Instances int
	// RouteSpec is the -route value, e.g. "rr", "least", "slack", "weighted".
	RouteSpec string
	// RetryBudget, RetryBackoff and RetryBackoffCap are the failover budget
	// flags (-retry-budget, -retry-backoff, -retry-backoff-cap).
	RetryBudget     int
	RetryBackoff    float64
	RetryBackoffCap float64
}

// AddCluster registers the cluster flag set on fs and returns the
// destination. Call Load after fs.Parse.
func AddCluster(fs *flag.FlagSet) *Cluster {
	c := &Cluster{}
	fs.IntVar(&c.Instances, "instances", 1, "cluster instances (fault domains); 1 runs the single backend")
	fs.StringVar(&c.RouteSpec, "route", "rr", "routing policy: rr, least, slack, weighted")
	fs.IntVar(&c.RetryBudget, "retry-budget", cluster.DefaultRetry.Budget, "failovers one crash-lost transaction may consume; 0 drops crash victims (keep -retry-backoff non-zero)")
	fs.Float64Var(&c.RetryBackoff, "retry-backoff", cluster.DefaultRetry.BackoffBase, "delay before the first failover re-enqueue (doubles per failover)")
	fs.Float64Var(&c.RetryBackoffCap, "retry-backoff-cap", cluster.DefaultRetry.BackoffCap, "bound on the failover backoff (0 = uncapped)")
	return c
}

// Load validates the cluster flags — instance count, routing spec and retry
// budget — so a typo is a startup error rather than a mid-run failure.
func (c *Cluster) Load() error {
	if c.Instances < 1 {
		return fmt.Errorf("cluster: instances %d must be positive", c.Instances)
	}
	if _, err := cluster.ParsePolicy(c.RouteSpec); err != nil {
		return err
	}
	return c.Retry().Validate()
}

// Policy returns a fresh routing policy parsed from the spec. Each run must
// get its own: policies may carry state (the round-robin cursor).
func (c *Cluster) Policy() cluster.Policy {
	p, err := cluster.ParsePolicy(c.RouteSpec)
	if err != nil {
		// Load validated the spec; reaching here means Load was skipped.
		panic(fmt.Sprintf("cliflag: Policy before Load: %v", err))
	}
	return p
}

// Retry returns the failover budget assembled from the flags.
func (c *Cluster) Retry() cluster.Retry {
	return cluster.Retry{Budget: c.RetryBudget, BackoffBase: c.RetryBackoff, BackoffCap: c.RetryBackoffCap}
}

// Active reports whether a multi-instance fleet was requested.
func (c *Cluster) Active() bool { return c.Instances > 1 }

// Contention bundles the data-contention flags shared by asetssim and
// asetsweb: the keyspace size, skew and per-transaction read/write set sizes
// (docs/CONTENTION.md). Zero keys means contention is off — the run keeps
// the classic no-validation path.
type Contention struct {
	// Keys is the -keys value: the abstract row count (0 = contention off).
	Keys int
	// Alpha is the -key-alpha Zipf skew (0 = uniform).
	Alpha float64
	// Reads and Writes are the -key-reads/-key-writes set sizes.
	Reads  int
	Writes int
	// ReadOnlyProb is the -readonly-prob chance a transaction draws no writes.
	ReadOnlyProb float64
}

// AddContention registers the contention flag set on fs and returns the
// destination. Call Load after fs.Parse.
func AddContention(fs *flag.FlagSet) *Contention {
	c := &Contention{}
	fs.IntVar(&c.Keys, "keys", 0, "contention keyspace size; 0 disables the data-contention model (docs/CONTENTION.md)")
	fs.Float64Var(&c.Alpha, "key-alpha", 0.9, "Zipf skew of key popularity (0 = uniform)")
	fs.IntVar(&c.Reads, "key-reads", 4, "read-set size per transaction")
	fs.IntVar(&c.Writes, "key-writes", 2, "write-set size per transaction")
	fs.Float64Var(&c.ReadOnlyProb, "readonly-prob", 0, "probability a transaction is read-only (draws no writes)")
	return c
}

// Load validates the contention flags so a bad keyspace is a startup error
// rather than a mid-run failure.
func (c *Contention) Load() error {
	if ks := c.Keyspace(); ks != nil {
		return ks.Validate()
	}
	return nil
}

// Keyspace returns the configured keyspace, or nil when -keys is zero. The
// Seed is left unset so workload.Spec derives it from the workload seed.
func (c *Contention) Keyspace() *contention.Keyspace {
	if c.Keys == 0 {
		return nil
	}
	return &contention.Keyspace{
		Keys: c.Keys, Alpha: c.Alpha,
		Reads: c.Reads, Writes: c.Writes, ReadOnlyProb: c.ReadOnlyProb,
	}
}

// Active reports whether the data-contention model is configured.
func (c *Contention) Active() bool { return c.Keys != 0 }

// SLO bundles the service-level-objective flags shared by asetssim, asetsweb
// and asetsbench: the per-class objective spec, the tumbling-window length
// and the burn-rate window pair (docs/OBSERVABILITY.md, "SLOs and alerting").
// An empty -slo leaves the engine off — the run keeps the classic
// no-evaluation path.
type SLO struct {
	// SpecText is the -slo value: "" (off), "default", or a spec like
	// "light:miss=0.05;heavy:p95=8,queue=32" (slo.ParseSpec grammar).
	SpecText string
	// Window is the -slo-window value: the tumbling-window length in
	// simulated time units.
	Window float64
	// BurnFast and BurnSlow are the -slo-burn-fast/-slo-burn-slow values:
	// how many recent windows the fast and slow burn-rate lookbacks span.
	BurnFast int
	BurnSlow int

	spec *slo.Spec
}

// AddSLO registers the SLO flag set on fs and returns the destination. Call
// Load after fs.Parse.
func AddSLO(fs *flag.FlagSet) *SLO {
	s := &SLO{}
	fs.StringVar(&s.SpecText, "slo", "", `per-class SLOs: "default" or e.g. "light:miss=0.05;heavy:p95=8" (docs/OBSERVABILITY.md); empty = off`)
	fs.Float64Var(&s.Window, "slo-window", 100, "SLO tumbling-window length in simulated time units")
	fs.IntVar(&s.BurnFast, "slo-burn-fast", 2, "windows in the fast burn-rate lookback")
	fs.IntVar(&s.BurnSlow, "slo-burn-slow", 12, "windows in the slow burn-rate lookback (must exceed the fast lookback)")
	return s
}

// Load validates the SLO flags — parsing the spec and checking the window
// geometry — so a typo is a startup error rather than a mid-run failure.
func (s *SLO) Load() error {
	if s.SpecText == "" {
		return nil
	}
	spec, err := slo.ParseSpec(s.SpecText)
	if err != nil {
		return err
	}
	s.spec = &spec
	return s.config().Validate()
}

// config assembles the engine configuration; only valid after Load.
func (s *SLO) config() *slo.Config {
	return &slo.Config{
		Spec:        *s.spec,
		Window:      s.Window,
		FastWindows: s.BurnFast,
		SlowWindows: s.BurnSlow,
	}
}

// Config returns the engine configuration assembled from the flags, or nil
// when -slo was not given. The caller owns the copy; engines themselves are
// built per run.
func (s *SLO) Config() *slo.Config {
	if s.spec == nil {
		if s.SpecText != "" {
			panic("cliflag: SLO.Config before Load")
		}
		return nil
	}
	return s.config()
}

// Active reports whether SLO evaluation is configured.
func (s *SLO) Active() bool { return s.SpecText != "" }

// AddSeed registers the shared -seed flag (base workload seed) on fs.
func AddSeed(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 1, "workload seed")
}

// exit and stderr are seams for the Fatal tests.
var (
	exit             = os.Exit
	stderr io.Writer = os.Stderr
)

// Fatal reports a flag-level usage error the way flag.Parse does — one line
// on stderr, exit status 2 — prefixed with the program name.
func Fatal(prog string, err error) {
	fmt.Fprintf(stderr, "%s: %v\n", prog, err)
	exit(2)
}
