package core

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/txn"
)

// Checked wraps an ASETSStar and audits CheckInvariants immediately after
// every Next call — every decision point, right after migration has run, so
// all documented invariants must hold exactly. A violation panics with the
// broken invariant. The wrapper is otherwise transparent and satisfies
// sched.Scheduler, so it drops into the simulator or the live executor
// anywhere an *ASETSStar would go.
//
// The audit is O(N) per decision, which turns a linear-time simulation
// quadratic: this is an opt-in debugging harness (asetssim -invariants),
// not a production default.
type Checked struct {
	*ASETSStar
	checks int
}

// NewChecked wraps s with per-decision invariant auditing.
func NewChecked(s *ASETSStar) *Checked { return &Checked{ASETSStar: s} }

// Name implements sched.Scheduler; the suffix marks audited runs in output.
func (c *Checked) Name() string { return c.ASETSStar.Name() + "+inv" }

// Next implements sched.Scheduler, auditing the full queue state after the
// decision and panicking on the first violated invariant.
func (c *Checked) Next(now float64) *txn.Transaction {
	t := c.ASETSStar.Next(now)
	if err := c.ASETSStar.CheckInvariants(now); err != nil {
		panic(fmt.Sprintf("core: invariant violated after %d clean decisions: %v", c.checks, err))
	}
	c.checks++
	return t
}

// Checks returns how many decision points have been audited so far.
func (c *Checked) Checks() int { return c.checks }

var _ sched.Scheduler = (*Checked)(nil)
