package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/txn"
	"repro/internal/workload"
)

// auditingScheduler wraps an ASETSStar and audits its internal invariants
// immediately after every Next call — the point where migration has just
// run, so every documented invariant must hold exactly.
type auditingScheduler struct {
	*ASETSStar
	t *testing.T
}

func (a *auditingScheduler) Next(now float64) *txn.Transaction {
	got := a.ASETSStar.Next(now)
	if err := a.ASETSStar.CheckInvariants(now); err != nil {
		a.t.Fatalf("invariant violated after Next(%v): %v", now, err)
	}
	return got
}

var _ sched.Scheduler = (*auditingScheduler)(nil)

// TestInvariantsHoldThroughoutSimulations drives audited ASETS* instances
// (every variant) through randomized workloads; CheckInvariants runs at
// every decision point.
func TestInvariantsHoldThroughoutSimulations(t *testing.T) {
	variants := []func() *ASETSStar{
		func() *ASETSStar { return New() },
		func() *ASETSStar { return NewReady() },
		func() *ASETSStar { return New(WithRule(RuleSymmetric)) },
		func() *ASETSStar { return New(WithHeadExcludedRep()) },
		func() *ASETSStar { return New(WithTimeActivation(0.01)) },
		func() *ASETSStar { return New(WithCountActivation(0.05)) },
	}
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := workload.Default(0.3+0.12*float64(seed), seed)
		cfg.N = 150
		if seed%2 == 0 {
			cfg = cfg.WithWorkflows(5, int(seed%3)+1).WithWeights()
			cfg.Order = workload.OrderRandom
		}
		for vi, mk := range variants {
			set := workload.MustGenerate(cfg)
			audited := &auditingScheduler{ASETSStar: mk(), t: t}
			if _, err := simRunForTest(set, audited); err != nil {
				t.Fatalf("seed %d variant %d: %v", seed, vi, err)
			}
		}
	}
}

// simRunForTest is a minimal single-server simulation loop local to this
// package (importing internal/sim here would create an import cycle via
// sim's tests; the loop is ten lines and mirrors sim.Run's contract).
func simRunForTest(set *txn.Set, s sched.Scheduler) (int, error) {
	set.ResetAll()
	s.Init(set)
	order := append([]*txn.Transaction(nil), set.Txns...)
	// Arrival order by time then ID.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (order[j].Arrival < order[j-1].Arrival ||
			(order[j].Arrival == order[j-1].Arrival && order[j].ID < order[j-1].ID)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	now, next, done := 0.0, 0, 0
	deliver := func(upTo float64) {
		for next < len(order) && order[next].Arrival <= upTo {
			s.OnArrival(upTo, order[next])
			next++
		}
	}
	for done < len(order) {
		t := s.Next(now)
		if t == nil {
			if next >= len(order) {
				return done, errDeadlock
			}
			now = order[next].Arrival
			deliver(now)
			continue
		}
		finish := now + t.Remaining
		if next < len(order) && order[next].Arrival < finish {
			at := order[next].Arrival
			t.Remaining -= at - now
			now = at
			s.OnPreempt(now, t)
			deliver(now)
			continue
		}
		now = finish
		t.Remaining = 0
		t.Finished = true
		t.FinishTime = now
		done++
		s.OnCompletion(now, t)
		deliver(now)
	}
	return done, nil
}

var errDeadlock = &deadlockError{}

type deadlockError struct{}

func (*deadlockError) Error() string { return "deadlock" }

// TestCheckInvariantsDetectsCorruption corrupts internal state on purpose
// and expects the checker to notice.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 2), mk(1, 0, 20, 3))
	a := New()
	a.Init(set)
	a.OnArrival(0, set.ByID(0))
	a.OnArrival(0, set.ByID(1))
	if err := a.CheckInvariants(0); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	// Corrupt a cached representative.
	a.entities[0].rep.Deadline += 5
	if err := a.CheckInvariants(0); err == nil {
		t.Fatal("corrupted representative not detected")
	}
	a.entities[0].rep.Deadline -= 5
	// Corrupt a ready count.
	a.entities[1].ready++
	if err := a.CheckInvariants(0); err == nil {
		t.Fatal("corrupted ready count not detected")
	}
}
