package core

import (
	"fmt"
	"math"
)

// CheckInvariants audits the scheduler's internal state at time now and
// returns the first violated invariant, if any. It is O(N) and meant for
// tests and debugging harnesses, which call it at every decision point of a
// randomized simulation:
//
//  1. every enqueued entity sits in exactly one of the two lists, with its
//     expiry handle present iff it is EDF-resident;
//  2. EDF-List membership satisfies Definition 6 on the representative
//     (now + r_rep <= d_rep) — HDF residents may satisfy it only between
//     migration points, but EDF residents must, because migration runs
//     before every decision;
//  3. cached representatives match a fresh recomputation;
//  4. ready counts match the number of available members;
//  5. both heaps and the expiry heap satisfy their ordering invariants;
//  6. an entity with at least one available member is enqueued unless its
//     workflow is done.
//
//lint:coldpath O(N) audit for tests and the Checked debug wrapper; production runs never call it
func (a *ASETSStar) CheckInvariants(now float64) error {
	if !a.edf.Verify() || !a.hdf.Verify() || !a.expiry.Verify() {
		return fmt.Errorf("core: heap ordering invariant broken at t=%v", now)
	}
	for _, e := range a.entities {
		avail := 0
		for _, id := range e.wf.Members {
			if !e.wf.Contains(id) {
				continue
			}
			if a.available(a.set.ByID(id)) {
				avail++
			}
		}
		if e.ready != avail {
			return fmt.Errorf("core: workflow %d ready count %d != available members %d at t=%v",
				e.wf.ID, e.ready, avail, now)
		}
		if !e.enqueued() {
			if avail > 0 && !e.wf.Done() {
				return fmt.Errorf("core: workflow %d has %d available members but is not enqueued at t=%v",
					e.wf.ID, avail, now)
			}
			if e.exp.InHeap() {
				return fmt.Errorf("core: dequeued workflow %d still holds an expiry handle", e.wf.ID)
			}
			continue
		}
		if e.wf.Done() {
			return fmt.Errorf("core: completed workflow %d still enqueued at t=%v", e.wf.ID, now)
		}
		rep := a.repOf(e)
		//lint:ignore floatcmp cache-coherence audit: the cached representative must be bitwise identical to a recomputation, not merely close
		if rep.Deadline != e.rep.Deadline || rep.Remaining != e.rep.Remaining || rep.Weight != e.rep.Weight {
			return fmt.Errorf("core: workflow %d cached rep %+v != recomputed %+v at t=%v",
				e.wf.ID, e.rep, rep, now)
		}
		inEDF := e.item.Owner() == a.edf
		if inEDF != e.inEDF {
			return fmt.Errorf("core: workflow %d inEDF flag %v disagrees with heap membership at t=%v",
				e.wf.ID, e.inEDF, now)
		}
		if inEDF != e.exp.InHeap() {
			return fmt.Errorf("core: workflow %d expiry handle presence %v disagrees with EDF residency %v",
				e.wf.ID, e.exp.InHeap(), inEDF)
		}
		if inEDF && !e.rep.CanMeetDeadline(now) {
			// A tiny epsilon covers the boundary t == d_rep - r_rep case hit
			// exactly at a decision point.
			if now-(e.rep.Deadline-e.rep.Remaining) > 1e-9 {
				return fmt.Errorf("core: workflow %d in EDF-List but rep cannot meet deadline at t=%v (d=%v r=%v)",
					e.wf.ID, now, e.rep.Deadline, e.rep.Remaining)
			}
		}
		if math.IsNaN(e.rep.Deadline) || math.IsNaN(e.rep.Remaining) {
			return fmt.Errorf("core: workflow %d has NaN representative", e.wf.ID)
		}
	}
	return nil
}
