package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestCheckedAuditsEveryDecision: the exported wrapper audits each Next and
// counts it; a clean run never panics.
func TestCheckedAuditsEveryDecision(t *testing.T) {
	cfg := workload.Default(0.8, 17).WithWorkflows(4, 2).WithWeights()
	cfg.N = 200
	set := workload.MustGenerate(cfg)
	c := NewChecked(New())
	if _, err := simRunForTest(set, c); err != nil {
		t.Fatal(err)
	}
	// Every completion is a decision point, so at least N audits ran.
	if c.Checks() < cfg.N {
		t.Fatalf("only %d decision points audited for %d transactions", c.Checks(), cfg.N)
	}
	if !strings.HasSuffix(c.Name(), "+inv") {
		t.Fatalf("Name() = %q, want +inv suffix marking audited runs", c.Name())
	}
}

// TestCheckedPanicsOnCorruption: a seeded violation must abort the next
// decision, not pass silently.
func TestCheckedPanicsOnCorruption(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 2), mk(1, 0, 20, 3))
	c := NewChecked(New())
	c.Init(set)
	c.OnArrival(0, set.ByID(0))
	c.OnArrival(0, set.ByID(1))
	// Corrupt the entity Next will NOT check out (checked-out entities are
	// dequeued and skip most of the audit): its ready count goes stale.
	c.ASETSStar.entities[1].ready++
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Checked.Next did not panic on corrupted representative")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	c.Next(0)
}
