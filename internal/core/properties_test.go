package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// pairTardiness runs two transactions available at t=0 in the given order
// (no preemption possible — nothing else arrives) and returns the total
// tardiness.
func pairTardiness(first, second *txn.Transaction) float64 {
	f1 := first.Length
	t1 := 0.0
	if f1 > first.Deadline {
		t1 = f1 - first.Deadline
	}
	f2 := f1 + second.Length
	t2 := 0.0
	if f2 > second.Deadline {
		t2 = f2 - second.Deadline
	}
	return t1 + t2
}

// TestTwoTransactionOptimality encodes the paper's own justification of the
// decision rule ("if the system has only these two transactions, whichever
// order will lead to a minimal tardiness is the order that ASETS* follows",
// Section III-A.2): for any two transactions available at time zero with no
// later arrivals, ASETS* achieves the minimum total tardiness over both
// execution orders.
func TestTwoTransactionOptimality(t *testing.T) {
	src := rng.New(424242)
	for trial := 0; trial < 5000; trial++ {
		a := &txn.Transaction{ID: 0, Arrival: 0, Weight: 1,
			Length:   float64(src.IntRange(1, 50)),
			Deadline: src.Uniform(0.01, 200),
		}
		b := &txn.Transaction{ID: 1, Arrival: 0, Weight: 1,
			Length:   float64(src.IntRange(1, 50)),
			Deadline: src.Uniform(0.01, 200),
		}
		set, err := txn.NewSet([]*txn.Transaction{a, b})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sim.New(sim.Config{}).Run(set, New())
		if err != nil {
			t.Fatal(err)
		}
		got := sum.AvgTardiness * 2

		aCopy, bCopy := *a, *b
		best := pairTardiness(&aCopy, &bCopy)
		if alt := pairTardiness(&bCopy, &aCopy); alt < best {
			best = alt
		}
		if got > best+1e-9 {
			t.Fatalf("trial %d: ASETS* tardiness %v exceeds optimal %v for a=%v b=%v",
				trial, got, best, a, b)
		}
	}
}

// TestTwoTransactionWeightedOptimality is the weighted analogue against the
// general rule: total weighted tardiness at most the better of both orders.
// The Fig. 7 rule is exact for two transactions when one sits in each list;
// when both share a list the EDF/HDF list order applies, which is optimal
// for the both-feasible and both-late cases respectively — except that HDF's
// density order is a 2-approximation heuristic for two late jobs with
// general weights, so a small slack factor is allowed there.
func TestTwoTransactionWeightedOptimality(t *testing.T) {
	src := rng.New(99999)
	weightedPair := func(first, second *txn.Transaction) float64 {
		f1 := first.Length
		t1 := 0.0
		if f1 > first.Deadline {
			t1 = (f1 - first.Deadline) * first.Weight
		}
		f2 := f1 + second.Length
		t2 := 0.0
		if f2 > second.Deadline {
			t2 = (f2 - second.Deadline) * second.Weight
		}
		return t1 + t2
	}
	worse := 0
	for trial := 0; trial < 5000; trial++ {
		a := &txn.Transaction{ID: 0, Arrival: 0,
			Weight:   float64(src.IntRange(1, 10)),
			Length:   float64(src.IntRange(1, 50)),
			Deadline: src.Uniform(0.01, 200),
		}
		b := &txn.Transaction{ID: 1, Arrival: 0,
			Weight:   float64(src.IntRange(1, 10)),
			Length:   float64(src.IntRange(1, 50)),
			Deadline: src.Uniform(0.01, 200),
		}
		set, err := txn.NewSet([]*txn.Transaction{a, b})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sim.New(sim.Config{}).Run(set, New())
		if err != nil {
			t.Fatal(err)
		}
		got := sum.AvgWeightedTardiness * 2

		aCopy, bCopy := *a, *b
		best := weightedPair(&aCopy, &bCopy)
		if alt := weightedPair(&bCopy, &aCopy); alt < best {
			best = alt
		}
		if got > best+1e-9 {
			worse++
		}
	}
	// The heuristic is not exactly optimal in every weighted configuration;
	// the paper claims adaptivity, not per-instance optimality. Requiring
	// sub-optimality in under 6% of random instances pins the quality.
	if worse > 300 {
		t.Fatalf("ASETS* weighted choice suboptimal in %d/5000 two-transaction instances", worse)
	}
}

// TestRandomWorkloadsAllPoliciesValid is the randomized differential smoke:
// many small random workloads, every policy, full trace validation, and the
// work-conservation cross-check that all policies complete all work in the
// same busy periods (identical makespan and busy time).
func TestRandomWorkloadsAllPoliciesValid(t *testing.T) {
	mkPolicies := func() []sched.Scheduler {
		return []sched.Scheduler{
			sched.NewFCFS(), sched.NewEDF(), sched.NewSRPT(), sched.NewLS(),
			sched.NewHDF(), sched.NewHVF(), sched.NewMIX(0.3),
			New(), NewReady(),
			New(WithRule(RuleSymmetric), WithName("sym")),
			New(WithHeadExcludedRep(), WithName("tail")),
			New(WithTimeActivation(0.01)),
			New(WithCountActivation(0.05)),
		}
	}
	for seed := uint64(1); seed <= 12; seed++ {
		cfg := workload.Default(0.2+0.07*float64(seed), seed)
		cfg.N = 60
		if seed%2 == 0 {
			cfg = cfg.WithWorkflows(4, int(seed%3)+1).WithWeights()
		}
		if seed%3 == 0 {
			cfg.Arrivals = workload.ArrivalsBatch
		}
		if seed%4 == 0 {
			cfg.Order = workload.OrderRandom
		}
		var refMakespan, refBusy float64
		for i, s := range mkPolicies() {
			set := workload.MustGenerate(cfg)
			rec := &trace.Recorder{}
			sum, err := sim.New(sim.Config{Recorder: rec}).Run(set, s)
			if err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, s.Name(), err)
			}
			if err := rec.Validate(set); err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, s.Name(), err)
			}
			if i == 0 {
				refMakespan, refBusy = sum.Makespan, sum.BusyTime
				continue
			}
			if diff := sum.Makespan - refMakespan; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("seed %d policy %s: makespan %v differs from FCFS's %v (work conservation violated)",
					seed, s.Name(), sum.Makespan, refMakespan)
			}
			if diff := sum.BusyTime - refBusy; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("seed %d policy %s: busy time %v differs from FCFS's %v",
					seed, s.Name(), sum.BusyTime, refBusy)
			}
		}
	}
}

// TestEDFFeasibilityOptimality encodes the classic theorem the paper leans
// on ("EDF guarantees that all jobs will meet their deadlines if the system
// is not over-utilized"): preemptive EDF on one server is optimal for
// feasibility, so if ANY policy meets every deadline on an independent
// workload, EDF must too.
func TestEDFFeasibilityOptimality(t *testing.T) {
	policies := []func() sched.Scheduler{
		sched.NewFCFS, sched.NewSRPT, sched.NewLS, sched.NewHDF,
		func() sched.Scheduler { return New() },
	}
	checked := 0
	for seed := uint64(1); seed <= 40; seed++ {
		cfg := workload.Default(0.2+0.02*float64(seed%30), seed)
		cfg.N = 80
		someFeasible := false
		for _, mk := range policies {
			set := workload.MustGenerate(cfg)
			sum, err := sim.New(sim.Config{}).Run(set, mk())
			if err != nil {
				t.Fatal(err)
			}
			if sum.MissRatio == 0 {
				someFeasible = true
				break
			}
		}
		if !someFeasible {
			continue
		}
		checked++
		set := workload.MustGenerate(cfg)
		sum, err := sim.New(sim.Config{}).Run(set, sched.NewEDF())
		if err != nil {
			t.Fatal(err)
		}
		if sum.MissRatio != 0 {
			t.Fatalf("seed %d: another policy met every deadline but EDF missed %.1f%%",
				seed, 100*sum.MissRatio)
		}
	}
	if checked == 0 {
		t.Skip("no feasible instance generated at this scale")
	}
}

// TestQuickSingletonEquivalence: on independent workloads, singleton and
// workflow grouping must agree for arbitrary parameters (quick-checked over
// the generator's seed/utilization space).
func TestQuickSingletonEquivalence(t *testing.T) {
	f := func(seed uint64, utilQ uint8) bool {
		cfg := workload.Default(float64(utilQ%10+1)/10, seed)
		cfg.N = 40
		a := workload.MustGenerate(cfg)
		b := workload.MustGenerate(cfg)
		sa, err := sim.New(sim.Config{}).Run(a, New())
		if err != nil {
			return false
		}
		sb, err := sim.New(sim.Config{}).Run(b, NewReady())
		if err != nil {
			return false
		}
		return sa.AvgTardiness == sb.AvgTardiness && sa.Makespan == sb.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
