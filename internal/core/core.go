// Package core implements ASETS*, the paper's primary contribution: a
// parameter-free adaptive scheduling policy for web transactions that
// integrates EDF with HDF (which reduces to SRPT under unit weights),
// operates at the transaction level or the workflow level as the workload
// demands, and optionally trades average-case for worst-case performance via
// a deadline-driven aging scheme (the balance-aware variant of Section
// III-D).
//
// One engine covers every variant in the paper:
//
//   - Transaction-level ASETS* (Section III-A): run the engine on an
//     independent workload — every transaction is its own workflow, the
//     head and representative collapse onto the transaction itself, and the
//     decision rule reduces exactly to Eq. (1).
//   - Workflow-level ASETS* (Section III-B) and the general weighted case
//     (Section III-C, Fig. 7): the default — scheduling entities are the
//     dependency closures of root transactions, classified into the
//     EDF-List and HDF-List by their representative transactions.
//   - The Ready baseline (Section III-B): singleton grouping over a
//     dependent workload, i.e. the engine sees dependent transactions only
//     once they become ready.
//   - Balance-aware ASETS* (Section III-D): time-based or count-based
//     activation of T_old, the pending ready transaction with the highest
//     weight-to-deadline ratio.
package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/txn"
)

// Rule selects which of the paper's two decision formulas arbitrates between
// the top of the EDF-List and the top of the HDF-List.
type Rule int

const (
	// RuleFig7 is the canonical rule from the pseudo-code in Fig. 7:
	// run the EDF winner E iff
	//   r_head(E) * w_rep(H)  <  (r_head(H) - s_rep(E)) * w_rep(E).
	// With unit weights this is exactly Eq. (1); with singleton workflows
	// head = rep = the transaction itself.
	RuleFig7 Rule = iota
	// RuleSymmetric is the variant stated in prose in Section III-B:
	// run E iff r_head(E) - s_rep(H) <= r_head(H) - s_rep(E), scaled by the
	// representative weights in the weighted case. DESIGN.md discusses the
	// discrepancy; an ablation bench compares the two.
	RuleSymmetric
)

// Activation selects the aging mode of balance-aware ASETS*.
type Activation int

const (
	// ActivationNone disables aging (plain ASETS*).
	ActivationNone Activation = iota
	// ActivationTime runs T_old every 1/rate simulated time units.
	ActivationTime
	// ActivationCount runs T_old every 1/rate scheduling points.
	ActivationCount
)

// Option customizes an ASETS* instance.
type Option func(*config)

type config struct {
	name            string
	rule            Rule
	singleton       bool
	activation      Activation
	rate            float64
	headExcludedRep bool
}

// WithRule selects the decision rule (default RuleFig7).
func WithRule(r Rule) Option { return func(c *config) { c.rule = r } }

// WithName overrides the display name used in tables.
func WithName(name string) Option { return func(c *config) { c.name = name } }

// WithHeadExcludedRep computes each workflow's representative over the
// pending members excluding the current head transaction — the alternative
// reading of the paper's Example 4, in which the head and representative of
// a two-transaction workflow are distinct transactions. The formal
// Definition 9 (over all remaining transactions) stays the default; the
// abl-rep experiment quantifies the difference.
func WithHeadExcludedRep() Option { return func(c *config) { c.headExcludedRep = true } }

// WithSingletonGrouping makes every transaction its own scheduling entity,
// hiding dependent transactions until they become ready — the paper's Ready
// baseline when the workload has precedence constraints.
func WithSingletonGrouping() Option { return func(c *config) { c.singleton = true } }

// WithTimeActivation enables balance-aware aging that runs T_old every
// 1/rate time units. The paper sweeps rate over [0.002, 0.01].
func WithTimeActivation(rate float64) Option {
	return func(c *config) { c.activation = ActivationTime; c.rate = rate }
}

// WithCountActivation enables balance-aware aging that runs T_old every
// 1/rate scheduling points. The paper sweeps rate over [0.02, 0.1].
func WithCountActivation(rate float64) Option {
	return func(c *config) { c.activation = ActivationCount; c.rate = rate }
}

// entity is one scheduling unit: a workflow together with its cached
// representative and queue handles. Entities live in exactly one of the two
// priority lists while they have at least one ready member; EDF-resident
// entities additionally sit in the expiry heap that migrates them to the
// HDF-List the moment their representative can no longer meet its deadline.
type entity struct {
	wf    *txn.Workflow
	rep   txn.Representative
	item  *pq.Item[*entity]
	exp   *pq.Item[*entity]
	inEDF bool
	ready int // number of ready members
}

// expiryTime is the instant the entity stops qualifying for the EDF-List:
// it belongs there iff now + r_rep <= d_rep, i.e. iff now <= d_rep - r_rep.
func (e *entity) expiryTime() float64 { return e.rep.Deadline - e.rep.Remaining }

// enqueued reports whether the entity currently sits in either list.
func (e *entity) enqueued() bool { return e.item.InHeap() }

// ASETSStar is the scheduler. Construct with New; the zero value is unusable.
type ASETSStar struct {
	cfg config

	set      *txn.Set
	rt       *sched.ReadyTracker
	entities []*entity
	memberOf [][]*entity // transaction ID -> entities whose workflow contains it

	edf    *pq.Heap[*entity] // ordered by representative deadline
	hdf    *pq.Heap[*entity] // ordered by representative density (weight/remaining)
	expiry *pq.Heap[*entity] // EDF residents ordered by expiry time

	readyTxns  map[txn.ID]*txn.Transaction // candidates for T_old
	checkedOut []bool                      // transactions handed out via Next and not yet returned

	schedPoints    int
	nextActivation float64

	// sink, when non-nil, receives the policy-internal decision events the
	// generic interface-level instrumentation cannot see: balance-aware
	// aging activations and EDF→HDF entity migrations. Installed through
	// SetSink (the sched.SinkSetter seam used by sched.Instrument).
	sink obs.Sink
}

// SetSink installs the observation sink for policy-internal events. A nil
// sink (the default) disables emission entirely.
func (a *ASETSStar) SetSink(sink obs.Sink) { a.sink = sink }

// Compile-time check that ASETSStar satisfies the scheduler contract.
var _ sched.Scheduler = (*ASETSStar)(nil)

// New constructs an ASETS* scheduler. With no options it is the general
// workflow-level weighted policy of Fig. 7, which self-reduces to every
// special case the paper describes.
func New(opts ...Option) *ASETSStar {
	cfg := config{rule: RuleFig7}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.activation != ActivationNone && cfg.rate <= 0 {
		panic(fmt.Sprintf("core: balance-aware activation rate %v must be positive", cfg.rate))
	}
	if cfg.name == "" {
		switch {
		case cfg.singleton:
			cfg.name = "Ready"
		case cfg.activation == ActivationTime:
			cfg.name = fmt.Sprintf("ASETS*-BAL(t=%g)", cfg.rate)
		case cfg.activation == ActivationCount:
			cfg.name = fmt.Sprintf("ASETS*-BAL(c=%g)", cfg.rate)
		default:
			cfg.name = "ASETS*"
		}
	}
	return &ASETSStar{cfg: cfg}
}

// NewReady constructs the Ready baseline of Section III-B: transaction-level
// ASETS* preceded by a Wait queue, realized as singleton grouping.
func NewReady() *ASETSStar { return New(WithSingletonGrouping()) }

// Name implements sched.Scheduler.
func (a *ASETSStar) Name() string { return a.cfg.name }

// Init implements sched.Scheduler.
//
//lint:coldpath per-run setup: entities, heaps and indexes are built before the event loop
func (a *ASETSStar) Init(set *txn.Set) {
	a.set = set
	a.rt = sched.NewReadyTracker(set)

	var wfs []*txn.Workflow
	if a.cfg.singleton {
		wfs = txn.SingletonWorkflows(set)
	} else {
		wfs = txn.BuildWorkflows(set)
	}
	a.entities = make([]*entity, len(wfs))
	a.memberOf = make([][]*entity, set.Len())
	for i, wf := range wfs {
		e := &entity{wf: wf}
		e.item = pq.NewItem(e)
		e.exp = pq.NewItem(e)
		a.entities[i] = e
		for _, id := range wf.Members {
			a.memberOf[id] = append(a.memberOf[id], e)
		}
	}

	a.edf = pq.NewHeap[*entity](func(x, y *entity) bool {
		if x.rep.Deadline != y.rep.Deadline {
			return x.rep.Deadline < y.rep.Deadline
		}
		return x.wf.ID < y.wf.ID
	})
	// Density comparison via cross-multiplication: w_x/r_x > w_y/r_y iff
	// w_x*r_y > w_y*r_x (remaining times are strictly positive).
	a.hdf = pq.NewHeap[*entity](func(x, y *entity) bool {
		dx := x.rep.Weight * y.rep.Remaining
		dy := y.rep.Weight * x.rep.Remaining
		if dx != dy {
			return dx > dy
		}
		return x.wf.ID < y.wf.ID
	})
	a.expiry = pq.NewHeap[*entity](func(x, y *entity) bool {
		ex, ey := x.expiryTime(), y.expiryTime()
		if ex != ey {
			return ex < ey
		}
		return x.wf.ID < y.wf.ID
	})

	a.readyTxns = make(map[txn.ID]*txn.Transaction)
	a.checkedOut = make([]bool, set.Len())
	a.schedPoints = 0
	if a.cfg.activation == ActivationTime {
		a.nextActivation = 1 / a.cfg.rate
	}
}

// OnArrival implements sched.Scheduler.
func (a *ASETSStar) OnArrival(now float64, t *txn.Transaction) {
	if a.rt.Arrive(t) {
		a.markReady(now, t)
	}
}

// available reports whether t can be handed to a server right now: ready
// per the dependency tracker and not already checked out to another server.
// With a single server the checked-out transaction is never queried, so
// this coincides with plain readiness; with multiple servers it prevents
// two servers from receiving the same head transaction.
func (a *ASETSStar) available(t *txn.Transaction) bool {
	return a.rt.Ready(t) && !a.checkedOut[t.ID]
}

// markReady records that t became executable and surfaces its entities into
// the priority lists.
func (a *ASETSStar) markReady(now float64, t *txn.Transaction) {
	a.readyTxns[t.ID] = t
	for _, e := range a.memberOf[t.ID] {
		e.ready++
		if !e.enqueued() && !e.wf.Done() {
			a.enqueue(now, e)
			continue
		}
		// A newly ready member can change the head (DAG workflows), which
		// shifts the head-excluded representative; refresh in place.
		a.reposition(now, e)
	}
}

// repOf computes the entity's representative under the configured scope:
// Definition 9 over all pending members by default, or excluding the
// current head under WithHeadExcludedRep.
func (a *ASETSStar) repOf(e *entity) txn.Representative {
	if a.cfg.headExcludedRep {
		if h := e.wf.Head(a.available); h != nil {
			return e.wf.RepresentativeExcluding(h.ID)
		}
	}
	return e.wf.Representative()
}

// enqueue computes the entity's representative and inserts it into the list
// Definition 6/7 membership dictates.
func (a *ASETSStar) enqueue(now float64, e *entity) {
	e.rep = a.repOf(e)
	e.inEDF = e.rep.CanMeetDeadline(now)
	if e.inEDF {
		a.edf.Push(e.item)
		a.expiry.Push(e.exp)
	} else {
		a.hdf.Push(e.item)
	}
}

// dequeue removes the entity from whichever structures hold it.
func (a *ASETSStar) dequeue(e *entity) {
	if e.item.InHeap() {
		e.item.Owner().Remove(e.item)
	}
	if e.exp.InHeap() {
		a.expiry.Remove(e.exp)
	}
}

// reposition refreshes the entity's representative and restores queue order
// after a member's remaining time or the pending set changed.
func (a *ASETSStar) reposition(now float64, e *entity) {
	if !e.enqueued() {
		return
	}
	e.rep = a.repOf(e)
	inEDF := e.rep.CanMeetDeadline(now)
	if inEDF != e.inEDF {
		a.dequeue(e)
		e.inEDF = inEDF
		if inEDF {
			a.edf.Push(e.item)
			a.expiry.Push(e.exp)
		} else {
			a.hdf.Push(e.item)
		}
		return
	}
	e.item.Owner().Fix(e.item)
	if e.exp.InHeap() {
		a.expiry.Fix(e.exp)
	}
}

// migrate moves entities whose representatives can no longer meet their
// deadlines from the EDF-List to the HDF-List. A waiting entity's remaining
// time is constant, so it expires at the fixed instant d_rep - r_rep tracked
// by the expiry heap; migration is therefore O(log N) per moved entity.
func (a *ASETSStar) migrate(now float64) {
	for {
		top := a.expiry.Peek()
		if top == nil || top.Value.expiryTime() >= now {
			break
		}
		e := top.Value
		a.dequeue(e)
		e.inEDF = false
		a.hdf.Push(e.item)
		if a.sink != nil {
			a.sink.Emit(obs.Event{
				Time: now, Kind: obs.KindModeSwitch, Txn: -1, Workflow: e.wf.ID,
				Deadline: e.rep.Deadline, Remaining: e.rep.Remaining,
				Detail: "edf->hdf",
			})
		}
	}
}

// OnPreempt implements sched.Scheduler: the checked-out transaction comes
// back unfinished with less remaining work; it re-enters the schedulable
// population and its entities refresh their representatives (less remaining
// work can only improve the density and remaining-time keys).
func (a *ASETSStar) OnPreempt(now float64, t *txn.Transaction) {
	a.checkedOut[t.ID] = false
	a.markReady(now, t)
}

// OnCompletion implements sched.Scheduler.
func (a *ASETSStar) OnCompletion(now float64, t *txn.Transaction) {
	// t was checked out by Next, so its entities' ready counts already
	// exclude it; only the pending sets and the dependency tracker change.
	delete(a.readyTxns, t.ID)
	newly := a.rt.Complete(t)
	for _, e := range a.memberOf[t.ID] {
		e.wf.Complete(t.ID)
		switch {
		case e.wf.Done() || e.ready == 0:
			a.dequeue(e)
		default:
			a.reposition(now, e)
		}
	}
	for _, r := range newly {
		a.markReady(now, r)
	}
}

// Next implements sched.Scheduler: Fig. 7's decision procedure, preceded by
// lazy EDF-to-HDF migration and, in balance-aware mode, the T_old activation
// check.
func (a *ASETSStar) Next(now float64) *txn.Transaction {
	a.migrate(now)
	a.schedPoints++

	if t := a.activate(now); t != nil {
		if a.sink != nil {
			a.sink.Emit(obs.Event{
				Time: now, Kind: obs.KindAging, Txn: t.ID, Workflow: -1,
				Deadline: t.Deadline, Remaining: t.Remaining,
				Detail: "t_old",
			})
		}
		a.checkOut(now, t)
		return t
	}

	e := a.pickEntity(now)
	if e == nil {
		return nil
	}
	head := e.wf.Head(a.available)
	if head == nil {
		panic(fmt.Sprintf("core: enqueued workflow %d has no ready head (ready=%d)", e.wf.ID, e.ready))
	}
	a.checkOut(now, head)
	return head
}

// checkOut removes t from the schedulable population while a server runs
// it: it leaves the T_old candidate set and stops counting toward its
// entities' ready members (an entity whose only available member is running
// must not be offered to another server).
func (a *ASETSStar) checkOut(now float64, t *txn.Transaction) {
	a.checkedOut[t.ID] = true
	delete(a.readyTxns, t.ID)
	for _, e := range a.memberOf[t.ID] {
		e.ready--
		if e.ready == 0 {
			a.dequeue(e)
		} else {
			a.reposition(now, e)
		}
	}
}

// pickEntity arbitrates between the tops of the two lists.
func (a *ASETSStar) pickEntity(now float64) *entity {
	eTop := a.edf.Peek()
	hTop := a.hdf.Peek()
	switch {
	case eTop == nil && hTop == nil:
		return nil
	case hTop == nil:
		return eTop.Value
	case eTop == nil:
		return hTop.Value
	}
	e, h := eTop.Value, hTop.Value
	headE := e.wf.Head(a.available)
	headH := h.wf.Head(a.available)
	if headE == nil || headH == nil {
		panic("core: enqueued workflow lost its ready head")
	}
	if a.runEDFFirst(now, e, h, headE, headH) {
		return e
	}
	return h
}

// runEDFFirst evaluates the configured decision rule: true means the head of
// the EDF-List's top workflow executes next.
func (a *ASETSStar) runEDFFirst(now float64, e, h *entity, headE, headH *txn.Transaction) bool {
	switch a.cfg.rule {
	case RuleSymmetric:
		// Section III-B prose, weight-scaled for the general case: compare
		// the negative impact each side inflicts on the other's
		// representative.
		niE := (headE.Remaining - h.rep.Slack(now)) * h.rep.Weight
		niH := (headH.Remaining - e.rep.Slack(now)) * e.rep.Weight
		return niE <= niH
	case RuleFig7:
		// Fig. 7, lines 15-17: running E delays H's representative by the
		// full head length; running H delays E's representative only by
		// what E's slack cannot absorb.
		niE := headE.Remaining * h.rep.Weight
		niH := (headH.Remaining - e.rep.Slack(now)) * e.rep.Weight
		return niE < niH
	default:
		panic(fmt.Sprintf("core: unknown decision rule %d", a.cfg.rule))
	}
}

// activate implements the balance-aware T_old selection (Section III-D):
// when the activation period elapses, the ready transaction with the highest
// weight-to-deadline ratio runs regardless of the ASETS* order.
func (a *ASETSStar) activate(now float64) *txn.Transaction {
	switch a.cfg.activation {
	case ActivationNone:
		return nil
	case ActivationTime:
		if now < a.nextActivation {
			return nil
		}
		for a.nextActivation <= now {
			a.nextActivation += 1 / a.cfg.rate
		}
	case ActivationCount:
		period := int(1/a.cfg.rate + 0.5)
		if period < 1 {
			period = 1
		}
		if a.schedPoints%period != 0 {
			return nil
		}
	default:
		panic(fmt.Sprintf("core: unknown activation mode %d", a.cfg.activation))
	}
	return a.oldest()
}

// oldest returns T_old: the ready transaction maximizing w_i/d_i, with ties
// broken by lower ID for determinism. Returns nil when nothing is ready.
func (a *ASETSStar) oldest() *txn.Transaction {
	var best *txn.Transaction
	var bestRatio float64
	//lint:ignore maprange pure max under a total order (ratio, then ID) — the result is identical for every iteration order
	for _, t := range a.readyTxns {
		ratio := t.Weight / t.Deadline
		if best == nil || ratio > bestRatio || (ratio == bestRatio && t.ID < best.ID) {
			best = t
			bestRatio = ratio
		}
	}
	return best
}

// QueueLengths reports the current sizes of the EDF and HDF lists, exposed
// for tests and instrumentation.
func (a *ASETSStar) QueueLengths() (edf, hdf int) {
	return a.edf.Len(), a.hdf.Len()
}
