//go:build !race

// The 10k-transaction audit is quadratic by design (O(n) invariant check at
// each of ~2n decision points); it stays well under a minute as a plain
// test but would dominate a -race run, so the detector build skips it. The
// small-N coverage in checked_test.go and invariants_test.go still runs
// everywhere.

package core

import (
	"testing"

	"repro/internal/workload"
)

// TestInvariants10kRegression: a randomized 10 000-transaction workload —
// workflows, weights, randomized precedence order — replayed under the
// audited scheduler with every decision point checked.
func TestInvariants10kRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic audit")
	}
	cfg := workload.Default(0.9, 10007).WithWorkflows(5, 2).WithWeights()
	cfg.N = 10000
	cfg.Order = workload.OrderRandom
	set := workload.MustGenerate(cfg)
	c := NewChecked(New())
	done, err := simRunForTest(set, c)
	if err != nil {
		t.Fatal(err)
	}
	if done != cfg.N {
		t.Fatalf("completed %d of %d", done, cfg.N)
	}
	if c.Checks() < cfg.N {
		t.Fatalf("only %d decision points audited", c.Checks())
	}
	t.Logf("audited %d decision points over %d transactions", c.Checks(), cfg.N)
}
