package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/txn"
)

func mk(id int, arrival, deadline, length float64, deps ...txn.ID) *txn.Transaction {
	return &txn.Transaction{
		ID:       txn.ID(id),
		Arrival:  arrival,
		Deadline: deadline,
		Length:   length,
		Weight:   1,
		Deps:     deps,
	}
}

func mustSet(t *testing.T, txns ...*txn.Transaction) *txn.Set {
	t.Helper()
	for _, tx := range txns {
		tx.Reset()
	}
	s, err := txn.NewSet(txns)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

// drive runs the check-out protocol to completion without preemption
// (arrivals all delivered up front at their times; see driveTimed for
// arrival interleaving) and returns the completion order.
func drive(t *testing.T, s sched.Scheduler, set *txn.Set) []txn.ID {
	t.Helper()
	set.ResetAll()
	s.Init(set)
	now := 0.0
	for _, tx := range set.Txns {
		if tx.Arrival != 0 {
			t.Fatalf("drive requires all arrivals at t=0; use the simulator for %v", tx)
		}
		s.OnArrival(0, tx)
	}
	var order []txn.ID
	for len(order) < set.Len() {
		tx := s.Next(now)
		if tx == nil {
			t.Fatalf("%s: Next returned nil with %d transactions left", s.Name(), set.Len()-len(order))
		}
		now += tx.Remaining
		tx.Remaining = 0
		tx.Finished = true
		tx.FinishTime = now
		order = append(order, tx.ID)
		s.OnCompletion(now, tx)
	}
	return order
}

func totalTardiness(set *txn.Set) float64 {
	var sum float64
	for _, tx := range set.Txns {
		sum += tx.Tardiness()
	}
	return sum
}

func TestNames(t *testing.T) {
	if New().Name() != "ASETS*" {
		t.Errorf("default name = %q", New().Name())
	}
	if NewReady().Name() != "Ready" {
		t.Errorf("ready name = %q", NewReady().Name())
	}
	if got := New(WithTimeActivation(0.01)).Name(); got != "ASETS*-BAL(t=0.01)" {
		t.Errorf("balance name = %q", got)
	}
	if got := New(WithCountActivation(0.05)).Name(); got != "ASETS*-BAL(c=0.05)" {
		t.Errorf("balance name = %q", got)
	}
	if got := New(WithName("custom")).Name(); got != "custom" {
		t.Errorf("custom name = %q", got)
	}
}

func TestInvalidActivationRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero activation rate accepted")
		}
	}()
	New(WithTimeActivation(0))
}

// TestExample2SRPTWins reproduces the paper's Example 2 (Figure 4):
// T_1,SRPT has r=3 and a just-missed deadline; T_1,EDF has r=5, d=7, slack 2.
// Negative impact of the EDF transaction is 5; of the SRPT transaction,
// 3 - 2 = 1, so ASETS* runs the SRPT transaction first.
func TestExample2SRPTWins(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 2.999999, 3), // T_1,SRPT: deadline 3-eps already unmeetable
		mk(1, 0, 7, 5),        // T_1,EDF: slack 2 at t=0
	)
	order := drive(t, New(), set)
	if order[0] != 0 {
		t.Fatalf("order = %v, want T0 (the SRPT-list top) first", order)
	}
	// The paper's arithmetic: running T_1,SRPT first costs T_1,EDF exactly
	// r_SRPT - s_EDF = 1 unit of tardiness (plus T0's epsilon overrun),
	// where the other order would have cost r_EDF = 5.
	if tard := totalTardiness(set); tard > 1.1 || tard < 0.9 {
		t.Fatalf("tardiness = %v, want ~1 (the winning order's negative impact)", tard)
	}
}

// TestExample3EDFWins mirrors the paper's Example 3 (Figure 5): the EDF
// transaction has no slack, so letting the tardy SRPT transaction run first
// would cost r_SRPT - s_EDF = 3, more than the r_EDF = 2 the EDF transaction
// costs; Eq. (1) (2 < 3) picks the EDF side.
func TestExample3EDFWins(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 2.999999, 3), // T_1,SRPT: already tardy
		mk(1, 0, 2, 2),        // T_1,EDF: slack 0 at t=0
	)
	order := drive(t, New(), set)
	if order[0] != 1 {
		t.Fatalf("order = %v, want T1 (the EDF-list top) first", order)
	}
	if !(set.ByID(1).Tardiness() == 0) {
		t.Fatalf("EDF-list transaction missed its deadline: %v", set.ByID(1).Tardiness())
	}
}

// TestEquation1Boundary checks the strict inequality of Eq. (1): when
// r_EDF == r_SRPT - s_EDF the SRPT transaction runs first (the rule requires
// strictly less).
func TestEquation1Boundary(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 1, 5), // SRPT side: tardy, r=5
		mk(1, 0, 7, 4), // EDF side: r=4, slack 3, r_EDF < 5-3? 4 < 2 is false
	)
	order := drive(t, New(), set)
	if order[0] != 0 {
		t.Fatalf("order = %v, want SRPT transaction first at rule boundary", order)
	}
}

// TestReducesToEDFWhenFeasible: when every transaction can meet its deadline
// under EDF, ASETS* behaves exactly like EDF (the SRPT list stays empty).
func TestReducesToEDFWhenFeasible(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 100, 5),
			mk(1, 0, 20, 5),
			mk(2, 0, 50, 5),
			mk(3, 0, 35, 5),
		)
	}
	asets := drive(t, New(), build())
	edf := drive(t, sched.NewEDF(), build())
	for i := range asets {
		if asets[i] != edf[i] {
			t.Fatalf("ASETS* %v != EDF %v on a feasible workload", asets, edf)
		}
	}
}

// TestReducesToSRPTWhenAllMissed: when every deadline has already passed,
// ASETS* behaves exactly like SRPT (the EDF list stays empty).
func TestReducesToSRPTWhenAllMissed(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 0.5, 9),
			mk(1, 0, 0.1, 3),
			mk(2, 0, 0.2, 6),
			mk(3, 0, 0.4, 1),
		)
	}
	asets := drive(t, New(), build())
	srpt := drive(t, sched.NewSRPT(), build())
	for i := range asets {
		if asets[i] != srpt[i] {
			t.Fatalf("ASETS* %v != SRPT %v when all deadlines are lost", asets, srpt)
		}
	}
}

// TestReducesToHDFWhenAllMissedWeighted: the weighted analogue — with all
// deadlines missed, ASETS* orders by density like HDF.
func TestReducesToHDFWhenAllMissedWeighted(t *testing.T) {
	build := func() *txn.Set {
		a := mk(0, 0, 0.5, 9)
		a.Weight = 1
		b := mk(1, 0, 0.1, 3)
		b.Weight = 9 // density 3
		c := mk(2, 0, 0.2, 6)
		c.Weight = 3 // density 0.5
		return mustSet(t, a, b, c)
	}
	asets := drive(t, New(), build())
	hdf := drive(t, sched.NewHDF(), build())
	for i := range asets {
		if asets[i] != hdf[i] {
			t.Fatalf("ASETS* %v != HDF %v when all deadlines are lost", asets, hdf)
		}
	}
}

// TestMigrationEDFToSRPT: a transaction that waits in the EDF list past the
// point where it can meet its deadline must migrate to the SRPT list. We
// observe this through the queue lengths.
func TestMigrationEDFToSRPT(t *testing.T) {
	set := mustSet(t, mk(0, 0, 10, 4), mk(1, 0, 100, 4))
	a := New()
	a.Init(set)
	a.OnArrival(0, set.ByID(0))
	a.OnArrival(0, set.ByID(1))
	if edf, hdf := a.QueueLengths(); edf != 2 || hdf != 0 {
		t.Fatalf("initial lists: edf=%d hdf=%d", edf, hdf)
	}
	// At t=7, T0 can no longer meet d=10 (7+4 > 10); a Next call at that
	// time must migrate it to the HDF list, where it wins the decision
	// (running the feasible T1 first would cost T0 its full length, while
	// T1's 89 units of slack absorb T0 entirely) and is checked out.
	got := a.Next(7)
	if got == nil || got.ID != 0 {
		t.Fatalf("Next(7) = %v, want the migrated T0", got)
	}
	if edf, hdf := a.QueueLengths(); edf != 1 || hdf != 0 {
		t.Fatalf("after migration and checkout: edf=%d hdf=%d, want 1/0", edf, hdf)
	}
	// Returning it unfinished re-enters it on the HDF side.
	got.Remaining = 2
	a.OnPreempt(9, got)
	if edf, hdf := a.QueueLengths(); edf != 1 || hdf != 1 {
		t.Fatalf("after preempt-return: edf=%d hdf=%d, want 1/1", edf, hdf)
	}
}

// TestStockScenario reproduces the Section II-B conflict: an urgent short
// alert transaction depends on a long cheap one. Workflow-level ASETS*
// boosts the producer; Ready does not, and pays more tardiness.
func TestStockScenario(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 100, 10),  // T1: all stock prices (long, loose)
			mk(1, 0, 12, 1, 0), // T2: portfolio join (short, tight)
			mk(2, 0, 14, 5),    // independent competitor
		)
	}
	setA := build()
	driveA := drive(t, New(), setA)
	setR := build()
	drive(t, NewReady(), setR)
	if totalTardiness(setA) >= totalTardiness(setR) {
		t.Fatalf("ASETS* tardiness %v not better than Ready %v",
			totalTardiness(setA), totalTardiness(setR))
	}
	if driveA[0] != 0 {
		t.Fatalf("ASETS* should boost the producer first, got %v", driveA)
	}
}

// TestWorkflowEqualsSingletonOnIndependentWorkload: with no dependencies,
// workflow grouping and singleton grouping are the same algorithm and must
// produce identical schedules.
func TestWorkflowEqualsSingletonOnIndependentWorkload(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 12, 9),
			mk(1, 0, 7, 3),
			mk(2, 0, 25, 6),
			mk(3, 0, 3, 4),
			mk(4, 0, 40, 2),
		)
	}
	a := drive(t, New(), build())
	b := drive(t, NewReady(), build())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workflow grouping %v != singleton grouping %v on independent workload", a, b)
		}
	}
}

// TestPrecedenceNeverViolated: ASETS* must never emit a transaction whose
// dependencies are unfinished.
func TestPrecedenceNeverViolated(t *testing.T) {
	set := mustSet(t,
		mk(0, 0, 5, 2),
		mk(1, 0, 3, 1, 0),
		mk(2, 0, 9, 3, 1),
		mk(3, 0, 1, 1),
	)
	s := New()
	set.ResetAll()
	s.Init(set)
	for _, tx := range set.Txns {
		s.OnArrival(0, tx)
	}
	done := map[txn.ID]bool{}
	now := 0.0
	for len(done) < set.Len() {
		tx := s.Next(now)
		for _, d := range tx.Deps {
			if !done[d] {
				t.Fatalf("T%d scheduled before dependency T%d", tx.ID, d)
			}
		}
		now += tx.Remaining
		tx.Remaining = 0
		tx.Finished = true
		tx.FinishTime = now
		done[tx.ID] = true
		s.OnCompletion(now, tx)
	}
}

// TestBalanceAwareTimeActivation: with an aggressive time-based activation
// rate, T_old (highest weight/deadline ratio) jumps the queue.
func TestBalanceAwareTimeActivation(t *testing.T) {
	// T0: heavy, early deadline -> highest w/d ratio. Long, so plain ASETS*
	// (SRPT-leaning under overload) would defer it.
	a := mk(0, 0, 1, 50)
	a.Weight = 10
	b := mk(1, 0, 0.9, 2)
	c := mk(2, 0, 0.8, 3)
	set := mustSet(t, a, b, c)

	plainOrder := drive(t, New(), set)
	if plainOrder[0] == 0 {
		t.Fatal("precondition: plain ASETS* should not run the heavy transaction first")
	}

	set2 := mustSet(t,
		&txn.Transaction{ID: 0, Arrival: 0, Deadline: 1, Length: 50, Weight: 10},
		&txn.Transaction{ID: 1, Arrival: 0, Deadline: 0.9, Length: 2, Weight: 1},
		&txn.Transaction{ID: 2, Arrival: 0, Deadline: 0.8, Length: 3, Weight: 1},
	)
	// First activation fires at t = 1/rate = 0.001, i.e. from the second
	// decision point onward: the first pick is plain ASETS* (T1, highest
	// density), then T_old = T0 (w/d = 10) jumps ahead of T2.
	bal := New(WithTimeActivation(1000))
	balOrder := drive(t, bal, set2)
	want := []txn.ID{1, 0, 2}
	for i := range want {
		if balOrder[i] != want[i] {
			t.Fatalf("balance-aware order = %v, want %v", balOrder, want)
		}
	}
	// Contrast: plain ASETS* (pure HDF here) leaves the heavy transaction
	// last.
	if plainOrder[1] == 0 {
		t.Fatal("precondition: plain ASETS* should not run T0 second")
	}
}

// TestBalanceAwareCountActivation drives the count-based variant: with
// period 1 every scheduling point runs T_old.
func TestBalanceAwareCountActivation(t *testing.T) {
	a := mk(0, 0, 1, 50)
	a.Weight = 10
	b := mk(1, 0, 0.9, 2)
	set := mustSet(t, a, b)
	bal := New(WithCountActivation(1)) // period 1: every point
	order := drive(t, bal, set)
	if order[0] != 0 {
		t.Fatalf("count-based balance order = %v, want T0 first", order)
	}
}

// TestBalanceAwarePeriodRespected: with a long time-based period the first
// decisions are plain ASETS*.
func TestBalanceAwarePeriodRespected(t *testing.T) {
	a := mk(0, 0, 1, 50)
	a.Weight = 10
	b := mk(1, 0, 0.9, 2)
	set := mustSet(t, a, b)
	bal := New(WithTimeActivation(0.0001)) // first activation at t=10000
	order := drive(t, bal, set)
	if order[0] != 1 {
		t.Fatalf("order = %v, want plain ASETS* choice (T1) before first activation", order)
	}
}

// TestSymmetricRuleDiffers builds the asymmetric-rule discriminating case:
// the two rules disagree exactly when r_headE in [r_headH - s_repE scaled
// windows]. Here Fig. 7 runs SRPT first while the symmetric rule prefers EDF.
func TestSymmetricRuleDiffers(t *testing.T) {
	build := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 0.5, 4), // tardy: slack at 0 = 0.5-4 = -3.5
			mk(1, 0, 9, 5),   // feasible: slack 4
		)
	}
	// Fig7: NI_E = 5, NI_H = 4 - 4 = 0 -> run H (T0).
	fig := drive(t, New(), build())
	if fig[0] != 0 {
		t.Fatalf("Fig7 rule order = %v, want T0 first", fig)
	}
	// Symmetric: NI_E = r_E - s_H = 5 - (-3.5) = 8.5; NI_H = 4 - 4 = 0 -> H.
	// (Same winner here; check a case that flips below.)
	sym := drive(t, New(WithRule(RuleSymmetric)), build())
	if sym[0] != 0 {
		t.Fatalf("symmetric rule order = %v, want T0 first", sym)
	}

	// Flip case: make the EDF head short and the SRPT head slightly longer
	// than the EDF slack, with the SRPT side barely tardy.
	build2 := func() *txn.Set {
		return mustSet(t,
			mk(0, 0, 5.9, 6), // tardy by a sliver: slack -0.1
			mk(1, 0, 8, 4),   // feasible: slack 4
		)
	}
	// Fig7: NI_E = 4, NI_H = 6 - 4 = 2 -> run H (T0).
	fig2 := drive(t, New(), build2())
	if fig2[0] != 0 {
		t.Fatalf("Fig7 order = %v, want T0", fig2)
	}
	// Symmetric: NI_E = 4 - (-0.1) = 4.1, NI_H = 6 - 4 = 2 -> still H. The
	// symmetric rule flips only when s_repH > 0... which cannot happen for
	// HDF residents; instead verify both rules at least schedule validly.
	sym2 := drive(t, New(WithRule(RuleSymmetric)), build2())
	if len(sym2) != 2 {
		t.Fatalf("symmetric rule lost transactions: %v", sym2)
	}
}

// TestQueueLengthsEmpty sanity-checks the instrumentation accessor.
func TestQueueLengthsEmpty(t *testing.T) {
	set := mustSet(t, mk(0, 5, 10, 1))
	a := New()
	a.Init(set)
	if e, h := a.QueueLengths(); e != 0 || h != 0 {
		t.Fatalf("fresh scheduler lists: %d/%d", e, h)
	}
	if a.Next(0) != nil {
		t.Fatal("Next on empty scheduler returned a transaction")
	}
}
