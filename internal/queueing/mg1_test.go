package queueing

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestFromZipfMoments(t *testing.T) {
	z := rng.MustZipf(1, 50, 0.5)
	q, err := FromZipf(z, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.ES-z.Mean()) > 1e-12 {
		t.Fatalf("ES = %v, zipf mean = %v", q.ES, z.Mean())
	}
	if q.ES2 <= q.ES*q.ES {
		t.Fatalf("E[S^2] = %v must exceed E[S]^2 = %v", q.ES2, q.ES*q.ES)
	}
	if math.Abs(q.Rho()-0.5) > 1e-12 {
		t.Fatalf("rho = %v", q.Rho())
	}
}

func TestFromZipfRejectsBadRho(t *testing.T) {
	z := rng.MustZipf(1, 10, 0.5)
	for _, rho := range []float64{0, 1, 1.5, -0.2} {
		if _, err := FromZipf(z, rho); err == nil {
			t.Errorf("rho=%v accepted", rho)
		}
	}
}

func TestDeterministicService(t *testing.T) {
	// Degenerate Zipf (single value) = M/D/1: E[W] = rho*ES / (2(1-rho)).
	z := rng.MustZipf(10, 10, 0)
	q, err := FromZipf(z, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 10 / (2 * 0.5)
	if math.Abs(q.MeanWait()-want) > 1e-9 {
		t.Fatalf("M/D/1 wait = %v, want %v", q.MeanWait(), want)
	}
	if q.SCV() > 1e-12 {
		t.Fatalf("deterministic SCV = %v", q.SCV())
	}
}

func TestLittlesLawConsistency(t *testing.T) {
	z := rng.MustZipf(1, 50, 0.5)
	q, _ := FromZipf(z, 0.7)
	if math.Abs(q.MeanInSystem()-(q.MeanQueueLength()+q.Rho())) > 1e-9 {
		t.Fatal("L != Lq + rho")
	}
	if q.MeanResponse() <= q.MeanWait() {
		t.Fatal("response must exceed wait")
	}
}

func TestMeanWaitPanicsUnstable(t *testing.T) {
	q := MG1{Lambda: 1, ES: 2, ES2: 8}
	defer func() {
		if recover() == nil {
			t.Fatal("unstable MeanWait did not panic")
		}
	}()
	q.MeanWait()
}

// TestSimulatorMatchesPollaczekKhinchine is the headline validation: the
// discrete-event simulator running FCFS over the Table I workload must
// reproduce the analytical M/G/1 mean response time. A systematic deviation
// would indicate a bug in event ordering, busy-time accounting, or the
// Poisson arrival generator.
func TestSimulatorMatchesPollaczekKhinchine(t *testing.T) {
	if testing.Short() {
		t.Skip("large-sample queueing validation")
	}
	z := rng.MustZipf(1, 50, 0.5)
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		q, err := FromZipf(z, rho)
		if err != nil {
			t.Fatal(err)
		}
		want := q.MeanResponse()

		var got float64
		seeds := []uint64{1, 2, 3}
		for _, seed := range seeds {
			cfg := workload.Default(rho, seed)
			cfg.N = 60000
			set := workload.MustGenerate(cfg)
			sum, err := sim.New(sim.Config{}).Run(set, sched.NewFCFS())
			if err != nil {
				t.Fatal(err)
			}
			got += sum.AvgResponseTime
		}
		got /= float64(len(seeds))

		// The generator uses the realized mean length for the arrival rate,
		// and 60k transactions x 3 seeds still carry simulation noise: allow
		// 8% relative error.
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Errorf("rho=%v: simulated E[T]=%v vs Pollaczek-Khinchine %v (rel err %.1f%%)",
				rho, got, want, 100*rel)
		}
	}
}

// TestSimulatorUtilizationMatchesRho: the busy fraction up to the last
// completion approximates the offered load at moderate rho.
func TestSimulatorUtilizationMatchesRho(t *testing.T) {
	if testing.Short() {
		t.Skip("large-sample queueing validation")
	}
	cfg := workload.Default(0.6, 9)
	cfg.N = 40000
	set := workload.MustGenerate(cfg)
	sum, err := sim.New(sim.Config{}).Run(set, sched.NewFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Utilization-0.6) > 0.05 {
		t.Errorf("utilization %v, want ~0.6", sum.Utilization)
	}
}
