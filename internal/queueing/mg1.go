// Package queueing provides closed-form queueing-theory baselines used to
// validate the discrete-event simulator. The paper's workload is an M/G/1
// system — Poisson arrivals, general (bounded Zipf) service times, one
// backend database server — so classic results give exact expectations that
// the simulator must converge to:
//
//   - Pollaczek-Khinchine: the mean waiting time under any non-preemptive
//     work-conserving discipline that ignores service times (e.g. FCFS) is
//     E[W] = lambda * E[S^2] / (2 * (1 - rho)).
//   - Utilization: the long-run busy fraction equals rho = lambda * E[S].
//
// These identities back the simulator's correctness tests: a bug in event
// ordering, preemption accounting, or the workload generator shows up as a
// systematic deviation from the formulas.
package queueing

import (
	"fmt"

	"repro/internal/rng"
)

// MG1 captures an M/G/1 queue with arrival rate Lambda and service-time
// distribution moments ES (mean) and ES2 (second moment).
type MG1 struct {
	Lambda float64 // arrivals per time unit
	ES     float64 // E[S]
	ES2    float64 // E[S^2]
}

// FromZipf constructs the M/G/1 model matching the paper's workload: service
// times from the bounded Zipf distribution z and arrival rate chosen so that
// utilization equals rho (rate = rho / E[S], Table I).
func FromZipf(z *rng.Zipf, rho float64) (MG1, error) {
	if rho <= 0 || rho >= 1 {
		return MG1{}, fmt.Errorf("queueing: utilization %v outside (0, 1)", rho)
	}
	es := z.Mean()
	var es2 float64
	for v := z.Min(); v <= z.Max(); v++ {
		es2 += z.Prob(v) * float64(v) * float64(v)
	}
	return MG1{Lambda: rho / es, ES: es, ES2: es2}, nil
}

// Rho returns the offered load lambda * E[S].
func (q MG1) Rho() float64 { return q.Lambda * q.ES }

// Stable reports whether the queue has a stationary distribution (rho < 1).
func (q MG1) Stable() bool { return q.Rho() < 1 }

// MeanWait returns the Pollaczek-Khinchine mean waiting time (time in queue,
// excluding service) under FCFS. It panics on an unstable queue, where the
// wait diverges.
func (q MG1) MeanWait() float64 {
	if !q.Stable() {
		panic(fmt.Sprintf("queueing: MeanWait on unstable queue (rho=%v)", q.Rho()))
	}
	return q.Lambda * q.ES2 / (2 * (1 - q.Rho()))
}

// MeanResponse returns the mean time in system E[T] = E[W] + E[S].
func (q MG1) MeanResponse() float64 { return q.MeanWait() + q.ES }

// MeanQueueLength returns the mean number in queue via Little's law,
// L_q = lambda * E[W].
func (q MG1) MeanQueueLength() float64 { return q.Lambda * q.MeanWait() }

// MeanInSystem returns the mean number in system, L = lambda * E[T].
func (q MG1) MeanInSystem() float64 { return q.Lambda * q.MeanResponse() }

// SCV returns the squared coefficient of variation of the service times,
// (E[S^2] - E[S]^2) / E[S]^2 — a useful summary of how far the Zipf workload
// is from exponential (SCV 1) or deterministic (SCV 0) service.
func (q MG1) SCV() float64 {
	return (q.ES2 - q.ES*q.ES) / (q.ES * q.ES)
}
