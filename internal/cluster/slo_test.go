package cluster

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/slo"
	"repro/internal/txn"
	"repro/internal/workload"
)

// overloadedClusterWorkload saturates a two-instance fleet (1.4 utilization
// per instance) with weighted transactions, so every class burns its error
// budget and the per-instance alert engines have something to say.
func overloadedClusterWorkload() *txn.Set {
	cfg := workload.Default(2.8, 0x510C1)
	cfg.N = 300
	cfg = cfg.WithWeights()
	return workload.MustGenerate(cfg)
}

func sloClusterConfig(col *obs.Collector, reg *obs.Registry, status *StatusBoard) Config {
	return Config{
		Instances:    2,
		NewScheduler: sched.NewEDF,
		Sink:         col,
		Metrics:      reg,
		Status:       status,
		SLO:          &slo.Config{Spec: slo.DefaultSpec(), Window: 50},
	}
}

// TestClusterSLOAlertsAndRollup: per-instance engines fire instance-prefixed
// alerts into the routed stream in time order, export inst-labeled gauges,
// and aggregate into the StatusBoard's fleet health rollup.
func TestClusterSLOAlertsAndRollup(t *testing.T) {
	col := &obs.Collector{}
	reg := obs.NewRegistry()
	status := &StatusBoard{}
	res, err := New(sloClusterConfig(col, reg, status)).Run(overloadedClusterWorkload())
	if err != nil {
		t.Fatal(err)
	}

	evs := col.Events()
	if err := obs.Validate(evs); err != nil {
		t.Fatalf("routed stream with alerts fails validation: %v", err)
	}
	fires := 0
	last := -1.0
	for _, ev := range evs {
		if ev.Time < last {
			t.Fatalf("stream out of time order at %+v", ev)
		}
		last = ev.Time
		if ev.Kind == obs.KindAlertFire {
			fires++
			if !strings.HasPrefix(ev.Detail, "0:") && !strings.HasPrefix(ev.Detail, "1:") {
				t.Fatalf("alert detail %q lacks an instance prefix", ev.Detail)
			}
		}
	}
	if fires == 0 {
		t.Fatal("overloaded fleet fired no SLO alert")
	}

	if len(res.SLO) != 2 {
		t.Fatalf("Result.SLO has %d entries, want 2", len(res.SLO))
	}
	totalFires := 0
	for _, st := range res.SLO {
		totalFires += st.Fires
	}
	if totalFires != fires {
		t.Fatalf("Result.SLO counts %d fires, stream carries %d", totalFires, fires)
	}

	fh := status.Health()
	if !fh.Enabled || !fh.Done {
		t.Fatalf("fleet health not enabled/done: %+v", fh)
	}
	if fh.Fires != fires || len(fh.Instances) != 2 {
		t.Fatalf("fleet health rollup wrong: %+v", fh)
	}
	if fh.WorstBurn <= 0 {
		t.Fatalf("overloaded fleet reports no burn: %+v", fh)
	}

	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`asets_slo_burn_ratio{class="light",inst="0"}`,
		`asets_slo_burn_ratio{class="light",inst="1"}`,
		`asets_slo_alert_fires_total{inst="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in /metrics exposition", want)
		}
	}
}

// TestClusterSLODeterminism: the routed stream including alert transitions
// is byte-identical across replays.
func TestClusterSLODeterminism(t *testing.T) {
	run := func() []byte {
		col := &obs.Collector{}
		res, err := New(sloClusterConfig(col, obs.NewRegistry(), nil)).Run(overloadedClusterWorkload())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.SLO) != 2 {
			t.Fatalf("Result.SLO has %d entries, want 2", len(res.SLO))
		}
		return streamBytes(t, col.Events())
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("replay changed the routed stream with alerts")
	}
	if !bytes.Contains(a, []byte(`"kind":"alert_fire"`)) {
		t.Fatal("no alert_fire in the routed stream")
	}
}

// TestClusterSLOCrashDrops: a crash that destroys queued work must also
// unwind the SLO backlog — otherwise the queue-bound rule would count
// transactions the fault domain no longer holds.
func TestClusterSLOCrashDrops(t *testing.T) {
	set := twoInstanceCrashSet(t)
	var spec slo.Spec
	for i := range spec.Classes {
		spec.Classes[i].QueueBound = 100 // enabled, never breached
	}
	col := &obs.Collector{}
	cfg := Config{
		Instances:    2,
		NewScheduler: sched.NewSRPT,
		Faults:       crashPlans(),
		Sink:         col,
		SLO:          &slo.Config{Spec: spec, Window: 10},
	}
	res, err := New(cfg).Run(set)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.SLO {
		for _, ch := range st.Classes {
			if ch.Backlog != 0 {
				t.Fatalf("instance %d class %s backlog %d after run end, want 0 (crash drop not recorded)",
					i, ch.Class, ch.Backlog)
			}
		}
	}
}
