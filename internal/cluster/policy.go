package cluster

import (
	"fmt"
	"strings"
)

// InstanceView is the deterministic health-and-load signal one instance
// exposes to the routing tier at a decision instant. Views are derived
// purely from engine state — never from wall-clock probes — so routing
// decisions replay bit-identically.
type InstanceView struct {
	// Index is the instance's position in the fleet.
	Index int
	// Ejected reports that the circuit-breaker has removed the instance
	// from the routing set (it is inside a crash window or its recovery
	// cooldown). Policies must never pick an ejected instance.
	Ejected bool
	// HalfOpen reports that the breaker re-admitted the instance after an
	// ejection but no completion has confirmed recovery yet; health-aware
	// policies send it less work while it is on probation.
	HalfOpen bool
	// Stalled reports that the instance is inside a (non-crash) outage
	// window: routable, but not currently making progress.
	Stalled bool
	// Running is 1 while a transaction occupies the instance's server.
	Running int
	// Queued counts transactions admitted to the instance and waiting in
	// its scheduler queue (excluding the running one and any backing off).
	Queued int
	// Backlog is the summed remaining work of the instance's admitted,
	// unfinished transactions (running, queued and backing off).
	Backlog float64
}

// Policy assigns arriving (and failing-over) transactions to instances: the
// routing axis of the cluster tier, independent of the per-instance
// scheduling policy. Pick returns the index of a non-ejected instance, or
// -1 when every instance is ejected. Implementations may carry state (e.g.
// the round-robin cursor) and must therefore be fresh per run; every
// decision must be a pure function of that state and the views, so routed
// runs stay deterministic.
type Policy interface {
	// Name returns the spec name, e.g. "rr" or "least".
	Name() string
	// Pick chooses the instance for one routing decision. views holds every
	// instance in index order, including ejected ones.
	Pick(views []InstanceView) int
}

// RoundRobin cycles through the non-ejected instances in index order — the
// baseline policy that ignores load and health beyond ejection.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a fresh round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "rr" }

// Pick implements Policy: the first non-ejected instance at or after the
// cursor, which then advances past it.
func (p *RoundRobin) Pick(views []InstanceView) int {
	n := len(views)
	for off := 0; off < n; off++ {
		i := (p.next + off) % n
		if !views[i].Ejected {
			p.next = (i + 1) % n
			return i
		}
	}
	return -1
}

// LeastLoaded picks the non-ejected instance with the fewest queued-or-
// running transactions, ties broken by lowest index.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least" }

// Pick implements Policy.
func (LeastLoaded) Pick(views []InstanceView) int {
	best, bestLoad := -1, 0
	for _, v := range views {
		if v.Ejected {
			continue
		}
		load := v.Queued + v.Running
		if best < 0 || load < bestLoad {
			best, bestLoad = v.Index, load
		}
	}
	return best
}

// SlackAware picks the non-ejected instance with the smallest work backlog:
// under single-server instances the arriving transaction's predicted slack
// is d - (now + backlog + length), so minimizing the backlog maximizes the
// slack the transaction lands with (Definition 2 of the paper, lifted to
// placement). Ties break by lowest index.
type SlackAware struct{}

// Name implements Policy.
func (SlackAware) Name() string { return "slack" }

// Pick implements Policy.
func (SlackAware) Pick(views []InstanceView) int {
	best, bestBacklog := -1, 0.0
	for _, v := range views {
		if v.Ejected {
			continue
		}
		if best < 0 || v.Backlog < bestBacklog {
			best, bestBacklog = v.Index, v.Backlog
		}
	}
	return best
}

// HealthWeighted blends load with health: the score is the instance's
// backlog plus its queue population, doubled (plus one) while the breaker
// is half-open and stalled instances are penalized by their remaining
// outage exposure being unknown — a fixed additive penalty keeps the
// decision deterministic. Lowest score wins, ties by lowest index.
type HealthWeighted struct{}

// halfOpenPenalty shifts a half-open instance behind healthy peers of equal
// load without starving it: one probe transaction still lands there once
// every healthy backlog exceeds the penalty.
const halfOpenPenalty = 1.0

// Name implements Policy.
func (HealthWeighted) Name() string { return "weighted" }

// Pick implements Policy.
func (HealthWeighted) Pick(views []InstanceView) int {
	best, bestScore := -1, 0.0
	for _, v := range views {
		if v.Ejected {
			continue
		}
		score := v.Backlog + float64(v.Queued+v.Running)
		if v.HalfOpen || v.Stalled {
			score = 2*score + halfOpenPenalty
		}
		if best < 0 || score < bestScore {
			best, bestScore = v.Index, score
		}
	}
	return best
}

// ParsePolicy builds a fresh routing policy from its spec name. Policies
// may carry state, so each run must parse its own instance (mirroring
// admit.Parse).
func ParsePolicy(spec string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "rr", "round-robin", "roundrobin":
		return NewRoundRobin(), nil
	case "least", "least-loaded":
		return LeastLoaded{}, nil
	case "slack", "slack-aware":
		return SlackAware{}, nil
	case "weighted", "health", "health-weighted":
		return HealthWeighted{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (use rr, least, slack or weighted)", spec)
	}
}
